// Package popstab is a simulation library for the population stability
// problem of Goldwasser, Ostrovsky, Scafuro and Sealfon (PODC 2018): a
// system of Θ(log log N)-bit agents that replicate and self-destruct must
// keep its population within [(1−α)N, (1+α)N] while a full-information
// adversary inserts and deletes agents at a bounded rate.
//
// The package exposes:
//
//   - the paper's protocol (leader selection → recruitment trees →
//     variance-encoded evaluation) and its failing baselines (§1.3.1);
//   - the synchronous γ-matching communication model;
//   - a library of adversary strategies, budgeted per the model;
//   - the §1.2 extensions (malicious programs, geometric communication,
//     clock drift);
//   - the reproduction experiment suite (E1–E17, A1–A6);
//   - a deterministic parallel round engine: per-agent counter-based
//     randomness makes simulation output bit-identical across any
//     Config.Workers count, so multi-core runs are pure speedup.
//
// Quick start:
//
//	cfg := popstab.Config{N: 4096, Seed: 1}
//	s, err := popstab.New(cfg)
//	if err != nil { ... }
//	for i := 0; i < 10; i++ {
//		rep := s.RunEpoch()
//		fmt.Println(rep.Epoch, rep.EndSize)
//	}
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for measured-vs-paper
// results.
package popstab

import (
	"fmt"

	"popstab/internal/adversary"
	"popstab/internal/baseline"
	"popstab/internal/match"
	"popstab/internal/params"
	"popstab/internal/population"
	"popstab/internal/protocol"
	"popstab/internal/sim"
	"popstab/internal/wire"
)

// Re-exported model types. These aliases make the internal packages' types
// part of the stable public surface without duplicating them.
type (
	// Params is the derived protocol parameterization (N, epoch shape,
	// coin biases, γ, α).
	Params = params.Params
	// Adversary is an attack strategy; see the New*Adversary constructors.
	Adversary = adversary.Adversary
	// Scheduler samples each round's communication matching.
	Scheduler = match.Scheduler
	// RoundReport summarizes one completed round.
	RoundReport = sim.RoundReport
	// EpochReport aggregates one protocol epoch.
	EpochReport = sim.EpochReport
	// Census is an aggregate snapshot of the population.
	Census = population.Census
	// Counters accumulates protocol event counts (leaders, recruits,
	// splits, deaths).
	Counters = protocol.Counters
)

// ProtocolKind selects which per-agent program a Sim runs.
type ProtocolKind int

// Supported protocols.
const (
	// Paper is the population stability protocol (Algorithms 1–7); the
	// default.
	Paper ProtocolKind = iota
	// Attempt1 is the non-interactive leader election baseline (§1.3.1).
	Attempt1
	// Attempt2 is the independent coloring baseline (§1.3.1).
	Attempt2
	// Empty is the do-nothing protocol.
	Empty
)

// String names the protocol kind.
func (k ProtocolKind) String() string {
	switch k {
	case Paper:
		return "paper"
	case Attempt1:
		return "attempt1"
	case Attempt2:
		return "attempt2"
	case Empty:
		return "empty"
	default:
		return fmt.Sprintf("protocol(%d)", int(k))
	}
}

// ProtocolKindFromString parses a protocol name.
func ProtocolKindFromString(s string) (ProtocolKind, error) {
	switch s {
	case "paper", "":
		return Paper, nil
	case "attempt1":
		return Attempt1, nil
	case "attempt2":
		return Attempt2, nil
	case "empty":
		return Empty, nil
	default:
		return 0, fmt.Errorf("popstab: unknown protocol %q", s)
	}
}

// Config assembles a simulation.
type Config struct {
	// N is the population target. Must be a power of four, ≥ 4096.
	N int
	// Tinner overrides the recruitment subphase length (0 = the paper's
	// log²N). Must be ω(log N); see Params.
	Tinner int
	// Gamma is the matched fraction per round (0 = the paper's running
	// example 1/4).
	Gamma float64
	// Alpha is the admissible interval half-width (0 = 0.5).
	Alpha float64
	// Protocol selects the per-agent program (default Paper).
	Protocol ProtocolKind
	// MessageBits selects the wire codec for the paper protocol: 3
	// (default, Theorem 2's encoding) or 4 (the reference encoding).
	MessageBits int
	// Adversary attacks every round within budget K (nil = none).
	Adversary Adversary
	// K is the adversary's per-round alteration budget.
	K int
	// PerEpochBudget, when positive, paces the adversary so it spends
	// roughly this many alterations per epoch (with K per action); this is
	// the budget normalization the paper's lemmas use (K·T = Θ(N^{1/4})).
	PerEpochBudget int
	// Scheduler overrides the communication scheduler (nil = uniform
	// γ-matching).
	Scheduler Scheduler
	// InitialSize overrides the starting population (0 = N).
	InitialSize int
	// Seed derives all randomness; runs are fully deterministic in it.
	Seed uint64
	// Workers sets the number of goroutines sharding the engine's per-agent
	// compose/step phases: 0 means runtime.NumCPU(), 1 forces the serial
	// path. Simulation output is bit-identical across all worker counts
	// (per-agent randomness is counter-based, keyed on round and agent
	// slot), so Workers is purely a throughput knob.
	Workers int
}

// Sim is one deterministic simulation run.
type Sim struct {
	eng      *sim.Engine
	proto    *protocol.Protocol // nil for baselines
	params   Params
	kind     ProtocolKind
	epochLen int
}

// New validates cfg and builds the simulation.
func New(cfg Config) (*Sim, error) {
	var opts []params.Option
	if cfg.Tinner > 0 {
		opts = append(opts, params.WithTinner(cfg.Tinner))
	}
	if cfg.Gamma > 0 {
		opts = append(opts, params.WithGamma(cfg.Gamma))
	}
	if cfg.Alpha > 0 {
		opts = append(opts, params.WithAlpha(cfg.Alpha))
	}
	p, err := params.Derive(cfg.N, opts...)
	if err != nil {
		return nil, fmt.Errorf("popstab: %w", err)
	}

	s := &Sim{params: p, kind: cfg.Protocol}
	var stepper sim.Stepper
	switch cfg.Protocol {
	case Paper:
		var popts []protocol.Option
		switch cfg.MessageBits {
		case 0, 3:
		case 4:
			popts = append(popts, protocol.WithCodec(wire.FourBit{}))
		default:
			return nil, fmt.Errorf("popstab: unsupported message size %d bits", cfg.MessageBits)
		}
		pr, err := protocol.New(p, popts...)
		if err != nil {
			return nil, fmt.Errorf("popstab: %w", err)
		}
		s.proto = pr
		stepper = pr
	case Attempt1:
		a, err := baseline.NewAttempt1(p)
		if err != nil {
			return nil, fmt.Errorf("popstab: %w", err)
		}
		stepper = a
	case Attempt2:
		a, err := baseline.NewAttempt2(p)
		if err != nil {
			return nil, fmt.Errorf("popstab: %w", err)
		}
		stepper = a
	case Empty:
		stepper = baseline.Empty{}
	default:
		return nil, fmt.Errorf("popstab: unknown protocol kind %d", int(cfg.Protocol))
	}

	s.epochLen = stepper.EpochLen()

	adv := cfg.Adversary
	k := cfg.K
	if adv != nil && cfg.PerEpochBudget > 0 {
		if k <= 0 {
			k = 1
		}
		adv = adversary.NewPaced(adversary.PerEpoch(s.epochLen, cfg.PerEpochBudget, k), adv)
	}

	eng, err := sim.New(sim.Config{
		Params:      p,
		Protocol:    stepper,
		Scheduler:   cfg.Scheduler,
		Adversary:   adv,
		K:           k,
		Seed:        cfg.Seed,
		InitialSize: cfg.InitialSize,
		Workers:     cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("popstab: %w", err)
	}
	s.eng = eng
	return s, nil
}

// Params reports the derived parameterization.
func (s *Sim) Params() Params { return s.params }

// Kind reports which protocol the simulation runs.
func (s *Sim) Kind() ProtocolKind { return s.kind }

// Size reports the current population size.
func (s *Sim) Size() int { return s.eng.Size() }

// GlobalRound reports the number of completed rounds.
func (s *Sim) GlobalRound() uint64 { return s.eng.GlobalRound() }

// EpochLen reports the running protocol's epoch length in rounds, cached at
// construction.
func (s *Sim) EpochLen() int { return s.epochLen }

// RunRound executes one round.
func (s *Sim) RunRound() RoundReport { return s.eng.RunRound() }

// RunRounds executes n rounds, returning the final report.
func (s *Sim) RunRounds(n int) RoundReport { return s.eng.RunRounds(n) }

// RunEpoch executes rounds up to the next epoch boundary.
func (s *Sim) RunEpoch() EpochReport { return s.eng.RunEpoch() }

// RunEpochs executes n epochs and returns their reports.
func (s *Sim) RunEpochs(n int) []EpochReport { return s.eng.RunEpochs(n) }

// Census snapshots the population's aggregate state.
func (s *Sim) Census() Census { return s.eng.Census() }

// Counters exposes the paper protocol's event counters (nil for baselines).
func (s *Sim) Counters() *Counters {
	if s.proto == nil {
		return nil
	}
	return s.proto.Counters()
}

// Displace forcibly resizes the population to n agents (experimental
// machinery for drift/recovery studies; not part of the model).
func (s *Sim) Displace(n int) { s.eng.ForceResize(n) }

// InInterval reports whether the population currently lies within
// [(1−α)N, (1+α)N].
func (s *Sim) InInterval() bool {
	lo := int(float64(s.params.N) * (1 - s.params.Alpha))
	hi := int(float64(s.params.N) * (1 + s.params.Alpha))
	return s.Size() >= lo && s.Size() <= hi
}
