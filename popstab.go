// Package popstab is a simulation library for the population stability
// problem of Goldwasser, Ostrovsky, Scafuro and Sealfon (PODC 2018): a
// system of Θ(log log N)-bit agents that replicate and self-destruct must
// keep its population within [(1−α)N, (1+α)N] while a full-information
// adversary inserts and deletes agents at a bounded rate.
//
// The package exposes:
//
//   - the paper's protocol (leader selection → recruitment trees →
//     variance-encoded evaluation) and its failing baselines (§1.3.1);
//   - the synchronous γ-matching communication model;
//   - a library of adversary strategies, budgeted per the model — on
//     spatial topologies the adversary observes positions and controls
//     placement (the patch family: NewPatchDeleter, NewClusterInserter,
//     NewRewireDenier, RogueConfig.Cluster);
//   - the §1.2 extensions (malicious programs, geometric communication,
//     clock drift), composable with each other and with any adversary
//     through Config.Topology and Config.Rogue;
//   - the reproduction experiment suite (E1–E17, A1–A9);
//   - one deterministic parallel round engine behind pluggable
//     communication (Matcher) and program (Stepper) seams: per-agent
//     counter-based randomness makes simulation output bit-identical
//     across any Config.Workers count, so multi-core runs are pure
//     speedup — for every topology and program;
//   - steppable Sessions with deterministic snapshot/resume (Session,
//     Snapshot, RestoreSession) and the declarative, canonically hashable
//     Spec the serving layer (internal/serve, cmd/popserve) builds on:
//     a snapshot restored in another process continues bit-identically.
//
// Quick start:
//
//	cfg := popstab.Config{N: 4096, Seed: 1}
//	s, err := popstab.New(cfg)
//	if err != nil { ... }
//	for i := 0; i < 10; i++ {
//		rep := s.RunEpoch()
//		fmt.Println(rep.Epoch, rep.EndSize)
//	}
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for measured-vs-paper
// results.
package popstab

import (
	"fmt"
	"math"

	"popstab/internal/adversary"
	"popstab/internal/baseline"
	"popstab/internal/match"
	"popstab/internal/params"
	"popstab/internal/population"
	"popstab/internal/protocol"
	"popstab/internal/rogue"
	"popstab/internal/sim"
	"popstab/internal/wire"
)

// Re-exported model types. These aliases make the internal packages' types
// part of the stable public surface without duplicating them.
type (
	// Params is the derived protocol parameterization (N, epoch shape,
	// coin biases, γ, α).
	Params = params.Params
	// Adversary is an attack strategy; see the New*Adversary constructors.
	Adversary = adversary.Adversary
	// Scheduler samples each round's communication matching.
	Scheduler = match.Scheduler
	// RoundReport summarizes one completed round.
	RoundReport = sim.RoundReport
	// EpochReport aggregates one protocol epoch.
	EpochReport = sim.EpochReport
	// Census is an aggregate snapshot of the population.
	Census = population.Census
	// Counters accumulates protocol event counts (leaders, recruits,
	// splits, deaths).
	Counters = protocol.Counters
	// RogueStats accumulates the malicious-program extension's event counts
	// (kills, rogue splits, failed detections).
	RogueStats = rogue.Stats
	// Point is a position on a spatial topology (only X is meaningful on
	// the 1-D topologies Ring and SmallWorld).
	Point = population.Point
	// MatchPipelineStats are the spatial matching pipeline's cumulative
	// per-phase counters (see Sim.MatchStats).
	MatchPipelineStats = match.PipelineStats
	// RoundStats are the engine's cumulative per-phase cost counters —
	// every round phase, not just the matching pipeline (see
	// Sim.RoundStats and DESIGN.md §13).
	RoundStats = sim.RoundStats
	// PhaseCost is one named phase's cumulative wall-clock cost within a
	// RoundStats.
	PhaseCost = sim.PhaseCost
)

// PatchSpec parameterizes the spatial patch-attack family: one ball of the
// topology — a disc on Torus/Grid, an arc of half-length Radius on
// Ring/SmallWorld. It drives the patch strategies (NewPatchDeleter,
// NewClusterInserter, NewRewireDenier) and clustered rogue infiltration
// (RogueConfig.Cluster).
type PatchSpec struct {
	// Center is the ball's center.
	Center Point
	// Radius is the ball's radius (arc half-length in 1-D).
	Radius float64
}

// ProtocolKind selects which per-agent program a Sim runs.
type ProtocolKind int

// Supported protocols.
const (
	// Paper is the population stability protocol (Algorithms 1–7); the
	// default.
	Paper ProtocolKind = iota
	// Attempt1 is the non-interactive leader election baseline (§1.3.1).
	Attempt1
	// Attempt2 is the independent coloring baseline (§1.3.1).
	Attempt2
	// Empty is the do-nothing protocol.
	Empty
)

// String names the protocol kind.
func (k ProtocolKind) String() string {
	switch k {
	case Paper:
		return "paper"
	case Attempt1:
		return "attempt1"
	case Attempt2:
		return "attempt2"
	case Empty:
		return "empty"
	default:
		return fmt.Sprintf("protocol(%d)", int(k))
	}
}

// ProtocolKindFromString parses a protocol name.
func ProtocolKindFromString(s string) (ProtocolKind, error) {
	switch s {
	case "paper", "":
		return Paper, nil
	case "attempt1":
		return Attempt1, nil
	case "attempt2":
		return Attempt2, nil
	case "empty":
		return Empty, nil
	default:
		return 0, fmt.Errorf("popstab: unknown protocol %q", s)
	}
}

// Topology selects the communication topology the matching is drawn from.
// It composes freely with Protocol, Adversary, and Rogue: the unified round
// engine treats topology, program, and intervention as orthogonal axes.
type Topology int

// Supported topologies, in decreasing order of mixing (increasing order of
// locality). All spatial topologies run on the same sharded matching
// pipeline and position side-array machinery (internal/match).
const (
	// Mixed is the model's well-mixed uniform γ-matching (the default).
	Mixed Topology = iota
	// Torus places agents on the unit 2-torus and matches nearest
	// neighbors; daughters appear next to their parent (§1.2 "Alternate
	// communication models", experiments A5/A7/A8).
	Torus
	// Grid is the bounded planar analogue of Torus: the unit square under
	// the Euclidean metric, with boundary effects instead of wraparound.
	Grid
	// Ring places agents on the unit circle (1-D) and matches nearest
	// neighbors — the strongest-locality topology in the gallery.
	Ring
	// SmallWorld is Ring with Watts-Strogatz rewiring: each agent's
	// candidate set is rewired to uniformly random agents with probability
	// Config.RewireProb each round, interpolating between Ring (0) and
	// near-well-mixed contact (1).
	SmallWorld
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case Mixed:
		return "mixed"
	case Torus:
		return "torus"
	case Grid:
		return "grid"
	case Ring:
		return "ring"
	case SmallWorld:
		return "smallworld"
	default:
		return fmt.Sprintf("topology(%d)", int(t))
	}
}

// TopologyFromString parses a topology name.
func TopologyFromString(s string) (Topology, error) {
	switch s {
	case "mixed", "":
		return Mixed, nil
	case "torus":
		return Torus, nil
	case "grid":
		return Grid, nil
	case "ring":
		return Ring, nil
	case "smallworld":
		return SmallWorld, nil
	default:
		return 0, fmt.Errorf("popstab: unknown topology %q", s)
	}
}

// Topologies lists every supported topology in declaration order (the
// gallery sweep order of experiment A8 and the CLI help text).
func Topologies() []Topology {
	return []Topology{Mixed, Torus, Grid, Ring, SmallWorld}
}

// RogueConfig enables the §1.2 malicious-program extension: rogue agents
// that ignore the protocol and replicate at a bounded rate, with honest
// agents detecting and removing foreign programs on contact.
type RogueConfig struct {
	// ReplicateEvery is the rogue replication period R ≥ 1.
	ReplicateEvery int
	// DetectProb is the per-contact detection probability (the paper
	// assumes 1).
	DetectProb float64
	// InitialRogues seeds the system with this many rogues.
	InitialRogues int
	// RoguesPerEpoch inserts this many additional rogues at every epoch
	// boundary.
	RoguesPerEpoch int
	// Cluster, when non-nil, places every rogue insertion (initial cohort
	// and per-epoch infiltration) inside the given patch instead of at
	// oblivious uniform positions — adversary-chosen placement, the A9
	// patch-attack seeding. Requires a spatial Topology.
	Cluster *PatchSpec
}

// Config assembles a simulation.
type Config struct {
	// N is the population target. Must be a power of four, ≥ 4096.
	N int
	// Tinner overrides the recruitment subphase length (0 = the paper's
	// log²N). Must be ω(log N); see Params.
	Tinner int
	// Gamma is the matched fraction per round (0 = the paper's running
	// example 1/4).
	Gamma float64
	// Alpha is the admissible interval half-width (0 = 0.5).
	Alpha float64
	// Protocol selects the per-agent program (default Paper).
	Protocol ProtocolKind
	// Selfish wraps the selected protocol in the selfish-replicator
	// variant: activated agents ignore the protocol's verdict and split at
	// every opportunity (sim.SelfishReplicator). A negative control for
	// the stability results — the population escapes the admissible
	// interval without any adversary budget.
	Selfish bool
	// MessageBits selects the wire codec for the paper protocol: 3
	// (default, Theorem 2's encoding) or 4 (the reference encoding).
	MessageBits int
	// Adversary attacks every round within budget K (nil = none).
	Adversary Adversary
	// K is the adversary's per-round alteration budget.
	K int
	// PerEpochBudget, when positive, paces the adversary so it spends
	// roughly this many alterations per epoch (with K per action); this is
	// the budget normalization the paper's lemmas use (K·T = Θ(N^{1/4})).
	PerEpochBudget int
	// Scheduler overrides the communication scheduler (nil = uniform
	// γ-matching). Incompatible with Topology: Torus.
	Scheduler Scheduler
	// Topology selects the communication topology (default Mixed). Every
	// topology composes with any Protocol, Adversary, and Rogue
	// configuration.
	Topology Topology
	// DaughterSpread is the daughter-placement spread as a fraction of the
	// mean inter-agent spacing — 1/√N on the 2-D topologies (Torus, Grid),
	// 1/N on the 1-D ones (Ring, SmallWorld). 0 = 1.0; spatial topologies
	// only.
	DaughterSpread float64
	// RewireProb is the Watts-Strogatz rewiring probability β in [0, 1]
	// (0 = 0.1; SmallWorld only).
	RewireProb float64
	// Rogue, when non-nil, runs the malicious-program extension on top of
	// the selected protocol and topology.
	Rogue *RogueConfig
	// InitialSize overrides the starting population (0 = N).
	InitialSize int
	// Seed derives all randomness; runs are fully deterministic in it.
	Seed uint64
	// Workers sets the number of goroutines sharding the engine's per-agent
	// compose/step phases: 0 means runtime.NumCPU(), 1 forces the serial
	// path. Simulation output is bit-identical across all worker counts
	// (per-agent randomness is counter-based, keyed on round and agent
	// slot), so Workers is purely a throughput knob.
	Workers int
}

// Sim is one deterministic simulation run.
type Sim struct {
	eng      *sim.Engine
	proto    *protocol.Protocol // nil for baselines
	overlay  *rogue.Overlay     // nil without the malicious-program extension
	params   Params
	kind     ProtocolKind
	epochLen int
}

// New validates cfg and builds the simulation.
func New(cfg Config) (*Sim, error) {
	var opts []params.Option
	if cfg.Tinner > 0 {
		opts = append(opts, params.WithTinner(cfg.Tinner))
	}
	if cfg.Gamma > 0 {
		opts = append(opts, params.WithGamma(cfg.Gamma))
	}
	if cfg.Alpha > 0 {
		opts = append(opts, params.WithAlpha(cfg.Alpha))
	}
	p, err := params.Derive(cfg.N, opts...)
	if err != nil {
		return nil, fmt.Errorf("popstab: %w", err)
	}

	s := &Sim{params: p, kind: cfg.Protocol}
	var stepper sim.Stepper
	switch cfg.Protocol {
	case Paper:
		var popts []protocol.Option
		switch cfg.MessageBits {
		case 0, 3:
		case 4:
			popts = append(popts, protocol.WithCodec(wire.FourBit{}))
		default:
			return nil, fmt.Errorf("popstab: unsupported message size %d bits", cfg.MessageBits)
		}
		pr, err := protocol.New(p, popts...)
		if err != nil {
			return nil, fmt.Errorf("popstab: %w", err)
		}
		s.proto = pr
		stepper = pr
	case Attempt1:
		a, err := baseline.NewAttempt1(p)
		if err != nil {
			return nil, fmt.Errorf("popstab: %w", err)
		}
		stepper = a
	case Attempt2:
		a, err := baseline.NewAttempt2(p)
		if err != nil {
			return nil, fmt.Errorf("popstab: %w", err)
		}
		stepper = a
	case Empty:
		stepper = baseline.Empty{}
	default:
		return nil, fmt.Errorf("popstab: unknown protocol kind %d", int(cfg.Protocol))
	}

	if cfg.Selfish {
		stepper = sim.NewSelfishReplicator(stepper)
	}
	s.epochLen = stepper.EpochLen()

	adv := cfg.Adversary
	k := cfg.K
	if adv != nil && cfg.PerEpochBudget > 0 {
		if k <= 0 {
			k = 1
		}
		adv = adversary.NewPaced(adversary.PerEpoch(s.epochLen, cfg.PerEpochBudget, k), adv)
	}

	simCfg := sim.Config{
		Params:      p,
		Scheduler:   cfg.Scheduler,
		Adversary:   adv,
		K:           k,
		Seed:        cfg.Seed,
		InitialSize: cfg.InitialSize,
		Workers:     cfg.Workers,
	}

	// Topology axis: the spatial topologies swap the uniform scheduler for
	// a nearest-available matcher riding a position side-array; all share
	// the sharded matching pipeline and inherit Workers.
	if cfg.Topology == Mixed {
		if cfg.DaughterSpread != 0 {
			return nil, fmt.Errorf("popstab: DaughterSpread requires a spatial topology")
		}
		if cfg.RewireProb != 0 {
			return nil, fmt.Errorf("popstab: RewireProb requires Topology: SmallWorld")
		}
	} else {
		if cfg.Scheduler != nil {
			return nil, fmt.Errorf("popstab: Scheduler is incompatible with spatial topologies")
		}
		if cfg.RewireProb != 0 && cfg.Topology != SmallWorld {
			return nil, fmt.Errorf("popstab: RewireProb requires Topology: SmallWorld")
		}
		spread := cfg.DaughterSpread
		if spread == 0 {
			spread = 1
		}
		if spread < 0 {
			return nil, fmt.Errorf("popstab: negative DaughterSpread %v", spread)
		}
		// Daughter spread in units of the mean inter-agent spacing: 1/√N
		// on the 2-D topologies, 1/N on the 1-D ones.
		sigma2 := spread / math.Sqrt(float64(p.N))
		sigma1 := spread / float64(p.N)
		var (
			matcher match.Matcher
			err     error
		)
		switch cfg.Topology {
		case Torus:
			matcher, err = match.NewTorus(sigma2)
		case Grid:
			matcher, err = match.NewGrid(sigma2)
		case Ring:
			matcher, err = match.NewRing(sigma1)
		case SmallWorld:
			beta := cfg.RewireProb
			if beta == 0 {
				beta = 0.1
			}
			matcher, err = match.NewSmallWorld(sigma1, beta)
		default:
			return nil, fmt.Errorf("popstab: unknown topology %d", int(cfg.Topology))
		}
		if err != nil {
			return nil, fmt.Errorf("popstab: %w", err)
		}
		simCfg.Matcher = matcher
		simCfg.Scheduler = nil
	}

	// Program axis: the malicious-program extension wraps any protocol (and
	// composes with any topology and adversary) — all wiring delegated to
	// rogue.NewEngine so the overlay bootstrap lives in one place.
	if rc := cfg.Rogue; rc != nil {
		var cluster *rogue.ClusterSpec
		if rc.Cluster != nil {
			if cfg.Topology == Mixed {
				return nil, fmt.Errorf("popstab: RogueConfig.Cluster requires a spatial topology")
			}
			cluster = &rogue.ClusterSpec{Center: rc.Cluster.Center, Radius: rc.Cluster.Radius}
		}
		re, err := rogue.NewEngine(rogue.Config{
			Params:         p,
			ReplicateEvery: rc.ReplicateEvery,
			DetectProb:     rc.DetectProb,
			InitialRogues:  rc.InitialRogues,
			RoguesPerEpoch: rc.RoguesPerEpoch,
			Cluster:        cluster,
			Scheduler:      simCfg.Scheduler,
			Matcher:        simCfg.Matcher,
			Adversary:      adv,
			K:              k,
			Seed:           cfg.Seed,
			InitialSize:    cfg.InitialSize,
			Workers:        cfg.Workers,
		}, stepper)
		if err != nil {
			return nil, fmt.Errorf("popstab: %w", err)
		}
		s.eng = re.Engine
		s.overlay = re.Overlay()
		return s, nil
	}
	simCfg.Protocol = stepper
	eng, err := sim.New(simCfg)
	if err != nil {
		return nil, fmt.Errorf("popstab: %w", err)
	}
	s.eng = eng
	return s, nil
}

// Params reports the derived parameterization.
func (s *Sim) Params() Params { return s.params }

// Kind reports which protocol the simulation runs.
func (s *Sim) Kind() ProtocolKind { return s.kind }

// Size reports the current population size.
func (s *Sim) Size() int { return s.eng.Size() }

// GlobalRound reports the number of completed rounds.
func (s *Sim) GlobalRound() uint64 { return s.eng.GlobalRound() }

// EpochLen reports the running protocol's epoch length in rounds, cached at
// construction.
func (s *Sim) EpochLen() int { return s.epochLen }

// RunRound executes one round.
func (s *Sim) RunRound() RoundReport { return s.eng.RunRound() }

// RunRounds executes n rounds, returning the final report.
func (s *Sim) RunRounds(n int) RoundReport { return s.eng.RunRounds(n) }

// RunEpoch executes rounds up to the next epoch boundary.
func (s *Sim) RunEpoch() EpochReport { return s.eng.RunEpoch() }

// RunEpochs executes n epochs and returns their reports.
func (s *Sim) RunEpochs(n int) []EpochReport { return s.eng.RunEpochs(n) }

// Census snapshots the population's aggregate state.
func (s *Sim) Census() Census { return s.eng.Census() }

// Close releases the engine's parked worker-pool goroutines. The simulation
// stays usable afterwards (sharded phases run inline); idempotent. Callers
// that hold many simulations concurrently — the job server hibernating or
// garbage-collecting sessions — close eagerly so goroutine count tracks
// live work; everyone else may simply drop the Sim (a runtime cleanup
// covers it).
func (s *Sim) Close() { s.eng.Close() }

// MatchStats reports the spatial matcher's cumulative per-phase pipeline
// counters (bucket/scatter/candidate/walk times, speculative-walk conflict
// counts). ok is false for communication models without a phase pipeline
// (the well-mixed scheduler). Observability only — popbench's per-phase
// throughput breakdown reads it; nothing feeds back into the simulation.
func (s *Sim) MatchStats() (stats MatchPipelineStats, ok bool) {
	if r, isSpatial := s.eng.Matcher().(match.PhaseReporter); isSpatial {
		return r.PipelineStats(), true
	}
	return MatchPipelineStats{}, false
}

// RoundStats reports the engine's cumulative per-phase cost counters
// (adversary, compose, match, step, kill-fold, apply, snapshot — plus
// per-round allocation and population deltas). Observability only, for
// every matcher and program: the counters never feed back into the
// simulation and are excluded from snapshots. popsim's -stats flag and the
// serve layer's phase histograms read them.
func (s *Sim) RoundStats() RoundStats { return s.eng.RoundStats() }

// Counters exposes the paper protocol's event counters (nil for baselines).
func (s *Sim) Counters() *Counters {
	if s.proto == nil {
		return nil
	}
	return s.proto.Counters()
}

// Displace forcibly resizes the population to n agents (experimental
// machinery for drift/recovery studies; not part of the model).
func (s *Sim) Displace(n int) { s.eng.ForceResize(n) }

// RogueCounts reports the honest and rogue populations (0, Size() without
// the extension).
func (s *Sim) RogueCounts() (honest, rogues int) {
	if s.overlay == nil {
		return s.Size(), 0
	}
	return s.overlay.Counts()
}

// RogueStats returns the malicious-program extension's counters (zero
// without the extension).
func (s *Sim) RogueStats() RogueStats {
	if s.overlay == nil {
		return RogueStats{}
	}
	return s.overlay.Stats()
}

// InInterval reports whether the population currently lies within
// [(1−α)N, (1+α)N]. The bounds are the integers inside the closed real
// interval: the lower bound rounds up and the upper bound rounds down, so a
// population of exactly (1−α)N or (1+α)N is admissible and nothing closer
// to the boundary is misclassified.
func (s *Sim) InInterval() bool {
	lo := int(math.Ceil(float64(s.params.N) * (1 - s.params.Alpha)))
	hi := int(math.Floor(float64(s.params.N) * (1 + s.params.Alpha)))
	return s.Size() >= lo && s.Size() <= hi
}
