package popstab_test

import (
	"fmt"
	"strings"
	"testing"

	"popstab"
)

func TestNewDefaults(t *testing.T) {
	s, err := popstab.New(popstab.Config{N: 4096, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Params()
	if p.N != 4096 || p.Tinner != 144 || p.Gamma != 0.25 || p.Alpha != 0.5 {
		t.Errorf("defaults: %+v", p)
	}
	if s.Size() != 4096 {
		t.Errorf("initial size %d", s.Size())
	}
	if s.Kind() != popstab.Paper {
		t.Errorf("kind %v", s.Kind())
	}
	if !s.InInterval() {
		t.Error("initial population outside interval")
	}
}

func TestNewValidation(t *testing.T) {
	cases := []popstab.Config{
		{N: 1000},                 // too small / not power of four
		{N: 4096, MessageBits: 5}, // unsupported codec
		{N: 4096, Tinner: 3},      // below ω(log N)
		{N: 4096, Gamma: 2},       // invalid gamma
		{N: 4096, Protocol: popstab.ProtocolKind(99)}, // unknown protocol
	}
	for i, cfg := range cases {
		if _, err := popstab.New(cfg); err == nil {
			t.Errorf("case %d: accepted %+v", i, cfg)
		}
	}
}

func TestRunEpochsStability(t *testing.T) {
	s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	reps := s.RunEpochs(10)
	if len(reps) != 10 {
		t.Fatalf("got %d reports", len(reps))
	}
	for _, r := range reps {
		if r.MinSize < 2048 || r.MaxSize > 6144 {
			t.Fatalf("population left the interval: %+v", r)
		}
	}
	if !s.InInterval() {
		t.Error("final population outside interval")
	}
	if s.GlobalRound() != uint64(10*s.EpochLen()) {
		t.Errorf("global round %d", s.GlobalRound())
	}
}

func TestCountersExposed(t *testing.T) {
	s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.RunEpoch()
	c := s.Counters()
	if c == nil || c.Leaders == 0 {
		t.Errorf("counters not populated: %+v", c)
	}
}

func TestBaselineKinds(t *testing.T) {
	for _, kind := range []popstab.ProtocolKind{popstab.Attempt1, popstab.Attempt2, popstab.Empty} {
		s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 4, Protocol: kind})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		s.RunRounds(50)
		if s.Kind() != kind {
			t.Errorf("kind %v", s.Kind())
		}
		if kind != popstab.Attempt1 && s.EpochLen() != 1 {
			t.Errorf("%v epoch len %d", kind, s.EpochLen())
		}
		if s.Counters() != nil {
			t.Errorf("%v must not expose paper counters", kind)
		}
	}
}

func TestProtocolKindStrings(t *testing.T) {
	cases := map[popstab.ProtocolKind]string{
		popstab.Paper:    "paper",
		popstab.Attempt1: "attempt1",
		popstab.Attempt2: "attempt2",
		popstab.Empty:    "empty",
	}
	for kind, want := range cases {
		if kind.String() != want {
			t.Errorf("%d.String() = %q", int(kind), kind.String())
		}
		parsed, err := popstab.ProtocolKindFromString(want)
		if err != nil || parsed != kind {
			t.Errorf("parse %q = %v, %v", want, parsed, err)
		}
	}
	if _, err := popstab.ProtocolKindFromString("nope"); err == nil {
		t.Error("parsed unknown protocol")
	}
	if def, err := popstab.ProtocolKindFromString(""); err != nil || def != popstab.Paper {
		t.Error("empty string must default to paper")
	}
}

func TestFourBitCodecConfig(t *testing.T) {
	s3, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 5, MessageBits: 3})
	if err != nil {
		t.Fatal(err)
	}
	s4, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 5, MessageBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a := s3.RunRound()
		b := s4.RunRound()
		if a.SizeAfter != b.SizeAfter {
			t.Fatalf("codec trajectories diverged at round %d", i)
		}
	}
}

func TestAdversaryByName(t *testing.T) {
	s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Params()
	for _, name := range popstab.AdversaryNames() {
		adv, err := popstab.NewAdversaryByName(name, p)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if adv == nil {
			t.Errorf("%s: nil adversary", name)
		}
	}
	if _, err := popstab.NewAdversaryByName("bogus", p); err == nil {
		t.Error("accepted bogus adversary name")
	}
}

func TestAdversarialRun(t *testing.T) {
	s, err := popstab.New(popstab.Config{
		N: 4096, Tinner: 24, Seed: 7,
		Adversary:      popstab.NewGreedy(),
		K:              1,
		PerEpochBudget: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	inserted, deleted := 0, 0
	for _, rep := range s.RunEpochs(5) {
		inserted += rep.AdvInserted
		deleted += rep.AdvDeleted
	}
	if inserted+deleted == 0 {
		t.Error("paced adversary never acted")
	}
	if inserted+deleted > 5*8+8 {
		t.Errorf("adversary exceeded per-epoch budget: %d alterations in 5 epochs", inserted+deleted)
	}
	if !s.InInterval() {
		t.Error("population left interval under budgeted adversary")
	}
}

func TestDisplace(t *testing.T) {
	s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.Displace(3000)
	if s.Size() != 3000 {
		t.Errorf("size %d after Displace", s.Size())
	}
}

func TestCensus(t *testing.T) {
	s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s.RunRounds(10)
	c := s.Census()
	if c.Total != s.Size() {
		t.Errorf("census total %d != size %d", c.Total, s.Size())
	}
}

func TestRecordEpochs(t *testing.T) {
	s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	rec := popstab.NewTraceRecorder()
	reps := popstab.RecordEpochs(s, 3, rec)
	if len(reps) != 3 {
		t.Fatalf("got %d reports", len(reps))
	}
	names := rec.Names()
	if len(names) != 3 {
		t.Fatalf("series %v", names)
	}
	if rec.Series("population").Len() != 3 {
		t.Error("population series incomplete")
	}
	_, last := rec.Series("population").Last()
	if int(last) != reps[2].EndSize {
		t.Errorf("last recorded %v != report %d", last, reps[2].EndSize)
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := popstab.ExperimentIDs()
	if len(ids) != 23 {
		t.Fatalf("suite has %d experiments: %v", len(ids), ids)
	}
	title, claim, err := popstab.ExperimentInfo("E13")
	if err != nil || title == "" || claim == "" {
		t.Fatalf("ExperimentInfo: %q %q %v", title, claim, err)
	}
	if _, _, err := popstab.ExperimentInfo("E99"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := popstab.RunExperiment("E99", popstab.ExperimentConfig{}); err == nil {
		t.Error("unknown experiment ran")
	}
	// E13 is the cheapest experiment: run it through the facade.
	res, err := popstab.RunExperiment("E13", popstab.ExperimentConfig{Scale: popstab.ScaleQuick, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "E13" || !strings.HasPrefix(res.Verdict, "REPRODUCED") {
		t.Errorf("E13 result: %s / %s", res.ID, res.Verdict)
	}
}

// TestParallelWorkersEquivalence is the public-surface determinism
// guarantee of the parallel round engine: for every protocol kind, and for
// an adversarial run, the full RoundReport trajectory and final Census are
// bit-identical across Workers ∈ {1, 2, 8}.
func TestParallelWorkersEquivalence(t *testing.T) {
	kinds := []popstab.ProtocolKind{
		popstab.Paper, popstab.Attempt1, popstab.Attempt2, popstab.Empty,
	}
	type arm struct {
		name string
		cfg  popstab.Config
	}
	var arms []arm
	for _, kind := range kinds {
		arms = append(arms, arm{
			name: kind.String(),
			cfg:  popstab.Config{N: 4096, Tinner: 24, Seed: 31, Protocol: kind},
		})
	}
	arms = append(arms, arm{
		name: "paper-adversarial",
		cfg: popstab.Config{N: 4096, Tinner: 24, Seed: 32,
			Adversary: popstab.NewGreedy(), K: 4},
	})

	const rounds = 300
	run := func(cfg popstab.Config, workers int) ([]popstab.RoundReport, popstab.Census) {
		cfg.Workers = workers
		s, err := popstab.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reps := make([]popstab.RoundReport, rounds)
		for i := range reps {
			reps[i] = s.RunRound()
		}
		return reps, s.Census()
	}
	for _, a := range arms {
		t.Run(a.name, func(t *testing.T) {
			wantReps, wantCensus := run(a.cfg, 1)
			for _, w := range []int{2, 8} {
				gotReps, gotCensus := run(a.cfg, w)
				for i := range wantReps {
					if gotReps[i] != wantReps[i] {
						t.Fatalf("workers=%d: round %d diverged:\n  got  %+v\n  want %+v",
							w, i, gotReps[i], wantReps[i])
					}
				}
				if fmt.Sprintf("%+v", gotCensus) != fmt.Sprintf("%+v", wantCensus) {
					t.Fatalf("workers=%d: census diverged:\n  got  %+v\n  want %+v",
						w, gotCensus, wantCensus)
				}
			}
		})
	}
}
