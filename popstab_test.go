package popstab_test

import (
	"fmt"
	"strings"
	"testing"

	"popstab"
	"popstab/internal/match"
)

func TestNewDefaults(t *testing.T) {
	s, err := popstab.New(popstab.Config{N: 4096, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Params()
	if p.N != 4096 || p.Tinner != 144 || p.Gamma != 0.25 || p.Alpha != 0.5 {
		t.Errorf("defaults: %+v", p)
	}
	if s.Size() != 4096 {
		t.Errorf("initial size %d", s.Size())
	}
	if s.Kind() != popstab.Paper {
		t.Errorf("kind %v", s.Kind())
	}
	if !s.InInterval() {
		t.Error("initial population outside interval")
	}
}

func TestNewValidation(t *testing.T) {
	cases := []popstab.Config{
		{N: 1000},                 // too small / not power of four
		{N: 4096, MessageBits: 5}, // unsupported codec
		{N: 4096, Tinner: 3},      // below ω(log N)
		{N: 4096, Gamma: 2},       // invalid gamma
		{N: 4096, Protocol: popstab.ProtocolKind(99)}, // unknown protocol
	}
	for i, cfg := range cases {
		if _, err := popstab.New(cfg); err == nil {
			t.Errorf("case %d: accepted %+v", i, cfg)
		}
	}
}

func TestRunEpochsStability(t *testing.T) {
	s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	reps := s.RunEpochs(10)
	if len(reps) != 10 {
		t.Fatalf("got %d reports", len(reps))
	}
	for _, r := range reps {
		if r.MinSize < 2048 || r.MaxSize > 6144 {
			t.Fatalf("population left the interval: %+v", r)
		}
	}
	if !s.InInterval() {
		t.Error("final population outside interval")
	}
	if s.GlobalRound() != uint64(10*s.EpochLen()) {
		t.Errorf("global round %d", s.GlobalRound())
	}
}

func TestCountersExposed(t *testing.T) {
	s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.RunEpoch()
	c := s.Counters()
	if c == nil || c.Leaders == 0 {
		t.Errorf("counters not populated: %+v", c)
	}
}

func TestBaselineKinds(t *testing.T) {
	for _, kind := range []popstab.ProtocolKind{popstab.Attempt1, popstab.Attempt2, popstab.Empty} {
		s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 4, Protocol: kind})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		s.RunRounds(50)
		if s.Kind() != kind {
			t.Errorf("kind %v", s.Kind())
		}
		if kind != popstab.Attempt1 && s.EpochLen() != 1 {
			t.Errorf("%v epoch len %d", kind, s.EpochLen())
		}
		if s.Counters() != nil {
			t.Errorf("%v must not expose paper counters", kind)
		}
	}
}

func TestProtocolKindStrings(t *testing.T) {
	cases := map[popstab.ProtocolKind]string{
		popstab.Paper:    "paper",
		popstab.Attempt1: "attempt1",
		popstab.Attempt2: "attempt2",
		popstab.Empty:    "empty",
	}
	for kind, want := range cases {
		if kind.String() != want {
			t.Errorf("%d.String() = %q", int(kind), kind.String())
		}
		parsed, err := popstab.ProtocolKindFromString(want)
		if err != nil || parsed != kind {
			t.Errorf("parse %q = %v, %v", want, parsed, err)
		}
	}
	if _, err := popstab.ProtocolKindFromString("nope"); err == nil {
		t.Error("parsed unknown protocol")
	}
	if def, err := popstab.ProtocolKindFromString(""); err != nil || def != popstab.Paper {
		t.Error("empty string must default to paper")
	}
}

func TestFourBitCodecConfig(t *testing.T) {
	s3, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 5, MessageBits: 3})
	if err != nil {
		t.Fatal(err)
	}
	s4, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 5, MessageBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a := s3.RunRound()
		b := s4.RunRound()
		if a.SizeAfter != b.SizeAfter {
			t.Fatalf("codec trajectories diverged at round %d", i)
		}
	}
}

func TestAdversaryByName(t *testing.T) {
	s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	p := s.Params()
	for _, name := range popstab.AdversaryNames() {
		adv, err := popstab.NewAdversaryByName(name, p)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if adv == nil {
			t.Errorf("%s: nil adversary", name)
		}
	}
	if _, err := popstab.NewAdversaryByName("bogus", p); err == nil {
		t.Error("accepted bogus adversary name")
	}
}

func TestAdversarialRun(t *testing.T) {
	s, err := popstab.New(popstab.Config{
		N: 4096, Tinner: 24, Seed: 7,
		Adversary:      popstab.NewGreedy(),
		K:              1,
		PerEpochBudget: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	inserted, deleted := 0, 0
	for _, rep := range s.RunEpochs(5) {
		inserted += rep.AdvInserted
		deleted += rep.AdvDeleted
	}
	if inserted+deleted == 0 {
		t.Error("paced adversary never acted")
	}
	if inserted+deleted > 5*8+8 {
		t.Errorf("adversary exceeded per-epoch budget: %d alterations in 5 epochs", inserted+deleted)
	}
	if !s.InInterval() {
		t.Error("population left interval under budgeted adversary")
	}
}

func TestDisplace(t *testing.T) {
	s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	s.Displace(3000)
	if s.Size() != 3000 {
		t.Errorf("size %d after Displace", s.Size())
	}
}

func TestCensus(t *testing.T) {
	s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s.RunRounds(10)
	c := s.Census()
	if c.Total != s.Size() {
		t.Errorf("census total %d != size %d", c.Total, s.Size())
	}
}

func TestRecordEpochs(t *testing.T) {
	s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	rec := popstab.NewTraceRecorder()
	reps := popstab.RecordEpochs(s, 3, rec)
	if len(reps) != 3 {
		t.Fatalf("got %d reports", len(reps))
	}
	names := rec.Names()
	if len(names) != 3 {
		t.Fatalf("series %v", names)
	}
	if rec.Series("population").Len() != 3 {
		t.Error("population series incomplete")
	}
	_, last := rec.Series("population").Last()
	if int(last) != reps[2].EndSize {
		t.Errorf("last recorded %v != report %d", last, reps[2].EndSize)
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := popstab.ExperimentIDs()
	if len(ids) != 26 {
		t.Fatalf("suite has %d experiments: %v", len(ids), ids)
	}
	title, claim, err := popstab.ExperimentInfo("E13")
	if err != nil || title == "" || claim == "" {
		t.Fatalf("ExperimentInfo: %q %q %v", title, claim, err)
	}
	if _, _, err := popstab.ExperimentInfo("E99"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := popstab.RunExperiment("E99", popstab.ExperimentConfig{}); err == nil {
		t.Error("unknown experiment ran")
	}
	// E13 is the cheapest experiment: run it through the facade.
	res, err := popstab.RunExperiment("E13", popstab.ExperimentConfig{Scale: popstab.ScaleQuick, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "E13" || !strings.HasPrefix(res.Verdict, "REPRODUCED") {
		t.Errorf("E13 result: %s / %s", res.ID, res.Verdict)
	}
}

// TestParallelWorkersEquivalence is the public-surface determinism
// guarantee of the parallel round engine: for every protocol kind, and for
// an adversarial run, the full RoundReport trajectory and final Census are
// bit-identical across Workers ∈ {1, 2, 8}.
func TestParallelWorkersEquivalence(t *testing.T) {
	kinds := []popstab.ProtocolKind{
		popstab.Paper, popstab.Attempt1, popstab.Attempt2, popstab.Empty,
	}
	type arm struct {
		name string
		cfg  popstab.Config
	}
	var arms []arm
	for _, kind := range kinds {
		arms = append(arms, arm{
			name: kind.String(),
			cfg:  popstab.Config{N: 4096, Tinner: 24, Seed: 31, Protocol: kind},
		})
	}
	arms = append(arms, arm{
		name: "paper-adversarial",
		cfg: popstab.Config{N: 4096, Tinner: 24, Seed: 32,
			Adversary: popstab.NewGreedy(), K: 4},
	})
	arms = append(arms, arm{
		name: "torus-adversarial",
		cfg: popstab.Config{N: 4096, Tinner: 24, Seed: 33, Topology: popstab.Torus,
			Adversary: popstab.NewGreedy(), K: 2},
	})
	arms = append(arms, arm{
		name: "rogue-on-torus",
		cfg: popstab.Config{N: 4096, Tinner: 24, Seed: 34, Topology: popstab.Torus,
			Rogue: &popstab.RogueConfig{ReplicateEvery: 8, DetectProb: 1, InitialRogues: 32}},
	})
	// The rest of the topology gallery: all spatial matchers shard their
	// own matching phase, so they must stay bit-identical across worker
	// counts too (including under an adversary, whose insertions exercise
	// the Place hook).
	arms = append(arms, arm{
		name: "grid-adversarial",
		cfg: popstab.Config{N: 4096, Tinner: 24, Seed: 35, Topology: popstab.Grid,
			Adversary: popstab.NewGreedy(), K: 2},
	})
	arms = append(arms, arm{
		name: "ring",
		cfg:  popstab.Config{N: 4096, Tinner: 24, Seed: 36, Topology: popstab.Ring},
	})
	arms = append(arms, arm{
		name: "smallworld",
		cfg: popstab.Config{N: 4096, Tinner: 24, Seed: 37, Topology: popstab.SmallWorld,
			RewireProb: 0.25},
	})

	const rounds = 300
	run := func(cfg popstab.Config, workers int) ([]popstab.RoundReport, popstab.Census) {
		cfg.Workers = workers
		s, err := popstab.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reps := make([]popstab.RoundReport, rounds)
		for i := range reps {
			reps[i] = s.RunRound()
		}
		return reps, s.Census()
	}
	for _, a := range arms {
		t.Run(a.name, func(t *testing.T) {
			wantReps, wantCensus := run(a.cfg, 1)
			for _, w := range []int{2, 8} {
				gotReps, gotCensus := run(a.cfg, w)
				for i := range wantReps {
					if gotReps[i] != wantReps[i] {
						t.Fatalf("workers=%d: round %d diverged:\n  got  %+v\n  want %+v",
							w, i, gotReps[i], wantReps[i])
					}
				}
				if fmt.Sprintf("%+v", gotCensus) != fmt.Sprintf("%+v", wantCensus) {
					t.Fatalf("workers=%d: census diverged:\n  got  %+v\n  want %+v",
						w, gotCensus, wantCensus)
				}
			}
		})
	}
}

// TestInIntervalBoundary pins the interval arithmetic of InInterval: the
// admissible range is the closed real interval [(1−α)N, (1+α)N], so the
// integer lower bound rounds UP (a population one below ⌈(1−α)N⌉ violates)
// and the upper bound rounds down. With α = 0.3, (1−α)N = 2867.2 — so 2867
// is out and 2868 is in, which truncation would misclassify.
func TestInIntervalBoundary(t *testing.T) {
	cases := []struct {
		size int
		want bool
	}{
		{2867, false}, // below ⌈2867.2⌉ = 2868
		{2868, true},  // exactly the smallest admissible integer
		{5324, true},  // ⌊5324.8⌋ = 5324, largest admissible integer
		{5325, false}, // above (1+α)N
	}
	for _, tc := range cases {
		s, err := popstab.New(popstab.Config{
			N: 4096, Tinner: 24, Alpha: 0.3, Seed: 1, InitialSize: tc.size,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.InInterval(); got != tc.want {
			t.Errorf("size %d: InInterval = %v, want %v", tc.size, got, tc.want)
		}
	}
}

func TestTopologyConfig(t *testing.T) {
	if _, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Topology: popstab.Torus,
		Scheduler: match.Full{}}); err == nil {
		t.Error("accepted Scheduler together with Torus topology")
	}
	if _, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, DaughterSpread: 1}); err == nil {
		t.Error("accepted DaughterSpread on the mixed topology")
	}
	if _, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Topology: popstab.Topology(9)}); err == nil {
		t.Error("accepted unknown topology")
	}
	for in, want := range map[string]popstab.Topology{
		"": popstab.Mixed, "mixed": popstab.Mixed, "torus": popstab.Torus,
		"grid": popstab.Grid, "ring": popstab.Ring, "smallworld": popstab.SmallWorld,
	} {
		got, err := popstab.TopologyFromString(in)
		if err != nil || got != want {
			t.Errorf("TopologyFromString(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := popstab.TopologyFromString("moebius"); err == nil {
		t.Error("parsed unknown topology name")
	}
	// Round trip: every gallery topology parses back from its name.
	for _, topo := range popstab.Topologies() {
		got, err := popstab.TopologyFromString(topo.String())
		if err != nil || got != topo {
			t.Errorf("topology %v does not round-trip: %v, %v", topo, got, err)
		}
	}
	// RewireProb is SmallWorld-only and validated.
	if _, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, RewireProb: 0.5}); err == nil {
		t.Error("accepted RewireProb on the mixed topology")
	}
	if _, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Topology: popstab.Ring,
		RewireProb: 0.5}); err == nil {
		t.Error("accepted RewireProb on the ring topology")
	}
	if _, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Topology: popstab.SmallWorld,
		RewireProb: 1.5}); err == nil {
		t.Error("accepted RewireProb outside [0, 1]")
	}
	if _, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Topology: popstab.SmallWorld,
		RewireProb: 0.3}); err != nil {
		t.Errorf("rejected valid SmallWorld config: %v", err)
	}
}

// TestRogueExtensionThroughConfig drives the malicious-program extension
// through the public Config surface (mixed topology) and asserts the rogue
// cohort is contained while the honest population persists.
func TestRogueExtensionThroughConfig(t *testing.T) {
	s, err := popstab.New(popstab.Config{
		N: 4096, Tinner: 24, Seed: 5,
		Rogue: &popstab.RogueConfig{ReplicateEvery: 16, DetectProb: 1, InitialRogues: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	honest, rogues := s.RogueCounts()
	if honest != 4096 || rogues != 64 {
		t.Fatalf("initial composition %d/%d", honest, rogues)
	}
	s.RunEpochs(3)
	honest, rogues = s.RogueCounts()
	if rogues > 8 {
		t.Errorf("rogues not contained: %d remain", rogues)
	}
	if honest < 2048 || honest > 8192 {
		t.Errorf("honest population destabilized: %d", honest)
	}
	if s.RogueStats().RogueKills == 0 {
		t.Error("no kills recorded")
	}
	// Invalid rogue parameterizations must be rejected.
	bad := []popstab.RogueConfig{
		{ReplicateEvery: 0, DetectProb: 1},
		{ReplicateEvery: 4, DetectProb: 1.5},
		{ReplicateEvery: 4, DetectProb: 1, InitialRogues: -1},
	}
	for i, rc := range bad {
		rc := rc
		if _, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Rogue: &rc}); err == nil {
			t.Errorf("case %d: accepted %+v", i, rc)
		}
	}
}

// TestRogueWithoutExtensionAccessors pins the degenerate accessors.
func TestRogueWithoutExtensionAccessors(t *testing.T) {
	s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	honest, rogues := s.RogueCounts()
	if honest != s.Size() || rogues != 0 {
		t.Errorf("RogueCounts without extension = %d/%d", honest, rogues)
	}
	if s.RogueStats() != (popstab.RogueStats{}) {
		t.Errorf("RogueStats without extension = %+v", s.RogueStats())
	}
}

// TestSelfishConfig wires Config.Selfish end to end: the selfish variant
// escapes the admissible interval with no adversary at all, and the flag
// composes with spatial topologies.
func TestSelfishConfig(t *testing.T) {
	s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 31, Selfish: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	escaped := false
	for i := 0; i < s.EpochLen() && !escaped; i++ {
		s.RunRound()
		escaped = !s.InInterval() && s.Size() > 4096
	}
	if !escaped {
		t.Fatalf("selfish run still at %d agents, want escape above the interval", s.Size())
	}
	if _, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 31, Selfish: true, Topology: popstab.Ring, Workers: 1}); err != nil {
		t.Fatalf("Selfish on Ring: %v", err)
	}
}

// TestSpatialAdversaryConfig drives the patch family through the public
// Config on a ring and checks the spatial names registry.
func TestSpatialAdversaryConfig(t *testing.T) {
	spec := popstab.PatchSpec{Center: popstab.Point{X: 0.5}, Radius: 0.05}
	for _, name := range popstab.SpatialAdversaryNames() {
		if _, err := popstab.NewSpatialAdversaryByName(name, popstab.Params{}, spec); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := popstab.NewSpatialAdversaryByName("bogus", popstab.Params{}, spec); err == nil {
		t.Error("unknown spatial adversary accepted")
	}
	adv, err := popstab.NewSpatialAdversaryByName("delete-patch", popstab.Params{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 32, Topology: popstab.Ring,
		Adversary: adv, K: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep := s.RunRound()
	if rep.AdvDeleted != 4 {
		t.Errorf("patch deleter removed %d, want 4", rep.AdvDeleted)
	}
}

// TestRogueClusterConfig validates the clustered-infiltration plumbing:
// spatial topology required, and the clustered run is deterministic in the
// seed.
func TestRogueClusterConfig(t *testing.T) {
	spec := &popstab.PatchSpec{Center: popstab.Point{X: 0.5}, Radius: 0.02}
	if _, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 33,
		Rogue: &popstab.RogueConfig{ReplicateEvery: 3, DetectProb: 1, InitialRogues: 8, Cluster: spec},
	}); err == nil {
		t.Error("Cluster accepted on the mixed topology")
	}
	run := func() (int, int) {
		s, err := popstab.New(popstab.Config{N: 4096, Tinner: 24, Seed: 33, Topology: popstab.Ring, Workers: 1,
			Rogue: &popstab.RogueConfig{ReplicateEvery: 3, DetectProb: 1, InitialRogues: 8, Cluster: spec},
		})
		if err != nil {
			t.Fatal(err)
		}
		s.RunRounds(16)
		return s.RogueCounts()
	}
	h1, r1 := run()
	h2, r2 := run()
	if h1 != h2 || r1 != r2 {
		t.Errorf("clustered rogue run not deterministic: (%d,%d) vs (%d,%d)", h1, r1, h2, r2)
	}
}
