// Package stats provides the statistical tools the experiment harness uses
// to compare measured behavior against the paper's claims: summary
// statistics, quantiles, concentration bounds, and log-log regression for
// scaling exponents.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds streaming moments of a sample (Welford's algorithm), plus
// extremes.
type Summary struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation in.
func (s *Summary) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll folds a slice of observations in.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// N reports the sample size.
func (s *Summary) N() int { return s.n }

// Mean reports the sample mean (0 for an empty sample).
func (s *Summary) Mean() float64 { return s.mean }

// Var reports the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std reports the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// StdErr reports the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// Min and Max report the extremes (0 for an empty sample).
func (s *Summary) Min() float64 { return s.min }

// Max reports the largest observation.
func (s *Summary) Max() float64 { return s.max }

// String renders mean ± stderr [min, max] (n).
func (s *Summary) String() string {
	return fmt.Sprintf("%.3f±%.3f [%.3f,%.3f] (n=%d)", s.Mean(), s.StdErr(), s.min, s.max, s.n)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear interpolation
// on the sorted sample. It copies xs. An empty sample returns 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median is Quantile(xs, 0.5).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// HoeffdingBound returns the two-sided Hoeffding deviation bound
// Pr[|X̄ − E[X̄]| ≥ t] ≤ 2·exp(−2nt²/(b−a)²) for n samples in [a, b]:
// the concentration inequality behind the paper's Lemma 9.
func HoeffdingBound(n int, a, b, t float64) float64 {
	if n <= 0 || b <= a || t <= 0 {
		return 1
	}
	p := 2 * math.Exp(-2*float64(n)*t*t/((b-a)*(b-a)))
	if p > 1 {
		return 1
	}
	return p
}

// HoeffdingRadius inverts HoeffdingBound: the deviation t such that n samples
// in [a, b] stay within t of their mean with probability ≥ 1−delta.
func HoeffdingRadius(n int, a, b, delta float64) float64 {
	if n <= 0 || b <= a || delta <= 0 || delta >= 1 {
		return math.Inf(1)
	}
	return (b - a) * math.Sqrt(math.Log(2/delta)/(2*float64(n)))
}

// BinomialWilson returns the Wilson score interval for a binomial proportion:
// k successes in n trials at ~95% confidence (z = 1.96).
func BinomialWilson(k, n int) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	const z = 1.959963984540054
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	radius := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-radius, center+radius
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// FitPowerLaw fits y = c·x^e by least squares in log-log space and returns
// the exponent e, the coefficient c, and the R² of the log-log fit. Pairs
// with non-positive coordinates are skipped. Used to verify scaling claims
// like Lemma 7's per-epoch deviation Õ(√N) (exponent ≈ ½).
func FitPowerLaw(xs, ys []float64) (exponent, coeff, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, fmt.Errorf("stats: mismatched lengths %d, %d", len(xs), len(ys))
	}
	var lx, ly []float64
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return 0, 0, 0, fmt.Errorf("stats: %d positive points, need >= 2", len(lx))
	}
	slope, intercept, r := linreg(lx, ly)
	return slope, math.Exp(intercept), r * r, nil
}

// linreg computes least-squares slope, intercept and correlation.
func linreg(xs, ys []float64) (slope, intercept, r float64) {
	n := float64(len(xs))
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	dx := n*sxx - sx*sx
	if dx == 0 {
		return 0, sy / n, 0
	}
	slope = (n*sxy - sx*sy) / dx
	intercept = (sy - slope*sx) / n
	dy := n*syy - sy*sy
	if dy <= 0 {
		return slope, intercept, 1
	}
	r = (n*sxy - sx*sy) / math.Sqrt(dx*dy)
	return slope, intercept, r
}

// Histogram buckets observations into k equal-width bins over [min, max].
type Histogram struct {
	// Lo and Hi bound the histogram range.
	Lo, Hi float64
	// Counts holds one bucket per bin plus underflow/overflow at the ends.
	Counts []int
}

// NewHistogram builds a histogram with k bins over [lo, hi].
func NewHistogram(lo, hi float64, k int) (*Histogram, error) {
	if k <= 0 || hi <= lo {
		return nil, fmt.Errorf("stats: bad histogram [%v,%v)/%d", lo, hi, k)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, k+2)}, nil
}

// Add buckets one observation.
func (h *Histogram) Add(x float64) {
	k := len(h.Counts) - 2
	switch {
	case x < h.Lo:
		h.Counts[0]++
	case x >= h.Hi:
		h.Counts[k+1]++
	default:
		bin := int(float64(k) * (x - h.Lo) / (h.Hi - h.Lo))
		if bin >= k {
			bin = k - 1
		}
		h.Counts[1+bin]++
	}
}

// Total reports the number of observations added.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}
