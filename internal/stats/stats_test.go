package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"popstab/internal/prng"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	s.AddAll([]float64{1, 2, 3, 4, 5})
	if s.N() != 5 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 3 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if math.Abs(s.Var()-2.5) > 1e-12 {
		t.Errorf("Var = %v, want 2.5", s.Var())
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Errorf("extremes %v, %v", s.Min(), s.Max())
	}
	if math.Abs(s.StdErr()-math.Sqrt(2.5/5)) > 1e-12 {
		t.Errorf("StdErr = %v", s.StdErr())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Var() != 0 || s.StdErr() != 0 {
		t.Error("empty summary nonzero")
	}
}

func TestSummarySingle(t *testing.T) {
	var s Summary
	s.Add(7)
	if s.Var() != 0 {
		t.Error("single-sample variance nonzero")
	}
	if s.Min() != 7 || s.Max() != 7 {
		t.Error("single-sample extremes")
	}
}

// TestSummaryMatchesNaive is a property test against the naive two-pass
// formulas.
func TestSummaryMatchesNaive(t *testing.T) {
	src := prng.New(1)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = src.Float64()*200 - 100
		}
		var s Summary
		s.AddAll(xs)
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		varSum := 0.0
		for _, x := range xs {
			varSum += (x - mean) * (x - mean)
		}
		wantVar := varSum / float64(n-1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Var()-wantVar) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Quantile mutated input")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile")
	}
	if Median(xs) != 3 {
		t.Error("Median")
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); got != 5 {
		t.Errorf("interpolated median = %v", got)
	}
}

func TestHoeffdingBound(t *testing.T) {
	// Known value: n=100, range [0,1], t=0.1 → 2e^{-2} ≈ 0.2707.
	got := HoeffdingBound(100, 0, 1, 0.1)
	if math.Abs(got-2*math.Exp(-2)) > 1e-9 {
		t.Errorf("HoeffdingBound = %v", got)
	}
	if HoeffdingBound(0, 0, 1, 0.1) != 1 {
		t.Error("n=0 must return 1")
	}
	if HoeffdingBound(10, 1, 0, 0.1) != 1 {
		t.Error("inverted range must return 1")
	}
	if HoeffdingBound(1000000, 0, 1, 0.5) > 1e-10 {
		t.Error("huge n small bound")
	}
}

func TestHoeffdingRadiusInverts(t *testing.T) {
	n, a, b, delta := 500, -2.0, 3.0, 0.05
	r := HoeffdingRadius(n, a, b, delta)
	if p := HoeffdingBound(n, a, b, r); math.Abs(p-delta) > 1e-9 {
		t.Errorf("bound at radius = %v, want %v", p, delta)
	}
	if !math.IsInf(HoeffdingRadius(0, 0, 1, 0.1), 1) {
		t.Error("n=0 radius must be infinite")
	}
}

func TestBinomialWilson(t *testing.T) {
	lo, hi := BinomialWilson(50, 100)
	if lo > 0.5 || hi < 0.5 {
		t.Errorf("interval [%v,%v] excludes the point estimate", lo, hi)
	}
	if lo < 0.35 || hi > 0.65 {
		t.Errorf("interval [%v,%v] too wide for n=100", lo, hi)
	}
	lo, hi = BinomialWilson(0, 0)
	if lo != 0 || hi != 1 {
		t.Error("empty-trial interval")
	}
	lo, _ = BinomialWilson(0, 10)
	if lo != 0 {
		t.Errorf("k=0 lower bound %v", lo)
	}
	_, hi = BinomialWilson(10, 10)
	if hi != 1 {
		t.Errorf("k=n upper bound %v", hi)
	}
}

func TestFitPowerLawExact(t *testing.T) {
	// y = 3·x^0.5 exactly.
	xs := []float64{1, 4, 16, 64, 256}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Sqrt(x)
	}
	e, c, r2, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-0.5) > 1e-9 || math.Abs(c-3) > 1e-9 || r2 < 0.999999 {
		t.Errorf("fit e=%v c=%v r2=%v", e, c, r2)
	}
}

func TestFitPowerLawSkipsNonPositive(t *testing.T) {
	xs := []float64{-1, 0, 2, 8}
	ys := []float64{5, 5, 2, 4}
	e, _, _, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Fit over (2,2),(8,4): slope = log2/log4 = 0.5.
	if math.Abs(e-0.5) > 1e-9 {
		t.Errorf("exponent %v", e)
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, _, _, err := FitPowerLaw([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("accepted mismatched lengths")
	}
	if _, _, _, err := FitPowerLaw([]float64{1}, []float64{1}); err == nil {
		t.Error("accepted single point")
	}
	if _, _, _, err := FitPowerLaw([]float64{-1, -2}, []float64{1, 1}); err == nil {
		t.Error("accepted all-non-positive xs")
	}
}

func TestFitPowerLawNoisy(t *testing.T) {
	src := prng.New(2)
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		x := math.Pow(2, float64(i%10)+1)
		xs[i] = x
		ys[i] = 2 * math.Pow(x, 1.5) * (1 + 0.05*(src.Float64()-0.5))
	}
	e, _, r2, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e-1.5) > 0.05 {
		t.Errorf("noisy exponent %v, want ≈1.5", e)
	}
	if r2 < 0.99 {
		t.Errorf("r2 = %v", r2)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	// Underflow: -1. Bins: [0,2):2, [2,4):1, [4,6):0, [6,8):0, [8,10):1.
	// Overflow: 10, 11.
	want := []int{1, 2, 1, 0, 0, 1, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("accepted empty range")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("accepted zero bins")
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	s.Add(1)
	if !strings.Contains(s.String(), "n=1") {
		t.Errorf("String = %q", s.String())
	}
}
