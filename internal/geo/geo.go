// Package geo implements the spatial communication model the paper sketches
// as an open question (§1.2, "Alternate communication models"): agents live
// at points of the unit 2-torus and each round are matched with a nearby
// agent instead of a uniformly random one. Daughters of a split appear next
// to their parent (cell division); inserted agents appear wherever the
// adversary chooses.
//
// The package exists to answer the ablation question A5: is the paper's
// uniformly-random matching load-bearing? It is. Under local matching,
// recruitment trees grow as contiguous spatial patches, so two nearby agents
// are far more likely to share a cluster than the well-mixed analysis
// assumes: the same-color meeting probability no longer encodes the global
// population size, and the size signal floors at the local neighborhood
// scale. Experiment A5 measures the resulting bias against the uniform
// scheduler.
package geo

import (
	"errors"
	"fmt"
	"math"

	"popstab/internal/agent"
	"popstab/internal/match"
	"popstab/internal/params"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/protocol"
	"popstab/internal/wire"
)

// Point is a position on the unit 2-torus.
type Point struct {
	X, Y float64
}

// torusDist2 is the squared toroidal distance between two points.
func torusDist2(a, b Point) float64 {
	dx := math.Abs(a.X - b.X)
	if dx > 0.5 {
		dx = 1 - dx
	}
	dy := math.Abs(a.Y - b.Y)
	if dy > 0.5 {
		dy = 1 - dy
	}
	return dx*dx + dy*dy
}

// Config assembles a spatial simulation.
type Config struct {
	// Params parameterizes the protocol.
	Params params.Params
	// DaughterSpread is the standard deviation of a daughter's offset from
	// its parent, as a fraction of the mean inter-agent spacing 1/√N
	// (default 1.0).
	DaughterSpread float64
	// Seed derives all randomness.
	Seed uint64
}

// Engine drives the protocol over spatially matched agents. Not safe for
// concurrent use.
type Engine struct {
	cfg    Config
	proto  *protocol.Protocol
	states []agent.State
	pos    []Point

	protoSrc *prng.Source
	geoSrc   *prng.Source

	// grid buckets agent indices by cell for neighbor search.
	gridSide int
	grid     [][]int32

	nbr     []int32
	msgs    []uint8
	actions []population.Action

	round uint64
}

// New validates cfg and builds the engine with Params.N agents at uniform
// random positions.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("geo: %w", err)
	}
	if cfg.DaughterSpread < 0 {
		return nil, errors.New("geo: negative DaughterSpread")
	}
	if cfg.DaughterSpread == 0 {
		cfg.DaughterSpread = 1
	}
	pr, err := protocol.New(cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("geo: %w", err)
	}
	root := prng.New(cfg.Seed)
	e := &Engine{
		cfg:      cfg,
		proto:    pr,
		protoSrc: root.Split(),
		geoSrc:   root.Split(),
	}
	n := cfg.Params.N
	e.states = make([]agent.State, n)
	e.pos = make([]Point, n)
	for i := range e.pos {
		e.pos[i] = Point{X: e.geoSrc.Float64(), Y: e.geoSrc.Float64()}
	}
	return e, nil
}

// Size reports the current population.
func (e *Engine) Size() int { return len(e.states) }

// GlobalRound reports completed rounds.
func (e *Engine) GlobalRound() uint64 { return e.round }

// Census snapshots the population.
func (e *Engine) Census() population.Census {
	return population.FromStates(e.states).TakeCensus(e.cfg.Params.T-1, e.cfg.Params.HalfLogN)
}

// Protocol exposes the underlying protocol (for counters).
func (e *Engine) Protocol() *protocol.Protocol { return e.proto }

// RunRound executes one round with nearest-available matching.
func (e *Engine) RunRound() {
	n := len(e.states)
	e.ensureBuffers(n)
	e.matchLocal(n)

	for i := 0; i < n; i++ {
		e.msgs[i] = e.proto.Compose(&e.states[i])
	}
	for i := 0; i < n; i++ {
		j := e.nbr[i]
		var msg wire.Message
		hasNbr := j != match.Unmatched
		if hasNbr {
			msg = e.proto.Decode(e.msgs[j])
		}
		e.actions[i] = e.proto.Step(&e.states[i], msg, hasNbr, e.protoSrc)
	}

	// Apply fates, keeping positions aligned with states.
	w := 0
	var babyStates []agent.State
	var babyPos []Point
	for i := 0; i < n; i++ {
		switch e.actions[i] {
		case population.ActDie:
			continue
		case population.ActSplit:
			babyStates = append(babyStates, e.states[i])
			babyPos = append(babyPos, e.daughterPos(e.pos[i]))
		}
		e.states[w] = e.states[i]
		e.pos[w] = e.pos[i]
		w++
	}
	e.states = append(e.states[:w], babyStates...)
	e.pos = append(e.pos[:w], babyPos...)
	e.round++
}

// RunEpoch executes T rounds.
func (e *Engine) RunEpoch() {
	for i := 0; i < e.cfg.Params.T; i++ {
		e.RunRound()
	}
}

// daughterPos places a daughter near its parent.
func (e *Engine) daughterPos(p Point) Point {
	spacing := 1 / math.Sqrt(float64(e.cfg.Params.N))
	sigma := e.cfg.DaughterSpread * spacing
	// Box-Muller from two uniforms.
	u1 := e.geoSrc.Float64()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	u2 := e.geoSrc.Float64()
	r := sigma * math.Sqrt(-2*math.Log(u1))
	x := p.X + r*math.Cos(2*math.Pi*u2)
	y := p.Y + r*math.Sin(2*math.Pi*u2)
	return Point{X: wrap(x), Y: wrap(y)}
}

func wrap(v float64) float64 {
	v = math.Mod(v, 1)
	if v < 0 {
		v++
	}
	return v
}

// ensureBuffers sizes the scratch arrays.
func (e *Engine) ensureBuffers(n int) {
	if cap(e.nbr) < n {
		e.nbr = make([]int32, n)
		e.msgs = make([]uint8, n)
		e.actions = make([]population.Action, n)
	}
	e.nbr = e.nbr[:n]
	e.msgs = e.msgs[:n]
	e.actions = e.actions[:n]
}

// SampleColorAgreement draws a fresh local matching over the current
// population and reports how many matched active pairs agree or disagree in
// color. It does not advance the simulation (though it consumes scheduler
// randomness).
func (e *Engine) SampleColorAgreement() (same, diff int) {
	n := len(e.states)
	e.ensureBuffers(n)
	e.matchLocal(n)
	for i := 0; i < n; i++ {
		j := e.nbr[i]
		if j == match.Unmatched || int(j) < i {
			continue
		}
		a, b := &e.states[i], &e.states[j]
		if !a.Active || !b.Active {
			continue
		}
		if a.Color == b.Color {
			same++
		} else {
			diff++
		}
	}
	return same, diff
}

// matchLocal pairs each agent with the nearest unmatched agent within its
// 3×3 grid neighborhood, visiting agents in random order. Coverage is high
// (most agents have a close unmatched neighbor) but pairs are strongly
// local — the property under test.
func (e *Engine) matchLocal(n int) {
	for i := range e.nbr {
		e.nbr[i] = match.Unmatched
	}
	if n < 2 {
		return
	}
	side := int(math.Sqrt(float64(n)))
	if side < 1 {
		side = 1
	}
	e.gridSide = side
	if cap(e.grid) < side*side {
		e.grid = make([][]int32, side*side)
	}
	e.grid = e.grid[:side*side]
	for i := range e.grid {
		e.grid[i] = e.grid[i][:0]
	}
	cellOf := func(p Point) (int, int) {
		cx := int(p.X * float64(side))
		cy := int(p.Y * float64(side))
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		return cx, cy
	}
	for i := 0; i < n; i++ {
		cx, cy := cellOf(e.pos[i])
		idx := cy*side + cx
		e.grid[idx] = append(e.grid[idx], int32(i))
	}

	order := e.geoSrc.Perm(n)
	for _, i := range order {
		if e.nbr[i] != match.Unmatched {
			continue
		}
		cx, cy := cellOf(e.pos[i])
		best := int32(-1)
		bestD := math.Inf(1)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				gx := (cx + dx + side) % side
				gy := (cy + dy + side) % side
				for _, j := range e.grid[gy*side+gx] {
					if int(j) == i || e.nbr[j] != match.Unmatched {
						continue
					}
					if d := torusDist2(e.pos[i], e.pos[j]); d < bestD {
						bestD = d
						best = j
					}
				}
			}
		}
		if best >= 0 {
			e.nbr[i] = best
			e.nbr[best] = int32(i)
		}
	}
}
