// Package geo implements the spatial communication model the paper sketches
// as an open question (§1.2, "Alternate communication models"): agents live
// at points of the unit 2-torus and each round are matched with a nearby
// agent instead of a uniformly random one. Daughters of a split appear next
// to their parent (cell division); inserted agents appear at fresh uniform
// positions.
//
// The package exists to answer the ablation question A5: is the paper's
// uniformly-random matching load-bearing? It is. Under local matching,
// recruitment trees grow as contiguous spatial patches, so two nearby agents
// are far more likely to share a cluster than the well-mixed analysis
// assumes: the same-color meeting probability no longer encodes the global
// population size, and the size signal floors at the local neighborhood
// scale. Experiment A5 measures the resulting bias against the uniform
// scheduler; experiment A7 sweeps adversary budgets on top of it.
//
// Since the multi-layer unification (DESIGN.md §5) the package holds no
// round loop of its own: the geometry lives in match.Torus (a
// population-state-aware Matcher carrying a population.Positions
// side-array), and Engine is a thin constructor over the unified
// sim.Engine. The spatial model therefore inherits everything the
// well-mixed engine has — Workers sharding with bit-identical output across
// worker counts, counter-based per-agent randomness, RoundReport /
// EpochReport accounting, and full adversary support — none of which the
// pre-unification spatial engine offered.
package geo

import (
	"errors"
	"fmt"
	"math"

	"popstab/internal/adversary"
	"popstab/internal/match"
	"popstab/internal/params"
	"popstab/internal/population"
	"popstab/internal/protocol"
	"popstab/internal/sim"
)

// Point is a position on the unit 2-torus.
type Point = population.Point

// Config assembles a spatial simulation.
type Config struct {
	// Params parameterizes the protocol.
	Params params.Params
	// DaughterSpread is the standard deviation of a daughter's offset from
	// its parent, as a fraction of the mean inter-agent spacing 1/√N
	// (default 1.0).
	DaughterSpread float64
	// Adversary attacks each round within budget K (nil = none).
	Adversary adversary.Adversary
	// K is the adversary's per-round alteration budget.
	K int
	// Seed derives all randomness.
	Seed uint64
	// Workers sets the number of goroutines sharding the compose and step
	// phases: 0 means runtime.NumCPU(), 1 forces the serial path. Output is
	// bit-identical across all worker counts.
	Workers int
}

// Engine drives the protocol over spatially matched agents: a thin wrapper
// over the unified sim.Engine with a match.Torus installed. Not safe for
// concurrent use.
type Engine struct {
	*sim.Engine
	proto *protocol.Protocol
	torus *match.Torus

	// probe is scratch for SampleColorAgreement.
	probe match.Pairing
}

// New validates cfg and builds the engine with Params.N agents at uniform
// random positions.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("geo: %w", err)
	}
	if cfg.DaughterSpread < 0 {
		return nil, errors.New("geo: negative DaughterSpread")
	}
	if cfg.DaughterSpread == 0 {
		cfg.DaughterSpread = 1
	}
	pr, err := protocol.New(cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("geo: %w", err)
	}
	spacing := 1 / math.Sqrt(float64(cfg.Params.N))
	torus, err := match.NewTorus(cfg.DaughterSpread * spacing)
	if err != nil {
		return nil, fmt.Errorf("geo: %w", err)
	}
	eng, err := sim.New(sim.Config{
		Params:    cfg.Params,
		Protocol:  pr,
		Matcher:   torus,
		Adversary: cfg.Adversary,
		K:         cfg.K,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("geo: %w", err)
	}
	return &Engine{Engine: eng, proto: pr, torus: torus}, nil
}

// Protocol exposes the underlying protocol (for counters).
func (e *Engine) Protocol() *protocol.Protocol { return e.proto }

// Torus exposes the spatial matcher (positions, geometry).
func (e *Engine) Torus() *match.Torus { return e.torus }

// SampleColorAgreement draws a fresh local matching over the current
// population — from the torus's own placement stream, so the simulation's
// matching randomness is untouched — and reports how many matched active
// pairs agree or disagree in color. It does not advance the simulation.
func (e *Engine) SampleColorAgreement() (same, diff int) {
	pop := e.Population()
	e.torus.SampleProbe(pop, &e.probe)
	n := pop.Len()
	for i := 0; i < n; i++ {
		j := e.probe.Nbr[i]
		if j == match.Unmatched || int(j) < i {
			continue
		}
		a, b := pop.State(i), pop.State(int(j))
		if !a.Active || !b.Active {
			continue
		}
		if a.Color == b.Color {
			same++
		} else {
			diff++
		}
	}
	return same, diff
}
