package geo

import (
	"math"
	"testing"

	"popstab/internal/match"
	"popstab/internal/params"
)

func fastParams(t testing.TB) params.Params {
	t.Helper()
	p, err := params.Derive(4096, params.WithTinner(24))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Params: params.Params{}}); err == nil {
		t.Error("accepted zero params")
	}
	if _, err := New(Config{Params: fastParams(t), DaughterSpread: -1}); err == nil {
		t.Error("accepted negative spread")
	}
}

func TestTorusDistance(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0.1, 0}, Point{0.2, 0}, 0.01},
		{Point{0.05, 0}, Point{0.95, 0}, 0.01}, // wraps around
		{Point{0, 0.05}, Point{0, 0.95}, 0.01},
		{Point{0, 0}, Point{0.5, 0.5}, 0.5},
	}
	for _, tc := range cases {
		if got := torusDist2(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("torusDist2(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestWrap(t *testing.T) {
	cases := map[float64]float64{0.5: 0.5, 1.25: 0.25, -0.25: 0.75, 2.5: 0.5}
	for in, want := range cases {
		if got := wrap(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("wrap(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestMatchingIsValidAndLocal(t *testing.T) {
	e, err := New(Config{Params: fastParams(t), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := e.Size()
	e.ensureBuffers(n)
	e.matchLocal(n)

	matched := 0
	var sumD float64
	for i := 0; i < n; i++ {
		j := e.nbr[i]
		if j == match.Unmatched {
			continue
		}
		matched++
		if int(e.nbr[j]) != i {
			t.Fatalf("asymmetric pair %d -> %d -> %d", i, j, e.nbr[j])
		}
		if int(j) == i {
			t.Fatalf("self pair at %d", i)
		}
		sumD += math.Sqrt(torusDist2(e.pos[i], e.pos[j]))
	}
	if matched < n/2 {
		t.Errorf("only %d of %d agents matched", matched, n)
	}
	// Locality: mean pair distance must be on the order of the spacing
	// 1/√N, far below the uniform-matching expectation ≈ 0.38.
	meanD := sumD / float64(matched)
	spacing := 1 / math.Sqrt(float64(n))
	if meanD > 5*spacing {
		t.Errorf("mean pair distance %.4f not local (spacing %.4f)", meanD, spacing)
	}
}

func TestDaughterPlacedNearParent(t *testing.T) {
	e, err := New(Config{Params: fastParams(t), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	parent := Point{X: 0.5, Y: 0.5}
	spacing := 1 / math.Sqrt(float64(e.cfg.Params.N))
	for i := 0; i < 1000; i++ {
		d := math.Sqrt(torusDist2(parent, e.daughterPos(parent)))
		if d > 10*spacing {
			t.Fatalf("daughter placed %.4f away (spacing %.4f)", d, spacing)
		}
	}
}

func TestPositionsTrackPopulation(t *testing.T) {
	e, err := New(Config{Params: fastParams(t), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*e.cfg.Params.T; i++ {
		e.RunRound()
		if len(e.states) != len(e.pos) {
			t.Fatalf("round %d: %d states vs %d positions", i, len(e.states), len(e.pos))
		}
	}
	for i := range e.pos {
		if e.pos[i].X < 0 || e.pos[i].X >= 1 || e.pos[i].Y < 0 || e.pos[i].Y >= 1 {
			t.Fatalf("position %d out of torus: %+v", i, e.pos[i])
		}
	}
}

func BenchmarkGeoRound(b *testing.B) {
	p, err := params.Derive(4096, params.WithTinner(24))
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(Config{Params: p, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRound()
	}
}

// TestLocalMatchingBiasesColorSignal is the core A5 observation: under
// local matching, matched colored pairs share a color far more often than
// the well-mixed analysis predicts, because recruitment spreads clusters as
// spatial patches.
func TestLocalMatchingBiasesColorSignal(t *testing.T) {
	p := fastParams(t)
	e, err := New(Config{Params: p, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Run to the evaluation round of the first epoch and inspect matched
	// colored pairs directly.
	for i := 0; i < p.T-1; i++ {
		e.RunRound()
	}
	n := e.Size()
	e.ensureBuffers(n)
	e.matchLocal(n)
	same, diff := 0, 0
	for i := 0; i < n; i++ {
		j := e.nbr[i]
		if j == match.Unmatched || int(j) < i {
			continue
		}
		a, b := e.states[i], e.states[j]
		if !a.Active || !b.Active {
			continue
		}
		if a.Color == b.Color {
			same++
		} else {
			diff++
		}
	}
	if same+diff < 20 {
		t.Skipf("too few colored pairs to judge (%d)", same+diff)
	}
	frac := float64(same) / float64(same+diff)
	// Well-mixed prediction: 1/2 + 4/√N ≈ 0.56. Spatial clustering pushes
	// it far higher.
	if frac < 0.7 {
		t.Errorf("same-color fraction %.3f; expected strong spatial bias > 0.7", frac)
	}
}
