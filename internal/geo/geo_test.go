package geo

import (
	"runtime"
	"testing"

	"popstab/internal/adversary"
	"popstab/internal/params"
	"popstab/internal/population"
)

func fastParams(t testing.TB) params.Params {
	t.Helper()
	p, err := params.Derive(4096, params.WithTinner(24))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Params: params.Params{}}); err == nil {
		t.Error("accepted zero params")
	}
	if _, err := New(Config{Params: fastParams(t), DaughterSpread: -1}); err == nil {
		t.Error("accepted negative spread")
	}
	if _, err := New(Config{Params: fastParams(t), K: -1}); err == nil {
		t.Error("accepted negative adversary budget")
	}
}

func TestPositionsTrackPopulation(t *testing.T) {
	e, err := New(Config{Params: fastParams(t), Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pos := e.Torus().Positions()
	for i := 0; i < 2*e.Params().T; i++ {
		e.RunRound()
		if pos.Len() != e.Size() {
			t.Fatalf("round %d: %d positions vs %d agents", i, pos.Len(), e.Size())
		}
	}
	for i := 0; i < pos.Len(); i++ {
		pt := pos.At(i)
		if pt.X < 0 || pt.X >= 1 || pt.Y < 0 || pt.Y >= 1 {
			t.Fatalf("position %d out of torus: %+v", i, pt)
		}
	}
}

// TestAdversarySupport runs the spatial model under a paced adversary — a
// scenario the pre-unification geo engine could not express — and asserts
// the alterations land and positions stay aligned through insertions and
// deletions.
func TestAdversarySupport(t *testing.T) {
	p := fastParams(t)
	paced := adversary.NewPaced(adversary.PerEpoch(p.T, 4*p.MaxTolerableK(), 1),
		adversary.NewGreedy())
	e, err := New(Config{Params: p, Adversary: paced, K: 1, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	altered := 0
	for ep := 0; ep < 2; ep++ {
		rep := e.RunEpoch()
		altered += rep.AdvInserted + rep.AdvDeleted
	}
	if altered == 0 {
		t.Error("adversary never acted on the spatial engine")
	}
	if e.Torus().Positions().Len() != e.Size() {
		t.Fatalf("positions %d != size %d after adversarial epochs",
			e.Torus().Positions().Len(), e.Size())
	}
}

// TestParallelDeterminism asserts the spatial engine's trajectory
// (RoundReport fields and census) is bit-identical across Workers ∈ {1, 2,
// NumCPU}, with and without an adversary — the determinism guarantee the
// serial pre-unification engine never had.
func TestParallelDeterminism(t *testing.T) {
	p := fastParams(t)
	arms := []struct {
		name string
		cfg  Config
	}{
		{"clean", Config{Params: p, Seed: 101}},
		{"greedy-adversary", Config{Params: p, Seed: 102, K: 3, Adversary: adversary.NewGreedy()}},
	}
	for _, arm := range arms {
		t.Run(arm.name, func(t *testing.T) {
			run := func(workers int) []uint64 {
				cfg := arm.cfg
				cfg.Workers = workers
				e, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				var tr []uint64
				for i := 0; i < 2*p.T; i++ {
					rep := e.RunRound()
					c := e.Census()
					tr = append(tr,
						uint64(rep.SizeAfter),
						uint64(rep.Births)<<32|uint64(rep.Deaths),
						uint64(rep.AdvInserted)<<32|uint64(rep.AdvDeleted),
						uint64(c.Active)<<32|uint64(c.WrongRound),
					)
				}
				return tr
			}
			want := run(1)
			for _, w := range []int{2, runtime.NumCPU()} {
				got := run(w)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d: trajectory diverged at sample %d: %d != %d",
							w, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestGoldenTrajectory pins the exact spatial trajectory of a fixed
// configuration, the geo twin of internal/sim's golden test. If a change is
// INTENDED, rerun with -v and update the constant.
func TestGoldenTrajectory(t *testing.T) {
	p := fastParams(t)
	e, err := New(Config{Params: p, Seed: 424242, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var checksum uint64
	for i := 0; i < 2*p.T; i++ {
		rep := e.RunRound()
		checksum = checksum*31 + uint64(rep.SizeAfter)
	}
	const want = uint64(9749419792947619442)
	if checksum != want {
		t.Errorf("trajectory checksum changed: got %d, want %d\n"+
			"(if this change is intentional, update the golden value)", checksum, want)
	}
}

// TestProbeDoesNotPerturbTrajectory pins SampleColorAgreement's contract:
// the probe draws from a dedicated stream, so a probed and an unprobed run
// of the same configuration follow identical trajectories (the paired-
// comparison property of DESIGN.md §5).
func TestProbeDoesNotPerturbTrajectory(t *testing.T) {
	p := fastParams(t)
	run := func(probe bool) []int {
		e, err := New(Config{Params: p, Seed: 8, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		var sizes []int
		for i := 0; i < p.T; i++ {
			if probe && i%10 == 0 {
				e.SampleColorAgreement()
			}
			sizes = append(sizes, e.RunRound().SizeAfter)
		}
		return sizes
	}
	plain, probed := run(false), run(true)
	for i := range plain {
		if plain[i] != probed[i] {
			t.Fatalf("probe perturbed the trajectory at round %d: %d != %d",
				i, plain[i], probed[i])
		}
	}
}

// TestLocalMatchingBiasesColorSignal is the core A5 observation: under
// local matching, matched colored pairs share a color far more often than
// the well-mixed analysis predicts, because recruitment spreads clusters as
// spatial patches.
func TestLocalMatchingBiasesColorSignal(t *testing.T) {
	p := fastParams(t)
	e, err := New(Config{Params: p, Seed: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Run to the evaluation round of the first epoch and inspect matched
	// colored pairs directly.
	for i := 0; i < p.T-1; i++ {
		e.RunRound()
	}
	same, diff := e.SampleColorAgreement()
	if same+diff < 20 {
		t.Skipf("too few colored pairs to judge (%d)", same+diff)
	}
	frac := float64(same) / float64(same+diff)
	// Well-mixed prediction: 1/2 + 4/√N ≈ 0.56. Spatial clustering pushes
	// it far higher.
	if frac < 0.7 {
		t.Errorf("same-color fraction %.3f; expected strong spatial bias > 0.7", frac)
	}
}

// TestDaughterPlacementStaysLocal asserts the population does not diffuse
// to uniformity within an epoch: daughters appear near their parents, so a
// freshly split pair is within a few spacings of each other (checked via
// the matcher's locality instead of internal engine state).
func TestDaughterPlacementStaysLocal(t *testing.T) {
	p := fastParams(t)
	e, err := New(Config{Params: p, Seed: 6, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	births := 0
	for i := 0; i < 2*p.T; i++ {
		rep := e.RunRound()
		births += rep.Births
	}
	if births == 0 {
		t.Skip("no splits in the horizon")
	}
	if e.Torus().Positions().Len() != e.Size() {
		t.Fatalf("positions out of sync after %d births", births)
	}
}

func TestCensusMatchesSize(t *testing.T) {
	e, err := New(Config{Params: fastParams(t), Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	e.RunRounds(30)
	if c := e.Census(); c.Total != e.Size() {
		t.Fatalf("census total %d != size %d", c.Total, e.Size())
	}
}

func BenchmarkGeoRound(b *testing.B) {
	p, err := params.Derive(4096, params.WithTinner(24))
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(Config{Params: p, Seed: 1, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRound()
	}
}

// Compile-time check: geo's Point is population's Point (one position type
// across the tree).
var _ Point = population.Point{}
