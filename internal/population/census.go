package population

import (
	"fmt"
	"sort"

	"popstab/internal/agent"
)

// Census is a full statistical snapshot of the population, used by invariant
// tests (Lemmas 3–6), adversary strategies (the adversary may read all
// memory), and experiment reporting.
type Census struct {
	// Total is the number of living agents.
	Total int
	// Active is the number of agents with active = 1.
	Active int
	// Recruiting is the number of agents currently recruiting.
	Recruiting int
	// ColorCount counts active agents of each color.
	ColorCount [2]int
	// InEval is the number of agents whose round counter equals evalRound.
	InEval int
	// MajorityRound is the most common round value (ties broken toward the
	// smaller round).
	MajorityRound uint32
	// WrongRound is the number of agents whose round differs from
	// MajorityRound (the quantity bounded by Lemma 3).
	WrongRound int
	// ByToRecruit histograms active agents by their toRecruit counter;
	// index d counts active agents with toRecruit = d.
	ByToRecruit []int
	// RoundValues lists the distinct round values present, ascending.
	RoundValues []uint32
}

// TakeCensus scans the population once and aggregates all counters.
// evalRound is the epoch's evaluation round index (T−1) and maxDepth the
// maximum toRecruit value (½log N).
func (p *Population) TakeCensus(evalRound int, maxDepth int) Census {
	c := Census{
		Total:       len(p.states),
		ByToRecruit: make([]int, maxDepth+1),
	}
	roundCounts := make(map[uint32]int)
	for i := range p.states {
		s := &p.states[i]
		roundCounts[s.Round]++
		if int(s.Round) == evalRound {
			c.InEval++
		}
		if s.Active {
			c.Active++
			if s.Color <= 1 {
				c.ColorCount[s.Color]++
			}
			d := int(s.ToRecruit)
			if d >= 0 && d < len(c.ByToRecruit) {
				c.ByToRecruit[d]++
			}
		}
		if s.Recruiting {
			c.Recruiting++
		}
	}
	best, bestCount := uint32(0), -1
	for r, n := range roundCounts {
		c.RoundValues = append(c.RoundValues, r)
		if n > bestCount || (n == bestCount && r < best) {
			best, bestCount = r, n
		}
	}
	sort.Slice(c.RoundValues, func(i, j int) bool { return c.RoundValues[i] < c.RoundValues[j] })
	c.MajorityRound = best
	c.WrongRound = c.Total - roundCounts[best]
	return c
}

// ActiveFraction reports Active/Total, or 0 for an empty population
// (Lemma 4's invariant is ActiveFraction ≤ 1/2).
func (c Census) ActiveFraction() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Active) / float64(c.Total)
}

// ColorImbalance reports |#color0 − #color1| among active agents.
func (c Census) ColorImbalance() int {
	d := c.ColorCount[0] - c.ColorCount[1]
	if d < 0 {
		d = -d
	}
	return d
}

// String renders a one-line summary.
func (c Census) String() string {
	return fmt.Sprintf("total=%d active=%d (c0=%d c1=%d) recruiting=%d wrongRound=%d majRound=%d",
		c.Total, c.Active, c.ColorCount[0], c.ColorCount[1],
		c.Recruiting, c.WrongRound, c.MajorityRound)
}

// CountIf reports the number of agents satisfying pred. Adversary strategies
// use it for targeting; it is O(n).
func (p *Population) CountIf(pred func(agent.State) bool) int {
	n := 0
	for i := range p.states {
		if pred(p.states[i]) {
			n++
		}
	}
	return n
}

// FindIf appends to dst the indices of up to limit agents satisfying pred,
// scanning in container order, and returns the extended slice. A negative
// limit means no limit.
func (p *Population) FindIf(dst []int, limit int, pred func(agent.State) bool) []int {
	for i := range p.states {
		if limit >= 0 && len(dst) >= limit {
			break
		}
		if pred(p.states[i]) {
			dst = append(dst, i)
		}
	}
	return dst
}
