package population

import (
	"testing"

	"popstab/internal/agent"
	"popstab/internal/prng"
)

// newTestPositions attaches a Positions side-array with deterministic
// placement: Place draws uniformly from src, Spawn copies the parent.
func newTestPositions(p *Population, src *prng.Source) *Positions {
	ps := &Positions{
		Place: func() Point { return Point{X: src.Float64(), Y: src.Float64()} },
		Spawn: func(parent Point) Point { return parent },
	}
	p.Attach(ps)
	return ps
}

func TestPositionsAttachInitializes(t *testing.T) {
	p := New(7)
	ps := newTestPositions(p, prng.New(1))
	if ps.Len() != 7 {
		t.Fatalf("Len = %d after attach", ps.Len())
	}
	for i := 0; i < ps.Len(); i++ {
		pt := ps.At(i)
		if pt.X < 0 || pt.X >= 1 || pt.Y < 0 || pt.Y >= 1 {
			t.Fatalf("position %d out of unit square: %+v", i, pt)
		}
	}
}

func TestPositionsTrackInsertDelete(t *testing.T) {
	p := New(3)
	ps := newTestPositions(p, prng.New(2))
	p.Insert(agent.State{Round: 9})
	if ps.Len() != 4 {
		t.Fatalf("Len = %d after insert", ps.Len())
	}
	lastPos := ps.At(3)
	p.DeleteSwap(0)
	if ps.Len() != 3 {
		t.Fatalf("Len = %d after delete", ps.Len())
	}
	// Swap-delete must move the last position into slot 0, mirroring states.
	if ps.At(0) != lastPos {
		t.Errorf("slot 0 position %+v, want swapped-in %+v", ps.At(0), lastPos)
	}
	if p.State(0).Round != 9 {
		t.Errorf("state array did not swap as expected")
	}
}

// TestPositionsApplyMirrorsStates runs a mixed action vector and asserts
// positions stay aligned: survivors keep their position, daughters Spawn
// from their parent, in exactly the order Apply appends daughter states.
func TestPositionsApplyMirrorsStates(t *testing.T) {
	states := []agent.State{
		{Round: 0}, {Round: 1}, {Round: 2}, {Round: 3}, {Round: 4},
	}
	p := FromStates(states)
	marks := []Point{{0.0, 0}, {0.1, 0}, {0.2, 0}, {0.3, 0}, {0.4, 0}}
	i := 0
	ps := &Positions{
		Place: func() Point { pt := marks[i]; i++; return pt },
		Spawn: func(parent Point) Point { return Point{parent.X, parent.Y + 1} },
	}
	p.Attach(ps)

	actions := []Action{ActSplit, ActDie, ActKeep, ActSplit, ActDie}
	p.Apply(actions)
	if p.Len() != 5 || ps.Len() != 5 {
		t.Fatalf("len states=%d positions=%d, want 5", p.Len(), ps.Len())
	}
	// Survivors: original slots 0, 2, 3 keep their marks.
	for slot, want := range []Point{{0.0, 0}, {0.2, 0}, {0.3, 0}} {
		if ps.At(slot) != want {
			t.Errorf("survivor slot %d position %+v, want %+v", slot, ps.At(slot), want)
		}
	}
	// Daughters of parents 0 and 3, spawned in split order.
	if ps.At(3) != (Point{0.0, 1}) || ps.At(4) != (Point{0.3, 1}) {
		t.Errorf("daughter positions %+v, %+v", ps.At(3), ps.At(4))
	}
	if p.State(3).Round != 0 || p.State(4).Round != 3 {
		t.Errorf("daughter states misaligned with positions")
	}
}

// TestPositionsForceResize exercises the tracker through ForceResize's
// delete/insert composition.
func TestPositionsForceResize(t *testing.T) {
	p := New(10)
	ps := newTestPositions(p, prng.New(3))
	p.ForceResize(4, 0)
	if ps.Len() != 4 {
		t.Fatalf("Len = %d after shrink", ps.Len())
	}
	p.ForceResize(9, 2)
	if ps.Len() != 9 {
		t.Fatalf("Len = %d after grow", ps.Len())
	}
}

// TestPositionsRandomizedAlignment is a property test: under a random
// sequence of inserts, swap-deletes and Apply passes, the side-array length
// always equals the population length.
func TestPositionsRandomizedAlignment(t *testing.T) {
	src := prng.New(99)
	p := New(32)
	ps := newTestPositions(p, prng.New(100))
	for step := 0; step < 500; step++ {
		switch src.Intn(3) {
		case 0:
			p.Insert(agent.State{})
		case 1:
			if p.Len() > 0 {
				p.DeleteSwap(src.Intn(p.Len()))
			}
		default:
			actions := make([]Action, p.Len())
			for i := range actions {
				actions[i] = Action(src.Intn(3))
			}
			p.Apply(actions)
		}
		if ps.Len() != p.Len() {
			t.Fatalf("step %d: positions %d != population %d", step, ps.Len(), p.Len())
		}
	}
}
