package population

import (
	"testing"

	"popstab/internal/agent"
	"popstab/internal/prng"
)

// newTestPositions attaches a Positions side-array with deterministic
// placement: Place draws uniformly from src, Spawn copies the parent.
func newTestPositions(p *Population, src *prng.Source) *Positions {
	ps := &Positions{
		Place: PlaceFunc(func() Point { return Point{X: src.Float64(), Y: src.Float64()} }),
		Spawn: func(parent Point) Point { return parent },
	}
	p.Attach(ps)
	return ps
}

func TestPositionsAttachInitializes(t *testing.T) {
	p := New(7)
	ps := newTestPositions(p, prng.New(1))
	if ps.Len() != 7 {
		t.Fatalf("Len = %d after attach", ps.Len())
	}
	for i := 0; i < ps.Len(); i++ {
		pt := ps.At(i)
		if pt.X < 0 || pt.X >= 1 || pt.Y < 0 || pt.Y >= 1 {
			t.Fatalf("position %d out of unit square: %+v", i, pt)
		}
	}
}

func TestPositionsTrackInsertDelete(t *testing.T) {
	p := New(3)
	ps := newTestPositions(p, prng.New(2))
	p.Insert(agent.State{Round: 9})
	if ps.Len() != 4 {
		t.Fatalf("Len = %d after insert", ps.Len())
	}
	lastPos := ps.At(3)
	p.DeleteSwap(0)
	if ps.Len() != 3 {
		t.Fatalf("Len = %d after delete", ps.Len())
	}
	// Swap-delete must move the last position into slot 0, mirroring states.
	if ps.At(0) != lastPos {
		t.Errorf("slot 0 position %+v, want swapped-in %+v", ps.At(0), lastPos)
	}
	if p.State(0).Round != 9 {
		t.Errorf("state array did not swap as expected")
	}
}

// TestPositionsApplyMirrorsStates runs a mixed action vector and asserts
// positions stay aligned: survivors keep their position, daughters Spawn
// from their parent, in exactly the order Apply appends daughter states.
func TestPositionsApplyMirrorsStates(t *testing.T) {
	states := []agent.State{
		{Round: 0}, {Round: 1}, {Round: 2}, {Round: 3}, {Round: 4},
	}
	p := FromStates(states)
	marks := []Point{{0.0, 0}, {0.1, 0}, {0.2, 0}, {0.3, 0}, {0.4, 0}}
	i := 0
	ps := &Positions{
		Place: PlaceFunc(func() Point { pt := marks[i]; i++; return pt }),
		Spawn: func(parent Point) Point { return Point{parent.X, parent.Y + 1} },
	}
	p.Attach(ps)

	actions := []Action{ActSplit, ActDie, ActKeep, ActSplit, ActDie}
	p.Apply(actions)
	if p.Len() != 5 || ps.Len() != 5 {
		t.Fatalf("len states=%d positions=%d, want 5", p.Len(), ps.Len())
	}
	// Survivors: original slots 0, 2, 3 keep their marks.
	for slot, want := range []Point{{0.0, 0}, {0.2, 0}, {0.3, 0}} {
		if ps.At(slot) != want {
			t.Errorf("survivor slot %d position %+v, want %+v", slot, ps.At(slot), want)
		}
	}
	// Daughters of parents 0 and 3, spawned in split order.
	if ps.At(3) != (Point{0.0, 1}) || ps.At(4) != (Point{0.3, 1}) {
		t.Errorf("daughter positions %+v, %+v", ps.At(3), ps.At(4))
	}
	if p.State(3).Round != 0 || p.State(4).Round != 3 {
		t.Errorf("daughter states misaligned with positions")
	}
}

// TestPositionsForceResize exercises the tracker through ForceResize's
// delete/insert composition.
func TestPositionsForceResize(t *testing.T) {
	p := New(10)
	ps := newTestPositions(p, prng.New(3))
	p.ForceResize(4, 0)
	if ps.Len() != 4 {
		t.Fatalf("Len = %d after shrink", ps.Len())
	}
	p.ForceResize(9, 2)
	if ps.Len() != 9 {
		t.Fatalf("Len = %d after grow", ps.Len())
	}
}

// TestPositionsRandomizedAlignment is a property test: under a random
// sequence of inserts, swap-deletes and Apply passes, the side-array length
// always equals the population length.
func TestPositionsRandomizedAlignment(t *testing.T) {
	src := prng.New(99)
	p := New(32)
	ps := newTestPositions(p, prng.New(100))
	for step := 0; step < 500; step++ {
		switch src.Intn(3) {
		case 0:
			p.Insert(agent.State{})
		case 1:
			if p.Len() > 0 {
				p.DeleteSwap(src.Intn(p.Len()))
			}
		default:
			actions := make([]Action, p.Len())
			for i := range actions {
				actions[i] = Action(src.Intn(3))
			}
			p.Apply(actions)
		}
		if ps.Len() != p.Len() {
			t.Fatalf("step %d: positions %d != population %d", step, ps.Len(), p.Len())
		}
	}
}

// TestPositionsReplayApplyInterleaved is a fuzz-style table test of the
// tracker invariants under ReplayApply interleaved with inserts and
// swap-deletes. The Spawn closure offsets every daughter by exactly σ =
// 0.5 — half the torus width, the wraparound watershed — so each daughter
// position also doubles as a parent back-pointer: the wrapped distance to
// its parent must be exactly 0.5 from either direction, and the X
// fractional part identifies the lineage. Each table row drives a scripted
// op sequence; a trailing randomized soak covers the gaps.
func TestPositionsReplayApplyInterleaved(t *testing.T) {
	const half = 0.5 // σ = half the torus width: |x − (x+σ)| wraps to σ exactly

	// wrapDist is the 1-D wrapped distance on the unit torus.
	wrapDist := func(a, b float64) float64 {
		d := a - b
		if d < 0 {
			d = -d
		}
		if d > 0.5 {
			d = 1 - d
		}
		return d
	}

	type op struct {
		kind    string // "insert", "delete", "apply"
		at      int    // delete index (mod current length)
		actions []Action
	}
	cases := []struct {
		name string
		n    int
		ops  []op
	}{
		{"split-then-delete-parent", 4, []op{
			{kind: "apply", actions: []Action{ActSplit, ActKeep, ActKeep, ActKeep}},
			{kind: "delete", at: 0},
			{kind: "apply", actions: []Action{ActKeep, ActKeep, ActKeep, ActSplit}},
		}},
		{"interleave-all-three", 5, []op{
			{kind: "insert"},
			{kind: "apply", actions: []Action{ActDie, ActSplit, ActKeep, ActSplit, ActDie, ActKeep}},
			{kind: "delete", at: 2},
			{kind: "insert"},
			{kind: "apply", actions: []Action{ActSplit, ActDie, ActSplit, ActKeep, ActDie, ActKeep}},
		}},
		{"mass-death-then-rebuild", 6, []op{
			{kind: "apply", actions: []Action{ActDie, ActDie, ActDie, ActDie, ActDie, ActKeep}},
			{kind: "insert"},
			{kind: "insert"},
			{kind: "apply", actions: []Action{ActSplit, ActSplit, ActSplit}},
		}},
		{"all-split", 3, []op{
			{kind: "apply", actions: []Action{ActSplit, ActSplit, ActSplit}},
			{kind: "apply", actions: []Action{ActSplit, ActSplit, ActSplit, ActSplit, ActSplit, ActSplit}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := New(tc.n)
			placeSrc := prng.New(17)
			ps := &Positions{
				// Fresh agents land at distinct dyadic X (multiples of
				// 2⁻²⁰, so adding the power-of-two σ = 0.5 and wrapping
				// stay exact in float64; Y marks them as roots).
				Place: PlaceFunc(func() Point { return Point{X: float64(placeSrc.Intn(1<<20)) / (1 << 20), Y: 0} }),
				// Daughters sit exactly half the torus width from their
				// parent; Y counts generations.
				Spawn: func(parent Point) Point {
					x := parent.X + half
					if x >= 1 {
						x -= 1
					}
					return Point{X: x, Y: parent.Y + 1}
				},
			}
			p.Attach(ps)
			// parents snapshots the pre-Apply position of every agent so
			// daughter lineage is checkable after the compaction.
			for _, o := range tc.ops {
				switch o.kind {
				case "insert":
					p.Insert(agent.State{})
				case "delete":
					if p.Len() > 0 {
						p.DeleteSwap(o.at % p.Len())
					}
				case "apply":
					if len(o.actions) != p.Len() {
						t.Fatalf("table bug: %d actions for %d agents", len(o.actions), p.Len())
					}
					before := make([]Point, ps.Len())
					copy(before, ps.pos)
					p.Apply(o.actions)
					// Reconstruct the expected layout with ReplayApply
					// over the snapshot and compare elementwise.
					want := ReplayApply(before, o.actions, func(parent Point) Point {
						x := parent.X + half
						if x >= 1 {
							x -= 1
						}
						return Point{X: x, Y: parent.Y + 1}
					})
					if len(want) != ps.Len() {
						t.Fatalf("ReplayApply length %d != tracker %d", len(want), ps.Len())
					}
					for i := range want {
						if ps.At(i) != want[i] {
							t.Fatalf("slot %d: %+v, want %+v", i, ps.At(i), want[i])
						}
					}
					// Wraparound edge: every daughter (Y ≥ 1) sits at
					// wrapped distance exactly σ = 0.5 from its parent's
					// X — the distance is the same measured either way
					// around, and floating point must not drift it.
					survivors := 0
					for _, a := range o.actions {
						if a != ActDie {
							survivors++
						}
					}
					di := survivors
					r := 0
					for _, a := range o.actions {
						if a == ActDie {
							continue
						}
						if a == ActSplit {
							parent := ps.At(r)
							daughter := ps.At(di)
							if d := wrapDist(parent.X, daughter.X); d != half {
								t.Fatalf("daughter %d at wrapped distance %v from parent, want exactly %v",
									di, d, half)
							}
							if d := wrapDist(daughter.X, parent.X); d != half {
								t.Fatalf("wrap distance asymmetric at σ = half width")
							}
							di++
						}
						r++
					}
				}
				if ps.Len() != p.Len() {
					t.Fatalf("tracker desynced: positions %d != population %d", ps.Len(), p.Len())
				}
			}
		})
	}

	// Randomized soak: 300 random interleavings preserve alignment and the
	// half-width lineage invariant for every daughter born along the way.
	t.Run("soak", func(t *testing.T) {
		src := prng.New(99)
		placeSrc := prng.New(100)
		p := New(16)
		ps := &Positions{
			Place: PlaceFunc(func() Point { return Point{X: float64(placeSrc.Intn(1<<20)) / (1 << 20), Y: 0} }),
			Spawn: func(parent Point) Point {
				x := parent.X + half
				if x >= 1 {
					x -= 1
				}
				return Point{X: x, Y: parent.Y + 1}
			},
		}
		p.Attach(ps)
		for step := 0; step < 300; step++ {
			switch src.Intn(3) {
			case 0:
				p.Insert(agent.State{})
			case 1:
				if p.Len() > 0 {
					p.DeleteSwap(src.Intn(p.Len()))
				}
			default:
				actions := make([]Action, p.Len())
				for i := range actions {
					actions[i] = Action(src.Intn(3))
				}
				before := make([]Point, ps.Len())
				copy(before, ps.pos)
				p.Apply(actions)
				want := ReplayApply(before, actions, func(parent Point) Point {
					x := parent.X + half
					if x >= 1 {
						x -= 1
					}
					return Point{X: x, Y: parent.Y + 1}
				})
				for i := range want {
					if ps.At(i) != want[i] {
						t.Fatalf("step %d slot %d: %+v, want %+v", step, i, ps.At(i), want[i])
					}
				}
			}
			if ps.Len() != p.Len() {
				t.Fatalf("step %d: positions %d != population %d", step, ps.Len(), p.Len())
			}
			for i := 0; i < ps.Len(); i++ {
				if pt := ps.At(i); pt.X < 0 || pt.X >= 1 {
					t.Fatalf("step %d: position %d out of the unit torus: %+v", step, i, pt)
				}
			}
		}
	})
}

// TestPlacementQueueAndSetPlacer pins the pluggable Placer seam: queued
// one-shot placements win over the ambient Placer (FIFO), SetPlacer swaps
// ownership and returns the previous placer, and SetAt re-places in place.
func TestPlacementQueueAndSetPlacer(t *testing.T) {
	ambient := Point{X: 0.111}
	ps := &Positions{
		Place: PlaceFunc(func() Point { return ambient }),
		Spawn: func(parent Point) Point { return parent },
	}
	p := New(3)
	p.Attach(ps)
	for i := 0; i < 3; i++ {
		if ps.At(i) != ambient {
			t.Fatalf("initial placement %v, want ambient %v", ps.At(i), ambient)
		}
	}

	// Queued placements are consumed FIFO ahead of the ambient placer.
	a, b := Point{X: 0.25}, Point{X: 0.75}
	ps.QueuePlacement(a)
	ps.QueuePlacement(b)
	i1 := p.Insert(agent.State{})
	i2 := p.Insert(agent.State{})
	i3 := p.Insert(agent.State{})
	if ps.At(i1) != a || ps.At(i2) != b {
		t.Errorf("queued placements out of order: %v, %v", ps.At(i1), ps.At(i2))
	}
	if ps.At(i3) != ambient {
		t.Errorf("post-queue insert %v, want ambient", ps.At(i3))
	}

	// SetPlacer hands ownership over and returns the previous placer.
	clustered := Point{X: 0.5}
	old := ps.SetPlacer(PlaceFunc(func() Point { return clustered }))
	i4 := p.Insert(agent.State{})
	if ps.At(i4) != clustered {
		t.Errorf("owned placement %v, want %v", ps.At(i4), clustered)
	}
	ps.SetPlacer(old)
	i5 := p.Insert(agent.State{})
	if ps.At(i5) != ambient {
		t.Errorf("restored placement %v, want ambient", ps.At(i5))
	}

	// SetAt re-places an existing agent.
	ps.SetAt(0, Point{X: 0.9})
	if ps.At(0) != (Point{X: 0.9}) {
		t.Error("SetAt did not overwrite")
	}
}
