package population

import (
	"testing"
	"testing/quick"

	"popstab/internal/agent"
	"popstab/internal/prng"
)

func TestNewInitialState(t *testing.T) {
	p := New(10)
	if p.Len() != 10 {
		t.Fatalf("Len = %d", p.Len())
	}
	p.ForEach(func(i int, s agent.State) {
		if s != (agent.State{}) {
			t.Errorf("agent %d not zero-initialized: %+v", i, s)
		}
	})
}

func TestFromStatesCopies(t *testing.T) {
	src := []agent.State{{Round: 1}, {Round: 2}}
	p := FromStates(src)
	src[0].Round = 99
	if p.State(0).Round != 1 {
		t.Error("FromStates did not copy input")
	}
}

func TestInsertDelete(t *testing.T) {
	p := New(3)
	idx := p.Insert(agent.State{Round: 7})
	if idx != 3 || p.Len() != 4 {
		t.Fatalf("Insert idx=%d len=%d", idx, p.Len())
	}
	if p.State(3).Round != 7 {
		t.Fatal("inserted state lost")
	}
	p.DeleteSwap(0)
	if p.Len() != 3 {
		t.Fatalf("len after delete = %d", p.Len())
	}
	// The former last element (round 7) must have been swapped into slot 0.
	if p.State(0).Round != 7 {
		t.Errorf("swap-delete did not move last element, slot 0 = %+v", p.State(0))
	}
}

func TestDeleteDescending(t *testing.T) {
	p := FromStates([]agent.State{
		{Round: 0}, {Round: 1}, {Round: 2}, {Round: 3}, {Round: 4},
	})
	n := p.DeleteDescending([]int{4, 2, 0})
	if n != 3 || p.Len() != 2 {
		t.Fatalf("removed %d, len %d", n, p.Len())
	}
	// Survivors must be exactly rounds {1, 3} in some order.
	got := map[uint32]bool{}
	p.ForEach(func(_ int, s agent.State) { got[s.Round] = true })
	if !got[1] || !got[3] || len(got) != 2 {
		t.Errorf("survivors %v, want {1,3}", got)
	}
}

func TestDeleteDescendingPanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on ascending indices")
		}
	}()
	p := New(5)
	p.DeleteDescending([]int{1, 3})
}

func TestApplyKeepOnly(t *testing.T) {
	p := New(5)
	births, deaths := p.Apply(make([]Action, 5))
	if births != 0 || deaths != 0 || p.Len() != 5 {
		t.Fatalf("births=%d deaths=%d len=%d", births, deaths, p.Len())
	}
}

func TestApplyDeathsAndSplits(t *testing.T) {
	p := FromStates([]agent.State{
		{Round: 0}, {Round: 1}, {Round: 2}, {Round: 3},
	})
	actions := []Action{ActSplit, ActDie, ActKeep, ActSplit}
	births, deaths := p.Apply(actions)
	if births != 2 || deaths != 1 {
		t.Fatalf("births=%d deaths=%d", births, deaths)
	}
	if p.Len() != 5 { // 4 - 1 + 2
		t.Fatalf("len = %d, want 5", p.Len())
	}
	// Survivor prefix keeps original order: rounds 0, 2, 3.
	for i, want := range []uint32{0, 2, 3} {
		if got := p.State(i).Round; got != want {
			t.Errorf("slot %d round = %d, want %d", i, got, want)
		}
	}
	// Daughters appended in split order: copies of rounds 0 and 3.
	if p.State(3).Round != 0 || p.State(4).Round != 3 {
		t.Errorf("daughters = %v, %v; want rounds 0 and 3", p.State(3), p.State(4))
	}
}

func TestApplyAllDie(t *testing.T) {
	p := New(4)
	actions := []Action{ActDie, ActDie, ActDie, ActDie}
	births, deaths := p.Apply(actions)
	if births != 0 || deaths != 4 || p.Len() != 0 {
		t.Fatalf("births=%d deaths=%d len=%d", births, deaths, p.Len())
	}
}

func TestApplyPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched action slice")
		}
	}()
	New(3).Apply(make([]Action, 2))
}

// TestApplyConservation is a property test: for any random action vector,
// the resulting population size must be len − deaths + births, with deaths
// and births matching the action counts.
func TestApplyConservation(t *testing.T) {
	src := prng.New(42)
	f := func(nRaw uint8, seed uint16) bool {
		n := int(nRaw%100) + 1
		states := make([]agent.State, n)
		for i := range states {
			states[i].Round = uint32(i)
		}
		p := FromStates(states)
		actions := make([]Action, n)
		wantDie, wantSplit := 0, 0
		for i := range actions {
			switch src.Intn(3) {
			case 0:
				actions[i] = ActKeep
			case 1:
				actions[i] = ActDie
				wantDie++
			default:
				actions[i] = ActSplit
				wantSplit++
			}
		}
		births, deaths := p.Apply(actions)
		return births == wantSplit && deaths == wantDie &&
			p.Len() == n-wantDie+wantSplit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestApplySplitDaughterIdentity verifies every daughter is a bit-exact copy
// of its parent's post-step state.
func TestApplySplitDaughterIdentity(t *testing.T) {
	states := []agent.State{
		{Round: 10, Active: true, Color: 1, ToRecruit: 2},
		{Round: 20},
		{Round: 30, Active: true, Color: 0},
	}
	p := FromStates(states)
	_, _ = p.Apply([]Action{ActSplit, ActKeep, ActSplit})
	if p.Len() != 5 {
		t.Fatalf("len = %d", p.Len())
	}
	if p.State(3) != states[0] {
		t.Errorf("first daughter %+v != parent %+v", p.State(3), states[0])
	}
	if p.State(4) != states[2] {
		t.Errorf("second daughter %+v != parent %+v", p.State(4), states[2])
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(3)
	q := p.Clone()
	p.Ref(0).Round = 42
	if q.State(0).Round == 42 {
		t.Error("Clone shares storage")
	}
	q.Insert(agent.State{})
	if p.Len() != 3 {
		t.Error("Clone insert affected original")
	}
}

func TestForceResize(t *testing.T) {
	p := New(10)
	p.ForceResize(4, 0)
	if p.Len() != 4 {
		t.Fatalf("len = %d", p.Len())
	}
	p.ForceResize(8, 5)
	if p.Len() != 8 {
		t.Fatalf("len = %d", p.Len())
	}
	// Padding agents must carry the requested round.
	if p.State(7).Round != 5 {
		t.Errorf("padded agent round = %d, want 5", p.State(7).Round)
	}
}

func TestCensusCounts(t *testing.T) {
	p := FromStates([]agent.State{
		{Round: 5, Active: true, Color: 0, Recruiting: true, ToRecruit: 3},
		{Round: 5, Active: true, Color: 1},
		{Round: 5},
		{Round: 9}, // wrong round (eval round here)
		{Round: 2}, // wrong round
	})
	c := p.TakeCensus(9, 6)
	if c.Total != 5 || c.Active != 2 || c.Recruiting != 1 {
		t.Errorf("census %+v", c)
	}
	if c.ColorCount[0] != 1 || c.ColorCount[1] != 1 {
		t.Errorf("color counts %v", c.ColorCount)
	}
	if c.MajorityRound != 5 || c.WrongRound != 2 {
		t.Errorf("majority=%d wrong=%d", c.MajorityRound, c.WrongRound)
	}
	if c.InEval != 1 {
		t.Errorf("InEval = %d, want 1", c.InEval)
	}
	if c.ByToRecruit[3] != 1 {
		t.Errorf("ByToRecruit = %v", c.ByToRecruit)
	}
	if len(c.RoundValues) != 3 {
		t.Errorf("RoundValues = %v", c.RoundValues)
	}
}

func TestCensusMajorityTieBreak(t *testing.T) {
	p := FromStates([]agent.State{{Round: 3}, {Round: 1}})
	c := p.TakeCensus(10, 2)
	if c.MajorityRound != 1 {
		t.Errorf("tie must break toward smaller round, got %d", c.MajorityRound)
	}
}

func TestCensusDerived(t *testing.T) {
	p := FromStates([]agent.State{
		{Active: true, Color: 0},
		{Active: true, Color: 0},
		{Active: true, Color: 1},
		{},
	})
	c := p.TakeCensus(10, 2)
	if got := c.ActiveFraction(); got != 0.75 {
		t.Errorf("ActiveFraction = %v", got)
	}
	if got := c.ColorImbalance(); got != 1 {
		t.Errorf("ColorImbalance = %v", got)
	}
	empty := New(0).TakeCensus(10, 2)
	if empty.ActiveFraction() != 0 {
		t.Error("empty ActiveFraction must be 0")
	}
}

func TestCountIfFindIf(t *testing.T) {
	p := FromStates([]agent.State{
		{Active: true}, {}, {Active: true}, {}, {Active: true},
	})
	isActive := func(s agent.State) bool { return s.Active }
	if got := p.CountIf(isActive); got != 3 {
		t.Errorf("CountIf = %d", got)
	}
	idx := p.FindIf(nil, 2, isActive)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 2 {
		t.Errorf("FindIf limit 2 = %v", idx)
	}
	idx = p.FindIf(nil, -1, isActive)
	if len(idx) != 3 {
		t.Errorf("FindIf unlimited = %v", idx)
	}
}

func TestActionString(t *testing.T) {
	cases := map[Action]string{ActKeep: "keep", ActDie: "die", ActSplit: "split", Action(9): "action(9)"}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", a, got, want)
		}
	}
}

func BenchmarkApply(b *testing.B) {
	const n = 65536
	p := New(n)
	actions := make([]Action, n)
	for i := range actions {
		switch i % 100 {
		case 0:
			actions[i] = ActDie
		case 1:
			actions[i] = ActSplit
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Apply(actions)
		p.ForceResize(n, 0)
		if len(actions) != p.Len() {
			actions = actions[:p.Len()]
		}
	}
}

func BenchmarkTakeCensus(b *testing.B) {
	p := New(65536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.TakeCensus(100, 8)
	}
}
