package population

import (
	"fmt"

	"popstab/internal/pool"
)

// This file implements the sharded replacement for ReplayApply's serial
// compaction walk: a two-pass prefix-sum slot plan (DESIGN.md §10).
//
// Pass A shards the action array and counts each shard's survivors and
// splits; a serial exclusive scan over the (tiny) per-shard counts then
// assigns every shard a survivor base and a daughter base. Pass B scatters:
// each shard walks its own action range once, copying survivors to
// consecutive slots from its survivor base and daughters from its daughter
// base. Because the bases are exclusive prefix sums, the resulting layout is
// EXACTLY ReplayApply's stable layout — survivors in original order, then
// all daughters in action order — for every shard count, which is what keeps
// output bit-identical across worker counts and lets golden tests pin the
// plan against the historical serial implementation byte for byte.
//
// The same plan is applied to the agent-state array and replayed by every
// tracker side-array (PlanApplier), so trackers stop re-walking the actions
// independently: the counting pass runs once per round, not once per array.
//
// Pass B scatters into a second buffer rather than in place: with shards
// running concurrently, shard k+1's survivor writes may land inside shard
// k's not-yet-read range. The arrays double-buffer (the displaced buffer is
// returned for reuse as next round's scratch), except in the common
// zero-death round, where survivors are already in their final slots and
// only the daughters are scattered — no copy at all.

// minApplyShard bounds how finely the apply plan shards: below ~8k actions
// per worker the pass A/B wake-ups exceed the walk. Purely a scheduling
// heuristic — the plan's layout is shard-count-invariant.
const minApplyShard = 8192

// ApplyPlan is one round's compaction plan: shard boundaries over the action
// array plus each shard's exclusive survivor and daughter slot bases. Built
// by Population.Apply and handed to every PlanApplier tracker; valid until
// the next Apply on the same population.
type ApplyPlan struct {
	actions []Action
	pool    *pool.Pool
	// shards partitions actions at bounds; survBase[k] and birthBase[k] are
	// shard k's first survivor and daughter output slots.
	shards    int
	bounds    []int32
	survBase  []int32
	birthBase []int32
	// splitIdx caches the parents of each daughter in action order, built on
	// first SplitIndices call (serial-spawn consumers need it).
	splitIdx     []int32
	haveSplitIdx bool

	nSurv, births, deaths int
}

// Actions returns the action array the plan was built over.
func (pl *ApplyPlan) Actions() []Action { return pl.actions }

// Births reports the number of ActSplit entries (daughters appended).
func (pl *ApplyPlan) Births() int { return pl.births }

// Deaths reports the number of ActDie entries (agents dropped).
func (pl *ApplyPlan) Deaths() int { return pl.deaths }

// Len reports the post-apply array length: survivors plus daughters.
func (pl *ApplyPlan) Len() int { return pl.nSurv + pl.births }

// build computes the plan over actions: pass A (sharded counts) plus the
// serial exclusive scan of the per-shard totals.
func (pl *ApplyPlan) build(actions []Action, p *pool.Pool) {
	n := len(actions)
	pl.actions = actions
	pl.pool = p
	pl.haveSplitIdx = false
	w := 1
	if p != nil {
		w = p.Shards(n, minApplyShard)
	}
	pl.shards = w
	if cap(pl.bounds) < w+1 {
		pl.bounds = make([]int32, w+1)
		pl.survBase = make([]int32, w+1)
		pl.birthBase = make([]int32, w+1)
	}
	pl.bounds = pl.bounds[:w+1]
	pl.survBase = pl.survBase[:w]
	pl.birthBase = pl.birthBase[:w]
	for k := 0; k <= w; k++ {
		pl.bounds[k] = int32(k * n / w)
	}
	pl.runShards(func(k int) {
		surv, births := 0, 0
		for _, act := range actions[pl.bounds[k]:pl.bounds[k+1]] {
			if act == ActDie {
				continue
			}
			surv++
			if act == ActSplit {
				births++
			}
		}
		pl.survBase[k] = int32(surv)
		pl.birthBase[k] = int32(births)
	})
	// Exclusive scan (serial: w is tiny). Daughter bases additionally offset
	// past ALL survivors — daughters land after the compacted prefix.
	nSurv, nBirths := 0, 0
	for k := 0; k < w; k++ {
		s, b := int(pl.survBase[k]), int(pl.birthBase[k])
		pl.survBase[k] = int32(nSurv)
		pl.birthBase[k] = int32(nBirths)
		nSurv += s
		nBirths += b
	}
	for k := 0; k < w; k++ {
		pl.birthBase[k] += int32(nSurv)
	}
	pl.nSurv, pl.births, pl.deaths = nSurv, nBirths, n-nSurv
}

// runShards executes fn over every shard index, on the pool when one is
// attached and the plan has more than one shard.
func (pl *ApplyPlan) runShards(fn func(k int)) {
	if pl.pool != nil && pl.shards > 1 {
		pl.pool.RunN(pl.shards, fn)
		return
	}
	for k := 0; k < pl.shards; k++ {
		fn(k)
	}
}

// SplitIndices returns the parent index of every daughter, in the action
// order ReplayApply appends daughters. Consumers whose spawn draws from a
// serial randomness stream (Positions) walk it serially — O(births), not
// O(n) — to stage daughter values before the parallel scatter. Built once
// per plan, shared by all callers; valid until the next Apply.
func (pl *ApplyPlan) SplitIndices() []int32 {
	if pl.haveSplitIdx {
		return pl.splitIdx
	}
	if cap(pl.splitIdx) < pl.births {
		pl.splitIdx = make([]int32, pl.births+pl.births/2)
	}
	pl.splitIdx = pl.splitIdx[:pl.births]
	pl.runShards(func(k int) {
		b := int(pl.birthBase[k]) - pl.nSurv
		for i := pl.bounds[k]; i < pl.bounds[k+1]; i++ {
			if pl.actions[i] == ActSplit {
				pl.splitIdx[b] = i
				b++
			}
		}
	})
	pl.haveSplitIdx = true
	return pl.splitIdx
}

// ApplyPlanned applies the plan to arr, producing ReplayApply's exact layout:
// survivors stably compacted, then one spawn(parent) daughter per ActSplit in
// action order. spawn must be a pure function — shards call it concurrently,
// in shard order rather than action order (side-arrays whose spawn consumes
// serial randomness stage daughters first and use ApplyPlannedStaged).
//
// spare is an optional displaced buffer from a previous call (any length;
// only its capacity matters). Returns the new array and the buffer the
// caller should keep as next round's spare. In a zero-death round with
// enough capacity, arr is extended in place and no element is copied.
func ApplyPlanned[T any](pl *ApplyPlan, arr, spare []T, spawn func(parent T) T) (out, newSpare []T) {
	n := len(pl.actions)
	if len(arr) != n {
		panic(fmt.Sprintf("population: plan over %d actions applied to %d elements", n, len(arr)))
	}
	need := pl.nSurv + pl.births
	if pl.deaths == 0 && cap(arr) >= need {
		out = arr[:need]
		pl.runShards(func(k int) {
			b := int(pl.birthBase[k])
			for i := int(pl.bounds[k]); i < int(pl.bounds[k+1]); i++ {
				if pl.actions[i] == ActSplit {
					out[b] = spawn(out[i])
					b++
				}
			}
		})
		return out, spare
	}
	if cap(spare) >= need {
		out = spare[:need]
	} else {
		out = make([]T, need, need+need/2)
	}
	pl.runShards(func(k int) {
		s, b := int(pl.survBase[k]), int(pl.birthBase[k])
		for i := int(pl.bounds[k]); i < int(pl.bounds[k+1]); i++ {
			act := pl.actions[i]
			if act == ActDie {
				continue
			}
			v := arr[i]
			out[s] = v
			s++
			if act == ActSplit {
				out[b] = spawn(v)
				b++
			}
		}
	})
	return out, arr[:0]
}

// ApplyPlannedStaged is ApplyPlanned for side-arrays whose daughter values
// were staged up front (in action order, one per ActSplit — see
// SplitIndices): daughter slot b receives daughters[b]. Positions uses it so
// its randomness-consuming Spawn runs serially, in the exact draw order of
// the historical serial implementation, while the O(n) compaction still
// shards.
func ApplyPlannedStaged[T any](pl *ApplyPlan, arr, spare, daughters []T) (out, newSpare []T) {
	n := len(pl.actions)
	if len(arr) != n {
		panic(fmt.Sprintf("population: plan over %d actions applied to %d elements", n, len(arr)))
	}
	if len(daughters) != pl.births {
		panic(fmt.Sprintf("population: %d staged daughters for %d splits", len(daughters), pl.births))
	}
	need := pl.nSurv + pl.births
	if pl.deaths == 0 && cap(arr) >= need {
		out = arr[:need]
		pl.runShards(func(k int) {
			b := int(pl.birthBase[k])
			for i := int(pl.bounds[k]); i < int(pl.bounds[k+1]); i++ {
				if pl.actions[i] == ActSplit {
					out[b] = daughters[b-pl.nSurv]
					b++
				}
			}
		})
		return out, spare
	}
	if cap(spare) >= need {
		out = spare[:need]
	} else {
		out = make([]T, need, need+need/2)
	}
	pl.runShards(func(k int) {
		s, b := int(pl.survBase[k]), int(pl.birthBase[k])
		for i := int(pl.bounds[k]); i < int(pl.bounds[k+1]); i++ {
			act := pl.actions[i]
			if act == ActDie {
				continue
			}
			out[s] = arr[i]
			s++
			if act == ActSplit {
				out[b] = daughters[b-pl.nSurv]
				b++
			}
		}
	})
	return out, arr[:0]
}
