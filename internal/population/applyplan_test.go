package population

import (
	"fmt"
	"testing"

	"popstab/internal/pool"
	"popstab/internal/prng"
)

// planFixture runs one plan-vs-ReplayApply comparison: the same action
// array applied through the serial reference and through the plan (on a
// pool of the given worker count), over an int payload array, a staged
// side-array whose "spawn" consumes a serial stream, and a pure-spawn
// side-array.
func checkPlanMatchesReplay(t *testing.T, actions []Action, workers int) {
	t.Helper()
	n := len(actions)
	base := make([]int, n)
	for i := range base {
		base[i] = i * 3
	}
	spawn := func(parent int) int { return parent + 1_000_000 }

	// Serial reference.
	ref := ReplayApply(append([]int(nil), base...), actions, spawn)

	// Staged reference: a spawn that consumes a serial randomness stream,
	// exactly like Positions.Spawn — drawn in action order by ReplayApply.
	refSrc := prng.New(42)
	refStaged := ReplayApply(append([]int(nil), base...), actions,
		func(parent int) int { return parent + int(refSrc.Uint64()%1000) })

	p := pool.New(workers)
	defer p.Close()
	var pl ApplyPlan
	pl.build(actions, p)

	if got, want := pl.Len(), len(ref); got != want {
		t.Fatalf("plan Len() = %d, ReplayApply produced %d", got, want)
	}
	wantDeaths := 0
	for _, a := range actions {
		if a == ActDie {
			wantDeaths++
		}
	}
	if pl.Deaths() != wantDeaths {
		t.Fatalf("plan Deaths() = %d, want %d", pl.Deaths(), wantDeaths)
	}

	got, _ := ApplyPlanned(&pl, append([]int(nil), base...), nil, spawn)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("workers=%d: ApplyPlanned[%d] = %d, ReplayApply = %d", workers, i, got[i], ref[i])
		}
	}

	// Staged path: draw daughters serially via SplitIndices (the draw order
	// must equal ReplayApply's action-order spawn calls), then scatter.
	src := prng.New(42)
	idx := pl.SplitIndices()
	daughters := make([]int, 0, len(idx))
	for _, i := range idx {
		daughters = append(daughters, base[i]+int(src.Uint64()%1000))
	}
	gotStaged, _ := ApplyPlannedStaged(&pl, append([]int(nil), base...), nil, daughters)
	for i := range refStaged {
		if gotStaged[i] != refStaged[i] {
			t.Fatalf("workers=%d: ApplyPlannedStaged[%d] = %d, ReplayApply = %d", workers, i, gotStaged[i], refStaged[i])
		}
	}
}

// TestApplyPlanMatchesReplayApply fuzzes random action arrays across worker
// counts and checks the plan reproduces ReplayApply's layout element for
// element, for both the concurrent-spawn and staged-daughter paths.
func TestApplyPlanMatchesReplayApply(t *testing.T) {
	src := prng.New(7)
	sizes := []int{0, 1, 2, 3, 17, 100, 1000, 8192, 30000}
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range sizes {
			for trial := 0; trial < 3; trial++ {
				actions := make([]Action, n)
				for i := range actions {
					switch src.Uint64() % 10 {
					case 0, 1:
						actions[i] = ActDie
					case 2, 3:
						actions[i] = ActSplit
					default:
						actions[i] = ActKeep
					}
				}
				checkPlanMatchesReplay(t, actions, workers)
			}
		}
	}
}

// TestApplyPlanExtremes pins the all-die, all-split, and all-keep rounds —
// the boundary layouts (empty output, doubled output, identity) — across
// worker counts.
func TestApplyPlanExtremes(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, tc := range []struct {
			name string
			act  Action
		}{{"all-die", ActDie}, {"all-split", ActSplit}, {"all-keep", ActKeep}} {
			t.Run(fmt.Sprintf("%s/w%d", tc.name, workers), func(t *testing.T) {
				actions := make([]Action, 20000)
				for i := range actions {
					actions[i] = tc.act
				}
				checkPlanMatchesReplay(t, actions, workers)
			})
		}
	}
}

// TestApplyPlanShardCountInvariance builds the same plan on different
// worker counts and checks the slot layout is identical: the bases are
// global prefix sums, so shard boundaries must not show in the output.
func TestApplyPlanShardCountInvariance(t *testing.T) {
	src := prng.New(11)
	actions := make([]Action, 50000)
	for i := range actions {
		switch src.Uint64() % 4 {
		case 0:
			actions[i] = ActDie
		case 1:
			actions[i] = ActSplit
		default:
			actions[i] = ActKeep
		}
	}
	base := make([]int, len(actions))
	for i := range base {
		base[i] = i
	}
	spawn := func(parent int) int { return -parent }

	var want []int
	for _, workers := range []int{1, 2, 3, 5, 8, 16} {
		p := pool.New(workers)
		var pl ApplyPlan
		pl.build(actions, p)
		got, _ := ApplyPlanned(&pl, append([]int(nil), base...), nil, spawn)
		p.Close()
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: length %d, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, workers=1 had %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestApplyThroughPlanWithInterleavedTrackers drives Population.Apply with
// a mix of plan-aware and legacy trackers attached — Positions (staged
// randomness-consuming spawn), a plan-aware int side-array, and a
// legacy Applied-only tracker — and checks all stay aligned with a
// population evolved through the serial reference.
func TestApplyThroughPlanWithInterleavedTrackers(t *testing.T) {
	type legacyTracker struct {
		intTracker // reuse the test int side-array, forcing the Applied path
	}

	for _, workers := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			const n = 9000
			p := pool.New(workers)
			defer p.Close()

			pop := New(n)
			pop.SetPool(p)
			planT := &planIntTracker{}
			legacy := &legacyTracker{}
			posSrc := prng.New(99)
			pos := &Positions{
				Place: PlaceFunc(func() Point { return Point{X: posSrc.Float64(), Y: posSrc.Float64()} }),
				Spawn: func(parent Point) Point { return Point{X: parent.X + posSrc.Float64(), Y: parent.Y} },
			}
			pop.Attach(planT)
			pop.Attach(legacy)
			pop.Attach(pos)

			refPop := New(n)
			refT := &intTracker{}
			refSrc := prng.New(99)
			refPos := &Positions{
				Place: PlaceFunc(func() Point { return Point{X: refSrc.Float64(), Y: refSrc.Float64()} }),
				Spawn: func(parent Point) Point { return Point{X: parent.X + refSrc.Float64(), Y: parent.Y} },
			}
			refPop.Attach(refT)
			refPop.Attach(refPos)

			actSrc := prng.New(5)
			for round := 0; round < 20; round++ {
				actions := make([]Action, pop.Len())
				for i := range actions {
					switch actSrc.Uint64() % 6 {
					case 0:
						actions[i] = ActDie
					case 1, 2:
						actions[i] = ActSplit
					default:
						actions[i] = ActKeep
					}
				}
				b1, d1 := pop.Apply(actions)
				b2, d2 := refPop.Apply(actions)
				if b1 != b2 || d1 != d2 {
					t.Fatalf("round %d: births/deaths (%d,%d) vs reference (%d,%d)", round, b1, d1, b2, d2)
				}
				if pop.Len() != refPop.Len() {
					t.Fatalf("round %d: size %d vs reference %d", round, pop.Len(), refPop.Len())
				}
				if err := pop.CheckAligned(); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				for i := 0; i < pop.Len(); i++ {
					if planT.vals[i] != refT.vals[i] || legacy.vals[i] != refT.vals[i] {
						t.Fatalf("round %d slot %d: plan=%d legacy=%d ref=%d",
							round, i, planT.vals[i], legacy.vals[i], refT.vals[i])
					}
					if pos.At(i) != refPos.At(i) {
						t.Fatalf("round %d slot %d: pos %v, reference %v", round, i, pos.At(i), refPos.At(i))
					}
				}
			}
		})
	}
}

// intTracker is a minimal legacy side-array: each slot holds a unique id
// assigned at attach/insert, daughters copy the parent. It exercises the
// Applied(actions) fallback.
type intTracker struct {
	vals []int
	next int
}

func (tr *intTracker) Len() int { return len(tr.vals) }
func (tr *intTracker) Attached(n int) {
	tr.vals = make([]int, 0, n)
	for i := 0; i < n; i++ {
		tr.vals = append(tr.vals, tr.next)
		tr.next++
	}
}
func (tr *intTracker) Inserted(i int) {
	tr.vals = append(tr.vals, tr.next)
	tr.next++
}
func (tr *intTracker) DeletedSwap(i, last int) {
	tr.vals[i] = tr.vals[last]
	tr.vals = tr.vals[:last]
}
func (tr *intTracker) Applied(actions []Action) {
	tr.vals = ReplayApply(tr.vals, actions, func(parent int) int { return parent })
}

// planIntTracker is intTracker upgraded to the plan seam.
type planIntTracker struct {
	intTracker
	spare []int
}

var _ PlanApplier = (*planIntTracker)(nil)

func (tr *planIntTracker) AppliedPlan(pl *ApplyPlan) {
	tr.vals, tr.spare = ApplyPlanned(pl, tr.vals, tr.spare, func(parent int) int { return parent })
}
