package population

import (
	"testing"

	"popstab/internal/agent"
	"popstab/internal/prng"
	"popstab/internal/wire"
)

// TestPositionsSnapshotRoundTrip is a fuzz-style table over the tricky
// Positions state: random population sizes with random numbers of queued
// one-shot placements, a random prefix of which was already consumed by
// insertions before the snapshot. The restored side-array must reproduce
// the live positions exactly AND keep the remaining queue's FIFO contract:
// the next insertions after restore land on the same staged points the
// uninterrupted container would have used.
func TestPositionsSnapshotRoundTrip(t *testing.T) {
	src := prng.New(77)
	for trial := 0; trial < 64; trial++ {
		n := 1 + src.Intn(200)
		staged := src.Intn(8)
		consumed := 0
		if staged > 0 {
			consumed = src.Intn(staged + 1)
		}

		build := func() (*Population, *Positions) {
			place := prng.New(uint64(1000 + trial)) // deterministic per trial
			pop := New(0)
			ps := &Positions{
				Place: PlaceFunc(func() Point { return Point{X: place.Float64(), Y: place.Float64()} }),
				Spawn: func(parent Point) Point { return parent },
			}
			pop.Attach(ps)
			return pop, ps
		}
		pop, ps := build()
		for i := 0; i < n; i++ {
			pop.Insert(agent.State{Round: uint32(i % 7)})
		}
		points := make([]Point, staged)
		for q := 0; q < staged; q++ {
			points[q] = Point{X: float64(trial) + float64(q)/16, Y: float64(q)}
			ps.QueuePlacement(points[q])
		}
		for c := 0; c < consumed; c++ {
			pop.Insert(agent.State{Active: true})
		}

		e := wire.NewEnc()
		e.Begin(1)
		pop.EncodeState(e)
		ps.EncodeState(e)
		e.End()
		blob := e.Finish()

		pop2, ps2 := build()
		d, err := wire.NewDec(blob)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		d.Begin(1)
		if err := pop2.DecodeState(d); err != nil {
			t.Fatalf("trial %d: decode population: %v", trial, err)
		}
		if err := ps2.DecodeState(d); err != nil {
			t.Fatalf("trial %d: decode positions: %v", trial, err)
		}
		d.End()
		if err := d.Err(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		if pop2.Len() != pop.Len() || ps2.Len() != ps.Len() {
			t.Fatalf("trial %d: restored sizes %d/%d, want %d/%d",
				trial, pop2.Len(), ps2.Len(), pop.Len(), ps.Len())
		}
		for i := 0; i < pop.Len(); i++ {
			if pop2.State(i) != pop.State(i) {
				t.Fatalf("trial %d: agent %d state %+v, want %+v", trial, i, pop2.State(i), pop.State(i))
			}
			if ps2.At(i) != ps.At(i) {
				t.Fatalf("trial %d: position %d = %v, want %v", trial, i, ps2.At(i), ps.At(i))
			}
		}

		// FIFO contract across the boundary: drain the remaining queue on
		// both containers and compare landing points against the staged
		// order. (Continuation of the Place STREAM itself is the owning
		// matcher's state, restored — and golden-tested — at the engine
		// level.)
		remaining := staged - consumed
		for k := 0; k < remaining; k++ {
			i1 := pop.Insert(agent.State{})
			i2 := pop2.Insert(agent.State{})
			if i1 != i2 {
				t.Fatalf("trial %d: insert indices diverge (%d vs %d)", trial, i1, i2)
			}
			want := points[consumed+k]
			if ps.At(i1) != want || ps2.At(i2) != want {
				t.Fatalf("trial %d: queue order broken at %d: orig %v restored %v, want %v",
					trial, k, ps.At(i1), ps2.At(i2), want)
			}
		}
	}
}
