package population

import (
	"encoding/binary"
	"math"

	"popstab/internal/pool"
	"popstab/internal/wire"
)

// pointRecordSize is the snapshot payload size of one Point: X then Y as
// IEEE-754 bits.
const pointRecordSize = 16

// Point is a position on the unit 2-torus. The model's agents are
// anonymous and unlocated; positions exist only for spatial communication
// models (paper §1.2, "Alternate communication models") and live in a side-
// array rather than in agent.State.
type Point struct {
	X, Y float64
}

// Placer chooses the position of a non-daughter agent: the initial
// population, insertions, and ForceResize padding. The model says "inserted
// agents appear wherever the adversary chooses"; a matcher's default Placer
// is oblivious (uniform), and the seam is pluggable so an adversary — or the
// rogue extension's clustered infiltration — can own placement instead
// (SetPlacer, QueuePlacement).
//
// Place is only ever invoked from the serial phases of a round (apply,
// adversary turn, construction), so implementations may consume randomness
// from a non-concurrent stream.
type Placer interface {
	// Place returns the position for one newly inserted agent.
	Place() Point
}

// PlaceFunc adapts a closure to Placer.
type PlaceFunc func() Point

// Place implements Placer.
func (f PlaceFunc) Place() Point { return f() }

// Positions is a per-agent position side-array kept index-aligned with a
// Population via the Tracker hooks. Spatial matchers (match.Torus) own one
// and register it with Population.Attach; the placement seams encode the
// model's geometry:
//
//   - Place positions an agent that did not arise from a split — the initial
//     population, adversarial insertions, and ForceResize padding ("inserted
//     agents appear wherever the adversary chooses"; the default is uniform);
//   - Spawn positions a daughter relative to its parent ("daughters of a
//     split appear next to their parent", cell division).
//
// Both seams run only from the serial phases of the round (apply,
// adversary turn), so any randomness they consume is deterministic and
// independent of the engine's worker count.
type Positions struct {
	// Place returns a fresh position for a non-daughter agent. Required.
	// Replaceable at runtime through SetPlacer; one-shot adversary-chosen
	// positions go through QueuePlacement instead.
	Place Placer
	// Spawn places a daughter given its parent's position. Required.
	Spawn func(parent Point) Point

	pos []Point
	// spare is the displaced double-buffer of the sharded apply scatter,
	// reused across rounds; daughters stages the serially-drawn daughter
	// positions of one AppliedPlan pass (see AppliedPlan).
	spare     []Point
	daughters []Point
	// queued holds explicit one-shot placements consumed FIFO by the next
	// insertions, ahead of the Place seam (the engine queues the adversary's
	// InsertAt positions here, immediately before the matching insert).
	queued []Point
	// pool, when set, shards AppliedPlan's scatter and EncodeState.
	pool *pool.Pool
}

var (
	_ Tracker     = (*Positions)(nil)
	_ PlanApplier = (*Positions)(nil)
	_ PoolUser    = (*Positions)(nil)
)

// SetPool implements PoolUser (wired through Population.SetPool).
func (ps *Positions) SetPool(p *pool.Pool) { ps.pool = p }

// Len reports the number of tracked positions.
func (ps *Positions) Len() int { return len(ps.pos) }

// At returns agent i's position.
func (ps *Positions) At(i int) Point { return ps.pos[i] }

// SetAt overwrites agent i's position. Serial phases only; used to re-place
// agents whose position was decided after their insertion (the rogue
// extension's clustered initial cohort).
func (ps *Positions) SetAt(i int, pt Point) { ps.pos[i] = pt }

// Slice exposes the underlying position array for read access on hot paths
// (grid bucketing). The slice is invalidated by any structural mutation.
func (ps *Positions) Slice() []Point { return ps.pos }

// SetPlacer swaps the Place seam and returns the previous Placer, so a
// caller that takes placement ownership (clustered infiltration) can restore
// the ambient placement afterwards.
func (ps *Positions) SetPlacer(p Placer) Placer {
	old := ps.Place
	ps.Place = p
	return old
}

// QueuePlacement stages an explicit position for the next inserted agent.
// Queued positions are consumed FIFO, ahead of the Place seam, and must be
// paired one-to-one with immediately following insertions: a stale queued
// entry would misplace an unrelated later insert.
func (ps *Positions) QueuePlacement(pt Point) {
	ps.queued = append(ps.queued, pt)
}

// place resolves the next insertion's position: queued placements first,
// then the pluggable Place seam.
func (ps *Positions) place() Point {
	if len(ps.queued) > 0 {
		pt := ps.queued[0]
		ps.queued = ps.queued[1:]
		if len(ps.queued) == 0 {
			ps.queued = nil
		}
		return pt
	}
	return ps.Place.Place()
}

// EncodeState writes the position side-array — the live positions AND any
// still-queued one-shot placements — into a snapshot payload. Queued
// placements are part of the capture because a snapshot may be taken while
// a placement is staged but its insertion has not happened yet (an external
// placement owner between rounds); dropping them would misplace the next
// insert after restore.
func (ps *Positions) EncodeState(e *wire.Enc) {
	// Bulk form of the historical per-field encode — identical bytes
	// (16 per point, X then Y as IEEE-754 bits), one Block reservation and a
	// sharded fill instead of 2n appends.
	n := len(ps.pos)
	e.U64(uint64(n))
	blk := e.Block(n * pointRecordSize)
	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := blk[i*pointRecordSize:]
			binary.LittleEndian.PutUint64(r[0:8], math.Float64bits(ps.pos[i].X))
			binary.LittleEndian.PutUint64(r[8:16], math.Float64bits(ps.pos[i].Y))
		}
	}
	if ps.pool != nil {
		ps.pool.Run(n, minEncodeShard, fill)
	} else {
		fill(0, n)
	}
	// The placement queue is a handful of staged points at most; per-field.
	e.U64(uint64(len(ps.queued)))
	for _, pt := range ps.queued {
		e.F64(pt.X)
		e.F64(pt.Y)
	}
}

// DecodeState replaces the position array and placement queue with a
// snapshot payload written by EncodeState. The Place/Spawn seams are left
// untouched: they are construction-time wiring, re-established by building
// the matcher from the same configuration before restoring.
func (ps *Positions) DecodeState(d *wire.Dec) error {
	readPoints := func(what string) ([]Point, error) {
		n := d.Count(pointRecordSize, what)
		if err := d.Err(); err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, nil
		}
		raw := d.Raw(n * pointRecordSize)
		if err := d.Err(); err != nil {
			return nil, err
		}
		out := make([]Point, n, n+n/2)
		parse := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				r := raw[i*pointRecordSize:]
				out[i] = Point{
					X: math.Float64frombits(binary.LittleEndian.Uint64(r[0:8])),
					Y: math.Float64frombits(binary.LittleEndian.Uint64(r[8:16])),
				}
			}
		}
		if ps.pool != nil {
			ps.pool.Run(n, minEncodeShard, parse)
		} else {
			parse(0, n)
		}
		return out, nil
	}
	pos, err := readPoints("position")
	if err != nil {
		return err
	}
	queued, err := readPoints("queued placement")
	if err != nil {
		return err
	}
	ps.pos = pos
	ps.queued = queued
	return nil
}

// Attached implements Tracker: every initial agent gets a Place position.
func (ps *Positions) Attached(n int) {
	ps.pos = make([]Point, 0, n+n/2)
	for i := 0; i < n; i++ {
		ps.pos = append(ps.pos, ps.place())
	}
}

// Inserted implements Tracker: inserted agents get a queued position if one
// is staged, else a Place position.
func (ps *Positions) Inserted(i int) {
	if i != len(ps.pos) {
		panic("population: Positions out of sync with population on insert")
	}
	ps.pos = append(ps.pos, ps.place())
}

// DeletedSwap implements Tracker.
func (ps *Positions) DeletedSwap(i, last int) {
	ps.pos[i] = ps.pos[last]
	ps.pos = ps.pos[:last]
}

// Applied implements Tracker: it replays Apply's stable compaction over the
// position array, Spawning one daughter position per split in the same
// order Apply appends daughter states.
func (ps *Positions) Applied(actions []Action) {
	ps.pos = ReplayApply(ps.pos, actions, ps.Spawn)
}

// AppliedPlan implements PlanApplier: the sharded form of Applied. Spawn
// consumes the matcher's serial placement stream, so daughter positions are
// drawn FIRST, serially, in exact action order — the same draw order as the
// historical serial replay, O(births) not O(n) — and staged; the O(n)
// compaction scatter then shards freely.
func (ps *Positions) AppliedPlan(plan *ApplyPlan) {
	idx := plan.SplitIndices()
	if cap(ps.daughters) < len(idx) {
		ps.daughters = make([]Point, 0, len(idx)+len(idx)/2)
	}
	ps.daughters = ps.daughters[:0]
	for _, i := range idx {
		ps.daughters = append(ps.daughters, ps.Spawn(ps.pos[i]))
	}
	ps.pos, ps.spare = ApplyPlannedStaged(plan, ps.pos, ps.spare, ps.daughters)
}
