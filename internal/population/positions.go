package population

// Point is a position on the unit 2-torus. The model's agents are
// anonymous and unlocated; positions exist only for spatial communication
// models (paper §1.2, "Alternate communication models") and live in a side-
// array rather than in agent.State.
type Point struct {
	X, Y float64
}

// Positions is a per-agent position side-array kept index-aligned with a
// Population via the Tracker hooks. Spatial matchers (match.Torus) own one
// and register it with Population.Attach; the placement closures encode the
// model's geometry:
//
//   - Place positions an agent that did not arise from a split — the initial
//     population, adversarial insertions, and ForceResize padding ("inserted
//     agents appear wherever the adversary chooses"; the default is uniform);
//   - Spawn positions a daughter relative to its parent ("daughters of a
//     split appear next to their parent", cell division).
//
// Both closures run only from the serial phases of the round (apply,
// adversary turn), so any randomness they consume is deterministic and
// independent of the engine's worker count.
type Positions struct {
	// Place returns a fresh position for a non-daughter agent. Required.
	Place func() Point
	// Spawn places a daughter given its parent's position. Required.
	Spawn func(parent Point) Point

	pos []Point
}

var _ Tracker = (*Positions)(nil)

// Len reports the number of tracked positions.
func (ps *Positions) Len() int { return len(ps.pos) }

// At returns agent i's position.
func (ps *Positions) At(i int) Point { return ps.pos[i] }

// Slice exposes the underlying position array for read access on hot paths
// (grid bucketing). The slice is invalidated by any structural mutation.
func (ps *Positions) Slice() []Point { return ps.pos }

// Attached implements Tracker: every initial agent gets a Place position.
func (ps *Positions) Attached(n int) {
	ps.pos = make([]Point, 0, n+n/2)
	for i := 0; i < n; i++ {
		ps.pos = append(ps.pos, ps.Place())
	}
}

// Inserted implements Tracker: inserted agents get a Place position.
func (ps *Positions) Inserted(i int) {
	if i != len(ps.pos) {
		panic("population: Positions out of sync with population on insert")
	}
	ps.pos = append(ps.pos, ps.Place())
}

// DeletedSwap implements Tracker.
func (ps *Positions) DeletedSwap(i, last int) {
	ps.pos[i] = ps.pos[last]
	ps.pos = ps.pos[:last]
}

// Applied implements Tracker: it replays Apply's stable compaction over the
// position array, Spawning one daughter position per split in the same
// order Apply appends daughter states.
func (ps *Positions) Applied(actions []Action) {
	ps.pos = ReplayApply(ps.pos, actions, ps.Spawn)
}
