package population

import (
	"popstab/internal/wire"
)

// Point is a position on the unit 2-torus. The model's agents are
// anonymous and unlocated; positions exist only for spatial communication
// models (paper §1.2, "Alternate communication models") and live in a side-
// array rather than in agent.State.
type Point struct {
	X, Y float64
}

// Placer chooses the position of a non-daughter agent: the initial
// population, insertions, and ForceResize padding. The model says "inserted
// agents appear wherever the adversary chooses"; a matcher's default Placer
// is oblivious (uniform), and the seam is pluggable so an adversary — or the
// rogue extension's clustered infiltration — can own placement instead
// (SetPlacer, QueuePlacement).
//
// Place is only ever invoked from the serial phases of a round (apply,
// adversary turn, construction), so implementations may consume randomness
// from a non-concurrent stream.
type Placer interface {
	// Place returns the position for one newly inserted agent.
	Place() Point
}

// PlaceFunc adapts a closure to Placer.
type PlaceFunc func() Point

// Place implements Placer.
func (f PlaceFunc) Place() Point { return f() }

// Positions is a per-agent position side-array kept index-aligned with a
// Population via the Tracker hooks. Spatial matchers (match.Torus) own one
// and register it with Population.Attach; the placement seams encode the
// model's geometry:
//
//   - Place positions an agent that did not arise from a split — the initial
//     population, adversarial insertions, and ForceResize padding ("inserted
//     agents appear wherever the adversary chooses"; the default is uniform);
//   - Spawn positions a daughter relative to its parent ("daughters of a
//     split appear next to their parent", cell division).
//
// Both seams run only from the serial phases of the round (apply,
// adversary turn), so any randomness they consume is deterministic and
// independent of the engine's worker count.
type Positions struct {
	// Place returns a fresh position for a non-daughter agent. Required.
	// Replaceable at runtime through SetPlacer; one-shot adversary-chosen
	// positions go through QueuePlacement instead.
	Place Placer
	// Spawn places a daughter given its parent's position. Required.
	Spawn func(parent Point) Point

	pos []Point
	// queued holds explicit one-shot placements consumed FIFO by the next
	// insertions, ahead of the Place seam (the engine queues the adversary's
	// InsertAt positions here, immediately before the matching insert).
	queued []Point
}

var _ Tracker = (*Positions)(nil)

// Len reports the number of tracked positions.
func (ps *Positions) Len() int { return len(ps.pos) }

// At returns agent i's position.
func (ps *Positions) At(i int) Point { return ps.pos[i] }

// SetAt overwrites agent i's position. Serial phases only; used to re-place
// agents whose position was decided after their insertion (the rogue
// extension's clustered initial cohort).
func (ps *Positions) SetAt(i int, pt Point) { ps.pos[i] = pt }

// Slice exposes the underlying position array for read access on hot paths
// (grid bucketing). The slice is invalidated by any structural mutation.
func (ps *Positions) Slice() []Point { return ps.pos }

// SetPlacer swaps the Place seam and returns the previous Placer, so a
// caller that takes placement ownership (clustered infiltration) can restore
// the ambient placement afterwards.
func (ps *Positions) SetPlacer(p Placer) Placer {
	old := ps.Place
	ps.Place = p
	return old
}

// QueuePlacement stages an explicit position for the next inserted agent.
// Queued positions are consumed FIFO, ahead of the Place seam, and must be
// paired one-to-one with immediately following insertions: a stale queued
// entry would misplace an unrelated later insert.
func (ps *Positions) QueuePlacement(pt Point) {
	ps.queued = append(ps.queued, pt)
}

// place resolves the next insertion's position: queued placements first,
// then the pluggable Place seam.
func (ps *Positions) place() Point {
	if len(ps.queued) > 0 {
		pt := ps.queued[0]
		ps.queued = ps.queued[1:]
		if len(ps.queued) == 0 {
			ps.queued = nil
		}
		return pt
	}
	return ps.Place.Place()
}

// EncodeState writes the position side-array — the live positions AND any
// still-queued one-shot placements — into a snapshot payload. Queued
// placements are part of the capture because a snapshot may be taken while
// a placement is staged but its insertion has not happened yet (an external
// placement owner between rounds); dropping them would misplace the next
// insert after restore.
func (ps *Positions) EncodeState(e *wire.Enc) {
	e.U64(uint64(len(ps.pos)))
	for _, pt := range ps.pos {
		e.F64(pt.X)
		e.F64(pt.Y)
	}
	e.U64(uint64(len(ps.queued)))
	for _, pt := range ps.queued {
		e.F64(pt.X)
		e.F64(pt.Y)
	}
}

// DecodeState replaces the position array and placement queue with a
// snapshot payload written by EncodeState. The Place/Spawn seams are left
// untouched: they are construction-time wiring, re-established by building
// the matcher from the same configuration before restoring.
func (ps *Positions) DecodeState(d *wire.Dec) error {
	readPoints := func(what string) ([]Point, error) {
		n := d.Count(16, what) // 16 payload bytes per point
		if err := d.Err(); err != nil {
			return nil, err
		}
		if n == 0 {
			return nil, nil
		}
		out := make([]Point, 0, n+n/2)
		for i := 0; i < n; i++ {
			out = append(out, Point{X: d.F64(), Y: d.F64()})
		}
		return out, d.Err()
	}
	pos, err := readPoints("position")
	if err != nil {
		return err
	}
	queued, err := readPoints("queued placement")
	if err != nil {
		return err
	}
	ps.pos = pos
	ps.queued = queued
	return nil
}

// Attached implements Tracker: every initial agent gets a Place position.
func (ps *Positions) Attached(n int) {
	ps.pos = make([]Point, 0, n+n/2)
	for i := 0; i < n; i++ {
		ps.pos = append(ps.pos, ps.place())
	}
}

// Inserted implements Tracker: inserted agents get a queued position if one
// is staged, else a Place position.
func (ps *Positions) Inserted(i int) {
	if i != len(ps.pos) {
		panic("population: Positions out of sync with population on insert")
	}
	ps.pos = append(ps.pos, ps.place())
}

// DeletedSwap implements Tracker.
func (ps *Positions) DeletedSwap(i, last int) {
	ps.pos[i] = ps.pos[last]
	ps.pos = ps.pos[:last]
}

// Applied implements Tracker: it replays Apply's stable compaction over the
// position array, Spawning one daughter position per split in the same
// order Apply appends daughter states.
func (ps *Positions) Applied(actions []Action) {
	ps.pos = ReplayApply(ps.pos, actions, ps.Spawn)
}
