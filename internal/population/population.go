// Package population implements the container of living agents and the
// census used by tests, adversaries, and experiments.
//
// The model's population is an unordered multiset of agent states: agents
// have no identifiers and cannot address one another (paper §2). The
// container therefore stores states contiguously in arbitrary order and uses
// swap-deletion; indices are only meaningful within a single round.
package population

import (
	"encoding/binary"
	"fmt"

	"popstab/internal/agent"
	"popstab/internal/pool"
	"popstab/internal/wire"
)

// Action is the per-agent outcome of one protocol step.
type Action uint8

// Possible actions. ActKeep is the zero value so that a cleared action
// buffer defaults to keeping every agent.
const (
	// ActKeep leaves the agent as is.
	ActKeep Action = iota
	// ActDie removes the agent (Die() in the paper).
	ActDie
	// ActSplit duplicates the agent; the daughter inherits the agent's
	// post-step state (Split() in the paper).
	ActSplit
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActKeep:
		return "keep"
	case ActDie:
		return "die"
	case ActSplit:
		return "split"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// Tracker observes the population's structural mutations so a side-array —
// per-agent data the model itself does not store, such as spatial positions
// (Positions) or program tags (internal/rogue) — stays index-aligned with
// the agent states. Every hook is invoked after the corresponding mutation
// of the state array, from the single goroutine that owns the population
// (all structural mutation is serial; see DESIGN.md §5).
type Tracker interface {
	// Attached is called once, at registration, with the population's
	// current size; the tracker initializes its side-array to n entries.
	Attached(n int)
	// Inserted reports one agent appended at index i (= new length − 1).
	Inserted(i int)
	// DeletedSwap reports a swap-deletion: the agent at index last moved
	// into slot i and the population shrank by one.
	DeletedSwap(i, last int)
	// Applied reports one Apply compaction pass; the tracker replays the
	// identical stable compaction (and daughter appends for ActSplit) over
	// its own array. Trackers that additionally implement PlanApplier
	// receive the precomputed ApplyPlan instead (never both).
	Applied(actions []Action)
}

// PlanApplier is an optional Tracker refinement: Apply hands the tracker the
// round's precomputed ApplyPlan instead of the raw action array, so the
// side-array replays the identical stable compaction without re-walking and
// re-counting the actions — and, with a pool attached, shards the scatter.
type PlanApplier interface {
	// AppliedPlan replaces Applied for one Apply pass. The plan is valid
	// only for the duration of the call plus the current round.
	AppliedPlan(plan *ApplyPlan)
}

// PoolUser is an optional Tracker refinement: trackers that shard their own
// bulk work (scatter, snapshot encode) receive the population's worker pool
// when one is attached (Population.SetPool).
type PoolUser interface {
	SetPool(p *pool.Pool)
}

// Population is the mutable set of living agents. It is not safe for
// concurrent use; the simulator owns it on a single goroutine (sharded bulk
// phases — the apply-plan scatter, snapshot encode — fan out through the
// attached pool but are fully joined before any method returns).
type Population struct {
	states []agent.State
	// spare is the displaced double-buffer of the apply scatter, reused
	// across rounds (see ApplyPlanned).
	spare    []agent.State
	trackers []Tracker

	// pool, when set, shards Apply and EncodeState; nil runs them serially.
	// Purely a throughput knob: layouts and bytes are pool-invariant.
	pool *pool.Pool
	plan ApplyPlan
}

// New returns a population of n agents in the all-zero initial state, as at
// the onset of the system (paper §3: "Initially ... all variables are set to
// zero").
func New(n int) *Population {
	return &Population{states: make([]agent.State, n)}
}

// FromStates builds a population from explicit states (for tests and
// adversarial scenarios). The slice is copied.
func FromStates(states []agent.State) *Population {
	s := make([]agent.State, len(states))
	copy(s, states)
	return &Population{states: s}
}

// Attach registers a side-array tracker and initializes it to the current
// size. Trackers are notified of every subsequent structural mutation, in
// attachment order. Clone and FromStates do not carry trackers over.
func (p *Population) Attach(t Tracker) {
	p.trackers = append(p.trackers, t)
	t.Attached(len(p.states))
	if pu, ok := t.(PoolUser); ok && p.pool != nil {
		pu.SetPool(p.pool)
	}
}

// SetPool attaches a worker pool sharding the bulk phases (Apply's
// count/scatter passes, EncodeState), propagating it to every attached
// tracker that can use one. The engine calls it once at construction; nil
// (the default) keeps everything serial. Output is pool-invariant.
func (p *Population) SetPool(pl *pool.Pool) {
	p.pool = pl
	for _, t := range p.trackers {
		if pu, ok := t.(PoolUser); ok {
			pu.SetPool(pl)
		}
	}
}

// States exposes the backing agent-state array for bulk streaming on hot
// paths (the engine's compose/step loops). The slice is invalidated by any
// structural mutation (Insert, DeleteSwap, Apply).
func (p *Population) States() []agent.State { return p.states }

// Len reports the number of living agents.
func (p *Population) Len() int { return len(p.states) }

// State returns a copy of agent i's state.
func (p *Population) State(i int) agent.State { return p.states[i] }

// Ref returns a pointer to agent i's state for in-place mutation by the
// protocol step. The pointer is invalidated by any insertion or deletion.
func (p *Population) Ref(i int) *agent.State { return &p.states[i] }

// Insert adds an agent with the given state and returns its index.
func (p *Population) Insert(s agent.State) int {
	p.states = append(p.states, s)
	i := len(p.states) - 1
	for _, t := range p.trackers {
		t.Inserted(i)
	}
	return i
}

// DeleteSwap removes agent i by swapping in the last agent. Indices of other
// agents except the last are preserved.
func (p *Population) DeleteSwap(i int) {
	last := len(p.states) - 1
	p.states[i] = p.states[last]
	p.states = p.states[:last]
	for _, t := range p.trackers {
		t.DeletedSwap(i, last)
	}
}

// DeleteDescending removes the agents at the given indices, which MUST be
// sorted in strictly descending order (so swap-deletion never disturbs a
// pending index). It returns the number removed.
func (p *Population) DeleteDescending(indices []int) int {
	prev := -1
	for _, i := range indices {
		if prev != -1 && i >= prev {
			panic("population: DeleteDescending indices not strictly descending")
		}
		prev = i
		p.DeleteSwap(i)
	}
	return len(indices)
}

// Apply executes one action per agent in a single compaction pass. The
// actions slice must have exactly Len() entries describing the outcome of
// each agent's step. Daughters of splitting agents are appended after the
// pass (they take no action this round). Returns the number of births and
// deaths.
func (p *Population) Apply(actions []Action) (births, deaths int) {
	if len(actions) != len(p.states) {
		panic(fmt.Sprintf("population: %d actions for %d agents", len(actions), len(p.states)))
	}
	// Build the round's slot plan once (it also yields the birth/death
	// census, folding out the historical separate counting walk), apply it
	// to the state array, and replay it over every side-array.
	p.plan.build(actions, p.pool)
	p.states, p.spare = ApplyPlanned(&p.plan, p.states, p.spare,
		func(parent agent.State) agent.State { return parent })
	for _, t := range p.trackers {
		if pa, ok := t.(PlanApplier); ok {
			pa.AppliedPlan(&p.plan)
		} else {
			t.Applied(actions)
		}
	}
	return p.plan.Births(), p.plan.Deaths()
}

// ReplayApply is the serial reference form of Apply's compaction invariant:
// it stably compacts arr by dropping ActDie entries, then — because survivor
// k of the original order now sits at compacted index k — walks the actions
// again and appends one spawn(arr[k]) daughter per ActSplit, in action
// order. Daughters land after the compacted prefix and are never themselves
// walked. Trackers replaying the same actions over their own arrays
// therefore stay index-aligned with the population by construction.
//
// The hot path (Apply, AppliedPlan) now goes through the sharded ApplyPlan,
// which reproduces this function's layout bit for bit; ReplayApply remains
// the semantic definition, the fallback for plan-unaware trackers, and the
// oracle the golden/property tests pin the plan against (DESIGN.md §10).
func ReplayApply[T any](arr []T, actions []Action, spawn func(parent T) T) []T {
	w := 0
	for i, act := range actions {
		if act == ActDie {
			continue
		}
		arr[w] = arr[i]
		w++
	}
	arr = arr[:w]
	r := 0
	for _, act := range actions {
		if act == ActDie {
			continue
		}
		if act == ActSplit {
			arr = append(arr, spawn(arr[r]))
		}
		r++
	}
	return arr
}

// minEncodeShard bounds how finely the bulk snapshot encode/decode shards.
const minEncodeShard = 16384

// agentRecordSize is the fixed snapshot payload per agent: Round u32 plus
// four single-byte fields, little-endian — the exact byte stream the
// historical per-field encoder produced, now written as one block so
// popserve's checkpoint cadence stops stalling the runner at large N.
const agentRecordSize = 8

// boolByte is the wire encoding of a boolean (Enc.Bool's 0/1).
func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// EncodeState writes the agent-state array into a snapshot section payload
// (see internal/wire). Trackers serialize their own side-arrays; the
// engine's snapshot layout keeps them adjacent so restore re-aligns them.
// The records are written into one bulk block, sharded across the attached
// pool; the byte stream is identical to the historical per-field encoding.
func (p *Population) EncodeState(e *wire.Enc) {
	n := len(p.states)
	e.U64(uint64(n))
	b := e.Block(n * agentRecordSize)
	fill := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := &p.states[i]
			r := b[i*agentRecordSize : i*agentRecordSize+agentRecordSize]
			binary.LittleEndian.PutUint32(r[0:4], s.Round)
			r[4] = boolByte(s.Active)
			r[5] = s.Color
			r[6] = boolByte(s.Recruiting)
			r[7] = uint8(s.ToRecruit)
		}
	}
	if p.pool != nil {
		p.pool.Run(n, minEncodeShard, fill)
	} else {
		fill(0, n)
	}
}

// DecodeState replaces the agent-state array with a snapshot payload
// written by EncodeState. Trackers are deliberately NOT notified: a restore
// reinstates every side-array from the same snapshot, so alignment is
// re-established by construction rather than by replaying mutations. The
// caller (the engine's Restore) validates that every tracker's restored
// length matches.
func (p *Population) DecodeState(d *wire.Dec) error {
	n := d.Count(agentRecordSize, "agent")
	if err := d.Err(); err != nil {
		return err
	}
	raw := d.Raw(n * agentRecordSize)
	if err := d.Err(); err != nil {
		return err
	}
	states := make([]agent.State, n, n+n/2)
	// Parse sharded; boolean strictness (a non-0/1 byte is corruption, as
	// with Dec.Bool) is preserved via a per-shard flag folded after the join.
	w := 1
	if p.pool != nil {
		w = p.pool.Shards(n, minEncodeShard)
	}
	bad := make([]bool, w)
	parse := func(k int) {
		lo, hi := k*n/w, (k+1)*n/w
		for i := lo; i < hi; i++ {
			r := raw[i*agentRecordSize : i*agentRecordSize+agentRecordSize]
			if r[4] > 1 || r[6] > 1 {
				bad[k] = true
				return
			}
			states[i] = agent.State{
				Round:      binary.LittleEndian.Uint32(r[0:4]),
				Active:     r[4] == 1,
				Color:      r[5],
				Recruiting: r[6] == 1,
				ToRecruit:  int8(r[7]),
			}
		}
	}
	if p.pool != nil && w > 1 {
		p.pool.RunN(w, parse)
	} else {
		parse(0)
	}
	for _, b := range bad {
		if b {
			return fmt.Errorf("wire: snapshot bool out of range")
		}
	}
	p.states = states
	return nil
}

// CheckAligned verifies that every attached tracker able to report its
// length (a `Len() int` method) tracks exactly one entry per agent. The
// restore path calls it after all side-arrays are reinstated from a
// snapshot: a crafted or mixed-up document whose sections decode cleanly
// but disagree on the population size must fail here, not as an
// out-of-range panic mid-round.
func (p *Population) CheckAligned() error {
	for _, t := range p.trackers {
		if s, ok := t.(interface{ Len() int }); ok {
			if got := s.Len(); got != len(p.states) {
				return fmt.Errorf("population: tracker %T holds %d entries for %d agents", t, got, len(p.states))
			}
		}
	}
	return nil
}

// ForEach invokes fn with each agent's index and a copy of its state.
func (p *Population) ForEach(fn func(i int, s agent.State)) {
	for i := range p.states {
		fn(i, p.states[i])
	}
}

// Clone returns a deep copy, used by experiments that replay from a common
// prefix.
func (p *Population) Clone() *Population {
	return FromStates(p.states)
}

// ForceResize truncates or pads (with zero-state agents at round r) the
// population to exactly n agents. Experiments use it to displace the
// population for drift and recovery measurements (Lemmas 8 and 9); it is not
// part of the model.
func (p *Population) ForceResize(n int, round uint32) {
	for len(p.states) > n {
		p.DeleteSwap(len(p.states) - 1)
	}
	for len(p.states) < n {
		p.Insert(agent.State{Round: round})
	}
}
