// Package population implements the container of living agents and the
// census used by tests, adversaries, and experiments.
//
// The model's population is an unordered multiset of agent states: agents
// have no identifiers and cannot address one another (paper §2). The
// container therefore stores states contiguously in arbitrary order and uses
// swap-deletion; indices are only meaningful within a single round.
package population

import (
	"fmt"

	"popstab/internal/agent"
	"popstab/internal/wire"
)

// Action is the per-agent outcome of one protocol step.
type Action uint8

// Possible actions. ActKeep is the zero value so that a cleared action
// buffer defaults to keeping every agent.
const (
	// ActKeep leaves the agent as is.
	ActKeep Action = iota
	// ActDie removes the agent (Die() in the paper).
	ActDie
	// ActSplit duplicates the agent; the daughter inherits the agent's
	// post-step state (Split() in the paper).
	ActSplit
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ActKeep:
		return "keep"
	case ActDie:
		return "die"
	case ActSplit:
		return "split"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// Tracker observes the population's structural mutations so a side-array —
// per-agent data the model itself does not store, such as spatial positions
// (Positions) or program tags (internal/rogue) — stays index-aligned with
// the agent states. Every hook is invoked after the corresponding mutation
// of the state array, from the single goroutine that owns the population
// (all structural mutation is serial; see DESIGN.md §5).
type Tracker interface {
	// Attached is called once, at registration, with the population's
	// current size; the tracker initializes its side-array to n entries.
	Attached(n int)
	// Inserted reports one agent appended at index i (= new length − 1).
	Inserted(i int)
	// DeletedSwap reports a swap-deletion: the agent at index last moved
	// into slot i and the population shrank by one.
	DeletedSwap(i, last int)
	// Applied reports one Apply compaction pass; the tracker replays the
	// identical stable compaction (and daughter appends for ActSplit) over
	// its own array.
	Applied(actions []Action)
}

// Population is the mutable set of living agents. It is not safe for
// concurrent use; the simulator owns it on a single goroutine.
type Population struct {
	states   []agent.State
	trackers []Tracker
}

// New returns a population of n agents in the all-zero initial state, as at
// the onset of the system (paper §3: "Initially ... all variables are set to
// zero").
func New(n int) *Population {
	return &Population{states: make([]agent.State, n)}
}

// FromStates builds a population from explicit states (for tests and
// adversarial scenarios). The slice is copied.
func FromStates(states []agent.State) *Population {
	s := make([]agent.State, len(states))
	copy(s, states)
	return &Population{states: s}
}

// Attach registers a side-array tracker and initializes it to the current
// size. Trackers are notified of every subsequent structural mutation, in
// attachment order. Clone and FromStates do not carry trackers over.
func (p *Population) Attach(t Tracker) {
	p.trackers = append(p.trackers, t)
	t.Attached(len(p.states))
}

// Len reports the number of living agents.
func (p *Population) Len() int { return len(p.states) }

// State returns a copy of agent i's state.
func (p *Population) State(i int) agent.State { return p.states[i] }

// Ref returns a pointer to agent i's state for in-place mutation by the
// protocol step. The pointer is invalidated by any insertion or deletion.
func (p *Population) Ref(i int) *agent.State { return &p.states[i] }

// Insert adds an agent with the given state and returns its index.
func (p *Population) Insert(s agent.State) int {
	p.states = append(p.states, s)
	i := len(p.states) - 1
	for _, t := range p.trackers {
		t.Inserted(i)
	}
	return i
}

// DeleteSwap removes agent i by swapping in the last agent. Indices of other
// agents except the last are preserved.
func (p *Population) DeleteSwap(i int) {
	last := len(p.states) - 1
	p.states[i] = p.states[last]
	p.states = p.states[:last]
	for _, t := range p.trackers {
		t.DeletedSwap(i, last)
	}
}

// DeleteDescending removes the agents at the given indices, which MUST be
// sorted in strictly descending order (so swap-deletion never disturbs a
// pending index). It returns the number removed.
func (p *Population) DeleteDescending(indices []int) int {
	prev := -1
	for _, i := range indices {
		if prev != -1 && i >= prev {
			panic("population: DeleteDescending indices not strictly descending")
		}
		prev = i
		p.DeleteSwap(i)
	}
	return len(indices)
}

// Apply executes one action per agent in a single compaction pass. The
// actions slice must have exactly Len() entries describing the outcome of
// each agent's step. Daughters of splitting agents are appended after the
// pass (they take no action this round). Returns the number of births and
// deaths.
func (p *Population) Apply(actions []Action) (births, deaths int) {
	if len(actions) != len(p.states) {
		panic(fmt.Sprintf("population: %d actions for %d agents", len(actions), len(p.states)))
	}
	for _, act := range actions {
		switch act {
		case ActDie:
			deaths++
		case ActSplit:
			births++
		}
	}
	p.states = ReplayApply(p.states, actions, func(parent agent.State) agent.State { return parent })
	for _, t := range p.trackers {
		t.Applied(actions)
	}
	return births, deaths
}

// ReplayApply is the one copy of Apply's compaction invariant, shared by the
// agent-state array and every side-array tracker: it stably compacts arr by
// dropping ActDie entries, then — because survivor k of the original order
// now sits at compacted index k — walks the actions again and appends one
// spawn(arr[k]) daughter per ActSplit, in action order. Daughters land after
// the compacted prefix and are never themselves walked. Trackers replaying
// the same actions over their own arrays therefore stay index-aligned with
// the population by construction.
func ReplayApply[T any](arr []T, actions []Action, spawn func(parent T) T) []T {
	w := 0
	for i, act := range actions {
		if act == ActDie {
			continue
		}
		arr[w] = arr[i]
		w++
	}
	arr = arr[:w]
	r := 0
	for _, act := range actions {
		if act == ActDie {
			continue
		}
		if act == ActSplit {
			arr = append(arr, spawn(arr[r]))
		}
		r++
	}
	return arr
}

// EncodeState writes the agent-state array into a snapshot section payload
// (see internal/wire). Trackers serialize their own side-arrays; the
// engine's snapshot layout keeps them adjacent so restore re-aligns them.
func (p *Population) EncodeState(e *wire.Enc) {
	e.U64(uint64(len(p.states)))
	for i := range p.states {
		s := &p.states[i]
		e.U32(s.Round)
		e.Bool(s.Active)
		e.U8(s.Color)
		e.Bool(s.Recruiting)
		e.U8(uint8(s.ToRecruit))
	}
}

// DecodeState replaces the agent-state array with a snapshot payload
// written by EncodeState. Trackers are deliberately NOT notified: a restore
// reinstates every side-array from the same snapshot, so alignment is
// re-established by construction rather than by replaying mutations. The
// caller (the engine's Restore) validates that every tracker's restored
// length matches.
func (p *Population) DecodeState(d *wire.Dec) error {
	n := d.Count(8, "agent") // 8 payload bytes per agent record
	if err := d.Err(); err != nil {
		return err
	}
	states := make([]agent.State, 0, n+n/2)
	for i := 0; i < n; i++ {
		s := agent.State{
			Round:      d.U32(),
			Active:     d.Bool(),
			Color:      d.U8(),
			Recruiting: d.Bool(),
			ToRecruit:  int8(d.U8()),
		}
		states = append(states, s)
	}
	if err := d.Err(); err != nil {
		return err
	}
	p.states = states
	return nil
}

// CheckAligned verifies that every attached tracker able to report its
// length (a `Len() int` method) tracks exactly one entry per agent. The
// restore path calls it after all side-arrays are reinstated from a
// snapshot: a crafted or mixed-up document whose sections decode cleanly
// but disagree on the population size must fail here, not as an
// out-of-range panic mid-round.
func (p *Population) CheckAligned() error {
	for _, t := range p.trackers {
		if s, ok := t.(interface{ Len() int }); ok {
			if got := s.Len(); got != len(p.states) {
				return fmt.Errorf("population: tracker %T holds %d entries for %d agents", t, got, len(p.states))
			}
		}
	}
	return nil
}

// ForEach invokes fn with each agent's index and a copy of its state.
func (p *Population) ForEach(fn func(i int, s agent.State)) {
	for i := range p.states {
		fn(i, p.states[i])
	}
}

// Clone returns a deep copy, used by experiments that replay from a common
// prefix.
func (p *Population) Clone() *Population {
	return FromStates(p.states)
}

// ForceResize truncates or pads (with zero-state agents at round r) the
// population to exactly n agents. Experiments use it to displace the
// population for drift and recovery measurements (Lemmas 8 and 9); it is not
// part of the model.
func (p *Population) ForceResize(n int, round uint32) {
	for len(p.states) > n {
		p.DeleteSwap(len(p.states) - 1)
	}
	for len(p.states) < n {
		p.Insert(agent.State{Round: round})
	}
}
