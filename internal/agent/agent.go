// Package agent defines the state carried by a single agent of the
// population stability protocol and the primitive operations on it.
//
// Per the paper (§3), an agent's state consists of a round counter in [0, T)
// and four boolean values: active, color, recruiting, inEvalPhase. The
// variable inEvalPhase is derived (round = T−1) and is not stored. The
// bookkeeping variable toRecruit ∈ [0, ½log N] is carried for analysis and
// invariant checking but, exactly as in the paper, the protocol never
// branches on it.
//
// The total state space is T · 2³ · (½log N + 1) plus the transient coin
// counter of Algorithm 4, i.e. Θ(T · log N) = ω(log² N) states for
// Tinner = ω(log N), matching Theorem 2's accounting. See the E13 resource
// audit in internal/experiment.
package agent

import (
	"fmt"

	"popstab/internal/wire"
)

// Color values. Colors live in {0,1}; ColorNone is a documentation alias for
// the zero value carried by uncolored (inactive) agents.
const (
	ColorNone uint8 = 0
)

// State is the full memory of one agent. It is a small value type; the
// population stores states contiguously and copies them freely.
type State struct {
	// Round is the agent's belief of the current round within the epoch,
	// in [0, T). Adversarially inserted agents may carry any value.
	Round uint32
	// Active reports whether the agent has been activated (leader or
	// recruited) in the current epoch.
	Active bool
	// Color is the agent's cluster color, meaningful only while Active.
	Color uint8
	// Recruiting reports whether the agent still seeks to recruit one
	// inactive agent in the current subphase.
	Recruiting bool
	// ToRecruit is the analysis-only counter of Algorithm 5: the number of
	// direct recruitments this agent remains responsible for. The protocol
	// never reads it; tests assert Lemma 5 with it.
	ToRecruit int8
}

// InEvalPhase reports whether the agent believes it is in the evaluation
// round, i.e. Round = T−1 (Algorithm 2).
func (s State) InEvalPhase(epochLen int) bool {
	return int(s.Round) == epochLen-1
}

// Message composes the outgoing message for the current round per
// Algorithm 2: (inEvalPhase, active, color, recruiting).
func (s State) Message(epochLen int) wire.Message {
	return wire.Message{
		InEvalPhase: s.InEvalPhase(epochLen),
		Active:      s.Active,
		Color:       s.Color,
		Recruiting:  s.Recruiting,
	}
}

// ResetEpochState clears the coloring state at the end of the evaluation
// phase (Algorithm 6 lines 12–14).
func (s *State) ResetEpochState() {
	s.Active = false
	s.Color = ColorNone
	s.Recruiting = false
	s.ToRecruit = 0
}

// AdvanceRound increments the round counter modulo the epoch length
// (Algorithm 1 lines 6, 9, 12).
func (s *State) AdvanceRound(epochLen int) {
	s.Round++
	if int(s.Round) >= epochLen {
		s.Round = 0
	}
}

// Validate reports whether the state is one a protocol-following agent can
// reach: round in range, color binary, recruiting only while active, and
// toRecruit within [0, maxDepth]. Adversarially inserted agents may violate
// any of these; the protocol must cope, and the population container uses
// Validate only for accounting.
func (s State) Validate(epochLen, maxDepth int) error {
	switch {
	case int(s.Round) >= epochLen:
		return fmt.Errorf("agent: round %d out of range [0,%d)", s.Round, epochLen)
	case s.Color > 1:
		return fmt.Errorf("agent: color %d not binary", s.Color)
	case s.Recruiting && !s.Active:
		return fmt.Errorf("agent: recruiting while inactive")
	case s.ToRecruit < 0 || int(s.ToRecruit) > maxDepth:
		return fmt.Errorf("agent: toRecruit %d out of range [0,%d]", s.ToRecruit, maxDepth)
	case !s.Active && s.Color != ColorNone:
		return fmt.Errorf("agent: inactive agent carries color %d", s.Color)
	}
	return nil
}

// String renders the state compactly for debugging.
func (s State) String() string {
	flag := func(b bool, r byte) byte {
		if b {
			return r
		}
		return '-'
	}
	return fmt.Sprintf("r%d %c%c%c d%d",
		s.Round, flag(s.Active, 'A'), '0'+s.Color, flag(s.Recruiting, 'R'), s.ToRecruit)
}
