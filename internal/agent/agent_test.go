package agent

import (
	"strings"
	"testing"
	"testing/quick"

	"popstab/internal/wire"
)

const testEpochLen = 144

func TestInEvalPhase(t *testing.T) {
	var s State
	for r := 0; r < testEpochLen; r++ {
		s.Round = uint32(r)
		want := r == testEpochLen-1
		if got := s.InEvalPhase(testEpochLen); got != want {
			t.Errorf("round %d: InEvalPhase = %v, want %v", r, got, want)
		}
	}
}

func TestMessageComposition(t *testing.T) {
	s := State{Round: testEpochLen - 1, Active: true, Color: 1, Recruiting: false}
	got := s.Message(testEpochLen)
	want := wire.Message{InEvalPhase: true, Active: true, Color: 1}
	if got != want {
		t.Errorf("Message = %+v, want %+v", got, want)
	}

	s = State{Round: 5, Active: true, Color: 0, Recruiting: true}
	got = s.Message(testEpochLen)
	want = wire.Message{Active: true, Color: 0, Recruiting: true}
	if got != want {
		t.Errorf("Message = %+v, want %+v", got, want)
	}
}

func TestResetEpochState(t *testing.T) {
	s := State{Round: 7, Active: true, Color: 1, Recruiting: true, ToRecruit: 3}
	s.ResetEpochState()
	if s.Active || s.Color != ColorNone || s.Recruiting || s.ToRecruit != 0 {
		t.Errorf("ResetEpochState left %+v", s)
	}
	if s.Round != 7 {
		t.Errorf("ResetEpochState must not touch Round, got %d", s.Round)
	}
}

func TestAdvanceRoundWraps(t *testing.T) {
	var s State
	for i := 0; i < 3*testEpochLen; i++ {
		want := uint32((i + 1) % testEpochLen)
		s.AdvanceRound(testEpochLen)
		if s.Round != want {
			t.Fatalf("after %d advances Round = %d, want %d", i+1, s.Round, want)
		}
	}
}

func TestAdvanceRoundClampsForeignState(t *testing.T) {
	// An adversarially inserted agent may carry Round >= epochLen; the
	// advance must still bring it back into range rather than run away.
	s := State{Round: uint32(testEpochLen + 50)}
	s.AdvanceRound(testEpochLen)
	if int(s.Round) >= testEpochLen {
		t.Errorf("AdvanceRound left out-of-range Round = %d", s.Round)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		s    State
		ok   bool
	}{
		{"zero", State{}, true},
		{"active colored", State{Active: true, Color: 1}, true},
		{"recruiting leader", State{Active: true, Recruiting: true, ToRecruit: 6}, true},
		{"round overflow", State{Round: testEpochLen}, false},
		{"color overflow", State{Active: true, Color: 2}, false},
		{"recruiting inactive", State{Recruiting: true}, false},
		{"negative depth", State{Active: true, ToRecruit: -1}, false},
		{"depth overflow", State{Active: true, ToRecruit: 7}, false},
		{"inactive colored", State{Color: 1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate(testEpochLen, 6)
			if (err == nil) != tc.ok {
				t.Errorf("Validate(%+v) = %v, want ok=%v", tc.s, err, tc.ok)
			}
		})
	}
}

func TestMessageMatchesFields(t *testing.T) {
	f := func(round uint16, active bool, color uint8, recruiting bool) bool {
		s := State{
			Round:      uint32(round) % testEpochLen,
			Active:     active,
			Color:      color & 1,
			Recruiting: recruiting,
		}
		m := s.Message(testEpochLen)
		return m.Active == s.Active &&
			m.Color == s.Color &&
			m.Recruiting == s.Recruiting &&
			m.InEvalPhase == (int(s.Round) == testEpochLen-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringFormat(t *testing.T) {
	s := State{Round: 12, Active: true, Color: 1, Recruiting: true, ToRecruit: 4}
	got := s.String()
	for _, want := range []string{"r12", "A", "1", "R", "d4"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q missing %q", got, want)
		}
	}
	inactive := State{Round: 3}
	if got := inactive.String(); !strings.Contains(got, "-") {
		t.Errorf("inactive String() = %q missing '-' flags", got)
	}
}
