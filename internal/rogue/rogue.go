// Package rogue implements the paper's §1.2 extension ("Adversarial
// insertions"): an adversary that inserts agents running arbitrary
// *malicious programs* rather than protocol-following agents with bad state.
//
// The paper observes that plain population stability is impossible in this
// model — a malicious agent can simply ignore everyone and replicate at
// every opportunity — but that the protocol "can be extended to achieve
// population stability even if the adversary is allowed to insert agents
// that execute arbitrary malicious programs, as long as there is a bound on
// how frequently malicious agents can replicate and an agent is able to
// detect when it encounters an agent whose program is different from its
// own", given the added capability for agents to remove agents they
// encounter.
//
// This package models exactly that setting:
//
//   - every agent carries a Program tag (honest or rogue);
//   - rogue agents ignore the protocol and replicate once every
//     ReplicateEvery rounds (the rate bound);
//   - honest agents run the unmodified population stability protocol, but
//     when matched with an agent of a different program they detect it with
//     probability DetectProb and remove it (treating the interaction as ⊥
//     for their own protocol step);
//   - when detection fails, the honest agent processes the rogue's garbage
//     message like any other (a zero message: inactive, not recruiting, not
//     in the evaluation phase).
//
// The containment condition is a branching-process balance: a rogue doubles
// every R rounds and survives each round with probability 1 − γ·h·DetectProb
// (h = honest fraction), so its per-round log growth is
// ln2/R + ln(1 − γ·h·DetectProb). Rogues die out when
// R > R* = ln2 / (−ln(1 − γ·h·DetectProb)) and take over otherwise;
// experiment E17 measures the threshold (R* ≈ 2.41 at γ = 1/4, detect = 1).
package rogue

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"popstab/internal/agent"
	"popstab/internal/match"
	"popstab/internal/params"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/protocol"
	"popstab/internal/sim"
	"popstab/internal/wire"
)

// Program identifies the code an agent runs. Detection compares Program
// values; the adversary cannot forge the honest Program (the paper assumes
// program difference is detectable on contact).
type Program uint8

// Programs.
const (
	// Honest runs the population stability protocol.
	Honest Program = iota
	// Rogue ignores the protocol and replicates at the bounded rate.
	Rogue
)

// Agent is one member of the extended system: protocol state plus the
// program tag and the rogue replication cooldown.
type Agent struct {
	// State is the protocol memory (meaningful for honest agents).
	State agent.State
	// Program tags the agent's code.
	Program Program
	// cooldown counts rounds until a rogue may replicate again.
	cooldown uint32
}

// Config assembles the extended simulation.
type Config struct {
	// Params parameterizes the honest protocol.
	Params params.Params
	// ReplicateEvery is the rogue replication period R ≥ 1 (the model's
	// rate bound: at most one replication per R rounds per rogue).
	ReplicateEvery int
	// DetectProb is the probability an honest agent recognizes a foreign
	// program on contact (the paper's assumption is 1; lower values model
	// imperfect detection).
	DetectProb float64
	// InitialRogues seeds the system with this many rogue agents.
	InitialRogues int
	// RoguesPerEpoch inserts this many additional rogues at every honest
	// epoch boundary (continuous infiltration).
	RoguesPerEpoch int
	// Scheduler defaults to the uniform γ-matching from Params.
	Scheduler match.Scheduler
	// Seed derives all randomness.
	Seed uint64
	// Workers sets the number of goroutines sharding the compose and step
	// phases: 0 means runtime.NumCPU(), 1 forces the serial path. As in
	// internal/sim, output is bit-identical across all worker counts.
	Workers int
}

// Stats accumulates extension-specific event counts. The engine increments
// them atomically (the step phase may run concurrently across shards);
// totals are deterministic across worker counts.
type Stats struct {
	// RogueKills counts rogues removed by honest agents.
	RogueKills uint64
	// RogueSplits counts rogue replications.
	RogueSplits uint64
	// FailedDetections counts contacts where a rogue went unnoticed
	// (detection never false-positives in this model, so honest agents are
	// never removed by the guard).
	FailedDetections uint64
}

// Engine drives the extended system. Not safe for concurrent use by
// callers; internally it shards the compose and step phases across
// cfg.Workers goroutines with per-agent counter-based streams, exactly as
// internal/sim does.
type Engine struct {
	cfg     Config
	proto   *protocol.Protocol
	agents  []Agent
	sched   match.Scheduler
	workers int

	// protoKey keys the counter-based per-agent streams: agent slot i of
	// global round r draws from prng stream (protoKey, r, i).
	protoKey uint64
	schedSrc *prng.Source

	pairing match.Pairing
	msgs    []uint8
	kill    []bool
	acts    []action

	round uint64
	stats Stats
}

// action is the per-agent fate within one extended round.
type action uint8

const (
	actKeep action = iota
	actDie
	actSplit
)

// New validates cfg and builds the engine with Params.N honest agents plus
// InitialRogues rogues.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("rogue: %w", err)
	}
	if cfg.ReplicateEvery < 1 {
		return nil, errors.New("rogue: ReplicateEvery must be >= 1")
	}
	if cfg.DetectProb < 0 || cfg.DetectProb > 1 {
		return nil, fmt.Errorf("rogue: DetectProb %v outside [0, 1]", cfg.DetectProb)
	}
	if cfg.InitialRogues < 0 || cfg.RoguesPerEpoch < 0 {
		return nil, errors.New("rogue: negative rogue counts")
	}
	if cfg.Scheduler == nil {
		u, err := match.NewUniform(cfg.Params.Gamma)
		if err != nil {
			return nil, fmt.Errorf("rogue: %w", err)
		}
		cfg.Scheduler = u
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("rogue: negative worker count %d", cfg.Workers)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	pr, err := protocol.New(cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("rogue: %w", err)
	}
	root := prng.New(cfg.Seed)
	e := &Engine{
		cfg:      cfg,
		proto:    pr,
		sched:    cfg.Scheduler,
		workers:  workers,
		protoKey: root.Split().Uint64(),
		schedSrc: root.Split(),
	}
	e.agents = make([]Agent, 0, cfg.Params.N+cfg.InitialRogues)
	for i := 0; i < cfg.Params.N; i++ {
		e.agents = append(e.agents, Agent{})
	}
	for i := 0; i < cfg.InitialRogues; i++ {
		e.agents = append(e.agents, e.newRogue())
	}
	return e, nil
}

// newRogue builds a fresh rogue agent with a full replication cooldown.
func (e *Engine) newRogue() Agent {
	return Agent{Program: Rogue, cooldown: uint32(e.cfg.ReplicateEvery)}
}

// Stats returns the accumulated extension counters.
func (e *Engine) Stats() Stats { return e.stats }

// Size reports the total number of agents.
func (e *Engine) Size() int { return len(e.agents) }

// Counts reports the honest and rogue populations.
func (e *Engine) Counts() (honest, rogue int) {
	for i := range e.agents {
		if e.agents[i].Program == Rogue {
			rogue++
		} else {
			honest++
		}
	}
	return honest, rogue
}

// GlobalRound reports the number of completed rounds.
func (e *Engine) GlobalRound() uint64 { return e.round }

// RunRound executes one round of the extended system.
func (e *Engine) RunRound() {
	// Continuous infiltration at epoch boundaries.
	t := uint64(e.cfg.Params.T)
	if e.round%t == 0 && e.cfg.RoguesPerEpoch > 0 {
		for i := 0; i < e.cfg.RoguesPerEpoch; i++ {
			e.agents = append(e.agents, e.newRogue())
		}
	}

	n := len(e.agents)
	e.sched.Sample(n, e.schedSrc, &e.pairing)

	if cap(e.msgs) < n {
		c := n + n/2
		e.msgs = make([]uint8, c)
		e.kill = make([]bool, c)
		e.acts = make([]action, c)
	}
	e.msgs = e.msgs[:n]
	e.kill = e.kill[:n]
	e.acts = e.acts[:n]

	// Compose and step via internal/sim's shared shard machinery: a
	// barrier separates the phases because steps read neighbors’ composed
	// messages, and each honest agent draws its detection coin and protocol
	// coins from the counter-based stream (protoKey, round, slot), making
	// the outcome independent of shard boundaries. Cross-shard writes are
	// confined to kill[j], which only the unique matched neighbor of j
	// writes and only the serial apply pass reads.
	sim.ShardComposeStep(n, e.workers, e.composeRange, func(lo, hi int) {
		var src prng.Source
		e.stepRange(lo, hi, &src)
	})

	e.apply()
	e.round++
}

// composeRange composes outgoing messages and clears fate scratch for
// agents [lo, hi).
func (e *Engine) composeRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		e.kill[i] = false
		e.acts[i] = actKeep
		if e.agents[i].Program == Honest {
			e.msgs[i] = e.proto.Compose(&e.agents[i].State)
		} else {
			// Rogues send garbage; a zero byte decodes to an inactive,
			// non-recruiting, non-evaluating agent.
			e.msgs[i] = 0
		}
	}
}

// stepRange executes one round for agents [lo, hi), reseeding src per
// honest agent (rogues consume no randomness).
func (e *Engine) stepRange(lo, hi int, src *prng.Source) {
	for i := lo; i < hi; i++ {
		a := &e.agents[i]
		j := e.pairing.Nbr[i]
		hasNbr := j != match.Unmatched

		if a.Program == Rogue {
			// The malicious program: ignore everyone, replicate as often
			// as the rate bound allows.
			if a.cooldown > 0 {
				a.cooldown--
			}
			if a.cooldown == 0 {
				e.acts[i] = actSplit
				a.cooldown = uint32(e.cfg.ReplicateEvery)
				atomic.AddUint64(&e.stats.RogueSplits, 1)
			}
			continue
		}

		src.SeedCounter(e.protoKey, e.round, uint64(i))

		// Honest agent: detect and remove foreign programs. Program tags
		// are immutable within a round, so reading the neighbor’s tag
		// races with nothing; kill[j] has a unique writer (j’s matched
		// neighbor).
		if hasNbr && e.agents[j].Program != a.Program {
			if src.Prob(e.cfg.DetectProb) {
				e.kill[j] = true
				atomic.AddUint64(&e.stats.RogueKills, 1)
				// The interaction is consumed by the removal: the honest
				// agent’s own step sees no neighbor.
				hasNbr = false
			} else {
				atomic.AddUint64(&e.stats.FailedDetections, 1)
			}
		}
		var msg wire.Message
		if hasNbr {
			msg = e.proto.Decode(e.msgs[j])
		}
		switch e.proto.Step(&a.State, msg, hasNbr, src) {
		case population.ActDie:
			e.acts[i] = actDie
		case population.ActSplit:
			e.acts[i] = actSplit
		}
	}
}

// apply executes kills, deaths and splits in one compaction pass. Removal by
// an honest agent overrides a same-round split decision (the victim is gone
// before it can divide).
func (e *Engine) apply() {
	w := 0
	var births []Agent
	for i := range e.agents {
		if e.kill[i] || e.acts[i] == actDie {
			continue
		}
		if e.acts[i] == actSplit {
			births = append(births, e.agents[i])
		}
		e.agents[w] = e.agents[i]
		w++
	}
	e.agents = append(e.agents[:w], births...)
}

// RunEpoch runs T rounds (one honest-protocol epoch).
func (e *Engine) RunEpoch() {
	for i := 0; i < e.cfg.Params.T; i++ {
		e.RunRound()
	}
}
