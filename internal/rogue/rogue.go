// Package rogue implements the paper's §1.2 extension ("Adversarial
// insertions"): an adversary that inserts agents running arbitrary
// *malicious programs* rather than protocol-following agents with bad state.
//
// The paper observes that plain population stability is impossible in this
// model — a malicious agent can simply ignore everyone and replicate at
// every opportunity — but that the protocol "can be extended to achieve
// population stability even if the adversary is allowed to insert agents
// that execute arbitrary malicious programs, as long as there is a bound on
// how frequently malicious agents can replicate and an agent is able to
// detect when it encounters an agent whose program is different from its
// own", given the added capability for agents to remove agents they
// encounter.
//
// This package models exactly that setting:
//
//   - every agent carries a Program tag (honest or rogue);
//   - rogue agents ignore the protocol and replicate once every
//     ReplicateEvery rounds (the rate bound);
//   - honest agents run the unmodified population stability protocol, but
//     when matched with an agent of a different program they detect it with
//     probability DetectProb and remove it (treating the interaction as ⊥
//     for their own protocol step);
//   - when detection fails, the honest agent processes the rogue's garbage
//     message like any other (a zero message: inactive, not recruiting, not
//     in the evaluation phase).
//
// Since the multi-layer unification (DESIGN.md §5) the package is no longer
// a forked engine: Overlay wraps any sim.Stepper as a sim.ExtendedStepper —
// the program tags and replication cooldowns live in a side-array kept
// aligned through population.Tracker, detection kills travel through the
// engine's neighbor-removal channel, and infiltration rides the StartRound
// hook. Engine is a thin constructor over the unified sim.Engine, so the
// extension inherits Workers sharding, counter-based per-agent randomness,
// RoundReport/EpochReport, adversary support, and arbitrary communication
// models (rogues on a spatial torus: Config.Matcher) for free.
//
// The containment condition is a branching-process balance: a rogue doubles
// every R rounds and survives each round with probability 1 − γ·h·DetectProb
// (h = honest fraction), so its per-round log growth is
// ln2/R + ln(1 − γ·h·DetectProb). Rogues die out when
// R > R* = ln2 / (−ln(1 − γ·h·DetectProb)) and take over otherwise;
// experiment E17 measures the threshold (R* ≈ 2.41 at γ = 1/4, detect = 1).
package rogue

import (
	"errors"
	"fmt"
	"sync/atomic"

	"popstab/internal/adversary"
	"popstab/internal/agent"
	"popstab/internal/match"
	"popstab/internal/params"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/protocol"
	"popstab/internal/sim"
	"popstab/internal/wire"
)

// Program identifies the code an agent runs. Detection compares Program
// values; the adversary cannot forge the honest Program (the paper assumes
// program difference is detectable on contact).
type Program uint8

// Programs.
const (
	// Honest runs the population stability protocol.
	Honest Program = iota
	// Rogue ignores the protocol and replicates at the bounded rate.
	Rogue
)

// meta is one agent's extension state: the program tag and the rogue
// replication cooldown. It lives in the Overlay's side-array, aligned with
// the population through the Tracker hooks.
type meta struct {
	// prog tags the agent's code.
	prog Program
	// cooldown counts rounds until a rogue may replicate again.
	cooldown uint32
}

// Stats accumulates extension-specific event counts. The overlay increments
// them atomically (the step phase may run concurrently across shards);
// totals are deterministic across worker counts.
type Stats struct {
	// RogueKills counts rogues removed by honest agents.
	RogueKills uint64
	// RogueSplits counts rogue replications.
	RogueSplits uint64
	// FailedDetections counts contacts where a rogue went unnoticed
	// (detection never false-positives in this model, so honest agents are
	// never removed by the guard).
	FailedDetections uint64
}

// Overlay wraps an inner per-agent program with the malicious-program
// semantics, turning the forked engine of the pre-unification design into a
// plain sim.ExtendedStepper. It also implements population.Tracker (the
// program side-array follows splits, kills, adversarial alterations, and
// forced resizes) and sim.RoundStarter (continuous infiltration at epoch
// boundaries). Attach it to the engine's population before the first round;
// NewEngine does all of this wiring.
type Overlay struct {
	inner          sim.Stepper
	epochLen       int
	replicateEvery uint32
	detectProb     float64
	roguesPerEpoch int

	meta []meta
	// spare is the displaced double-buffer of the sharded AppliedPlan
	// scatter, reused across rounds.
	spare []meta
	stats Stats

	// positions and clusterPlace implement clustered infiltration (set by
	// NewEngine when Config.Cluster is given): every InsertRogue queues a
	// clusterPlace position on the matcher's side-array instead of taking
	// the oblivious uniform placement. Both are used only from serial
	// phases (construction and StartRound). clusterSrc is the private
	// placement stream clusterPlace consumes, kept addressable so
	// snapshots can capture and reinstate it.
	positions    *population.Positions
	clusterPlace func() population.Point
	clusterSrc   *prng.Source
	clusterSpec  *ClusterSpec
}

var (
	_ sim.ExtendedStepper    = (*Overlay)(nil)
	_ sim.RoundStarter       = (*Overlay)(nil)
	_ population.Tracker     = (*Overlay)(nil)
	_ population.PlanApplier = (*Overlay)(nil)
)

// NewOverlay validates the extension parameters and wraps inner.
func NewOverlay(inner sim.Stepper, replicateEvery int, detectProb float64, roguesPerEpoch int) (*Overlay, error) {
	if inner == nil {
		return nil, errors.New("rogue: nil inner program")
	}
	if replicateEvery < 1 {
		return nil, errors.New("rogue: ReplicateEvery must be >= 1")
	}
	if detectProb < 0 || detectProb > 1 {
		return nil, fmt.Errorf("rogue: DetectProb %v outside [0, 1]", detectProb)
	}
	if roguesPerEpoch < 0 {
		return nil, errors.New("rogue: negative RoguesPerEpoch")
	}
	return &Overlay{
		inner:          inner,
		epochLen:       inner.EpochLen(),
		replicateEvery: uint32(replicateEvery),
		detectProb:     detectProb,
		roguesPerEpoch: roguesPerEpoch,
	}, nil
}

// Stats returns the accumulated extension counters.
func (o *Overlay) Stats() Stats { return o.stats }

// Counts reports the honest and rogue populations.
func (o *Overlay) Counts() (honest, rogue int) {
	for i := range o.meta {
		if o.meta[i].prog == Rogue {
			rogue++
		} else {
			honest++
		}
	}
	return honest, rogue
}

// InsertRogue appends a fresh rogue agent (zero protocol state, full
// replication cooldown) to the population, at the clustered patch position
// when clustered infiltration is configured. The overlay must already be
// attached to pop.
func (o *Overlay) InsertRogue(pop *population.Population) {
	if o.clusterPlace != nil {
		o.positions.QueuePlacement(o.clusterPlace())
	}
	i := pop.Insert(agent.State{})
	o.meta[i] = meta{prog: Rogue, cooldown: o.replicateEvery}
}

// Len reports the side-array's length; population.CheckAligned uses it to
// validate restored snapshots against the agent count.
func (o *Overlay) Len() int { return len(o.meta) }

// EpochLen implements sim.ExtendedStepper with the inner program's epoch.
func (o *Overlay) EpochLen() int { return o.epochLen }

// Decode implements sim.ExtendedStepper.
func (o *Overlay) Decode(b uint8) wire.Message { return o.inner.Decode(b) }

// ComposeAt implements sim.ExtendedStepper: honest agents compose the inner
// protocol's message; rogues send garbage (a zero byte decodes to an
// inactive, non-recruiting, non-evaluating agent).
func (o *Overlay) ComposeAt(i int, s *agent.State) uint8 {
	if o.meta[i].prog != Honest {
		return 0
	}
	return o.inner.Compose(s)
}

// StepAt implements sim.ExtendedStepper.
//
// Rogues run the malicious program — ignore everyone, replicate as often as
// the rate bound allows — and consume no randomness. Honest agents first
// run the detection guard: on contact with a foreign program they draw the
// detection coin from their per-agent stream and, on success, remove the
// neighbor through the kill channel, treating the interaction as ⊥ for
// their own protocol step. Program tags are immutable within a round, so
// reading the neighbor's tag races with nothing; the neighbor's cooldown is
// written only by its owning shard and never read here.
func (o *Overlay) StepAt(i, j int, s *agent.State, nbr wire.Message, hasNbr bool, src *prng.Source) (population.Action, bool) {
	a := &o.meta[i]
	if a.prog == Rogue {
		if a.cooldown > 0 {
			a.cooldown--
		}
		if a.cooldown == 0 {
			a.cooldown = o.replicateEvery
			atomic.AddUint64(&o.stats.RogueSplits, 1)
			return population.ActSplit, false
		}
		return population.ActKeep, false
	}

	kill := false
	if hasNbr && o.meta[j].prog != a.prog {
		if src.Prob(o.detectProb) {
			kill = true
			atomic.AddUint64(&o.stats.RogueKills, 1)
			// The interaction is consumed by the removal: the honest
			// agent's own step sees no neighbor.
			hasNbr = false
			nbr = wire.Message{}
		} else {
			atomic.AddUint64(&o.stats.FailedDetections, 1)
		}
	}
	return o.inner.Step(s, nbr, hasNbr, src), kill
}

// StartRound implements sim.RoundStarter: continuous infiltration inserts
// RoguesPerEpoch fresh rogues at every epoch boundary, before the
// adversary's turn and the matching.
func (o *Overlay) StartRound(pop *population.Population, round uint64) {
	if o.roguesPerEpoch == 0 || round%uint64(o.epochLen) != 0 {
		return
	}
	for i := 0; i < o.roguesPerEpoch; i++ {
		o.InsertRogue(pop)
	}
}

// Attached implements population.Tracker: the initial population is honest.
func (o *Overlay) Attached(n int) {
	o.meta = make([]meta, n, n+n/2)
}

// Inserted implements population.Tracker: insertions default to the honest
// program (the base model's adversary inserts protocol-following agents
// with adversarial state; InsertRogue retags its own insertions).
func (o *Overlay) Inserted(i int) {
	if i != len(o.meta) {
		panic("rogue: Overlay out of sync with population on insert")
	}
	o.meta = append(o.meta, meta{})
}

// DeletedSwap implements population.Tracker.
func (o *Overlay) DeletedSwap(i, last int) {
	o.meta[i] = o.meta[last]
	o.meta = o.meta[:last]
}

// Applied implements population.Tracker: it replays Apply's stable
// compaction over the program side-array; daughters inherit their parent's
// post-step tag and cooldown (a splitting rogue's cooldown was re-armed in
// StepAt, so both copies wait a full period).
func (o *Overlay) Applied(actions []population.Action) {
	o.meta = population.ReplayApply(o.meta, actions, func(parent meta) meta { return parent })
}

// AppliedPlan implements population.PlanApplier: the sharded form of Applied.
// Daughter metas are a pure copy of the parent (no randomness), so the plain
// concurrent scatter applies directly.
func (o *Overlay) AppliedPlan(plan *population.ApplyPlan) {
	o.meta, o.spare = population.ApplyPlanned(plan, o.meta, o.spare, func(parent meta) meta { return parent })
}

// EncodeState implements sim.StateCodec: an identity fingerprint (the
// extension parameters and the inner program's type — two overlays with
// different replication rates or detection probabilities are different
// systems and must not exchange snapshots), the program side-array (tags
// and cooldowns), the accumulated extension counters, the
// clustered-placement stream when configured, and — by delegation — the
// inner protocol's state. Serial phases only.
func (o *Overlay) EncodeState(e *wire.Enc) {
	e.String(o.fingerprint())
	e.U64(uint64(len(o.meta)))
	for i := range o.meta {
		e.U8(uint8(o.meta[i].prog))
		e.U32(o.meta[i].cooldown)
	}
	e.U64(o.stats.RogueKills)
	e.U64(o.stats.RogueSplits)
	e.U64(o.stats.FailedDetections)
	e.Bool(o.clusterSrc != nil)
	if o.clusterSrc != nil {
		for _, w := range o.clusterSrc.State() {
			e.U64(w)
		}
	}
	if c, ok := o.inner.(sim.StateCodec); ok {
		c.EncodeState(e)
	}
}

// fingerprint renders the overlay's configuration identity for the
// snapshot check. InitialRogues is deliberately absent: it shapes only the
// construction-time state, which the snapshot overwrites wholesale.
func (o *Overlay) fingerprint() string {
	cluster := "none"
	if o.clusterSpec != nil {
		cluster = fmt.Sprintf("(%g,%g,r=%g)", o.clusterSpec.Center.X, o.clusterSpec.Center.Y, o.clusterSpec.Radius)
	}
	return fmt.Sprintf("rogue(R=%d,detect=%g,perEpoch=%d,cluster=%s,inner=%T)",
		o.replicateEvery, o.detectProb, o.roguesPerEpoch, cluster, o.inner)
}

// DecodeState implements sim.StateCodec on an overlay built from the same
// configuration.
func (o *Overlay) DecodeState(d *wire.Dec) error {
	if fp := d.String(); d.Err() == nil && fp != o.fingerprint() {
		return fmt.Errorf("rogue: snapshot overlay %q, engine has %q", fp, o.fingerprint())
	}
	n := d.Count(5, "rogue meta") // 5 payload bytes per meta record
	if err := d.Err(); err != nil {
		return err
	}
	metas := make([]meta, 0, n+n/2)
	for i := 0; i < n; i++ {
		metas = append(metas, meta{prog: Program(d.U8()), cooldown: d.U32()})
	}
	stats := Stats{
		RogueKills:       d.U64(),
		RogueSplits:      d.U64(),
		FailedDetections: d.U64(),
	}
	clustered := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if clustered != (o.clusterSrc != nil) {
		return fmt.Errorf("rogue: snapshot clustering (%v) does not match configuration", clustered)
	}
	if clustered {
		var st [4]uint64
		for i := range st {
			st[i] = d.U64()
		}
		if err := d.Err(); err != nil {
			return err
		}
		o.clusterSrc.SetState(st)
	}
	o.meta = metas
	o.stats = stats
	if c, ok := o.inner.(sim.StateCodec); ok {
		return c.DecodeState(d)
	}
	return nil
}

// ClusterSpec is the clustered-infiltration patch: rogues appear within
// Radius of Center instead of at oblivious uniform positions.
type ClusterSpec struct {
	// Center is the patch center.
	Center population.Point
	// Radius is the patch radius (arc half-length on 1-D topologies).
	Radius float64
}

// Config assembles the extended simulation.
type Config struct {
	// Params parameterizes the honest protocol.
	Params params.Params
	// ReplicateEvery is the rogue replication period R ≥ 1 (the model's
	// rate bound: at most one replication per R rounds per rogue).
	ReplicateEvery int
	// DetectProb is the probability an honest agent recognizes a foreign
	// program on contact (the paper's assumption is 1; lower values model
	// imperfect detection).
	DetectProb float64
	// InitialRogues seeds the system with this many rogue agents.
	InitialRogues int
	// RoguesPerEpoch inserts this many additional rogues at every honest
	// epoch boundary (continuous infiltration).
	RoguesPerEpoch int
	// Scheduler defaults to the uniform γ-matching from Params. At most one
	// of Scheduler and Matcher may be set.
	Scheduler match.Scheduler
	// Matcher overrides Scheduler with a population-state-aware
	// communication model — rogues on the spatial torus compose via
	// match.NewTorus.
	Matcher match.Matcher
	// Cluster, when non-nil, places every rogue insertion — the initial
	// cohort and the per-epoch infiltration — within Cluster.Radius of
	// Cluster.Center under the spatial matcher's geometry, through the
	// population.Positions placement seam: the adversary chooses where its
	// agents appear. Requires a spatial Matcher (match.Space); the
	// patch-attack seeding of experiment A9.
	Cluster *ClusterSpec
	// Adversary additionally attacks the protocol state every round within
	// budget K (nil = none): the state-adversary of the base model composed
	// with the program-adversary of this extension.
	Adversary adversary.Adversary
	// K is the adversary's per-round alteration budget.
	K int
	// Seed derives all randomness.
	Seed uint64
	// InitialSize overrides the starting honest population (default
	// Params.N); InitialRogues are added on top.
	InitialSize int
	// Workers sets the number of goroutines sharding the compose and step
	// phases: 0 means runtime.NumCPU(), 1 forces the serial path. As in
	// internal/sim, output is bit-identical across all worker counts.
	Workers int
}

// Engine drives the extended system: a thin wrapper over the unified
// sim.Engine with the Overlay installed. All round, epoch, report, census,
// and sizing machinery is the engine's own; this type only adds the
// extension accessors. Not safe for concurrent use by callers.
type Engine struct {
	*sim.Engine
	overlay *Overlay
}

// New validates cfg and builds the engine with Params.N honest agents plus
// InitialRogues rogues, running the paper protocol as the honest program.
func New(cfg Config) (*Engine, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("rogue: %w", err)
	}
	pr, err := protocol.New(cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("rogue: %w", err)
	}
	return NewEngine(cfg, pr)
}

// NewEngine builds the extended engine over an arbitrary honest program
// (New specializes it to the paper protocol; the popstab facade passes
// baselines through here too).
func NewEngine(cfg Config, inner sim.Stepper) (*Engine, error) {
	overlay, err := NewOverlay(inner, cfg.ReplicateEvery, cfg.DetectProb, cfg.RoguesPerEpoch)
	if err != nil {
		return nil, err
	}
	if cfg.InitialRogues < 0 {
		return nil, errors.New("rogue: negative rogue counts")
	}
	size := cfg.InitialSize
	if size == 0 {
		size = cfg.Params.N
	}
	if size < 0 {
		return nil, fmt.Errorf("rogue: negative initial size %d", size)
	}
	pop := population.New(size)
	pop.Attach(overlay)
	for i := 0; i < cfg.InitialRogues; i++ {
		overlay.InsertRogue(pop)
	}
	eng, err := sim.NewFromPopulation(sim.Config{
		Params:    cfg.Params,
		Extended:  overlay,
		Scheduler: cfg.Scheduler,
		Matcher:   cfg.Matcher,
		Adversary: cfg.Adversary,
		K:         cfg.K,
		Seed:      cfg.Seed,
		Workers:   cfg.Workers,
	}, pop)
	if err != nil {
		return nil, fmt.Errorf("rogue: %w", err)
	}
	if cfg.Cluster != nil {
		if err := installCluster(cfg, overlay); err != nil {
			return nil, err
		}
	}
	return &Engine{Engine: eng, overlay: overlay}, nil
}

// installCluster wires clustered infiltration: a private placement stream
// (domain-separated from the engine's seed, so clustering perturbs no
// engine randomness), re-placement of the initial cohort — which was
// inserted before the matcher bound its position side-array and therefore
// drew oblivious uniform positions — and the patch placer for all future
// InsertRogue calls.
func installCluster(cfg Config, overlay *Overlay) error {
	sp, ok := cfg.Matcher.(match.Space)
	if !ok {
		return errors.New("rogue: Cluster requires a spatial Matcher")
	}
	if cfg.Cluster.Radius < 0 {
		return fmt.Errorf("rogue: negative cluster radius %v", cfg.Cluster.Radius)
	}
	src := prng.New(cfg.Seed ^ clusterSeedSalt)
	ps := sp.Positions()
	spec := *cfg.Cluster
	overlay.positions = ps
	overlay.clusterSrc = src
	overlay.clusterSpec = &spec
	overlay.clusterPlace = func() population.Point {
		return sp.PatchPoint(spec.Center, spec.Radius, src)
	}
	for i := range overlay.meta {
		if overlay.meta[i].prog == Rogue {
			ps.SetAt(i, overlay.clusterPlace())
		}
	}
	return nil
}

// clusterSeedSalt domain-separates the cluster placement stream from the
// engine root stream derived from the same Config.Seed.
const clusterSeedSalt = 0x9d5c_7a13_c0ff_ee01

// Overlay exposes the extension program (tags, cooldowns, stats).
func (e *Engine) Overlay() *Overlay { return e.overlay }

// Stats returns the accumulated extension counters.
func (e *Engine) Stats() Stats { return e.overlay.Stats() }

// Counts reports the honest and rogue populations.
func (e *Engine) Counts() (honest, rogue int) { return e.overlay.Counts() }
