package rogue

import (
	"runtime"
	"testing"

	"popstab/internal/adversary"
	"popstab/internal/match"
	"popstab/internal/params"
	"popstab/internal/population"
)

func fastParams(t testing.TB) params.Params {
	t.Helper()
	p, err := params.Derive(4096, params.WithTinner(24))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	p := fastParams(t)
	cases := []Config{
		{Params: params.Params{}, ReplicateEvery: 4},
		{Params: p, ReplicateEvery: 0},
		{Params: p, ReplicateEvery: 4, DetectProb: 1.5},
		{Params: p, ReplicateEvery: 4, DetectProb: -0.1},
		{Params: p, ReplicateEvery: 4, InitialRogues: -1},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestInitialComposition(t *testing.T) {
	p := fastParams(t)
	e, err := New(Config{Params: p, ReplicateEvery: 4, DetectProb: 1, InitialRogues: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	honest, rogues := e.Counts()
	if honest != p.N || rogues != 32 {
		t.Fatalf("composition %d/%d", honest, rogues)
	}
	if e.Size() != p.N+32 {
		t.Fatalf("size %d", e.Size())
	}
}

// TestUnboundedRogueTakesOver reproduces the paper's impossibility argument:
// with no replication-rate bound (R = 1) and no detection, "malicious agents
// would quickly replicate themselves out of control".
func TestUnboundedRogueTakesOver(t *testing.T) {
	p := fastParams(t)
	e, err := New(Config{Params: p, ReplicateEvery: 1, DetectProb: 0, InitialRogues: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12 && e.Size() < 4*p.N; i++ {
		e.RunRound()
	}
	_, rogues := e.Counts()
	if rogues < 3*p.N {
		t.Errorf("unbounded rogues reached only %d after doubling rounds", rogues)
	}
}

// TestContainmentWithDetection is the extension's positive claim: with the
// rate bound R > 1/(γ·h) and exact detection, an initial rogue cohort is
// culled and the honest population stays stable.
func TestContainmentWithDetection(t *testing.T) {
	p := fastParams(t)
	// γ = 0.25, h ≈ 1 ⇒ cull rate ≈ 0.25/round; R = 16 replicates at
	// 0.0625/round — well under the cull rate.
	e, err := New(Config{Params: p, ReplicateEvery: 16, DetectProb: 1, InitialRogues: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for ep := 0; ep < 3; ep++ {
		e.RunEpoch()
	}
	honest, rogues := e.Counts()
	if rogues > 8 {
		t.Errorf("rogues not contained: %d remain", rogues)
	}
	if honest < p.N/2 || honest > 2*p.N {
		t.Errorf("honest population destabilized: %d", honest)
	}
	if e.Stats().RogueKills == 0 {
		t.Error("no kills recorded")
	}
}

// TestFastRogueWinsDespiteDetection: below the threshold (R too small) the
// rogue birth rate outruns the cull rate even with perfect detection.
func TestFastRogueWinsDespiteDetection(t *testing.T) {
	p := fastParams(t)
	// R = 2 ⇒ growth 0.5/round vs cull ≈ γ = 0.25/round.
	e, err := New(Config{Params: p, ReplicateEvery: 2, DetectProb: 1, InitialRogues: 64, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	start := 64
	for i := 0; i < 60 && e.Size() < 4*p.N; i++ {
		e.RunRound()
	}
	_, rogues := e.Counts()
	if rogues <= start*4 {
		t.Errorf("fast rogues did not grow: %d", rogues)
	}
}

// TestContinuousInfiltrationSteadyState: rogues inserted every epoch are
// culled continuously; the rogue population stays near insertion/cull
// balance rather than accumulating.
func TestContinuousInfiltrationSteadyState(t *testing.T) {
	p := fastParams(t)
	e, err := New(Config{Params: p, ReplicateEvery: 16, DetectProb: 1,
		RoguesPerEpoch: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	maxRogues := 0
	for ep := 0; ep < 5; ep++ {
		e.RunEpoch()
		if _, r := e.Counts(); r > maxRogues {
			maxRogues = r
		}
	}
	// 8 inserted per epoch, lifetime ≈ 1/γ = 4 rounds (plus replication
	// slack): steady state well below one epoch's insertion.
	if maxRogues > 64 {
		t.Errorf("infiltration accumulated to %d rogues", maxRogues)
	}
	honest, _ := e.Counts()
	if honest < p.N/2 || honest > 2*p.N {
		t.Errorf("honest population destabilized: %d", honest)
	}
}

// TestImperfectDetectionShiftsThreshold: halving DetectProb halves the cull
// rate, so a replication rate contained at p=1 can win at low p.
func TestImperfectDetectionShiftsThreshold(t *testing.T) {
	p := fastParams(t)
	const r = 8 // growth 0.125/round; cull at DetectProb=1 is ≈0.25, at 0.1 is ≈0.025
	contained := func(detect float64) bool {
		e, err := New(Config{Params: p, ReplicateEvery: r, DetectProb: detect,
			InitialRogues: 64, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2*p.T && e.Size() < 3*p.N; i++ {
			e.RunRound()
		}
		_, rogues := e.Counts()
		return rogues < 64
	}
	if !contained(1.0) {
		t.Error("R=8 not contained at perfect detection")
	}
	if contained(0.1) {
		t.Error("R=8 contained even at 10% detection")
	}
}

// TestHonestProtocolUnperturbed: with zero rogues the extension engine must
// leave the honest dynamics stable (sanity: the guard path is inert).
func TestHonestProtocolUnperturbed(t *testing.T) {
	p := fastParams(t)
	e, err := New(Config{Params: p, ReplicateEvery: 8, DetectProb: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for ep := 0; ep < 5; ep++ {
		e.RunEpoch()
	}
	honest, rogues := e.Counts()
	if rogues != 0 {
		t.Errorf("rogues appeared from nowhere: %d", rogues)
	}
	if honest < p.N*3/4 || honest > p.N*5/4 {
		t.Errorf("honest population drifted to %d", honest)
	}
	if e.Stats().RogueKills != 0 || e.Stats().FailedDetections != 0 {
		t.Errorf("spurious guard events: %+v", e.Stats())
	}
}

func BenchmarkRoundWithRogues(b *testing.B) {
	p, err := params.Derive(4096, params.WithTinner(24))
	if err != nil {
		b.Fatal(err)
	}
	e, err := New(Config{Params: p, ReplicateEvery: 16, DetectProb: 1, InitialRogues: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRound()
	}
}

func TestGlobalRoundAdvances(t *testing.T) {
	p := fastParams(t)
	e, err := New(Config{Params: p, ReplicateEvery: 8, DetectProb: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	e.RunEpoch()
	if e.GlobalRound() != uint64(p.T) {
		t.Errorf("global round %d", e.GlobalRound())
	}
}

// TestParallelDeterminism asserts the extended engine's trajectory
// (population size, honest/rogue counts, stats) is bit-identical across
// Workers ∈ {1, 2, NumCPU}, mirroring internal/sim's golden determinism
// guarantee — now inherited rather than re-implemented, since the rogue
// path is a Stepper wrapper over the unified engine.
func TestParallelDeterminism(t *testing.T) {
	run := func(workers int) ([]int, Stats) {
		e, err := New(Config{
			Params:         fastParams(t),
			ReplicateEvery: 4,
			DetectProb:     0.8,
			InitialRogues:  16,
			RoguesPerEpoch: 2,
			Seed:           77,
			Workers:        workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sizes []int
		for i := 0; i < 200; i++ {
			e.RunRound()
			h, r := e.Counts()
			sizes = append(sizes, e.Size(), h, r)
		}
		return sizes, e.Stats()
	}
	wantSizes, wantStats := run(1)
	for _, w := range []int{2, 8, runtime.NumCPU()} {
		gotSizes, gotStats := run(w)
		for i := range wantSizes {
			if gotSizes[i] != wantSizes[i] {
				t.Fatalf("workers=%d: trajectory diverged at sample %d: %d != %d",
					w, i, gotSizes[i], wantSizes[i])
			}
		}
		if gotStats != wantStats {
			t.Fatalf("workers=%d: stats diverged: %+v != %+v", w, gotStats, wantStats)
		}
	}
}

// TestGoldenTrajectory pins the exact trajectory of a fixed rogue
// configuration, the extension twin of internal/sim's golden test: any
// unintended semantic change to the overlay, the kill channel, the
// infiltration hook, or the engine's stream derivation changes this number.
// If a change is INTENDED, rerun with -v and update the constant.
func TestGoldenTrajectory(t *testing.T) {
	e, err := New(Config{
		Params:         fastParams(t),
		ReplicateEvery: 6,
		DetectProb:     0.9,
		InitialRogues:  32,
		RoguesPerEpoch: 4,
		Seed:           424242,
		Workers:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var checksum uint64
	for i := 0; i < 300; i++ {
		rep := e.RunRound()
		h, r := e.Counts()
		checksum = checksum*31 + uint64(rep.SizeAfter)
		checksum = checksum*31 + uint64(h)*2 + uint64(r)*3 + uint64(rep.Kills)*5
	}
	const want = uint64(17192188877167158431)
	if checksum != want {
		t.Errorf("trajectory checksum changed: got %d, want %d\n"+
			"(if this change is intentional, update the golden value)", checksum, want)
	}
}

// TestKillsReportedPerRound asserts detection kills surface in the unified
// engine's RoundReport and agree with the overlay's atomic counters.
func TestKillsReportedPerRound(t *testing.T) {
	p := fastParams(t)
	e, err := New(Config{Params: p, ReplicateEvery: 16, DetectProb: 1,
		InitialRogues: 64, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	totalKills := 0
	for i := 0; i < 40; i++ {
		rep := e.RunRound()
		if rep.Kills > rep.Deaths {
			t.Fatalf("round %d: kills %d exceed deaths %d", i, rep.Kills, rep.Deaths)
		}
		totalKills += rep.Kills
	}
	if got := e.Stats().RogueKills; got != uint64(totalKills) {
		t.Errorf("stats kills %d != summed report kills %d", got, totalKills)
	}
	if totalKills == 0 {
		t.Error("no kills recorded against 64 rogues at perfect detection")
	}
}

// TestRogueWithStateAdversary composes the program-adversary (rogue
// infiltration) with the base model's state-adversary — unreachable before
// the unification — and asserts budget accounting and containment both
// hold.
func TestRogueWithStateAdversary(t *testing.T) {
	p := fastParams(t)
	paced := adversary.NewPaced(adversary.PerEpoch(p.T, p.MaxTolerableK(), 1),
		adversary.NewGreedy())
	e, err := New(Config{
		Params: p, ReplicateEvery: 16, DetectProb: 1, InitialRogues: 32,
		Adversary: paced, K: 1, Seed: 13, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	altered := 0
	for ep := 0; ep < 3; ep++ {
		rep := e.RunEpoch()
		altered += rep.AdvInserted + rep.AdvDeleted
	}
	if altered == 0 {
		t.Error("state adversary never acted on the rogue engine")
	}
	honest, rogues := e.Counts()
	if rogues > 8 {
		t.Errorf("rogues not contained under composed adversary: %d remain", rogues)
	}
	if honest < p.N/2 || honest > 2*p.N {
		t.Errorf("honest population destabilized: %d", honest)
	}
}

// TestRogueOnTorus runs the malicious-program extension under geometric
// communication — the cross-product scenario the paper leaves open. Under
// local matching a rogue patch protects its interior (rogues matched with
// rogues trigger no detection), so containment needs a visibly longer
// replication period than the well-mixed threshold R* ≈ 2.41; here we just
// pin that the combination runs, stays deterministic across worker counts,
// and that kills still happen at the patch boundary.
func TestRogueOnTorus(t *testing.T) {
	p := fastParams(t)
	run := func(workers int) ([]int, Stats) {
		tor, err := match.NewTorus(1.0 / 64)
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(Config{
			Params: p, ReplicateEvery: 8, DetectProb: 1, InitialRogues: 64,
			Matcher: tor, Seed: 21, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sizes []int
		for i := 0; i < 150 && e.Size() < 4*p.N; i++ {
			e.RunRound()
			h, r := e.Counts()
			sizes = append(sizes, e.Size(), h, r)
		}
		return sizes, e.Stats()
	}
	wantSizes, wantStats := run(1)
	if wantStats.RogueKills == 0 {
		t.Error("no boundary kills on the torus")
	}
	for _, w := range []int{2, runtime.NumCPU()} {
		gotSizes, gotStats := run(w)
		if len(gotSizes) != len(wantSizes) {
			t.Fatalf("workers=%d: trajectory length %d != %d", w, len(gotSizes), len(wantSizes))
		}
		for i := range wantSizes {
			if gotSizes[i] != wantSizes[i] {
				t.Fatalf("workers=%d: torus trajectory diverged at sample %d: %d != %d",
					w, i, gotSizes[i], wantSizes[i])
			}
		}
		if gotStats != wantStats {
			t.Fatalf("workers=%d: stats diverged: %+v != %+v", w, gotStats, wantStats)
		}
	}
}

// clusterRing builds a clustered-infiltration engine on a fresh ring
// matcher and returns both.
func clusterRing(t *testing.T, p params.Params, spec ClusterSpec, initial, perEpoch int, seed uint64) (*Engine, *match.Ring) {
	t.Helper()
	ring, err := match.NewRing(1.0 / float64(p.N))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Params: p, ReplicateEvery: 3, DetectProb: 1,
		InitialRogues: initial, RoguesPerEpoch: perEpoch,
		Matcher: ring, Cluster: &spec, Seed: seed, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, ring
}

// TestClusterPlacesInitialCohort pins the clustered seeding: every initial
// rogue sits inside the patch even though the cohort was inserted before the
// matcher bound its position side-array, and the honest population stays
// uniformly spread (most of it outside a small patch).
func TestClusterPlacesInitialCohort(t *testing.T) {
	p := fastParams(t)
	spec := ClusterSpec{Center: population.Point{X: 0.25}, Radius: 0.01}
	eng, ring := clusterRing(t, p, spec, 64, 0, 5)
	pos := ring.Positions()
	meta := eng.Overlay().meta
	if pos.Len() != len(meta) {
		t.Fatalf("positions %d vs meta %d", pos.Len(), len(meta))
	}
	inPatch, rogues, honestIn := 0, 0, 0
	r2 := spec.Radius * spec.Radius
	for i := range meta {
		inside := match.RingDist2(pos.At(i), spec.Center) <= r2
		if meta[i].prog == Rogue {
			rogues++
			if inside {
				inPatch++
			}
		} else if inside {
			honestIn++
		}
	}
	if rogues != 64 || inPatch != 64 {
		t.Errorf("rogues %d, in patch %d; want all 64 clustered", rogues, inPatch)
	}
	// A 0.02-long arc holds ~2% of the 4096 honest agents in expectation.
	if honestIn > 200 {
		t.Errorf("%d honest agents inside the tiny patch; placement leaked", honestIn)
	}
}

// TestClusterPlacesInfiltration pins the per-epoch path: rogues inserted by
// StartRound land inside the patch too (via the placement queue, not the
// oblivious Place seam).
func TestClusterPlacesInfiltration(t *testing.T) {
	p := fastParams(t)
	spec := ClusterSpec{Center: population.Point{X: 0.75}, Radius: 0.02}
	eng, ring := clusterRing(t, p, spec, 0, 8, 6)
	eng.RunRound() // round 0 is an epoch boundary: 8 rogues arrive
	pos := ring.Positions()
	meta := eng.Overlay().meta
	r2 := spec.Radius * spec.Radius
	rogues, inPatch := 0, 0
	for i := range meta {
		if meta[i].prog != Rogue {
			continue
		}
		rogues++
		if match.RingDist2(pos.At(i), spec.Center) <= r2 {
			inPatch++
		}
	}
	if rogues == 0 || rogues != inPatch {
		t.Errorf("rogues %d, in patch %d; want all infiltrators clustered", rogues, inPatch)
	}
}

// TestClusterValidation rejects clustered infiltration without a spatial
// matcher and with a negative radius.
func TestClusterValidation(t *testing.T) {
	p := fastParams(t)
	if _, err := New(Config{
		Params: p, ReplicateEvery: 3, DetectProb: 1, InitialRogues: 4,
		Cluster: &ClusterSpec{Radius: 0.1},
	}); err == nil {
		t.Error("Cluster accepted without a spatial Matcher")
	}
	ring, err := match.NewRing(1.0 / float64(p.N))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{
		Params: p, ReplicateEvery: 3, DetectProb: 1, InitialRogues: 4,
		Matcher: ring, Cluster: &ClusterSpec{Radius: -0.1},
	}); err == nil {
		t.Error("negative cluster radius accepted")
	}
}

// TestClusterDeterministicAcrossWorkers extends the golden determinism
// guarantee to clustered infiltration: the cluster placement stream is
// serial and seed-derived, so worker counts cannot perturb it.
func TestClusterDeterministicAcrossWorkers(t *testing.T) {
	p := fastParams(t)
	spec := ClusterSpec{Center: population.Point{X: 0.5}, Radius: 0.02}
	run := func(workers int) []int {
		ring, err := match.NewRing(1.0 / float64(p.N))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(Config{
			Params: p, ReplicateEvery: 2, DetectProb: 1,
			InitialRogues: 32, RoguesPerEpoch: 4,
			Matcher: ring, Cluster: &spec, Seed: 9, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Short horizon with a size guard: a shielded rogue patch grows
		// exponentially, and this test is about determinism, not outcome.
		var sizes []int
		for i := 0; i < 32 && eng.Size() < 2*p.N; i++ {
			eng.RunRound()
			h, r := eng.Counts()
			sizes = append(sizes, h, r)
		}
		return sizes
	}
	want := run(1)
	for _, w := range []int{2, runtime.NumCPU()} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d diverged at sample %d: %d != %d", w, i, got[i], want[i])
			}
		}
	}
}
