// Package prng provides a deterministic, splittable pseudo-random number
// generator used throughout the simulator.
//
// The population stability protocol assumes each agent can flip unbiased
// coins (paper §2, "Agents"). For reproducible experiments every component of
// the simulator (protocol, scheduler, adversary) draws from its own stream
// derived with Split, so that, for example, changing the adversary strategy
// does not perturb the protocol's coin flips. This is a standard
// variance-reduction technique for paired simulation comparisons.
//
// The generator is xoshiro256** seeded via SplitMix64, implemented locally so
// that trajectories are stable across Go releases (math/rand makes no such
// promise). It is NOT cryptographically secure and must never be used for
// security purposes; the adversary in the model is information-theoretic and
// is given full read access to all states anyway.
package prng

import "math/bits"

// Source is a deterministic xoshiro256** PRNG stream. It is not safe for
// concurrent use; derive one Source per goroutine with Split.
type Source struct {
	s [4]uint64
}

// splitMix64 advances a SplitMix64 state and returns the next output. It is
// used for seeding and for deriving child streams.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	return mix64(*state)
}

// mix64 is the SplitMix64 output finalizer: a bijective avalanche mixer on
// 64 bits. Counter-based seeding chains it to absorb key material.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitMix64(&sm)
	}
	// xoshiro256** must not be seeded with the all-zero state; SplitMix64
	// cannot produce four consecutive zeros, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Uint64 returns the next 64 uniformly random bits.
func (src *Source) Uint64() uint64 {
	s := &src.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)

	return result
}

// Split derives a new Source whose stream is statistically independent of the
// parent's future output. The parent is advanced by one step.
func (src *Source) Split() *Source {
	// Mix one output through SplitMix64 to decorrelate the child seed from
	// raw xoshiro state.
	seed := src.Uint64()
	return New(splitMix64(&seed))
}

// SeedCounter reinitializes src in place as the counter-based stream
// identified by (key, hi, lo). Unlike Split, which derives streams
// sequentially and therefore order-dependently, SeedCounter is a pure
// function of its arguments: the stream for (key, round, slot) is the same
// no matter how many other streams were derived before it or on which
// goroutine. The parallel round engine keys one stream per (global round,
// agent slot) pair so per-agent coin flips are independent of iteration
// order and worker count (Philox/SplitMix-style counter PRNG).
//
// The three words are absorbed through a chain of bijective avalanche mixes
// (multiplication by odd constants composed with the SplitMix64 finalizer),
// then expanded to the four xoshiro256** state words with SplitMix64. The
// call performs no allocation; a zero-value Source on the caller's stack may
// be reseeded once per agent on the hot path.
func (src *Source) SeedCounter(key, hi, lo uint64) {
	sm := mix64(key + 0x9e3779b97f4a7c15)
	sm = mix64(sm + hi*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb)
	sm = mix64(sm + lo*0x2545f4914f6cdd1d + 0x632be59bd9b4e019)
	for i := range src.s {
		src.s[i] = splitMix64(&sm)
	}
	// Same all-zero-state guard as New; unreachable via SplitMix64 but kept
	// for defense in depth.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
}

// State returns the generator's full internal state, for deterministic
// snapshot/resume (internal/wire): a Source restored with SetState continues
// the exact output sequence the original would have produced.
func (src *Source) State() [4]uint64 { return src.s }

// SetState reinstates a state previously captured with State. The all-zero
// state is invalid for xoshiro256** and is rejected with the same guard
// constant New uses; callers round-tripping real State values never hit it.
func (src *Source) SetState(s [4]uint64) {
	src.s = s
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
}

// AtCounter returns the counter-based stream (key, hi, lo) by value; see
// SeedCounter. Hot paths should keep one Source per worker and reseed it
// with SeedCounter instead.
func AtCounter(key, hi, lo uint64) Source {
	var src Source
	src.SeedCounter(key, hi, lo)
	return src
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0, matching
// math/rand semantics; callers validate n at configuration time.
func (src *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(src.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly random uint64 in [0, n) using Lemire's
// nearly-divisionless unbiased method. It panics if n == 0.
func (src *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(src.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(src.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniformly random float64 in [0, 1).
func (src *Source) Float64() float64 {
	return float64(src.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns an unbiased coin flip.
func (src *Source) Bool() bool {
	return src.Uint64()&1 == 1
}

// Bit returns an unbiased coin flip as 0 or 1, matching the paper's
// convention color <-$ {0,1}.
func (src *Source) Bit() uint8 {
	return uint8(src.Uint64() & 1)
}

// Prob returns true with probability p. Values outside [0,1] are clamped.
func (src *Source) Prob(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return src.Float64() < p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (src *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (src *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	src.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// PermInt32Into fills p with a uniformly random permutation of [0, len(p)).
// It draws the exact same variate sequence as Perm (identity fill followed
// by a Fisher-Yates shuffle), so callers can swap Perm for a reusable
// buffer without perturbing downstream randomness; hot paths (the spatial
// matchers' per-round visit order) use it to avoid an O(n) allocation every
// round.
func (src *Source) PermInt32Into(p []int32) {
	for i := range p {
		p[i] = int32(i)
	}
	src.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
}

// PartialShuffleInt32 shuffles the first k positions of p uniformly, as in a
// truncated Fisher-Yates: after the call, p[0:k] is a uniformly random
// k-subset of the original elements in uniformly random order. The remaining
// elements are left in an arbitrary order. This is the core primitive for
// sampling random matchings in O(k) time.
func (src *Source) PartialShuffleInt32(p []int32, k int) {
	n := len(p)
	if k > n {
		k = n
	}
	for i := 0; i < k; i++ {
		j := i + src.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
}

// SampleK returns k distinct uniformly random indices from [0, n) in random
// order. It runs in O(k) expected time using Floyd's algorithm for k << n and
// falls back to a partial shuffle otherwise.
func (src *Source) SampleK(n, k int) []int {
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	if k*4 < n {
		// Floyd's sampling: O(k) time, O(k) space.
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for j := n - k; j < n; j++ {
			t := src.Intn(j + 1)
			if _, dup := seen[t]; dup {
				t = j
			}
			seen[t] = struct{}{}
			out = append(out, t)
		}
		// Floyd's produces a uniform set but a biased order; shuffle.
		src.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	src.PartialShuffleInt32(p, k)
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = int(p[i])
	}
	return out
}
