package prng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestNewSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of %d outputs", same, n)
	}
}

func TestZeroSeedNotDegenerate(t *testing.T) {
	src := New(0)
	var zeros int
	for i := 0; i < 100; i++ {
		if src.Uint64() == 0 {
			zeros++
		}
	}
	if zeros > 2 {
		t.Fatalf("seed 0 produced %d zero outputs in 100 draws", zeros)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must differ from the parent's continuation.
	matches := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("parent and child streams matched on %d outputs", matches)
	}
}

func TestSplitDeterministic(t *testing.T) {
	c1 := New(9).Split()
	c2 := New(9).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	src := New(3)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := src.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	src := New(11)
	const buckets = 10
	const draws = 100000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[src.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		// 5 sigma tolerance for binomial(draws, 1/buckets).
		sigma := math.Sqrt(want * (1 - 1.0/buckets))
		if math.Abs(float64(c)-want) > 5*sigma {
			t.Errorf("bucket %d: count %d, want %.0f +- %.0f", b, c, want, 5*sigma)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	src := New(5)
	for i := 0; i < 100000; i++ {
		v := src.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestBoolBalance(t *testing.T) {
	src := New(13)
	const draws = 100000
	ones := 0
	for i := 0; i < draws; i++ {
		if src.Bool() {
			ones++
		}
	}
	mean := float64(draws) / 2
	sigma := math.Sqrt(float64(draws)) / 2
	if math.Abs(float64(ones)-mean) > 5*sigma {
		t.Fatalf("Bool bias: %d ones of %d", ones, draws)
	}
}

func TestProbEdgeCases(t *testing.T) {
	src := New(17)
	for i := 0; i < 100; i++ {
		if src.Prob(0) {
			t.Fatal("Prob(0) returned true")
		}
		if !src.Prob(1) {
			t.Fatal("Prob(1) returned false")
		}
		if src.Prob(-0.5) {
			t.Fatal("Prob(-0.5) returned true")
		}
		if !src.Prob(1.5) {
			t.Fatal("Prob(1.5) returned false")
		}
	}
}

func TestProbFrequency(t *testing.T) {
	src := New(19)
	const draws = 200000
	const p = 0.3
	hits := 0
	for i := 0; i < draws; i++ {
		if src.Prob(p) {
			hits++
		}
	}
	mean := p * draws
	sigma := math.Sqrt(draws * p * (1 - p))
	if math.Abs(float64(hits)-mean) > 5*sigma {
		t.Fatalf("Prob(%v): %d hits of %d, want about %.0f", p, hits, draws, mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := New(23)
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := src.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	src := New(29)
	const n = 8
	const draws = 80000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[src.Perm(n)[0]]++
	}
	want := float64(draws) / n
	sigma := math.Sqrt(want * (1 - 1.0/n))
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*sigma {
			t.Errorf("Perm first element %d: count %d, want %.0f", i, c, want)
		}
	}
}

func TestPartialShuffleInt32(t *testing.T) {
	src := New(31)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw) % (n + 10)
		p := make([]int32, n)
		for i := range p {
			p[i] = int32(i)
		}
		src.PartialShuffleInt32(p, k)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartialShuffleUniformSubset(t *testing.T) {
	// For n=5, k=2 every element should appear in the prefix w.p. 2/5.
	src := New(37)
	const n, k, draws = 5, 2, 50000
	var counts [n]int
	p := make([]int32, n)
	for i := 0; i < draws; i++ {
		for j := range p {
			p[j] = int32(j)
		}
		src.PartialShuffleInt32(p, k)
		for j := 0; j < k; j++ {
			counts[p[j]]++
		}
	}
	want := float64(draws) * k / n
	sigma := math.Sqrt(float64(draws) * (float64(k) / n) * (1 - float64(k)/n))
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*sigma {
			t.Errorf("element %d in prefix %d times, want about %.0f", i, c, want)
		}
	}
}

func TestSampleKProperties(t *testing.T) {
	src := New(41)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%200) + 1
		k := int(kRaw) % (n + 5)
		s := src.SampleK(n, k)
		wantLen := k
		if wantLen > n {
			wantLen = n
		}
		if len(s) != wantLen {
			return false
		}
		seen := make(map[int]bool, len(s))
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleKZero(t *testing.T) {
	if s := New(1).SampleK(10, 0); len(s) != 0 {
		t.Fatalf("SampleK(10,0) = %v, want empty", s)
	}
}

func TestSampleKUniformSmallK(t *testing.T) {
	// Floyd's path: k << n. Every index should be sampled equally often.
	src := New(43)
	const n, k, draws = 100, 3, 60000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		for _, v := range src.SampleK(n, k) {
			counts[v]++
		}
	}
	want := float64(draws) * k / n
	sigma := math.Sqrt(float64(draws) * (float64(k) / n))
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*sigma {
			t.Errorf("index %d sampled %d times, want about %.0f", i, c, want)
		}
	}
}

func TestBiasedCoinMatchesSlow(t *testing.T) {
	// Same distribution, not same draws: compare frequencies.
	for _, a := range []int{1, 2, 3, 5, 8} {
		fast := New(uint64(100 + a))
		slow := New(uint64(200 + a))
		const draws = 1 << 18
		fastHits, slowHits := 0, 0
		for i := 0; i < draws; i++ {
			if fast.BiasedCoin(a) {
				fastHits++
			}
			if slow.BiasedCoinSlow(a) {
				slowHits++
			}
		}
		p := math.Pow(2, -float64(a))
		mean := p * draws
		sigma := math.Sqrt(draws * p * (1 - p))
		if math.Abs(float64(fastHits)-mean) > 5*sigma {
			t.Errorf("BiasedCoin(%d): %d hits, want about %.0f +- %.0f", a, fastHits, mean, 5*sigma)
		}
		if math.Abs(float64(slowHits)-mean) > 5*sigma {
			t.Errorf("BiasedCoinSlow(%d): %d hits, want about %.0f +- %.0f", a, slowHits, mean, 5*sigma)
		}
	}
}

func TestBiasedCoinDegenerate(t *testing.T) {
	src := New(1)
	for i := 0; i < 10; i++ {
		if !src.BiasedCoin(0) {
			t.Fatal("BiasedCoin(0) must always be true")
		}
		if !src.BiasedCoin(-3) {
			t.Fatal("BiasedCoin(-3) must always be true")
		}
	}
}

func TestBiasedCoinLargeExponent(t *testing.T) {
	// a = 70 crosses the 64-bit word boundary; probability 2^-70 is
	// effectively zero, so every draw must be false.
	src := New(2)
	for i := 0; i < 10000; i++ {
		if src.BiasedCoin(70) {
			t.Fatal("BiasedCoin(70) returned true (p = 2^-70)")
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	src := New(47)
	const n, p, draws = 50, 0.4, 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		k := float64(src.Binomial(n, p))
		sum += k
		sumSq += k * k
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean-n*p) > 0.5 {
		t.Errorf("Binomial mean %.3f, want %.1f", mean, float64(n)*p)
	}
	wantVar := n * p * (1 - p)
	if math.Abs(variance-wantVar) > 1.5 {
		t.Errorf("Binomial variance %.3f, want %.1f", variance, wantVar)
	}
}

func TestBitBalance(t *testing.T) {
	src := New(53)
	const draws = 100000
	ones := 0
	for i := 0; i < draws; i++ {
		b := src.Bit()
		if b > 1 {
			t.Fatalf("Bit returned %d", b)
		}
		ones += int(b)
	}
	sigma := math.Sqrt(float64(draws)) / 2
	if math.Abs(float64(ones)-draws/2) > 5*sigma {
		t.Fatalf("Bit bias: %d ones of %d", ones, draws)
	}
}

func BenchmarkUint64(b *testing.B) {
	src := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= src.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	src := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= src.Intn(1000)
	}
	_ = sink
}

func BenchmarkBiasedCoin(b *testing.B) {
	src := New(1)
	var sink bool
	for i := 0; i < b.N; i++ {
		sink = sink != src.BiasedCoin(9)
	}
	_ = sink
}

func TestSeedCounterDeterministic(t *testing.T) {
	a := AtCounter(42, 7, 1009)
	var b Source
	b.SeedCounter(42, 7, 1009)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("counter stream diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedCounterReseedsInPlace(t *testing.T) {
	// A reused Source must forget its previous stream entirely: reseeding
	// to the same counter after draining another stream restarts it.
	var src Source
	src.SeedCounter(1, 2, 3)
	first := src.Uint64()
	src.SeedCounter(9, 9, 9)
	src.Uint64()
	src.SeedCounter(1, 2, 3)
	if got := src.Uint64(); got != first {
		t.Fatalf("reseeded stream restarted at %d, want %d", got, first)
	}
}

func TestSeedCounterKeySeparation(t *testing.T) {
	// Streams at distinct counters must not collide on their prefixes, in
	// any of the three coordinates, including counters differing in one bit.
	base := [3]uint64{5, 1000, 2000}
	variants := [][3]uint64{
		{6, 1000, 2000}, {5, 1001, 2000}, {5, 1000, 2001},
		{5, 2000, 1000}, {4, 1000, 2000}, {5, 1000 ^ 1<<63, 2000},
	}
	ref := AtCounter(base[0], base[1], base[2])
	var refOut [64]uint64
	for i := range refOut {
		refOut[i] = ref.Uint64()
	}
	for _, v := range variants {
		src := AtCounter(v[0], v[1], v[2])
		matches := 0
		for i := range refOut {
			if src.Uint64() == refOut[i] {
				matches++
			}
		}
		if matches > 0 {
			t.Errorf("counter %v collided with %v on %d of 64 outputs", v, base, matches)
		}
	}
}

func TestSeedCounterAdjacentSlotBalance(t *testing.T) {
	// Adjacent agent slots within one round are the heaviest correlation
	// exposure of the parallel engine; check first-output bit balance over a
	// run of consecutive slots.
	const n = 4096
	ones := 0
	for slot := uint64(0); slot < n; slot++ {
		src := AtCounter(17, 3, slot)
		ones += bits.OnesCount64(src.Uint64())
	}
	mean := float64(ones) / (n * 64)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("first-output bit mean %.4f across adjacent slots, want 0.5", mean)
	}
}
