package prng

// BiasedCoin flips a coin that is 1 (true) with probability 2^-a, as produced
// by the paper's Algorithm 4 (TossBiasedCoin): flip a unbiased coins and
// report 1 iff all landed 1. The loop in the paper exists to bound agent
// memory to 1+ceil(log a) bits; the distribution is exactly Pr[true] = 2^-a,
// which we produce here from ceil(a/64) raw words.
//
// a <= 0 returns true deterministically (2^0 = 1), matching the degenerate
// reading of the paper's loop bounds.
func (src *Source) BiasedCoin(a int) bool {
	if a <= 0 {
		return true
	}
	for a > 64 {
		if src.Uint64() != ^uint64(0) {
			// At least one of these 64 coins was 0.
			return false
		}
		a -= 64
	}
	mask := ^uint64(0) >> (64 - uint(a))
	return src.Uint64()&mask == mask
}

// BiasedCoinSlow is the literal transcription of the paper's Algorithm 4:
// c := 1; repeat a times { b <-$ {0,1}; if b == 0 { c := 0 } }; return c.
// It consumes one word per flip and exists to cross-validate BiasedCoin in
// tests; production code uses BiasedCoin.
func (src *Source) BiasedCoinSlow(a int) bool {
	c := true
	for i := 0; i < a; i++ {
		if !src.Bool() {
			c = false
		}
	}
	return c
}

// Binomial draws from Binomial(n, p) by explicit summation of Bernoulli
// trials. It is O(n) and intended for test-time cross-validation and small n;
// the simulator never draws binomials on the hot path (each agent flips its
// own coin, as in the model).
func (src *Source) Binomial(n int, p float64) int {
	k := 0
	for i := 0; i < n; i++ {
		if src.Prob(p) {
			k++
		}
	}
	return k
}
