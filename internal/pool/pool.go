// Package pool provides the engine's persistent worker pool: a fixed set of
// parked goroutines that data-parallel phases (compose/step sharding, the
// spatial matching pipeline, the apply-plan scatter, snapshot encoding) wake
// per task instead of spawning fresh goroutines every round. At high round
// rates the per-round spawn + WaitGroup-barrier cost of the old scheme was a
// measurable serial tail (DESIGN.md §10); the pool replaces it with one
// channel send per shard.
//
// Determinism: the pool only ever runs callbacks the caller supplies over
// index ranges the caller derives from (n, grain, Workers()). Nothing here
// consumes randomness or reorders outputs, so — exactly as with the old
// per-round goroutines — simulation output is bit-identical for every worker
// count. Workers is purely a throughput knob.
//
// Lifecycle: workers are spawned lazily on first use and park on a shared
// task channel between rounds. Close releases them; a closed pool degrades
// gracefully (every Run/RunN/Go executes inline on the caller), so an engine
// whose pool was closed keeps producing identical results, just serially.
// The engine closes its pool explicitly (Engine.Close) and also attaches a
// runtime.AddCleanup so pools of engines that become garbage — e.g. sessions
// hibernated or reaped by internal/serve, which simply drop the engine —
// park-and-exit instead of leaking goroutines.
package pool

import (
	"sync"
	"sync/atomic"
)

// task is one unit of sharded work: run executes the shard, done signals the
// submitting goroutine.
type task struct {
	run  func()
	done *sync.WaitGroup
}

// auxTask is one overlap task for the dedicated auxiliary goroutine.
type auxTask struct {
	fn   func()
	done chan struct{}
}

// Pool is a persistent worker pool of a fixed parallelism. The zero value is
// not usable; create with New. Run, RunN, and Go may be called concurrently
// with each other (tasks never block inside the pool), but not concurrently
// with Close.
type Pool struct {
	workers int // total participants, including the submitting goroutine
	jobs    chan task
	aux     chan auxTask
	stop    chan struct{}
	closed  atomic.Bool

	mu      sync.Mutex
	started int // spawned worker goroutines (≤ workers-1)
	auxUp   bool
}

// New returns a pool of the given total parallelism (< 1 is treated as 1).
// The submitting goroutine always executes one shard itself, so a pool of W
// spawns at most W-1 worker goroutines — and a pool of 1 spawns none and
// runs everything inline: the serial path has zero scheduling overhead.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{
		workers: workers,
		jobs:    make(chan task, 8*workers),
		aux:     make(chan auxTask, 1),
		stop:    make(chan struct{}),
	}
}

// Workers reports the pool's total parallelism (≥ 1).
func (p *Pool) Workers() int { return p.workers }

// Closed reports whether Close has been called.
func (p *Pool) Closed() bool { return p.closed.Load() }

// Shards reports how many shards Run would split n items into at the given
// minimum grain: min(Workers, n/grain), at least 1. Callers that need the
// shard count up front (per-shard accumulators, prefix sums) use it so their
// partition matches Run's.
func (p *Pool) Shards(n, grain int) int {
	if p.closed.Load() {
		return 1
	}
	w := p.workers
	if grain > 0 {
		if lim := n / grain; w > lim {
			w = lim
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes fn over up to Workers contiguous shards of [0, n), blocking
// until all shards complete. The submitting goroutine runs the last shard
// itself. grain bounds how finely the range splits (at least grain items per
// shard); with one effective shard — small n, Workers 1, or a closed pool —
// fn runs inline with no synchronization. fn must be safe to call
// concurrently on disjoint ranges.
func (p *Pool) Run(n, grain int, fn func(lo, hi int)) {
	w := p.Shards(n, grain)
	if w <= 1 {
		fn(0, n)
		return
	}
	var done sync.WaitGroup
	done.Add(w - 1)
	for k := 0; k < w-1; k++ {
		lo, hi := k*n/w, (k+1)*n/w
		p.submit(task{run: func() { fn(lo, hi) }, done: &done})
	}
	fn((w-1)*n/w, n)
	done.Wait()
}

// RunN fans fn out over shard indices 0..w-1, blocking until all complete.
// The submitting goroutine runs the last index itself. It is Run for callers
// that partition work themselves (per-shard counters, cell ranges). w may
// exceed Workers — the extra shards queue behind the spawned workers — and
// on a pool of 1 (which spawns no workers at all) every index runs inline,
// so over-fanned submissions degrade to serial instead of filling the job
// buffer with tasks nobody drains.
func (p *Pool) RunN(w int, fn func(k int)) {
	if w <= 1 || p.workers <= 1 || p.closed.Load() {
		for k := 0; k < w; k++ {
			fn(k)
		}
		return
	}
	var done sync.WaitGroup
	done.Add(w - 1)
	for k := 0; k < w-1; k++ {
		k := k
		p.submit(task{run: func() { fn(k) }, done: &done})
	}
	fn(w - 1)
	done.Wait()
}

// Go runs fn on the pool's dedicated auxiliary goroutine and returns a wait
// function that blocks until fn has finished. The engine uses it to overlap
// two provably independent serial-ish phases (compose vs. matching) without
// spawning a goroutine per round. At most one auxiliary task may be
// outstanding at a time. On a pool of 1 (or a closed pool) fn runs inline
// and the returned wait is a no-op — the serial path stays serial.
func (p *Pool) Go(fn func()) (wait func()) {
	if p.workers <= 1 || p.closed.Load() {
		fn()
		return func() {}
	}
	p.mu.Lock()
	if !p.auxUp {
		p.auxUp = true
		go p.auxLoop()
	}
	p.mu.Unlock()
	done := make(chan struct{})
	p.aux <- auxTask{fn: fn, done: done}
	return func() { <-done }
}

// Close releases every parked goroutine. Idempotent. Must not be called
// concurrently with Run/RunN/Go; after Close they all execute inline, so a
// closed pool's owner keeps working (serially) rather than deadlocking.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	close(p.stop)
}

// submit enqueues one task, growing the worker set toward workers-1.
func (p *Pool) submit(t task) {
	if p.closed.Load() {
		t.run()
		t.done.Done()
		return
	}
	p.mu.Lock()
	if p.started < p.workers-1 {
		p.started++
		go p.worker()
	}
	p.mu.Unlock()
	p.jobs <- t
}

// worker is the parked shard executor: drain tasks, exit on stop. Queued
// tasks win over a concurrent stop so Close never strands submitted work
// (Close is not called concurrently with submission, but a worker observing
// both prefers the task).
func (p *Pool) worker() {
	for {
		select {
		case t := <-p.jobs:
			t.run()
			t.done.Done()
		default:
			select {
			case t := <-p.jobs:
				t.run()
				t.done.Done()
			case <-p.stop:
				return
			}
		}
	}
}

// auxLoop is the parked overlap executor behind Go.
func (p *Pool) auxLoop() {
	for {
		select {
		case t := <-p.aux:
			t.fn()
			close(t.done)
		case <-p.stop:
			return
		}
	}
}
