package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunCoversRange checks every index is visited exactly once, for shard
// counts straddling the inline and pooled paths.
func TestRunCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		for _, n := range []int{0, 1, 5, 1000, 4096, 10001} {
			var hits = make([]int32, n)
			p.Run(n, 64, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
		p.Close()
	}
}

// TestRunGrain checks the shard count respects the minimum grain.
func TestRunGrain(t *testing.T) {
	p := New(8)
	defer p.Close()
	if got := p.Shards(100, 64); got != 1 {
		t.Fatalf("Shards(100, 64) = %d, want 1 (grain bound)", got)
	}
	if got := p.Shards(1<<20, 1024); got != 8 {
		t.Fatalf("Shards(1<<20, 1024) = %d, want 8 (worker bound)", got)
	}
	if got := p.Shards(3000, 1024); got != 2 {
		t.Fatalf("Shards(3000, 1024) = %d, want 2", got)
	}
}

// TestRunNFansOut checks every shard index runs exactly once.
func TestRunNFansOut(t *testing.T) {
	p := New(4)
	defer p.Close()
	var hits [16]int32
	p.RunN(len(hits), func(k int) { atomic.AddInt32(&hits[k], 1) })
	for k, h := range hits {
		if h != 1 {
			t.Fatalf("shard %d ran %d times", k, h)
		}
	}
}

// TestRunNWiderThanPool pins that fanning out past the pool's parallelism
// completes instead of deadlocking — the forced-speculation override
// (POPSTAB_FORCE_SPEC_SHARDS) submits more shards than Workers, and a pool
// of 1 spawns no drainer goroutines at all, so RunN must fall back to
// inline execution there and queue the excess elsewhere.
func TestRunNWiderThanPool(t *testing.T) {
	for _, workers := range []int{1, 2} {
		p := New(workers)
		defer p.Close()
		var hits [64]int32 // far beyond the jobs buffer (8×workers)
		p.RunN(len(hits), func(k int) { atomic.AddInt32(&hits[k], 1) })
		for k, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: shard %d ran %d times", workers, k, h)
			}
		}
	}
}

// TestConcurrentRuns checks two goroutines can share one pool (the overlap
// structure: matching on the caller, compose on the aux goroutine, both
// sharding into the same pool).
func TestConcurrentRuns(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 1 << 16
	a := make([]int32, n)
	b := make([]int32, n)
	for iter := 0; iter < 50; iter++ {
		wait := p.Go(func() {
			p.Run(n, 1024, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					a[i]++
				}
			})
		})
		p.Run(n, 1024, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				b[i]++
			}
		})
		wait()
	}
	for i := 0; i < n; i++ {
		if a[i] != 50 || b[i] != 50 {
			t.Fatalf("index %d: a=%d b=%d, want 50/50", i, a[i], b[i])
		}
	}
}

// TestGoInlineWhenSerial checks Go on a 1-worker pool runs inline, before
// the call returns.
func TestGoInlineWhenSerial(t *testing.T) {
	p := New(1)
	defer p.Close()
	ran := false
	wait := p.Go(func() { ran = true })
	if !ran {
		t.Fatal("Go on a serial pool did not run inline")
	}
	wait()
}

// TestClosedPoolRunsInline checks a closed pool degrades to inline
// execution instead of deadlocking.
func TestClosedPoolRunsInline(t *testing.T) {
	p := New(4)
	p.Close()
	p.Close() // idempotent
	sum := 0
	p.Run(100, 1, func(lo, hi int) { sum += hi - lo })
	if sum != 100 {
		t.Fatalf("closed-pool Run covered %d of 100", sum)
	}
	ran := false
	p.Go(func() { ran = true })()
	if !ran {
		t.Fatal("closed-pool Go did not run")
	}
	hits := 0
	p.RunN(3, func(k int) { hits++ })
	if hits != 3 {
		t.Fatalf("closed-pool RunN ran %d of 3 shards", hits)
	}
}

// TestCloseParksWorkers checks Close returns the process to its baseline
// goroutine count — the pool must not leak parked workers.
func TestCloseParksWorkers(t *testing.T) {
	base := runtime.NumGoroutine()
	p := New(8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); p.Run(1<<16, 1024, func(lo, hi int) {}) }()
	wg.Wait()
	p.Go(func() {})()
	if g := runtime.NumGoroutine(); g <= base {
		t.Fatalf("expected spawned workers, goroutines %d <= baseline %d", g, base)
	}
	p.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline %d after Close (now %d)",
				base, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}
