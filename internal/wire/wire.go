// Package wire implements the message formats of the population stability
// protocol.
//
// The paper's protocol (§3) has agents exchange four boolean values per
// interaction: (inEvalPhase, active, color, recruiting). The proof of
// Theorem 2 observes that only three bits are ever needed simultaneously and
// gives an explicit three-bit encoding:
//
//   - inEvalPhase = 1: send {active, color} (recruiting is irrelevant in the
//     evaluation round);
//   - inEvalPhase = 0, recruiting = 1: send {color} (recruiting = 1 implies
//     active = 1, so active is inferable);
//   - inEvalPhase = 0, recruiting = 0: send {active} (color is only consumed
//     from recruiting agents, so it is irrelevant).
//
// This package provides the logical Message value, the four-bit reference
// codec, and the three-bit production codec. Protocol equivalence of the two
// codecs is established by tests in internal/protocol.
package wire

// Message is the logical content of one agent-to-agent message. An agent that
// is unmatched in a round receives no Message at all (the paper's ⊥); that
// case is represented out of band by the hasNbr flag threaded through the
// protocol, never by a Message value.
type Message struct {
	// InEvalPhase reports whether the sender is in the evaluation round of
	// its epoch. Always transmitted.
	InEvalPhase bool
	// Active reports whether the sender has been activated (is a leader or
	// was recruited) this epoch. In the three-bit codec it is transmitted
	// explicitly or inferred from Recruiting.
	Active bool
	// Color is the sender's cluster color in {0,1}. Only meaningful when the
	// sender is active; in the three-bit codec it is transmitted only when
	// the receiver could act on it.
	Color uint8
	// Recruiting reports whether the sender is seeking to recruit in the
	// current subphase. Only meaningful outside the evaluation round.
	Recruiting bool
}

// Codec serializes Messages to small bit strings and back. Both codecs are
// lossless with respect to every field the protocol reads; the three-bit
// codec drops only fields the receiver provably ignores.
type Codec interface {
	// Bits reports the wire size of an encoded message in bits.
	Bits() int
	// Encode packs m into the low bits of the returned byte.
	Encode(m Message) uint8
	// Decode reconstructs the protocol-visible fields of a message.
	Decode(b uint8) Message
	// Name identifies the codec in experiment output.
	Name() string
}

// FourBit is the reference codec: one bit per logical field.
// Layout (LSB first): inEvalPhase, active, color, recruiting.
type FourBit struct{}

var _ Codec = FourBit{}

// Bits reports 4.
func (FourBit) Bits() int { return 4 }

// Name reports "4bit".
func (FourBit) Name() string { return "4bit" }

// Encode packs all four fields.
func (FourBit) Encode(m Message) uint8 {
	var b uint8
	if m.InEvalPhase {
		b |= 1
	}
	if m.Active {
		b |= 2
	}
	b |= (m.Color & 1) << 2
	if m.Recruiting {
		b |= 8
	}
	return b
}

// Decode unpacks all four fields.
func (FourBit) Decode(b uint8) Message {
	return Message{
		InEvalPhase: b&1 != 0,
		Active:      b&2 != 0,
		Color:       (b >> 2) & 1,
		Recruiting:  b&8 != 0,
	}
}

// ThreeBit is the production codec from the proof of Theorem 2.
// Layout (LSB first): bit0 = inEvalPhase; then
//
//	inEvalPhase=1: bit1 = active, bit2 = color
//	inEvalPhase=0: bit1 = recruiting; bit2 = color if recruiting else active
type ThreeBit struct{}

var _ Codec = ThreeBit{}

// Bits reports 3.
func (ThreeBit) Bits() int { return 3 }

// Name reports "3bit".
func (ThreeBit) Name() string { return "3bit" }

// Encode packs m into three bits, dropping exactly the fields the receiver
// never reads in the corresponding protocol state.
func (ThreeBit) Encode(m Message) uint8 {
	var b uint8
	if m.InEvalPhase {
		b |= 1
		if m.Active {
			b |= 2
		}
		b |= (m.Color & 1) << 2
		return b
	}
	if m.Recruiting {
		b |= 2
		b |= (m.Color & 1) << 2
		return b
	}
	if m.Active {
		b |= 4
	}
	return b
}

// Decode reconstructs the protocol-visible fields. Fields that were not
// transmitted decode to the values the protocol's logic treats as equivalent:
// a recruiting sender is necessarily active; a non-recruiting sender's color
// decodes to 0 but is never consumed; an evaluating sender's recruiting flag
// decodes to false but is never consumed.
func (ThreeBit) Decode(b uint8) Message {
	if b&1 != 0 {
		return Message{
			InEvalPhase: true,
			Active:      b&2 != 0,
			Color:       (b >> 2) & 1,
		}
	}
	if b&2 != 0 {
		// Recruiting implies active.
		return Message{
			Active:     true,
			Color:      (b >> 2) & 1,
			Recruiting: true,
		}
	}
	return Message{Active: b&4 != 0}
}
