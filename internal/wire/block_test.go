package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// TestBlockRawRoundTrip checks the bulk record seam: a Block-filled region
// decodes through Raw byte for byte, interleaved with ordinary primitives,
// and produces exactly the bytes a per-field encode would.
func TestBlockRawRoundTrip(t *testing.T) {
	const n = 1000
	e := NewEnc()
	e.Begin(3)
	e.U64(n)
	blk := e.Block(8 * n)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(blk[8*i:], uint64(i)*0x9E3779B97F4A7C15)
	}
	e.U32(0xCAFE) // bulk and per-field appends interleave freely
	e.End()
	blob := e.Finish()

	// The per-field twin must produce identical bytes.
	e2 := NewEnc()
	e2.Begin(3)
	e2.U64(n)
	for i := 0; i < n; i++ {
		e2.U64(uint64(i) * 0x9E3779B97F4A7C15)
	}
	e2.U32(0xCAFE)
	e2.End()
	if !bytes.Equal(blob, e2.Finish()) {
		t.Fatal("Block-filled document differs from per-field encode")
	}

	d, err := NewDec(blob)
	if err != nil {
		t.Fatal(err)
	}
	d.Begin(3)
	if got := d.Count(8, "record"); got != n {
		t.Fatalf("Count = %d", got)
	}
	raw := d.Raw(8 * n)
	for i := 0; i < n; i++ {
		if got := binary.LittleEndian.Uint64(raw[8*i:]); got != uint64(i)*0x9E3779B97F4A7C15 {
			t.Fatalf("record %d = %#x", i, got)
		}
	}
	if got := d.U32(); got != 0xCAFE {
		t.Fatalf("trailing U32 = %#x", got)
	}
	d.End()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestBlockGrowth forces multiple growth steps and checks earlier blocks
// keep their contents (Block must copy on grow, not alias the old array).
func TestBlockGrowth(t *testing.T) {
	e := NewEnc()
	e.Begin(1)
	for step := 0; step < 6; step++ {
		blk := e.Block(3000)
		for i := range blk {
			blk[i] = byte(step)
		}
	}
	e.End()
	d, err := NewDec(e.Finish())
	if err != nil {
		t.Fatal(err)
	}
	d.Begin(1)
	for step := 0; step < 6; step++ {
		raw := d.Raw(3000)
		for i, b := range raw {
			if b != byte(step) {
				t.Fatalf("step %d byte %d = %d", step, i, b)
			}
		}
	}
	d.End()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestRawUnderflow checks Raw fails the decoder cleanly past the payload.
func TestRawUnderflow(t *testing.T) {
	e := NewEnc()
	e.Begin(2)
	e.U64(1)
	e.End()
	d, err := NewDec(e.Finish())
	if err != nil {
		t.Fatal(err)
	}
	d.Begin(2)
	if raw := d.Raw(1 << 20); raw != nil {
		t.Fatalf("underflowing Raw returned %d bytes", len(raw))
	}
	if d.Err() == nil {
		t.Fatal("underflowing Raw left decoder error-free")
	}
}
