// Snapshot serialization. Besides the protocol's message codecs, the wire
// package carries the binary format for full simulation state capture: the
// session layer (internal/sim, popstab.Session, internal/serve) snapshots a
// running simulation, ships or stores the bytes, and restores them into a
// fresh process with the guarantee that the restored run continues
// bit-identically (DESIGN.md §8).
//
// The format is a flat sequence of tagged, length-prefixed sections inside a
// framed document:
//
//	"PSNP" | version u32 | sections... | crc32c u32
//
// Each section is tag u32 | length u64 | payload. Every component of the
// simulator that carries mutable per-run state (population, positions,
// matcher streams, program side-arrays, adversary counters) encodes its own
// payload with the primitive Enc/Dec methods; the engine owns the section
// layout. All integers are little-endian; the encoding is
// platform-independent and self-checking (length mismatches and corruption
// are caught by the section framing and the trailing checksum).
//
// Versioning is strict: a decoder only accepts its own Version. Snapshots
// are short-lived operational artifacts (pause/migrate/resume), not archival
// interchange, so cross-version migration is out of scope by design.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// SnapVersion is the current snapshot format version. Bump on any layout
// change; decoders reject every other version.
const SnapVersion uint32 = 1

// snapMagic frames a snapshot document.
var snapMagic = [4]byte{'P', 'S', 'N', 'P'}

// castagnoli is the CRC-32C table used for the trailing checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Enc builds one snapshot document. The zero value is not usable; create
// with NewEnc. Enc never fails: misuse (an unclosed section) panics, since
// it is a programming error in the encoding component, not bad input.
type Enc struct {
	buf []byte
	// sect is the offset of the open section's length word, or -1.
	sect int
}

// NewEnc starts a snapshot document (magic and version already written).
func NewEnc() *Enc {
	e := &Enc{buf: make([]byte, 0, 4096), sect: -1}
	e.buf = append(e.buf, snapMagic[:]...)
	e.U32(SnapVersion)
	return e
}

// Begin opens a section with the given tag. Sections cannot nest; Begin
// panics if one is already open.
func (e *Enc) Begin(tag uint32) {
	if e.sect >= 0 {
		panic("wire: nested snapshot section")
	}
	e.U32(tag)
	e.sect = len(e.buf)
	e.U64(0) // length placeholder, patched by End
}

// End closes the open section, patching its length word.
func (e *Enc) End() {
	if e.sect < 0 {
		panic("wire: End without Begin")
	}
	binary.LittleEndian.PutUint64(e.buf[e.sect:], uint64(len(e.buf)-e.sect-8))
	e.sect = -1
}

// Finish seals the document with the checksum and returns the bytes. The
// encoder must not be used afterwards.
func (e *Enc) Finish() []byte {
	if e.sect >= 0 {
		panic("wire: Finish with open section")
	}
	sum := crc32.Checksum(e.buf, castagnoli)
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], sum)
	e.buf = append(e.buf, w[:]...)
	return e.buf
}

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool appends a boolean as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], v)
	e.buf = append(e.buf, w[:]...)
}

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) {
	var w [8]byte
	binary.LittleEndian.PutUint64(w[:], v)
	e.buf = append(e.buf, w[:]...)
}

// I64 appends a little-endian int64 (two's complement).
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 by its IEEE-754 bits, so round-trips are exact.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Block appends n bytes and returns the appended region for the caller to
// fill directly (e.g. with binary.LittleEndian writes). The bulk seam of the
// sharded snapshot encoders: one Block per record array instead of a
// per-field append per record, so large-N state capture is one grow plus
// streaming stores — and the fill itself can fan out across a worker pool.
// The caller must overwrite every byte of the returned slice (the region is
// not cleared) before the next Enc call; the slice is invalidated by any
// subsequent append.
func (e *Enc) Block(n int) []byte {
	off := len(e.buf)
	if cap(e.buf)-off < n {
		grown := make([]byte, off, (off+n)+(off+n)/2)
		copy(grown, e.buf)
		e.buf = grown
	}
	e.buf = e.buf[: off+n : cap(e.buf)]
	return e.buf[off : off+n]
}

// Bytes appends a length-prefixed byte string.
func (e *Enc) Bytes(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Dec reads one snapshot document. Errors are sticky: after the first
// failure every subsequent read returns the zero value and Err reports the
// cause, so decoding components can read linearly and check once.
type Dec struct {
	buf []byte
	off int
	err error
	// sectEnd is the open section's end offset, or -1.
	sectEnd int
}

// NewDec validates the framing (magic, version, checksum) and returns a
// decoder positioned at the first section.
func NewDec(data []byte) (*Dec, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("wire: snapshot truncated (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.Checksum(body, castagnoli); got != want {
		return nil, fmt.Errorf("wire: snapshot checksum mismatch (got %08x, want %08x)", got, want)
	}
	d := &Dec{buf: body, sectEnd: -1}
	var magic [4]byte
	copy(magic[:], d.take(4))
	if magic != snapMagic {
		return nil, fmt.Errorf("wire: bad snapshot magic %q", magic[:])
	}
	if v := d.U32(); v != SnapVersion {
		return nil, fmt.Errorf("wire: snapshot version %d, this build reads %d", v, SnapVersion)
	}
	return d, d.err
}

// Err reports the first decoding failure, if any.
func (d *Dec) Err() error { return d.err }

// Remaining reports the unread byte count. Decoders of repeated fixed-size
// records check count*size against it before allocating, so a corrupt count
// fails cleanly instead of attempting a huge allocation.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// fail records the first error.
func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// take consumes n raw bytes (nil after an error or on underflow).
func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail("wire: snapshot underflow (need %d bytes at offset %d of %d)", n, d.off, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Begin opens the next section and verifies its tag. The caller must
// consume exactly the section's payload before End.
func (d *Dec) Begin(tag uint32) {
	if d.sectEnd >= 0 {
		d.fail("wire: nested snapshot section %d", tag)
		return
	}
	if got := d.U32(); d.err == nil && got != tag {
		d.fail("wire: snapshot section tag %d, want %d", got, tag)
	}
	n := d.U64()
	if d.err != nil {
		return
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("wire: snapshot section %d overruns document (%d bytes)", tag, n)
		return
	}
	d.sectEnd = d.off + int(n)
}

// End closes the open section, verifying the payload was consumed exactly.
func (d *Dec) End() {
	if d.err != nil {
		d.sectEnd = -1
		return
	}
	if d.sectEnd < 0 {
		d.fail("wire: End without Begin")
		return
	}
	if d.off != d.sectEnd {
		d.fail("wire: snapshot section length mismatch (at %d, section ends %d)", d.off, d.sectEnd)
	}
	d.sectEnd = -1
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean byte; values other than 0 and 1 are corruption.
func (d *Dec) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("wire: snapshot bool out of range")
		return false
	}
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// F64 reads an IEEE-754 float64.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Len reads a length prefix and validates it against the remaining input,
// so corrupt lengths fail cleanly instead of attempting huge allocations.
func (d *Dec) Len() int {
	n := d.U64()
	if d.err == nil && n > uint64(len(d.buf)-d.off) {
		d.fail("wire: snapshot length %d exceeds remaining %d bytes", n, len(d.buf)-d.off)
		return 0
	}
	return int(n)
}

// Count reads a record count and validates count·recordSize against the
// remaining input (dividing, not multiplying, so a corrupt count cannot
// overflow), failing the decoder instead of letting the caller attempt a
// huge allocation. The shared guard for every repeated-record payload.
func (d *Dec) Count(recordSize int, what string) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if recordSize < 1 {
		recordSize = 1
	}
	if n > uint64(d.Remaining()/recordSize) {
		d.fail("wire: snapshot %s count %d exceeds payload", what, n)
		return 0
	}
	return int(n)
}

// Raw consumes n raw payload bytes and returns them WITHOUT copying — the
// decode twin of Enc.Block for bulk record arrays (the caller typically
// parses the region sharded across a worker pool). The slice aliases the
// snapshot document; callers must not retain it past decoding. Returns nil
// (with the decoder failed) on underflow.
func (d *Dec) Raw(n int) []byte { return d.take(n) }

// Bytes reads a length-prefixed byte string (copied out of the document).
func (d *Dec) Bytes() []byte {
	n := d.Len()
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := d.Len()
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
