package wire

import (
	"testing"
	"testing/quick"
)

// allMessages enumerates every logical message value.
func allMessages() []Message {
	var out []Message
	for _, eval := range []bool{false, true} {
		for _, active := range []bool{false, true} {
			for _, color := range []uint8{0, 1} {
				for _, rec := range []bool{false, true} {
					out = append(out, Message{
						InEvalPhase: eval,
						Active:      active,
						Color:       color,
						Recruiting:  rec,
					})
				}
			}
		}
	}
	return out
}

func TestFourBitRoundTrip(t *testing.T) {
	c := FourBit{}
	for _, m := range allMessages() {
		got := c.Decode(c.Encode(m))
		if got != m {
			t.Errorf("round trip %+v -> %+v", m, got)
		}
	}
}

func TestFourBitEncodeInjective(t *testing.T) {
	c := FourBit{}
	seen := make(map[uint8]Message)
	for _, m := range allMessages() {
		b := c.Encode(m)
		if prev, dup := seen[b]; dup {
			t.Errorf("encoding collision: %+v and %+v both encode to %04b", prev, m, b)
		}
		seen[b] = m
	}
}

func TestFourBitWidth(t *testing.T) {
	c := FourBit{}
	for _, m := range allMessages() {
		if b := c.Encode(m); b >= 1<<4 {
			t.Errorf("Encode(%+v) = %d exceeds 4 bits", m, b)
		}
	}
	if c.Bits() != 4 {
		t.Errorf("Bits() = %d, want 4", c.Bits())
	}
}

func TestThreeBitWidth(t *testing.T) {
	c := ThreeBit{}
	for _, m := range allMessages() {
		if b := c.Encode(m); b >= 1<<3 {
			t.Errorf("Encode(%+v) = %d exceeds 3 bits", m, b)
		}
	}
	if c.Bits() != 3 {
		t.Errorf("Bits() = %d, want 3", c.Bits())
	}
}

// validSender reports whether a message could be emitted by a protocol-
// following agent: recruiting implies active and not in the evaluation round
// (the evaluation round never recruits), and inactive agents carry color 0.
func validSender(m Message) bool {
	if m.Recruiting && !m.Active {
		return false
	}
	if m.Recruiting && m.InEvalPhase {
		return false
	}
	if !m.Active && m.Color != 0 {
		return false
	}
	return true
}

// TestThreeBitPreservesProtocolFields verifies that for every message a
// protocol-following agent can send, the three-bit codec preserves every
// field the receiving agent's logic can consume:
//
//   - InEvalPhase always (round-consistency check);
//   - Active always (recruitment and evaluation branches);
//   - Recruiting outside the evaluation round (recruitment branch);
//   - Color whenever the sender is recruiting (color inheritance) or in the
//     evaluation round (color comparison).
func TestThreeBitPreservesProtocolFields(t *testing.T) {
	c := ThreeBit{}
	for _, m := range allMessages() {
		if !validSender(m) {
			continue
		}
		got := c.Decode(c.Encode(m))
		if got.InEvalPhase != m.InEvalPhase {
			t.Errorf("%+v: InEvalPhase lost", m)
		}
		if got.Active != m.Active {
			t.Errorf("%+v: Active lost (got %+v)", m, got)
		}
		if !m.InEvalPhase && got.Recruiting != m.Recruiting {
			t.Errorf("%+v: Recruiting lost (got %+v)", m, got)
		}
		colorNeeded := m.InEvalPhase || m.Recruiting
		if colorNeeded && got.Color != m.Color {
			t.Errorf("%+v: Color lost (got %+v)", m, got)
		}
	}
}

func TestThreeBitDecodeTotal(t *testing.T) {
	// Decoding arbitrary 3-bit patterns (e.g. from adversarially inserted
	// agents) must be total and must respect the recruiting=>active
	// invariant so downstream protocol logic stays coherent.
	c := ThreeBit{}
	for b := uint8(0); b < 1<<3; b++ {
		m := c.Decode(b)
		if m.Recruiting && !m.Active {
			t.Errorf("Decode(%03b) = %+v violates recruiting => active", b, m)
		}
	}
}

func TestThreeBitDeterministic(t *testing.T) {
	c := ThreeBit{}
	f := func(eval, active, rec bool, color uint8) bool {
		m := Message{InEvalPhase: eval, Active: active, Color: color & 1, Recruiting: rec}
		return c.Encode(m) == c.Encode(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodecNames(t *testing.T) {
	if (FourBit{}).Name() != "4bit" {
		t.Error("FourBit name")
	}
	if (ThreeBit{}).Name() != "3bit" {
		t.Error("ThreeBit name")
	}
}
