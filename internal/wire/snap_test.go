package wire

import (
	"bytes"
	"testing"
)

func TestSnapPrimitiveRoundTrip(t *testing.T) {
	e := NewEnc()
	e.Begin(7)
	e.U8(0xAB)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xDEADBEEF)
	e.U64(0x0123456789ABCDEF)
	e.I64(-42)
	e.F64(-0.12345678901234567)
	e.Bytes([]byte{1, 2, 3})
	e.Bytes(nil)
	e.String("époch")
	e.End()
	blob := e.Finish()

	d, err := NewDec(blob)
	if err != nil {
		t.Fatal(err)
	}
	d.Begin(7)
	if got := d.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := d.U64(); got != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", got)
	}
	if got := d.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := d.F64(); got != -0.12345678901234567 {
		t.Errorf("F64 = %v", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	if got := d.Bytes(); len(got) != 0 {
		t.Errorf("nil Bytes = %v", got)
	}
	if got := d.String(); got != "époch" {
		t.Errorf("String = %q", got)
	}
	d.End()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapRejectsCorruption(t *testing.T) {
	e := NewEnc()
	e.Begin(1)
	e.U64(99)
	e.End()
	blob := e.Finish()

	if _, err := NewDec(blob[:5]); err == nil {
		t.Error("truncated document accepted")
	}
	for _, flip := range []int{0, 4, 9, len(blob) - 1} {
		c := append([]byte(nil), blob...)
		c[flip] ^= 0x01
		if _, err := NewDec(c); err == nil {
			t.Errorf("corruption at byte %d accepted", flip)
		}
	}
}

func TestSnapSectionMisuse(t *testing.T) {
	e := NewEnc()
	e.Begin(3)
	e.U64(1)
	e.End()
	blob := e.Finish()

	// Wrong tag.
	d, err := NewDec(blob)
	if err != nil {
		t.Fatal(err)
	}
	d.Begin(4)
	if d.Err() == nil {
		t.Error("wrong section tag accepted")
	}

	// Under-consumed section.
	d, _ = NewDec(blob)
	d.Begin(3)
	d.End()
	if d.Err() == nil {
		t.Error("under-consumed section accepted")
	}

	// Length prefix past the document.
	e2 := NewEnc()
	e2.Begin(1)
	e2.U64(1 << 60) // claims a huge byte string
	e2.End()
	blob2 := e2.Finish()
	d, _ = NewDec(blob2)
	d.Begin(1)
	if d.Bytes(); d.Err() == nil {
		t.Error("oversized length prefix accepted")
	}
}

func TestSnapEncoderPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("nested Begin", func() {
		e := NewEnc()
		e.Begin(1)
		e.Begin(2)
	})
	expectPanic("End without Begin", func() { NewEnc().End() })
	expectPanic("Finish with open section", func() {
		e := NewEnc()
		e.Begin(1)
		e.Finish()
	})
}
