package sim

import (
	"fmt"
	"runtime"
	"testing"

	"popstab/internal/adversary"
	"popstab/internal/match"
	"popstab/internal/population"
	"popstab/internal/protocol"
)

// trajectory captures everything RunRound reports plus a census snapshot,
// so two runs comparing equal means the simulations are bit-identical at
// the observable level.
type trajectory struct {
	reports  []RoundReport
	censuses []population.Census
}

func runTrajectory(t *testing.T, cfg Config, rounds int) trajectory {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tr trajectory
	for i := 0; i < rounds; i++ {
		tr.reports = append(tr.reports, e.RunRound())
		tr.censuses = append(tr.censuses, e.Census())
	}
	return tr
}

func assertTrajectoriesEqual(t *testing.T, a, b trajectory, label string) {
	t.Helper()
	for i := range a.reports {
		if a.reports[i] != b.reports[i] {
			t.Fatalf("%s: RoundReport diverged at round %d:\n  a=%+v\n  b=%+v",
				label, i, a.reports[i], b.reports[i])
		}
		if fmt.Sprintf("%+v", a.censuses[i]) != fmt.Sprintf("%+v", b.censuses[i]) {
			t.Fatalf("%s: Census diverged at round %d:\n  a=%+v\n  b=%+v",
				label, i, a.censuses[i], b.censuses[i])
		}
	}
}

// TestParallelDeterminism is the golden determinism guarantee of the
// parallel round engine: identical RoundReport and Census trajectories for
// Workers ∈ {1, 2, 3, 8}, with and without an adversary. The worker pool
// shards the compose/step phases, so any order dependence in per-agent
// randomness or any cross-shard interference would show up here (and under
// -race, which this test also serves as the workload for).
func TestParallelDeterminism(t *testing.T) {
	p := fastParams(t)
	arms := []struct {
		name string
		cfg  Config
	}{
		{"clean", Config{Seed: 101}},
		{"greedy-adversary", Config{Seed: 102, K: 3, Adversary: adversary.NewGreedy()}},
		{"after-step-timing", Config{Seed: 103, K: 2, Adversary: adversary.NewBenignInserter(), AdversaryAfterStep: true}},
	}
	for _, arm := range arms {
		t.Run(arm.name, func(t *testing.T) {
			serial := arm.cfg
			serial.Params = p
			serial.Protocol = protocol.MustNew(p)
			serial.Workers = 1
			want := runTrajectory(t, serial, 2*p.T)
			for _, w := range []int{2, 3, 8} {
				cfg := arm.cfg
				cfg.Params = p
				cfg.Protocol = protocol.MustNew(p)
				cfg.Workers = w
				got := runTrajectory(t, cfg, 2*p.T)
				assertTrajectoriesEqual(t, want, got, fmt.Sprintf("workers=%d", w))
			}
		})
	}
}

// TestParallelCounters asserts the protocol's atomic event counters reach
// identical totals across worker counts (the events are per-agent
// deterministic; only increment order varies).
func TestParallelCounters(t *testing.T) {
	p := fastParams(t)
	run := func(workers int) protocol.Counters {
		pr := protocol.MustNew(p)
		e, err := New(Config{Params: p, Protocol: pr, Seed: 55, Workers: workers,
			K: 2, Adversary: adversary.NewGreedy()})
		if err != nil {
			t.Fatal(err)
		}
		e.RunRounds(2 * p.T)
		return *pr.Counters()
	}
	want := run(1)
	if want.Leaders == 0 || want.Recruits == 0 {
		t.Fatalf("degenerate run, counters empty: %+v", want)
	}
	for _, w := range []int{2, 8} {
		if got := run(w); got != want {
			t.Errorf("workers=%d counters diverged:\n  got  %+v\n  want %+v", w, got, want)
		}
	}
}

// TestWorkersValidation rejects negative worker counts and accepts the
// NumCPU default.
func TestWorkersValidation(t *testing.T) {
	p := fastParams(t)
	pr := protocol.MustNew(p)
	if _, err := New(Config{Params: p, Protocol: pr, Workers: -1}); err == nil {
		t.Error("New accepted negative Workers")
	}
	e, err := New(Config{Params: p, Protocol: pr})
	if err != nil {
		t.Fatal(err)
	}
	if e.workers < 1 {
		t.Errorf("default workers %d", e.workers)
	}
}

// TestShardCapSmallPopulation drives a population far below minShardAgents
// with many workers: the shard cap must degrade to the serial path without
// changing behavior (covered by determinism) or panicking on zero shards.
func TestShardCapSmallPopulation(t *testing.T) {
	p := fastParams(t)
	pr := protocol.MustNew(p)
	e, err := New(Config{Params: p, Protocol: pr, Seed: 9, Workers: 16, InitialSize: 37})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*p.T; i++ {
		e.RunRound()
	}
	if e.Size() < 0 {
		t.Fatal("impossible")
	}
}

// TestScratchGrowthSlack documents the 1.5× scratch-buffer growth policy:
// after a forced growth step the buffers must have room beyond the exact
// population size.
func TestScratchGrowthSlack(t *testing.T) {
	p := fastParams(t)
	pr := protocol.MustNew(p)
	e := MustNew(Config{Params: p, Protocol: pr, Seed: 1})
	e.RunRound()
	e.ForceResize(2 * p.N)
	e.RunRound()
	if got, min := cap(e.msgs), 2*p.N; got < min+min/2 {
		t.Errorf("scratch capacity %d after growth to %d, want >= %d", got, min, min+min/2)
	}
}

// workerRecorder is a Matcher that records the worker count the engine
// hands it through the match.WorkerSetter seam.
type workerRecorder struct {
	match.Matcher
	got int
}

func (w *workerRecorder) SetWorkers(n int) { w.got = n }

// TestEngineWiresMatcherWorkers pins the WorkerSetter plumbing: the engine
// propagates its resolved worker count (including the NumCPU default for
// Workers = 0) to matchers that shard their own matching phase.
func TestEngineWiresMatcherWorkers(t *testing.T) {
	p := fastParams(t)
	for _, workers := range []int{0, 1, 3} {
		pr, err := protocol.New(p)
		if err != nil {
			t.Fatal(err)
		}
		u, err := match.NewUniform(p.Gamma)
		if err != nil {
			t.Fatal(err)
		}
		rec := &workerRecorder{Matcher: match.FromScheduler(u)}
		if _, err := New(Config{Params: p, Protocol: pr, Seed: 1, Workers: workers, Matcher: rec}); err != nil {
			t.Fatal(err)
		}
		want := workers
		if want == 0 {
			want = runtime.NumCPU()
		}
		if rec.got != want {
			t.Errorf("Workers=%d: matcher got %d, want %d", workers, rec.got, want)
		}
	}
}
