package sim

import (
	"fmt"
	"runtime"
	"testing"

	"popstab/internal/adversary"
	"popstab/internal/match"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/protocol"
)

// pulsedAdversary wraps a strategy so it acts only every `period` rounds —
// the overlap test needs rounds WITH staged alterations (the prebucket must
// be dropped) interleaved with rounds WITHOUT (the prebucket must be
// consumed), in one trajectory.
type pulsedAdversary struct {
	inner  adversary.Adversary
	period int
	calls  int
}

func (a *pulsedAdversary) Name() string { return "pulsed+" + a.inner.Name() }

func (a *pulsedAdversary) Act(v adversary.View, m adversary.Mutator, src *prng.Source) {
	a.calls++
	if a.calls%a.period == 1 {
		a.inner.Act(v, m, src)
	}
}

// TestAdversaryOverlapGolden is the golden guarantee of the adversary ∥
// bucketing overlap (DESIGN.md §12): a spatial round with both an adversary
// turn and matching produces the identical trajectory at Workers 1 (where
// pool.Go runs the prebucket inline — provably sequential) and Workers > 1
// (where the prebucket overlaps the staging half on the aux goroutine),
// across rounds that alter the population (prebucket dropped) and rounds
// that stage nothing (prebucket consumed).
func TestAdversaryOverlapGolden(t *testing.T) {
	p := fastParams(t)
	center := population.Point{X: 0.5, Y: 0.5}
	run := func(workers int) ([]RoundReport, []string) {
		tor, err := match.NewTorus(0.015625)
		if err != nil {
			t.Fatal(err)
		}
		e := MustNew(Config{
			Params: p, Protocol: protocol.MustNew(p), Seed: 42, Workers: workers,
			Matcher:   tor,
			Adversary: &pulsedAdversary{inner: adversary.NewPatchCombo(center, 0.05, nil), period: 3},
			K:         32,
		})
		defer e.Close()
		var reps []RoundReport
		var censuses []string
		for r := 0; r < 12; r++ {
			reps = append(reps, e.RunRound())
			censuses = append(censuses, fmt.Sprintf("%+v", e.Census()))
		}
		return reps, censuses
	}
	wantReps, wantCens := run(1)
	altered, quiet := 0, 0
	for _, r := range wantReps {
		if r.AdvInserted+r.AdvDeleted > 0 {
			altered++
		} else {
			quiet++
		}
	}
	if altered == 0 || quiet == 0 {
		t.Fatalf("trajectory must mix altering (%d) and quiet (%d) adversary rounds", altered, quiet)
	}
	for _, w := range []int{2, 4, runtime.NumCPU()} {
		gotReps, gotCens := run(w)
		for i := range wantReps {
			if gotReps[i] != wantReps[i] {
				t.Fatalf("workers=%d: round %d report diverged:\ngot  %+v\nwant %+v", w, i, gotReps[i], wantReps[i])
			}
			if gotCens[i] != wantCens[i] {
				t.Fatalf("workers=%d: round %d census diverged:\ngot  %s\nwant %s", w, i, gotCens[i], wantCens[i])
			}
		}
	}
}

// TestOverlapPrebucketConsumed pins that consuming a prebucket is
// invisible: with a do-nothing adversary, a K > 0 engine (which prebuckets
// every round and consumes the result, since nothing is ever altered) walks
// the identical trajectory as a K = 0 engine (which never prebuckets at
// all).
func TestOverlapPrebucketConsumed(t *testing.T) {
	p := fastParams(t)
	run := func(k int) []RoundReport {
		tor, err := match.NewTorus(0.015625)
		if err != nil {
			t.Fatal(err)
		}
		e := MustNew(Config{
			Params: p, Protocol: protocol.MustNew(p), Seed: 7, Workers: 2,
			Matcher: tor, Adversary: adversary.None{}, K: k,
		})
		defer e.Close()
		reps := make([]RoundReport, 8)
		for r := range reps {
			reps[r] = e.RunRound()
		}
		st := tor.PipelineStats()
		if st.Samples != uint64(len(reps)) {
			t.Fatalf("K=%d: samples = %d, want %d", k, st.Samples, len(reps))
		}
		return reps
	}
	want := run(0)
	got := run(8)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round %d: prebucketed trajectory diverged:\ngot  %+v\nwant %+v", i, got[i], want[i])
		}
	}
}
