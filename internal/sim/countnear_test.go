package sim

import (
	"math"
	"testing"

	"popstab/internal/adversary"
	"popstab/internal/match"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/protocol"
)

// viewProbe is an adversary that hands its View to a callback — the unit
// harness for View queries against a live engine.
type viewProbe struct {
	fn func(v adversary.View)
}

func (p *viewProbe) Name() string                                                { return "probe" }
func (p *viewProbe) Act(v adversary.View, m adversary.Mutator, src *prng.Source) { p.fn(v) }

// probeEngine builds a tiny engine over the given matcher (nil = mixed) and
// runs one round so the probe observes the bound View.
func probeEngine(t *testing.T, m match.Matcher, fn func(v adversary.View)) {
	t.Helper()
	p := fastParams(t)
	e := MustNew(Config{
		Params: p, Protocol: protocol.MustNew(p), Seed: 5, Workers: 1,
		Matcher: m, Adversary: &viewProbe{fn: fn}, K: 1, InitialSize: 512,
	})
	e.RunRound()
}

// TestCountNearMatchesFindNear pins CountNear against the FindNear
// reference on every spatial geometry: for a grid of balls the count must
// equal the number of indices FindNear reports (unlimited).
func TestCountNearMatchesFindNear(t *testing.T) {
	sigma := 1e-3
	mk := func(name string) match.Matcher {
		var (
			m   match.Matcher
			err error
		)
		switch name {
		case "torus":
			m, err = match.NewTorus(sigma)
		case "grid":
			m, err = match.NewGrid(sigma)
		case "ring":
			m, err = match.NewRing(sigma)
		case "smallworld":
			m, err = match.NewSmallWorld(sigma, 0.2)
		}
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	for _, name := range []string{"torus", "grid", "ring", "smallworld"} {
		t.Run(name, func(t *testing.T) {
			probeEngine(t, mk(name), func(v adversary.View) {
				if !v.HasSpace() {
					t.Fatal("spatial view reports no space")
				}
				for _, center := range []population.Point{
					{X: 0.5, Y: 0.5}, {X: 0.01, Y: 0.99}, {X: 0.875}, {},
				} {
					for _, r := range []float64{0, 0.01, 0.1, 0.45, 2} {
						got := v.CountNear(center, r)
						want := len(v.FindNear(nil, -1, center, r))
						if got != want {
							t.Errorf("CountNear(%v, %v) = %d, FindNear found %d", center, r, got, want)
						}
					}
				}
				// r covering the whole space counts everyone.
				if got := v.CountNear(population.Point{X: 0.5, Y: 0.5}, 2); got != v.Len() {
					t.Errorf("full-space count %d, population %d", got, v.Len())
				}
			})
		})
	}
}

// TestCountNearExact pins exact counts per geometry on hand-placed
// positions, exercising each metric's distinctive feature: the torus and
// ring wrap, the grid does not.
func TestCountNearExact(t *testing.T) {
	cases := []struct {
		name   string
		mk     func() (match.Matcher, error)
		center population.Point
		r      float64
		// layout places agent i; in-ball agents are the first `want`.
		layout func(i int) population.Point
		want   int
	}{
		{
			name:   "ring wraps across 1",
			mk:     func() (match.Matcher, error) { return match.NewRing(1e-3) },
			center: population.Point{X: 0.0},
			r:      0.1,
			layout: func(i int) population.Point {
				if i < 3 {
					// 0.95, 0.05, 0.99: all within wrapped arc 0.1 of 0.
					return population.Point{X: []float64{0.95, 0.05, 0.99}[i]}
				}
				return population.Point{X: 0.5 + float64(i)*1e-4}
			},
			want: 3,
		},
		{
			name:   "torus wraps both axes",
			mk:     func() (match.Matcher, error) { return match.NewTorus(1e-3) },
			center: population.Point{X: 0.02, Y: 0.98},
			r:      0.1,
			layout: func(i int) population.Point {
				if i < 2 {
					// Across both wrap seams from the center.
					return []population.Point{{X: 0.98, Y: 0.02}, {X: 0.05, Y: 0.95}}[i]
				}
				return population.Point{X: 0.5, Y: 0.5}
			},
			want: 2,
		},
		{
			name:   "grid does not wrap",
			mk:     func() (match.Matcher, error) { return match.NewGrid(1e-3) },
			center: population.Point{X: 0.02, Y: 0.02},
			r:      0.1,
			layout: func(i int) population.Point {
				if i < 2 {
					return []population.Point{{X: 0.05, Y: 0.05}, {X: 0.0, Y: 0.1}}[i]
				}
				// Would be in range under wraparound, must NOT count.
				return population.Point{X: 0.98, Y: 0.98}
			},
			want: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			const n = 16
			probeEngine(t, m, func(v adversary.View) {
				sp := m.(match.Space)
				for i := 0; i < v.Len(); i++ {
					sp.Positions().SetAt(i, tc.layout(i%n))
				}
				inBall := 0
				for i := 0; i < v.Len(); i++ {
					if i%n < tc.want {
						inBall++
					}
				}
				if got := v.CountNear(tc.center, tc.r); got != inBall {
					t.Errorf("CountNear = %d, want %d", got, inBall)
				}
			})
		})
	}
}

// TestCountNearFlatland pins the position-blind default: −1, distinct from
// an empty ball, on the mixed topology and on the Flatland helper itself.
func TestCountNearFlatland(t *testing.T) {
	probeEngine(t, nil, func(v adversary.View) {
		if v.HasSpace() {
			t.Fatal("mixed view reports space")
		}
		if got := v.CountNear(population.Point{X: 0.5}, math.Inf(1)); got != -1 {
			t.Errorf("mixed CountNear = %d, want -1", got)
		}
	})
	var f adversary.Flatland
	if got := f.CountNear(population.Point{}, 1); got != -1 {
		t.Errorf("Flatland.CountNear = %d, want -1", got)
	}
}
