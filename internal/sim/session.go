// Snapshot and restore: the engine as a steppable, checkpointable session.
//
// A snapshot captures every piece of mutable per-run state the engine and
// its pluggable components carry — agent states, position side-arrays
// (including queued placements), the scheduler/adversary/matcher/probe
// randomness streams, the counter-PRNG cursors (the global round, from
// which the per-agent counter streams are keyed), program side-arrays
// (rogue tags, cooldowns, private infiltration streams), protocol event
// counters, and adversary alternation state. Everything NOT captured is a
// pure function of the configuration and seed (stream split order, matcher
// keys, protocol parameters), so restoring a snapshot into an engine built
// from the same configuration reproduces the exact process state: the
// restored run's subsequent trajectory is bit-identical to the
// uninterrupted run, at every worker count (DESIGN.md §8 gives the
// argument; TestSnapshotResume* enforce it).
//
// Serialization rides internal/wire's snapshot codec: a framed, versioned,
// checksummed document of tagged sections, one per component.
package sim

import (
	"fmt"
	"time"

	"popstab/internal/adversary"
	"popstab/internal/match"
	"popstab/internal/wire"
)

// StateCodec is implemented by programs (Steppers or ExtendedSteppers) that
// carry mutable per-run state: side-arrays, accumulated counters, private
// streams. The engine's snapshot captures it; programs that are pure
// functions of the agent states (the baselines) simply don't implement it.
// Wrapper programs delegate to their inner program so the encoding layout
// is a pure function of the configuration.
type StateCodec interface {
	// EncodeState appends the program's mutable state to a snapshot.
	EncodeState(e *wire.Enc)
	// DecodeState reinstates state captured by EncodeState on a program
	// built from the same configuration.
	DecodeState(d *wire.Dec) error
}

// EncodeState implements StateCodec by delegation to the wrapped protocol.
func (sr *SelfishReplicator) EncodeState(e *wire.Enc) {
	if c, ok := sr.Inner.(StateCodec); ok {
		c.EncodeState(e)
	}
}

// DecodeState implements StateCodec.
func (sr *SelfishReplicator) DecodeState(d *wire.Dec) error {
	if c, ok := sr.Inner.(StateCodec); ok {
		return c.DecodeState(d)
	}
	return nil
}

// Section tags of the engine snapshot document, in encoding order.
const (
	tagIdentity   uint32 = 1
	tagEngine     uint32 = 2
	tagPopulation uint32 = 3
	tagMatcher    uint32 = 4
	tagProgram    uint32 = 5
	tagAdversary  uint32 = 6
)

// programSignature names the active program's concrete shape (wrapper
// chain included) for the snapshot identity check: restoring a paper-
// protocol snapshot into an attempt1 engine, or a selfish-wrapped one into
// a plain one, must fail loudly, even though both sides would decode.
func (e *Engine) programSignature() string {
	if e.xproto != nil {
		return signatureOf(e.xproto)
	}
	return signatureOf(e.proto)
}

// signatureOf renders a program's type, descending through the wrappers
// this package knows about.
func signatureOf(p any) string {
	if sr, ok := p.(*SelfishReplicator); ok {
		return fmt.Sprintf("%T[%s]", sr, signatureOf(sr.Inner))
	}
	return fmt.Sprintf("%T", p)
}

// programCodec reports the active program's StateCodec, if it has one.
func (e *Engine) programCodec() StateCodec {
	if e.xproto != nil {
		c, _ := e.xproto.(StateCodec)
		return c
	}
	c, _ := e.proto.(StateCodec)
	return c
}

// Snapshot serializes the engine's full mutable state. It must be called
// between rounds (the engine is single-goroutine; any caller able to invoke
// it is between rounds by construction). The bytes are self-checking and
// platform-independent; Restore reinstates them into an engine built from
// the same configuration.
func (e *Engine) Snapshot() []byte {
	// Timing only — RoundStats stays out of the snapshot bytes, so
	// observability never perturbs the §8 determinism contract (a restored
	// engine restarts its accounting at zero).
	t := time.Now()
	defer func() {
		e.stats.SnapshotNS += sinceNS(t)
		e.stats.Snapshots++
	}()
	enc := wire.NewEnc()

	matcherState, _ := e.matcher.(match.Stateful)
	progState := e.programCodec()
	advState, _ := e.adv.(adversary.Stateful)

	// Identity: enough configuration fingerprint to reject a restore into
	// a differently-built engine with a clear error instead of corrupt
	// state. The presence flags pin the optional-section layout.
	enc.Begin(tagIdentity)
	enc.U64(e.cfg.Seed)
	enc.U64(uint64(e.cfg.Params.N))
	enc.U64(uint64(e.epochLen))
	enc.U64(uint64(e.cfg.K))
	enc.String(e.matcher.Name())
	enc.String(e.programSignature())
	// The fingerprint renders the whole adversary configuration —
	// strategy names plus the parameters names omit (patch centers,
	// attack windows), recursively through the wrappers.
	enc.String(adversary.FingerprintOf(e.adv))
	enc.Bool(e.xproto != nil)
	enc.Bool(matcherState != nil)
	enc.Bool(progState != nil)
	enc.Bool(advState != nil)
	enc.End()

	enc.Begin(tagEngine)
	enc.U64(e.round)
	for _, w := range e.schedSrc.State() {
		enc.U64(w)
	}
	for _, w := range e.advSrc.State() {
		enc.U64(w)
	}
	enc.End()

	enc.Begin(tagPopulation)
	e.pop.EncodeState(enc)
	enc.End()

	if matcherState != nil {
		enc.Begin(tagMatcher)
		matcherState.EncodeState(enc)
		enc.End()
	}
	if progState != nil {
		enc.Begin(tagProgram)
		progState.EncodeState(enc)
		enc.End()
	}
	if advState != nil {
		enc.Begin(tagAdversary)
		advState.EncodeState(enc)
		enc.End()
	}
	return enc.Finish()
}

// Restore reinstates a snapshot taken from an engine built from the same
// configuration (same seed, parameters, matcher, program shape, and
// adversary). On success the engine continues exactly where the
// snapshotted one would have: every subsequent round is bit-identical, for
// every worker count — Workers remains a pure throughput knob across the
// snapshot boundary. On error the engine must be discarded (a partial
// restore is not rolled back).
func (e *Engine) Restore(data []byte) error {
	d, err := wire.NewDec(data)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}

	matcherState, _ := e.matcher.(match.Stateful)
	progState := e.programCodec()
	advState, _ := e.adv.(adversary.Stateful)

	d.Begin(tagIdentity)
	seed := d.U64()
	n := d.U64()
	epochLen := d.U64()
	k := d.U64()
	matcherName := d.String()
	progSig := d.String()
	advName := d.String()
	extended := d.Bool()
	hasMatcher := d.Bool()
	hasProg := d.Bool()
	hasAdv := d.Bool()
	d.End()
	if err := d.Err(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	switch {
	case seed != e.cfg.Seed:
		return fmt.Errorf("sim: snapshot seed %d, engine built with %d", seed, e.cfg.Seed)
	case int(n) != e.cfg.Params.N:
		return fmt.Errorf("sim: snapshot N %d, engine built with %d", n, e.cfg.Params.N)
	case int(epochLen) != e.epochLen:
		return fmt.Errorf("sim: snapshot epoch length %d, engine has %d", epochLen, e.epochLen)
	case int(k) != e.cfg.K:
		return fmt.Errorf("sim: snapshot budget K %d, engine has %d", k, e.cfg.K)
	case matcherName != e.matcher.Name():
		return fmt.Errorf("sim: snapshot matcher %q, engine has %q", matcherName, e.matcher.Name())
	case progSig != e.programSignature():
		return fmt.Errorf("sim: snapshot program %q, engine runs %q", progSig, e.programSignature())
	case advName != adversary.FingerprintOf(e.adv):
		return fmt.Errorf("sim: snapshot adversary %q, engine has %q", advName, adversary.FingerprintOf(e.adv))
	case extended != (e.xproto != nil):
		return fmt.Errorf("sim: snapshot program shape (extended=%v) does not match engine", extended)
	case hasMatcher != (matcherState != nil):
		return fmt.Errorf("sim: snapshot matcher-state presence does not match engine")
	case hasProg != (progState != nil):
		return fmt.Errorf("sim: snapshot program-state presence does not match engine")
	case hasAdv != (advState != nil):
		return fmt.Errorf("sim: snapshot adversary-state presence does not match engine")
	}

	d.Begin(tagEngine)
	round := d.U64()
	var sst, ast [4]uint64
	for i := range sst {
		sst[i] = d.U64()
	}
	for i := range ast {
		ast[i] = d.U64()
	}
	d.End()
	if err := d.Err(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}

	d.Begin(tagPopulation)
	if err := e.pop.DecodeState(d); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	d.End()

	if matcherState != nil {
		d.Begin(tagMatcher)
		if err := matcherState.DecodeState(d); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		d.End()
	}
	if progState != nil {
		d.Begin(tagProgram)
		if err := progState.DecodeState(d); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		d.End()
	}
	if advState != nil {
		d.Begin(tagAdversary)
		if err := advState.DecodeState(d); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		d.End()
	}
	if err := d.Err(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}

	// Cross-component alignment: every side-array restored from the
	// snapshot — positions, rogue tags, any future tracker — must agree
	// with the population (a crafted or mixed-up document whose sections
	// decode cleanly individually fails here, not as a panic mid-round).
	if err := e.pop.CheckAligned(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}

	e.round = round
	e.schedSrc.SetState(sst)
	e.advSrc.SetState(ast)
	return nil
}
