// Package sim implements the synchronous round engine of the population
// model: it owns the population, samples the per-round communication
// matching, delivers messages, applies protocol decisions, and gives the
// adversary its budgeted turn.
//
// One round proceeds as (see DESIGN.md §5):
//
//  1. the program's StartRound hook runs, if any (e.g. rogue infiltration);
//  2. the adversary observes all agent memory and stages up to K
//     insertions/deletions, which are applied before the matching is drawn
//     (the adversary never knows the schedule in advance, §2);
//  3. the matcher samples the round's pairing — a uniformly random matching
//     covering at least a γ fraction of agents in the well-mixed model, or a
//     population-state-aware matching such as nearest-neighbor on the torus;
//  4. every agent composes its outgoing message from its pre-round state;
//  5. messages are delivered simultaneously; unmatched agents receive ⊥;
//  6. every agent executes one protocol step, yielding keep/die/split (and,
//     for extended programs, optionally removing its matched neighbor);
//  7. deaths, neighbor-kills and births are applied in one pass; daughters
//     act next round.
//
// The engine is generic over two seams, which is what lets the §1.2
// extensions share one round loop instead of forking it (they used to be
// three separate engines):
//
//   - the communication model is a match.Matcher — plain schedulers adapt
//     via match.FromScheduler; spatial matchers (match.Torus) attach a
//     population.Positions side-array at Bind time so daughter placement and
//     adversarial insertion stay aligned with the agent states;
//   - the agent program is a Stepper, or an ExtendedStepper for programs
//     that carry per-slot side state and use the neighbor-removal power
//     (internal/rogue's honest/rogue overlay).
//
// The engine is deterministic given its seed: matcher, adversary, and binder
// draw from independent split-off streams, and every protocol coin flip
// comes from a counter-based stream keyed on (seed, global round, agent
// slot), so swapping the adversary never perturbs protocol coin flips
// (paired comparison across experiment arms) and per-agent randomness is
// independent of iteration order. That order-independence is what lets the
// Compose and Step phases shard across a persistent worker pool
// (Config.Workers, internal/pool): simulation output is bit-identical for
// every worker count, including the serial Workers=1 path, for every matcher
// and program. The apply phase shards too, through the population's
// prefix-sum apply plan, and the randomness-free Compose phase overlaps the
// matching (the two touch disjoint state — DESIGN.md §10). The adversary's
// turn stays serial — sequential by its budget semantics — but its staging
// half overlaps the spatial matcher's bucketing phase (DESIGN.md §12), and
// the greedy walk that finishes spatial matching runs speculatively in
// parallel with serial validation (bit-identical, match/spatial.go). Engines
// own their pool: Close releases its goroutines (a closed engine keeps
// working, serially), and dropped engines are covered by a runtime cleanup.
// See DESIGN.md §5 for the phase structure and §10 for the parallel design.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/metrics"
	"time"

	"popstab/internal/adversary"
	"popstab/internal/agent"
	"popstab/internal/match"
	"popstab/internal/params"
	"popstab/internal/pool"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/wire"
)

// Stepper is the per-agent protocol the engine drives. internal/protocol
// implements it for the paper's protocol; internal/baseline implements it
// for the comparison protocols.
//
// Concurrency contract: when the engine runs with Workers > 1, Compose and
// Step are invoked concurrently from multiple goroutines, each agent from
// exactly one goroutine per round, with a barrier between the Compose and
// Step phases. Implementations may freely mutate the *agent.State they are
// handed but must keep any shared mutable state of their own (e.g. event
// counters) race-free; the src passed to Step is a private per-agent stream
// owned by the calling goroutine.
type Stepper interface {
	// EpochLen reports the protocol's epoch length in rounds (1 for
	// epoch-free protocols).
	EpochLen() int
	// Compose encodes the message agent s sends this round.
	Compose(s *agent.State) uint8
	// Decode decodes a received message byte.
	Decode(b uint8) wire.Message
	// Step executes one round for one agent and reports its fate.
	Step(s *agent.State, nbr wire.Message, hasNbr bool, src *prng.Source) population.Action
}

// ExtendedStepper is the indexed generalization of Stepper for programs that
// carry per-slot extension state outside agent.State (a side-array kept
// aligned via population.Tracker) and that may use the paper's §1.2
// agent-removal power. internal/rogue's honest/rogue overlay is the
// canonical implementation.
//
// The Stepper concurrency contract applies unchanged: ComposeAt and StepAt
// run concurrently across shards, each slot from exactly one goroutine per
// round. StepAt may additionally read the *matched neighbor's* extension
// state (slot j); implementations must confine cross-slot writes to the
// returned killNbr channel, which has a unique writer per victim (the
// victim's matched neighbor) and is only read by the serial apply phase.
type ExtendedStepper interface {
	// EpochLen reports the protocol's epoch length in rounds.
	EpochLen() int
	// Decode decodes a received message byte.
	Decode(b uint8) wire.Message
	// ComposeAt encodes the message agent slot i sends this round.
	ComposeAt(i int, s *agent.State) uint8
	// StepAt executes one round for slot i, matched with slot j (j < 0 and
	// hasNbr false when unmatched). Returning killNbr true removes the
	// matched neighbor at the end of the round, overriding the victim's own
	// action (the victim is gone before it can divide).
	StepAt(i, j int, s *agent.State, nbr wire.Message, hasNbr bool, src *prng.Source) (act population.Action, killNbr bool)
}

// RoundStarter is an optional program capability: StartRound runs at the top
// of every round, before the adversary's turn, on the engine's goroutine.
// internal/rogue uses it for continuous infiltration at epoch boundaries.
type RoundStarter interface {
	StartRound(pop *population.Population, round uint64)
}

// Config assembles an engine.
type Config struct {
	// Params is the model parameterization (N, γ, α, epoch shape).
	Params params.Params
	// Protocol is the per-agent program. Exactly one of Protocol and
	// Extended must be set.
	Protocol Stepper
	// Extended is the indexed per-agent program with side state and the
	// neighbor-removal channel (see ExtendedStepper). Exactly one of
	// Protocol and Extended must be set.
	Extended ExtendedStepper
	// Scheduler samples each round's matching from the population size
	// alone. Defaults to match.Uniform{Gamma: Params.Gamma}. At most one of
	// Scheduler and Matcher may be set.
	Scheduler match.Scheduler
	// Matcher is the population-state-aware communication model (e.g.
	// match.Torus); it overrides Scheduler. Matchers implementing
	// match.Binder are bound to the population at construction.
	Matcher match.Matcher
	// Adversary attacks each round. Defaults to adversary.None.
	Adversary adversary.Adversary
	// K is the adversary's per-round alteration budget.
	K int
	// Seed derives all randomness.
	Seed uint64
	// InitialSize overrides the starting population (default Params.N).
	InitialSize int
	// AdversaryAfterStep moves the adversary's turn to the end of the
	// round, after protocol actions are applied (ablation A3). The default
	// (false) gives the adversary its turn at the start of the round,
	// before the matching is sampled.
	AdversaryAfterStep bool
	// Workers sets the number of goroutines sharding the Compose and Step
	// phases: 0 means runtime.NumCPU(), 1 forces the serial path, and
	// negative values are rejected. Simulation output is bit-identical
	// across all worker counts; Workers is purely a throughput knob.
	Workers int
}

// RoundReport summarizes one completed round.
type RoundReport struct {
	// Round is the global index of the completed round (0-based).
	Round uint64
	// SizeBefore and SizeAfter are the population sizes at the round's
	// start (after the StartRound hook, before the adversary) and end.
	SizeBefore, SizeAfter int
	// Births and Deaths count protocol splits and deaths (consistency
	// deaths and neighbor-kills included).
	Births, Deaths int
	// Kills counts agents removed through the extended program's
	// neighbor-removal channel this round (also included in Deaths).
	Kills int
	// AdvInserted and AdvDeleted count the adversary's alterations.
	AdvInserted, AdvDeleted int
}

// EpochReport aggregates the rounds of one protocol epoch.
type EpochReport struct {
	// Epoch is the 0-based epoch index.
	Epoch int
	// StartSize and EndSize bracket the epoch.
	StartSize, EndSize int
	// MinSize and MaxSize are the extremes seen at round boundaries.
	MinSize, MaxSize int
	// Births, Deaths, Kills, AdvInserted, AdvDeleted are summed over the
	// epoch.
	Births, Deaths, Kills, AdvInserted, AdvDeleted int
}

// Delta reports the net population change over the epoch.
func (e EpochReport) Delta() int { return e.EndSize - e.StartSize }

// Engine drives one simulation. Create with New; not safe for concurrent
// use.
type Engine struct {
	cfg     Config
	pop     *population.Population
	matcher match.Matcher
	// space is the matcher's spatial self-description (nil for non-spatial
	// matchers): the engine threads it into the adversary's View and Budget
	// so positions are adversary-visible state, per the model.
	space match.Space
	adv   adversary.Adversary
	// preb is the matcher's prebucket seam (nil when the matcher has none):
	// rounds with an adversary turn overlap the spatial bucketing phase with
	// the serial adversary staging (DESIGN.md §12).
	preb    match.Prebucketer
	workers int
	// pool is the persistent worker pool behind every sharded phase
	// (compose/step, the apply-plan scatter, the spatial matching pipeline,
	// snapshot encoding) and the compose/matching overlap. Owned by the
	// engine: Close releases it, and a runtime cleanup releases it for
	// engines that are simply dropped (hibernated/reaped sessions).
	pool *pool.Pool

	// proto and xproto are the two program seams; exactly one is non-nil.
	proto  Stepper
	xproto ExtendedStepper
	// starter is the optional per-round hook of the program.
	starter RoundStarter
	// epochLen caches the program's EpochLen(), read on every round by the
	// epoch/census accounting and the adversary view.
	epochLen int

	// protoKey keys the counter-based per-agent protocol streams: agent
	// slot i of global round r draws from prng stream (protoKey, r, i).
	protoKey uint64
	schedSrc *prng.Source
	advSrc   *prng.Source

	pairing match.Pairing
	msgs    []uint8
	actions []population.Action
	// kill is the extended programs' neighbor-removal mask; nil for plain
	// Steppers. kill[j] has a unique writer per round (j's matched
	// neighbor) and is read only by the kill-fold phase, whose shards read
	// disjoint ranges.
	kill []bool
	// killCounts holds the kill-fold's per-shard kill tallies.
	killCounts []int

	round uint64

	// stats accumulates the per-phase cost counters (roundstats.go).
	// composeNS is the aux-goroutine scratch for the overlapped compose
	// phase: written inside the pool.Go closure, folded into stats after
	// wait() — the pool barrier is the happens-before edge. allocSamples
	// and allocBase back the per-round heap-allocation deltas.
	stats        RoundStats
	composeNS    uint64
	allocSamples [2]metrics.Sample
	allocBase    [2]uint64
}

// NewFromPopulation builds an engine over an existing population, taking
// ownership of it (side-array trackers already attached to it are
// preserved, and the matcher binds to it). Experiments and extension
// constructors use it to start from prepared states; cfg.InitialSize is
// ignored.
func NewFromPopulation(cfg Config, pop *population.Population) (*Engine, error) {
	if pop == nil {
		return nil, errors.New("sim: nil population")
	}
	return buildEngine(cfg, pop)
}

// New validates cfg and builds an engine with a fresh population of
// InitialSize (default N) zero-state agents.
func New(cfg Config) (*Engine, error) {
	return buildEngine(cfg, nil)
}

// buildEngine validates cfg and assembles the engine over pop (freshly built
// when nil). Randomness streams are split from the root in a fixed order —
// protocol key, scheduler, adversary, binder — so adding components never
// perturbs earlier streams.
func buildEngine(cfg Config, pop *population.Population) (*Engine, error) {
	if (cfg.Protocol == nil) == (cfg.Extended == nil) {
		return nil, errors.New("sim: exactly one of Config.Protocol and Config.Extended is required")
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if cfg.K < 0 {
		return nil, fmt.Errorf("sim: negative adversary budget %d", cfg.K)
	}
	if cfg.Scheduler != nil && cfg.Matcher != nil {
		return nil, errors.New("sim: at most one of Config.Scheduler and Config.Matcher may be set")
	}
	matcher := cfg.Matcher
	if matcher == nil {
		sched := cfg.Scheduler
		if sched == nil {
			u, err := match.NewUniform(cfg.Params.Gamma)
			if err != nil {
				return nil, fmt.Errorf("sim: %w", err)
			}
			sched = u
		}
		matcher = match.FromScheduler(sched)
	}
	if cfg.Adversary == nil {
		cfg.Adversary = adversary.None{}
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("sim: negative worker count %d", cfg.Workers)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	if pop == nil {
		size := cfg.InitialSize
		if size == 0 {
			size = cfg.Params.N
		}
		if size < 0 {
			return nil, fmt.Errorf("sim: negative initial size %d", size)
		}
		pop = population.New(size)
	}

	e := &Engine{
		cfg:     cfg,
		pop:     pop,
		matcher: matcher,
		adv:     cfg.Adversary,
		workers: workers,
		proto:   cfg.Protocol,
		xproto:  cfg.Extended,
	}
	if e.xproto != nil {
		e.epochLen = e.xproto.EpochLen()
		e.starter, _ = e.xproto.(RoundStarter)
	} else {
		e.epochLen = e.proto.EpochLen()
		e.starter, _ = e.proto.(RoundStarter)
	}
	if e.epochLen < 1 {
		return nil, fmt.Errorf("sim: program epoch length %d < 1", e.epochLen)
	}

	// Matchers that shard their own matching phase (the spatial pipeline)
	// inherit the engine's worker count; like Workers itself this is purely
	// a throughput knob — matcher output is worker-count-invariant.
	if ws, ok := matcher.(match.WorkerSetter); ok {
		ws.SetWorkers(workers)
	}

	// The persistent worker pool behind every sharded phase. It is threaded
	// to the population (apply-plan scatter, bulk snapshot encode), to every
	// pool-aware tracker side-array, to the pairing buffers, and to matchers
	// that shard their matching phase. The cleanup releases the pool's parked
	// goroutines when an engine is dropped without Close — internal/serve
	// hibernates and reaps sessions by unreferencing them.
	e.pool = pool.New(workers)
	e.pop.SetPool(e.pool)
	e.pairing.SetPool(e.pool)
	if ps, ok := matcher.(match.PoolSetter); ok {
		ps.SetPool(e.pool)
	}
	runtime.AddCleanup(e, func(p *pool.Pool) { p.Close() }, e.pool)

	root := prng.New(cfg.Seed)
	e.protoKey = root.Split().Uint64()
	e.schedSrc = root.Split()
	e.advSrc = root.Split()
	bindSrc := root.Split()
	if b, ok := matcher.(match.Binder); ok {
		b.Bind(e.pop, bindSrc)
	}
	// Spatial matchers expose their positions and metric to the adversary
	// seam; strategies that act on the communication model itself
	// (adversary.RewireAdversary) receive the bound matcher. Both are pure
	// wiring — no randomness is consumed, so position-blind configurations
	// are bit-identical to the pre-seam engine.
	e.space, _ = matcher.(match.Space)
	e.preb, _ = matcher.(match.Prebucketer)
	adversary.BindMatcherTo(e.adv, matcher)
	e.initAllocSamples()
	return e, nil
}

// MustNew is New for known-valid configurations; it panics on error.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Close releases the engine's parked worker-pool goroutines. The engine
// stays usable afterwards — a closed pool runs every sharded phase inline —
// so Close is a resource release, not a shutdown. Idempotent; engines that
// are dropped without Close are covered by a runtime cleanup, but callers
// that hold sessions for a long time (internal/serve) close eagerly so the
// goroutine count tracks the live session count, not the garbage collector.
func (e *Engine) Close() { e.pool.Close() }

// Population exposes the live population (owned by the engine).
func (e *Engine) Population() *population.Population { return e.pop }

// Size reports the current population size.
func (e *Engine) Size() int { return e.pop.Len() }

// GlobalRound reports the number of completed rounds.
func (e *Engine) GlobalRound() uint64 { return e.round }

// EpochLen reports the program's epoch length in rounds, cached at
// construction.
func (e *Engine) EpochLen() int { return e.epochLen }

// EpochIndex reports the current epoch number.
func (e *Engine) EpochIndex() int {
	return int(e.round / uint64(e.epochLen))
}

// Params returns the engine's parameterization.
func (e *Engine) Params() params.Params { return e.cfg.Params }

// Matcher exposes the engine's communication model.
func (e *Engine) Matcher() match.Matcher { return e.matcher }

// Census takes a population census using the protocol's epoch geometry.
func (e *Engine) Census() population.Census {
	return e.pop.TakeCensus(e.epochLen-1, e.cfg.Params.HalfLogN)
}

// adversaryTurn gives the adversary its budgeted turn and applies the staged
// alterations: stageAdversary then applyAdversary, back to back. Everything
// here runs serially, so adversary-chosen placement is deterministic and
// worker-count-invariant like the rest of the turn. Rounds whose matcher
// supports prebucketing run the two halves around the overlapped bucketing
// phase instead (RunRound).
func (e *Engine) adversaryTurn(rep *RoundReport) {
	if e.cfg.K <= 0 {
		return
	}
	e.applyAdversary(e.stageAdversary(), rep)
}

// stageAdversary runs the adversary's observation-and-staging half: it
// builds the round's Budget (bound to the matcher's positions and metric on
// a spatial topology) and lets the adversary stage up to K alterations into
// it. Staging only READS the population and positions — alterations land in
// the Budget, not the world — which is what lets it overlap the matcher's
// bucketing phase (DESIGN.md §12).
func (e *Engine) stageAdversary() *adversary.Budget {
	budget := adversary.NewBudget(e.cfg.K, e.pop.Len(), e.epochLen)
	if e.space != nil {
		budget.BindSpace(e.space.Positions().Slice(), e.space.Dist2)
	}
	e.adv.Act(engineView{e}, budget, e.advSrc)
	return budget
}

// applyAdversary applies a staged Budget to the population: deletions first,
// then insertions, with insertions staged at an explicit position (InsertAt)
// routed through the Positions placement queue so the agent appears exactly
// where the adversary chose. Reports whether the population was altered at
// all — the signal that invalidates an overlapped prebucket.
func (e *Engine) applyAdversary(budget *adversary.Budget, rep *RoundReport) (altered bool) {
	deleted := e.pop.DeleteDescending(budget.Deletions())
	rep.AdvDeleted += deleted
	for _, ins := range budget.Inserts() {
		if ins.Placed && e.space != nil {
			e.space.Positions().QueuePlacement(ins.At)
		}
		e.pop.Insert(ins.State)
	}
	rep.AdvInserted += len(budget.Inserts())
	return deleted > 0 || len(budget.Inserts()) > 0
}

// RunRound executes one full round and reports it.
func (e *Engine) RunRound() RoundReport {
	// 0. Program hook (e.g. rogue infiltration at epoch boundaries).
	if e.starter != nil {
		e.starter.StartRound(e.pop, e.round)
	}

	rep := RoundReport{Round: e.round, SizeBefore: e.pop.Len()}
	e.accumAllocs(false)

	// 1. Adversary turn (default timing: before the matching is sampled).
	// When the matcher can prebucket, its bucketing phase — a pure function
	// of the positions — overlaps the serial staging half of the turn:
	// staging only reads the population and positions, and bucketing writes
	// only matcher scratch, so the two touch disjoint state. The staged
	// alterations are applied only after the prebucket completes, and a
	// round that did alter the population drops it (the matcher rebuckets
	// in-sample). On a pool of one the overlap degrades to running the
	// prebucket inline first — same reads, same writes, so output is
	// bit-identical either way (DESIGN.md §12).
	if !e.cfg.AdversaryAfterStep {
		t := time.Now()
		if e.cfg.K > 0 && e.preb != nil {
			wait := e.pool.Go(func() { e.preb.PreBucket(e.pop.Len()) })
			budget := e.stageAdversary()
			wait()
			if e.applyAdversary(budget, &rep) {
				e.preb.DropPrebucket()
			}
		} else {
			e.adversaryTurn(&rep)
		}
		e.stats.AdversaryNS += sinceNS(t)
	}

	n := e.pop.Len()
	e.ensureScratch(n)

	// 2–4. Matching and compose, overlapped. The two phases are provably
	// independent: compose reads only pre-round agent state and consumes no
	// randomness (protocol coins are drawn in Step), while SampleMatch reads
	// only the population size/positions and writes only the pairing and the
	// matcher's own scratch. On a pool of one the overlap degrades to running
	// compose inline first — same reads, same writes, same (absence of)
	// randomness, so output is bit-identical either way (DESIGN.md §10).
	wait := e.pool.Go(func() {
		t := time.Now()
		e.composePhase(n)
		e.composeNS = sinceNS(t)
	})
	tm := time.Now()
	e.matcher.SampleMatch(e.pop, e.schedSrc, &e.pairing)
	e.stats.MatchNS += sinceNS(tm)
	wait()
	e.stats.ComposeNS += e.composeNS

	// 5. Deliver and step — sharded across the worker pool when the
	// population is large enough to pay for it.
	ts := time.Now()
	e.stepPhase(n)
	e.stats.StepNS += sinceNS(ts)

	// 6. Apply fates. Neighbor-kills override the victim's own action (the
	// victim is removed before it can divide). The fold shards: each shard
	// folds a disjoint range of the mask into the action array and tallies
	// its kills, and the (tiny) per-shard tallies sum serially.
	if e.xproto != nil {
		tk := time.Now()
		w := e.pool.Shards(n, minShardAgents)
		if cap(e.killCounts) < w {
			e.killCounts = make([]int, w)
		}
		counts := e.killCounts[:w]
		e.pool.RunN(w, func(k int) {
			c := 0
			for j := k * n / w; j < (k+1)*n/w; j++ {
				if e.kill[j] {
					e.actions[j] = population.ActDie
					c++
				}
			}
			counts[k] = c
		})
		for _, c := range counts {
			rep.Kills += c
		}
		e.stats.KillFoldNS += sinceNS(tk)
	}
	ta := time.Now()
	rep.Births, rep.Deaths = e.pop.Apply(e.actions)
	e.stats.ApplyNS += sinceNS(ta)

	// Ablation timing: adversary acts after the protocol step.
	if e.cfg.AdversaryAfterStep {
		t := time.Now()
		e.adversaryTurn(&rep)
		e.stats.AdversaryNS += sinceNS(t)
	}

	rep.SizeAfter = e.pop.Len()
	e.round++
	e.stats.Rounds++
	e.stats.Births += uint64(rep.Births)
	e.stats.Deaths += uint64(rep.Deaths)
	e.stats.NetGrowth += int64(rep.SizeAfter - rep.SizeBefore)
	e.accumAllocs(true)
	return rep
}

// ensureScratch sizes the msgs/actions (and, for extended programs, kill)
// buffers for n agents, growing with 1.5× slack so a steadily growing
// population does not reallocate on every round.
func (e *Engine) ensureScratch(n int) {
	if cap(e.msgs) < n {
		c := n + n/2
		e.msgs = make([]uint8, c)
		e.actions = make([]population.Action, c)
		if e.xproto != nil {
			e.kill = make([]bool, c)
		}
	}
	e.msgs = e.msgs[:n]
	e.actions = e.actions[:n]
	if e.xproto != nil {
		e.kill = e.kill[:n]
	}
}

// minShardAgents bounds how finely the per-agent phases shard: below ~1k
// agents per worker the pool wake-up and barrier overhead exceeds the step
// work, so the effective worker count is capped at n/minShardAgents. Output
// is worker-count-invariant, so the cap is purely a scheduling heuristic.
const minShardAgents = 1024

// composePhase composes every agent's outgoing message from pre-round state
// (and, for extended programs, clears the kill mask — each slot has exactly
// one owner, so the clear is race-free and worker-count-invariant), sharded
// over the worker pool. Compose consumes no randomness, so the phase is
// trivially order- and worker-count-invariant; the agent array is walked
// contiguously via the bulk States accessor rather than per-index Ref calls.
func (e *Engine) composePhase(n int) {
	states := e.pop.States()
	if e.xproto != nil {
		e.pool.Run(n, minShardAgents, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				e.kill[i] = false
				e.msgs[i] = e.xproto.ComposeAt(i, &states[i])
			}
		})
		return
	}
	e.pool.Run(n, minShardAgents, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e.msgs[i] = e.proto.Compose(&states[i])
		}
	})
}

// stepPhase delivers every agent's neighbor message and executes its
// protocol step, sharded over the worker pool. Each agent's coin flips come
// from the counter-based stream (protoKey, round, slot) — reseeded per
// agent from a shard-private source — so the result is bit-identical
// whether the shards run serially or concurrently. Extended programs
// additionally route neighbor-kills into the mask (unique writer per
// victim: its matched neighbor).
func (e *Engine) stepPhase(n int) {
	states := e.pop.States()
	if e.xproto != nil {
		e.pool.Run(n, minShardAgents, func(lo, hi int) {
			var src prng.Source
			for i := lo; i < hi; i++ {
				src.SeedCounter(e.protoKey, e.round, uint64(i))
				j := e.pairing.Nbr[i]
				var msg wire.Message
				hasNbr := j != match.Unmatched
				if hasNbr {
					msg = e.xproto.Decode(e.msgs[j])
				}
				act, killNbr := e.xproto.StepAt(i, int(j), &states[i], msg, hasNbr, &src)
				e.actions[i] = act
				if killNbr && hasNbr {
					e.kill[j] = true
				}
			}
		})
		return
	}
	e.pool.Run(n, minShardAgents, func(lo, hi int) {
		var src prng.Source
		for i := lo; i < hi; i++ {
			src.SeedCounter(e.protoKey, e.round, uint64(i))
			j := e.pairing.Nbr[i]
			var msg wire.Message
			hasNbr := j != match.Unmatched
			if hasNbr {
				msg = e.proto.Decode(e.msgs[j])
			}
			e.actions[i] = e.proto.Step(&states[i], msg, hasNbr, &src)
		}
	})
}

// RunRounds executes n rounds, returning the last report.
func (e *Engine) RunRounds(n int) RoundReport {
	var rep RoundReport
	for i := 0; i < n; i++ {
		rep = e.RunRound()
	}
	return rep
}

// RunEpoch executes rounds until the next epoch boundary and aggregates
// them. At a boundary it runs a full epoch.
func (e *Engine) RunEpoch() EpochReport {
	t := uint64(e.epochLen)
	rep := EpochReport{
		Epoch:     int(e.round / t),
		StartSize: e.pop.Len(),
		MinSize:   e.pop.Len(),
		MaxSize:   e.pop.Len(),
	}
	for {
		r := e.RunRound()
		rep.Births += r.Births
		rep.Deaths += r.Deaths
		rep.Kills += r.Kills
		rep.AdvInserted += r.AdvInserted
		rep.AdvDeleted += r.AdvDeleted
		if r.SizeAfter < rep.MinSize {
			rep.MinSize = r.SizeAfter
		}
		if r.SizeAfter > rep.MaxSize {
			rep.MaxSize = r.SizeAfter
		}
		if e.round%t == 0 {
			rep.EndSize = r.SizeAfter
			return rep
		}
	}
}

// RunEpochs executes n epochs and returns their reports.
func (e *Engine) RunEpochs(n int) []EpochReport {
	out := make([]EpochReport, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, e.RunEpoch())
	}
	return out
}

// ForceResize displaces the population to exactly n agents (padding with
// fresh agents carrying the correct round counter). Experiment machinery
// for Lemmas 8 and 9; not part of the model.
func (e *Engine) ForceResize(n int) {
	round := uint32(e.round % uint64(e.epochLen))
	e.pop.ForceResize(n, round)
}

// engineView adapts the engine to adversary.View.
type engineView struct{ e *Engine }

var _ adversary.View = engineView{}

func (v engineView) Len() int                  { return v.e.pop.Len() }
func (v engineView) State(i int) agent.State   { return v.e.pop.State(i) }
func (v engineView) Census() population.Census { return v.e.Census() }
func (v engineView) GlobalRound() uint64       { return v.e.round }
func (v engineView) EpochRound() int {
	return int(v.e.round % uint64(v.e.epochLen))
}
func (v engineView) Params() params.Params { return v.e.cfg.Params }
func (v engineView) Find(dst []int, limit int, pred func(agent.State) bool) []int {
	return v.e.pop.FindIf(dst, limit, pred)
}

// The spatial View methods surface the matcher's positions and metric; on a
// non-spatial matcher they are the Flatland defaults.

func (v engineView) HasSpace() bool { return v.e.space != nil }

func (v engineView) Pos(i int) population.Point {
	if v.e.space == nil {
		return population.Point{}
	}
	return v.e.space.Positions().At(i)
}

func (v engineView) Dist2(a, b population.Point) float64 {
	if v.e.space == nil {
		return 0
	}
	return v.e.space.Dist2(a, b)
}

func (v engineView) FindNear(dst []int, limit int, center population.Point, r float64) []int {
	if v.e.space == nil {
		return dst
	}
	r2 := r * r
	for i, pt := range v.e.space.Positions().Slice() {
		if limit >= 0 && len(dst) >= limit {
			break
		}
		if v.e.space.Dist2(center, pt) <= r2 {
			dst = append(dst, i)
		}
	}
	return dst
}

func (v engineView) CountNear(center population.Point, r float64) int {
	if v.e.space == nil {
		return -1
	}
	n := 0
	r2 := r * r
	for _, pt := range v.e.space.Positions().Slice() {
		if v.e.space.Dist2(center, pt) <= r2 {
			n++
		}
	}
	return n
}

func (v engineView) PatchPoint(center population.Point, r float64, src *prng.Source) population.Point {
	if v.e.space == nil {
		return center
	}
	return v.e.space.PatchPoint(center, r, src)
}
