// Package sim implements the synchronous round engine of the population
// model: it owns the population, samples the per-round communication
// matching, delivers messages, applies protocol decisions, and gives the
// adversary its budgeted turn.
//
// One round proceeds as (see DESIGN.md §5):
//
//  1. the adversary observes all agent memory and stages up to K
//     insertions/deletions, which are applied before the matching is drawn
//     (the adversary never knows the schedule in advance, §2);
//  2. a random matching covering at least a γ fraction of agents is sampled;
//  3. every agent composes its outgoing message from its pre-round state;
//  4. messages are delivered simultaneously; unmatched agents receive ⊥;
//  5. every agent executes one protocol step, yielding keep/die/split;
//  6. deaths and births are applied in one pass; daughters act next round.
//
// The engine is deterministic given its seed: scheduler and adversary draw
// from independent split-off streams, and every protocol coin flip comes
// from a counter-based stream keyed on (seed, global round, agent slot), so
// swapping the adversary never perturbs protocol coin flips (paired
// comparison across experiment arms) and per-agent randomness is
// independent of iteration order. That order-independence is what lets the
// Compose and Step phases shard across a worker pool (Config.Workers):
// simulation output is bit-identical for every worker count, including the
// serial Workers=1 path. The matching, apply, and adversary phases stay
// serial — they are O(γn) or event-bound, and the adversary is sequential
// by its budget semantics. See DESIGN.md §5 for the phase structure.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"popstab/internal/adversary"
	"popstab/internal/agent"
	"popstab/internal/match"
	"popstab/internal/params"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/wire"
)

// Stepper is the per-agent protocol the engine drives. internal/protocol
// implements it for the paper's protocol; internal/baseline implements it
// for the comparison protocols.
//
// Concurrency contract: when the engine runs with Workers > 1, Compose and
// Step are invoked concurrently from multiple goroutines, each agent from
// exactly one goroutine per round, with a barrier between the Compose and
// Step phases. Implementations may freely mutate the *agent.State they are
// handed but must keep any shared mutable state of their own (e.g. event
// counters) race-free; the src passed to Step is a private per-agent stream
// owned by the calling goroutine.
type Stepper interface {
	// EpochLen reports the protocol's epoch length in rounds (1 for
	// epoch-free protocols).
	EpochLen() int
	// Compose encodes the message agent s sends this round.
	Compose(s *agent.State) uint8
	// Decode decodes a received message byte.
	Decode(b uint8) wire.Message
	// Step executes one round for one agent and reports its fate.
	Step(s *agent.State, nbr wire.Message, hasNbr bool, src *prng.Source) population.Action
}

// Config assembles an engine.
type Config struct {
	// Params is the model parameterization (N, γ, α, epoch shape).
	Params params.Params
	// Protocol is the per-agent program. Required.
	Protocol Stepper
	// Scheduler samples each round's matching. Defaults to
	// match.Uniform{Gamma: Params.Gamma}.
	Scheduler match.Scheduler
	// Adversary attacks each round. Defaults to adversary.None.
	Adversary adversary.Adversary
	// K is the adversary's per-round alteration budget.
	K int
	// Seed derives all randomness.
	Seed uint64
	// InitialSize overrides the starting population (default Params.N).
	InitialSize int
	// AdversaryAfterStep moves the adversary's turn to the end of the
	// round, after protocol actions are applied (ablation A3). The default
	// (false) gives the adversary its turn at the start of the round,
	// before the matching is sampled.
	AdversaryAfterStep bool
	// Workers sets the number of goroutines sharding the Compose and Step
	// phases: 0 means runtime.NumCPU(), 1 forces the serial path, and
	// negative values are rejected. Simulation output is bit-identical
	// across all worker counts; Workers is purely a throughput knob.
	Workers int
}

// RoundReport summarizes one completed round.
type RoundReport struct {
	// Round is the global index of the completed round (0-based).
	Round uint64
	// SizeBefore and SizeAfter are the population sizes at the round's
	// start (before the adversary) and end.
	SizeBefore, SizeAfter int
	// Births and Deaths count protocol splits and deaths (consistency
	// deaths included).
	Births, Deaths int
	// AdvInserted and AdvDeleted count the adversary's alterations.
	AdvInserted, AdvDeleted int
}

// EpochReport aggregates the rounds of one protocol epoch.
type EpochReport struct {
	// Epoch is the 0-based epoch index.
	Epoch int
	// StartSize and EndSize bracket the epoch.
	StartSize, EndSize int
	// MinSize and MaxSize are the extremes seen at round boundaries.
	MinSize, MaxSize int
	// Births, Deaths, AdvInserted, AdvDeleted are summed over the epoch.
	Births, Deaths, AdvInserted, AdvDeleted int
}

// Delta reports the net population change over the epoch.
func (e EpochReport) Delta() int { return e.EndSize - e.StartSize }

// Engine drives one simulation. Create with New; not safe for concurrent
// use.
type Engine struct {
	cfg     Config
	pop     *population.Population
	sched   match.Scheduler
	adv     adversary.Adversary
	workers int

	// protoKey keys the counter-based per-agent protocol streams: agent
	// slot i of global round r draws from prng stream (protoKey, r, i).
	protoKey uint64
	schedSrc *prng.Source
	advSrc   *prng.Source

	pairing match.Pairing
	msgs    []uint8
	actions []population.Action

	round uint64
}

// NewFromPopulation builds an engine over an existing population, taking
// ownership of it. Experiments use it to start from prepared states (e.g.
// mid-epoch cluster configurations); cfg.InitialSize is ignored.
func NewFromPopulation(cfg Config, pop *population.Population) (*Engine, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if pop == nil {
		return nil, errors.New("sim: nil population")
	}
	e.pop = pop
	return e, nil
}

// New validates cfg and builds an engine with a fresh population of
// InitialSize (default N) zero-state agents.
func New(cfg Config) (*Engine, error) {
	if cfg.Protocol == nil {
		return nil, errors.New("sim: Config.Protocol is required")
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if cfg.K < 0 {
		return nil, fmt.Errorf("sim: negative adversary budget %d", cfg.K)
	}
	if cfg.Scheduler == nil {
		u, err := match.NewUniform(cfg.Params.Gamma)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		cfg.Scheduler = u
	}
	if cfg.Adversary == nil {
		cfg.Adversary = adversary.None{}
	}
	size := cfg.InitialSize
	if size == 0 {
		size = cfg.Params.N
	}
	if size < 0 {
		return nil, fmt.Errorf("sim: negative initial size %d", size)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("sim: negative worker count %d", cfg.Workers)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	root := prng.New(cfg.Seed)
	return &Engine{
		cfg:      cfg,
		pop:      population.New(size),
		sched:    cfg.Scheduler,
		adv:      cfg.Adversary,
		workers:  workers,
		protoKey: root.Split().Uint64(),
		schedSrc: root.Split(),
		advSrc:   root.Split(),
	}, nil
}

// MustNew is New for known-valid configurations; it panics on error.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Population exposes the live population (owned by the engine).
func (e *Engine) Population() *population.Population { return e.pop }

// Size reports the current population size.
func (e *Engine) Size() int { return e.pop.Len() }

// GlobalRound reports the number of completed rounds.
func (e *Engine) GlobalRound() uint64 { return e.round }

// EpochIndex reports the current epoch number.
func (e *Engine) EpochIndex() int {
	return int(e.round / uint64(e.cfg.Protocol.EpochLen()))
}

// Params returns the engine's parameterization.
func (e *Engine) Params() params.Params { return e.cfg.Params }

// Census takes a population census using the protocol's epoch geometry.
func (e *Engine) Census() population.Census {
	return e.pop.TakeCensus(e.cfg.Protocol.EpochLen()-1, e.cfg.Params.HalfLogN)
}

// adversaryTurn gives the adversary its budgeted turn and applies the staged
// alterations.
func (e *Engine) adversaryTurn(rep *RoundReport) {
	if e.cfg.K <= 0 {
		return
	}
	budget := adversary.NewBudget(e.cfg.K, e.pop.Len(), e.cfg.Protocol.EpochLen())
	e.adv.Act(engineView{e}, budget, e.advSrc)
	rep.AdvDeleted += e.pop.DeleteDescending(budget.Deletions())
	for _, s := range budget.Inserts() {
		e.pop.Insert(s)
	}
	rep.AdvInserted += len(budget.Inserts())
}

// RunRound executes one full round and reports it.
func (e *Engine) RunRound() RoundReport {
	rep := RoundReport{Round: e.round, SizeBefore: e.pop.Len()}

	// 1. Adversary turn (default timing: before the matching is sampled).
	if !e.cfg.AdversaryAfterStep {
		e.adversaryTurn(&rep)
	}

	n := e.pop.Len()

	// 2. Matching.
	e.sched.Sample(n, e.schedSrc, &e.pairing)

	// 3–5. Compose from pre-round state, deliver, and step — sharded
	// across the worker pool when the population is large enough to pay
	// for it.
	e.ensureScratch(n)
	e.composeAndStep(n)

	// 6. Apply fates.
	rep.Births, rep.Deaths = e.pop.Apply(e.actions)

	// Ablation timing: adversary acts after the protocol step.
	if e.cfg.AdversaryAfterStep {
		e.adversaryTurn(&rep)
	}

	rep.SizeAfter = e.pop.Len()
	e.round++
	return rep
}

// ensureScratch sizes the msgs/actions buffers for n agents, growing with
// 1.5× slack so a steadily growing population does not reallocate on every
// round.
func (e *Engine) ensureScratch(n int) {
	if cap(e.msgs) < n {
		c := n + n/2
		e.msgs = make([]uint8, c)
		e.actions = make([]population.Action, c)
	}
	e.msgs = e.msgs[:n]
	e.actions = e.actions[:n]
}

// minShardAgents bounds how finely ShardComposeStep shards: below ~1k
// agents per worker the goroutine spawn and barrier overhead exceeds the
// step work, so the effective worker count is capped at n/minShardAgents.
// Output is worker-count-invariant, so the cap is purely a scheduling
// heuristic.
const minShardAgents = 1024

// ShardComposeStep partitions [0, n) into up to workers contiguous shards
// and runs compose over every shard, then — after a barrier, because steps
// read messages composed by other shards — step over every shard. With one
// effective worker both callbacks run inline on the caller's goroutine.
// The rogue extension engine shares this machinery; any tuning here applies
// to both engines.
func ShardComposeStep(n, workers int, compose, step func(lo, hi int)) {
	w := workers
	if lim := n / minShardAgents; w > lim {
		w = lim
	}
	if w <= 1 {
		compose(0, n)
		step(0, n)
		return
	}
	var composed, stepped sync.WaitGroup
	composed.Add(w)
	stepped.Add(w)
	for k := 0; k < w; k++ {
		go func(lo, hi int) {
			compose(lo, hi)
			composed.Done()
			// Barrier: every message must be composed before any step
			// reads a neighbor's message.
			composed.Wait()
			step(lo, hi)
			stepped.Done()
		}(k*n/w, (k+1)*n/w)
	}
	stepped.Wait()
}

// composeAndStep runs phases 3–5 of the round over agents [0, n): compose
// every message from pre-round state, then (after a barrier) execute every
// agent's protocol step. Each agent's coin flips come from the
// counter-based stream (protoKey, round, slot), so the result is
// bit-identical whether the shards run serially or concurrently.
func (e *Engine) composeAndStep(n int) {
	ShardComposeStep(n, e.workers, e.composeRange, func(lo, hi int) {
		var src prng.Source
		e.stepRange(lo, hi, &src)
	})
}

// composeRange composes the outgoing messages of agents [lo, hi).
func (e *Engine) composeRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		e.msgs[i] = e.cfg.Protocol.Compose(e.pop.Ref(i))
	}
}

// stepRange delivers and steps agents [lo, hi), reseeding src per agent.
func (e *Engine) stepRange(lo, hi int, src *prng.Source) {
	for i := lo; i < hi; i++ {
		src.SeedCounter(e.protoKey, e.round, uint64(i))
		j := e.pairing.Nbr[i]
		var msg wire.Message
		hasNbr := j != match.Unmatched
		if hasNbr {
			msg = e.cfg.Protocol.Decode(e.msgs[j])
		}
		e.actions[i] = e.cfg.Protocol.Step(e.pop.Ref(i), msg, hasNbr, src)
	}
}

// RunRounds executes n rounds, returning the last report.
func (e *Engine) RunRounds(n int) RoundReport {
	var rep RoundReport
	for i := 0; i < n; i++ {
		rep = e.RunRound()
	}
	return rep
}

// RunEpoch executes rounds until the next epoch boundary and aggregates
// them. At a boundary it runs a full epoch.
func (e *Engine) RunEpoch() EpochReport {
	t := uint64(e.cfg.Protocol.EpochLen())
	rep := EpochReport{
		Epoch:     int(e.round / t),
		StartSize: e.pop.Len(),
		MinSize:   e.pop.Len(),
		MaxSize:   e.pop.Len(),
	}
	for {
		r := e.RunRound()
		rep.Births += r.Births
		rep.Deaths += r.Deaths
		rep.AdvInserted += r.AdvInserted
		rep.AdvDeleted += r.AdvDeleted
		if r.SizeAfter < rep.MinSize {
			rep.MinSize = r.SizeAfter
		}
		if r.SizeAfter > rep.MaxSize {
			rep.MaxSize = r.SizeAfter
		}
		if e.round%t == 0 {
			rep.EndSize = r.SizeAfter
			return rep
		}
	}
}

// RunEpochs executes n epochs and returns their reports.
func (e *Engine) RunEpochs(n int) []EpochReport {
	out := make([]EpochReport, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, e.RunEpoch())
	}
	return out
}

// ForceResize displaces the population to exactly n agents (padding with
// fresh agents carrying the correct round counter). Experiment machinery
// for Lemmas 8 and 9; not part of the model.
func (e *Engine) ForceResize(n int) {
	round := uint32(e.round % uint64(e.cfg.Protocol.EpochLen()))
	e.pop.ForceResize(n, round)
}

// engineView adapts the engine to adversary.View.
type engineView struct{ e *Engine }

var _ adversary.View = engineView{}

func (v engineView) Len() int                  { return v.e.pop.Len() }
func (v engineView) State(i int) agent.State   { return v.e.pop.State(i) }
func (v engineView) Census() population.Census { return v.e.Census() }
func (v engineView) GlobalRound() uint64       { return v.e.round }
func (v engineView) EpochRound() int {
	return int(v.e.round % uint64(v.e.cfg.Protocol.EpochLen()))
}
func (v engineView) Params() params.Params { return v.e.cfg.Params }
func (v engineView) Find(dst []int, limit int, pred func(agent.State) bool) []int {
	return v.e.pop.FindIf(dst, limit, pred)
}
