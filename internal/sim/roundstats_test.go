package sim

import (
	"testing"

	"popstab/internal/adversary"
	"popstab/internal/params"
	"popstab/internal/protocol"
)

func newStatsEngine(t *testing.T, workers int) *Engine {
	t.Helper()
	p, err := params.Derive(4096)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Params:    p,
		Protocol:  protocol.MustNew(p),
		Adversary: adversary.None{},
		Seed:      7,
		Workers:   workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestRoundStatsAccumulate(t *testing.T) {
	e := newStatsEngine(t, 2)
	if s := e.RoundStats(); s.Rounds != 0 {
		t.Fatalf("fresh engine stats = %+v", s)
	}
	const rounds = 20
	var births, deaths, net int
	for i := 0; i < rounds; i++ {
		rep := e.RunRound()
		births += rep.Births
		deaths += rep.Deaths
		net += rep.SizeAfter - rep.SizeBefore
	}
	s := e.RoundStats()
	if s.Rounds != rounds {
		t.Fatalf("Rounds = %d, want %d", s.Rounds, rounds)
	}
	if s.ComposeNS == 0 || s.MatchNS == 0 || s.StepNS == 0 || s.ApplyNS == 0 {
		t.Fatalf("phase counters not populated: %+v", s)
	}
	if s.KillFoldNS != 0 {
		t.Errorf("plain Stepper must not pay the kill fold: %+v", s)
	}
	if s.Births != uint64(births) || s.Deaths != uint64(deaths) || s.NetGrowth != int64(net) {
		t.Errorf("population deltas diverge from reports: %+v vs births=%d deaths=%d net=%d",
			s, births, deaths, net)
	}
	if s.SnapshotNS != 0 || s.Snapshots != 0 {
		t.Errorf("no snapshot was taken: %+v", s)
	}

	// Sub yields the window delta.
	prev := s
	e.RunRound()
	d := e.RoundStats().Sub(prev)
	if d.Rounds != 1 {
		t.Fatalf("delta rounds = %d", d.Rounds)
	}
	if d.StepNS == 0 {
		t.Fatalf("delta step ns = %d", d.StepNS)
	}
}

func TestRoundStatsSnapshotTimed(t *testing.T) {
	e := newStatsEngine(t, 1)
	e.RunRounds(3)
	blob := e.Snapshot()
	s := e.RoundStats()
	if s.Snapshots != 1 || s.SnapshotNS == 0 {
		t.Fatalf("snapshot not timed: %+v", s)
	}

	// Stats live outside the snapshot: a restored engine starts at zero,
	// and restoring must not disturb the bytes-level determinism contract
	// (the restored run replays bit-identically, covered by session tests).
	e2 := newStatsEngine(t, 1)
	if err := e2.Restore(blob); err != nil {
		t.Fatal(err)
	}
	if s2 := e2.RoundStats(); s2.Rounds != 0 || s2.SnapshotNS != 0 {
		t.Fatalf("restored engine inherited stats: %+v", s2)
	}
}

func TestRoundStatsPhasesStableNames(t *testing.T) {
	s := RoundStats{AdversaryNS: 1, ComposeNS: 2, MatchNS: 3, StepNS: 4, KillFoldNS: 5, ApplyNS: 6, SnapshotNS: 7}
	want := []string{"adversary", "compose", "match", "step", "kill_fold", "apply", "snapshot"}
	ph := s.Phases()
	if len(ph) != len(want) {
		t.Fatalf("phases = %d, want %d", len(ph), len(want))
	}
	for i, p := range ph {
		if p.Name != want[i] {
			t.Errorf("phase[%d] = %q, want %q", i, p.Name, want[i])
		}
		if p.NS != uint64(i+1) {
			t.Errorf("phase %s ns = %d, want %d", p.Name, p.NS, i+1)
		}
	}
}

func TestRoundStatsWorkerCountInvariantContent(t *testing.T) {
	// Timings differ across worker counts, but the content-bearing fields
	// (rounds, births, deaths, net growth) must not — they mirror the
	// deterministic simulation.
	a := newStatsEngine(t, 1)
	b := newStatsEngine(t, 4)
	for i := 0; i < 10; i++ {
		a.RunRound()
		b.RunRound()
	}
	sa, sb := a.RoundStats(), b.RoundStats()
	if sa.Births != sb.Births || sa.Deaths != sb.Deaths || sa.NetGrowth != sb.NetGrowth {
		t.Fatalf("content diverges across workers: %+v vs %+v", sa, sb)
	}
}
