package sim

import (
	"popstab/internal/agent"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/wire"
)

// SelfishReplicator wraps a Stepper with the selfish variant the paper's
// impossibility discussion gestures at (§1.2): an activated agent ignores
// the protocol's verdict and replicates at every opportunity — it neither
// dies nor merely keeps when its post-step state is Active. Messages, state
// transitions, and coin flips are the inner protocol's own (so the wrapped
// system is message-compatible with honest agents and the wrapper composes
// with any topology and adversary); only the fate is overridden.
//
// The wrapper makes the whole population selfish, which is the point: it
// demonstrates that population stability is a cooperative property — with
// replication unchecked by the variance signal the size escapes the
// admissible interval within an epoch or two (no rate bound, unlike the
// rogue extension's ReplicateEvery). Inactive agents still follow the
// protocol, so early-epoch rounds (before recruitment activates the bulk)
// behave normally.
type SelfishReplicator struct {
	// Inner is the wrapped protocol.
	Inner Stepper
}

var _ Stepper = (*SelfishReplicator)(nil)

// NewSelfishReplicator wraps inner with the selfish fate override.
func NewSelfishReplicator(inner Stepper) *SelfishReplicator {
	return &SelfishReplicator{Inner: inner}
}

// EpochLen implements Stepper with the inner protocol's epoch.
func (sr *SelfishReplicator) EpochLen() int { return sr.Inner.EpochLen() }

// Compose implements Stepper.
func (sr *SelfishReplicator) Compose(s *agent.State) uint8 { return sr.Inner.Compose(s) }

// Decode implements Stepper.
func (sr *SelfishReplicator) Decode(b uint8) wire.Message { return sr.Inner.Decode(b) }

// Step implements Stepper: the inner step runs unchanged (state mutation and
// randomness consumption are identical to the honest protocol), then an
// agent that ends the round activated splits regardless of the inner
// verdict.
func (sr *SelfishReplicator) Step(s *agent.State, nbr wire.Message, hasNbr bool, src *prng.Source) population.Action {
	act := sr.Inner.Step(s, nbr, hasNbr, src)
	if s.Active {
		return population.ActSplit
	}
	return act
}
