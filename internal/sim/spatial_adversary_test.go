package sim

import (
	"fmt"
	"runtime"
	"testing"

	"popstab/internal/adversary"
	"popstab/internal/match"
	"popstab/internal/population"
	"popstab/internal/protocol"
)

// TestAdversaryInsertAtPlacesExactly pins the placement path end to end: an
// adversary that stages InsertAt insertions sees its agents appear at
// exactly the chosen positions in the matcher's side-array, while plain
// Insert agents take the oblivious uniform placement.
func TestAdversaryInsertAtPlacesExactly(t *testing.T) {
	p := fastParams(t)
	ring, err := match.NewRing(1.0 / float64(p.N))
	if err != nil {
		t.Fatal(err)
	}
	want := population.Point{X: 0.123456}
	ins := adversary.NewClusterInserter(want, 0, nil) // radius 0: exactly the center
	e := MustNew(Config{
		Params: p, Protocol: protocol.MustNew(p), Seed: 11, Workers: 1,
		Matcher: ring, Adversary: ins, K: 3, InitialSize: 64,
	})
	before := e.Size()
	e.RunRound()
	pos := ring.Positions()
	if pos.Len() != e.Size() {
		t.Fatalf("positions %d out of sync with population %d", pos.Len(), e.Size())
	}
	placed := 0
	for i := 0; i < pos.Len(); i++ {
		if pos.At(i) == want {
			placed++
		}
	}
	if placed != 3 {
		t.Errorf("%d agents at the chosen point, want the 3 staged insertions (size %d -> %d)",
			placed, before, e.Size())
	}
}

// TestAdversaryDeleteNearEmptiesBall drives PatchDeleter against a ring
// engine and asserts the ball around the patch center thins out while the
// rest of the circle stays populated.
func TestAdversaryDeleteNearEmptiesBall(t *testing.T) {
	p := fastParams(t)
	ring, err := match.NewRing(1.0 / float64(p.N))
	if err != nil {
		t.Fatal(err)
	}
	center := population.Point{X: 0.5}
	radius := 0.05
	e := MustNew(Config{
		Params: p, Protocol: protocol.MustNew(p), Seed: 13, Workers: 1,
		Matcher: ring, Adversary: adversary.NewPatchDeleter(center, radius), K: 64,
	})
	rep := e.RunRound()
	if rep.AdvDeleted != 64 {
		t.Fatalf("patch deleter removed %d, want full budget 64", rep.AdvDeleted)
	}
	// ~10% of 4096 agents start inside the ball (~410); after two more full-
	// budget rounds ~192 of them are gone, all from the ball.
	e.RunRound()
	e.RunRound()
	inBall := 0
	pos := ring.Positions()
	for i := 0; i < pos.Len(); i++ {
		if match.RingDist2(pos.At(i), center) <= radius*radius {
			inBall++
		}
	}
	// The expected survivor count is ~(0.1·N − 3·64) ≈ 218 (protocol
	// births/deaths jitter it); assert the ball lost roughly the deleted
	// mass and nothing pathological happened elsewhere.
	if inBall > 300 {
		t.Errorf("ball still holds %d agents after 192 concentrated deletions", inBall)
	}
	if e.Size() < p.N-3*64-64 {
		t.Errorf("population %d fell further than the adversary's deletions explain", e.Size())
	}
}

// TestSpatialAdversaryParallelDeterminism is the golden determinism
// guarantee with the spatial adversary seam active: identical RoundReport
// and Census trajectories for Workers ∈ {1, 2, NumCPU} under a patch
// adversary (InsertAt + DeleteNear through the placement queue) on each
// spatial topology, and under adversarial rewiring on SmallWorld. The
// adversary turn is serial and precedes the matching, so placement and
// rewiring control must be invisible to the worker count.
func TestSpatialAdversaryParallelDeterminism(t *testing.T) {
	p := fastParams(t)
	center := population.Point{X: 0.5, Y: 0.5}
	mk := func(topo string) func() (match.Matcher, error) {
		s2 := 0.015625 // 1/√4096
		s1 := 1.0 / 4096
		switch topo {
		case "torus":
			return func() (match.Matcher, error) { return match.NewTorus(s2) }
		case "ring":
			return func() (match.Matcher, error) { return match.NewRing(s1) }
		case "smallworld":
			return func() (match.Matcher, error) { return match.NewSmallWorld(s1, 0.3) }
		}
		panic("unknown topo")
	}
	mkAdv := func(topo string) adversary.Adversary {
		patch := adversary.NewPatchCombo(center, 0.05, nil)
		if topo == "smallworld" {
			return adversary.NewComposite("patch-combo+rewire",
				adversary.NewRewireDenier(center, 0.1), patch)
		}
		return patch
	}
	workers := []int{2, runtime.NumCPU()}
	for _, topo := range []string{"torus", "ring", "smallworld"} {
		t.Run(topo, func(t *testing.T) {
			run := func(w int) trajectory {
				m, err := mk(topo)()
				if err != nil {
					t.Fatal(err)
				}
				return runTrajectory(t, Config{
					Params: p, Protocol: protocol.MustNew(p), Seed: 404,
					Matcher: m, Adversary: mkAdv(topo), K: 4, Workers: w,
				}, 2*p.T)
			}
			want := run(1)
			advActed := false
			for _, rep := range want.reports {
				if rep.AdvDeleted > 0 || rep.AdvInserted > 0 {
					advActed = true
					break
				}
			}
			if !advActed {
				t.Fatal("degenerate arm: spatial adversary never acted")
			}
			for _, w := range workers {
				got := run(w)
				assertTrajectoriesEqual(t, want, got, fmt.Sprintf("%s workers=%d", topo, w))
			}
		})
	}
}

// TestRewireDenyAllMatchesBetaZero pins the adversarial-rewiring semantics:
// denying every agent's rewiring reproduces the β = 0 trajectory exactly
// (the β coin is short-circuited in both cases, so no stream drifts).
func TestRewireDenyAllMatchesBetaZero(t *testing.T) {
	p := fastParams(t)
	s1 := 1.0 / float64(p.N)
	run := func(beta float64, adv adversary.Adversary) trajectory {
		m, err := match.NewSmallWorld(s1, beta)
		if err != nil {
			t.Fatal(err)
		}
		k := 0
		if adv != nil {
			k = 1 // the rewire adversary spends nothing, but enable the turn
		}
		return runTrajectory(t, Config{
			Params: p, Protocol: protocol.MustNew(p), Seed: 77,
			Matcher: m, Adversary: adv, K: k, Workers: 1,
		}, p.T)
	}
	want := run(0, nil)
	got := run(0.7, adversary.NewRewireDenier(population.Point{}, -1))
	// The denier's engine runs an adversary turn (constructing an empty
	// budget) but consumes no randomness and stages nothing, so the
	// trajectories must agree exactly.
	assertTrajectoriesEqual(t, want, got, "deny-all vs beta=0")
}
