package sim

import (
	"testing"

	"popstab/internal/adversary"
	"popstab/internal/match"
	"popstab/internal/params"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/protocol"
	"popstab/internal/wire"
)

// fastParams returns a quick configuration: N=4096, Tinner=24, T=144.
func fastParams(t testing.TB, opts ...params.Option) params.Params {
	t.Helper()
	opts = append([]params.Option{params.WithTinner(24)}, opts...)
	p, err := params.Derive(4096, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newEngine(t testing.TB, p params.Params, cfg Config) (*Engine, *protocol.Protocol) {
	t.Helper()
	pr := protocol.MustNew(p)
	cfg.Params = p
	cfg.Protocol = pr
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e, pr
}

func TestNewValidation(t *testing.T) {
	p := fastParams(t)
	if _, err := New(Config{Params: p}); err == nil {
		t.Error("New accepted missing protocol")
	}
	if _, err := New(Config{Params: params.Params{}, Protocol: protocol.MustNew(p)}); err == nil {
		t.Error("New accepted invalid params")
	}
	if _, err := New(Config{Params: p, Protocol: protocol.MustNew(p), K: -1}); err == nil {
		t.Error("New accepted negative budget")
	}
	if _, err := New(Config{Params: p, Protocol: protocol.MustNew(p), InitialSize: -5}); err == nil {
		t.Error("New accepted negative initial size")
	}
}

func TestInitialPopulation(t *testing.T) {
	p := fastParams(t)
	e, _ := newEngine(t, p, Config{Seed: 1})
	if e.Size() != p.N {
		t.Errorf("initial size %d, want %d", e.Size(), p.N)
	}
	e2, _ := newEngine(t, p, Config{Seed: 1, InitialSize: 100})
	if e2.Size() != 100 {
		t.Errorf("initial size %d, want 100", e2.Size())
	}
}

func TestDeterministicReplay(t *testing.T) {
	p := fastParams(t)
	run := func() []int {
		e, _ := newEngine(t, p, Config{Seed: 42, K: 2, Adversary: adversary.NewRandomDeleter()})
		sizes := make([]int, 0, 50)
		for i := 0; i < 50; i++ {
			rep := e.RunRound()
			sizes = append(sizes, rep.SizeAfter)
		}
		return sizes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectories diverged at round %d: %d != %d", i, a[i], b[i])
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	p := fastParams(t)
	e1, _ := newEngine(t, p, Config{Seed: 1})
	e2, _ := newEngine(t, p, Config{Seed: 2})
	r1 := e1.RunEpochs(3)
	r2 := e2.RunEpochs(3)
	same := true
	for i := range r1 {
		if r1[i].Births != r2[i].Births || r1[i].Deaths != r2[i].Deaths {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical epoch dynamics")
	}
}

func TestRoundReportAccounting(t *testing.T) {
	p := fastParams(t)
	e, _ := newEngine(t, p, Config{Seed: 3, K: 5, Adversary: adversary.NewBenignInserter()})
	for i := 0; i < 20; i++ {
		rep := e.RunRound()
		if rep.AdvInserted+rep.AdvDeleted > 5 {
			t.Fatalf("round %d: adversary exceeded budget: %+v", i, rep)
		}
		want := rep.SizeBefore + rep.AdvInserted - rep.AdvDeleted + rep.Births - rep.Deaths
		if rep.SizeAfter != want {
			t.Fatalf("round %d: size accounting broken: %+v (want %d)", i, rep, want)
		}
	}
}

func TestEpochAlignment(t *testing.T) {
	p := fastParams(t)
	e, _ := newEngine(t, p, Config{Seed: 4})
	// Run a partial epoch, then RunEpoch must finish it at the boundary.
	e.RunRounds(10)
	e.RunEpoch()
	if got := e.GlobalRound() % uint64(p.T); got != 0 {
		t.Errorf("after RunEpoch, global round %d not on boundary", e.GlobalRound())
	}
	if e.EpochIndex() != 1 {
		t.Errorf("EpochIndex = %d, want 1", e.EpochIndex())
	}
	rep := e.RunEpoch()
	if rep.Epoch != 1 {
		t.Errorf("epoch report index %d, want 1", rep.Epoch)
	}
	if e.GlobalRound() != uint64(2*p.T) {
		t.Errorf("global round %d, want %d", e.GlobalRound(), 2*p.T)
	}
}

func TestEpochReportExtremes(t *testing.T) {
	p := fastParams(t)
	e, _ := newEngine(t, p, Config{Seed: 5})
	rep := e.RunEpoch()
	if rep.MinSize > rep.StartSize || rep.MinSize > rep.EndSize {
		t.Errorf("MinSize inconsistent: %+v", rep)
	}
	if rep.MaxSize < rep.StartSize || rep.MaxSize < rep.EndSize {
		t.Errorf("MaxSize inconsistent: %+v", rep)
	}
	if rep.Delta() != rep.EndSize-rep.StartSize {
		t.Errorf("Delta = %d", rep.Delta())
	}
}

// TestStabilityNoAdversary is the E1 theorem check at test scale: with no
// adversary the population must remain within [(1−α)N, (1+α)N] across many
// epochs (the drift fixed point N − 16√N = 3072 is inside that interval).
func TestStabilityNoAdversary(t *testing.T) {
	p := fastParams(t)
	e, _ := newEngine(t, p, Config{Seed: 6})
	lo, hi := int(float64(p.N)*(1-p.Alpha)), int(float64(p.N)*(1+p.Alpha))
	for i := 0; i < 60; i++ {
		rep := e.RunEpoch()
		if rep.MinSize < lo || rep.MaxSize > hi {
			t.Fatalf("epoch %d: population left [%d,%d]: %+v", i, lo, hi, rep)
		}
	}
}

// TestStabilityUnderPacedAdversaries runs the strategy gallery at the
// paper's per-epoch budget N^{1/4} and asserts the theorem's interval.
func TestStabilityUnderPacedAdversaries(t *testing.T) {
	p := fastParams(t)
	strategies := []adversary.Adversary{
		adversary.NewRandomDeleter(),
		adversary.NewBenignInserter(),
		adversary.NewLeaderKiller(),
		adversary.NewColorSkewer(true),
		adversary.NewColorSkewer(false),
		adversary.NewWrongRoundInserter(7),
		adversary.NewEvalFlooder(),
		adversary.NewGreedy(),
	}
	perEpoch := p.MaxTolerableK() // N^{1/4} alterations per epoch
	for _, adv := range strategies {
		adv := adv
		t.Run(adv.Name(), func(t *testing.T) {
			paced := adversary.NewPaced(adversary.PerEpoch(p.T, perEpoch, 1), adv)
			e, _ := newEngine(t, p, Config{Seed: 7, K: 1, Adversary: paced})
			lo, hi := int(float64(p.N)*(1-p.Alpha)), int(float64(p.N)*(1+p.Alpha))
			for i := 0; i < 40; i++ {
				rep := e.RunEpoch()
				if rep.MinSize < lo || rep.MaxSize > hi {
					t.Fatalf("epoch %d: population left [%d,%d]: %+v", i, lo, hi, rep)
				}
			}
		})
	}
}

// TestCodecEquivalence verifies the three-bit production codec induces
// exactly the same trajectory as the four-bit reference codec (Theorem 2's
// message-size reduction is behavior-preserving).
func TestCodecEquivalence(t *testing.T) {
	p := fastParams(t)
	run := func(c wire.Codec) []int {
		pr := protocol.MustNew(p, protocol.WithCodec(c))
		e, err := New(Config{Params: p, Protocol: pr, Seed: 99, K: 1,
			Adversary: adversary.NewWrongRoundInserter(3)})
		if err != nil {
			t.Fatal(err)
		}
		sizes := make([]int, 0, 3*p.T)
		for i := 0; i < 3*p.T; i++ {
			sizes = append(sizes, e.RunRound().SizeAfter)
		}
		return sizes
	}
	three := run(wire.ThreeBit{})
	four := run(wire.FourBit{})
	for i := range three {
		if three[i] != four[i] {
			t.Fatalf("codecs diverged at round %d: 3bit=%d 4bit=%d", i, three[i], four[i])
		}
	}
}

// TestLemma4ActiveFraction asserts at most half the agents are active at
// every round boundary of several epochs.
func TestLemma4ActiveFraction(t *testing.T) {
	p := fastParams(t)
	e, _ := newEngine(t, p, Config{Seed: 8})
	for r := 0; r < 3*p.T; r++ {
		e.RunRound()
		c := e.Census()
		if f := c.ActiveFraction(); f > 0.5 {
			t.Fatalf("round %d: active fraction %.3f > 1/2", r, f)
		}
	}
}

// TestLemma5RecruitCompletion asserts that in an undisturbed epoch, active
// agents reach the evaluation round with toRecruit = 0. The lemma holds with
// high probability for Tinner = ω(log N); at test scale we use Tinner = 48
// and allow a miss rate below 1% (per-subphase failure probability is
// (1−Θ(γ))^Tinner, non-negligible only because N is small).
func TestLemma5RecruitCompletion(t *testing.T) {
	p := fastParams(t, params.WithTinner(48))
	e, _ := newEngine(t, p, Config{Seed: 9})
	// Run to one round before the evaluation round.
	e.RunRounds(p.T - 1)
	c := e.Census()
	if c.Active == 0 {
		t.Fatal("no active agents at evaluation")
	}
	incomplete := 0
	for d := 1; d < len(c.ByToRecruit); d++ {
		incomplete += c.ByToRecruit[d]
	}
	if allowed := c.Active/100 + 1; incomplete > allowed {
		t.Errorf("%d of %d active agents entered evaluation with toRecruit > 0 (allowed %d, histogram %v)",
			incomplete, c.Active, allowed, c.ByToRecruit)
	}
}

// TestLemma6ColorBalance asserts the per-color counts at the evaluation
// round are close to m/16 each.
func TestLemma6ColorBalance(t *testing.T) {
	p := fastParams(t)
	e, _ := newEngine(t, p, Config{Seed: 10})
	for epoch := 0; epoch < 5; epoch++ {
		e.RunRounds(p.T - 1)
		c := e.Census()
		m := float64(c.Total)
		// m/16 ± slack; at N=4096 the leader-count noise dominates:
		// std(#leaders per color) ≈ √(m/16/64) clusters ≈ 2 clusters of 64.
		slack := 6.0 * 64 * 2 // 6σ in agents
		for b := 0; b < 2; b++ {
			got := float64(c.ColorCount[b])
			if got < m/16-slack || got > m/16+slack {
				t.Errorf("epoch %d color %d: %v agents, want %v ± %v", epoch, b, got, m/16, slack)
			}
		}
		e.RunRounds(1) // finish the epoch
	}
}

// TestLemma3WrongRoundBounded runs the desynchronization attack at the
// per-epoch budget and asserts the wrong-round count stays bounded well
// below the population (steady state ≈ perEpoch/(1-(1-γ)²) ≈ 2.3 per-epoch
// budget).
func TestLemma3WrongRoundBounded(t *testing.T) {
	p := fastParams(t)
	perEpoch := p.MaxTolerableK()
	paced := adversary.NewPaced(adversary.PerEpoch(p.T, perEpoch, 1),
		adversary.NewWrongRoundInserter(p.T/2))
	e, _ := newEngine(t, p, Config{Seed: 11, K: 1, Adversary: paced})
	bound := 6 * perEpoch // generous steady-state bound
	for epoch := 0; epoch < 20; epoch++ {
		e.RunEpoch()
		c := e.Census()
		if c.WrongRound > bound {
			t.Fatalf("epoch %d: %d wrong-round agents (bound %d)", epoch, c.WrongRound, bound)
		}
	}
}

func TestForceResize(t *testing.T) {
	p := fastParams(t)
	e, _ := newEngine(t, p, Config{Seed: 12})
	e.RunRounds(10)
	e.ForceResize(2000)
	if e.Size() != 2000 {
		t.Fatalf("size %d after ForceResize", e.Size())
	}
	// Padded agents must carry the current epoch round so they do not die
	// to the consistency check.
	c := e.Census()
	if c.WrongRound != 0 {
		t.Errorf("%d wrong-round agents after ForceResize", c.WrongRound)
	}
}

func TestNewFromPopulation(t *testing.T) {
	p := fastParams(t)
	pr := protocol.MustNew(p)
	pop := population.New(123)
	e, err := NewFromPopulation(Config{Params: p, Protocol: pr, Seed: 1}, pop)
	if err != nil {
		t.Fatal(err)
	}
	if e.Size() != 123 {
		t.Fatalf("size %d", e.Size())
	}
	if e.Population() != pop {
		t.Error("engine did not take ownership of the population")
	}
	if _, err := NewFromPopulation(Config{Params: p, Protocol: pr}, nil); err == nil {
		t.Error("accepted nil population")
	}
}

func TestAdversaryAfterStepTiming(t *testing.T) {
	p := fastParams(t)
	// With after-step timing, an inserted agent must appear in SizeAfter
	// but must not have taken a protocol step this round.
	pr := protocol.MustNew(p)
	e, err := New(Config{Params: p, Protocol: pr, Seed: 2, K: 3,
		Adversary: adversary.NewBenignInserter(), AdversaryAfterStep: true})
	if err != nil {
		t.Fatal(err)
	}
	rep := e.RunRound()
	if rep.AdvInserted != 3 {
		t.Fatalf("inserted %d", rep.AdvInserted)
	}
	if rep.SizeAfter != rep.SizeBefore+3+rep.Births-rep.Deaths {
		t.Fatalf("accounting: %+v", rep)
	}
	// The inserted agents carry the epoch round captured at insertion time
	// (end of round 0 = round 0 counter), so after round 1 they lag the
	// majority by one; the consistency check only fires at eval boundaries,
	// so they survive to be counted.
	c := e.Census()
	if c.Total != rep.SizeAfter {
		t.Fatalf("census total %d != %d", c.Total, rep.SizeAfter)
	}
}

// TestGoldenTrajectory pins the exact trajectory of a fixed configuration.
// It exists to catch unintended semantic changes to the protocol, engine,
// scheduler, or PRNG: any of those changes this number. If a change is
// INTENDED, regenerate with:
//
//	go test -run TestGoldenTrajectory -v ./internal/sim/ (the failure
//	message prints the new value)
func TestGoldenTrajectory(t *testing.T) {
	p := fastParams(t)
	e, _ := newEngine(t, p, Config{Seed: 424242, K: 2, Adversary: adversary.NewGreedy()})
	var checksum uint64
	for i := 0; i < 2*p.T; i++ {
		rep := e.RunRound()
		checksum = checksum*31 + uint64(rep.SizeAfter)
	}
	const want = uint64(17620344927233764585)
	if checksum != want {
		t.Errorf("trajectory checksum changed: got %d, want %d\n"+
			"(if this change is intentional, update the golden value)", checksum, want)
	}
}

func TestSchedulerOverride(t *testing.T) {
	p := fastParams(t)
	e, _ := newEngine(t, p, Config{Seed: 13, Scheduler: match.Full{}})
	rep := e.RunEpoch()
	if rep.EndSize == 0 {
		t.Fatal("population collapsed under full scheduler")
	}
}

// TestStressResizeAndRun interleaves forced displacements with protocol
// rounds at random, asserting the engine's internal accounting never breaks
// (sizes consistent, census total matches, no panics). This is the
// failure-injection companion to the clean-run tests.
func TestStressResizeAndRun(t *testing.T) {
	p := fastParams(t)
	e, _ := newEngine(t, p, Config{Seed: 99, K: 2, Adversary: adversary.NewGreedy()})
	src := prng.New(123)
	for i := 0; i < 400; i++ {
		switch src.Intn(10) {
		case 0:
			// Displace somewhere in [N/4, 2N].
			target := p.N/4 + src.Intn(2*p.N)
			e.ForceResize(target)
			if e.Size() != target {
				t.Fatalf("step %d: resize to %d left %d", i, target, e.Size())
			}
		default:
			rep := e.RunRound()
			want := rep.SizeBefore + rep.AdvInserted - rep.AdvDeleted + rep.Births - rep.Deaths
			if rep.SizeAfter != want {
				t.Fatalf("step %d: accounting %+v", i, rep)
			}
		}
		if c := e.Census(); c.Total != e.Size() {
			t.Fatalf("step %d: census %d != size %d", i, c.Total, e.Size())
		}
	}
}

func BenchmarkRoundN4096(b *testing.B) {
	p := fastParams(b)
	pr := protocol.MustNew(p)
	e := MustNew(Config{Params: p, Protocol: pr, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunRound()
	}
	b.ReportMetric(float64(e.Size()), "final_pop")
}

func BenchmarkEpochN4096(b *testing.B) {
	p := fastParams(b)
	pr := protocol.MustNew(p)
	e := MustNew(Config{Params: p, Protocol: pr, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunEpoch()
	}
}
