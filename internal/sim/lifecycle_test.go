package sim

import (
	"runtime"
	"testing"
	"time"

	"popstab/internal/protocol"
)

// goroutinesSettleTo polls until the live goroutine count drops to at most
// limit (the runtime parks workers asynchronously after a pool close).
func goroutinesSettleTo(limit int) bool {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= limit {
			return true
		}
		runtime.Gosched()
		time.Sleep(2 * time.Millisecond)
	}
	return runtime.NumGoroutine() <= limit
}

// TestEngineCloseReleasesPoolGoroutines pins the pool lifecycle contract:
// an engine that sharded work across its pool returns the process to its
// pre-engine goroutine count after Close. This is the leak guard for the
// job server, which holds many engines over a process lifetime.
func TestEngineCloseReleasesPoolGoroutines(t *testing.T) {
	p := fastParams(t)
	baseline := runtime.NumGoroutine()

	e, err := New(Config{Params: p, Protocol: protocol.MustNew(p), Seed: 1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// N = 4096 with minShardAgents = 1024 engages all 4 shards, spawning
	// the pool's (lazily created) worker goroutines.
	for i := 0; i < 5; i++ {
		e.RunRound()
	}
	e.Close()
	if !goroutinesSettleTo(baseline) {
		t.Fatalf("goroutines did not settle after Close: %d, baseline %d", runtime.NumGoroutine(), baseline)
	}
	// Idempotent.
	e.Close()
}

// TestEngineRunsIdenticallyAfterClose checks Close is a resource release,
// not a shutdown: a closed engine keeps producing bit-identical output
// (every sharded phase degrades to inline execution).
func TestEngineRunsIdenticallyAfterClose(t *testing.T) {
	p := fastParams(t)
	mk := func() *Engine {
		e, err := New(Config{Params: p, Protocol: protocol.MustNew(p), Seed: 7, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	open, closed := mk(), mk()
	for i := 0; i < 5; i++ {
		open.RunRound()
		closed.RunRound()
	}
	closed.Close()
	for i := 0; i < 10; i++ {
		ra, rb := open.RunRound(), closed.RunRound()
		if ra != rb {
			t.Fatalf("round %d diverged after Close:\n open=%+v\nclosed=%+v", i, ra, rb)
		}
	}
	a, b := open.Snapshot(), closed.Snapshot()
	if string(a) != string(b) {
		t.Fatal("snapshots diverged after Close")
	}
	open.Close()
}
