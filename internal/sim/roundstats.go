package sim

import (
	"fmt"
	"runtime/metrics"
	"strings"
	"time"
)

// RoundStats are the engine's cumulative per-phase cost counters — the
// generalization of match.PipelineStats from the spatial matching pipeline
// to every phase of the round (DESIGN.md §13). Observability only: nothing
// feeds back into the simulation, the counters are excluded from snapshots
// (a restored engine starts its accounting at zero), and the collection
// cost per round is ~10 time stamps plus one runtime/metrics read, which
// disappears into benchmark noise even on the smallest gated workload.
//
// All ns counters are wall-clock sums over completed rounds. ComposeNS is
// measured inside the worker-pool closure, so it reports the compose
// phase's own cost even though it overlaps the matching phase; the round's
// critical path through the overlap is max(compose, match), not their sum.
type RoundStats struct {
	// Rounds counts completed rounds (the divisor for per-round averages).
	Rounds uint64 `json:"rounds"`
	// AdversaryNS is the adversary turn: staging plus apply, including the
	// prebucket overlap's wait (the turn is on the round's critical path).
	AdversaryNS uint64 `json:"adversary_ns"`
	// ComposeNS is the message-compose phase (overlapped with matching).
	ComposeNS uint64 `json:"compose_ns"`
	// MatchNS is the matcher's SampleMatch on the engine goroutine.
	MatchNS uint64 `json:"match_ns"`
	// StepNS is the deliver-and-step phase.
	StepNS uint64 `json:"step_ns"`
	// KillFoldNS is the extended programs' neighbor-kill fold (zero for
	// plain Steppers).
	KillFoldNS uint64 `json:"kill_fold_ns"`
	// ApplyNS is the population's sharded apply/compaction pass.
	ApplyNS uint64 `json:"apply_ns"`
	// SnapshotNS and Snapshots cover engine state serialization — not part
	// of the round, but on the serve layer's checkpoint path.
	SnapshotNS uint64 `json:"snapshot_ns"`
	Snapshots  uint64 `json:"snapshots"`
	// AllocBytes and AllocObjects are heap-allocation deltas over the
	// measured rounds (runtime/metrics, read once per round). The counters
	// are process-wide: with a single running engine they are the round
	// loop's own allocation rate; with concurrent sessions they include
	// neighbors' traffic.
	AllocBytes   uint64 `json:"alloc_bytes"`
	AllocObjects uint64 `json:"alloc_objects"`
	// Births, Deaths, and NetGrowth are cumulative population deltas
	// (NetGrowth may be negative under a winning adversary).
	Births    uint64 `json:"births"`
	Deaths    uint64 `json:"deaths"`
	NetGrowth int64  `json:"net_growth"`
}

// Sub returns the delta s−prev, for windowed rates over a cumulative
// counter pair.
func (s RoundStats) Sub(prev RoundStats) RoundStats {
	return RoundStats{
		Rounds:       s.Rounds - prev.Rounds,
		AdversaryNS:  s.AdversaryNS - prev.AdversaryNS,
		ComposeNS:    s.ComposeNS - prev.ComposeNS,
		MatchNS:      s.MatchNS - prev.MatchNS,
		StepNS:       s.StepNS - prev.StepNS,
		KillFoldNS:   s.KillFoldNS - prev.KillFoldNS,
		ApplyNS:      s.ApplyNS - prev.ApplyNS,
		SnapshotNS:   s.SnapshotNS - prev.SnapshotNS,
		Snapshots:    s.Snapshots - prev.Snapshots,
		AllocBytes:   s.AllocBytes - prev.AllocBytes,
		AllocObjects: s.AllocObjects - prev.AllocObjects,
		Births:       s.Births - prev.Births,
		Deaths:       s.Deaths - prev.Deaths,
		NetGrowth:    s.NetGrowth - prev.NetGrowth,
	}
}

// Add returns the field-wise sum s+o, for aggregating stats across engines
// (popattack sums its whole strategy grid into one breakdown).
func (s RoundStats) Add(o RoundStats) RoundStats {
	return RoundStats{
		Rounds:       s.Rounds + o.Rounds,
		AdversaryNS:  s.AdversaryNS + o.AdversaryNS,
		ComposeNS:    s.ComposeNS + o.ComposeNS,
		MatchNS:      s.MatchNS + o.MatchNS,
		StepNS:       s.StepNS + o.StepNS,
		KillFoldNS:   s.KillFoldNS + o.KillFoldNS,
		ApplyNS:      s.ApplyNS + o.ApplyNS,
		SnapshotNS:   s.SnapshotNS + o.SnapshotNS,
		Snapshots:    s.Snapshots + o.Snapshots,
		AllocBytes:   s.AllocBytes + o.AllocBytes,
		AllocObjects: s.AllocObjects + o.AllocObjects,
		Births:       s.Births + o.Births,
		Deaths:       s.Deaths + o.Deaths,
		NetGrowth:    s.NetGrowth + o.NetGrowth,
	}
}

// PhaseCost is one named phase's cumulative wall-clock cost.
type PhaseCost struct {
	Name string `json:"name"`
	NS   uint64 `json:"ns"`
}

// Phases lists the per-phase ns counters in round order, under the stable
// names the metrics plane and the -stats printers share.
func (s RoundStats) Phases() []PhaseCost {
	return []PhaseCost{
		{"adversary", s.AdversaryNS},
		{"compose", s.ComposeNS},
		{"match", s.MatchNS},
		{"step", s.StepNS},
		{"kill_fold", s.KillFoldNS},
		{"apply", s.ApplyNS},
		{"snapshot", s.SnapshotNS},
	}
}

// Breakdown renders the human-readable per-phase cost table behind the
// -stats flag of popsim/popattack and popbench's verbose mode. Percentages
// are of the summed phase time, not wall clock: compose overlaps matching,
// so the phases can legitimately sum past the loop's elapsed time.
func (s RoundStats) Breakdown() string {
	if s.Rounds == 0 {
		return "round-phase breakdown: no rounds recorded"
	}
	var b strings.Builder
	var total uint64
	for _, ph := range s.Phases() {
		total += ph.NS
	}
	fmt.Fprintf(&b, "round-phase breakdown over %d rounds (%v/round summed across phases)\n",
		s.Rounds, time.Duration(total/s.Rounds))
	for _, ph := range s.Phases() {
		if ph.Name == "snapshot" {
			continue // not a round phase; reported with its own count below
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(ph.NS) / float64(total)
		}
		fmt.Fprintf(&b, "  %-9s %12v/round  %5.1f%%\n", ph.Name, time.Duration(ph.NS/s.Rounds), pct)
	}
	if s.Snapshots > 0 {
		fmt.Fprintf(&b, "  snapshots %d (%v total)\n", s.Snapshots, time.Duration(s.SnapshotNS))
	}
	fmt.Fprintf(&b, "  allocs %d B/round (%.1f objects/round); births %d, deaths %d, net %+d",
		s.AllocBytes/s.Rounds, float64(s.AllocObjects)/float64(s.Rounds),
		s.Births, s.Deaths, s.NetGrowth)
	return b.String()
}

// RoundStats reports the engine's cumulative phase counters.
func (e *Engine) RoundStats() RoundStats { return e.stats }

// allocSampleNames are the runtime/metrics counters behind the per-round
// allocation deltas. Reading two plain uint64 metrics is far cheaper than
// runtime.ReadMemStats (no stop-the-world, no full stats fold).
var allocSampleNames = [2]string{"/gc/heap/allocs:bytes", "/gc/heap/allocs:objects"}

// initAllocSamples prepares the engine's reusable sample buffer and takes
// the starting baseline.
func (e *Engine) initAllocSamples() {
	for i, name := range allocSampleNames {
		e.allocSamples[i].Name = name
	}
	metrics.Read(e.allocSamples[:])
	e.allocBase[0] = e.allocSamples[0].Value.Uint64()
	e.allocBase[1] = e.allocSamples[1].Value.Uint64()
}

// accumAllocs folds the heap-allocation delta since the last baseline into
// the stats and advances the baseline. RunRound resyncs without
// accumulating at the top of the round and accumulates at the bottom, so
// between-round work (snapshot encoding, API handling) never masquerades
// as round-loop garbage.
func (e *Engine) accumAllocs(accumulate bool) {
	metrics.Read(e.allocSamples[:])
	b := e.allocSamples[0].Value.Uint64()
	o := e.allocSamples[1].Value.Uint64()
	if accumulate {
		e.stats.AllocBytes += b - e.allocBase[0]
		e.stats.AllocObjects += o - e.allocBase[1]
	}
	e.allocBase[0] = b
	e.allocBase[1] = o
}

// sinceNS is time.Since squeezed into the stats counters' unit.
func sinceNS(t time.Time) uint64 { return uint64(time.Since(t).Nanoseconds()) }
