package sim

import (
	"fmt"
	"runtime"
	"testing"

	"popstab/internal/protocol"
)

// TestSelfishReplicatorEscapes pins the wrapper's purpose: with every
// activated agent splitting unconditionally the population blows through the
// admissible interval without any adversary — population stability is a
// cooperative property.
func TestSelfishReplicatorEscapes(t *testing.T) {
	p := fastParams(t)
	e := MustNew(Config{
		Params:   p,
		Protocol: NewSelfishReplicator(protocol.MustNew(p)),
		Seed:     21,
		Workers:  1,
	})
	hi := p.N + p.N/2 // (1+α)N at α = 0.5
	escaped := false
	rounds := 0
	// The active cohort doubles every round, so escape arrives within a few
	// dozen rounds; the cap only guards against a broken wrapper.
	for i := 0; i < p.T && !escaped; i++ {
		e.RunRound()
		rounds++
		escaped = e.Size() > hi
	}
	if !escaped {
		t.Fatalf("selfish population still %d after %d rounds, want > %d", e.Size(), rounds, hi)
	}
}

// TestSelfishReplicatorGoldenDeterminism is the wrapper's golden
// determinism test: identical trajectories for Workers ∈ {1, 2, NumCPU}
// (the override is a pure function of the post-step state, so sharding must
// not show through), pinned against a size trace from the serial run so a
// behavioral change to the wrapper cannot slip by as "still deterministic".
func TestSelfishReplicatorGoldenDeterminism(t *testing.T) {
	p := fastParams(t)
	// Keep the horizon short: the selfish population roughly doubles its
	// active cohort every round, so long trajectories are exponentially
	// large. 16 rounds covers activation, splits, and several shard-size
	// transitions.
	run := func(w int) trajectory {
		return runTrajectory(t, Config{
			Params:   p,
			Protocol: NewSelfishReplicator(protocol.MustNew(p)),
			Seed:     22,
			Workers:  w,
		}, 16)
	}
	want := run(1)
	grew := false
	for _, rep := range want.reports {
		if rep.Births > 0 {
			grew = true
			break
		}
	}
	if !grew {
		t.Fatal("degenerate run: selfish population never split")
	}
	for _, w := range []int{2, runtime.NumCPU()} {
		assertTrajectoriesEqual(t, want, run(w), fmt.Sprintf("workers=%d", w))
	}
}
