package sim

import (
	"testing"

	"popstab/internal/agent"
	"popstab/internal/match"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/protocol"
	"popstab/internal/wire"
)

// killerProgram is a minimal ExtendedStepper for engine-seam tests: the
// lower-indexed agent of every pair removes its neighbor, the higher-indexed
// one tries to split (and must lose to the removal).
type killerProgram struct{}

func (killerProgram) EpochLen() int                     { return 1 }
func (killerProgram) Decode(b uint8) wire.Message       { return wire.Message{} }
func (killerProgram) ComposeAt(int, *agent.State) uint8 { return 0 }
func (killerProgram) StepAt(i, j int, s *agent.State, nbr wire.Message, hasNbr bool, src *prng.Source) (population.Action, bool) {
	if !hasNbr {
		return population.ActKeep, false
	}
	if i < j {
		return population.ActKeep, true
	}
	return population.ActSplit, false
}

// TestExtendedKillOverridesSplit pins the neighbor-removal semantics: a
// killed agent is gone before it can divide, the removal is counted in both
// Kills and Deaths, and the report accounting stays consistent.
func TestExtendedKillOverridesSplit(t *testing.T) {
	p := fastParams(t)
	e, err := New(Config{
		Params:      p,
		Extended:    killerProgram{},
		Scheduler:   match.Full{},
		InitialSize: 2,
		Seed:        1,
		Workers:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := e.RunRound()
	if rep.Kills != 1 || rep.Deaths != 1 || rep.Births != 0 {
		t.Fatalf("kills=%d deaths=%d births=%d, want 1/1/0: %+v",
			rep.Kills, rep.Deaths, rep.Births, rep)
	}
	if rep.SizeAfter != 1 {
		t.Fatalf("size after %d, want 1", rep.SizeAfter)
	}
	// The survivor is now unmatched every round: no further events.
	rep = e.RunRound()
	if rep.Kills != 0 || rep.Deaths != 0 || rep.Births != 0 || rep.SizeAfter != 1 {
		t.Fatalf("lone agent produced events: %+v", rep)
	}
}

// TestConfigSeamValidation pins the exactly-one rules of the two seams.
func TestConfigSeamValidation(t *testing.T) {
	p := fastParams(t)
	pr := protocol.MustNew(p)
	if _, err := New(Config{Params: p}); err == nil {
		t.Error("accepted neither Protocol nor Extended")
	}
	if _, err := New(Config{Params: p, Protocol: pr, Extended: killerProgram{}}); err == nil {
		t.Error("accepted both Protocol and Extended")
	}
	tor, err := match.NewTorus(1.0 / 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Params: p, Protocol: pr, Scheduler: match.Full{}, Matcher: tor}); err == nil {
		t.Error("accepted both Scheduler and Matcher")
	}
}

// TestMatcherBindsToAdoptedPopulation verifies NewFromPopulation binds the
// matcher to the caller's population, not a discarded fresh one: the torus
// side-array must track the adopted population's size.
func TestMatcherBindsToAdoptedPopulation(t *testing.T) {
	p := fastParams(t)
	pr := protocol.MustNew(p)
	pop := population.New(123)
	tor, err := match.NewTorus(1.0 / 64)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewFromPopulation(Config{Params: p, Protocol: pr, Matcher: tor, Seed: 1, Workers: 1}, pop)
	if err != nil {
		t.Fatal(err)
	}
	if tor.Positions().Len() != 123 {
		t.Fatalf("torus bound to %d positions, want 123", tor.Positions().Len())
	}
	e.RunRound()
	if tor.Positions().Len() != e.Size() {
		t.Fatalf("positions %d != size %d after a round", tor.Positions().Len(), e.Size())
	}
}
