package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"popstab"
	"popstab/internal/obs"
	"popstab/internal/serve"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Router picks the worker for each submission (nil = Affinity).
	Router Router
	// WorkerTTL expires a worker whose heartbeat has gone quiet; its
	// sessions fail over to the rest of the fleet (0 = 10s).
	WorkerTTL time.Duration
	// SweepInterval is the expiry/failover loop cadence (0 = 2s;
	// negative = no background loop, tests drive SweepNow).
	SweepInterval time.Duration
	// SubmitRate/SubmitBurst arm the fleet-wide token-bucket admission
	// gate (0 = unlimited). This composes with the per-worker gates: the
	// coordinator gates aggregate intake, each worker still protects
	// itself. Dedupe hits are answered from the index without burning a
	// token — cached results are free.
	SubmitRate  float64
	SubmitBurst int
	// Client performs worker calls (nil = a client with no global timeout;
	// proxied calls carry the caller's context, control calls get bounded
	// ones).
	Client *http.Client
	// Registry receives the coordinator's metrics (nil = a private one).
	Registry *obs.Registry
	// Tracer receives the coordinator's spans (nil = a private one).
	Tracer *obs.Tracer
}

// worker is one registered popserve instance.
type worker struct {
	id       string
	url      string
	lastSeen time.Time
	ready    serve.Readiness
	draining bool
}

// session is the coordinator's record of one routed submission: where it
// lives now, and how to replay it from source if that worker dies.
type session struct {
	id   string
	spec popstab.Spec
	// hash is the canonical Spec.Hash ("" for restores).
	hash string
	// submitRounds is the original target (for restores: rounds beyond the
	// snapshot); extraRounds accumulates later /step additions. Their sum
	// is the replay target after a worker loss.
	submitRounds uint64
	extraRounds  uint64
	// restoreSrc holds the originally submitted snapshot for restore
	// sessions, so failover can replay from the same state.
	restoreSrc []byte
	paused     bool
	// workerID/remoteID locate the live job ("" workerID = orphaned,
	// awaiting failover).
	workerID string
	remoteID string
	lastInfo serve.JobInfo
}

// WorkerInfo is the public view of a registered worker.
type WorkerInfo struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Ready    bool   `json:"ready"`
	Draining bool   `json:"draining,omitempty"`
	// Sessions is the coordinator-side count of sessions routed there.
	Sessions int `json:"sessions"`
	// SlotsInUse/Slots mirror the worker's last heartbeat readiness.
	SlotsInUse int `json:"slots_in_use"`
	Slots      int `json:"slots"`
	// LastSeenMS is the heartbeat age in milliseconds.
	LastSeenMS int64 `json:"last_seen_ms"`
}

// RegisterRequest is the POST /v1/workers body — both initial registration
// and every subsequent heartbeat.
type RegisterRequest struct {
	// URL is the worker's advertised base URL (http://host:port).
	URL string `json:"url"`
	// Readiness is the worker's self-reported capacity.
	Readiness serve.Readiness `json:"readiness"`
}

// RegisterResponse acknowledges a heartbeat.
type RegisterResponse struct {
	ID string `json:"id"`
	// TTLMS is how long the registration lasts without another heartbeat.
	TTLMS int64 `json:"ttl_ms"`
}

// DrainResponse reports a worker drain: Migrated sessions moved with their
// live state over the snapshot path; Replayed were resubmitted from source
// (snapshot unavailable); Errors lists sessions that could do neither and
// stayed orphaned for the sweep to retry.
type DrainResponse struct {
	Worker   string   `json:"worker"`
	Migrated int      `json:"migrated"`
	Replayed int      `json:"replayed"`
	Errors   []string `json:"errors,omitempty"`
}

// CoordinatorMetrics are the coordinator's own counters.
type CoordinatorMetrics struct {
	Submissions    uint64 `json:"submissions"`
	DedupeHits     uint64 `json:"dedupe_hits"`
	Throttled      uint64 `json:"throttled,omitempty"`
	Migrations     uint64 `json:"migrations,omitempty"`
	Failovers      uint64 `json:"failovers,omitempty"`
	WorkersExpired uint64 `json:"workers_expired,omitempty"`
	Sessions       int    `json:"sessions"`
	Workers        int    `json:"workers"`
}

// FleetMetrics is the GET /v1/metrics payload of a coordinator: its own
// counters, the field-wise sum over live workers (Fleet.SimRuns is the
// fleet-wide dedupe measure: a deduped sweep of K distinct specs shows
// exactly K), and the per-worker breakdown.
type FleetMetrics struct {
	Coordinator CoordinatorMetrics       `json:"coordinator"`
	Fleet       serve.Metrics            `json:"fleet"`
	Workers     map[string]serve.Metrics `json:"workers"`
}

// FleetReadiness is the GET /v1/readyz payload of a coordinator.
type FleetReadiness struct {
	// Ready: at least one ready worker, not draining, admission open.
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
	Workers  int  `json:"workers"`
	// ReadyWorkers counts workers whose last heartbeat reported ready.
	ReadyWorkers  int  `json:"ready_workers"`
	Sessions      int  `json:"sessions"`
	AdmissionOpen bool `json:"admission_open"`
}

// Coordinator routes submissions across registered workers and keeps
// enough state to move or replay every session when the fleet changes.
// Safe for concurrent use.
type Coordinator struct {
	cfg    Config
	router Router
	gate   *serve.TokenBucket
	client *http.Client

	mu         sync.Mutex
	workers    map[string]*worker  // by id
	byURL      map[string]*worker  // registration identity
	sessions   map[string]*session // by coordinator id
	byKey      map[string]*session // fleet dedupe index: hash/rounds
	byRemote   map[string]*session // workerID+"/"+remoteID → session
	nextWorker uint64
	nextID     uint64
	closed     bool

	// coordObs carries the registry-backed counters under their historic
	// names (c.submissions.Add(1) etc.) plus the tracer and gauge plumbing.
	coordObs

	sweepMu   sync.Mutex // serializes sweep passes
	sweepStop chan struct{}
	sweepDone chan struct{}
}

// NewCoordinator starts a coordinator (and its sweep loop unless
// SweepInterval < 0).
func NewCoordinator(cfg Config) *Coordinator {
	if cfg.Router == nil {
		cfg.Router = &Affinity{}
	}
	if cfg.WorkerTTL <= 0 {
		cfg.WorkerTTL = 10 * time.Second
	}
	if cfg.SweepInterval == 0 {
		cfg.SweepInterval = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.NewTracer("popcoord", 0, 0)
	}
	c := &Coordinator{
		cfg:      cfg,
		router:   cfg.Router,
		client:   cfg.Client,
		workers:  make(map[string]*worker),
		byURL:    make(map[string]*worker),
		sessions: make(map[string]*session),
		byKey:    make(map[string]*session),
		byRemote: make(map[string]*session),
		coordObs: newCoordObs(cfg.Registry, cfg.Tracer),
	}
	c.registerObs()
	if cfg.SubmitRate > 0 {
		c.gate = serve.NewTokenBucket(cfg.SubmitRate, cfg.SubmitBurst)
	}
	if cfg.SweepInterval > 0 {
		c.sweepStop = make(chan struct{})
		c.sweepDone = make(chan struct{})
		go c.sweepLoop()
	}
	return c
}

// Close stops the sweep loop and refuses further submissions. Workers keep
// running their sessions; a coordinator restart re-learns the fleet from
// heartbeats (sessions routed by a previous incarnation are not re-owned).
func (c *Coordinator) Close() {
	c.mu.Lock()
	closed := c.closed
	c.closed = true
	c.mu.Unlock()
	if closed {
		return
	}
	if c.sweepStop != nil {
		close(c.sweepStop)
		<-c.sweepDone
	}
}

// Register records a heartbeat, assigning an ID on first contact. The URL
// is the registration identity: re-registering an existing URL refreshes
// its TTL and readiness.
func (c *Coordinator) Register(req RegisterRequest) (RegisterResponse, error) {
	if req.URL == "" {
		return RegisterResponse{}, serve.BadRequest(errors.New("register: missing url"))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return RegisterResponse{}, serve.ErrClosed
	}
	w, ok := c.byURL[req.URL]
	if !ok {
		c.nextWorker++
		w = &worker{id: fmt.Sprintf("w-%03d", c.nextWorker), url: req.URL}
		c.workers[w.id] = w
		c.byURL[req.URL] = w
	}
	w.lastSeen = time.Now()
	w.ready = req.Readiness
	return RegisterResponse{ID: w.id, TTLMS: c.cfg.WorkerTTL.Milliseconds()}, nil
}

// Workers lists the registry, ordered by ID.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerInfo{
			ID:         w.id,
			URL:        w.url,
			Ready:      w.ready.Ready,
			Draining:   w.draining,
			Sessions:   c.ownedLocked(w.id),
			SlotsInUse: w.ready.SlotsInUse,
			Slots:      w.ready.Slots,
			LastSeenMS: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// ownedLocked counts sessions routed to a worker (caller holds c.mu).
func (c *Coordinator) ownedLocked(workerID string) int {
	n := 0
	for _, s := range c.sessions {
		if s.workerID == workerID {
			n++
		}
	}
	return n
}

// candidatesLocked builds the router's view of the routable fleet (caller
// holds c.mu). Draining workers take no new sessions.
func (c *Coordinator) candidatesLocked() []Candidate {
	cands := make([]Candidate, 0, len(c.workers))
	for _, w := range c.workers {
		if w.draining {
			continue
		}
		cands = append(cands, Candidate{
			ID:         w.id,
			SlotsInUse: w.ready.SlotsInUse,
			Slots:      w.ready.Slots,
			Sessions:   c.ownedLocked(w.id),
			Ready:      w.ready.Ready,
		})
	}
	// Deterministic base order so router policies are reproducible.
	sort.Slice(cands, func(i, k int) bool { return cands[i].ID < cands[k].ID })
	return cands
}

// errNoWorkers is the routable-fleet-is-empty rejection.
func errNoWorkers() error {
	return &serve.APIError{
		Status: http.StatusServiceUnavailable,
		Code:   serve.CodeNoWorkers,
		Err:    errors.New("cluster: no routable worker"),
	}
}

// Submit routes a submission. Fleet-level dedupe is answered from the
// coordinator's index without a worker round-trip or an admission token;
// misses pass the fleet gate, are routed (affinity sends identical specs to
// the same worker, making concurrent-duplicate dedupe exact), and recorded
// for migration/failover. Restores (snapshot != nil) bypass the dedupe
// index like they do on a single worker.
func (c *Coordinator) Submit(ctx context.Context, req serve.SubmitRequest) (serve.SubmitResponse, error) {
	restore := len(req.Snapshot) > 0
	hash := ""
	if !restore {
		h, err := req.Spec.Hash()
		if err != nil {
			return serve.SubmitResponse{}, fmt.Errorf("%w: %v", serve.ErrInvalidSpec, err)
		}
		hash = h
	}
	key := fmt.Sprintf("%s/%d", hash, req.Rounds)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return serve.SubmitResponse{}, serve.ErrClosed
	}
	c.submissions.Add(1)
	if !restore {
		if s, ok := c.byKey[key]; ok {
			c.dedupeHits.Add(1)
			id := s.id
			c.mu.Unlock()
			info, _ := c.Info(ctx, id)
			return serve.SubmitResponse{ID: id, Deduped: true, Info: info}, nil
		}
	}
	if c.gate != nil {
		if retry, ok := c.gate.Admit(time.Now()); !ok {
			c.throttled.Add(1)
			c.mu.Unlock()
			return serve.SubmitResponse{}, &serve.ThrottledError{RetryAfter: retry}
		}
	}
	cands := c.candidatesLocked()
	c.mu.Unlock()

	// Route and forward, stepping to the next candidate when one is
	// unreachable (its expiry is left to the heartbeat sweep). The whole
	// decision — including forwards to workers that turned out dead — is one
	// "route" span under the submission's trace.
	endRoute := c.tracer.Start(obs.TraceID(ctx), "route")
	var (
		resp serve.SubmitResponse
		wID  string
		err  error
	)
	for len(cands) > 0 {
		i := c.router.Pick(cands, hash)
		if i < 0 {
			break
		}
		wID = cands[i].ID
		url, ok := c.workerURL(wID)
		if !ok {
			cands = append(cands[:i], cands[i+1:]...)
			continue
		}
		err = c.timedJSON(ctx, wID, http.MethodPost, url+"/v1/sessions", req, &resp)
		if isUnreachable(err) {
			c.markUnreachable(wID)
			cands = append(cands[:i], cands[i+1:]...)
			continue
		}
		break
	}
	endRoute("worker", wID, "hash", hash)
	if wID == "" {
		return serve.SubmitResponse{}, errNoWorkers()
	}
	if err != nil {
		return serve.SubmitResponse{}, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	// The worker may have collapsed this onto a job another coordinator
	// session already owns (a racing duplicate that was admitted before
	// the first response landed, or a failover replay): reuse that record
	// instead of double-booking the remote job.
	rkey := wID + "/" + resp.ID
	if s, ok := c.byRemote[rkey]; ok && !restore {
		c.dedupeHits.Add(1)
		s.lastInfo = resp.Info
		resp.ID = s.id
		resp.Deduped = true
		resp.Info.ID = s.id
		return resp, nil
	}
	c.nextID++
	s := &session{
		id:           fmt.Sprintf("c-%06d", c.nextID),
		spec:         req.Spec,
		hash:         hash,
		submitRounds: req.Rounds,
		restoreSrc:   req.Snapshot,
		paused:       restore && req.Paused,
		workerID:     wID,
		remoteID:     resp.ID,
		lastInfo:     resp.Info,
	}
	c.sessions[s.id] = s
	c.byRemote[rkey] = s
	if !restore {
		c.byKey[key] = s
	}
	resp.ID = s.id
	resp.Info.ID = s.id
	resp.Info.Hash = hash
	return resp, nil
}

// lookup resolves a coordinator session ID to its current placement.
func (c *Coordinator) lookup(id string) (*session, string, string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sessions[id]
	if !ok {
		return nil, "", "", fmt.Errorf("%w: %s", serve.ErrUnknownSession, id)
	}
	if s.workerID == "" {
		return nil, "", "", &serve.APIError{
			Status: http.StatusServiceUnavailable,
			Code:   serve.CodeNoWorkers,
			Err:    fmt.Errorf("cluster: session %s awaiting failover", id),
		}
	}
	w, ok := c.workers[s.workerID]
	if !ok {
		return nil, "", "", &serve.APIError{
			Status: http.StatusServiceUnavailable,
			Code:   serve.CodeNoWorkers,
			Err:    fmt.Errorf("cluster: session %s awaiting failover", id),
		}
	}
	return s, w.url, s.remoteID, nil
}

// proxyInfo is a session op that returns the remote job's info with the ID
// rewritten to the coordinator's.
func (c *Coordinator) proxyInfo(ctx context.Context, id, method, path string, body any) (serve.JobInfo, error) {
	s, url, rid, err := c.lookup(id)
	if err != nil {
		return serve.JobInfo{}, err
	}
	var info serve.JobInfo
	if err := c.timedJSON(ctx, s.workerID, method, url+"/v1/sessions/"+rid+path, body, &info); err != nil {
		c.noteProxyError(s, err)
		return serve.JobInfo{}, err
	}
	c.mu.Lock()
	s.lastInfo = info
	c.mu.Unlock()
	info.ID = id
	// A migrated session lives on its new worker as a restore, which is not
	// content-addressed there — but the coordinator's identity is: keep
	// reporting the original hash across moves.
	if s.hash != "" {
		info.Hash = s.hash
	}
	return info, nil
}

// Info proxies GET /v1/sessions/{id}.
func (c *Coordinator) Info(ctx context.Context, id string) (serve.JobInfo, error) {
	return c.proxyInfo(ctx, id, http.MethodGet, "", nil)
}

// Step proxies POST step, recording the added rounds for failover replay.
func (c *Coordinator) Step(ctx context.Context, id string, rounds uint64) (serve.JobInfo, error) {
	info, err := c.proxyInfo(ctx, id, http.MethodPost, "/step", serve.StepRequest{Rounds: rounds})
	if err == nil {
		c.mu.Lock()
		if s, ok := c.sessions[id]; ok {
			s.extraRounds += rounds
		}
		c.mu.Unlock()
	}
	return info, err
}

// Pause proxies POST pause.
func (c *Coordinator) Pause(ctx context.Context, id string) (serve.JobInfo, error) {
	info, err := c.proxyInfo(ctx, id, http.MethodPost, "/pause", nil)
	if err == nil {
		c.setPaused(id, true)
	}
	return info, err
}

// Resume proxies POST resume.
func (c *Coordinator) Resume(ctx context.Context, id string) (serve.JobInfo, error) {
	info, err := c.proxyInfo(ctx, id, http.MethodPost, "/resume", nil)
	if err == nil {
		c.setPaused(id, false)
	}
	return info, err
}

// setPaused records the intended pause state (replayed on failover).
func (c *Coordinator) setPaused(id string, paused bool) {
	c.mu.Lock()
	if s, ok := c.sessions[id]; ok {
		s.paused = paused
	}
	c.mu.Unlock()
}

// Snapshot proxies GET snapshot, rewriting the ID.
func (c *Coordinator) Snapshot(ctx context.Context, id string) (serve.SnapshotResponse, error) {
	s, url, rid, err := c.lookup(id)
	if err != nil {
		return serve.SnapshotResponse{}, err
	}
	var resp serve.SnapshotResponse
	if err := c.timedJSON(ctx, s.workerID, http.MethodGet, url+"/v1/sessions/"+rid+"/snapshot", nil, &resp); err != nil {
		c.noteProxyError(s, err)
		return serve.SnapshotResponse{}, err
	}
	resp.ID = id
	return resp, nil
}

// Wait proxies the long-poll, passing the raw query through.
func (c *Coordinator) Wait(ctx context.Context, id, rawQuery string) (serve.WaitResponse, error) {
	s, url, rid, err := c.lookup(id)
	if err != nil {
		return serve.WaitResponse{}, err
	}
	target := url + "/v1/sessions/" + rid + "/wait"
	if rawQuery != "" {
		target += "?" + rawQuery
	}
	var resp serve.WaitResponse
	if err := c.timedJSON(ctx, s.workerID, http.MethodGet, target, nil, &resp); err != nil {
		c.noteProxyError(s, err)
		return serve.WaitResponse{}, err
	}
	c.mu.Lock()
	s.lastInfo = resp.Info
	c.mu.Unlock()
	resp.Info.ID = id
	if s.hash != "" {
		resp.Info.Hash = s.hash
	}
	return resp, nil
}

// List reports every coordinator session from its last observed info
// (refreshed by any proxied call; a quiet session's stats may lag the
// worker by design — List is an index, not a poll of the fleet).
func (c *Coordinator) List() []serve.JobInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]serve.JobInfo, 0, len(c.sessions))
	for _, s := range c.sessions {
		info := s.lastInfo
		info.ID = s.id
		if s.hash != "" {
			info.Hash = s.hash
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Result resolves the content-addressed store: the completed session for a
// spec hash, wherever it lives now (migration moves the bytes with the
// session, so this follows the mapping instead of re-asking the original
// worker). Known-but-running hashes answer result_pending.
func (c *Coordinator) Result(ctx context.Context, hash string) (serve.ResultResponse, error) {
	c.mu.Lock()
	var cands []*session
	for _, s := range c.sessions {
		if s.hash == hash {
			cands = append(cands, s)
		}
	}
	c.mu.Unlock()
	if len(cands) == 0 {
		return serve.ResultResponse{}, fmt.Errorf("%w: %s", serve.ErrNoResult, hash)
	}
	// Prefer the longest-target run among completed candidates.
	sort.Slice(cands, func(i, k int) bool {
		return cands[i].submitRounds+cands[i].extraRounds > cands[k].submitRounds+cands[k].extraRounds
	})
	for _, s := range cands {
		info, err := c.Info(ctx, s.id)
		if err != nil || info.Status != serve.StatusDone {
			continue
		}
		snap, err := c.Snapshot(ctx, s.id)
		if err != nil {
			continue
		}
		return serve.ResultResponse{
			Hash: hash, ID: s.id, Spec: snap.Spec, Info: info, Snapshot: snap.Snapshot,
		}, nil
	}
	return serve.ResultResponse{}, fmt.Errorf("%w: %s", serve.ErrResultPending, hash)
}

// Readiness aggregates worker health: the fleet is ready while at least one
// worker reports ready and the fleet admission gate has a token.
func (c *Coordinator) Readiness() FleetReadiness {
	c.mu.Lock()
	defer c.mu.Unlock()
	ready := 0
	for _, w := range c.workers {
		if w.ready.Ready && !w.draining {
			ready++
		}
	}
	open := c.gate == nil || c.gate.Open(time.Now())
	return FleetReadiness{
		Ready:         !c.closed && ready > 0 && open,
		Draining:      c.closed,
		Workers:       len(c.workers),
		ReadyWorkers:  ready,
		Sessions:      len(c.sessions),
		AdmissionOpen: open,
	}
}

// Metrics aggregates the live fleet: each worker's /v1/metrics is fetched
// concurrently (bounded per-call) and summed field-wise.
func (c *Coordinator) Metrics(ctx context.Context) FleetMetrics {
	c.mu.Lock()
	type target struct{ id, url string }
	targets := make([]target, 0, len(c.workers))
	for _, w := range c.workers {
		targets = append(targets, target{w.id, w.url})
	}
	coord := CoordinatorMetrics{
		Submissions:    c.submissions.Value(),
		DedupeHits:     c.dedupeHits.Value(),
		Throttled:      c.throttled.Value(),
		Migrations:     c.migrations.Value(),
		Failovers:      c.failovers.Value(),
		WorkersExpired: c.workerExpired.Value(),
		Sessions:       len(c.sessions),
		Workers:        len(c.workers),
	}
	c.mu.Unlock()

	per := make(map[string]serve.Metrics, len(targets))
	var permu sync.Mutex
	var wg sync.WaitGroup
	for _, t := range targets {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, 3*time.Second)
			defer cancel()
			var m serve.Metrics
			if err := c.timedJSON(cctx, t.id, http.MethodGet, t.url+"/v1/metrics", nil, &m); err != nil {
				return
			}
			permu.Lock()
			per[t.id] = m
			permu.Unlock()
		}()
	}
	wg.Wait()

	var fleet serve.Metrics
	for _, m := range per {
		fleet.Submissions += m.Submissions
		fleet.SimRuns += m.SimRuns
		fleet.DedupeHits += m.DedupeHits
		fleet.Completed += m.Completed
		fleet.Failed += m.Failed
		fleet.Panics += m.Panics
		fleet.Throttled += m.Throttled
		fleet.Checkpoints += m.Checkpoints
		fleet.CheckpointErrors += m.CheckpointErrors
		fleet.Recovered += m.Recovered
		fleet.Hibernated += m.Hibernated
		fleet.Revived += m.Revived
		fleet.Reaped += m.Reaped
		fleet.Sessions += m.Sessions
		fleet.ActiveRunners += m.ActiveRunners
	}
	return FleetMetrics{Coordinator: coord, Fleet: fleet, Workers: per}
}

// workerURL resolves a worker ID to its base URL.
func (c *Coordinator) workerURL(id string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok {
		return "", false
	}
	return w.url, true
}

// noteProxyError zeroes an unreachable worker's heartbeat so the next sweep
// expires it and fails its sessions over, then kicks a sweep.
func (c *Coordinator) noteProxyError(s *session, err error) {
	if !isUnreachable(err) {
		return
	}
	c.mu.Lock()
	w, ok := c.workers[s.workerID]
	if ok {
		w.lastSeen = time.Time{}
	}
	c.mu.Unlock()
	if ok {
		go c.SweepNow()
	}
}

// markUnreachable zeroes a worker's heartbeat (sweep will expire it).
func (c *Coordinator) markUnreachable(id string) {
	c.mu.Lock()
	if w, ok := c.workers[id]; ok {
		w.lastSeen = time.Time{}
	}
	c.mu.Unlock()
}

// isUnreachable classifies transport-level proxy failures (as opposed to a
// worker's own error envelope, which passes through verbatim).
func isUnreachable(err error) bool {
	var apiErr *serve.APIError
	return errors.As(err, &apiErr) && apiErr.Code == serve.CodeWorkerUnreachable
}

// doJSON performs one worker call: JSON request body (nil = none), JSON
// response decode, and error-envelope passthrough — a worker's non-2xx
// envelope is re-raised as an APIError with the same status and code, so
// the coordinator's client sees exactly what the worker said. Transport
// failures become 502 worker_unreachable.
func (c *Coordinator) doJSON(ctx context.Context, method, url string, body, out any) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Propagate the caller's trace so the worker's spans and log lines land
	// under the same ID the coordinator's edge minted (or adopted).
	if id := obs.TraceID(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return &serve.APIError{
			Status: http.StatusBadGateway,
			Code:   serve.CodeWorkerUnreachable,
			Err:    fmt.Errorf("cluster: worker call %s %s: %w", method, url, err),
		}
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var envelope serve.ErrorBody
		if derr := json.NewDecoder(resp.Body).Decode(&envelope); derr != nil || envelope.Error.Code == "" {
			return &serve.APIError{
				Status: http.StatusBadGateway,
				Code:   serve.CodeWorkerUnreachable,
				Err:    fmt.Errorf("cluster: worker %s %s: status %d with undecodable error", method, url, resp.StatusCode),
			}
		}
		return &serve.APIError{
			Status:     resp.StatusCode,
			Code:       envelope.Error.Code,
			Err:        errors.New(envelope.Error.Message),
			RetryAfter: time.Duration(envelope.Error.RetryAfterMS) * time.Millisecond,
		}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
