// Package cluster is the federation layer: a coordinator that registers
// remote popserve workers, routes session submissions to them through a
// pluggable Router, proxies per-session control calls to the owning worker,
// migrates sessions between workers over the wire-codec snapshot path, and
// aggregates the fleet's dedupe cache into a content-addressed result store
// keyed by Spec.Hash. The coordinator speaks the same /v1 contract as a
// worker (internal/serve), so clients cannot tell one popserve from a
// fleet. See DESIGN.md §11.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// Candidate is the router's view of one live worker at pick time.
type Candidate struct {
	// ID is the coordinator-assigned worker ID.
	ID string
	// SlotsInUse / Slots describe the worker's step-pool occupancy, from
	// its last heartbeat.
	SlotsInUse int
	Slots      int
	// Sessions is the worker's resident session count.
	Sessions int
	// Ready mirrors the worker's last-reported readiness.
	Ready bool
}

// Router decides which worker receives a new submission. Pick returns an
// index into cands, or -1 to refuse (no candidate will do). specHash is the
// submission's canonical Spec.Hash — empty for snapshot restores, whose
// state is not content-addressed. Routers must tolerate cands arriving in
// any order and changing between calls (workers join and die freely).
type Router interface {
	// Name identifies the policy (the -router flag value).
	Name() string
	// Pick chooses a candidate index, -1 if none is acceptable.
	Pick(cands []Candidate, specHash string) int
}

// NewRouter resolves a -router flag value. Empty selects affinity, the
// default: it is the policy that makes fleet-wide dedupe exact, because
// concurrent identical submissions land on the same worker and collapse in
// its cache instead of running twice on two hosts.
func NewRouter(name string) (Router, error) {
	switch name {
	case "", "affinity":
		return &Affinity{}, nil
	case "round-robin":
		return &RoundRobin{}, nil
	case "least-loaded":
		return &LeastLoaded{}, nil
	default:
		return nil, fmt.Errorf("cluster: unknown router %q (want affinity, round-robin, or least-loaded)", name)
	}
}

// RoundRobin rotates through candidates, preferring ready ones.
type RoundRobin struct {
	n atomic.Uint64
}

// Name implements Router.
func (r *RoundRobin) Name() string { return "round-robin" }

// Pick implements Router.
func (r *RoundRobin) Pick(cands []Candidate, _ string) int {
	if len(cands) == 0 {
		return -1
	}
	start := int(r.n.Add(1)-1) % len(cands)
	for i := range cands {
		k := (start + i) % len(cands)
		if cands[k].Ready {
			return k
		}
	}
	return start
}

// LeastLoaded picks the worker with the lowest step-pool occupancy
// (SlotsInUse/Slots), breaking ties by fewest resident sessions. Ready
// workers always beat unready ones.
type LeastLoaded struct{}

// Name implements Router.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Router.
func (LeastLoaded) Pick(cands []Candidate, _ string) int {
	best := -1
	for i, c := range cands {
		if best == -1 || lessLoaded(c, cands[best]) {
			best = i
		}
	}
	return best
}

// lessLoaded orders candidates: ready first, then slot occupancy, then
// session count, then ID for determinism.
func lessLoaded(a, b Candidate) bool {
	if a.Ready != b.Ready {
		return a.Ready
	}
	// Cross-multiplied occupancy comparison avoids division (Slots can be
	// 0 before the first heartbeat carries pool sizes; treat as full).
	ao, bo := occupancy(a), occupancy(b)
	if ao != bo {
		return ao < bo
	}
	if a.Sessions != b.Sessions {
		return a.Sessions < b.Sessions
	}
	return a.ID < b.ID
}

// occupancy is the candidate's slot saturation in [0,1]; slotless
// candidates count as saturated.
func occupancy(c Candidate) float64 {
	if c.Slots <= 0 {
		return 1
	}
	return float64(c.SlotsInUse) / float64(c.Slots)
}

// Affinity routes by rendezvous (highest-random-weight) hashing of
// (workerID, specHash): every worker scores the hash, the top score wins.
// The same spec always lands on the same live worker, so a dedupe hit finds
// the worker already holding the result, and membership changes only remap
// the specs whose top scorer changed — no ring to rebalance. Submissions
// without a hash (snapshot restores) fall back to least-loaded.
type Affinity struct {
	fallback LeastLoaded
}

// Name implements Router.
func (a *Affinity) Name() string { return "affinity" }

// Pick implements Router.
func (a *Affinity) Pick(cands []Candidate, specHash string) int {
	if len(cands) == 0 {
		return -1
	}
	if specHash == "" {
		return a.fallback.Pick(cands, specHash)
	}
	best, bestScore := -1, uint64(0)
	for i, c := range cands {
		s := rendezvousScore(c.ID, specHash)
		if best == -1 || s > bestScore || (s == bestScore && c.ID < cands[best].ID) {
			best, bestScore = i, s
		}
	}
	return best
}

// rendezvousScore is the HRW weight of (worker, hash). The raw FNV sum is
// pushed through a 64-bit avalanche finalizer: FNV alone barely mixes its
// trailing bytes, so without it the workerID prefix dominates the score and
// one worker out-bids the fleet for every hash.
func rendezvousScore(workerID, specHash string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(workerID))
	h.Write([]byte{0})
	h.Write([]byte(specHash))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
