package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"

	"popstab/internal/obs"
	"popstab/internal/serve"
)

// HTTP surface of the coordinator: the worker /v1 contract plus the fleet
// routes, all on the same error envelope (serve.WriteError), so a client
// pointed at a coordinator cannot tell it from a single popserve:
//
//	POST /v1/workers                 register / heartbeat
//	GET  /v1/workers                 fleet listing
//	POST /v1/workers/{id}/drain      migrate sessions off + deregister
//	POST /v1/sessions                route a submission (dedupe index first)
//	GET  /v1/sessions                coordinator session index
//	GET  /v1/sessions/{id}[...]      proxied to the owning worker
//	GET  /v1/results/{hash}          content-addressed fleet result store
//	GET  /v1/healthz                 liveness
//	GET  /v1/readyz                  aggregate worker health
//	GET  /v1/metrics                 coordinator + fleet-summed + per-worker

// NewHandler exposes the coordinator over HTTP.
func NewHandler(c *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			serve.WriteError(w, serve.BadRequest(fmt.Errorf("bad request body: %w", err)))
			return
		}
		resp, err := c.Register(req)
		if err != nil {
			serve.WriteError(w, err)
			return
		}
		serve.WriteJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/workers", func(w http.ResponseWriter, r *http.Request) {
		serve.WriteJSON(w, http.StatusOK, c.Workers())
	})
	mux.HandleFunc("POST /v1/workers/{id}/drain", func(w http.ResponseWriter, r *http.Request) {
		resp, err := c.Drain(r.Context(), r.PathValue("id"))
		if err != nil {
			serve.WriteError(w, err)
			return
		}
		serve.WriteJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		serve.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok", "role": "coordinator"})
	})
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		rd := c.Readiness()
		code := http.StatusOK
		if !rd.Ready {
			code = http.StatusServiceUnavailable
		}
		serve.WriteJSON(w, code, rd)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		if serve.WantsPrometheus(r) {
			serve.WritePrometheus(w, c.Registry())
			return
		}
		serve.WriteJSON(w, http.StatusOK, c.Metrics(r.Context()))
	})
	mux.HandleFunc("GET /v1/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		tr := c.Trace(r.Context(), r.PathValue("id"))
		if len(tr.Spans) == 0 {
			serve.WriteError(w, &serve.APIError{
				Status: http.StatusNotFound,
				Code:   serve.CodeUnknownTrace,
				Err:    fmt.Errorf("no spans recorded for trace %q", tr.Trace),
			})
			return
		}
		serve.WriteJSON(w, http.StatusOK, tr)
	})
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req serve.SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			serve.WriteError(w, serve.BadRequest(fmt.Errorf("bad request body: %w", err)))
			return
		}
		resp, err := c.Submit(r.Context(), req)
		if err != nil {
			serve.WriteError(w, err)
			return
		}
		serve.WriteJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		serve.WriteJSON(w, http.StatusOK, c.List())
	})
	mux.HandleFunc("GET /v1/sessions/{id}", func(w http.ResponseWriter, r *http.Request) {
		info, err := c.Info(r.Context(), r.PathValue("id"))
		writeInfo(w, info, err)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/step", func(w http.ResponseWriter, r *http.Request) {
		var req serve.StepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			serve.WriteError(w, serve.BadRequest(fmt.Errorf("bad request body: %w", err)))
			return
		}
		if req.Rounds == 0 {
			serve.WriteError(w, serve.BadRequest(fmt.Errorf("step of 0 rounds")))
			return
		}
		info, err := c.Step(r.Context(), r.PathValue("id"), req.Rounds)
		writeInfo(w, info, err)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/pause", func(w http.ResponseWriter, r *http.Request) {
		info, err := c.Pause(r.Context(), r.PathValue("id"))
		writeInfo(w, info, err)
	})
	mux.HandleFunc("POST /v1/sessions/{id}/resume", func(w http.ResponseWriter, r *http.Request) {
		info, err := c.Resume(r.Context(), r.PathValue("id"))
		writeInfo(w, info, err)
	})
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		resp, err := c.Snapshot(r.Context(), r.PathValue("id"))
		if err != nil {
			serve.WriteError(w, err)
			return
		}
		serve.WriteJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/sessions/{id}/wait", func(w http.ResponseWriter, r *http.Request) {
		resp, err := c.Wait(r.Context(), r.PathValue("id"), r.URL.RawQuery)
		if err != nil {
			serve.WriteError(w, err)
			return
		}
		serve.WriteJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("GET /v1/sessions/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		c.streamProxy(w, r, r.PathValue("id"))
	})
	mux.HandleFunc("GET /v1/results/{hash}", func(w http.ResponseWriter, r *http.Request) {
		resp, err := c.Result(r.Context(), r.PathValue("hash"))
		if err != nil {
			serve.WriteError(w, err)
			return
		}
		serve.WriteJSON(w, http.StatusOK, resp)
	})
	// The trace middleware sits at the coordinator's edge: the ID it mints
	// (or adopts) flows through r.Context() into every proxied worker call.
	return obs.Middleware(c.Tracer(), nil, mux)
}

// writeInfo finishes a proxied info-returning op.
func writeInfo(w http.ResponseWriter, info serve.JobInfo, err error) {
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	serve.WriteJSON(w, http.StatusOK, info)
}

// streamProxy pipes the owning worker's SSE feed through, flushing per
// chunk so events and heartbeats arrive live. Events carry the worker-side
// session ID in their payloads; the coordinator ID is the one in the
// request path.
func (c *Coordinator) streamProxy(w http.ResponseWriter, r *http.Request, id string) {
	s, url, rid, err := c.lookup(id)
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		serve.WriteError(w, &serve.APIError{
			Status: http.StatusNotImplemented,
			Code:   serve.CodeUnsupported,
			Err:    fmt.Errorf("streaming unsupported by this connection"),
		})
		return
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url+"/v1/sessions/"+rid+"/stream", nil)
	if err != nil {
		serve.WriteError(w, err)
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		uerr := &serve.APIError{
			Status: http.StatusBadGateway,
			Code:   serve.CodeWorkerUnreachable,
			Err:    fmt.Errorf("cluster: stream: %w", err),
		}
		c.noteProxyError(s, uerr)
		serve.WriteError(w, uerr)
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(resp.StatusCode)
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			fl.Flush()
		}
		if err != nil {
			return
		}
	}
}
