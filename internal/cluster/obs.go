package cluster

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"time"

	"popstab/internal/obs"
	"popstab/internal/serve"
)

// Coordinator observability (DESIGN.md §13). The coordinator keeps its own
// registry — its counters ARE the registry's atomics, so the JSON
// FleetMetrics view and the Prometheus exposition cannot drift — plus a
// span store that stitches the fleet together: the trace ID minted (or
// adopted) at the coordinator's HTTP edge rides the X-Popstab-Trace header
// on every proxied worker call, and GET /v1/trace/{id} merges the
// coordinator's route/proxy spans with whatever the workers recorded under
// the same ID.

// coordObs bundles the coordinator's registry-backed instruments.
type coordObs struct {
	registry *obs.Registry
	tracer   *obs.Tracer

	submissions, dedupeHits, throttled   *obs.Counter
	migrations, failovers, workerExpired *obs.Counter

	// workerLabels tracks the per-worker gauge label sets currently
	// registered, so the collect hook can unregister departed workers.
	gaugeMu      sync.Mutex
	workerGauges map[string]struct{}
}

// perWorkerGauges are the gauge families maintained per live worker,
// refreshed at scrape time by the OnCollect hook.
var perWorkerGauges = []struct{ name, help string }{
	{"popcoord_worker_heartbeat_lag_seconds", "Age of the worker's last heartbeat."},
	{"popcoord_worker_sessions", "Coordinator sessions routed to the worker."},
	{"popcoord_worker_slots_in_use", "Step-pool slots in use per the worker's last heartbeat."},
	{"popcoord_worker_slots", "Step-pool capacity per the worker's last heartbeat."},
	{"popcoord_worker_ready", "1 when the worker's last heartbeat reported ready."},
}

// newCoordObs registers the coordinator's instruments on reg.
func newCoordObs(reg *obs.Registry, tracer *obs.Tracer) coordObs {
	return coordObs{
		registry:    reg,
		tracer:      tracer,
		submissions: reg.Counter("popcoord_submissions_total", "Submissions accepted at the coordinator."),
		dedupeHits:  reg.Counter("popcoord_dedupe_hits_total", "Submissions answered from the fleet dedupe index."),
		throttled:   reg.Counter("popcoord_throttled_total", "Submissions rejected by the fleet admission gate."),
		migrations:  reg.Counter("popcoord_migrations_total", "Sessions moved live between workers."),
		failovers:   reg.Counter("popcoord_failovers_total", "Sessions replayed after losing their worker."),
		workerExpired: reg.Counter("popcoord_workers_expired_total",
			"Workers expired after missing their heartbeat TTL."),
		workerGauges: make(map[string]struct{}),
	}
}

// registerObs wires the scrape-time views: fleet-size gauges and the
// per-worker gauge refresh hook. Called once from NewCoordinator.
func (c *Coordinator) registerObs() {
	reg := c.registry
	reg.GaugeFunc("popcoord_sessions", "Sessions in the coordinator's index.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.sessions))
	})
	reg.GaugeFunc("popcoord_workers", "Registered workers.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.workers))
	})
	reg.OnCollect(c.syncWorkerGauges)
}

// syncWorkerGauges refreshes the per-worker gauges from the live registry
// and unregisters the label sets of departed workers — the gauge lifecycle
// follows worker registration, not scrape history.
func (c *Coordinator) syncWorkerGauges() {
	now := time.Now()
	type row struct {
		id                     string
		lag                    float64
		sessions, inUse, slots float64
		ready                  float64
	}
	c.mu.Lock()
	rows := make([]row, 0, len(c.workers))
	for _, w := range c.workers {
		rd := 0.0
		if w.ready.Ready {
			rd = 1
		}
		rows = append(rows, row{
			id:       w.id,
			lag:      now.Sub(w.lastSeen).Seconds(),
			sessions: float64(c.ownedLocked(w.id)),
			inUse:    float64(w.ready.SlotsInUse),
			slots:    float64(w.ready.Slots),
			ready:    rd,
		})
	}
	c.mu.Unlock()

	c.gaugeMu.Lock()
	defer c.gaugeMu.Unlock()
	live := make(map[string]struct{}, len(rows))
	for _, r := range rows {
		live[r.id] = struct{}{}
		for i, v := range []float64{r.lag, r.sessions, r.inUse, r.slots, r.ready} {
			g := perWorkerGauges[i]
			c.registry.Gauge(g.name, g.help, "worker", r.id).Set(v)
		}
	}
	for id := range c.workerGauges {
		if _, ok := live[id]; !ok {
			for _, g := range perWorkerGauges {
				c.registry.Unregister(g.name, "worker", id)
			}
		}
	}
	c.workerGauges = live
}

// Registry exposes the coordinator's metrics registry.
func (c *Coordinator) Registry() *obs.Registry { return c.registry }

// Tracer exposes the coordinator's span store.
func (c *Coordinator) Tracer() *obs.Tracer { return c.tracer }

// timedJSON is doJSON plus per-worker latency accounting and a "proxy" span
// under the request's trace: every proxied call a client can correlate ends
// up as one histogram observation and one span.
func (c *Coordinator) timedJSON(ctx context.Context, workerID, method, url string, body, out any) error {
	end := c.tracer.Start(obs.TraceID(ctx), "proxy")
	t := time.Now()
	err := c.doJSON(ctx, method, url, body, out)
	c.registry.Histogram("popcoord_proxy_seconds",
		"Latency of proxied worker calls.", obs.DefBuckets, "worker", workerID).
		Observe(time.Since(t).Seconds())
	if err != nil {
		end("worker", workerID, "method", method, "error", err.Error())
	} else {
		end("worker", workerID, "method", method)
	}
	return err
}

// Trace resolves GET /v1/trace/{id} fleet-wide: the coordinator's own spans
// for the ID merged with every live worker's, ordered by start time. Workers
// that do not answer (or know nothing about the trace) contribute nothing.
func (c *Coordinator) Trace(ctx context.Context, id string) serve.TraceResponse {
	spans := c.tracer.Spans(id)

	c.mu.Lock()
	urls := make([]string, 0, len(c.workers))
	for _, w := range c.workers {
		urls = append(urls, w.url)
	}
	c.mu.Unlock()

	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, url := range urls {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, 3*time.Second)
			defer cancel()
			var tr serve.TraceResponse
			if err := c.doJSON(cctx, http.MethodGet, url+"/v1/trace/"+id, nil, &tr); err != nil {
				return
			}
			mu.Lock()
			spans = append(spans, tr.Spans...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	sort.SliceStable(spans, func(i, k int) bool { return spans[i].Start.Before(spans[k].Start) })
	return serve.TraceResponse{Trace: id, Spans: spans}
}
