package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"popstab/internal/serve"
)

// Session movement. Two paths, one correctness argument (DESIGN.md §11):
//
//   - Migration (planned, Drain): pause the session on the old worker, cut
//     a snapshot at a quantum boundary, restore it on a router-picked peer
//     with the outstanding rounds, and resume if it was running. The wire
//     codec round-trips engine state bit-identically (§8), so the migrated
//     run is byte-for-byte the run that would have happened in place.
//   - Failover (unplanned, sweep): the worker is gone, so there is nothing
//     to snapshot. Replay from the submission source instead — the original
//     spec (fresh submissions) or the originally submitted snapshot
//     (restores) — with the full accumulated round target. Determinism
//     (§8: trajectories are a pure function of spec + snapshot + rounds)
//     makes the replayed final state identical to the lost one.
//
// Both paths re-point the coordinator's session record; clients keep their
// coordinator ID and never observe the move, beyond a replayed session
// transiently reporting earlier rounds while it catches up.

// Drain migrates every session off a worker and deregisters it, so the
// process can be stopped without losing state. Sessions whose snapshot
// cannot be cut (worker already gone) are replayed from source; sessions
// that can do neither stay orphaned for the sweep to retry against future
// capacity.
func (c *Coordinator) Drain(ctx context.Context, workerID string) (DrainResponse, error) {
	c.mu.Lock()
	w, ok := c.workers[workerID]
	if !ok {
		c.mu.Unlock()
		return DrainResponse{}, &serve.APIError{
			Status: http.StatusNotFound,
			Code:   serve.CodeUnknownWorker,
			Err:    fmt.Errorf("cluster: unknown worker %s", workerID),
		}
	}
	w.draining = true
	owned := c.ownedSessionsLocked(workerID)
	c.mu.Unlock()

	resp := DrainResponse{Worker: workerID}
	for _, s := range owned {
		switch err := c.migrateSession(ctx, s); {
		case err == nil:
			c.migrations.Add(1)
			resp.Migrated++
		default:
			// Planned path failed (worker died mid-drain, no peer had
			// room, ...): fall back to source replay.
			if rerr := c.replaySession(ctx, s); rerr != nil {
				resp.Errors = append(resp.Errors, fmt.Sprintf("%s: %v", s.id, rerr))
				continue
			}
			c.failovers.Add(1)
			resp.Replayed++
		}
	}

	c.mu.Lock()
	delete(c.workers, workerID)
	delete(c.byURL, w.url)
	c.mu.Unlock()
	return resp, nil
}

// ownedSessionsLocked snapshots the sessions routed to a worker (caller
// holds c.mu).
func (c *Coordinator) ownedSessionsLocked(workerID string) []*session {
	var owned []*session
	for _, s := range c.sessions {
		if s.workerID == workerID {
			owned = append(owned, s)
		}
	}
	return owned
}

// migrateSession moves one live session over the snapshot path.
func (c *Coordinator) migrateSession(ctx context.Context, s *session) error {
	c.mu.Lock()
	oldW, ok := c.workers[s.workerID]
	c.mu.Unlock()
	if !ok {
		return errors.New("cluster: source worker gone")
	}
	base := oldW.url + "/v1/sessions/" + s.remoteID

	// Pause so the snapshot is the state the session stays at; remember
	// whether the pause is ours to undo on the new worker.
	var info serve.JobInfo
	if err := c.doJSON(ctx, http.MethodGet, base, nil, &info); err != nil {
		return err
	}
	wasRunning := info.Status != serve.StatusDone && info.Status != serve.StatusFailed && !s.paused
	if wasRunning {
		if err := c.doJSON(ctx, http.MethodPost, base+"/pause", nil, &info); err != nil {
			return err
		}
	}
	var snap serve.SnapshotResponse
	if err := c.doJSON(ctx, http.MethodGet, base+"/snapshot", nil, &snap); err != nil {
		return err
	}
	// Paused state is stable: re-read info for the exact round the
	// snapshot captured, so the restore target is the true remainder.
	if err := c.doJSON(ctx, http.MethodGet, base, nil, &info); err != nil {
		return err
	}
	remaining := uint64(0)
	if info.TargetRounds > info.Stats.Round {
		remaining = info.TargetRounds - info.Stats.Round
	}

	// Restore on a peer, parked; unpark only after the mapping is updated.
	_, err := c.placeRestore(ctx, s, serve.SubmitRequest{
		Spec: snap.Spec, Snapshot: snap.Snapshot, Rounds: remaining, Paused: true,
	}, s.workerID)
	if err != nil {
		if wasRunning {
			// Roll back: let it keep running where it is.
			var undo serve.JobInfo
			_ = c.doJSON(ctx, http.MethodPost, base+"/resume", nil, &undo)
		}
		return err
	}
	if wasRunning {
		c.mu.Lock()
		url, rid := "", ""
		if w, ok := c.workers[s.workerID]; ok {
			url, rid = w.url, s.remoteID
		}
		c.mu.Unlock()
		if url != "" {
			var undo serve.JobInfo
			_ = c.doJSON(ctx, http.MethodPost, url+"/v1/sessions/"+rid+"/resume", nil, &undo)
		}
	}
	return nil
}

// replaySession rebuilds a session from its submission source on a fresh
// worker (failover: the live state is lost, determinism recovers it).
func (c *Coordinator) replaySession(ctx context.Context, s *session) error {
	c.mu.Lock()
	rounds := s.submitRounds + s.extraRounds
	req := serve.SubmitRequest{Spec: s.spec, Rounds: rounds}
	if s.restoreSrc != nil {
		req.Snapshot = s.restoreSrc
		req.Paused = s.paused
	}
	paused := s.paused
	exclude := s.workerID
	c.mu.Unlock()

	if _, err := c.placeRestore(ctx, s, req, exclude); err != nil {
		return err
	}
	// Fresh submissions cannot be born paused (they enter the worker's
	// dedupe cache as normal runs); park the replay after the fact. The
	// rounds run in between are rounds the session would run on resume
	// anyway — determinism keeps the trajectory identical.
	if paused && s.restoreSrc == nil {
		var undo serve.JobInfo
		s2, url, rid, err := c.lookup(s.id)
		if err == nil && s2 == s {
			_ = c.doJSON(ctx, http.MethodPost, url+"/v1/sessions/"+rid+"/pause", nil, &undo)
		}
	}
	return nil
}

// placeRestore routes req to a worker other than exclude and re-points s at
// the job it lands on.
func (c *Coordinator) placeRestore(ctx context.Context, s *session, req serve.SubmitRequest, exclude string) (string, error) {
	c.mu.Lock()
	cands := c.candidatesLocked()
	hash := s.hash
	c.mu.Unlock()
	for i := 0; i < len(cands); i++ {
		if cands[i].ID == exclude {
			cands = append(cands[:i], cands[i+1:]...)
			break
		}
	}
	var lastErr error
	for len(cands) > 0 {
		i := c.router.Pick(cands, hash)
		if i < 0 {
			break
		}
		wID := cands[i].ID
		url, ok := c.workerURL(wID)
		if !ok {
			cands = append(cands[:i], cands[i+1:]...)
			continue
		}
		var resp serve.SubmitResponse
		if err := c.doJSON(ctx, http.MethodPost, url+"/v1/sessions", req, &resp); err != nil {
			lastErr = err
			if isUnreachable(err) {
				c.markUnreachable(wID)
				cands = append(cands[:i], cands[i+1:]...)
				continue
			}
			return "", err
		}
		c.mu.Lock()
		delete(c.byRemote, s.workerID+"/"+s.remoteID)
		s.workerID = wID
		s.remoteID = resp.ID
		s.lastInfo = resp.Info
		c.byRemote[wID+"/"+resp.ID] = s
		c.mu.Unlock()
		return resp.ID, nil
	}
	if lastErr != nil {
		return "", lastErr
	}
	return "", errNoWorkers()
}

// sweepLoop expires quiet workers on a cadence.
func (c *Coordinator) sweepLoop() {
	defer close(c.sweepDone)
	t := time.NewTicker(c.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-c.sweepStop:
			return
		case <-t.C:
			c.SweepNow()
		}
	}
}

// SweepNow runs one expiry/failover pass: workers whose heartbeat is older
// than WorkerTTL are dropped and their sessions replayed from source onto
// the survivors; previously orphaned sessions are retried too. Exported so
// tests and operators can force a pass.
func (c *Coordinator) SweepNow() (expired, failedOver int) {
	c.sweepMu.Lock()
	defer c.sweepMu.Unlock()

	cutoff := time.Now().Add(-c.cfg.WorkerTTL)
	var orphans []*session
	c.mu.Lock()
	for id, w := range c.workers {
		if w.draining || !w.lastSeen.Before(cutoff) {
			continue
		}
		delete(c.workers, id)
		delete(c.byURL, w.url)
		expired++
		c.workerExpired.Add(1)
		for _, s := range c.ownedSessionsLocked(id) {
			s.workerID = ""
			orphans = append(orphans, s)
		}
	}
	// Sessions orphaned by an earlier pass that found no capacity.
	for _, s := range c.sessions {
		if s.workerID == "" && !containsSession(orphans, s) {
			orphans = append(orphans, s)
		}
	}
	c.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, s := range orphans {
		if err := c.replaySession(ctx, s); err != nil {
			continue
		}
		c.failovers.Add(1)
		failedOver++
	}
	return expired, failedOver
}

// containsSession reports membership by identity.
func containsSession(list []*session, s *session) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
