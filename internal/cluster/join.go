package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"popstab/internal/serve"
)

// JoinConfig parameterizes a worker's membership in a fleet.
type JoinConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Advertise is this worker's base URL as the coordinator should dial
	// it.
	Advertise string
	// Readiness supplies the heartbeat payload (the manager's Readiness
	// method).
	Readiness func() serve.Readiness
	// Interval is the heartbeat cadence (0 = 2s). Keep it well under the
	// coordinator's WorkerTTL.
	Interval time.Duration
	// Client performs the calls (nil = a 5s-timeout client).
	Client *http.Client
	// OnRegister, when set, observes each successful heartbeat (first
	// registration included) — cmd/popserve logs the assigned ID once.
	OnRegister func(RegisterResponse)
}

// Join heartbeats the coordinator until ctx ends: one immediate
// registration (its error is returned so a worker pointed at a dead
// coordinator fails fast at startup), then re-registration every Interval.
// Later failures are retried silently — the coordinator holds the
// registration for its WorkerTTL, so a blip shorter than that is invisible.
func Join(ctx context.Context, cfg JoinConfig) error {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if err := register(ctx, cfg); err != nil {
		return fmt.Errorf("cluster: join %s: %w", cfg.Coordinator, err)
	}
	go func() {
		t := time.NewTicker(cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				_ = register(ctx, cfg)
			}
		}
	}()
	return nil
}

// register performs one heartbeat.
func register(ctx context.Context, cfg JoinConfig) error {
	body := RegisterRequest{URL: cfg.Advertise}
	if cfg.Readiness != nil {
		body.Readiness = cfg.Readiness()
	}
	blob, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.Coordinator+"/v1/workers", bytes.NewReader(blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("coordinator answered %d", resp.StatusCode)
	}
	var reg RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		return err
	}
	if cfg.OnRegister != nil {
		cfg.OnRegister(reg)
	}
	return nil
}
