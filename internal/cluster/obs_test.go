package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"popstab/internal/obs"
	"popstab/internal/serve"
)

// TestTraceEndToEnd drives one submission through a coordinator HTTP server
// backed by a real worker and checks the correlation story the federation
// smoke asserts in CI: one trace ID covers the coordinator's http/route/proxy
// spans AND the worker's http/build/run spans, all merged by the
// coordinator's /v1/trace/{id}.
func TestTraceEndToEnd(t *testing.T) {
	c := NewCoordinator(Config{SweepInterval: -1})
	defer c.Close()
	newFleet(t, c, 1)
	ts := httptest.NewServer(NewHandler(c))
	defer ts.Close()

	const trace = "0123456789abcdef"
	body := strings.NewReader(`{"spec":{"n":4096,"tinner":24,"seed":71},"rounds":48}`)
	req, err := http.NewRequest("POST", ts.URL+"/v1/sessions", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != trace {
		t.Fatalf("trace header not echoed: %q", got)
	}
	var sub serve.SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitFleetDone(t, c, sub.ID)

	resp, err = http.Get(ts.URL + "/v1/trace/" + trace)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace lookup status %d", resp.StatusCode)
	}
	var tr serve.TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	byService := map[string]map[string]bool{}
	for _, sp := range tr.Spans {
		if sp.Trace != trace {
			t.Fatalf("span %s/%s under trace %q", sp.Service, sp.Name, sp.Trace)
		}
		if byService[sp.Service] == nil {
			byService[sp.Service] = map[string]bool{}
		}
		byService[sp.Service][sp.Name] = true
	}
	for _, want := range []string{"http", "route", "proxy"} {
		if !byService["popcoord"][want] {
			t.Fatalf("coordinator missing %q span; have %v", want, byService)
		}
	}
	for _, want := range []string{"http", "build", "run"} {
		if !byService["popserve"][want] {
			t.Fatalf("worker missing %q span; have %v", want, byService)
		}
	}
}

// TestCoordinatorPrometheus checks the coordinator's exposition: its own
// counters agree with the JSON view and the per-worker gauges appear (and
// disappear with their worker).
func TestCoordinatorPrometheus(t *testing.T) {
	c := NewCoordinator(Config{SweepInterval: -1})
	defer c.Close()
	ws := newFleet(t, c, 2)
	ts := httptest.NewServer(NewHandler(c))
	defer ts.Close()

	if _, err := c.Submit(context.Background(), serve.SubmitRequest{Spec: quickSpec(72), Rounds: 32}); err != nil {
		t.Fatal(err)
	}

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/metrics?format=prometheus")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("content type %q", ct)
		}
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}

	body := scrape()
	if !strings.Contains(body, "popcoord_submissions_total 1") {
		t.Fatalf("submissions counter missing:\n%s", body)
	}
	if !strings.Contains(body, "popcoord_workers 2") {
		t.Fatal("workers gauge wrong")
	}
	for _, w := range ws {
		if !strings.Contains(body, `popcoord_worker_slots{worker="`+w.id+`"}`) {
			t.Fatalf("per-worker gauge for %s missing", w.id)
		}
	}
	if !strings.Contains(body, `popcoord_proxy_seconds_count{worker="`+ws[0].id+`"}`) &&
		!strings.Contains(body, `popcoord_proxy_seconds_count{worker="`+ws[1].id+`"}`) {
		t.Fatal("proxy latency histogram missing")
	}

	// Expire a worker: its gauges must leave the exposition after a sweep.
	gone := ws[1]
	c.markUnreachable(gone.id)
	c.SweepNow()
	body = scrape()
	if strings.Contains(body, `popcoord_worker_slots{worker="`+gone.id+`"}`) {
		t.Fatalf("departed worker %s still exposed", gone.id)
	}

	// JSON stays the default.
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fm FleetMetrics
	if err := json.NewDecoder(resp.Body).Decode(&fm); err != nil {
		t.Fatal(err)
	}
	if fm.Coordinator.Submissions != 1 {
		t.Fatalf("JSON submissions %d, want 1", fm.Coordinator.Submissions)
	}
}
