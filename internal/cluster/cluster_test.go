package cluster

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"popstab"
	"popstab/internal/serve"
)

func quickSpec(seed uint64) popstab.Spec {
	return popstab.Spec{N: 4096, Tinner: 24, Seed: seed}
}

// testWorker is one in-process popserve the coordinator can route to.
type testWorker struct {
	m  *serve.Manager
	ts *httptest.Server
	id string
}

// newFleet registers n fresh workers with the coordinator.
func newFleet(t *testing.T, c *Coordinator, n int) []*testWorker {
	t.Helper()
	ws := make([]*testWorker, 0, n)
	for i := 0; i < n; i++ {
		m := serve.NewManager(serve.Config{MaxConcurrent: 2, StepQuantum: 16})
		ts := httptest.NewServer(serve.NewHandler(m))
		t.Cleanup(ts.Close)
		t.Cleanup(m.Close)
		reg, err := c.Register(RegisterRequest{URL: ts.URL, Readiness: m.Readiness()})
		if err != nil {
			t.Fatalf("register worker %d: %v", i, err)
		}
		ws = append(ws, &testWorker{m: m, ts: ts, id: reg.ID})
	}
	return ws
}

// heartbeat re-registers a worker with fresh readiness.
func (w *testWorker) heartbeat(t *testing.T, c *Coordinator) {
	t.Helper()
	if _, err := c.Register(RegisterRequest{URL: w.ts.URL, Readiness: w.m.Readiness()}); err != nil {
		t.Fatalf("heartbeat %s: %v", w.id, err)
	}
}

// waitFleetDone long-polls a coordinator session to done, tolerating the
// transient awaiting-failover window.
func waitFleetDone(t *testing.T, c *Coordinator, id string) serve.JobInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		wr, err := c.Wait(context.Background(), id, "status=done&timeout=5s")
		if err == nil && wr.Reached {
			return wr.Info
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("session %s did not complete", id)
	return serve.JobInfo{}
}

// singleRun is the golden baseline: the same spec on a lone manager.
func singleRun(t *testing.T, spec popstab.Spec, rounds uint64) (serve.JobInfo, []byte) {
	t.Helper()
	m := serve.NewManager(serve.Config{MaxConcurrent: 2, StepQuantum: 16})
	defer m.Close()
	j, _, err := m.Submit(context.Background(), spec, rounds)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("baseline run did not complete: %+v", j.Info())
	}
	_, snap, err := j.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return j.Info(), snap
}

// TestFederatedSweepDedupe drives the acceptance sweep: 32 submissions of 8
// distinct specs against a two-worker fleet. The coordinator's index plus
// spec-hash affinity must collapse them to exactly 8 simulation runs
// fleet-wide, and every duplicate must come back marked deduped with the
// original's coordinator ID.
func TestFederatedSweepDedupe(t *testing.T) {
	c := NewCoordinator(Config{SweepInterval: -1})
	defer c.Close()
	ws := newFleet(t, c, 2)

	const distinct, total = 8, 32
	ctx := context.Background()
	ids := make(map[uint64]string, distinct)
	for i := 0; i < total; i++ {
		seed := uint64(i%distinct + 1)
		resp, err := c.Submit(ctx, serve.SubmitRequest{Spec: quickSpec(seed), Rounds: 48})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if first, ok := ids[seed]; !ok {
			ids[seed] = resp.ID
		} else {
			if !resp.Deduped {
				t.Errorf("submission %d (seed %d) was not deduped", i, seed)
			}
			if resp.ID != first {
				t.Errorf("duplicate of seed %d got ID %s, want %s", seed, resp.ID, first)
			}
		}
	}

	stats := make(map[uint64]serve.JobInfo, distinct)
	for seed, id := range ids {
		stats[seed] = waitFleetDone(t, c, id)
	}

	fm := c.Metrics(ctx)
	if fm.Fleet.SimRuns != distinct {
		t.Errorf("fleet sim_runs = %d, want %d (dedupe leaked duplicate runs)", fm.Fleet.SimRuns, distinct)
	}
	if fm.Coordinator.Submissions != total {
		t.Errorf("coordinator submissions = %d, want %d", fm.Coordinator.Submissions, total)
	}
	if fm.Coordinator.DedupeHits != total-distinct {
		t.Errorf("coordinator dedupe hits = %d, want %d", fm.Coordinator.DedupeHits, total-distinct)
	}
	// Both workers should have taken a share under affinity (8 hashes over
	// 2 workers collide onto one with probability 2^-7).
	if fm.Workers[ws[0].id].SimRuns == 0 && fm.Workers[ws[1].id].SimRuns == 0 {
		t.Error("no worker reported any runs")
	}

	// Federated stats match the single-process baseline exactly.
	for seed, info := range stats {
		want, _ := singleRun(t, quickSpec(seed), 48)
		if info.Stats != want.Stats {
			t.Errorf("seed %d fleet stats %+v != single-process %+v", seed, info.Stats, want.Stats)
		}
	}
}

// TestDrainMigrationIdentity is the migration half of the acceptance bar: a
// session drained off its worker mid-run must finish with stats AND snapshot
// bytes identical to the same spec on a single popserve.
func TestDrainMigrationIdentity(t *testing.T) {
	c := NewCoordinator(Config{SweepInterval: -1})
	defer c.Close()
	newFleet(t, c, 2)

	spec := quickSpec(99)
	const rounds = 96
	ctx := context.Background()
	resp, err := c.Submit(ctx, serve.SubmitRequest{Spec: spec, Rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}

	// Drain the owning worker while the session is (likely still) running.
	c.mu.Lock()
	owner := c.sessions[resp.ID].workerID
	c.mu.Unlock()
	dr, err := c.Drain(ctx, owner)
	if err != nil {
		t.Fatal(err)
	}
	if dr.Migrated+dr.Replayed != 1 || len(dr.Errors) != 0 {
		t.Fatalf("drain moved %d/%d sessions with errors %v, want exactly one", dr.Migrated, dr.Replayed, dr.Errors)
	}
	c.mu.Lock()
	newOwner := c.sessions[resp.ID].workerID
	c.mu.Unlock()
	if newOwner == owner || newOwner == "" {
		t.Fatalf("session still on %q after draining %q", newOwner, owner)
	}

	info := waitFleetDone(t, c, resp.ID)
	// The restored job on the new worker is not content-addressed there,
	// but the coordinator's identity survives the move.
	if hash, _ := spec.Hash(); info.Hash != hash {
		t.Errorf("post-migration info hash %q, want %q", info.Hash, hash)
	}
	snap, err := c.Snapshot(ctx, resp.ID)
	if err != nil {
		t.Fatal(err)
	}

	wantInfo, wantSnap := singleRun(t, spec, rounds)
	if info.Stats != wantInfo.Stats {
		t.Errorf("migrated stats %+v != single-process %+v", info.Stats, wantInfo.Stats)
	}
	if string(snap.Snapshot) != string(wantSnap) {
		t.Errorf("migrated snapshot differs from single-process run (%d vs %d bytes)", len(snap.Snapshot), len(wantSnap))
	}

	// The drained worker is gone from the registry.
	for _, w := range c.Workers() {
		if w.ID == owner {
			t.Errorf("drained worker %s still registered", owner)
		}
	}
}

// TestDrainPausedSessionStaysPaused pins the restore-paused path: a paused
// session migrates parked and does not advance on its new worker.
func TestDrainPausedSessionStaysPaused(t *testing.T) {
	c := NewCoordinator(Config{SweepInterval: -1})
	defer c.Close()
	newFleet(t, c, 2)

	ctx := context.Background()
	resp, err := c.Submit(ctx, serve.SubmitRequest{Spec: quickSpec(7), Rounds: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pause(ctx, resp.ID); err != nil {
		t.Fatal(err)
	}
	info, err := c.Info(ctx, resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	pausedAt := info.Stats.Round

	c.mu.Lock()
	owner := c.sessions[resp.ID].workerID
	c.mu.Unlock()
	if _, err := c.Drain(ctx, owner); err != nil {
		t.Fatal(err)
	}

	time.Sleep(50 * time.Millisecond) // would advance if the restore unpaused
	info, err = c.Info(ctx, resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != serve.StatusPaused || info.Stats.Round != pausedAt {
		t.Fatalf("after migration: status %s round %d, want paused at %d", info.Status, info.Stats.Round, pausedAt)
	}

	// And it resumes to completion on the new worker.
	if _, err := c.Resume(ctx, resp.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(ctx, resp.ID, 0); err == nil {
		t.Error("zero step accepted") // sanity: proxied errors still surface
	}
	final := waitFleetDone(t, c, resp.ID)
	if final.Stats.Round != 4096 {
		t.Errorf("resumed session finished at round %d, want 4096", final.Stats.Round)
	}
}

// TestHeartbeatExpiryFailover kills a worker without warning: the sweep must
// expire it and replay its sessions from source on the survivor, converging
// to the identical final state (determinism, DESIGN.md §8/§11).
func TestHeartbeatExpiryFailover(t *testing.T) {
	c := NewCoordinator(Config{WorkerTTL: 50 * time.Millisecond, SweepInterval: -1})
	defer c.Close()
	ws := newFleet(t, c, 2)

	spec := quickSpec(123)
	const rounds = 64
	ctx := context.Background()
	resp, err := c.Submit(ctx, serve.SubmitRequest{Spec: spec, Rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	c.mu.Lock()
	owner := c.sessions[resp.ID].workerID
	c.mu.Unlock()

	// SIGKILL the owner: close its HTTP listener and let its heartbeat age
	// out while the survivor keeps beating.
	var survivor *testWorker
	for _, w := range ws {
		if w.id == owner {
			w.ts.Close()
		} else {
			survivor = w
		}
	}
	time.Sleep(60 * time.Millisecond)
	survivor.heartbeat(t, c)
	expired, failedOver := c.SweepNow()
	if expired != 1 || failedOver != 1 {
		t.Fatalf("sweep expired %d workers, failed over %d sessions; want 1 and 1", expired, failedOver)
	}

	c.mu.Lock()
	newOwner := c.sessions[resp.ID].workerID
	c.mu.Unlock()
	if newOwner != survivor.id {
		t.Fatalf("session on %q after failover, want survivor %s", newOwner, survivor.id)
	}

	info := waitFleetDone(t, c, resp.ID)
	want, _ := singleRun(t, spec, rounds)
	if info.Stats != want.Stats {
		t.Errorf("failed-over stats %+v != single-process %+v", info.Stats, want.Stats)
	}
	if fm := c.Metrics(ctx); fm.Coordinator.Failovers != 1 || fm.Coordinator.WorkersExpired != 1 {
		t.Errorf("metrics %+v, want 1 failover and 1 expired worker", fm.Coordinator)
	}
}

// TestResultStoreFollowsMigration pins the content-addressed store: after a
// completed session migrates, GET /v1/results/{hash} still resolves because
// the coordinator follows its session mapping rather than the worker caches.
func TestResultStoreFollowsMigration(t *testing.T) {
	c := NewCoordinator(Config{SweepInterval: -1})
	defer c.Close()
	newFleet(t, c, 2)

	spec := quickSpec(55)
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	resp, err := c.Submit(ctx, serve.SubmitRequest{Spec: spec, Rounds: 32})
	if err != nil {
		t.Fatal(err)
	}
	waitFleetDone(t, c, resp.ID)

	res, err := c.Result(ctx, hash)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != resp.ID || len(res.Snapshot) == 0 {
		t.Fatalf("result %+v, want session %s with snapshot", res.Info, resp.ID)
	}

	c.mu.Lock()
	owner := c.sessions[resp.ID].workerID
	c.mu.Unlock()
	if _, err := c.Drain(ctx, owner); err != nil {
		t.Fatal(err)
	}
	res2, err := c.Result(ctx, hash)
	if err != nil {
		t.Fatalf("result after migration: %v", err)
	}
	if string(res2.Snapshot) != string(res.Snapshot) {
		t.Error("result snapshot changed across migration")
	}

	if _, err := c.Result(ctx, "no-such-hash"); err == nil || !strings.Contains(err.Error(), "no-such-hash") {
		t.Errorf("unknown hash error %v", err)
	}
}

// TestCoordinatorErrors pins the coordinator's own rejection surface.
func TestCoordinatorErrors(t *testing.T) {
	c := NewCoordinator(Config{SweepInterval: -1})
	defer c.Close()
	ctx := context.Background()

	// Empty fleet: no_workers, not a crash.
	if _, err := c.Submit(ctx, serve.SubmitRequest{Spec: quickSpec(1), Rounds: 8}); !isCode(err, serve.CodeNoWorkers) {
		t.Errorf("submit to empty fleet: %v, want %s", err, serve.CodeNoWorkers)
	}
	if rd := c.Readiness(); rd.Ready {
		t.Error("empty fleet reports ready")
	}
	if _, err := c.Drain(ctx, "w-999"); !isCode(err, serve.CodeUnknownWorker) {
		t.Errorf("drain unknown worker: %v, want %s", err, serve.CodeUnknownWorker)
	}
	if _, err := c.Register(RegisterRequest{}); err == nil {
		t.Error("register without URL accepted")
	}
	if _, err := c.Info(ctx, "c-404"); !isCode(err, serve.CodeUnknownSession) {
		t.Errorf("info on unknown session: %v, want %s", err, serve.CodeUnknownSession)
	}

	// A worker's envelope passes through verbatim: invalid spec stays 422.
	newFleet(t, c, 1)
	_, err := c.Submit(ctx, serve.SubmitRequest{Spec: popstab.Spec{N: 64}, Rounds: 8})
	if !isCode(err, serve.CodeInvalidSpec) {
		t.Errorf("invalid spec through the fleet: %v, want %s", err, serve.CodeInvalidSpec)
	}
}

// isCode reports whether err maps to the given envelope code.
func isCode(err error, code string) bool {
	return err != nil && serve.ErrorCode(err) == code
}

// TestRouterPolicies pins each routing policy's contract.
func TestRouterPolicies(t *testing.T) {
	if _, err := NewRouter("bogus"); err == nil {
		t.Error("NewRouter accepted an unknown policy")
	}
	for _, name := range []string{"", "affinity", "round-robin", "least-loaded"} {
		if _, err := NewRouter(name); err != nil {
			t.Errorf("NewRouter(%q): %v", name, err)
		}
	}

	cands := []Candidate{
		{ID: "w-001", SlotsInUse: 4, Slots: 4, Ready: true},
		{ID: "w-002", SlotsInUse: 1, Slots: 4, Ready: true},
		{ID: "w-003", SlotsInUse: 0, Slots: 4, Ready: false},
	}

	t.Run("least-loaded", func(t *testing.T) {
		var r LeastLoaded
		if got := r.Pick(cands, ""); cands[got].ID != "w-002" {
			t.Errorf("picked %s, want w-002 (lowest occupancy among ready)", cands[got].ID)
		}
		if got := r.Pick(nil, ""); got != -1 {
			t.Errorf("empty pick = %d, want -1", got)
		}
	})

	t.Run("round-robin", func(t *testing.T) {
		var r RoundRobin
		seen := map[string]int{}
		for i := 0; i < 6; i++ {
			seen[cands[r.Pick(cands, "")].ID]++
		}
		// Unready w-003 is never picked (its turn falls through to the next
		// ready worker); both ready workers share the rotation.
		if seen["w-003"] != 0 || seen["w-001"] == 0 || seen["w-002"] == 0 {
			t.Errorf("distribution %v, want both ready workers and never w-003", seen)
		}
	})

	t.Run("affinity", func(t *testing.T) {
		r := &Affinity{}
		hashes := make([]string, 64)
		for i := range hashes {
			hashes[i] = fmt.Sprintf("hash-%02d", i)
		}
		picks := map[string]string{}
		spread := map[string]int{}
		for _, h := range hashes {
			id := cands[r.Pick(cands, h)].ID
			picks[h] = id
			spread[id]++
		}
		// Stable: same hash, same worker, every time and in any order.
		rev := []Candidate{cands[2], cands[0], cands[1]}
		for _, h := range hashes {
			if got := rev[r.Pick(rev, h)].ID; got != picks[h] {
				t.Fatalf("hash %s remapped to %s under reordering, was %s", h, got, picks[h])
			}
		}
		if len(spread) < 2 {
			t.Errorf("64 hashes all landed on one worker: %v", spread)
		}
		// Minimal disruption: removing a worker only remaps its own hashes.
		two := []Candidate{cands[0], cands[1]}
		for _, h := range hashes {
			if picks[h] == "w-003" {
				continue
			}
			if got := two[r.Pick(two, h)].ID; got != picks[h] {
				t.Errorf("hash %s moved from %s to %s though its worker survived", h, picks[h], got)
			}
		}
		// Hashless restores fall back to least-loaded.
		if got := cands[r.Pick(cands, "")].ID; got != "w-002" {
			t.Errorf("hashless pick %s, want least-loaded w-002", got)
		}
	})
}
