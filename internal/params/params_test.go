package params

import (
	"math"
	"strings"
	"testing"
)

func TestDeriveDefaults(t *testing.T) {
	p, err := Derive(65536)
	if err != nil {
		t.Fatal(err)
	}
	if p.LogN != 16 {
		t.Errorf("LogN = %d, want 16", p.LogN)
	}
	if p.HalfLogN != 8 {
		t.Errorf("HalfLogN = %d, want 8", p.HalfLogN)
	}
	if p.ClusterSize != 256 {
		t.Errorf("ClusterSize = %d, want 256 (√N)", p.ClusterSize)
	}
	if p.Tinner != 256 {
		t.Errorf("Tinner = %d, want log²N = 256", p.Tinner)
	}
	if p.T != 2048 {
		t.Errorf("T = %d, want Tinner·½logN = 2048", p.T)
	}
	if p.LeaderBiasExp != 11 {
		t.Errorf("LeaderBiasExp = %d, want 11 (1/(8√N) = 2^-11)", p.LeaderBiasExp)
	}
	if p.SplitBiasExp != 4 {
		t.Errorf("SplitBiasExp = %d, want 4 (16/√N = 2^-4)", p.SplitBiasExp)
	}
	if p.Gamma != DefaultGamma || p.Alpha != DefaultAlpha {
		t.Errorf("defaults: gamma=%v alpha=%v", p.Gamma, p.Alpha)
	}
}

func TestDeriveRejections(t *testing.T) {
	cases := []struct {
		name string
		n    int
		opts []Option
	}{
		{"below minimum", 1024, nil},
		{"not power of two", 5000, nil},
		{"odd log", 8192, nil}, // 2^13
		{"tinner too small", 4096, []Option{WithTinner(10)}},
		{"gamma zero", 4096, []Option{WithGamma(0)}},
		{"gamma above one", 4096, []Option{WithGamma(1.5)}},
		{"alpha zero", 4096, []Option{WithAlpha(0)}},
		{"alpha above half", 4096, []Option{WithAlpha(0.75)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Derive(tc.n, tc.opts...); err == nil {
				t.Errorf("Derive(%d, %d opts) accepted, want error", tc.n, len(tc.opts))
			}
		})
	}
}

func TestDeriveOptions(t *testing.T) {
	p, err := Derive(4096, WithTinner(48), WithGamma(0.5), WithAlpha(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if p.Tinner != 48 {
		t.Errorf("Tinner = %d, want 48", p.Tinner)
	}
	if p.T != 48*6 {
		t.Errorf("T = %d, want 288", p.T)
	}
	if p.Gamma != 0.5 || p.Alpha != 0.25 {
		t.Errorf("options not applied: %+v", p)
	}
}

func TestProbabilities(t *testing.T) {
	p, err := Derive(65536)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.LeaderProb(), 1.0/2048; math.Abs(got-want) > 1e-15 {
		t.Errorf("LeaderProb = %v, want %v", got, want)
	}
	if got, want := p.SplitProb(), 1-1.0/16; math.Abs(got-want) > 1e-15 {
		t.Errorf("SplitProb = %v, want %v", got, want)
	}
}

func TestEvalRound(t *testing.T) {
	p, err := Derive(4096)
	if err != nil {
		t.Fatal(err)
	}
	if p.EvalRound() != p.T-1 {
		t.Errorf("EvalRound = %d, want %d", p.EvalRound(), p.T-1)
	}
}

func TestSubphaseBoundary(t *testing.T) {
	p, err := Derive(4096, WithTinner(24))
	if err != nil {
		t.Fatal(err)
	}
	boundaries := 0
	for r := 0; r < p.T; r++ {
		if p.IsSubphaseBoundary(r) {
			boundaries++
			if (r+1)%p.Tinner != 0 {
				t.Errorf("round %d flagged as boundary", r)
			}
		}
	}
	if boundaries != p.HalfLogN {
		t.Errorf("%d boundaries, want %d", boundaries, p.HalfLogN)
	}
	// The last round of the epoch (evaluation) is always a boundary.
	if !p.IsSubphaseBoundary(p.T - 1) {
		t.Error("final round must be a subphase boundary")
	}
}

func TestSubphaseIndices(t *testing.T) {
	p, err := Derive(4096, WithTinner(24))
	if err != nil {
		t.Fatal(err)
	}
	if p.Subphase(0) != 0 {
		t.Errorf("Subphase(0) = %d", p.Subphase(0))
	}
	if got := p.Subphase(p.T - 1); got != p.HalfLogN-1 {
		t.Errorf("Subphase(T-1) = %d, want %d", got, p.HalfLogN-1)
	}
	// Subphase must be non-decreasing over the epoch.
	prev := 0
	for r := 0; r < p.T; r++ {
		s := p.Subphase(r)
		if s < prev || s >= p.HalfLogN {
			t.Fatalf("Subphase(%d) = %d out of order/range", r, s)
		}
		prev = s
	}
}

func TestRecruitDepth(t *testing.T) {
	p, err := Derive(4096, WithTinner(24))
	if err != nil {
		t.Fatal(err)
	}
	// An agent recruited in the first subphase (round 1..Tinner-1) must get
	// depth ½logN − 1: it has all remaining subphases to recruit its own
	// subtree of size 2^(½logN − 1).
	if got := p.RecruitDepthAt(1); got != p.HalfLogN-1 {
		t.Errorf("RecruitDepthAt(1) = %d, want %d", got, p.HalfLogN-1)
	}
	if got := p.RecruitDepthAt(p.Tinner - 1); got != p.HalfLogN-1 {
		t.Errorf("RecruitDepthAt(Tinner-1) = %d, want %d", got, p.HalfLogN-1)
	}
	// An agent recruited in the second subphase gets one less.
	if got := p.RecruitDepthAt(p.Tinner); got != p.HalfLogN-2 {
		t.Errorf("RecruitDepthAt(Tinner) = %d, want %d", got, p.HalfLogN-2)
	}
	// An agent recruited in the final subphase gets depth 0: a leaf.
	if got := p.RecruitDepthAt(p.T - 2); got != 0 {
		t.Errorf("RecruitDepthAt(T-2) = %d, want 0", got)
	}
}

func TestRecruitDepthTreeAccounting(t *testing.T) {
	// A leader plus its recruitment tree must total exactly √N agents if
	// every recruit attempt succeeds: a node with depth d recruited at
	// subphase s recruits one child per remaining subphase, and depths
	// decrement per subphase. Simulate the tree size bottom-up.
	p, err := Derive(65536, WithTinner(64))
	if err != nil {
		t.Fatal(err)
	}
	// size(d) = total subtree size of a node responsible for depth d.
	// A node with depth d recruits children with depths d-1, d-2, ..., 0.
	size := make([]int, p.HalfLogN+1)
	size[0] = 1
	for d := 1; d <= p.HalfLogN; d++ {
		size[d] = 1
		for c := 0; c < d; c++ {
			size[d] += size[c]
		}
	}
	if size[p.HalfLogN] != p.ClusterSize {
		t.Errorf("tree size with full recruitment = %d, want √N = %d",
			size[p.HalfLogN], p.ClusterSize)
	}
}

func TestMaxTolerableK(t *testing.T) {
	p, err := Derive(65536)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.MaxTolerableK(); got != 16 {
		t.Errorf("MaxTolerableK = %d, want N^(1/4) = 16", got)
	}
	p2, err := Derive(16384) // 2^14, logN/2 = 7 odd → √2 factor
	if err != nil {
		t.Fatal(err)
	}
	want := int(math.Pow(16384, 0.25))
	got := p2.MaxTolerableK()
	if got < want-1 || got > want+1 {
		t.Errorf("MaxTolerableK(16384) = %d, want about %d", got, want)
	}
}

func TestPredictedEquilibrium(t *testing.T) {
	cases := map[int]int{
		4096:    3072,  // 4096 − 16·64
		65536:   61440, // 65536 − 16·256
		1048576: 1032192,
	}
	for n, want := range cases {
		p, err := Derive(n)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.PredictedEquilibrium(); got != want {
			t.Errorf("PredictedEquilibrium(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestStringContainsKeyFields(t *testing.T) {
	p, err := Derive(4096)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"N=4096", "T=", "Tinner=", "cluster=64"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	p, err := Derive(4096)
	if err != nil {
		t.Fatal(err)
	}
	broken := p
	broken.T++
	if broken.Validate() == nil {
		t.Error("Validate accepted inconsistent T")
	}
	broken = p
	broken.LogN = 13
	if broken.Validate() == nil {
		t.Error("Validate accepted odd LogN")
	}
}
