// Package params derives and validates the protocol parameters of the
// population stability protocol from the target population size N.
//
// The paper (§3) fixes the following structure. Time is partitioned into
// epochs of T rounds. Each epoch has
//
//   - round 0: leader selection — each agent becomes a leader with
//     probability 1/(8√N) (a biased coin with exponent 3 + ½log N);
//   - rounds 1 .. T−2: recruitment, divided into ½log N subphases of Tinner
//     rounds each (the first and last subphase are one round shorter to make
//     room for leader selection and evaluation);
//   - round T−1: evaluation — matched active pairs compare colors; equal
//     colors split with probability 1 − 16/√N (failure exponent ½log N − 4),
//     unequal colors die.
//
// The paper sets Tinner = log²N for concreteness but only requires
// Tinner = ω(log N) (footnotes 5 and 6); experiments at small N may shrink
// Tinner with WithTinner to keep epochs short.
package params

import (
	"fmt"
	"math/bits"
)

// Params holds every derived constant of the protocol for a given target
// population size N. Construct with Derive; the zero value is not valid.
type Params struct {
	// N is the target population size. Must be a power of four (the paper
	// assumes log N is an even integer) and at least MinN.
	N int
	// LogN is log₂ N.
	LogN int
	// HalfLogN is ½ log₂ N: the number of recruitment subphases, the depth
	// of the recruitment tree, and log₂ of the cluster size √N.
	HalfLogN int
	// ClusterSize is √N, the number of agents each leader's recruitment
	// tree grows to.
	ClusterSize int
	// Tinner is the length in rounds of one recruitment subphase.
	Tinner int
	// T is the epoch length in rounds: Tinner · HalfLogN.
	T int
	// LeaderBiasExp is the biased-coin exponent a for leader selection;
	// each agent becomes a leader with probability 2^−a = 1/(8√N).
	LeaderBiasExp int
	// SplitBiasExp is the biased-coin exponent a for the evaluation phase;
	// an agent whose neighbor shares its color self-destructs the split
	// with probability 2^−a = 16/√N (and splits otherwise).
	SplitBiasExp int
	// Gamma is the lower bound on the fraction of agents matched per round.
	Gamma float64
	// Alpha is the half-width of the admissible population interval
	// [(1−α)N, (1+α)N].
	Alpha float64
	// UnsafeTinner acknowledges a subphase length below the paper's
	// ω(log N) requirement. Only the A2 ablation sets it; Validate then
	// accepts any Tinner ≥ 2.
	UnsafeTinner bool
}

// MinN is the smallest target size for which the paper's constants are
// non-degenerate: the split bias 16/√N must be below 1/2, i.e. √N > 32.
const MinN = 4096

// DefaultGamma is the paper's running example for the matched fraction
// (§2, "we think of the parameter γ as a constant (e.g. γ = 1/4)").
const DefaultGamma = 0.25

// DefaultAlpha is the interval half-width used throughout the experiment
// suite. The paper proves the theorem for any positive constant α and
// assumes α ≤ 1/2 without loss of generality (§4.1).
const DefaultAlpha = 0.5

// Option customizes Derive.
type Option func(*Params)

// WithTinner overrides the subphase length. The paper requires
// Tinner = ω(log N); Derive rejects values below 2·log N.
func WithTinner(tinner int) Option {
	return func(p *Params) { p.Tinner = tinner }
}

// WithUnsafeTinner overrides the subphase length WITHOUT the ω(log N)
// safety check. It exists solely for the A2 ablation, which demonstrates
// what breaks when the paper's requirement is violated (recruitment trees
// fail to fill, weakening the variance signal).
func WithUnsafeTinner(tinner int) Option {
	return func(p *Params) {
		p.Tinner = tinner
		p.UnsafeTinner = true
	}
}

// WithGamma overrides the matched-fraction lower bound γ ∈ (0, 1].
func WithGamma(gamma float64) Option {
	return func(p *Params) { p.Gamma = gamma }
}

// WithAlpha overrides the interval half-width α ∈ (0, 1/2].
func WithAlpha(alpha float64) Option {
	return func(p *Params) { p.Alpha = alpha }
}

// Derive computes the protocol parameters for target size n, applying the
// paper's defaults and any options, and validates the result.
func Derive(n int, opts ...Option) (Params, error) {
	if n < MinN {
		return Params{}, fmt.Errorf("params: N = %d below minimum %d", n, MinN)
	}
	if n&(n-1) != 0 {
		return Params{}, fmt.Errorf("params: N = %d is not a power of two", n)
	}
	logN := bits.TrailingZeros(uint(n))
	if logN%2 != 0 {
		return Params{}, fmt.Errorf("params: log N = %d must be even (N a power of four)", logN)
	}
	p := Params{
		N:        n,
		LogN:     logN,
		HalfLogN: logN / 2,
		// Paper default Tinner = log² N.
		Tinner: logN * logN,
		Gamma:  DefaultGamma,
		Alpha:  DefaultAlpha,
		// Leader probability 1/(8√N) = 2^-(3 + logN/2).
		LeaderBiasExp: 3 + logN/2,
		// Split failure probability 16/√N = 2^-(logN/2 - 4).
		SplitBiasExp: logN/2 - 4,
	}
	p.ClusterSize = 1 << p.HalfLogN
	for _, opt := range opts {
		opt(&p)
	}
	p.T = p.Tinner * p.HalfLogN
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// Validate checks internal consistency. Derive calls it automatically; it is
// exported for Params values constructed by tests.
func (p Params) Validate() error {
	switch {
	case p.N < MinN:
		return fmt.Errorf("params: N = %d below minimum %d", p.N, MinN)
	case 1<<p.LogN != p.N:
		return fmt.Errorf("params: LogN = %d inconsistent with N = %d", p.LogN, p.N)
	case p.HalfLogN*2 != p.LogN:
		return fmt.Errorf("params: log N = %d must be even", p.LogN)
	case p.Tinner < 2:
		return fmt.Errorf("params: Tinner = %d below 2", p.Tinner)
	case !p.UnsafeTinner && p.Tinner < 2*p.LogN:
		return fmt.Errorf("params: Tinner = %d below 2·log N = %d (paper requires ω(log N); use WithUnsafeTinner for ablations)",
			p.Tinner, 2*p.LogN)
	case p.T != p.Tinner*p.HalfLogN:
		return fmt.Errorf("params: T = %d != Tinner·½logN = %d", p.T, p.Tinner*p.HalfLogN)
	case p.LeaderBiasExp <= 0 || p.SplitBiasExp <= 0:
		return fmt.Errorf("params: non-positive bias exponent (leader %d, split %d)",
			p.LeaderBiasExp, p.SplitBiasExp)
	case p.Gamma <= 0 || p.Gamma > 1:
		return fmt.Errorf("params: gamma = %v outside (0, 1]", p.Gamma)
	case p.Alpha <= 0 || p.Alpha > 0.5:
		return fmt.Errorf("params: alpha = %v outside (0, 0.5]", p.Alpha)
	}
	return nil
}

// EvalRound reports the round index (within the epoch) of the evaluation
// phase: the last round, T−1.
func (p Params) EvalRound() int { return p.T - 1 }

// IsSubphaseBoundary reports whether agents re-arm their recruiting flag at
// the end of round r, i.e. whether r ≡ −1 (mod Tinner) per Algorithm 5.
func (p Params) IsSubphaseBoundary(r int) bool {
	return (r+1)%p.Tinner == 0
}

// Subphase reports the recruitment subphase index of round r, in
// [0, HalfLogN). Round 0 (leader selection) and round T−1 (evaluation)
// belong structurally to the first and last subphase, which the paper makes
// one round shorter.
func (p Params) Subphase(r int) int {
	s := r / p.Tinner
	if s >= p.HalfLogN {
		s = p.HalfLogN - 1
	}
	return s
}

// RecruitDepthAt reports the toRecruit value assigned to an agent recruited
// in round r, per Algorithm 5: ½log N − ⌈(r+1)/Tinner⌉.
func (p Params) RecruitDepthAt(r int) int {
	return p.HalfLogN - (r+p.Tinner)/p.Tinner
}

// SplitProb reports the probability 1 − 2^−SplitBiasExp = 1 − 16/√N with
// which a matched same-color agent splits in the evaluation phase.
func (p Params) SplitProb() float64 {
	return 1 - pow2neg(p.SplitBiasExp)
}

// LeaderProb reports the probability 2^−LeaderBiasExp = 1/(8√N) of becoming
// a leader in round 0.
func (p Params) LeaderProb() float64 {
	return pow2neg(p.LeaderBiasExp)
}

// MaxTolerableK reports the paper's per-round adversary budget bound
// N^{1/4−ε} rounded down, evaluated at ε→0, i.e. ⌊N^{1/4}⌋. Experiments use
// it as the reference scale for budget sweeps.
func (p Params) MaxTolerableK() int {
	// N^{1/4} = 2^{logN/4}; logN is even, so logN/4 may be half-integral.
	quarter := float64(p.LogN) / 4
	k := 1 << int(quarter)
	if quarter != float64(int(quarter)) {
		// Multiply by √2 for odd logN/2.
		k = int(float64(k) * 1.41421356)
	}
	return k
}

// PredictedEquilibrium reports the finite-N fixed point of the evaluation
// drift, m* = N − 16√N.
//
// Derivation: let L ~ Binomial(m, 1/(8√N)) be the number of clusters, each
// of √N same-colored agents. Two matched colored agents share a cluster
// with probability c(L) ≈ 1/L, and the number of colored-colored matched
// pairs scales with L². The expected evaluation change is therefore
// proportional to E[L²·c(L)]·(1−q/2) − E[L²]·q/2 ≈ L̄(1−q/2) − (L̄²+L̄)·q/2
// with q = 16/√N (the split deficit) and Var L = L̄ folded into E[L²].
// Setting it to zero gives L̄* ≈ 2/q − 2 = √N/8 − 2, i.e.
// m* = 8√N·L̄* = N − 16√N.
//
// The paper's analysis treats q as asymptotically negligible, giving
// m* → N; at finite N the offset 16√N is well inside the admissible
// interval for any α > 16/√N. Experiments E7/E16 measure drift relative to
// this value (see EXPERIMENTS.md).
func (p Params) PredictedEquilibrium() int {
	return p.N - 16*p.ClusterSize
}

// String summarizes the parameter set for logs and experiment headers.
func (p Params) String() string {
	return fmt.Sprintf(
		"N=%d logN=%d T=%d Tinner=%d subphases=%d cluster=%d pLead=2^-%d pNoSplit=2^-%d γ=%.2f α=%.2f",
		p.N, p.LogN, p.T, p.Tinner, p.HalfLogN, p.ClusterSize,
		p.LeaderBiasExp, p.SplitBiasExp, p.Gamma, p.Alpha)
}

func pow2neg(a int) float64 {
	v := 1.0
	for i := 0; i < a; i++ {
		v /= 2
	}
	return v
}
