package experiment

import (
	"fmt"
	"math"

	"popstab/internal/adversary"
	"popstab/internal/match"
	"popstab/internal/protocol"
	"popstab/internal/rogue"
	"popstab/internal/sim"
)

// A7 — the cross-product scenarios the paper leaves open, reachable only
// since the engine unification: a budgeted adversary under geometric
// communication, and malicious programs on the spatial torus. The two
// effects point in opposite directions: local matching breaks the honest
// size signal (the population escapes the admissible interval even with no
// adversary, and budget accelerates the escape), yet it tightens
// malicious-program containment (scattered rogues meet an honest neighbor
// almost every round, so the effective cull rate is ≈ 1 instead of γ).
func init() {
	register(&Experiment{
		ID:    "A7",
		Title: "Adversary budget sweep under geometric communication",
		Claim: "§1.2 open question: topology and intervention are orthogonal axes — under " +
			"nearest-neighbor matching the variance signal floors, so the population drifts out " +
			"of [(1−α)N, (1+α)N] even at budget 0 and the adversary only accelerates the escape; " +
			"conversely the same locality raises the per-round contact rate to ≈ 1, so malicious " +
			"programs are culled below the well-mixed threshold R* = ln2/(−ln(1−γ)) ≈ 2.41",
		Run: runA7,
	})
}

// a7Cell is one (topology, budget) outcome of the sweep.
type a7Cell struct {
	violatedAt int // epoch of first interval violation, -1 if none
	endSize    int
	maxDev     float64
}

func runA7(cfg Config) (*Result, error) {
	n := 4096
	epochs := 15
	if cfg.Scale == Full {
		epochs = 30
	}
	p, err := paramsFor(n, cfg.Scale)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	lo := int(math.Ceil(float64(p.N) * (1 - p.Alpha)))
	hi := int(float64(p.N) * (1 + p.Alpha))
	spacing := 1 / math.Sqrt(float64(p.N))

	// Table 1: greedy adversary at a per-epoch budget grid, well-mixed vs
	// torus. Same seed per cell: the engine's stream separation makes the
	// arms a paired comparison.
	base := p.MaxTolerableK()
	budgets := []int{0, base, 4 * base, 16 * base}
	t1 := Table{
		Title: fmt.Sprintf("greedy adversary budget sweep, N=%d, %d epochs (early exit at 4N)", n, epochs),
		Cols:  []string{"topology", "budget", "first violation (epoch)", "end size", "maxDev"},
	}
	runCell := func(torus bool, perEpoch int) (a7Cell, error) {
		pr, err := protocol.New(p)
		if err != nil {
			return a7Cell{}, err
		}
		simCfg := sim.Config{Params: p, Protocol: pr, Seed: cfg.Seed, Workers: 1}
		if perEpoch > 0 {
			simCfg.K = 1
			simCfg.Adversary = adversary.NewPaced(adversary.PerEpoch(p.T, perEpoch, 1),
				adversary.NewGreedy())
		}
		if torus {
			tor, err := match.NewTorus(spacing)
			if err != nil {
				return a7Cell{}, err
			}
			simCfg.Matcher = tor
		}
		eng, err := sim.New(simCfg)
		if err != nil {
			return a7Cell{}, err
		}
		out := a7Cell{violatedAt: -1}
		for ep := 0; ep < epochs && eng.Size() < 4*p.N; ep++ {
			rep := eng.RunEpoch()
			if out.violatedAt < 0 && (rep.MinSize < lo || rep.MaxSize > hi) {
				out.violatedAt = ep
			}
			for _, v := range []int{rep.MinSize, rep.MaxSize} {
				if d := absF(float64(v-p.N)) / float64(p.N); d > out.maxDev {
					out.maxDev = d
				}
			}
		}
		out.endSize = eng.Size()
		return out, nil
	}
	cells := map[bool]map[int]a7Cell{false: {}, true: {}}
	for _, torus := range []bool{false, true} {
		name := "mixed"
		if torus {
			name = "torus"
		}
		for _, b := range budgets {
			c, err := runCell(torus, b)
			if err != nil {
				return nil, err
			}
			cells[torus][b] = c
			firstViol := "none"
			if c.violatedAt >= 0 {
				firstViol = fmtI(c.violatedAt)
			}
			t1.AddRow(name, budgetLabel(b), firstViol, fmtI(c.endSize), fmtF(c.maxDev))
		}
	}
	res.Tables = append(res.Tables, t1)
	// The verdict asserts exactly what the claim says: the well-mixed arms
	// hold at and below the tolerated budget, while every torus arm —
	// including budget 0 — escapes, and budget only accelerates the escape.
	sweepOK := cells[false][0].violatedAt < 0 && cells[false][base].violatedAt < 0
	for _, b := range budgets {
		sweepOK = sweepOK && cells[true][b].violatedAt >= 0
	}
	sweepOK = sweepOK && cells[true][16*base].violatedAt <= cells[true][0].violatedAt

	// Table 2: malicious programs on the torus (rogue×geo). Scattered
	// rogues on the torus face a contact (and therefore cull) rate of ≈ 1
	// per round, so even replication periods far below the well-mixed
	// threshold are contained.
	horizon := 2 * p.T
	t2 := Table{
		Title: fmt.Sprintf("rogue cohort of 64 vs replication period R, mixed vs torus (detect=1, ≤%d rounds; well-mixed R* ≈ 2.41)", horizon),
		Cols:  []string{"R", "topology", "rogues left", "honest size", "rogue kills", "outcome"},
	}
	rogueOutcome := map[bool]map[int]bool{false: {}, true: {}} // contained?
	for _, r := range []int{1, 2, 3, 6} {
		for _, torus := range []bool{false, true} {
			rcfg := rogue.Config{
				Params: p, ReplicateEvery: r, DetectProb: 1,
				InitialRogues: 64, Seed: cfg.Seed, Workers: 1,
			}
			name := "mixed"
			if torus {
				name = "torus"
				tor, err := match.NewTorus(spacing)
				if err != nil {
					return nil, err
				}
				rcfg.Matcher = tor
			}
			eng, err := rogue.New(rcfg)
			if err != nil {
				return nil, err
			}
			for i := 0; i < horizon && eng.Size() < 4*p.N; i++ {
				eng.RunRound()
			}
			honest, rogues := eng.Counts()
			outcome := "contained"
			if rogues >= 64 {
				outcome = "takeover"
			}
			rogueOutcome[torus][r] = outcome == "contained"
			t2.AddRow(fmtI(r), name, fmtI(rogues), fmtI(honest),
				fmtI(int(eng.Stats().RogueKills)), outcome)
		}
	}
	res.Tables = append(res.Tables, t2)
	// Verdict rests on the robust rows: R=2 separates the topologies (torus
	// contained, well-mixed takeover since 2 < R*), and both contain R ≥ 3.
	// The torus R=1 row is metastable — see the patch-shielding note — so it
	// is reported but not asserted.
	rogueOK := !rogueOutcome[false][1] && !rogueOutcome[false][2] &&
		rogueOutcome[false][3] && rogueOutcome[false][6] &&
		rogueOutcome[true][2] && rogueOutcome[true][3] && rogueOutcome[true][6]

	res.Verdict = verdict(sweepOK && rogueOK,
		"topology and intervention compose as orthogonal axes: geometric matching destabilizes "+
			"the honest size signal (escape even at budget 0 on the torus, faster with budget) while "+
			"simultaneously tightening malicious-program containment (R=2 contained on the torus vs "+
			"takeover below R* ≈ 2.41 well-mixed)",
		"cross-product behavior differs; see tables")
	res.Notes = append(res.Notes,
		"both effects have one cause: local matching raises the per-round contact rate toward 1 "+
			"and correlates contacts spatially — the same-color signal saturates (A5), so evaluation "+
			"over-splits and the population escapes upward; a scattered rogue, meanwhile, is matched "+
			"by an honest neighbor almost every round and is culled before its cooldown expires",
		"R=1 on the torus is metastable patch shielding: daughters spawn next to their parent and "+
			"rogue-rogue matches trigger no detection, so a rogue that replicates every round can "+
			"grow a contiguous patch whose interior is unreachable by honest culling — locality "+
			"tightens the threshold but does not beat unbounded replication",
		"the torus arms run on the unified engine (match.Torus + rogue.Overlay over internal/sim); "+
			"the pre-unification spatial engine supported neither adversaries nor rogue programs")
	return res, nil
}
