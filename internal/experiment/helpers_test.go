package experiment

import (
	"testing"

	"popstab/internal/adversary"
)

func TestParamsForScales(t *testing.T) {
	q, err := paramsFor(4096, Quick)
	if err != nil {
		t.Fatal(err)
	}
	f, err := paramsFor(4096, Full)
	if err != nil {
		t.Fatal(err)
	}
	if q.Tinner != 24 || f.Tinner != 48 {
		t.Errorf("Tinner quick=%d full=%d, want 24/48", q.Tinner, f.Tinner)
	}
	if _, err := paramsFor(1000, Quick); err == nil {
		t.Error("accepted invalid N")
	}
}

func TestLogOf(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4096: 12, 65536: 16}
	for n, want := range cases {
		if got := logOf(n); got != want {
			t.Errorf("logOf(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestMaxDevFrac(t *testing.T) {
	o := stabilityOutcome{minSize: 3000, maxSize: 5000}
	if got := o.maxDevFrac(4096); got != (4096.0-3000)/4096 {
		t.Errorf("maxDevFrac = %v", got)
	}
	o = stabilityOutcome{minSize: 4000, maxSize: 6000}
	if got := o.maxDevFrac(4096); got != (6000.0-4096)/4096 {
		t.Errorf("maxDevFrac = %v", got)
	}
}

func TestVerdictStrings(t *testing.T) {
	if v := verdict(true, "yes", "no"); v != "REPRODUCED: yes" {
		t.Errorf("verdict = %q", v)
	}
	if v := verdict(false, "yes", "no"); v != "DEVIATION: no" {
		t.Errorf("verdict = %q", v)
	}
}

func TestBudgetLabel(t *testing.T) {
	if budgetLabel(0) != "0" {
		t.Error("zero budget label")
	}
	if budgetLabel(8) != "8/epoch" {
		t.Error("nonzero budget label")
	}
}

func TestRunStabilityRejectsBadParams(t *testing.T) {
	q, err := paramsFor(4096, Quick)
	if err != nil {
		t.Fatal(err)
	}
	bad := q
	bad.T = 0
	if _, err := runStability(bad, stabilityArm{name: "none"}, 1, 1, nil); err == nil {
		t.Error("accepted invalid params")
	}
}

func TestRunStabilityAdversaryArm(t *testing.T) {
	q, err := paramsFor(4096, Quick)
	if err != nil {
		t.Fatal(err)
	}
	out, err := runStability(q, stabilityArm{
		name:      "delete-random",
		adversary: adversary.NewRandomDeleter(),
		perEpoch:  8,
	}, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.minSize == 0 || out.maxSize < out.minSize {
		t.Errorf("outcome %+v", out)
	}
	if out.violatedAt != -1 {
		t.Errorf("tiny budget violated the interval at epoch %d", out.violatedAt)
	}
}

func TestFmtHelpers(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		1234:   "1234",
		-5678:  "-5678",
		12.34:  "12.3",
		-45.6:  "-45.6",
		0.1234: "0.123",
	}
	for in, want := range cases {
		if got := fmtF(in); got != want {
			t.Errorf("fmtF(%v) = %q, want %q", in, got, want)
		}
	}
	if fmtI(42) != "42" {
		t.Error("fmtI")
	}
}
