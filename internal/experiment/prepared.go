package experiment

import (
	"popstab/internal/agent"
	"popstab/internal/params"
	"popstab/internal/population"
	"popstab/internal/prng"
)

// PreparedEval builds a population positioned at the start of the evaluation
// round (round T−1) with exactly clusters0 + clusters1 full clusters of √N
// same-colored agents and the remainder inactive — the post-recruitment
// state Lemmas 6–8 reason about. It lets drift experiments sample the
// evaluation dynamics directly at one round per trial instead of simulating
// the whole Θ(log³N)-round epoch.
func PreparedEval(p params.Params, total, clusters0, clusters1 int) *population.Population {
	states := make([]agent.State, 0, total)
	evalRound := uint32(p.T - 1)
	addCluster := func(color uint8) {
		for i := 0; i < p.ClusterSize && len(states) < total; i++ {
			states = append(states, agent.State{
				Round:  evalRound,
				Active: true,
				Color:  color,
			})
		}
	}
	for c := 0; c < clusters0; c++ {
		addCluster(0)
	}
	for c := 0; c < clusters1; c++ {
		addCluster(1)
	}
	for len(states) < total {
		states = append(states, agent.State{Round: evalRound})
	}
	return population.FromStates(states)
}

// PreparedEvalRandomColors builds a prepared evaluation population with
// `clusters` clusters whose colors are independent fair coins — the honest
// distribution of Lemma 8.
func PreparedEvalRandomColors(p params.Params, total, clusters int, src *prng.Source) *population.Population {
	c1 := 0
	for i := 0; i < clusters; i++ {
		if src.Bool() {
			c1++
		}
	}
	return PreparedEval(p, total, clusters-c1, c1)
}

// ExpectedClusters reports the expected number of complete clusters for a
// population of size m: m/(8√N), the leader-selection mean.
func ExpectedClusters(p params.Params, m int) int {
	return m / (8 * p.ClusterSize)
}
