package experiment

import (
	"runtime"
	"strings"
	"testing"

	"popstab/internal/prng"
)

func TestRegistryComplete(t *testing.T) {
	wantIDs := []string{
		"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
		"E11", "E12", "E13", "E14", "E15", "E16", "E17",
		"A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9",
	}
	all := All()
	if len(all) != len(wantIDs) {
		ids := make([]string, len(all))
		for i, e := range all {
			ids[i] = e.ID
		}
		t.Fatalf("registry has %d experiments %v, want %d", len(all), ids, len(wantIDs))
	}
	for i, want := range wantIDs {
		if all[i].ID != want {
			t.Errorf("position %d: %s, want %s (ordering)", i, all[i].ID, want)
		}
	}
	for _, e := range all {
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("%s: incomplete descriptor", e.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("E1"); !ok {
		t.Error("E1 not found")
	}
	if _, ok := Lookup("e7"); !ok {
		t.Error("lookup must be case-insensitive")
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("E99 should not exist")
	}
}

func TestIDOrdering(t *testing.T) {
	cases := []struct {
		a, b string
		less bool
	}{
		{"E1", "E2", true},
		{"E2", "E10", true},
		{"E16", "A1", true},
		{"A1", "A2", true},
		{"A2", "E1", false},
	}
	for _, tc := range cases {
		if got := idLess(tc.a, tc.b); got != tc.less {
			t.Errorf("idLess(%s,%s) = %v", tc.a, tc.b, got)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Title: "demo", Cols: []string{"a", "bee"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	var b strings.Builder
	tab.Render(&b)
	out := b.String()
	for _, want := range []string{"demo", "a", "bee", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestResultRender(t *testing.T) {
	r := Result{ID: "E0", Title: "t", Claim: "c", Verdict: "v", Notes: []string{"n"}}
	out := r.Render()
	for _, want := range []string{"E0", "claim:", "verdict:", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestRunTrialsDeterministicOrdered(t *testing.T) {
	fn := func(trial int, src *prng.Source) float64 {
		return float64(trial)*1000 + float64(src.Uint64()%100)
	}
	a := RunTrials(16, 4, 42, fn)
	b := RunTrials(16, 2, 42, fn)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d: %v != %v (worker count changed results)", i, a[i], b[i])
		}
		if int(a[i]/1000) != i {
			t.Fatalf("trial %d out of order: %v", i, a[i])
		}
	}
}

func TestPreparedEval(t *testing.T) {
	p, err := paramsFor(4096, Quick)
	if err != nil {
		t.Fatal(err)
	}
	pop := PreparedEval(p, 4096, 3, 5)
	if pop.Len() != 4096 {
		t.Fatalf("len = %d", pop.Len())
	}
	c := pop.TakeCensus(p.T-1, p.HalfLogN)
	if c.Active != 8*p.ClusterSize {
		t.Errorf("active = %d, want %d", c.Active, 8*p.ClusterSize)
	}
	if c.ColorCount[0] != 3*p.ClusterSize || c.ColorCount[1] != 5*p.ClusterSize {
		t.Errorf("colors %v", c.ColorCount)
	}
	if c.InEval != 4096 {
		t.Errorf("InEval = %d", c.InEval)
	}
	if c.WrongRound != 0 {
		t.Errorf("WrongRound = %d", c.WrongRound)
	}
}

func TestPreparedEvalTruncates(t *testing.T) {
	p, err := paramsFor(4096, Quick)
	if err != nil {
		t.Fatal(err)
	}
	// More clusters than fit: population must still be exactly total.
	pop := PreparedEval(p, 100, 2, 2)
	if pop.Len() != 100 {
		t.Fatalf("len = %d", pop.Len())
	}
}

func TestExpectedClusters(t *testing.T) {
	p, err := paramsFor(4096, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if got := ExpectedClusters(p, 4096); got != 8 {
		t.Errorf("ExpectedClusters = %d, want 8", got)
	}
}

// TestSuiteQuick runs every registered experiment at Quick scale and checks
// that each reproduces its claim (verdict REPRODUCED). This is the
// repository's end-to-end reproduction gate.
func TestSuiteQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("suite runs take minutes; skipped with -short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res, err := e.Execute(Config{Scale: Quick, Seed: 7, Workers: runtime.NumCPU()})
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Errorf("Execute did not stamp ID: %q", res.ID)
			}
			if !strings.HasPrefix(res.Verdict, "REPRODUCED") {
				t.Errorf("%s verdict: %s\n%s", e.ID, res.Verdict, res.Render())
			}
		})
	}
}
