package experiment

import (
	"fmt"

	"popstab/internal/adversary"
	"popstab/internal/match"
	"popstab/internal/params"
	"popstab/internal/protocol"
	"popstab/internal/sim"
)

// paramsFor derives experiment parameters at the given scale. Experiments
// shorten the subphase to Tinner = 4·log N (Full) or 2·log N (Quick) —
// both within the paper's Tinner = ω(log N) family (footnotes 5–6) — so
// that epochs stay affordable at laptop N.
func paramsFor(n int, scale Scale, opts ...params.Option) (params.Params, error) {
	tinner := 2 * logOf(n)
	if scale == Full {
		tinner = 4 * logOf(n)
	}
	all := append([]params.Option{params.WithTinner(tinner)}, opts...)
	return params.Derive(n, all...)
}

// logOf is log₂ n for a power of two.
func logOf(n int) int {
	lg := 0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return lg
}

// stabilityArm is one (adversary, budget) configuration of a stability run.
type stabilityArm struct {
	name      string
	adversary adversary.Adversary
	perEpoch  int // alterations per epoch (0 = none)
}

// stabilityOutcome summarizes one stability trajectory.
type stabilityOutcome struct {
	minSize, maxSize int
	endSize          int
	violatedAt       int // epoch index of first interval violation, -1 if none
}

// maxDevFrac reports the worst |m − N|/N over the run.
func (o stabilityOutcome) maxDevFrac(n int) float64 {
	lo := float64(n-o.minSize) / float64(n)
	hi := float64(o.maxSize-n) / float64(n)
	if lo > hi {
		return lo
	}
	return hi
}

// runStability runs the protocol for `epochs` epochs under the arm's paced
// adversary and reports the outcome.
func runStability(p params.Params, arm stabilityArm, epochs int, seed uint64, sched match.Scheduler) (stabilityOutcome, error) {
	adv := arm.adversary
	k := 0
	if adv != nil && arm.perEpoch > 0 {
		k = 1
		adv = adversary.NewPaced(adversary.PerEpoch(p.T, arm.perEpoch, 1), adv)
	}
	pr, err := protocol.New(p)
	if err != nil {
		return stabilityOutcome{}, err
	}
	// Workers: 1 throughout the experiment suite: RunTrials already fans
	// trials out across the CPUs, so per-engine sharding would only
	// oversubscribe the scheduler. Engine output is identical either way.
	eng, err := sim.New(sim.Config{
		Workers:   1,
		Params:    p,
		Protocol:  pr,
		Adversary: adv,
		K:         k,
		Seed:      seed,
		Scheduler: sched,
	})
	if err != nil {
		return stabilityOutcome{}, err
	}
	lo := int(float64(p.N) * (1 - p.Alpha))
	hi := int(float64(p.N) * (1 + p.Alpha))
	out := stabilityOutcome{minSize: p.N, maxSize: p.N, violatedAt: -1}
	for ep := 0; ep < epochs; ep++ {
		rep := eng.RunEpoch()
		if rep.MinSize < out.minSize {
			out.minSize = rep.MinSize
		}
		if rep.MaxSize > out.maxSize {
			out.maxSize = rep.MaxSize
		}
		out.endSize = rep.EndSize
		if out.violatedAt < 0 && (rep.MinSize < lo || rep.MaxSize > hi) {
			out.violatedAt = ep
		}
	}
	return out, nil
}

// verdict renders a REPRODUCED/DEVIATION verdict line.
func verdict(ok bool, okMsg, badMsg string) string {
	if ok {
		return "REPRODUCED: " + okMsg
	}
	return "DEVIATION: " + badMsg
}

// budgetLabel formats a per-epoch adversary budget for table cells.
func budgetLabel(perEpoch int) string {
	if perEpoch == 0 {
		return "0"
	}
	return fmt.Sprintf("%d/epoch", perEpoch)
}
