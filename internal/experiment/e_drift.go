package experiment

import (
	"fmt"

	"popstab/internal/match"
	"popstab/internal/params"
	"popstab/internal/prng"
	"popstab/internal/protocol"
	"popstab/internal/sim"
	"popstab/internal/stats"
)

// evalDriftAt samples the one-round evaluation-phase population drift at a
// prepared population of size m with the protocol's own cluster structure —
// a Binomial(m, 1/(8√N)) number of complete clusters of √N agents with
// independent random colors — under a γ-matching. Each trial costs a single
// round, so drift curves are cheap to resolve.
func evalDriftAt(p params.Params, m int, gamma float64, trials int, cfg Config) *stats.Summary {
	deltas := RunTrials(trials, cfg.Workers, cfg.Seed^uint64(m)<<1, func(tr int, src *prng.Source) float64 {
		leaders := src.Binomial(m, p.LeaderProb())
		pop := PreparedEvalRandomColors(p, m, leaders, src)
		pr := protocol.MustNew(p)
		eng, err := sim.NewFromPopulation(sim.Config{
			Workers:   1,
			Params:    p,
			Protocol:  pr,
			Seed:      src.Uint64(),
			Scheduler: match.Uniform{Gamma: gamma},
		}, pop)
		if err != nil {
			panic(err) // static configuration; cannot fail after validation
		}
		rep := eng.RunRound()
		return float64(rep.SizeAfter - rep.SizeBefore)
	})
	var s stats.Summary
	s.AddAll(deltas)
	return &s
}

// E7 — the restoring drift of Lemma 8: displaced populations drift back
// toward the fixed point, in expectation, with magnitude Θ(√N·δ·γ).
func init() {
	register(&Experiment{
		ID:    "E7",
		Title: "Restoring drift (Lemma 8)",
		Claim: "Lemma 8: if m ∈ [(1−α)N, (1−α/2)N] the expected per-epoch change is +Ω(√N); " +
			"if m ∈ [(1+α/2)N, (1+α)N] it is −Ω(√N)",
		Run: runE7,
	})
}

func runE7(cfg Config) (*Result, error) {
	n := 4096
	trials := 4000
	if cfg.Scale == Full {
		n = 16384
		trials = 8000
	}
	p, err := paramsFor(n, cfg.Scale)
	if err != nil {
		return nil, err
	}
	mStar := p.PredictedEquilibrium()
	// Displacements relative to the finite-N fixed point m* = N − 8√N.
	fractions := []float64{0.50, 0.75, 1.0, 1.25, 1.5, 2.0}
	res := &Result{}
	table := Table{
		Title: fmt.Sprintf("one-round eval drift at N=%d (m* = N−16√N = %d), γ=%.2f, %d trials/point",
			n, mStar, p.Gamma, trials),
		Cols: []string{"m/m*", "m", "drift", "stderr", "sign"},
	}
	signsOK := true
	for _, f := range fractions {
		m := int(f * float64(mStar))
		s := evalDriftAt(p, m, p.Gamma, trials, cfg)
		sign := "≈0"
		// Significance: 3 standard errors.
		switch {
		case s.Mean() > 3*s.StdErr():
			sign = "+"
		case s.Mean() < -3*s.StdErr():
			sign = "−"
		}
		// Require significant signs only at clear displacements; near the
		// fixed point the drift crosses zero (its defining property), so
		// intermediate rows are descriptive.
		wantSign := "≈0"
		if f <= 0.6 {
			wantSign = "+"
		} else if f >= 1.45 {
			wantSign = "−"
		}
		if wantSign != "≈0" && sign != wantSign {
			signsOK = false
		}
		table.AddRow(fmtF(f), fmtI(m), fmtF(s.Mean()), fmtF(s.StdErr()), sign)
	}
	res.Tables = append(res.Tables, table)
	res.Verdict = verdict(signsOK,
		"drift is significantly positive below m* and negative above, as Lemma 8 predicts",
		"drift sign wrong at some displacement; see table")
	res.Notes = append(res.Notes,
		"the finite-N fixed point is m* = N − 16√N because the paper's split deficit 16/√N is "+
			"not asymptotically negligible at laptop N (8√N from the per-decision balance plus "+
			"8√N from the L²-weighting of decision counts); m* → N as N → ∞ and m* is well "+
			"inside the admissible interval (see EXPERIMENTS.md)")
	return res, nil
}

// E8 — recovery (Lemma 9): after a displacement to the interval edge, the
// population returns toward the target.
func init() {
	register(&Experiment{
		ID:    "E8",
		Title: "Recovery from displacement (Lemma 9)",
		Claim: "Lemma 9: a population displaced outside [(1−α/2)N, (1+α/2)N] returns to that " +
			"interval within a bounded number of epochs w.h.p.",
		Run: runE8,
	})
}

func runE8(cfg Config) (*Result, error) {
	n := 4096
	maxEpochs := 700
	gamma := 1.0 // strongest drift per epoch; Theorem holds for any constant γ
	if cfg.Scale == Full {
		maxEpochs = 1500
	}
	p, err := paramsFor(n, cfg.Scale, params.WithGamma(gamma))
	if err != nil {
		return nil, err
	}
	mStar := p.PredictedEquilibrium()
	res := &Result{}
	table := Table{
		Title: fmt.Sprintf("epochs to halve the displacement from m* = %d (N=%d, γ=%.1f)", mStar, n, gamma),
		Cols:  []string{"start", "direction", "halved at epoch", "end size"},
	}
	ok := true
	// Displace to the interval edges (1−α)N and (1+α)N, the setting of
	// Lemma 9.
	lo := int(float64(p.N) * (1 - p.Alpha))
	hi := int(float64(p.N) * (1 + p.Alpha))
	for _, start := range []int{lo, hi} {
		pr, err := protocol.New(p)
		if err != nil {
			return nil, err
		}
		eng, err := sim.New(sim.Config{Params: p, Protocol: pr, Seed: cfg.Seed, InitialSize: start, Workers: 1})
		if err != nil {
			return nil, err
		}
		disp := start - mStar
		if disp < 0 {
			disp = -disp
		}
		target := disp / 2
		halvedAt := -1
		for ep := 0; ep < maxEpochs; ep++ {
			eng.RunEpoch()
			d := eng.Size() - mStar
			if d < 0 {
				d = -d
			}
			if d <= target {
				halvedAt = ep
				break
			}
		}
		dir := "up"
		if start > mStar {
			dir = "down"
		}
		cell := "not reached"
		if halvedAt >= 0 {
			cell = fmtI(halvedAt)
		} else {
			ok = false
		}
		table.AddRow(fmtI(start), dir, cell, fmtI(eng.Size()))
	}
	res.Tables = append(res.Tables, table)
	res.Verdict = verdict(ok,
		"displacements are halved within the epoch budget in both directions",
		"recovery too slow at this scale; see table")
	res.Notes = append(res.Notes,
		"recovery speed is Θ(√N·γ/64) agents/epoch — sure but slow at laptop N; the paper's "+
			"N^{0.01}-epoch recovery window is asymptotic")
	return res, nil
}

// E16 — the finite-size equilibrium: the long-run population concentrates
// near m* = N − 8√N, an explicit finite-N refinement of the paper's
// asymptotic statement.
func init() {
	register(&Experiment{
		ID:    "E16",
		Title: "Finite-size equilibrium m* = N − 8√N",
		Claim: "refinement: the evaluation drift's fixed point at finite N is m* = N − 16√N " +
			"(→ N asymptotically); the long-run mean population sits near m*, inside the interval",
		Run: runE16,
	})
}

func runE16(cfg Config) (*Result, error) {
	n := 4096
	epochs := 400
	burn := 100
	if cfg.Scale == Full {
		epochs = 2000
		burn = 500
	}
	p, err := paramsFor(n, cfg.Scale, params.WithGamma(1.0))
	if err != nil {
		return nil, err
	}
	mStar := float64(p.PredictedEquilibrium())
	pr, err := protocol.New(p)
	if err != nil {
		return nil, err
	}
	// Start at the predicted fixed point and test that the population
	// stays there (rather than drifting back up to N): the relaxation time
	// Θ(m*/√N) epochs makes approach-from-N runs much longer.
	eng, err := sim.New(sim.Config{Params: p, Protocol: pr, Seed: cfg.Seed,
		Workers:     1,
		InitialSize: p.PredictedEquilibrium()})
	if err != nil {
		return nil, err
	}
	var s stats.Summary
	for ep := 0; ep < epochs; ep++ {
		rep := eng.RunEpoch()
		if ep >= burn {
			s.Add(float64(rep.EndSize))
		}
	}
	res := &Result{}
	table := Table{
		Title: fmt.Sprintf("long-run population (N=%d, γ=1, %d epochs after %d burn-in)", n, epochs-burn, burn),
		Cols:  []string{"predicted m*", "measured mean", "measured std", "N", "mean closer to m* than N"},
	}
	closerToStar := absF(s.Mean()-mStar) < absF(s.Mean()-float64(p.N))
	table.AddRow(fmtF(mStar), fmtF(s.Mean()), fmtF(s.Std()), fmtI(p.N), fmt.Sprintf("%v", closerToStar))
	res.Tables = append(res.Tables, table)
	res.Verdict = verdict(closerToStar && s.Mean() > float64(p.N)/2,
		"long-run mean concentrates near the predicted finite-N fixed point",
		"long-run mean not near m*; see table")
	return res, nil
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
