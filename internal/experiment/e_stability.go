package experiment

import (
	"fmt"

	"popstab/internal/adversary"
	"popstab/internal/match"
	"popstab/internal/stats"
)

// E1 — the main theorem: the population stays within [(1−α)N, (1+α)N] for
// many epochs, with no adversary and under every attack strategy paced at
// the paper's per-epoch alteration budget Θ(N^{1/4}).
func init() {
	register(&Experiment{
		ID:    "E1",
		Title: "Main theorem: population stability under worst-case alteration",
		Claim: "Theorem 1/2: with K·T = O(N^{1/4}) insertions/deletions per epoch, the population " +
			"remains in [(1−α)N, (1+α)N] for any polynomial number of rounds w.h.p. (α=0.5)",
		Run: runE1,
	})
}

func runE1(cfg Config) (*Result, error) {
	ns := []int{4096, 16384}
	epochs := 15
	trials := 2
	if cfg.Scale == Full {
		ns = []int{4096, 16384, 65536}
		epochs = 30
	}
	res := &Result{}
	table := Table{
		Title: "worst observed |m−N|/N over all epochs and trials (violation bound α = 0.5)",
		Cols:  []string{"N", "adversary", "budget", "epochs", "maxDev", "violations"},
	}
	allOK := true
	for _, n := range ns {
		p, err := paramsFor(n, cfg.Scale)
		if err != nil {
			return nil, err
		}
		arms := []stabilityArm{
			{name: "none", adversary: nil},
			{name: "delete-random", adversary: adversary.NewRandomDeleter(), perEpoch: p.MaxTolerableK()},
			{name: "insert-benign", adversary: adversary.NewBenignInserter(), perEpoch: p.MaxTolerableK()},
			{name: "greedy", adversary: adversary.NewGreedy(), perEpoch: p.MaxTolerableK()},
		}
		nEpochs := epochs
		if n >= 65536 {
			// The largest size costs ~5 ms/round; keep the headline
			// no-adversary and strongest-adversary arms, trimmed.
			arms = []stabilityArm{arms[0], arms[3]}
			nEpochs = 15
		}
		for _, arm := range arms {
			worst := 0.0
			violations := 0
			for tr := 0; tr < trials; tr++ {
				out, err := runStability(p, arm, nEpochs, cfg.Seed+uint64(tr)*7919, nil)
				if err != nil {
					return nil, err
				}
				if d := out.maxDevFrac(p.N); d > worst {
					worst = d
				}
				if out.violatedAt >= 0 {
					violations++
				}
			}
			if violations > 0 {
				allOK = false
			}
			table.AddRow(fmtI(n), arm.name, budgetLabel(arm.perEpoch), fmtI(nEpochs),
				fmtF(worst), fmtI(violations))
		}
	}
	res.Tables = append(res.Tables, table)
	res.Verdict = verdict(allOK,
		"no run left [(1−α)N, (1+α)N] under any strategy at the paper's per-epoch budget",
		"interval violated; see table")
	res.Notes = append(res.Notes,
		"budgets are expressed per epoch: the paper's lemmas consume K·T ≤ N^{1/4}/8 per epoch "+
			"(Lemma 3), with the log³N epoch length absorbed into the ε of K = O(N^{1/4−ε})")
	return res, nil
}

// E11 — the full strategy gallery at the per-epoch budget.
func init() {
	register(&Experiment{
		ID:    "E11",
		Title: "Adversary strategy sweep at the tolerated budget",
		Claim: "§1.3: no attack within budget — leader-targeted deletion, color skew, " +
			"desynchronization, eval flooding — moves the population out of the admissible interval",
		Run: runE11,
	})
}

func runE11(cfg Config) (*Result, error) {
	n := 4096
	epochs := 20
	if cfg.Scale == Full {
		n = 16384
		epochs = 25
	}
	p, err := paramsFor(n, cfg.Scale)
	if err != nil {
		return nil, err
	}
	arms := []stabilityArm{
		{name: "none", adversary: nil},
		{name: "delete-random", adversary: adversary.NewRandomDeleter(), perEpoch: p.MaxTolerableK()},
		{name: "delete-active", adversary: adversary.NewLeaderKiller(), perEpoch: p.MaxTolerableK()},
		{name: "delete-color1", adversary: adversary.NewColorDeleter(1), perEpoch: p.MaxTolerableK()},
		{name: "insert-benign", adversary: adversary.NewBenignInserter(), perEpoch: p.MaxTolerableK()},
		{name: "insert-leader0", adversary: adversary.NewFakeLeaderInserter(0), perEpoch: p.MaxTolerableK()},
		{name: "insert-singleton", adversary: adversary.NewSingletonInserter(), perEpoch: p.MaxTolerableK()},
		{name: "insert-offset", adversary: adversary.NewWrongRoundInserter(p.T / 2), perEpoch: p.MaxTolerableK()},
		{name: "insert-eval", adversary: adversary.NewEvalFlooder(), perEpoch: p.MaxTolerableK()},
		{name: "skew-up", adversary: adversary.NewColorSkewer(true), perEpoch: p.MaxTolerableK()},
		{name: "skew-down", adversary: adversary.NewColorSkewer(false), perEpoch: p.MaxTolerableK()},
		{name: "greedy", adversary: adversary.NewGreedy(), perEpoch: p.MaxTolerableK()},
	}
	res := &Result{}
	table := Table{
		Title: fmt.Sprintf("N=%d, budget N^(1/4)=%d alterations/epoch, %d epochs",
			n, p.MaxTolerableK(), epochs),
		Cols: []string{"strategy", "maxDev", "endDev", "violated"},
	}
	allOK := true
	for _, arm := range arms {
		out, err := runStability(p, arm, epochs, cfg.Seed, nil)
		if err != nil {
			return nil, err
		}
		endDev := float64(out.endSize-p.N) / float64(p.N)
		violated := "no"
		if out.violatedAt >= 0 {
			violated = fmt.Sprintf("epoch %d", out.violatedAt)
			allOK = false
		}
		table.AddRow(arm.name, fmtF(out.maxDevFrac(p.N)), fmtF(endDev), violated)
	}
	res.Tables = append(res.Tables, table)
	res.Verdict = verdict(allOK,
		"every strategy stays within the admissible interval at budget N^{1/4}/epoch",
		"a strategy broke the protocol within budget; see table")
	return res, nil
}

// E12 — budget scaling: find where the adversary starts to win.
func init() {
	register(&Experiment{
		ID:    "E12",
		Title: "Alteration-budget scaling (tolerance threshold)",
		Claim: "Theorem 1 bounds tolerance at Θ̃(N^{1/4}) alterations per epoch; budgets far above " +
			"that let the strongest strategies push the population out of the interval",
		Run: runE12,
	})
}

func runE12(cfg Config) (*Result, error) {
	n := 4096
	epochs := 20
	if cfg.Scale == Full {
		n = 16384
		epochs = 25
	}
	p, err := paramsFor(n, cfg.Scale)
	if err != nil {
		return nil, err
	}
	base := p.MaxTolerableK()
	budgets := []int{0, base, 4 * base, 16 * base, 64 * base, 256 * base}
	res := &Result{}
	table := Table{
		Title: fmt.Sprintf("N=%d, strongest amplifying strategy (insert-eval), %d epochs; N^(1/4)=%d",
			n, epochs, base),
		Cols: []string{"budget/epoch", "budget/N^(1/4)", "maxDev", "violated"},
	}
	lowOK := true
	highBroke := false
	for _, b := range budgets {
		arm := stabilityArm{name: "insert-eval", adversary: adversary.NewEvalFlooder(), perEpoch: b}
		if b == 0 {
			arm = stabilityArm{name: "none"}
		}
		out, err := runStability(p, arm, epochs, cfg.Seed, nil)
		if err != nil {
			return nil, err
		}
		violated := "no"
		if out.violatedAt >= 0 {
			violated = fmt.Sprintf("epoch %d", out.violatedAt)
			if b <= base {
				lowOK = false
			}
			if b >= 64*base {
				highBroke = true
			}
		}
		table.AddRow(budgetLabel(b), fmtF(float64(b)/float64(base)), fmtF(out.maxDevFrac(p.N)), violated)
	}
	if !highBroke {
		// The largest budgets must defeat the protocol for the threshold
		// shape to be visible.
		for _, row := range table.Rows {
			_ = row
		}
	}
	res.Tables = append(res.Tables, table)
	res.Verdict = verdict(lowOK && highBroke,
		"stable at ≤N^{1/4}/epoch, broken at ≫N^{1/4}/epoch — the predicted threshold shape",
		"threshold shape not observed; see table")
	res.Notes = append(res.Notes,
		"insert-eval converts each inserted agent into ≈2 deletions via the round-consistency "+
			"check, making it the strongest per-unit-budget attack in the library")
	return res, nil
}

// E14 — γ dependence: the protocol works for any constant matched fraction;
// the restoring drift scales linearly with γ.
func init() {
	register(&Experiment{
		ID:    "E14",
		Title: "Matched-fraction (γ) dependence",
		Claim: "Theorem 1 holds for any constant γ; the evaluation-phase drift magnitude is " +
			"proportional to the number of matched pairs, hence to γ",
		Run: runE14,
	})
}

func runE14(cfg Config) (*Result, error) {
	n := 4096
	epochs := 15
	drifTrials := 400
	if cfg.Scale == Full {
		epochs = 30
		drifTrials = 2000
	}
	gammas := []float64{0.1, 0.25, 0.5, 1.0}
	res := &Result{}
	table := Table{
		Title: fmt.Sprintf("N=%d: stability and one-round eval drift at m = m*/2 (displaced low)", n),
		Cols:  []string{"gamma", "violated", "maxDev", "evalDrift", "drift/gamma"},
	}
	var perGamma []float64
	allOK := true
	for _, g := range gammas {
		p, err := paramsFor(n, cfg.Scale)
		if err != nil {
			return nil, err
		}
		sched, err := match.NewUniform(g)
		if err != nil {
			return nil, err
		}
		out, err := runStability(p, stabilityArm{name: "none"}, epochs, cfg.Seed, sched)
		if err != nil {
			return nil, err
		}
		violated := "no"
		if out.violatedAt >= 0 {
			violated = "yes"
			allOK = false
		}
		drift := evalDriftAt(p, p.PredictedEquilibrium()/2, g, drifTrials, cfg)
		perGamma = append(perGamma, drift.Mean()/g)
		table.AddRow(fmtF(g), violated, fmtF(out.maxDevFrac(p.N)),
			fmt.Sprintf("%.2f±%.2f", drift.Mean(), drift.StdErr()), fmtF(drift.Mean()/g))
	}
	// Linearity check: drift/γ should be roughly constant across γ.
	var s stats.Summary
	s.AddAll(perGamma)
	linear := s.N() > 0 && s.Mean() > 0 && s.Std() < 0.5*s.Mean()
	res.Tables = append(res.Tables, table)
	res.Verdict = verdict(allOK && linear,
		"stable at every γ; restoring drift scales ∝ γ",
		"γ dependence off; see table")
	return res, nil
}
