package experiment

import (
	"fmt"

	"popstab/internal/adversary"
	"popstab/internal/match"
	"popstab/internal/params"
	"popstab/internal/protocol"
	"popstab/internal/sim"
)

// A1 — remove the round-consistency check: the desynchronization attack
// then wins, demonstrating why Algorithm 7 exists.
func init() {
	register(&Experiment{
		ID:    "A1",
		Title: "Ablation: disable CheckRoundConsistency (Algorithm 7)",
		Claim: "design choice: without the consistency check, adversarially inserted wrong-round " +
			"agents accumulate and disrupt the epoch structure (paper §1.3.2)",
		Run: runA1,
	})
}

func runA1(cfg Config) (*Result, error) {
	n := 4096
	epochs := 15
	if cfg.Scale == Full {
		epochs = 30
	}
	p, err := paramsFor(n, cfg.Scale)
	if err != nil {
		return nil, err
	}
	budget := p.MaxTolerableK() * 4
	res := &Result{}
	table := Table{
		Title: fmt.Sprintf("wrong-round inserter at %d/epoch, N=%d, %d epochs", budget, n, epochs),
		Cols:  []string{"consistency check", "final wrongRound agents", "wrongRound fraction", "maxDev"},
	}
	arm := func(opts ...protocol.Option) (wrong int, frac, maxDev float64, err error) {
		pr, err := protocol.New(p, opts...)
		if err != nil {
			return 0, 0, 0, err
		}
		paced := adversary.NewPaced(adversary.PerEpoch(p.T, budget, 1),
			adversary.NewWrongRoundInserter(p.T/2))
		eng, err := sim.New(sim.Config{Params: p, Protocol: pr, Seed: cfg.Seed, K: 1, Adversary: paced, Workers: 1})
		if err != nil {
			return 0, 0, 0, err
		}
		for ep := 0; ep < epochs; ep++ {
			rep := eng.RunEpoch()
			d := absF(float64(rep.MinSize-p.N)) / float64(p.N)
			if d2 := absF(float64(rep.MaxSize-p.N)) / float64(p.N); d2 > d {
				d = d2
			}
			if d > maxDev {
				maxDev = d
			}
		}
		c := eng.Census()
		return c.WrongRound, float64(c.WrongRound) / float64(c.Total), maxDev, nil
	}
	wOn, fOn, dOn, err := arm()
	if err != nil {
		return nil, err
	}
	wOff, fOff, dOff, err := arm(protocol.WithoutRoundCheck())
	if err != nil {
		return nil, err
	}
	table.AddRow("enabled", fmtI(wOn), fmtF(fOn), fmtF(dOn))
	table.AddRow("disabled", fmtI(wOff), fmtF(fOff), fmtF(dOff))
	res.Tables = append(res.Tables, table)
	ok := wOff > 4*wOn
	res.Verdict = verdict(ok,
		"without the check, wrong-round agents accumulate unchecked (they never get culled)",
		"ablation inconclusive; see table")
	return res, nil
}

// A2 — shrink Tinner below ω(log N): recruitment trees fail to fill and the
// variance signal weakens.
func init() {
	register(&Experiment{
		ID:    "A2",
		Title: "Ablation: subphase length below ω(log N)",
		Claim: "design choice: Tinner = ω(log N) (footnote 5) is needed for every recruiter to find " +
			"an inactive agent per subphase; shorter subphases leave clusters incomplete",
		Run: runA2,
	})
}

func runA2(cfg Config) (*Result, error) {
	n := 4096
	epochs := 6
	if cfg.Scale == Full {
		epochs = 12
	}
	logN := logOf(n)
	res := &Result{}
	table := Table{
		Title: fmt.Sprintf("recruitment completeness vs Tinner at N=%d (γ=0.25)", n),
		Cols:  []string{"Tinner", "vs logN", "miss rate", "colored fraction of design point"},
	}
	type point struct {
		tinner   int
		missRate float64
	}
	var pts []point
	for _, tinner := range []int{logN / 2, logN, 2 * logN, 4 * logN, 8 * logN} {
		p, err := params.Derive(n, params.WithUnsafeTinner(tinner))
		if err != nil {
			return nil, err
		}
		pr, err := protocol.New(p)
		if err != nil {
			return nil, err
		}
		eng, err := sim.New(sim.Config{Params: p, Protocol: pr, Seed: cfg.Seed, Workers: 1})
		if err != nil {
			return nil, err
		}
		active, incomplete := 0, 0
		colored := 0.0
		for ep := 0; ep < epochs; ep++ {
			eng.RunRounds(p.T - 1)
			c := eng.Census()
			active += c.Active
			for d := 1; d < len(c.ByToRecruit); d++ {
				incomplete += c.ByToRecruit[d]
			}
			colored += float64(c.Active) / float64(c.Total)
			eng.RunRounds(1)
		}
		rate := 0.0
		if active > 0 {
			rate = float64(incomplete) / float64(active)
		}
		pts = append(pts, point{tinner, rate})
		table.AddRow(fmtI(tinner), fmt.Sprintf("%.1fx", float64(tinner)/float64(logN)),
			fmt.Sprintf("%.4f", rate), fmtF(colored/float64(epochs)/0.125))
	}
	res.Tables = append(res.Tables, table)
	ok := pts[0].missRate > 10*pts[len(pts)-1].missRate && pts[0].missRate > 0.05
	res.Verdict = verdict(ok,
		"short subphases leave a large fraction of recruiters unfinished; misses vanish past ω(log N)",
		"miss-rate gradient not observed; see table")
	return res, nil
}

// A3 — adversary timing: acting before vs after the protocol step changes
// little, because the adversary never knows the upcoming matching either way.
func init() {
	register(&Experiment{
		ID:    "A3",
		Title: "Ablation: adversary timing within the round",
		Claim: "model choice: the adversary acts before the matching is drawn; giving it the turn " +
			"after the protocol step instead does not change the protocol's stability",
		Run: runA3,
	})
}

func runA3(cfg Config) (*Result, error) {
	n := 4096
	epochs := 15
	if cfg.Scale == Full {
		epochs = 30
	}
	p, err := paramsFor(n, cfg.Scale)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	table := Table{
		Title: fmt.Sprintf("greedy adversary at %d/epoch, N=%d, %d epochs", p.MaxTolerableK(), n, epochs),
		Cols:  []string{"timing", "maxDev", "violated"},
	}
	ok := true
	for _, after := range []bool{false, true} {
		pr, err := protocol.New(p)
		if err != nil {
			return nil, err
		}
		paced := adversary.NewPaced(adversary.PerEpoch(p.T, p.MaxTolerableK(), 1), adversary.NewGreedy())
		eng, err := sim.New(sim.Config{Params: p, Protocol: pr, Seed: cfg.Seed, K: 1,
			Workers:   1,
			Adversary: paced, AdversaryAfterStep: after})
		if err != nil {
			return nil, err
		}
		lo, hi := int(float64(p.N)*(1-p.Alpha)), int(float64(p.N)*(1+p.Alpha))
		maxDev, violated := 0.0, "no"
		for ep := 0; ep < epochs; ep++ {
			rep := eng.RunEpoch()
			if rep.MinSize < lo || rep.MaxSize > hi {
				violated = "yes"
				ok = false
			}
			if d := absF(float64(rep.MinSize-p.N)) / float64(p.N); d > maxDev {
				maxDev = d
			}
			if d := absF(float64(rep.MaxSize-p.N)) / float64(p.N); d > maxDev {
				maxDev = d
			}
		}
		name := "before matching (model)"
		if after {
			name = "after step (ablation)"
		}
		table.AddRow(name, fmtF(maxDev), violated)
	}
	res.Tables = append(res.Tables, table)
	res.Verdict = verdict(ok,
		"stability holds under both timings",
		"timing changed the outcome; see table")
	return res, nil
}

// A4 — scheduler variants: the protocol needs Ω(m) interactions per round;
// γ-matchings of any constant fraction work, the sequential (one pair per
// tick) scheduler of the classical population model does not.
func init() {
	register(&Experiment{
		ID:    "A4",
		Title: "Ablation: communication schedulers",
		Claim: "model choice: the synchronous γ-matching is essential — under the classical " +
			"sequential scheduler (one interaction per tick) the epoch structure starves (§1.2 \"Synchrony\")",
		Run: runA4,
	})
}

func runA4(cfg Config) (*Result, error) {
	n := 4096
	epochs := 8
	if cfg.Scale == Full {
		epochs = 15
	}
	p, err := paramsFor(n, cfg.Scale)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	table := Table{
		Title: fmt.Sprintf("recruitment health per scheduler, N=%d, %d epochs", n, epochs),
		Cols:  []string{"scheduler", "colored frac at eval (design 0.125)", "recruit misses/epoch", "stable"},
	}
	schedulers := []match.Scheduler{
		match.Uniform{Gamma: 0.25},
		match.Full{},
		match.Bernoulli{Participate: 0.25},
		match.Sequential{},
	}
	healthyByName := map[string]bool{}
	for _, sched := range schedulers {
		pr, err := protocol.New(p)
		if err != nil {
			return nil, err
		}
		eng, err := sim.New(sim.Config{Params: p, Protocol: pr, Seed: cfg.Seed, Scheduler: sched, Workers: 1})
		if err != nil {
			return nil, err
		}
		colored := 0.0
		for ep := 0; ep < epochs; ep++ {
			eng.RunRounds(p.T - 1)
			c := eng.Census()
			colored += float64(c.Active) / float64(c.Total)
			eng.RunRounds(1)
		}
		coloredFrac := colored / float64(epochs)
		misses := float64(pr.Counters().RecruitMisses) / float64(epochs)
		stable := "yes"
		if eng.Size() < int(float64(p.N)*(1-p.Alpha)) || eng.Size() > int(float64(p.N)*(1+p.Alpha)) {
			stable = "no"
		}
		healthy := coloredFrac > 0.06 // at least half the design point
		healthyByName[sched.Name()] = healthy
		table.AddRow(sched.Name(), fmtF(coloredFrac), fmtF(misses), stable)
	}
	res.Tables = append(res.Tables, table)
	ok := healthyByName["uniform(0.25)"] && healthyByName["full"] &&
		healthyByName["bernoulli(0.25)"] && !healthyByName["sequential"]
	res.Verdict = verdict(ok,
		"all Ω(m)-interaction schedulers sustain the epoch structure; the sequential scheduler starves recruitment",
		"scheduler sensitivity differs; see table")
	return res, nil
}
