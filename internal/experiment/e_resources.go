package experiment

import (
	"fmt"
	"math"

	"popstab/internal/adversary"
	"popstab/internal/params"
	"popstab/internal/protocol"
	"popstab/internal/sim"
	"popstab/internal/wire"
)

// E13 — resource accounting: ω(log²N) states, three-bit messages, and the
// behavioral equivalence of the three-bit codec with the four-bit reference.
func init() {
	register(&Experiment{
		ID:    "E13",
		Title: "Resource bounds: states, message size, codec equivalence (Theorem 2)",
		Claim: "Theorem 2: the protocol uses ω(log²N) states (Θ(log log N) bits) per agent and " +
			"three-bit messages; the three-bit encoding loses nothing the protocol reads",
		Run: runE13,
	})
}

// stateCount computes the number of reachable agent states: round counter T
// values × 3 persistent booleans (active, color, recruiting) × the
// toRecruit bookkeeping range. The transient coin counter of Algorithm 4
// reuses the round register (paper §4), so it adds no states.
func stateCount(p params.Params) int {
	return p.T * 8 * (p.HalfLogN + 1)
}

func runE13(cfg Config) (*Result, error) {
	ns := []int{4096, 16384, 65536, 262144, 1048576}
	res := &Result{}
	table := Table{
		Title: "per-agent resource accounting (Tinner = 4·log N variant; paper default log²N also shown)",
		Cols:  []string{"N", "states", "bits", "log²N", "states/log²N", "states(paper Tinner)", "msg bits"},
	}
	for _, n := range ns {
		p, err := paramsFor(n, Full)
		if err != nil {
			return nil, err
		}
		pPaper, err := params.Derive(n) // Tinner = log²N
		if err != nil {
			return nil, err
		}
		states := stateCount(p)
		log2N := float64(p.LogN * p.LogN)
		table.AddRow(fmtI(n), fmtI(states),
			fmtF(math.Log2(float64(states))),
			fmtF(log2N), fmtF(float64(states)/log2N),
			fmtI(stateCount(pPaper)), "3")
	}
	res.Tables = append(res.Tables, table)

	// Behavioral equivalence of the codecs under an active adversary.
	n := 4096
	p, err := paramsFor(n, cfg.Scale)
	if err != nil {
		return nil, err
	}
	rounds := 3 * p.T
	if cfg.Scale == Full {
		rounds = 10 * p.T
	}
	run := func(c wire.Codec) ([]int, error) {
		pr, err := protocol.New(p, protocol.WithCodec(c))
		if err != nil {
			return nil, err
		}
		eng, err := sim.New(sim.Config{Params: p, Protocol: pr, Seed: cfg.Seed, K: 1,
			Workers:   1,
			Adversary: adversary.NewWrongRoundInserter(p.T / 3)})
		if err != nil {
			return nil, err
		}
		sizes := make([]int, 0, rounds)
		for i := 0; i < rounds; i++ {
			sizes = append(sizes, eng.RunRound().SizeAfter)
		}
		return sizes, nil
	}
	three, err := run(wire.ThreeBit{})
	if err != nil {
		return nil, err
	}
	four, err := run(wire.FourBit{})
	if err != nil {
		return nil, err
	}
	identical := true
	for i := range three {
		if three[i] != four[i] {
			identical = false
			break
		}
	}
	eq := Table{
		Title: fmt.Sprintf("codec equivalence over %d rounds with desynchronization adversary", rounds),
		Cols:  []string{"codec pair", "trajectories identical"},
	}
	eq.AddRow("3-bit vs 4-bit", fmt.Sprintf("%v", identical))
	res.Tables = append(res.Tables, eq)

	res.Verdict = verdict(identical,
		"state count is Θ(T·log N) = ω(log²N) as claimed, and the 3-bit codec is behaviorally identical to the 4-bit reference",
		"codec trajectories diverged")
	res.Notes = append(res.Notes,
		"bits/agent ≈ log₂(T·8·(½logN+1)); at the paper's Tinner = log²N and N = 2^20 that is "+
			"≈ 17 bits = Θ(log log N)·O(log log N)-register structure the paper describes")
	return res, nil
}
