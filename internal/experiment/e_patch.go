package experiment

import (
	"fmt"
	"math"

	"popstab/internal/adversary"
	"popstab/internal/match"
	"popstab/internal/population"
	"popstab/internal/protocol"
	"popstab/internal/rogue"
	"popstab/internal/sim"
)

// A9 — the patch-attack map enabled by the spatial adversary seam: the
// adversary now sees positions (adversary.View), chooses where insertions
// land (Mutator.InsertAt via the population.Positions placement seam),
// concentrates deletions in one ball (DeleteNear), and owns the SmallWorld
// long-range link assignment (match.RewireController). Three questions,
// one per table:
//
//  1. is concentrated deletion stronger than spread deletion? No —
//     strikingly, the opposite: on the ring a patch of deletions saturates
//     (the ball empties and further budget is wasted on an already-dead
//     arc) while the same budget spread uniformly drags the whole
//     population down. Patch shielding cuts both ways: what protects a
//     rogue patch from honest culling protects the honest bulk from
//     concentrated deletion.
//  2. does adversarial placement change the containment map of A8? Yes:
//     clustering the same rogue cohort (same size, same R, same budget 0)
//     flips the torus at R = 3 from contained to takeover — placement
//     alone is worth more than replication rate. On the ring every radius
//     takes over: there is NO arc-length threshold below which 1-D patch
//     shielding fails (even the tightest patch, and — per the cohort
//     sweep — even a single seeded rogue on lucky coins) because any
//     surviving pair of adjacent rogues is already a shielded arc.
//  3. can the adversary re-shield a patch on a rewired topology? Yes:
//     smallworld(0.5) contains the clustered cohort at every tested R, but
//     denying rewiring inside the patch flips R = 1 to takeover, and
//     denying it everywhere (degenerating the topology to the ring) flips
//     every tested R — at ZERO alteration budget, since link assignment is
//     communication-model state, not an insertion or deletion.
func init() {
	register(&Experiment{
		ID:    "A9",
		Title: "Patch attacks: placement, concentrated deletion, and adversarial rewiring",
		Claim: "position-aware attacks redraw the spatial containment map: clustered placement " +
			"flips torus containment at R=3, the ring has no arc-length containment threshold " +
			"(every patch radius takes over), rewiring denial re-shields patches on small-world " +
			"topologies at zero alteration budget — while concentrated deletion is strictly " +
			"weaker than spread deletion (the patch saturates)",
		Run: runA9,
	})
}

// a9Center is the patch center used throughout (any point works: the
// topologies are homogeneous, modulo the grid boundary, which A9 avoids).
var a9Center = population.Point{X: 0.5, Y: 0.5}

// a9Matcher builds the topology for one cell.
func a9Matcher(name string, n int) (match.Matcher, error) {
	s2 := 1 / math.Sqrt(float64(n))
	s1 := 1 / float64(n)
	switch name {
	case "ring":
		return match.NewRing(s1)
	case "torus":
		return match.NewTorus(s2)
	case "smallworld(0.1)":
		return match.NewSmallWorld(s1, 0.1)
	case "smallworld(0.5)":
		return match.NewSmallWorld(s1, 0.5)
	}
	return nil, fmt.Errorf("a9: unknown topology %q", name)
}

func runA9(cfg Config) (*Result, error) {
	n := 4096
	p, err := paramsFor(n, cfg.Scale)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	lo := int(math.Ceil(float64(p.N) * (1 - p.Alpha)))
	hi := int(float64(p.N) * (1 + p.Alpha))
	base := p.MaxTolerableK()
	epochs := 12
	horizon := 2 * p.T
	if cfg.Scale == Full {
		horizon = 4 * p.T
	}

	// Table 1: concentrated vs spread deletion on the honest protocol.
	// Same per-epoch budget, same pacing; only the victim-selection rule
	// changes. delete-patch uses DeleteNear (nearest-first in one ball);
	// patch-combo alternates the ball's budget between deletion and
	// clustered fake-leader insertion (InsertAt).
	type t1arm struct {
		name string
		mk   func() adversary.Adversary
	}
	arms := []t1arm{
		{"delete-random", func() adversary.Adversary { return adversary.NewRandomDeleter() }},
		{"delete-patch(0.02)", func() adversary.Adversary { return adversary.NewPatchDeleter(a9Center, 0.02) }},
		{"delete-patch(0.1)", func() adversary.Adversary { return adversary.NewPatchDeleter(a9Center, 0.1) }},
		{"patch-combo(0.05)", func() adversary.Adversary {
			return adversary.NewPatchCombo(a9Center, 0.05, nil)
		}},
	}
	t1 := Table{
		Title: fmt.Sprintf("concentrated vs spread alteration, N=%d, %d epochs, budgets/epoch {%d, %d}", n, epochs, base, 16*base),
		Cols:  []string{"topology", "strategy", "budget", "first violation (epoch)", "maxDev"},
	}
	t1dev := map[string]map[string]map[int]float64{} // topo -> arm -> budget -> maxDev
	t1viol := map[string]map[string]map[int]int{}
	for _, topo := range []string{"ring", "torus"} {
		t1dev[topo] = map[string]map[int]float64{}
		t1viol[topo] = map[string]map[int]int{}
		for _, arm := range arms {
			t1dev[topo][arm.name] = map[int]float64{}
			t1viol[topo][arm.name] = map[int]int{}
			for _, b := range []int{base, 16 * base} {
				m, err := a9Matcher(topo, p.N)
				if err != nil {
					return nil, err
				}
				pr, err := protocol.New(p)
				if err != nil {
					return nil, err
				}
				eng, err := sim.New(sim.Config{
					Params: p, Protocol: pr, Seed: cfg.Seed, Workers: 1, Matcher: m, K: 1,
					Adversary: adversary.NewPaced(adversary.PerEpoch(p.T, b, 1), arm.mk()),
				})
				if err != nil {
					return nil, err
				}
				firstViol := -1
				maxDev := 0.0
				for ep := 0; ep < epochs && eng.Size() < 4*p.N; ep++ {
					rep := eng.RunEpoch()
					if firstViol < 0 && (rep.MinSize < lo || rep.MaxSize > hi) {
						firstViol = ep
					}
					for _, v := range []int{rep.MinSize, rep.MaxSize} {
						if d := absF(float64(v-p.N)) / float64(p.N); d > maxDev {
							maxDev = d
						}
					}
				}
				t1dev[topo][arm.name][b] = maxDev
				t1viol[topo][arm.name][b] = firstViol
				cell := "none"
				if firstViol >= 0 {
					cell = fmtI(firstViol)
				}
				t1.AddRow(topo, arm.name, budgetLabel(b), cell, fmtF(maxDev))
			}
		}
	}
	res.Tables = append(res.Tables, t1)

	// The deletion verdict asserts the robust ring rows: at 16×base the
	// spread deleter displaces the population at least twice as far as the
	// tight patch deleter (whose ball saturates), and neither patch arm
	// breaks the interval on the ring. Torus rows are dominated by the
	// topology's own signal collapse (A5/A7: it escapes at budget 0) and
	// are reported, not asserted.
	bigB := 16 * base
	deletionOK := t1dev["ring"]["delete-random"][bigB] >= 2*t1dev["ring"]["delete-patch(0.02)"][bigB] &&
		t1viol["ring"]["delete-patch(0.02)"][bigB] < 0 &&
		t1viol["ring"]["delete-patch(0.1)"][bigB] < 0

	// Table 2: clustered rogue cohort (64 rogues, R = 3, detect = 1) across
	// patch radius × topology. radius "uniform" is A8's oblivious seeding;
	// the others place the cohort in one ball through the Placer seam.
	radii := []float64{0.002, 0.02, 0.1, -1} // -1 = uniform
	radLabel := func(r float64) string {
		if r < 0 {
			return "uniform"
		}
		return fmt.Sprintf("%.3g", r)
	}
	t2 := Table{
		Title: fmt.Sprintf("clustered rogue cohort of 64, R=3, detect=1, ≤%d rounds: patch radius × topology", horizon),
		Cols:  []string{"topology", "radius", "rogues left", "honest size", "rogue kills", "outcome"},
	}
	contained := map[string]map[string]bool{}
	for _, topo := range []string{"ring", "torus", "smallworld(0.1)", "smallworld(0.5)"} {
		contained[topo] = map[string]bool{}
		for _, rad := range radii {
			m, err := a9Matcher(topo, p.N)
			if err != nil {
				return nil, err
			}
			rcfg := rogue.Config{
				Params: p, ReplicateEvery: 3, DetectProb: 1,
				InitialRogues: 64, Seed: cfg.Seed, Workers: 1, Matcher: m,
			}
			if rad >= 0 {
				rcfg.Cluster = &rogue.ClusterSpec{Center: a9Center, Radius: rad}
			}
			eng, err := rogue.New(rcfg)
			if err != nil {
				return nil, err
			}
			for i := 0; i < horizon && eng.Size() < 4*p.N; i++ {
				eng.RunRound()
			}
			honest, rogues := eng.Counts()
			outcome := "contained"
			if rogues >= 64 {
				outcome = "takeover"
			}
			contained[topo][radLabel(rad)] = outcome == "contained"
			t2.AddRow(topo, radLabel(rad), fmtI(rogues), fmtI(honest),
				fmtI(int(eng.Stats().RogueKills)), outcome)
		}
	}
	res.Tables = append(res.Tables, t2)

	// Placement verdict, robust rows: the ring takes over at EVERY radius
	// (no arc-length threshold exists — shielding absence demonstrated);
	// smallworld(0.5) contains every radius; the torus contains the
	// uniform seeding (A8) but loses the tightly clustered ones — the
	// placement flip. smallworld(0.1) straddles seeds and is reported only.
	placementOK := true
	for _, rad := range radii {
		placementOK = placementOK && !contained["ring"][radLabel(rad)]
		placementOK = placementOK && contained["smallworld(0.5)"][radLabel(rad)]
	}
	placementOK = placementOK && contained["torus"]["uniform"] &&
		!contained["torus"]["0.002"] && !contained["torus"]["0.02"]

	// Table 3: adversarial rewiring on smallworld(0.5): the same clustered
	// cohort (radius 0.02) under no adversary, rewiring denied inside a
	// 0.1-ball around the patch, and rewiring denied everywhere. The
	// rewire adversary spends no alteration budget (K=1 merely enables the
	// turn; Act stages nothing).
	t3 := Table{
		Title: "adversarial rewiring on smallworld(0.5): clustered cohort of 64 at radius 0.02",
		Cols:  []string{"R", "rewiring", "rogues left", "honest size", "outcome"},
	}
	rewireContained := map[int]map[string]bool{}
	for _, r := range []int{1, 3} {
		rewireContained[r] = map[string]bool{}
		for _, arm := range []string{"free", "deny-patch(0.1)", "deny-all"} {
			m, err := a9Matcher("smallworld(0.5)", p.N)
			if err != nil {
				return nil, err
			}
			rcfg := rogue.Config{
				Params: p, ReplicateEvery: r, DetectProb: 1,
				InitialRogues: 64, Seed: cfg.Seed, Workers: 1, Matcher: m,
				Cluster: &rogue.ClusterSpec{Center: a9Center, Radius: 0.02},
			}
			switch arm {
			case "deny-patch(0.1)":
				rcfg.Adversary, rcfg.K = adversary.NewRewireDenier(a9Center, 0.1), 1
			case "deny-all":
				rcfg.Adversary, rcfg.K = adversary.NewRewireDenier(a9Center, -1), 1
			}
			eng, err := rogue.New(rcfg)
			if err != nil {
				return nil, err
			}
			for i := 0; i < horizon && eng.Size() < 4*p.N; i++ {
				eng.RunRound()
			}
			honest, rogues := eng.Counts()
			outcome := "contained"
			if rogues >= 64 {
				outcome = "takeover"
			}
			rewireContained[r][arm] = outcome == "contained"
			t3.AddRow(fmtI(r), arm, fmtI(rogues), fmtI(honest), outcome)
		}
	}
	res.Tables = append(res.Tables, t3)

	// Rewiring verdict: free rewiring contains both R; denying it inside
	// the patch flips R=1 (fast interior replication only needed its own
	// links cut) but not R=3 (incoming long-range proposals still reach
	// the patch); denying it everywhere — the ring degeneration — flips
	// both.
	rewireOK := rewireContained[1]["free"] && rewireContained[3]["free"] &&
		!rewireContained[1]["deny-patch(0.1)"] && rewireContained[3]["deny-patch(0.1)"] &&
		!rewireContained[1]["deny-all"] && !rewireContained[3]["deny-all"]

	res.Verdict = verdict(deletionOK && placementOK && rewireOK,
		"placement and link control dominate the spatial map: clustering flips torus R=3 to "+
			"takeover, the ring takes over at every patch radius (no arc-length threshold), "+
			"rewiring denial re-shields small-world patches at zero budget, and concentrated "+
			"deletion saturates (≥2× weaker than spread deletion on the ring)",
		"patch-attack map differs from the calibrated expectations; see tables")
	res.Notes = append(res.Notes,
		"the ring radius sweep is the arc-length threshold question answered in the negative: "+
			"containment never holds because any surviving adjacent rogue pair is already a "+
			"shielded arc — a cohort-size sweep (not tabled) shows even a single clustered rogue "+
			"takes over on lucky seeds, so no initial-patch-size threshold exists either",
		"concentrated deletion saturates: a 0.02-radius arc holds ~2% of the ring population, so "+
			"a 128/epoch patch deleter empties it and then wastes budget re-deleting an empty ball "+
			"while the spread deleter keeps extracting full value — patch shielding protects the "+
			"honest bulk exactly as it protects rogue patches",
		"the torus flip (uniform contained, clustered takeover at the same R, cohort, and budget) "+
			"shows adversarial placement is worth more than replication rate: 64 uniform singletons "+
			"die before pairing, 64 co-located rogues are born as one shielded patch",
		"rewiring denial acts through match.RewireController — communication-model state, not an "+
			"alteration — so the K budget is untouched; the graded result (patch-local denial flips "+
			"only R=1, global denial flips R=3 too) separates the two long-range kill channels: the "+
			"patch's own proposals vs incoming honest proposals",
		"smallworld(0.1) rows straddle seeds (metastable, as in A8) and are reported, not asserted")
	return res, nil
}
