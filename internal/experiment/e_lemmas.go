package experiment

import (
	"fmt"
	"math"

	"popstab/internal/adversary"
	"popstab/internal/protocol"
	"popstab/internal/sim"
	"popstab/internal/stats"
)

// E2 — Lemma 3: the number of agents with a wrong round counter stays
// bounded under the desynchronization attack.
func init() {
	register(&Experiment{
		ID:    "E2",
		Title: "Wrong-round population bound (Lemma 3)",
		Claim: "Lemma 3: with per-epoch insertion budget ≤ N^{1/4}/8, all but O(γ⁻¹·N^{1/4}) " +
			"agents share the majority round value at all times",
		Run: runE2,
	})
}

func runE2(cfg Config) (*Result, error) {
	n := 4096
	epochs := 20
	if cfg.Scale == Full {
		n = 16384
		epochs = 40
	}
	p, err := paramsFor(n, cfg.Scale)
	if err != nil {
		return nil, err
	}
	budget := p.MaxTolerableK()
	offsets := []int{1, p.T / 4, p.T / 2}
	res := &Result{}
	table := Table{
		Title: fmt.Sprintf("N=%d, wrong-round inserter at %d/epoch over %d epochs", n, budget, epochs),
		Cols:  []string{"round offset", "max wrongRound", "mean wrongRound", "steady bound ≈ 2.3·budget/(1−(1−γ)²)"},
	}
	// The removal probability per epoch for an offset agent is
	// 1 − (1−γ)², giving a steady state near budget/(1−(1−γ)²).
	steady := float64(budget) / (1 - (1-p.Gamma)*(1-p.Gamma))
	bound := 6 * steady
	ok := true
	for _, off := range offsets {
		paced := adversary.NewPaced(adversary.PerEpoch(p.T, budget, 1),
			adversary.NewWrongRoundInserter(off))
		pr, err := protocol.New(p)
		if err != nil {
			return nil, err
		}
		eng, err := sim.New(sim.Config{Params: p, Protocol: pr, Seed: cfg.Seed, K: 1, Adversary: paced, Workers: 1})
		if err != nil {
			return nil, err
		}
		var s stats.Summary
		maxWrong := 0
		for ep := 0; ep < epochs; ep++ {
			eng.RunEpoch()
			c := eng.Census()
			s.Add(float64(c.WrongRound))
			if c.WrongRound > maxWrong {
				maxWrong = c.WrongRound
			}
		}
		if float64(maxWrong) > bound {
			ok = false
		}
		table.AddRow(fmtI(off), fmtI(maxWrong), fmtF(s.Mean()), fmtF(steady))
	}
	res.Tables = append(res.Tables, table)
	res.Verdict = verdict(ok,
		"wrong-round population stays near the predicted steady state, a vanishing fraction of N",
		"wrong-round population exceeded 6× the predicted steady state")
	return res, nil
}

// E3 — Lemma 4: at most half of the agents are active at any point.
func init() {
	register(&Experiment{
		ID:    "E3",
		Title: "Active-fraction invariant (Lemma 4)",
		Claim: "Lemma 4: at any point in an epoch, at most 1/2 of the agents have active = 1",
		Run:   runE3,
	})
}

func runE3(cfg Config) (*Result, error) {
	ns := []int{4096}
	epochs := 5
	if cfg.Scale == Full {
		ns = []int{4096, 16384, 65536}
		epochs = 10
	}
	res := &Result{}
	table := Table{
		Title: "max active fraction over every round of every epoch (with fake-leader insertion)",
		Cols:  []string{"N", "maxActiveFrac", "bound"},
	}
	ok := true
	for _, n := range ns {
		p, err := paramsFor(n, cfg.Scale)
		if err != nil {
			return nil, err
		}
		// Stress with the attack that inflates activation the most.
		paced := adversary.NewPaced(adversary.PerEpoch(p.T, p.MaxTolerableK(), 1),
			adversary.NewFakeLeaderInserter(0))
		pr, err := protocol.New(p)
		if err != nil {
			return nil, err
		}
		eng, err := sim.New(sim.Config{Params: p, Protocol: pr, Seed: cfg.Seed, K: 1, Adversary: paced, Workers: 1})
		if err != nil {
			return nil, err
		}
		maxFrac := 0.0
		for r := 0; r < epochs*p.T; r++ {
			eng.RunRound()
			if f := eng.Census().ActiveFraction(); f > maxFrac {
				maxFrac = f
			}
		}
		if maxFrac > 0.5 {
			ok = false
		}
		table.AddRow(fmtI(n), fmtF(maxFrac), "0.5")
	}
	res.Tables = append(res.Tables, table)
	res.Verdict = verdict(ok,
		"active fraction never exceeded 1/2 (observed maxima ≈ 1/8, the design point)",
		"active fraction exceeded 1/2")
	return res, nil
}

// E4 — Lemma 5: recruitment trees complete (toRecruit = 0 at evaluation).
func init() {
	register(&Experiment{
		ID:    "E4",
		Title: "Recruitment completion (Lemma 5)",
		Claim: "Lemma 5: w.h.p. every active agent reaches the evaluation phase with toRecruit = 0, " +
			"i.e. every leader's cluster grows to the full √N",
		Run: runE4,
	})
}

func runE4(cfg Config) (*Result, error) {
	n := 4096
	epochs := 8
	if cfg.Scale == Full {
		n = 16384
		epochs = 15
	}
	res := &Result{}
	table := Table{
		Title: fmt.Sprintf("incomplete recruiters at evaluation, N=%d (Tinner sweep; paper needs ω(log N))", n),
		Cols:  []string{"Tinner", "Tinner/logN", "active at eval", "incomplete", "miss rate"},
	}
	logN := logOf(n)
	ok := true
	for _, mult := range []int{2, 4, 8} {
		p, err := paramsFor(n, cfg.Scale)
		if err != nil {
			return nil, err
		}
		p.Tinner = mult * logN
		p.T = p.Tinner * p.HalfLogN
		if err := p.Validate(); err != nil {
			return nil, err
		}
		pr, err := protocol.New(p)
		if err != nil {
			return nil, err
		}
		eng, err := sim.New(sim.Config{Params: p, Protocol: pr, Seed: cfg.Seed, Workers: 1})
		if err != nil {
			return nil, err
		}
		active, incomplete := 0, 0
		for ep := 0; ep < epochs; ep++ {
			eng.RunRounds(p.T - 1)
			c := eng.Census()
			active += c.Active
			for d := 1; d < len(c.ByToRecruit); d++ {
				incomplete += c.ByToRecruit[d]
			}
			eng.RunRounds(1)
		}
		rate := 0.0
		if active > 0 {
			rate = float64(incomplete) / float64(active)
		}
		if mult >= 8 && rate > 0.001 {
			ok = false
		}
		table.AddRow(fmtI(mult*logN), fmtI(mult), fmtI(active), fmtI(incomplete), fmt.Sprintf("%.5f", rate))
	}
	res.Tables = append(res.Tables, table)
	res.Verdict = verdict(ok,
		"miss rate vanishes as Tinner grows past ω(log N), as Lemma 5 requires",
		"recruitment misses persist at large Tinner")
	return res, nil
}

// E5 — Lemma 6: per-color counts at evaluation are m/16 ± O(N^{3/4}).
func init() {
	register(&Experiment{
		ID:    "E5",
		Title: "Color balance at evaluation (Lemma 6)",
		Claim: "Lemma 6: the number of agents of each color at the start of the evaluation phase " +
			"is m/16 ± O(N^{3/4−ε}) w.h.p.",
		Run: runE5,
	})
}

func runE5(cfg Config) (*Result, error) {
	ns := []int{4096, 16384}
	epochs := 10
	if cfg.Scale == Full {
		ns = []int{4096, 16384, 65536}
		epochs = 20
	}
	res := &Result{}
	table := Table{
		Title: "per-color deviation |count − m/16| at evaluation (mean over epochs and colors)",
		Cols:  []string{"N", "mean |dev|", "predicted σ = N^{3/4}/4", "ratio"},
	}
	var xs, ys []float64
	for _, n := range ns {
		p, err := paramsFor(n, cfg.Scale)
		if err != nil {
			return nil, err
		}
		pr, err := protocol.New(p)
		if err != nil {
			return nil, err
		}
		eng, err := sim.New(sim.Config{Params: p, Protocol: pr, Seed: cfg.Seed, Workers: 1})
		if err != nil {
			return nil, err
		}
		var devs stats.Summary
		for ep := 0; ep < epochs; ep++ {
			eng.RunRounds(p.T - 1)
			c := eng.Census()
			m := float64(c.Total)
			for b := 0; b < 2; b++ {
				devs.Add(absF(float64(c.ColorCount[b]) - m/16))
			}
			eng.RunRounds(1)
		}
		// Cluster-count noise: per color, std ≈ √(m/(16√N)) clusters of √N
		// agents ⇒ std ≈ N^{3/4}/4 at m = N.
		pred := math.Pow(float64(n), 0.75) / 4
		xs = append(xs, float64(n))
		ys = append(ys, devs.Mean())
		table.AddRow(fmtI(n), fmtF(devs.Mean()), fmtF(pred), fmtF(devs.Mean()/pred))
	}
	exp, _, r2, err := stats.FitPowerLaw(xs, ys)
	if err != nil {
		return nil, err
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		fmt.Sprintf("fitted scaling exponent of the deviation vs N: %.2f (R²=%.2f); Lemma 6 predicts ≤ 3/4", exp, r2))
	ok := exp < 0.95 // clearly sublinear, consistent with N^{3/4}
	res.Verdict = verdict(ok,
		"color deviations are Θ(N^{3/4})-scale, matching Lemma 6's bound",
		"color deviations scale faster than predicted")
	return res, nil
}

// E6 — Lemma 7: the per-epoch population deviation is Õ(√N).
func init() {
	register(&Experiment{
		ID:    "E6",
		Title: "Per-epoch bounded deviation (Lemma 7)",
		Claim: "Lemma 7: within one epoch the population changes by at most Õ(√N) w.h.p.",
		Run:   runE6,
	})
}

func runE6(cfg Config) (*Result, error) {
	ns := []int{4096, 16384}
	epochs := 15
	if cfg.Scale == Full {
		ns = []int{4096, 16384, 65536}
		epochs = 30
	}
	res := &Result{}
	table := Table{
		Title: "per-epoch |ΔPop| statistics (no adversary)",
		Cols:  []string{"N", "mean |Δ|", "max |Δ|", "√N", "max/√N"},
	}
	var xs, ys []float64
	for _, n := range ns {
		p, err := paramsFor(n, cfg.Scale)
		if err != nil {
			return nil, err
		}
		pr, err := protocol.New(p)
		if err != nil {
			return nil, err
		}
		eng, err := sim.New(sim.Config{Params: p, Protocol: pr, Seed: cfg.Seed, Workers: 1})
		if err != nil {
			return nil, err
		}
		var s stats.Summary
		maxAbs := 0.0
		for ep := 0; ep < epochs; ep++ {
			rep := eng.RunEpoch()
			d := absF(float64(rep.Delta()))
			s.Add(d)
			if d > maxAbs {
				maxAbs = d
			}
		}
		sqrtN := math.Sqrt(float64(n))
		xs = append(xs, float64(n))
		ys = append(ys, s.Mean()+0.001) // epsilon guards the log fit at 0
		table.AddRow(fmtI(n), fmtF(s.Mean()), fmtF(maxAbs), fmtF(sqrtN), fmtF(maxAbs/sqrtN))
	}
	exp, _, r2, err := stats.FitPowerLaw(xs, ys)
	if err != nil {
		return nil, err
	}
	res.Tables = append(res.Tables, table)
	res.Notes = append(res.Notes,
		fmt.Sprintf("fitted scaling exponent of mean |Δ| vs N: %.2f (R²=%.2f); Lemma 7 predicts ≤ 1/2 up to logs", exp, r2))
	ok := exp < 0.75
	res.Verdict = verdict(ok,
		"per-epoch deviations scale like √N, matching Lemma 7",
		"per-epoch deviations scale faster than √N")
	return res, nil
}
