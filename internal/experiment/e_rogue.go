package experiment

import (
	"fmt"
	"math"

	"popstab/internal/rogue"
)

// E17 — the §1.2 malicious-program extension: with agent-removal, program
// detection, and a replication-rate bound, the system survives malicious
// agents; remove any ingredient and it does not.
func init() {
	register(&Experiment{
		ID:    "E17",
		Title: "Malicious-program extension (§1.2)",
		Claim: "§1.2: population stability is impossible against agents running arbitrary malicious " +
			"programs, but the protocol extends to tolerate them given (1) a bound on malicious " +
			"replication frequency, (2) program-difference detection on contact, and (3) the " +
			"ability to remove encountered agents",
		Run: runE17,
	})
}

func runE17(cfg Config) (*Result, error) {
	n := 4096
	epochs := 3
	horizonRounds := 300
	if cfg.Scale == Full {
		epochs = 6
		horizonRounds = 600
	}
	p, err := paramsFor(n, cfg.Scale)
	if err != nil {
		return nil, err
	}
	res := &Result{}

	// Table 1: the containment threshold. A rogue survives each round with
	// probability 1−γ (cull on any honest contact) and doubles every R
	// rounds, so the per-round log growth is ln2/R + ln(1−γ): containment
	// iff R > R* = ln2 / (−ln(1−γ)) ≈ 2.41 at γ = 1/4.
	rStar := math.Ln2 / (-math.Log1p(-p.Gamma))
	t1 := Table{
		Title: fmt.Sprintf("rogue cohort of 64 vs replication period R (N=%d, γ=%.2f, detect=1, %d epochs; R* = %.2f)",
			n, p.Gamma, epochs, rStar),
		Cols: []string{"R (rounds/replication)", "log growth ln2/R", "log cull −ln(1−γ)", "rogues left", "outcome"},
	}
	thresholdOK := true
	for _, r := range []int{2, 3, 6, 12, 24} {
		eng, err := rogue.New(rogue.Config{
			Params: p, ReplicateEvery: r, DetectProb: 1,
			InitialRogues: 64, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		for i := 0; i < epochs*p.T && eng.Size() < 4*p.N; i++ {
			eng.RunRound()
		}
		_, rogues := eng.Counts()
		outcome := "contained"
		if rogues >= 64 {
			outcome = "takeover"
		}
		wantContained := float64(r) > rStar
		if wantContained != (outcome == "contained") {
			thresholdOK = false
		}
		t1.AddRow(fmtI(r), fmtF(math.Ln2/float64(r)), fmtF(-math.Log1p(-p.Gamma)),
			fmtI(rogues), outcome)
	}
	res.Tables = append(res.Tables, t1)

	// Table 2: ingredient ablation at a fixed safe replication period.
	t2 := Table{
		Title: fmt.Sprintf("ingredient ablation (R=12, 64 initial rogues, %d rounds)", horizonRounds),
		Cols:  []string{"configuration", "rogues left", "honest size", "outcome"},
	}
	type arm struct {
		name   string
		r      int
		detect float64
	}
	arms := []arm{
		{"full extension (detect=1, R=12)", 12, 1},
		{"no detection (detect=0)", 12, 0},
		{"no rate bound (R=1, detect=1)", 1, 1},
	}
	ablationOK := true
	for idx, a := range arms {
		eng, err := rogue.New(rogue.Config{
			Params: p, ReplicateEvery: a.r, DetectProb: a.detect,
			InitialRogues: 64, Seed: cfg.Seed + uint64(idx),
		})
		if err != nil {
			return nil, err
		}
		for i := 0; i < horizonRounds && eng.Size() < 4*p.N; i++ {
			eng.RunRound()
		}
		honest, rogues := eng.Counts()
		outcome := "contained"
		if rogues >= 64 {
			outcome = "takeover"
		}
		if idx == 0 && outcome != "contained" {
			ablationOK = false
		}
		if idx > 0 && outcome != "takeover" {
			ablationOK = false
		}
		t2.AddRow(a.name, fmtI(rogues), fmtI(honest), outcome)
	}
	res.Tables = append(res.Tables, t2)

	res.Verdict = verdict(thresholdOK && ablationOK,
		"containment exactly when replication is slower than the γ-cull rate; removing detection "+
			"or the rate bound lets rogues take over — all three ingredients are necessary, as §1.2 argues",
		"extension behavior differs from §1.2; see tables")
	res.Notes = append(res.Notes,
		"the containment threshold is a branching-process balance: per-round log growth ln2/R "+
			"vs log cull −ln(1−γ·h·detect), giving R* = ln2/(−ln(1−γ)) ≈ 2.41 rounds at γ=1/4")
	return res, nil
}
