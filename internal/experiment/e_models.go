package experiment

import (
	"fmt"

	"popstab/internal/baseline"
	"popstab/internal/geo"
	"popstab/internal/params"
	"popstab/internal/protocol"
	"popstab/internal/sim"
	"popstab/internal/stats"
)

// A5 — spatial (geometric) communication: the paper's uniform random
// matching is load-bearing; under nearest-neighbor matching the color signal
// saturates locally and the size estimator biases upward.
func init() {
	register(&Experiment{
		ID:    "A5",
		Title: "Ablation: geometric (nearest-neighbor) communication",
		Claim: "§1.2 open question: with agents at points of R² communicating locally, recruitment " +
			"grows spatial patches; nearby agents share clusters far more often than the well-mixed " +
			"analysis assumes, so the variance signal stops encoding the global size",
		Run: runA5,
	})
}

func runA5(cfg Config) (*Result, error) {
	n := 4096
	epochs := 10
	if cfg.Scale == Full {
		epochs = 25
	}
	p, err := paramsFor(n, cfg.Scale)
	if err != nil {
		return nil, err
	}
	res := &Result{}

	// Arm 1: uniform matching (the model). Arm 2: local matching.
	table := Table{
		Title: fmt.Sprintf("uniform vs nearest-neighbor matching, N=%d, %d epochs", n, epochs),
		Cols: []string{"matching", "same-color frac at eval (well-mixed ≈ 0.56)",
			"mean splits/epoch", "mean deaths/epoch", "end size"},
	}

	// Uniform arm via the standard engine.
	pr, err := protocol.New(p)
	if err != nil {
		return nil, err
	}
	eng, err := sim.New(sim.Config{Params: p, Protocol: pr, Seed: cfg.Seed, Workers: 1})
	if err != nil {
		return nil, err
	}
	var uniFrac stats.Summary
	for ep := 0; ep < epochs; ep++ {
		eng.RunRounds(p.T - 1)
		uniFrac.Add(sameColorPairFraction(eng))
		eng.RunRounds(1)
	}
	uc := pr.Counters()
	table.AddRow("uniform (model)", fmtF(uniFrac.Mean()),
		fmtF(float64(uc.EvalSplits)/float64(epochs)),
		fmtF(float64(uc.EvalDeaths)/float64(epochs)),
		fmtI(eng.Size()))

	// Spatial arm (Workers: 1 like every suite engine; output is identical
	// for any worker count).
	geng, err := geo.New(geo.Config{Params: p, Seed: cfg.Seed, Workers: 1})
	if err != nil {
		return nil, err
	}
	var geoFrac stats.Summary
	for ep := 0; ep < epochs; ep++ {
		for r := 0; r < p.T-1; r++ {
			geng.RunRound()
		}
		geoFrac.Add(geoSameColorFraction(geng))
		geng.RunRound()
	}
	gc := geng.Protocol().Counters()
	table.AddRow("nearest-neighbor", fmtF(geoFrac.Mean()),
		fmtF(float64(gc.EvalSplits)/float64(epochs)),
		fmtF(float64(gc.EvalDeaths)/float64(epochs)),
		fmtI(geng.Size()))

	res.Tables = append(res.Tables, table)
	biased := geoFrac.Mean() > uniFrac.Mean()+0.1
	res.Verdict = verdict(biased,
		"local matching inflates the same-color meeting probability far above the well-mixed "+
			"value — the uniform-matching assumption is load-bearing, as the paper anticipates",
		"no spatial bias observed; see table")
	res.Notes = append(res.Notes,
		"with the same-color probability saturated, evaluation produces almost pure splitting; "+
			"the spatial variant needs a different (local-density) signal — the paper lists this "+
			"communication model as an open question")
	return res, nil
}

// sameColorPairFraction estimates the same-color probability of matched
// colored pairs at the evaluation round by census approximation: it derives
// Pr[same] from the realized color counts (exact enough for the comparison).
func sameColorPairFraction(eng *sim.Engine) float64 {
	c := eng.Census()
	colored := float64(c.ColorCount[0] + c.ColorCount[1])
	if colored < 2 {
		return 0.5
	}
	p0 := float64(c.ColorCount[0]) / colored
	p1 := float64(c.ColorCount[1]) / colored
	// Independent-pair approximation plus the same-cluster excess √N/colored.
	base := p0*p0 + p1*p1
	excess := float64(eng.Params().ClusterSize) / colored * (1 - base)
	return base + excess
}

// geoSameColorFraction measures the same-color fraction of actually matched
// colored pairs in the spatial engine.
func geoSameColorFraction(e *geo.Engine) float64 {
	same, diff := e.SampleColorAgreement()
	if same+diff == 0 {
		return 0.5
	}
	return float64(same) / float64(same+diff)
}

// A6 — partial synchrony: bounded clock drift.
func init() {
	register(&Experiment{
		ID:    "A6",
		Title: "Ablation: clock drift (partial synchrony)",
		Claim: "§1.2: \"the construction in this paper requires synchrony\" — each drifted agent " +
			"costs ≈2 deaths via the round-consistency check, so the tolerable per-round stall " +
			"probability is only δ* ≈ maxRestoringDrift/(2·T·N): vanishingly small, and any " +
			"measurable drift rate destabilizes the population",
		Run: runA6,
	})
}

func runA6(cfg Config) (*Result, error) {
	n := 4096
	epochs := 12
	if cfg.Scale == Full {
		epochs = 25
	}
	// γ = 1 maximizes the restoring drift, giving drift absorption its best
	// chance; the threshold is tiny even so.
	p, err := paramsFor(n, cfg.Scale, params.WithGamma(1.0))
	if err != nil {
		return nil, err
	}
	res := &Result{}
	// Drift deaths ≈ 2·δ·T·N per epoch; the protocol can absorb a few
	// agents per epoch (the restoring drift's magnitude inside the
	// admissible interval).
	deathsPerEpoch := func(delta float64) float64 {
		return 2 * delta * float64(p.T) * float64(p.N)
	}
	table := Table{
		Title: fmt.Sprintf("per-agent stall probability δ, N=%d, γ=1, %d epochs", n, epochs),
		Cols:  []string{"δ", "drift deaths/epoch ≈ 2δTN", "end size/N", "wrongRound frac", "outcome"},
	}
	type row struct {
		delta float64
		holds bool
	}
	var rows []row
	for _, delta := range []float64{0, 1e-6, 3e-5, 1e-3} {
		pr, err := protocol.New(p)
		if err != nil {
			return nil, err
		}
		stepper, err := baseline.NewDriftingClock(pr, delta)
		if err != nil {
			return nil, err
		}
		eng, err := sim.New(sim.Config{Params: p, Protocol: stepper, Seed: cfg.Seed, Workers: 1})
		if err != nil {
			return nil, err
		}
		for ep := 0; ep < epochs; ep++ {
			eng.RunEpoch()
			if eng.Size() < p.N/8 {
				break
			}
		}
		c := eng.Census()
		frac := float64(eng.Size()) / float64(p.N)
		wrong := 0.0
		if c.Total > 0 {
			wrong = float64(c.WrongRound) / float64(c.Total)
		}
		holds := frac >= 1-p.Alpha && frac <= 1+p.Alpha
		outcome := "stable"
		if !holds {
			outcome = "destabilized"
		}
		rows = append(rows, row{delta, holds})
		table.AddRow(fmt.Sprintf("%.0e", delta), fmtF(deathsPerEpoch(delta)),
			fmtF(frac), fmtF(wrong), outcome)
	}
	res.Tables = append(res.Tables, table)
	ok := rows[0].holds && rows[1].holds && !rows[len(rows)-1].holds
	res.Verdict = verdict(ok,
		"drift below δ* (≈1e-6 here) is absorbed; anything measurable destabilizes — the "+
			"synchrony requirement of §1.2 is sharp at this scale",
		"drift tolerance differs; see table")
	res.Notes = append(res.Notes,
		"each stalled agent falls permanently behind and is culled at an evaluation-boundary "+
			"mismatch together with one correct agent, hence the 2·δ·T·N deaths per epoch; "+
			"restoring this loss would need the Θ(γ√N/64)-per-epoch drift, giving the tiny δ*")
	return res, nil
}
