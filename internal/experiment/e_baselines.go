package experiment

import (
	"fmt"
	"math"

	"popstab/internal/baseline"
	"popstab/internal/protocol"
	"popstab/internal/sim"
	"popstab/internal/stats"
)

// E9 — Attempt 1 fails: the non-interactive leader election baseline is
// destroyed by leader-targeted insertion or deletion.
func init() {
	register(&Experiment{
		ID:    "E9",
		Title: "Attempt 1 (leader election) fails under attack",
		Claim: "§1.3.1: \"The adversary can either insert an agent with coin value c = 1 in each " +
			"phase, or else identify the agents with coin value 1 and selectively remove these " +
			"agents. Consequently the adversary can cause the population to grow or shrink arbitrarily.\"",
		Run: runE9,
	})
}

func runE9(cfg Config) (*Result, error) {
	n := 4096
	maxEpochs := 40
	p, err := paramsFor(n, cfg.Scale)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	table := Table{
		Title: fmt.Sprintf("Attempt 1 at N=%d: epochs until the population leaves [N/2, 2N]", n),
		Cols:  []string{"adversary", "budget/round", "outcome", "epochs", "final size"},
	}
	a1 := baseline.MustNewAttempt1(p)
	runArm := func(simCfg sim.Config) (string, int, int) {
		eng := sim.MustNew(simCfg)
		for ep := 0; ep < maxEpochs; ep++ {
			for r := 0; r < a1.EpochLen(); r++ {
				eng.RunRound()
			}
			if eng.Size() < p.N/2 {
				return "collapse", ep, eng.Size()
			}
			if eng.Size() > 2*p.N {
				return "explode", ep, eng.Size()
			}
		}
		return "stable", maxEpochs, eng.Size()
	}
	outcomes := map[string]string{}
	record := func(name string, k int, simCfg sim.Config) {
		outcome, eps, size := runArm(simCfg)
		outcomes[name] = outcome
		table.AddRow(name, fmtI(k), outcome, fmtI(eps), fmtI(size))
	}
	record("none", 0, sim.Config{Params: p, Protocol: a1, Seed: cfg.Seed, Workers: 1})
	record("suppressor (insert heard=1)", 1, sim.Config{Params: p, Protocol: baseline.MustNewAttempt1(p),
		Workers: 1,
		Seed:    cfg.Seed, K: 1, Adversary: baseline.NewAttempt1Suppressor(a1)})
	record("igniter (delete carriers)", p.MaxTolerableK(), sim.Config{Params: p, Protocol: baseline.MustNewAttempt1(p),
		Workers: 1,
		Seed:    cfg.Seed, K: p.MaxTolerableK(), Adversary: baseline.NewAttempt1Igniter(a1)})
	res.Tables = append(res.Tables, table)
	ok := outcomes["none"] == "stable" &&
		outcomes["suppressor (insert heard=1)"] == "collapse" &&
		outcomes["igniter (delete carriers)"] == "explode"
	res.Verdict = verdict(ok,
		"stable alone, collapses under insertion, explodes under leader deletion — both predicted attacks succeed",
		"attack outcomes differ from the paper's analysis; see table")
	return res, nil
}

// E10 — Attempt 2 random-walks even without an adversary, while the main
// protocol holds.
func init() {
	register(&Experiment{
		ID:    "E10",
		Title: "Attempt 2 (independent coloring) random-walks",
		Claim: "§1.3.1: \"despite a very weak bias to correct drifts ... the size of the population " +
			"under this protocol will behave very much like a random walk\" — even with no adversary",
		Run: runE10,
	})
}

func runE10(cfg Config) (*Result, error) {
	n := 4096
	epochsEq := 20 // horizon in main-protocol epochs
	trials := 3
	if cfg.Scale == Full {
		epochsEq = 40
		trials = 5
	}
	p, err := paramsFor(n, cfg.Scale)
	if err != nil {
		return nil, err
	}
	horizon := epochsEq * p.T
	res := &Result{}
	table := Table{
		Title: fmt.Sprintf("max |m−N| over %d rounds, no adversary, %d trials", horizon, trials),
		Cols:  []string{"protocol", "mean max|m−N|", "max max|m−N|", "as fraction of N"},
	}
	measure := func(mk func(seed uint64) *sim.Engine) (mean, worst float64) {
		var s stats.Summary
		for tr := 0; tr < trials; tr++ {
			eng := mk(cfg.Seed + uint64(tr)*104729)
			maxDev := 0.0
			for r := 0; r < horizon; r++ {
				eng.RunRound()
				if d := math.Abs(float64(eng.Size() - p.N)); d > maxDev {
					maxDev = d
				}
			}
			s.Add(maxDev)
		}
		return s.Mean(), s.Max()
	}
	a2Mean, a2Worst := measure(func(seed uint64) *sim.Engine {
		return sim.MustNew(sim.Config{Params: p, Protocol: baseline.MustNewAttempt2(p), Seed: seed, Workers: 1})
	})
	mainMean, mainWorst := measure(func(seed uint64) *sim.Engine {
		return sim.MustNew(sim.Config{Params: p, Protocol: protocol.MustNew(p), Seed: seed, Workers: 1})
	})
	table.AddRow("attempt2", fmtF(a2Mean), fmtF(a2Worst), fmtF(a2Worst/float64(p.N)))
	table.AddRow("main protocol", fmtF(mainMean), fmtF(mainWorst), fmtF(mainWorst/float64(p.N)))
	res.Tables = append(res.Tables, table)
	ok := a2Mean > 4*mainMean
	res.Verdict = verdict(ok,
		"Attempt 2 wanders ≫ the main protocol over the same horizon (random-walk behavior)",
		"Attempt 2 did not wander as predicted; see table")
	res.Notes = append(res.Notes,
		"Attempt 2's restoring signal is Θ(1/m) per decision vs the main protocol's Θ(√N/m): "+
			"the noise dominates and the size diffuses")
	return res, nil
}

// E15 — the high-memory baseline: counting works against deletion-only
// adversaries and collapses against fabricated-state insertion.
func init() {
	register(&Experiment{
		ID:    "E15",
		Title: "High-memory unique-ID baseline (§1.2)",
		Claim: "§1.2: with unbounded memory, identifier gossip solves the problem when the " +
			"adversary can only delete; arbitrary-state insertion defeats it (fabricated ID sets)",
		Run: runE15,
	})
}

func runE15(cfg Config) (*Result, error) {
	n := 512
	epochs := 8
	if cfg.Scale == Full {
		n = 1024
		epochs = 12
	}
	res := &Result{}
	table := Table{
		Title: fmt.Sprintf("high-memory protocol at N=%d over %d gossip intervals", n, epochs),
		Cols:  []string{"adversary", "final size", "in [(1−α)N,(1+α)N]", "peak bits/agent"},
	}
	alpha := 0.5
	lo, hi := int(float64(n)*(1-alpha)), int(float64(n)*(1+alpha))
	inBand := func(v int) string {
		if v >= lo && v <= hi {
			return "yes"
		}
		return "no"
	}

	// Arm 1: deletion-only adversary at 2% per interval plus one acute 40% trauma.
	h1, err := baseline.NewHighMemory(baseline.HighMemConfig{N: n, Gamma: 0.5, Alpha: alpha, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	peakBits := 0.0
	h1.DeleteRandom(n * 2 / 5)
	for ep := 0; ep < epochs; ep++ {
		h1.DeleteRandom(n / 50)
		h1.RunEpoch()
		if b := h1.MemoryBitsPerAgent(); b > peakBits {
			peakBits = b
		}
	}
	table.AddRow("deletion-only (40% trauma + 2%/interval)", fmtI(h1.Size()), inBand(h1.Size()), fmtF(peakBits))
	deletionOK := h1.Size() >= lo && h1.Size() <= hi

	// Arm 2: fabricated-state insertion, 2 agents per interval carrying 2N fake IDs.
	h2, err := baseline.NewHighMemory(baseline.HighMemConfig{N: n, Gamma: 0.5, Alpha: alpha, Seed: cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	peakBits = 0
	for ep := 0; ep < epochs; ep++ {
		h2.InsertFabricated(2, 2*n)
		h2.RunEpoch()
		if b := h2.MemoryBitsPerAgent(); b > peakBits {
			peakBits = b
		}
	}
	table.AddRow("insertion (2 poisoned/interval)", fmtI(h2.Size()), inBand(h2.Size()), fmtF(peakBits))
	poisonOK := h2.Size() < lo

	res.Tables = append(res.Tables, table)
	res.Verdict = verdict(deletionOK && poisonOK,
		"deletion-only arm holds the band; fabricated-ID insertion collapses it — as §1.2 argues",
		"high-memory baseline behavior differs; see table")
	res.Notes = append(res.Notes,
		fmt.Sprintf("peak memory ≈ %.0f bits/agent at N=%d versus the main protocol's Θ(log log N) ≈ 5 bits of coin-counter state", peakBits, n),
		"64-bit identifiers stand in for the paper's N-bit random IDs (collision-free at simulated scales)")
	return res, nil
}
