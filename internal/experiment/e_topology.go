package experiment

import (
	"fmt"
	"math"

	"popstab/internal/adversary"
	"popstab/internal/match"
	"popstab/internal/protocol"
	"popstab/internal/rogue"
	"popstab/internal/sim"
)

// A8 — the topology gallery sweep enabled by the sharded spatial pipeline:
// adversary budget × communication locality, and malicious-program
// containment threshold R* × locality. Locality is swept through five
// matchers of decreasing mixing — well-mixed, small-world at rewiring
// β = 0.5 and β = 0.1, bounded grid, 2-torus, and 1-D ring — and the two
// halves of the experiment show the same knob moving two responses in
// opposite directions, non-monotonically:
//
//   - the honest size signal survives only where matching is
//     well-mixed-like (mixed, β = 0.5) or one-dimensional (ring, whose
//     neighborhoods mix slowly but evenly); 2-D locality and weak rewiring
//     floor the variance signal and the population escapes even at budget
//     0 (A5/A7);
//   - the containment threshold R* moves the other way: 2-D locality
//     raises the contact rate toward 1 and contains R = 2 < R* ≈ 2.41,
//     strong rewiring contains even R = 1 (long-range contacts reach patch
//     interiors), but 1-D locality destroys containment at every tested R
//     — a rogue arc's interior is unreachable (patch shielding is
//     strongest where the boundary-to-volume ratio is lowest).
func init() {
	register(&Experiment{
		ID:    "A8",
		Title: "Topology gallery: adversary budget × locality, and the containment threshold R*",
		Claim: "locality degree is a control knob with opposed effects: stepping mixed → " +
			"small-world → grid/torus → ring trades the honest size signal (intact only on " +
			"well-mixed-like and 1-D topologies at tolerated budgets) against malicious-program " +
			"containment (R* drops below 2 under 2-D locality, reaches R=1 under strong rewiring, " +
			"and diverges on the ring, where patch shielding defeats every tested R)",
		Run: runA8,
	})
}

// a8Topology is one gallery entry: a label and a Matcher constructor (nil
// matcher = well-mixed γ-scheduling).
type a8Topology struct {
	name string
	mk   func() (match.Matcher, error)
}

// a8Gallery builds the locality ladder for population size n, in
// decreasing order of mixing. Spreads follow the popstab conventions:
// 1/√N on 2-D topologies, 1/N on 1-D ones.
func a8Gallery(n int) []a8Topology {
	s2 := 1 / math.Sqrt(float64(n))
	s1 := 1 / float64(n)
	return []a8Topology{
		{"mixed", nil},
		{"smallworld(0.5)", func() (match.Matcher, error) { return match.NewSmallWorld(s1, 0.5) }},
		{"smallworld(0.1)", func() (match.Matcher, error) { return match.NewSmallWorld(s1, 0.1) }},
		{"grid", func() (match.Matcher, error) { return match.NewGrid(s2) }},
		{"torus", func() (match.Matcher, error) { return match.NewTorus(s2) }},
		{"ring", func() (match.Matcher, error) { return match.NewRing(s1) }},
	}
}

func runA8(cfg Config) (*Result, error) {
	n := 4096
	// The sweep assertions are calibrated at this horizon; Full deepens
	// the rogue horizon below but keeps the epoch count (the qualitative
	// escape/hold split is established well before epoch 15).
	epochs := 15
	p, err := paramsFor(n, cfg.Scale)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	gallery := a8Gallery(p.N)
	lo := int(math.Ceil(float64(p.N) * (1 - p.Alpha)))
	hi := int(float64(p.N) * (1 + p.Alpha))
	base := p.MaxTolerableK()
	budgets := []int{0, base, 16 * base}

	// Table 1: greedy adversary budget sweep across the locality ladder.
	// Same seed per cell: the engine's stream separation makes the arms a
	// paired comparison.
	t1 := Table{
		Title: fmt.Sprintf("greedy adversary budget sweep across topologies, N=%d, %d epochs (early exit at 4N)", n, epochs),
		Cols:  []string{"topology", "budget", "first violation (epoch)", "end size", "maxDev"},
	}
	viol := map[string]map[int]int{} // topology -> budget -> first violation epoch (-1 none)
	for _, topo := range gallery {
		viol[topo.name] = map[int]int{}
		for _, b := range budgets {
			pr, err := protocol.New(p)
			if err != nil {
				return nil, err
			}
			simCfg := sim.Config{Params: p, Protocol: pr, Seed: cfg.Seed, Workers: 1}
			if b > 0 {
				simCfg.K = 1
				simCfg.Adversary = adversary.NewPaced(adversary.PerEpoch(p.T, b, 1),
					adversary.NewGreedy())
			}
			if topo.mk != nil {
				m, err := topo.mk()
				if err != nil {
					return nil, err
				}
				simCfg.Matcher = m
			}
			eng, err := sim.New(simCfg)
			if err != nil {
				return nil, err
			}
			firstViol := -1
			maxDev := 0.0
			for ep := 0; ep < epochs && eng.Size() < 4*p.N; ep++ {
				rep := eng.RunEpoch()
				if firstViol < 0 && (rep.MinSize < lo || rep.MaxSize > hi) {
					firstViol = ep
				}
				for _, v := range []int{rep.MinSize, rep.MaxSize} {
					if d := absF(float64(v-p.N)) / float64(p.N); d > maxDev {
						maxDev = d
					}
				}
			}
			viol[topo.name][b] = firstViol
			cell := "none"
			if firstViol >= 0 {
				cell = fmtI(firstViol)
			}
			t1.AddRow(topo.name, budgetLabel(b), cell, fmtI(eng.Size()), fmtF(maxDev))
		}
	}
	res.Tables = append(res.Tables, t1)

	// The sweep verdict asserts only the cross-seed-robust rows: the
	// well-mixed-like and 1-D topologies hold at and below the tolerated
	// budget, 2-D locality (torus) and weak rewiring escape at every
	// budget, grid escapes once budgeted, and everything escapes at
	// 16×base. (Grid at budget 0 straddles the 15-epoch horizon and is
	// reported, not asserted.)
	sweepOK := true
	for _, name := range []string{"mixed", "smallworld(0.5)", "ring"} {
		sweepOK = sweepOK && viol[name][0] < 0 && viol[name][base] < 0
	}
	for _, name := range []string{"torus", "smallworld(0.1)"} {
		for _, b := range budgets {
			sweepOK = sweepOK && viol[name][b] >= 0
		}
	}
	sweepOK = sweepOK && viol["grid"][base] >= 0
	for _, topo := range gallery {
		sweepOK = sweepOK && viol[topo.name][16*base] >= 0
	}

	// Table 2: malicious-program containment threshold across the ladder.
	// A rogue cohort of 64 with per-contact detection 1 either dies out or
	// takes over within the horizon; R* is the replication period at which
	// the outcome flips.
	horizon := 2 * p.T
	if cfg.Scale == Full {
		horizon = 4 * p.T
	}
	t2 := Table{
		Title: fmt.Sprintf("rogue cohort of 64 vs replication period R across topologies (detect=1, ≤%d rounds; well-mixed R* ≈ 2.41)", horizon),
		Cols:  []string{"R", "topology", "rogues left", "honest size", "rogue kills", "outcome"},
	}
	contained := map[string]map[int]bool{}
	for _, topo := range gallery {
		contained[topo.name] = map[int]bool{}
	}
	for _, r := range []int{1, 2, 3, 6} {
		for _, topo := range gallery {
			rcfg := rogue.Config{
				Params: p, ReplicateEvery: r, DetectProb: 1,
				InitialRogues: 64, Seed: cfg.Seed, Workers: 1,
			}
			if topo.mk != nil {
				m, err := topo.mk()
				if err != nil {
					return nil, err
				}
				rcfg.Matcher = m
			}
			eng, err := rogue.New(rcfg)
			if err != nil {
				return nil, err
			}
			for i := 0; i < horizon && eng.Size() < 4*p.N; i++ {
				eng.RunRound()
			}
			honest, rogues := eng.Counts()
			outcome := "contained"
			if rogues >= 64 {
				outcome = "takeover"
			}
			contained[topo.name][r] = outcome == "contained"
			t2.AddRow(fmtI(r), topo.name, fmtI(rogues), fmtI(honest),
				fmtI(int(eng.Stats().RogueKills)), outcome)
		}
	}
	res.Tables = append(res.Tables, t2)

	// Containment verdict, robust rows only: the threshold map
	//   smallworld(0.5): R* < 1   (contains everything, even R = 1)
	//   torus, grid:     R* ∈ (1, 2]  (contain R ≥ 2; R = 1 is metastable)
	//   mixed:           R* ≈ 2.41    (takeover at 2, contained at 3, 6)
	//   smallworld(0.1): near mixed   (takeover at 1-2; R = 3 straddles)
	//   ring:            no R* at any tested R (patch shielding)
	rogueOK := true
	for _, r := range []int{1, 2, 3, 6} {
		rogueOK = rogueOK && contained["smallworld(0.5)"][r]
		rogueOK = rogueOK && !contained["ring"][r]
	}
	for _, r := range []int{2, 3, 6} {
		rogueOK = rogueOK && contained["torus"][r] && contained["grid"][r]
	}
	rogueOK = rogueOK && !contained["mixed"][1] && !contained["mixed"][2] &&
		contained["mixed"][3] && contained["mixed"][6]
	rogueOK = rogueOK && !contained["smallworld(0.1)"][1] && !contained["smallworld(0.1)"][2] &&
		contained["smallworld(0.1)"][6]

	res.Verdict = verdict(sweepOK && rogueOK,
		"locality degree shifts both responses as claimed: the size signal survives on mixed, "+
			"smallworld(0.5), and ring at tolerated budgets while torus and smallworld(0.1) escape "+
			"even at budget 0; R* falls to ≤2 under 2-D locality, to ≤1 under β=0.5 rewiring, and "+
			"diverges on the ring",
		"locality map differs from the calibrated gallery; see tables")
	res.Notes = append(res.Notes,
		"the two effects share one mechanism pulling in opposite directions: locality raises the "+
			"per-round contact rate toward 1 (culling rogues faster) while correlating contacts "+
			"spatially (flooring the same-color size signal that keeps the honest population in band)",
		"the ring rows expose patch shielding at its 1-D extreme: rogue-rogue matches trigger no "+
			"detection and a rogue arc has an O(1) boundary, so interior replication outruns boundary "+
			"culling at every tested R — containment needs either dimension (larger patch boundary) or "+
			"long-range links (smallworld rewiring reaches arc interiors, containing even R=1)",
		"grid at budget 0 and torus/grid at R=1 straddle the horizon across seeds (metastable patch "+
			"dynamics, as in A7) and are reported but not asserted; smallworld(0.1) at R=3 likewise "+
			"sits on the well-mixed threshold R* ≈ 2.41",
		"all topologies run as match.Matcher instances on the unified engine over the sharded "+
			"spatial pipeline, so every cell inherits Workers sharding and full adversary support")
	return res, nil
}
