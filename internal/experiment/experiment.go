// Package experiment defines and runs the reproduction suite: one
// experiment per quantitative claim of the paper (E1–E17) plus design
// ablations and open-question probes (A1–A8), as indexed in DESIGN.md §4
// and reported in EXPERIMENTS.md.
//
// The paper is a theory result with no empirical tables or figures, so each
// "table/figure" here is a measurable statement extracted from a theorem,
// lemma, or discussion section. Every experiment runs at two scales: Quick
// (seconds; used by tests and the bench suite) and Full (minutes; used by
// cmd/popbench to regenerate EXPERIMENTS.md).
package experiment

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"popstab/internal/prng"
)

// Scale selects the cost/fidelity tradeoff of a run.
type Scale int

// Scales. Quick targets CI budgets; Full regenerates EXPERIMENTS.md.
const (
	// Quick runs in seconds at small N with few trials.
	Quick Scale = iota + 1
	// Full runs in minutes with larger N grids and more trials.
	Full
)

// String names the scale.
func (s Scale) String() string {
	switch s {
	case Quick:
		return "quick"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("scale(%d)", int(s))
	}
}

// Config parameterizes a suite run.
type Config struct {
	// Scale selects Quick or Full.
	Scale Scale
	// Seed derives all experiment randomness.
	Seed uint64
	// Workers bounds trial-level parallelism (≤ 0 means 1).
	Workers int
}

// Experiment is one reproducible claim.
type Experiment struct {
	// ID is the experiment identifier (E1…E17, A1…A7).
	ID string
	// Title is a short human name.
	Title string
	// Claim quotes or paraphrases the paper's statement.
	Claim string
	// Run executes the experiment and reports the result.
	Run func(cfg Config) (*Result, error)
}

// Execute runs the experiment and stamps the descriptor fields onto the
// result. Callers should prefer Execute over invoking Run directly.
func (e *Experiment) Execute(cfg Config) (*Result, error) {
	res, err := e.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	res.ID, res.Title, res.Claim = e.ID, e.Title, e.Claim
	return res, nil
}

// Result is the outcome of one experiment.
type Result struct {
	// ID, Title and Claim echo the experiment.
	ID, Title, Claim string
	// Verdict summarizes the comparison with the paper in one line, e.g.
	// "REPRODUCED: drift sign and magnitude scale as predicted".
	Verdict string
	// Tables hold the regenerated rows.
	Tables []Table
	// Notes carry caveats (finite-size effects, substitutions).
	Notes []string
}

// Table is one rendered block of rows.
type Table struct {
	// Title names the table.
	Title string
	// Cols are the column headers.
	Cols []string
	// Rows are the data cells (each row len(Cols) long).
	Rows [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render draws the table with aligned ASCII columns.
func (t *Table) Render(w *strings.Builder) {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				w.WriteString("  ")
			}
			w.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				w.WriteString(strings.Repeat(" ", pad))
			}
		}
		w.WriteByte('\n')
	}
	if t.Title != "" {
		fmt.Fprintf(w, "-- %s --\n", t.Title)
	}
	line(t.Cols)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	w.WriteString(strings.Repeat("-", total))
	w.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
}

// Render formats the full result for terminal output.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	fmt.Fprintf(&b, "claim:   %s\n", r.Claim)
	fmt.Fprintf(&b, "verdict: %s\n", r.Verdict)
	for i := range r.Tables {
		b.WriteByte('\n')
		r.Tables[i].Render(&b)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// registry holds all experiments keyed by ID.
var registry = map[string]*Experiment{}

// register adds an experiment at package init time; duplicate IDs panic
// (programmer error caught by any test run).
func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiment: duplicate ID " + e.ID)
	}
	registry[e.ID] = e
}

// Lookup finds an experiment by ID.
func Lookup(id string) (*Experiment, bool) {
	e, ok := registry[strings.ToUpper(id)]
	return e, ok
}

// All returns the experiments sorted by ID (E-series first, then A-series).
func All() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return idLess(out[i].ID, out[j].ID) })
	return out
}

// idLess orders E1 < E2 < … < E16 < A1 < … (letter class first, then the
// numeric suffix).
func idLess(a, b string) bool {
	classRank := func(id string) int {
		if strings.HasPrefix(id, "E") {
			return 0
		}
		return 1
	}
	num := func(id string) int {
		n := 0
		for _, r := range id[1:] {
			if r < '0' || r > '9' {
				break
			}
			n = n*10 + int(r-'0')
		}
		return n
	}
	if ca, cb := classRank(a), classRank(b); ca != cb {
		return ca < cb
	}
	if na, nb := num(a), num(b); na != nb {
		return na < nb
	}
	return a < b
}

// RunTrials executes fn for trials independent trials in parallel, giving
// each a deterministic PRNG stream derived from seed, and returns the
// results in trial order.
func RunTrials(trials, workers int, seed uint64, fn func(trial int, src *prng.Source) float64) []float64 {
	if workers <= 0 {
		workers = 1
	}
	if workers > trials {
		workers = trials
	}
	out := make([]float64, trials)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i, prng.New(seed+uint64(i)*0x9e3779b97f4a7c15+1))
			}
		}()
	}
	for i := 0; i < trials; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// fmtF renders a float compactly for table cells.
func fmtF(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// fmtI renders an int for table cells.
func fmtI(v int) string { return fmt.Sprintf("%d", v) }
