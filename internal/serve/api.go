package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"strconv"
	"time"
)

// The v1 error contract. Every non-2xx response from a popserve — worker or
// coordinator — carries exactly one body shape:
//
//	{"error": {"code": "...", "message": "...", "retry_after_ms": 1000}}
//
// Code is a stable machine-readable identifier (the strings below are API,
// not prose); Message is human diagnostic text; RetryAfterMS appears only on
// retryable rejections (throttling) and mirrors the Retry-After header.
// Clients branch on Code and the HTTP status, never on Message.
//
// The error→status mapping lives in one place (statusOf); handlers hand any
// error to WriteError and the envelope falls out. Package cluster reuses the
// same helpers so the coordinator and its workers are indistinguishable to a
// client.

// Error codes of the v1 surface.
const (
	// CodeBadRequest: malformed request (unparseable body, bad query
	// parameter, zero-round step). HTTP 400.
	CodeBadRequest = "bad_request"
	// CodeInvalidSpec: the submitted spec cannot describe a simulation
	// (unknown registry name, inadmissible N, conflicting axes). HTTP 422.
	CodeInvalidSpec = "invalid_spec"
	// CodeUnknownSession: no session with that ID was ever seen. HTTP 404.
	CodeUnknownSession = "unknown_session"
	// CodeSessionExpired: the session existed but was reaped after its TTL
	// — a valid ID that is durably gone, not a typo. HTTP 410.
	CodeSessionExpired = "session_expired"
	// CodeSessionFailed: the session is terminal-failed; the message carries
	// the failure. HTTP 409.
	CodeSessionFailed = "session_failed"
	// CodeHibernated: a stale handle raced hibernation; re-resolve the ID.
	// HTTP 409.
	CodeHibernated = "hibernated"
	// CodeConflict: the operation is invalid in the session's current state.
	// HTTP 409.
	CodeConflict = "conflict"
	// CodeThrottled: admission-gate rejection; retry_after_ms hints the
	// backoff. HTTP 429.
	CodeThrottled = "throttled"
	// CodeDraining: the server is shutting down; no new work. HTTP 503.
	CodeDraining = "draining"
	// CodeCapacity: the session registry is full and nothing could be
	// hibernated. HTTP 503.
	CodeCapacity = "capacity"
	// CodeUnknownResult: no result is stored under that spec hash. HTTP 404.
	CodeUnknownResult = "unknown_result"
	// CodeUnknownTrace: no spans are recorded under that trace ID (never
	// seen, or evicted from the bounded span store). HTTP 404.
	CodeUnknownTrace = "unknown_trace"
	// CodeResultPending: the hash is known but its run has not completed.
	// HTTP 409.
	CodeResultPending = "result_pending"
	// CodeTimeout: the operation's deadline expired server-side. HTTP 504.
	CodeTimeout = "timeout"
	// CodeUnsupported: the transport cannot satisfy the request (e.g. SSE
	// over a connection that cannot stream). HTTP 501.
	CodeUnsupported = "unsupported"
	// CodeNoWorkers: a coordinator has no live worker to route to. HTTP 503.
	CodeNoWorkers = "no_workers"
	// CodeWorkerUnreachable: the owning worker did not answer the proxied
	// call. HTTP 502.
	CodeWorkerUnreachable = "worker_unreachable"
	// CodeUnknownWorker: no registered worker under that ID. HTTP 404.
	CodeUnknownWorker = "unknown_worker"
	// CodeInternal: unclassified server error. HTTP 500.
	CodeInternal = "internal"
)

// ErrorInfo is the payload inside the envelope.
type ErrorInfo struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// ErrorBody is the uniform non-2xx response body.
type ErrorBody struct {
	Error ErrorInfo `json:"error"`
}

// APIError carries an explicit status/code pair for errors born at the
// transport layer (bad bodies, proxy failures) that have no manager sentinel
// to map from. It wraps an underlying error for errors.Is/As chains.
type APIError struct {
	Status     int
	Code       string
	Err        error
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string { return e.Err.Error() }

// Unwrap exposes the cause.
func (e *APIError) Unwrap() error { return e.Err }

// statusOf is THE typed error→status mapping of the v1 surface: every
// handler error funnels through here exactly once.
func statusOf(err error) (status int, code string, retryAfter time.Duration) {
	var apiErr *APIError
	var throttled *ThrottledError
	switch {
	case errors.As(err, &apiErr):
		return apiErr.Status, apiErr.Code, apiErr.RetryAfter
	case errors.As(err, &throttled):
		return http.StatusTooManyRequests, CodeThrottled, throttled.RetryAfter
	case errors.Is(err, ErrUnknownSession):
		return http.StatusNotFound, CodeUnknownSession, 0
	case errors.Is(err, ErrSessionExpired):
		return http.StatusGone, CodeSessionExpired, 0
	case errors.Is(err, ErrSessionFailed):
		return http.StatusConflict, CodeSessionFailed, 0
	case errors.Is(err, ErrHibernated):
		return http.StatusConflict, CodeHibernated, 0
	case errors.Is(err, ErrInvalidSpec):
		return http.StatusUnprocessableEntity, CodeInvalidSpec, 0
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, CodeDraining, 0
	case errors.Is(err, errFull):
		return http.StatusServiceUnavailable, CodeCapacity, 0
	case errors.Is(err, ErrNoResult):
		return http.StatusNotFound, CodeUnknownResult, 0
	case errors.Is(err, ErrResultPending):
		return http.StatusConflict, CodeResultPending, 0
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, CodeTimeout, 0
	default:
		return http.StatusInternalServerError, CodeInternal, 0
	}
}

// ErrorCode maps err through the same table WriteError uses and returns the
// envelope code a client would see — for callers (and tests) that branch on
// the contract without an HTTP round trip.
func ErrorCode(err error) string {
	if err == nil {
		return ""
	}
	_, code, _ := statusOf(err)
	return code
}

// WriteError maps err through the typed table and writes the envelope.
// Throttled rejections also carry the conventional Retry-After header
// (seconds, rounded up) alongside the precise retry_after_ms.
func WriteError(w http.ResponseWriter, err error) {
	status, code, retry := statusOf(err)
	info := ErrorInfo{Code: code, Message: err.Error()}
	if retry > 0 {
		info.RetryAfterMS = int64(retry / time.Millisecond)
		secs := int(math.Ceil(retry.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	WriteJSON(w, status, ErrorBody{Error: info})
}

// WriteJSON writes a JSON response.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// BadRequest wraps err as a 400 bad_request APIError.
func BadRequest(err error) *APIError {
	return &APIError{Status: http.StatusBadRequest, Code: CodeBadRequest, Err: err}
}
