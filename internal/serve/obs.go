package serve

import (
	"time"

	"popstab"
	"popstab/internal/obs"
)

// obsPlane bundles the manager's registry-backed instruments (DESIGN.md
// §13). It is embedded in Manager so the counter fields keep their historic
// names at every call site; the counters ARE the registry's storage — the
// JSON Metrics endpoint and the Prometheus exposition read the same atomics,
// so the two views can never drift.
type obsPlane struct {
	registry *obs.Registry
	tracer   *obs.Tracer

	submissions, simRuns, dedupeHits *obs.Counter
	completed, failed, panics        *obs.Counter
	throttled                        *obs.Counter
	checkpoints, ckptErrors          *obs.Counter
	recovered, hibernations          *obs.Counter
	revivals, reaps                  *obs.Counter

	// Latency histograms: submission admission, one step quantum, one
	// session snapshot, and the per-round cost of each engine phase
	// (quantum deltas of popstab.RoundStats divided by the quantum's
	// rounds).
	submitSeconds   *obs.Histogram
	stepSeconds     *obs.Histogram
	snapshotSeconds *obs.Histogram
	phaseSeconds    map[string]*obs.Histogram
}

// phaseBuckets resolve the round-phase histograms: phases run from
// sub-microsecond (a small population's kill fold) to tens of milliseconds
// (a 2²⁰ spatial match), well below DefBuckets' latency range.
var phaseBuckets = []float64{
	1e-6, 5e-6, 25e-6, 1e-4, 5e-4, 2.5e-3, 1e-2, 5e-2, 0.25, 1,
}

// newObsPlane registers the manager's instruments on reg.
func newObsPlane(reg *obs.Registry, tracer *obs.Tracer) obsPlane {
	p := obsPlane{
		registry:    reg,
		tracer:      tracer,
		submissions: reg.Counter("popserve_submissions_total", "Submit and Restore calls accepted."),
		simRuns:     reg.Counter("popserve_sim_runs_total", "Jobs whose engine was actually built and run."),
		dedupeHits:  reg.Counter("popserve_dedupe_hits_total", "Submissions answered by an existing job."),
		completed:   reg.Counter("popserve_completed_total", "Jobs that reached done."),
		failed:      reg.Counter("popserve_failed_total", "Jobs that reached failed."),
		panics:      reg.Counter("popserve_panics_total", "Recovered runner and build panics."),
		throttled:   reg.Counter("popserve_throttled_total", "Submissions rejected by the admission gate."),
		checkpoints: reg.Counter("popserve_checkpoints_total", "Durable checkpoints written."),
		ckptErrors:  reg.Counter("popserve_checkpoint_errors_total", "Checkpoint writes that failed."),
		recovered:   reg.Counter("popserve_recovered_total", "Jobs re-registered from the store at startup."),
		hibernations: reg.Counter("popserve_hibernated_total",
			"Idle sessions spilled to the store under residency pressure."),
		revivals: reg.Counter("popserve_revived_total", "Hibernated sessions transparently restored on access."),
		reaps:    reg.Counter("popserve_reaped_total", "Terminal sessions removed after SessionTTL."),
		submitSeconds: reg.Histogram("popserve_submit_seconds",
			"Submission admission latency (registration, not the run).", obs.DefBuckets),
		stepSeconds: reg.Histogram("popserve_step_quantum_seconds",
			"Wall time of one step quantum.", obs.DefBuckets),
		snapshotSeconds: reg.Histogram("popserve_snapshot_seconds",
			"Session snapshot serialization time.", obs.DefBuckets),
		phaseSeconds: make(map[string]*obs.Histogram),
	}
	for _, ph := range (popstab.RoundStats{}).Phases() {
		p.phaseSeconds[ph.Name] = reg.Histogram("popserve_round_phase_seconds",
			"Per-round engine phase cost, averaged over each step quantum.",
			phaseBuckets, "phase", ph.Name)
	}
	return p
}

// registerGauges exposes the manager's live state as gauge functions —
// evaluated at scrape time, so they need no write path at all.
func (m *Manager) registerGauges() {
	reg := m.registry
	reg.GaugeFunc("popserve_sessions", "Resident sessions in the registry.", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(len(m.jobs))
	})
	reg.GaugeFunc("popserve_hibernated_sessions", "Sessions currently spilled to the store.", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(len(m.hibernated))
	})
	reg.GaugeFunc("popserve_active_runners", "Jobs holding or awaiting a pool slot.", func() float64 {
		return float64(m.active.Load())
	})
	reg.GaugeFunc("popserve_slots_in_use", "Step-pool slots currently held.", func() float64 {
		return float64(len(m.slots))
	})
	reg.GaugeFunc("popserve_slots", "Step-pool capacity (Config.MaxConcurrent).", func() float64 {
		return float64(m.cfg.MaxConcurrent)
	})
}

// Registry exposes the manager's metrics registry (for the transport's
// Prometheus endpoint and for embedding processes that add their own
// metrics).
func (m *Manager) Registry() *obs.Registry { return m.registry }

// Tracer exposes the manager's span store (nil-safe to use directly).
func (m *Manager) Tracer() *obs.Tracer { return m.tracer }

// observePhases folds one quantum's RoundStats delta into the per-phase
// histograms as per-round averages. Called by the runner outside j.mu.
func (p *obsPlane) observePhases(delta popstab.RoundStats) {
	if delta.Rounds == 0 {
		return
	}
	rounds := float64(delta.Rounds)
	for _, ph := range delta.Phases() {
		if ph.NS == 0 {
			continue
		}
		p.phaseSeconds[ph.Name].Observe(float64(ph.NS) / rounds / 1e9)
	}
}

// observeSnapshot times fn (a session snapshot capture) into the snapshot
// histogram.
func (p *obsPlane) observeSnapshot(fn func() []byte) []byte {
	t := time.Now()
	blob := fn()
	p.snapshotSeconds.Observe(time.Since(t).Seconds())
	return blob
}
