package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"popstab"
	"popstab/internal/fault"
	"popstab/internal/wire"
)

// Checkpoint is the durable record of one job: enough to re-register it in
// a fresh manager and continue the run bit-identically. The Snapshot field
// is the session-layer snapshot (popstab.Session.Snapshot), itself a framed
// wire document; the checkpoint wraps it with the job's serving-layer
// state (identity, progress, scheduling flags).
type Checkpoint struct {
	// ID is the job's registry ID; recovery re-registers under it so
	// clients resolve the same session across a restart.
	ID string
	// Spec rebuilds the engine the snapshot restores into.
	Spec popstab.Spec
	// Target and Pending are the job's round accounting: total requested
	// and not yet run. Recovery resumes exactly the outstanding work.
	Target  uint64
	Pending uint64
	// Paused preserves a parked job's parking across restarts.
	Paused bool
	// Dedupe records that the job answered for its (hash, rounds) identity
	// in the dedupe cache at checkpoint time, so recovery can rejoin it.
	Dedupe bool
	// Snapshot is the session snapshot bytes.
	Snapshot []byte
}

// CheckpointStore persists checkpoints. Implementations must be safe for
// concurrent use; Put must be atomic (a reader never observes a torn
// checkpoint, and a failed write leaves the previous checkpoint intact).
type CheckpointStore interface {
	// Put durably replaces the checkpoint for cp.ID.
	Put(cp Checkpoint) error
	// Get fetches one checkpoint; ok reports existence.
	Get(id string) (cp Checkpoint, ok bool, err error)
	// List returns every stored checkpoint, ordered by ID. Entries that
	// fail integrity checks are skipped, not returned as errors: recovery
	// proceeds with whatever survived.
	List() ([]Checkpoint, error)
	// Delete removes a checkpoint (no-op when absent).
	Delete(id string) error
}

// ckptTag frames the checkpoint's serving-layer section in the wire
// document; the session snapshot is nested inside it as a byte string.
const ckptTag uint32 = 110

// encodeCheckpoint serializes cp through the wire codec, inheriting its
// framing guarantees: magic + version, length-checked sections, trailing
// CRC-32C. A torn or corrupted file fails wire.NewDec's checksum and is
// skipped by List.
func encodeCheckpoint(cp Checkpoint) ([]byte, error) {
	specBlob, err := json.Marshal(cp.Spec)
	if err != nil {
		return nil, fmt.Errorf("serve: encode checkpoint spec: %w", err)
	}
	enc := wire.NewEnc()
	enc.Begin(ckptTag)
	enc.String(cp.ID)
	enc.Bytes(specBlob)
	enc.U64(cp.Target)
	enc.U64(cp.Pending)
	enc.Bool(cp.Paused)
	enc.Bool(cp.Dedupe)
	enc.Bytes(cp.Snapshot)
	enc.End()
	return enc.Finish(), nil
}

// decodeCheckpoint reverses encodeCheckpoint.
func decodeCheckpoint(data []byte) (Checkpoint, error) {
	d, err := wire.NewDec(data)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("serve: %w", err)
	}
	var cp Checkpoint
	d.Begin(ckptTag)
	cp.ID = d.String()
	specBlob := d.Bytes()
	cp.Target = d.U64()
	cp.Pending = d.U64()
	cp.Paused = d.Bool()
	cp.Dedupe = d.Bool()
	cp.Snapshot = d.Bytes()
	d.End()
	if err := d.Err(); err != nil {
		return Checkpoint{}, fmt.Errorf("serve: %w", err)
	}
	if err := json.Unmarshal(specBlob, &cp.Spec); err != nil {
		return Checkpoint{}, fmt.Errorf("serve: decode checkpoint spec: %w", err)
	}
	return cp, nil
}

// MemStore is the in-memory CheckpointStore: process-lifetime durability
// only, but the full store contract — tests and single-process hibernation
// use it so eviction does not require a disk.
type MemStore struct {
	mu  sync.Mutex
	cps map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{cps: make(map[string][]byte)}
}

// Put stores an encoded copy of cp.
func (s *MemStore) Put(cp Checkpoint) error {
	blob, err := encodeCheckpoint(cp)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.cps[cp.ID] = blob
	s.mu.Unlock()
	return nil
}

// Get fetches one checkpoint.
func (s *MemStore) Get(id string) (Checkpoint, bool, error) {
	s.mu.Lock()
	blob, ok := s.cps[id]
	s.mu.Unlock()
	if !ok {
		return Checkpoint{}, false, nil
	}
	cp, err := decodeCheckpoint(blob)
	if err != nil {
		return Checkpoint{}, false, err
	}
	return cp, true, nil
}

// List returns every checkpoint ordered by ID.
func (s *MemStore) List() ([]Checkpoint, error) {
	s.mu.Lock()
	blobs := make([][]byte, 0, len(s.cps))
	for _, b := range s.cps {
		blobs = append(blobs, b)
	}
	s.mu.Unlock()
	out := make([]Checkpoint, 0, len(blobs))
	for _, b := range blobs {
		cp, err := decodeCheckpoint(b)
		if err != nil {
			continue // mirror FSStore: skip what fails integrity
		}
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Delete removes a checkpoint.
func (s *MemStore) Delete(id string) error {
	s.mu.Lock()
	delete(s.cps, id)
	s.mu.Unlock()
	return nil
}

// FSStore is the filesystem CheckpointStore: one "<id>.ckpt" file per job
// in a flat directory. Writes go through a temp file in the same directory
// followed by an atomic rename, so a crash at any instant leaves either the
// previous checkpoint or the new one — never a torn file — and the wire
// framing's CRC catches anything the filesystem still manages to corrupt
// (such files are skipped by List, surfacing as a missing, not poisoned,
// checkpoint).
type FSStore struct {
	dir string
	// Faults is the injection seam; CheckpointWrite fires after the temp
	// file is written but before the rename, modeling a crash mid-write.
	Faults *fault.Set
}

// NewFSStore opens (creating if needed) a checkpoint directory.
func NewFSStore(dir string) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	return &FSStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *FSStore) Dir() string { return s.dir }

const ckptExt = ".ckpt"

// path maps an ID to its checkpoint file. IDs are manager-generated
// ("s-%06d"), so no escaping is needed; reject separators defensively.
func (s *FSStore) path(id string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\") || strings.HasPrefix(id, ".") {
		return "", fmt.Errorf("serve: bad checkpoint id %q", id)
	}
	return filepath.Join(s.dir, id+ckptExt), nil
}

// Put writes cp atomically: temp file, fsync, rename.
func (s *FSStore) Put(cp Checkpoint) error {
	dst, err := s.path(cp.ID)
	if err != nil {
		return err
	}
	blob, err := encodeCheckpoint(cp)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("serve: checkpoint temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: checkpoint write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: checkpoint sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: checkpoint close: %w", err)
	}
	// The injected crash point: the bytes are on disk under the temp name,
	// the previous checkpoint still under the real one.
	if err := s.Faults.Fire(fault.CheckpointWrite); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("serve: checkpoint rename: %w", err)
	}
	return nil
}

// Get fetches one checkpoint.
func (s *FSStore) Get(id string) (Checkpoint, bool, error) {
	p, err := s.path(id)
	if err != nil {
		return Checkpoint{}, false, err
	}
	blob, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return Checkpoint{}, false, nil
	}
	if err != nil {
		return Checkpoint{}, false, fmt.Errorf("serve: checkpoint read: %w", err)
	}
	cp, err := decodeCheckpoint(blob)
	if err != nil {
		return Checkpoint{}, false, err
	}
	return cp, true, nil
}

// List returns every intact checkpoint ordered by ID. Files that fail to
// read or decode (stray temp files, corruption) are skipped: recovery runs
// with what survived.
func (s *FSStore) List() ([]Checkpoint, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("serve: checkpoint dir: %w", err)
	}
	var out []Checkpoint
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ckptExt) {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(s.dir, e.Name()))
		if err != nil {
			continue
		}
		cp, err := decodeCheckpoint(blob)
		if err != nil {
			continue
		}
		// The filename is advisory; the ID inside the CRC-checked document
		// is authoritative.
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Delete removes a checkpoint.
func (s *FSStore) Delete(id string) error {
	p, err := s.path(id)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("serve: checkpoint delete: %w", err)
	}
	return nil
}
