package serve

import (
	"bufio"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"popstab/internal/fault"
)

// Chaos tests: every named fault point armed in turn, with the invariants
// the failure model promises asserted after each — failed jobs land in
// StatusFailed with a stack, every pool slot comes back, no runner
// goroutine leaks, and the dedupe cache never answers with a corpse.

// assertNoSlotLeak fails the test if the manager still holds pool slots or
// counts active runners after the dust settles.
func assertNoSlotLeak(t *testing.T, m *Manager) {
	t.Helper()
	if !eventually(func() bool { return m.active.Load() == 0 && len(m.slots) == 0 }) {
		t.Fatalf("slot leak: %d active runners, %d slots held", m.active.Load(), len(m.slots))
	}
}

func TestPanicIsolatedIntoFailedStatus(t *testing.T) {
	faults := fault.NewSet()
	faults.Arm(fault.RunnerPanic, 1, errors.New("chaos: injected step panic"))
	m := NewManager(Config{MaxConcurrent: 2, StepQuantum: 16, Faults: faults})
	defer m.Close()

	j, _, err := m.Submit(context.Background(), quickSpec(90), 64)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	info := j.Info()
	if info.Status != StatusFailed {
		t.Fatalf("status %s, want failed", info.Status)
	}
	if !strings.Contains(info.Error, "runner panic") || !strings.Contains(info.Error, "chaos: injected step panic") {
		t.Fatalf("error lost the panic value: %q", info.Error)
	}
	if !strings.Contains(info.Error, "goroutine") {
		t.Fatalf("error lost the stack trace: %q", info.Error)
	}
	if mt := m.Metrics(); mt.Panics != 1 || mt.Failed != 1 {
		t.Fatalf("metrics %+v, want 1 panic / 1 failed", mt)
	}
	assertNoSlotLeak(t, m)

	// The corpse must not answer for its identity: an identical
	// resubmission runs fresh (fault charge is spent) and completes.
	r, deduped, err := m.Submit(context.Background(), quickSpec(90), 64)
	if err != nil {
		t.Fatal(err)
	}
	if deduped || r.ID() == j.ID() {
		t.Fatalf("resubmission deduped onto the failed job %s", j.ID())
	}
	waitDone(t, r)
	if info := r.Info(); info.Status != StatusDone {
		t.Fatalf("retry after panic finished %s: %s", info.Status, info.Error)
	}
}

// TestPanicStormNoLeaks is the leak-invariant storm: every job panics, and
// afterwards the pool, the active-runner gauge, and the goroutine count
// are all back to baseline.
func TestPanicStormNoLeaks(t *testing.T) {
	faults := fault.NewSet()
	faults.Arm(fault.RunnerPanic, -1, nil)
	m := NewManager(Config{MaxConcurrent: 4, StepQuantum: 16, MaxSessions: 64, Faults: faults})
	defer m.Close()
	baseline := runtime.NumGoroutine()

	const storm = 24
	jobs := make([]*Job, 0, storm)
	for i := 0; i < storm; i++ {
		j, _, err := m.Submit(context.Background(), quickSpec(uint64(100+i)), 64)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		waitDone(t, j)
		if st := j.Info().Status; st != StatusFailed {
			t.Fatalf("storm job %s finished %s, want failed", j.ID(), st)
		}
	}
	if mt := m.Metrics(); mt.Failed != storm || mt.Panics != storm {
		t.Fatalf("metrics %+v, want %d failed/panics", mt, storm)
	}
	assertNoSlotLeak(t, m)
	// Runner goroutines exit with their jobs; allow slack for the test
	// server machinery but not for 24 leaked runners.
	if !eventually(func() bool { return runtime.NumGoroutine() <= baseline+4 }) {
		t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
	}

	// The pool is healthy after the storm: disarm and run to completion.
	faults.Disarm(fault.RunnerPanic)
	j, _, err := m.Submit(context.Background(), quickSpec(999), 64)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if info := j.Info(); info.Status != StatusDone {
		t.Fatalf("post-storm job finished %s: %s", info.Status, info.Error)
	}
}

// TestSnapshotDeadlineUnderSlowStep pins deadline propagation: with
// latency injected into the step path, a Snapshot whose context expires
// first returns the context error instead of blocking on the quantum.
func TestSnapshotDeadlineUnderSlowStep(t *testing.T) {
	faults := fault.NewSet()
	faults.ArmDelay(fault.SlowStep, -1, 250*time.Millisecond)
	m := NewManager(Config{MaxConcurrent: 1, StepQuantum: 8, Faults: faults})
	defer m.Close()

	j, _, err := m.Submit(context.Background(), quickSpec(91), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !eventually(func() bool {
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.stepping
	}) {
		t.Fatal("job never entered a (slow) quantum")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := j.Snapshot(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("snapshot under slow step: %v, want deadline exceeded", err)
	}
	// With no deadline the same call waits out the quantum and succeeds.
	if _, _, err := j.Snapshot(context.Background()); err != nil {
		t.Fatalf("patient snapshot: %v", err)
	}
	faults.Disarm(fault.SlowStep)
}

// TestCheckpointEncodeFaultNonFatal pins "checkpoint failures are counted,
// not fatal": with snapshot encoding failing, jobs still run to completion
// and graceful shutdown still succeeds — only the error counter moves.
func TestCheckpointEncodeFaultNonFatal(t *testing.T) {
	faults := fault.NewSet()
	faults.Arm(fault.SnapshotEncode, -1, nil)
	m := NewManager(Config{
		MaxConcurrent: 2, StepQuantum: 16, Store: NewMemStore(),
		CheckpointEvery: 16, Faults: faults,
	})
	j, _, err := m.Submit(context.Background(), quickSpec(92), 64)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if info := j.Info(); info.Status != StatusDone {
		t.Fatalf("job finished %s with checkpointing down: %s", info.Status, info.Error)
	}
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown with checkpointing down: %v", err)
	}
	if mt := m.Metrics(); mt.CheckpointErrors == 0 || mt.Checkpoints != 0 {
		t.Fatalf("metrics %+v, want only checkpoint errors", mt)
	}
}

func TestAdmissionGateThrottles(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2, StepQuantum: 16, SubmitRate: 0.01, SubmitBurst: 1})
	defer m.Close()
	if _, _, err := m.Submit(context.Background(), quickSpec(93), 32); err != nil {
		t.Fatalf("burst submission rejected: %v", err)
	}
	_, _, err := m.Submit(context.Background(), quickSpec(94), 32)
	var throttled *ThrottledError
	if !errors.As(err, &throttled) {
		t.Fatalf("over-rate submission: %v, want ThrottledError", err)
	}
	if throttled.RetryAfter <= 0 {
		t.Fatalf("throttle carried no Retry-After hint: %+v", throttled)
	}
	if mt := m.Metrics(); mt.Throttled != 1 {
		t.Fatalf("throttled metric %d, want 1", mt.Throttled)
	}
	// Dedupe hits answer from the cache and must NOT burn admission
	// tokens: the first job's identity still resolves while throttled.
	j, deduped, err := m.Submit(context.Background(), quickSpec(93), 32)
	if err != nil || !deduped {
		t.Fatalf("deduped submission throttled: deduped=%v err=%v", deduped, err)
	}
	waitDone(t, j)
}

func TestHTTPThrottleRetryAfter(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2, StepQuantum: 16, SubmitRate: 0.01, SubmitBurst: 1})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	var sub SubmitResponse
	resp := post(t, ts, "/v1/sessions", SubmitRequest{Spec: quickSpec(95), Rounds: 32}, &sub)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("burst submission: HTTP %d", resp.StatusCode)
	}
	var e ErrorBody
	resp = post(t, ts, "/v1/sessions", SubmitRequest{Spec: quickSpec(96), Rounds: 32}, &e)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submission: HTTP %d, want 429", resp.StatusCode)
	}
	if e.Error.Code != CodeThrottled {
		t.Fatalf("throttle envelope code %q, want %q", e.Error.Code, CodeThrottled)
	}
	if e.Error.RetryAfterMS <= 0 {
		t.Fatalf("throttle envelope retry_after_ms %d, want > 0", e.Error.RetryAfterMS)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After header %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
}

func TestHealthAndReadiness(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2, StepQuantum: 16})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	if resp := get(t, ts, "/v1/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/healthz: HTTP %d", resp.StatusCode)
	}
	// The unversioned aliases are gone: /v1 routes are the contract.
	if resp := get(t, ts, "/healthz", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /healthz (removed alias): HTTP %d, want 404", resp.StatusCode)
	}
	var rd Readiness
	if resp := get(t, ts, "/v1/readyz", &rd); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/readyz: HTTP %d", resp.StatusCode)
	}
	if !rd.Ready || rd.Draining || !rd.AdmissionOpen || rd.Slots == 0 {
		t.Fatalf("idle readiness %+v", rd)
	}

	// Draining flips readiness to 503 while liveness stays 200: the
	// process is healthy, it just must stop receiving traffic.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if resp := get(t, ts, "/v1/readyz", &rd); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /v1/readyz: HTTP %d, want 503", resp.StatusCode)
	}
	if rd.Ready || !rd.Draining {
		t.Fatalf("draining readiness %+v", rd)
	}
	if resp := get(t, ts, "/v1/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("draining /v1/healthz: HTTP %d, want 200", resp.StatusCode)
	}
	// And submissions answer 503 draining, not a hang.
	var e ErrorBody
	if resp := post(t, ts, "/v1/sessions", SubmitRequest{Spec: quickSpec(97), Rounds: 8}, &e); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submission: HTTP %d, want 503", resp.StatusCode)
	}
	if e.Error.Code != CodeDraining {
		t.Fatalf("draining envelope code %q, want %q", e.Error.Code, CodeDraining)
	}
}

// TestStreamHeartbeatAndDisconnect pins the SSE robustness pair: an idle
// stream emits heartbeat comments on cadence, and a client disconnect
// tears the subscription down (freeing the fan-out slot) instead of
// leaking it.
func TestStreamHeartbeatAndDisconnect(t *testing.T) {
	saved := streamHeartbeat
	streamHeartbeat = 25 * time.Millisecond
	defer func() { streamHeartbeat = saved }()

	m := NewManager(Config{MaxConcurrent: 2, StepQuantum: 16})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	j, _, err := m.Submit(context.Background(), quickSpec(98), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Pause(); err != nil {
		t.Fatal(err)
	}
	if !eventually(func() bool { return j.Info().Status == StatusPaused }) {
		t.Fatal("job did not park")
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/sessions/"+j.ID()+"/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	heartbeats := 0
	for sc.Scan() && heartbeats < 2 {
		if strings.HasPrefix(sc.Text(), ": heartbeat") {
			heartbeats++
		}
	}
	if heartbeats < 2 {
		t.Fatalf("idle stream produced %d heartbeats before EOF (scan err %v)", heartbeats, sc.Err())
	}

	subscribers := func() int {
		j.mu.Lock()
		defer j.mu.Unlock()
		return len(j.subs)
	}
	if subscribers() != 1 {
		t.Fatalf("%d subscribers while streaming, want 1", subscribers())
	}
	cancel() // client disconnect
	if !eventually(func() bool { return subscribers() == 0 }) {
		t.Fatal("subscription leaked after client disconnect")
	}
}

// TestStreamEndsOnDrain pins the shutdown half: an open stream ends when
// the manager drains, so http.Server.Shutdown is not held hostage by idle
// subscribers.
func TestStreamEndsOnDrain(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2, StepQuantum: 16})
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	j, _, err := m.Submit(context.Background(), quickSpec(99), 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Pause(); err != nil {
		t.Fatal(err)
	}
	if !eventually(func() bool { return j.Info().Status == StatusPaused }) {
		t.Fatal("job did not park")
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/sessions/" + j.ID() + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	drained := make(chan error, 1)
	go func() { drained <- m.Shutdown(context.Background()) }()
	// The body must reach EOF promptly — the server ended the stream.
	done := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end on drain")
	}
	if err := <-drained; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestSubmitAfterCloseEveryPath sweeps the control surface of a drained
// manager: nothing hangs, everything answers ErrClosed/conflict.
func TestSubmitAfterCloseEveryPath(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2, StepQuantum: 16})
	j, _, err := m.Submit(context.Background(), quickSpec(89), 32)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	m.Close()

	if _, _, err := m.Submit(context.Background(), quickSpec(88), 32); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after close: %v", err)
	}
	if _, err := m.Restore(context.Background(), quickSpec(88), []byte("x"), 32, false); !errors.Is(err, ErrClosed) {
		t.Fatalf("Restore after close: %v", err)
	}
	// A pre-drain handle still reads, and a cancelled caller context is
	// respected before any work happens.
	if _, ok := m.Get(j.ID()); !ok {
		t.Fatal("terminal job unreadable after drain")
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := m.Submit(cancelled, quickSpec(87), 32); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit with cancelled ctx: %v", err)
	}
}
