package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"popstab"
	"popstab/internal/obs"
)

// promValue extracts the value of a single exposition sample line by exact
// prefix match on "name" or "name{labels}".
func promValue(t *testing.T, body, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, sample+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, sample+" "), 64)
		if err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("sample %q not in exposition", sample)
	return 0
}

// TestMetricsPrometheusMode checks that /v1/metrics serves the text
// exposition on request, that it agrees with the legacy JSON view (they read
// the same atomics), and that the JSON default is unchanged.
func TestMetricsPrometheusMode(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2, StepQuantum: 32})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	j, _, err := m.Submit(context.Background(), quickSpec(41), 64)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	// JSON remains the default response.
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var jm Metrics
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type %q", ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(&jm); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if jm.Submissions != 1 || jm.SimRuns != 1 {
		t.Fatalf("JSON metrics %+v, want 1 submission / 1 run", jm)
	}

	resp, err = http.Get(ts.URL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus content type %q", ct)
	}
	body := readAll(t, resp)
	if got := promValue(t, body, "popserve_submissions_total"); got != float64(jm.Submissions) {
		t.Fatalf("exposition submissions %v, JSON %d", got, jm.Submissions)
	}
	if got := promValue(t, body, "popserve_completed_total"); got != float64(jm.Completed) {
		t.Fatalf("exposition completed %v, JSON %d", got, jm.Completed)
	}
	if promValue(t, body, "popserve_step_quantum_seconds_count") == 0 {
		t.Fatal("no step quantum observations after a completed run")
	}
	if promValue(t, body, "popserve_slots") != 2 {
		t.Fatal("slot capacity gauge wrong")
	}
	// The per-phase histograms observed something for the always-on phases.
	if promValue(t, body, `popserve_round_phase_seconds_count{phase="step"}`) == 0 {
		t.Fatal("no step-phase observations")
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestTraceSubmitToSpans drives a submission through HTTP with an explicit
// trace ID and checks the full correlation story: the header is echoed, and
// /v1/trace/{id} reports the http, build, and run spans under that one ID.
func TestTraceSubmitToSpans(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2, StepQuantum: 32})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	const trace = "feedfacecafe0001"
	body := strings.NewReader(`{"spec":{"n":4096,"tinner":24,"seed":51},"rounds":64}`)
	req, err := http.NewRequest("POST", ts.URL+"/v1/sessions", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != trace {
		t.Fatalf("trace header not echoed: got %q", got)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	j, err := m.Lookup(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.Trace() != trace {
		t.Fatalf("job trace %q, want %q", j.Trace(), trace)
	}
	waitDone(t, j)

	resp, err = http.Get(ts.URL + "/v1/trace/" + trace)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace lookup status %d", resp.StatusCode)
	}
	var tr TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Trace != trace {
		t.Fatalf("trace id %q", tr.Trace)
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name] = true
		if sp.Trace != trace {
			t.Fatalf("span %q under trace %q", sp.Name, sp.Trace)
		}
	}
	for _, want := range []string{"http", "build", "run"} {
		if !names[want] {
			t.Fatalf("missing %q span; have %v", want, names)
		}
	}
}

// TestTraceUnknown404 checks the unknown_trace error envelope.
func TestTraceUnknown404(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/trace/deadbeef00000000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if eb.Error.Code != CodeUnknownTrace {
		t.Fatalf("code %q, want %q", eb.Error.Code, CodeUnknownTrace)
	}
}

// TestStreamEventCarriesPhases reads the first SSE stats event and checks it
// keeps the flat SessionStats fields while adding the phases object.
func TestStreamEventCarriesPhases(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2, StepQuantum: 32})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	j, _, err := m.Submit(context.Background(), quickSpec(61), 64)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	resp, err := http.Get(ts.URL + "/v1/sessions/" + j.ID() + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var data string
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
			break
		}
	}
	if data == "" {
		t.Fatalf("no stats event (scan err %v)", sc.Err())
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(data), &raw); err != nil {
		t.Fatal(err)
	}
	// Old fields stay flat at the top level; phases is a sibling object.
	for _, key := range []string{"round", "size", "in_interval", "phases"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("stats event missing %q: %s", key, data)
		}
	}
	var phases popstab.RoundStats
	if err := json.Unmarshal(raw["phases"], &phases); err != nil {
		t.Fatal(err)
	}
	if phases.Rounds != 64 {
		t.Fatalf("phases.Rounds = %d, want 64", phases.Rounds)
	}
}
