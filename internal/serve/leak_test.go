package serve

import (
	"context"
	"runtime"
	"testing"

	"popstab"
)

// TestHibernateReleasesPoolGoroutines pins the session-lifecycle half of
// the engine's worker-pool contract: when the manager hibernates a session
// under registry pressure, the session's parked pool goroutines exit with
// it (gc.go closes the session before dropping the reference), so the
// process goroutine count tracks the number of RESIDENT sessions, not the
// number of sessions ever created.
func TestHibernateReleasesPoolGoroutines(t *testing.T) {
	m := NewManager(Config{
		MaxConcurrent: 1, StepQuantum: 16, MaxSessions: 1, Store: NewMemStore(),
	})
	defer m.Close()
	ctx := context.Background()

	// Workers 4 over N = 4096 engages the pool: up to 3 parked shard
	// workers plus the overlap goroutine per live session.
	spec := popstab.Spec{N: 4096, Tinner: 24, Seed: 70, Workers: 4}
	a, _, err := m.Submit(ctx, spec, 48)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, a)
	withOne := runtime.NumGoroutine()

	// The registry holds one session; this submission hibernates a.
	spec.Seed = 71
	b, _, err := m.Submit(ctx, spec, 48)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, b)
	if mt := m.Metrics(); mt.Hibernated != 1 || mt.Sessions != 1 {
		t.Fatalf("metrics after pressure: %+v, want 1 hibernated / 1 resident", mt)
	}

	// One resident session again — a's pool goroutines must be gone, so the
	// count settles back to (at most) the single-session level.
	if !eventually(func() bool { return runtime.NumGoroutine() <= withOne }) {
		t.Fatalf("goroutines did not settle after hibernate: %d, single-session level %d",
			runtime.NumGoroutine(), withOne)
	}
}
