package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"popstab"
)

// HTTP surface of the manager. Snapshot bytes travel base64-encoded inside
// JSON (encoding/json's []byte convention), so the whole API is
// curl-friendly:
//
//	POST /v1/sessions                   {"spec": {...}, "rounds": N}       submit (deduped; 429 + Retry-After when throttled)
//	POST /v1/sessions                   {"spec", "snapshot", "rounds"}     restore + continue
//	GET  /v1/sessions                                                      list
//	GET  /v1/sessions/{id}                                                 status + stats
//	POST /v1/sessions/{id}/step         {"rounds": N}                      advance
//	POST /v1/sessions/{id}/pause                                           park
//	POST /v1/sessions/{id}/resume                                          unpark
//	GET  /v1/sessions/{id}/snapshot                                        spec + snapshot bytes
//	GET  /v1/sessions/{id}/stream                                          SSE stats feed (heartbeat comments while idle)
//	GET  /v1/healthz   (also /healthz)                                     liveness
//	GET  /v1/readyz    (also /readyz)                                      readiness: slot-pool saturation + admission-gate state; 503 while draining/saturated
//	GET  /v1/metrics                                                       run/dedupe/failure/checkpoint counters
//
// Hibernated sessions are revived transparently by the {id} lookup; a
// draining server answers control calls with 503.

// SubmitRequest is the POST /v1/sessions body.
type SubmitRequest struct {
	// Spec describes the simulation (see popstab.Spec).
	Spec popstab.Spec `json:"spec"`
	// Rounds is the run target; 0 opens an idle session for manual
	// stepping.
	Rounds uint64 `json:"rounds"`
	// Snapshot, when present, restores a previously fetched snapshot
	// under Spec instead of starting fresh (base64 in JSON).
	Snapshot []byte `json:"snapshot,omitempty"`
}

// SubmitResponse answers a submission.
type SubmitResponse struct {
	ID string `json:"id"`
	// Deduped reports that an identical submission was already known and
	// the caller attached to its job.
	Deduped bool    `json:"deduped"`
	Info    JobInfo `json:"info"`
}

// StepRequest is the POST step body.
type StepRequest struct {
	Rounds uint64 `json:"rounds"`
}

// SnapshotResponse carries a restorable checkpoint.
type SnapshotResponse struct {
	ID   string       `json:"id"`
	Spec popstab.Spec `json:"spec"`
	// Snapshot is the opaque session state (base64 in JSON); POST it back
	// with the same spec to resume, here or on another popserve.
	Snapshot []byte `json:"snapshot"`
}

// errorResponse is the uniform error body.
type errorResponse struct {
	Error string `json:"error"`
}

// streamHeartbeat is the idle-stream keepalive cadence: SSE comment lines
// emitted so proxies and LBs do not reap quiet connections. A variable so
// tests can shorten it.
var streamHeartbeat = 15 * time.Second

// NewHandler exposes m over HTTP.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	healthz := func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}
	readyz := func(w http.ResponseWriter, r *http.Request) {
		rd := m.Readiness()
		code := http.StatusOK
		if !rd.Ready {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, rd)
	}
	// Registered under /v1 like the rest of the API and at the bare paths
	// load balancers conventionally probe.
	mux.HandleFunc("GET /v1/healthz", healthz)
	mux.HandleFunc("GET /healthz", healthz)
	mux.HandleFunc("GET /v1/readyz", readyz)
	mux.HandleFunc("GET /readyz", readyz)
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.Metrics())
	})
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		var (
			j       *Job
			deduped bool
			err     error
		)
		if len(req.Snapshot) > 0 {
			j, err = m.Restore(r.Context(), req.Spec, req.Snapshot, req.Rounds)
		} else {
			j, deduped, err = m.Submit(r.Context(), req.Spec, req.Rounds)
		}
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, SubmitResponse{ID: j.ID(), Deduped: deduped, Info: j.Info()})
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, m.List())
	})
	mux.HandleFunc("GET /v1/sessions/{id}", withJob(m, func(j *Job, w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, j.Info())
	}))
	mux.HandleFunc("POST /v1/sessions/{id}/step", withJob(m, func(j *Job, w http.ResponseWriter, r *http.Request) {
		var req StepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			return
		}
		if err := j.Step(req.Rounds); err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, j.Info())
	}))
	mux.HandleFunc("POST /v1/sessions/{id}/pause", withJob(m, func(j *Job, w http.ResponseWriter, r *http.Request) {
		if err := j.Pause(); err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, j.Info())
	}))
	mux.HandleFunc("POST /v1/sessions/{id}/resume", withJob(m, func(j *Job, w http.ResponseWriter, r *http.Request) {
		if err := j.Resume(); err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, j.Info())
	}))
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", withJob(m, func(j *Job, w http.ResponseWriter, r *http.Request) {
		spec, blob, err := j.Snapshot(r.Context())
		if err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, SnapshotResponse{ID: j.ID(), Spec: spec, Snapshot: blob})
	}))
	mux.HandleFunc("GET /v1/sessions/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no session %q", r.PathValue("id")))
			return
		}
		streamHandler(m, j, w, r)
	})
	return mux
}

// writeSubmitError maps submission failures to status codes: throttled →
// 429 with a Retry-After hint, draining → 503, everything else (bad specs,
// full registry) → 422.
func writeSubmitError(w http.ResponseWriter, err error) {
	var throttled *ThrottledError
	switch {
	case errors.As(err, &throttled):
		secs := int(math.Ceil(throttled.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

// withJob resolves the {id} path value (reviving hibernated sessions).
func withJob(m *Manager, fn func(*Job, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no session %q", r.PathValue("id")))
			return
		}
		fn(j, w, r)
	}
}

// streamHandler serves the SSE stats feed: one "stats" event per completed
// step quantum (lossy under backpressure), a "done" event at completion,
// then the stream ends. While the feed is idle it emits heartbeat comment
// lines every streamHeartbeat so intermediaries keep the connection open.
// The subscription ends — freeing the fan-out slot — when the client
// disconnects (r.Context) or the server drains (m.ShuttingDown).
// Reconnecting clients just resubscribe; the feed is progress, not
// history.
func streamHandler(m *Manager, j *Job, w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusNotImplemented, fmt.Errorf("streaming unsupported by this connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, cancel := j.Subscribe(16)
	defer cancel()

	// Initial event so the client has the current state immediately.
	info := j.Info()
	writeEvent(w, "stats", info.Stats)
	fl.Flush()
	if info.Status == StatusDone || info.Status == StatusFailed {
		writeEvent(w, "done", info)
		fl.Flush()
		return
	}

	// Job.Done() fires only on the FIRST completion; a job revived by a
	// manual step has it permanently closed while actively running, so in
	// that case completion is detected from the status after each event
	// instead (the final stats publish and the done transition happen in
	// one critical section, so the last event always arrives).
	done := j.Done()
	select {
	case <-done:
		done = nil // revived: the channel would fire instantly forever
	default:
	}

	hb := time.NewTicker(streamHeartbeat)
	defer hb.Stop()

	for {
		select {
		case <-r.Context().Done():
			return
		case <-m.ShuttingDown():
			// Draining: end the stream so http.Server.Shutdown can finish
			// instead of waiting out an idle subscriber.
			return
		case <-hb.C:
			// SSE comment line: ignored by clients, keeps proxies from
			// reaping an idle connection.
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		case <-done:
			writeEvent(w, "done", j.Info())
			fl.Flush()
			return
		case stats, ok := <-ch:
			if !ok {
				return
			}
			writeEvent(w, "stats", stats)
			fl.Flush()
			if info := j.Info(); info.Status == StatusDone || info.Status == StatusFailed {
				writeEvent(w, "done", info)
				fl.Flush()
				return
			}
		}
	}
}

// writeEvent emits one SSE event.
func writeEvent(w http.ResponseWriter, event string, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, blob)
}

// writeJSON writes a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError writes the uniform error body.
func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}
