package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"popstab"
	"popstab/internal/obs"
)

// HTTP surface of the manager — the worker half of the v1 contract (the
// coordinator in internal/cluster re-exposes the same routes). Snapshot
// bytes travel base64-encoded inside JSON (encoding/json's []byte
// convention), so the whole API is curl-friendly:
//
//	POST /v1/sessions                   {"spec": {...}, "rounds": N}       submit (deduped; 429 + Retry-After when throttled)
//	POST /v1/sessions                   {"spec", "snapshot", "rounds"}     restore + continue
//	GET  /v1/sessions                                                      list
//	GET  /v1/sessions/{id}                                                 status + stats
//	POST /v1/sessions/{id}/step         {"rounds": N}                      advance
//	POST /v1/sessions/{id}/pause                                           park
//	POST /v1/sessions/{id}/resume                                          unpark
//	GET  /v1/sessions/{id}/snapshot                                        spec + snapshot bytes
//	GET  /v1/sessions/{id}/stream                                          SSE stats feed (heartbeat comments while idle)
//	GET  /v1/sessions/{id}/wait?status=done&timeout=30s                    long-poll until the session reaches a status
//	GET  /v1/results/{hash}                                                content-addressed result: completed run for a Spec.Hash
//	GET  /v1/healthz                                                       liveness
//	GET  /v1/readyz                                                        readiness: slot-pool saturation + admission-gate state; 503 while draining/saturated
//	GET  /v1/metrics                                                       run/dedupe/failure/checkpoint counters (JSON; ?format=prometheus for text exposition)
//	GET  /v1/trace/{id}                                                    recorded spans for one trace ID
//
// Every non-2xx response carries the unified error envelope (see api.go);
// unknown IDs are 404 unknown_session while IDs reaped after their TTL are
// 410 session_expired. Hibernated sessions are revived transparently by the
// {id} lookup; a draining server answers control calls with 503.

// SubmitRequest is the POST /v1/sessions body.
type SubmitRequest struct {
	// Spec describes the simulation (see popstab.Spec).
	Spec popstab.Spec `json:"spec"`
	// Rounds is the run target; 0 opens an idle session for manual
	// stepping.
	Rounds uint64 `json:"rounds"`
	// Snapshot, when present, restores a previously fetched snapshot
	// under Spec instead of starting fresh (base64 in JSON).
	Snapshot []byte `json:"snapshot,omitempty"`
	// Paused parks the session on arrival (restore only): migration of a
	// paused session must not run rounds on the new host before the park
	// lands.
	Paused bool `json:"paused,omitempty"`
}

// SubmitResponse answers a submission.
type SubmitResponse struct {
	ID string `json:"id"`
	// Deduped reports that an identical submission was already known and
	// the caller attached to its job.
	Deduped bool    `json:"deduped"`
	Info    JobInfo `json:"info"`
}

// StepRequest is the POST step body.
type StepRequest struct {
	Rounds uint64 `json:"rounds"`
}

// SnapshotResponse carries a restorable checkpoint.
type SnapshotResponse struct {
	ID   string       `json:"id"`
	Spec popstab.Spec `json:"spec"`
	// Snapshot is the opaque session state (base64 in JSON); POST it back
	// with the same spec to resume, here or on another popserve.
	Snapshot []byte `json:"snapshot"`
}

// WaitResponse answers a long-poll. Reached reports whether the requested
// status was observed; false means the wait timed out (or the session hit a
// terminal state first) and Info carries whatever state it was in.
type WaitResponse struct {
	Reached bool    `json:"reached"`
	Info    JobInfo `json:"info"`
}

// ResultResponse is the content-addressed result payload: the completed
// session answering for a spec hash, with its restorable snapshot.
type ResultResponse struct {
	Hash     string       `json:"hash"`
	ID       string       `json:"id"`
	Spec     popstab.Spec `json:"spec"`
	Info     JobInfo      `json:"info"`
	Snapshot []byte       `json:"snapshot"`
}

// Long-poll bounds: the default when ?timeout is absent and the cap a
// client cannot exceed (so a stuck client cannot pin a handler forever).
const (
	defaultWaitTimeout = 30 * time.Second
	maxWaitTimeout     = 5 * time.Minute
)

// streamHeartbeat is the idle-stream keepalive cadence: SSE comment lines
// emitted so proxies and LBs do not reap quiet connections. A variable so
// tests can shorten it.
var streamHeartbeat = 15 * time.Second

// TraceResponse is the GET /v1/trace/{id} payload. The coordinator reuses it
// when merging its own spans with the owning worker's.
type TraceResponse struct {
	Trace string     `json:"trace"`
	Spans []obs.Span `json:"spans"`
}

// WantsPrometheus reports whether a metrics request asks for the text
// exposition (?format=prometheus) instead of the legacy JSON counters. An
// explicit format always wins; otherwise an Accept header naming text/plain
// (what Prometheus scrapers send) selects the exposition.
func WantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "text":
		return true
	case "json":
		return false
	}
	return strings.Contains(r.Header.Get("Accept"), "text/plain")
}

// WritePrometheus serves reg in Prometheus text exposition format 0.0.4.
func WritePrometheus(w http.ResponseWriter, reg *obs.Registry) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = reg.WritePrometheus(w)
}

// NewHandler exposes m over HTTP.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		rd := m.Readiness()
		code := http.StatusOK
		if !rd.Ready {
			code = http.StatusServiceUnavailable
		}
		WriteJSON(w, code, rd)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		if WantsPrometheus(r) {
			WritePrometheus(w, m.Registry())
			return
		}
		WriteJSON(w, http.StatusOK, m.Metrics())
	})
	mux.HandleFunc("GET /v1/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		spans := m.Tracer().Spans(id)
		if len(spans) == 0 {
			WriteError(w, &APIError{
				Status: http.StatusNotFound,
				Code:   CodeUnknownTrace,
				Err:    fmt.Errorf("no spans recorded for trace %q", id),
			})
			return
		}
		WriteJSON(w, http.StatusOK, TraceResponse{Trace: id, Spans: spans})
	})
	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			WriteError(w, BadRequest(fmt.Errorf("bad request body: %w", err)))
			return
		}
		var (
			j       *Job
			deduped bool
			err     error
		)
		if len(req.Snapshot) > 0 {
			j, err = m.Restore(r.Context(), req.Spec, req.Snapshot, req.Rounds, req.Paused)
		} else {
			j, deduped, err = m.Submit(r.Context(), req.Spec, req.Rounds)
		}
		if err != nil {
			WriteError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, SubmitResponse{ID: j.ID(), Deduped: deduped, Info: j.Info()})
	})
	mux.HandleFunc("GET /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, m.List())
	})
	mux.HandleFunc("GET /v1/sessions/{id}", withJob(m, func(j *Job, w http.ResponseWriter, r *http.Request) {
		WriteJSON(w, http.StatusOK, j.Info())
	}))
	mux.HandleFunc("POST /v1/sessions/{id}/step", withJob(m, func(j *Job, w http.ResponseWriter, r *http.Request) {
		var req StepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			WriteError(w, BadRequest(fmt.Errorf("bad request body: %w", err)))
			return
		}
		if req.Rounds == 0 {
			WriteError(w, BadRequest(fmt.Errorf("step of 0 rounds")))
			return
		}
		if err := j.Step(req.Rounds); err != nil {
			WriteError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, j.Info())
	}))
	mux.HandleFunc("POST /v1/sessions/{id}/pause", withJob(m, func(j *Job, w http.ResponseWriter, r *http.Request) {
		if err := j.Pause(); err != nil {
			WriteError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, j.Info())
	}))
	mux.HandleFunc("POST /v1/sessions/{id}/resume", withJob(m, func(j *Job, w http.ResponseWriter, r *http.Request) {
		if err := j.Resume(); err != nil {
			WriteError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, j.Info())
	}))
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", withJob(m, func(j *Job, w http.ResponseWriter, r *http.Request) {
		spec, blob, err := j.Snapshot(r.Context())
		if err != nil {
			WriteError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, SnapshotResponse{ID: j.ID(), Spec: spec, Snapshot: blob})
	}))
	mux.HandleFunc("GET /v1/sessions/{id}/wait", withJob(m, waitHandler))
	mux.HandleFunc("GET /v1/sessions/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		j, err := m.Lookup(r.PathValue("id"))
		if err != nil {
			WriteError(w, err)
			return
		}
		streamHandler(m, j, w, r)
	})
	mux.HandleFunc("GET /v1/results/{hash}", func(w http.ResponseWriter, r *http.Request) {
		hash := r.PathValue("hash")
		j, err := m.ResultByHash(hash)
		if err != nil {
			WriteError(w, err)
			return
		}
		spec, blob, err := j.Snapshot(r.Context())
		if err != nil {
			WriteError(w, err)
			return
		}
		WriteJSON(w, http.StatusOK, ResultResponse{
			Hash: hash, ID: j.ID(), Spec: spec, Info: j.Info(), Snapshot: blob,
		})
	})
	// Every request flows through the trace middleware: an incoming
	// X-Popstab-Trace is adopted (the coordinator sets it when proxying),
	// otherwise a fresh ID is minted; either way the header is echoed, an
	// "http" span is recorded, and the access log line carries trace=<id>.
	return obs.Middleware(m.Tracer(), nil, mux)
}

// waitHandler is the long-poll: park the request on the job's condition
// variable — the same quantum-wait machinery Snapshot uses — until the
// session reaches ?status (default done), hits a terminal state, or
// ?timeout (default 30s, capped at 5m) expires. Timeout is a 200 with
// reached=false, not an error: the client inspects Info and re-polls.
func waitHandler(j *Job, w http.ResponseWriter, r *http.Request) {
	want := Status(r.URL.Query().Get("status"))
	if want == "" {
		want = StatusDone
	}
	switch want {
	case StatusQueued, StatusRunning, StatusPaused, StatusDone, StatusFailed:
	default:
		WriteError(w, BadRequest(fmt.Errorf("unknown status %q", want)))
		return
	}
	timeout := defaultWaitTimeout
	if raw := r.URL.Query().Get("timeout"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d <= 0 {
			WriteError(w, BadRequest(fmt.Errorf("bad timeout %q", raw)))
			return
		}
		timeout = min(d, maxWaitTimeout)
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	info, reached, err := j.Wait(ctx, want)
	if err != nil {
		WriteError(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, WaitResponse{Reached: reached, Info: info})
}

// withJob resolves the {id} path value (reviving hibernated sessions),
// mapping unknown IDs to 404 and TTL-reaped IDs to 410 through Lookup.
func withJob(m *Manager, fn func(*Job, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, err := m.Lookup(r.PathValue("id"))
		if err != nil {
			WriteError(w, err)
			return
		}
		fn(j, w, r)
	}
}

// StreamEvent is the SSE "stats" event payload: the session's cumulative
// stats (flattened — field names are unchanged from when the event WAS a
// bare SessionStats) plus the engine's cumulative round-phase cost counters
// at the moment the event was written.
type StreamEvent struct {
	popstab.SessionStats
	Phases popstab.RoundStats `json:"phases"`
}

// streamHandler serves the SSE stats feed: one "stats" event per completed
// step quantum (lossy under backpressure), a "done" event at completion,
// then the stream ends. While the feed is idle it emits heartbeat comment
// lines every streamHeartbeat so intermediaries keep the connection open.
// The subscription ends — freeing the fan-out slot — when the client
// disconnects (r.Context) or the server drains (m.ShuttingDown).
// Reconnecting clients just resubscribe; the feed is progress, not
// history.
func streamHandler(m *Manager, j *Job, w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		WriteError(w, &APIError{
			Status: http.StatusNotImplemented,
			Code:   CodeUnsupported,
			Err:    fmt.Errorf("streaming unsupported by this connection"),
		})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch, cancel := j.Subscribe(16)
	defer cancel()

	// Initial event so the client has the current state immediately.
	info := j.Info()
	writeEvent(w, "stats", StreamEvent{SessionStats: info.Stats, Phases: j.RoundStats()})
	fl.Flush()
	if info.Status == StatusDone || info.Status == StatusFailed {
		writeEvent(w, "done", info)
		fl.Flush()
		return
	}

	// Job.Done() fires only on the FIRST completion; a job revived by a
	// manual step has it permanently closed while actively running, so in
	// that case completion is detected from the status after each event
	// instead (the final stats publish and the done transition happen in
	// one critical section, so the last event always arrives).
	done := j.Done()
	select {
	case <-done:
		done = nil // revived: the channel would fire instantly forever
	default:
	}

	hb := time.NewTicker(streamHeartbeat)
	defer hb.Stop()

	for {
		select {
		case <-r.Context().Done():
			return
		case <-m.ShuttingDown():
			// Draining: end the stream so http.Server.Shutdown can finish
			// instead of waiting out an idle subscriber.
			return
		case <-hb.C:
			// SSE comment line: ignored by clients, keeps proxies from
			// reaping an idle connection.
			fmt.Fprint(w, ": heartbeat\n\n")
			fl.Flush()
		case <-done:
			writeEvent(w, "done", j.Info())
			fl.Flush()
			return
		case stats, ok := <-ch:
			if !ok {
				return
			}
			writeEvent(w, "stats", StreamEvent{SessionStats: stats, Phases: j.RoundStats()})
			fl.Flush()
			if info := j.Info(); info.Status == StatusDone || info.Status == StatusFailed {
				writeEvent(w, "done", info)
				fl.Flush()
				return
			}
		}
	}
}

// writeEvent emits one SSE event.
func writeEvent(w http.ResponseWriter, event string, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, blob)
}
