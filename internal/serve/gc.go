package serve

import (
	"sort"
	"time"
)

// Session GC and eviction. Two pressures are relieved here:
//
//   - Time: terminal sessions (done, failed) are the result cache, but a
//     long-lived server must not remember every experiment forever.
//     SessionTTL bounds how long an untouched terminal session stays; the
//     janitor reaps it — registry entry, dedupe identity, and checkpoint
//     all removed. Reaped means gone: a later identical submission reruns.
//
//   - Memory: a resident session holds a full engine (agent arrays,
//     position side-arrays). Under registry pressure — a Submit at the
//     MaxSessions cap, or the janitor finding more than MaxResident
//     resident — the least-recently-touched *idle* sessions (done or
//     paused, never mid-run) are hibernated: a checkpoint is spilled to
//     the store, the engine is released, and the next Get revives the job
//     transparently from its checkpoint, bit-identically.
//
// Hibernation and reaping share the "parted" transition: the runner exits,
// stale handles refuse control calls with ErrHibernated, and the registry
// entry disappears. The difference is the tombstone: hibernated IDs stay
// in m.hibernated (revivable), reaped IDs are forgotten outright.

// janitor is the background GC loop, ended by Shutdown.
func (m *Manager) janitor() {
	t := time.NewTicker(m.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-m.janitorStop:
			return
		case <-t.C:
			m.GC()
		}
	}
}

// GC runs one janitor pass — reap TTL-expired terminal sessions, hibernate
// residency overflow — and reports what it did. Exported so operators (and
// tests) can force a pass instead of waiting for the cadence.
func (m *Manager) GC() (reaped, hibernated int) {
	reaped = m.reapExpired()
	hibernated = m.hibernateOverflow()
	return reaped, hibernated
}

// reapExpired removes terminal sessions untouched for SessionTTL.
func (m *Manager) reapExpired() int {
	ttl := m.cfg.SessionTTL
	if ttl <= 0 {
		return 0
	}
	cutoff := time.Now().Add(-ttl).UnixNano()
	n := 0
	for _, j := range m.residents() {
		if j.lastTouch.Load() >= cutoff {
			continue
		}
		j.mu.Lock()
		terminal := (j.status == StatusDone || j.status == StatusFailed) &&
			!j.stepping && !j.parted && j.pending == 0
		// Re-check the touch stamp under the lock: a concurrent access
		// may have refreshed it after the first screen.
		if terminal && j.lastTouch.Load() < cutoff {
			j.sess.Close() // release pool goroutines with the session
			j.parted = true
			j.sess = nil
			j.cond.Broadcast()
			j.mu.Unlock()
			m.forget(j, false)
			m.recordReaped(j.id)
			j.dropCheckpoint()
			m.reaps.Add(1)
			n++
			continue
		}
		j.mu.Unlock()
	}
	return n
}

// hibernateOverflow spills LRU idle sessions while residency exceeds the
// watermark.
func (m *Manager) hibernateOverflow() int {
	if m.store == nil {
		return 0
	}
	n := 0
	for {
		m.mu.Lock()
		over := len(m.jobs) > m.cfg.MaxResident
		m.mu.Unlock()
		if !over || !m.hibernateOne() {
			return n
		}
		n++
	}
}

// hibernateOne spills the least-recently-touched idle session to the
// store, reporting whether it made room.
func (m *Manager) hibernateOne() bool {
	if m.store == nil {
		return false
	}
	cands := m.residents()
	sort.Slice(cands, func(i, k int) bool {
		return cands[i].lastTouch.Load() < cands[k].lastTouch.Load()
	})
	for _, j := range cands {
		if m.hibernate(j) {
			return true
		}
	}
	return false
}

// hibernate spills one job if it is idle: checkpoint to the store, release
// the engine, mark parted (the runner exits), tombstone the ID as
// revivable. The checkpoint write happens under j.mu so the captured state
// cannot be mutated (Step, Resume) between capture and persistence.
func (m *Manager) hibernate(j *Job) bool {
	j.mu.Lock()
	idle := (j.status == StatusDone || j.status == StatusPaused) &&
		!j.stepping && !j.parted && j.sess != nil
	if !idle {
		j.mu.Unlock()
		return false
	}
	cp := Checkpoint{
		ID:       j.id,
		Spec:     j.spec,
		Target:   j.target,
		Pending:  j.pending,
		Paused:   j.paused,
		Dedupe:   m.cachedLocked(j),
		Snapshot: j.sess.Snapshot(),
	}
	if err := m.store.Put(cp); err != nil {
		j.mu.Unlock()
		m.ckptErrors.Add(1)
		return false
	}
	j.sess.Close() // release pool goroutines with the hibernated session
	j.parted = true
	j.sess = nil
	j.cond.Broadcast()
	j.mu.Unlock()
	m.forget(j, true)
	m.checkpoints.Add(1)
	m.hibernations.Add(1)
	return true
}

// residents snapshots the registry's jobs.
func (m *Manager) residents() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	return jobs
}

// forget removes a parted job from the registry and dedupe cache;
// revivable tombstones the ID for transparent revival.
func (m *Manager) forget(j *Job, revivable bool) {
	m.mu.Lock()
	delete(m.jobs, j.id)
	if j.key != "" && m.byKey[j.key] == j {
		delete(m.byKey, j.key)
	}
	if revivable {
		m.hibernated[j.id] = true
	} else {
		delete(m.hibernated, j.id)
	}
	m.mu.Unlock()
}
