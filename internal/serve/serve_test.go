package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"popstab"
)

// quickSpec is a small, fast simulation: N=4096 (the model minimum) with
// the short subphase the experiment suite uses.
func quickSpec(seed uint64) popstab.Spec {
	return popstab.Spec{N: 4096, Tinner: 24, Seed: seed}
}

// waitDone blocks until the job completes or the test times out.
func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not complete: %+v", j.ID(), j.Info())
	}
}

func TestManagerRunsToCompletion(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2, StepQuantum: 32})
	defer m.Close()
	j, deduped, err := m.Submit(context.Background(), quickSpec(1), 100)
	if err != nil {
		t.Fatal(err)
	}
	if deduped {
		t.Fatal("first submission reported deduped")
	}
	waitDone(t, j)
	info := j.Info()
	if info.Status != StatusDone {
		t.Fatalf("status %s (err %q), want done", info.Status, info.Error)
	}
	if info.Stats.Round != 100 {
		t.Fatalf("ran %d rounds, want 100", info.Stats.Round)
	}
	if info.Stats.Size == 0 {
		t.Fatal("empty population after run")
	}
}

func TestManagerDedupe(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2})
	defer m.Close()
	a, _, err := m.Submit(context.Background(), quickSpec(2), 50)
	if err != nil {
		t.Fatal(err)
	}
	// Identical spec, different Workers: same simulation, must dedupe.
	spec := quickSpec(2)
	spec.Workers = 4
	b, deduped, err := m.Submit(context.Background(), spec, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !deduped || b.ID() != a.ID() {
		t.Fatalf("identical submission not deduped (a=%s b=%s deduped=%v)", a.ID(), b.ID(), deduped)
	}
	// Different target rounds: a different job.
	c, deduped, err := m.Submit(context.Background(), quickSpec(2), 60)
	if err != nil {
		t.Fatal(err)
	}
	if deduped || c.ID() == a.ID() {
		t.Fatal("different round target wrongly deduped")
	}
	// A completed job keeps serving as the result cache.
	waitDone(t, a)
	d, deduped, err := m.Submit(context.Background(), quickSpec(2), 50)
	if err != nil {
		t.Fatal(err)
	}
	if !deduped || d.ID() != a.ID() {
		t.Fatal("completed job not served from the cache")
	}
	mt := m.Metrics()
	if mt.SimRuns != 2 || mt.DedupeHits != 2 || mt.Submissions != 4 {
		t.Fatalf("metrics %+v, want 2 runs / 2 hits / 4 submissions", mt)
	}
}

func TestManagerPauseResumeStep(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1, StepQuantum: 16})
	defer m.Close()
	j, _, err := m.Submit(context.Background(), quickSpec(3), 0) // idle session, manual stepping
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j) // target 0 is immediately reached
	if err := j.Step(48); err != nil {
		t.Fatal(err)
	}
	if !eventually(func() bool { return j.Info().Stats.Round == 48 }) {
		t.Fatalf("manual step did not advance: %+v", j.Info())
	}
	if err := j.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := j.Step(16); err != nil {
		t.Fatal(err)
	}
	// Paused: the added budget must not run.
	time.Sleep(50 * time.Millisecond)
	if got := j.Info().Stats.Round; got != 48 {
		t.Fatalf("paused session advanced to round %d", got)
	}
	if err := j.Resume(); err != nil {
		t.Fatal(err)
	}
	if !eventually(func() bool { return j.Info().Stats.Round == 64 }) {
		t.Fatalf("resume did not drain the pending rounds: %+v", j.Info())
	}
}

// eventually polls cond for up to 30s.
func eventually(cond func() bool) bool {
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

// TestStepEvictsDedupeEntry pins the revival contract: manually stepping a
// job past its submitted target removes it from the dedupe cache, so a
// later identical submission gets a FRESH run instead of the moved-on
// state.
func TestStepEvictsDedupeEntry(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2, StepQuantum: 16})
	defer m.Close()
	a, _, err := m.Submit(context.Background(), quickSpec(30), 32)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, a)
	if err := a.Step(16); err != nil { // a now diverges from (hash, 32)
		t.Fatal(err)
	}
	b, deduped, err := m.Submit(context.Background(), quickSpec(30), 32)
	if err != nil {
		t.Fatal(err)
	}
	if deduped || b.ID() == a.ID() {
		t.Fatalf("submission after revival deduped onto the mutated job (a=%s b=%s)", a.ID(), b.ID())
	}
	waitDone(t, b)
	if got := b.Info().Stats.Round; got != 32 {
		t.Fatalf("fresh run finished at round %d, want 32", got)
	}
}

// TestFailedBuildNotCountedOrCached pins two metrics/cache properties: a
// submission whose constructor fails is not counted as a sim run, and its
// dedupe entry is evicted so a retry is not answered by the corpse forever.
func TestFailedBuildNotCountedOrCached(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	// Hashes fine (names resolve, axes are compatible) but the constructor
	// rejects it: rogue.NewEngine requires ReplicateEvery >= 1.
	bad := popstab.Spec{N: 4096, Tinner: 24, Seed: 31, Rogue: &popstab.RogueSpec{DetectProb: 1}}
	j, _, err := m.Submit(context.Background(), bad, 10)
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.Info().Status != StatusFailed {
		t.Fatalf("status %s, want failed", j.Info().Status)
	}
	if runs := m.Metrics().SimRuns; runs != 0 {
		t.Errorf("failed build counted as %d sim runs", runs)
	}
	// The retry must be a fresh job, not the failed one.
	j2, deduped, err := m.Submit(context.Background(), bad, 10)
	if err != nil {
		t.Fatal(err)
	}
	if deduped || j2.ID() == j.ID() {
		t.Error("retry deduped onto the failed job")
	}
}

// TestManagerConcurrentSessions drives many concurrent submissions of a
// few distinct configs through a small pool and checks every session
// completes while the cache dedupes the repeats — the in-process form of
// the load smoke (examples/serve drives the same thing over HTTP).
func TestManagerConcurrentSessions(t *testing.T) {
	const (
		distinct = 8
		clients  = 64
		rounds   = 72
	)
	m := NewManager(Config{MaxConcurrent: 4, StepQuantum: 24})
	defer m.Close()
	var wg sync.WaitGroup
	jobs := make([]*Job, clients)
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			j, _, err := m.Submit(context.Background(), quickSpec(uint64(c%distinct)), rounds)
			if err != nil {
				errs[c] = err
				return
			}
			jobs[c] = j
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	for _, j := range jobs {
		waitDone(t, j)
		if info := j.Info(); info.Status != StatusDone || info.Stats.Round != rounds {
			t.Fatalf("job %s finished %+v", j.ID(), info)
		}
	}
	mt := m.Metrics()
	if mt.SimRuns != distinct {
		t.Errorf("ran %d simulations for %d distinct configs", mt.SimRuns, distinct)
	}
	if mt.DedupeHits != clients-distinct {
		t.Errorf("dedupe hits %d, want %d", mt.DedupeHits, clients-distinct)
	}
}

// --- HTTP round-trip -----------------------------------------------------

// post sends a JSON body and decodes a JSON response.
func post(t *testing.T, ts *httptest.Server, path string, body, out any) *http.Response {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp
}

// get fetches and decodes a JSON response.
func get(t *testing.T, ts *httptest.Server, path string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", path, err)
		}
	}
	return resp
}

// TestHTTPSubmitStepSnapshotResume is the boot-and-probe smoke CI runs: a
// full client round-trip — submit, run, pause, snapshot over the wire,
// resume the snapshot as a NEW session, and verify the resumed session's
// continuation matches a straight run bit-for-bit (stats equality at the
// final round).
func TestHTTPSubmitStepSnapshotResume(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2, StepQuantum: 16})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	spec := quickSpec(9)
	const (
		firstLeg  = 80
		secondLeg = 64
	)

	// Reference: one uninterrupted run of firstLeg+secondLeg rounds.
	var ref SubmitResponse
	post(t, ts, "/v1/sessions", SubmitRequest{Spec: spec, Rounds: firstLeg + secondLeg}, &ref)

	// Interrupted: run firstLeg, snapshot, resume as a new session.
	var sub SubmitResponse
	post(t, ts, "/v1/sessions", SubmitRequest{Spec: spec, Rounds: firstLeg}, &sub)
	if sub.Deduped {
		t.Fatal("distinct round target deduped")
	}
	waitHTTP(t, ts, sub.ID, firstLeg)

	var snap SnapshotResponse
	if resp := get(t, ts, "/v1/sessions/"+sub.ID+"/snapshot", &snap); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	if len(snap.Snapshot) == 0 {
		t.Fatal("empty snapshot")
	}

	var res SubmitResponse
	post(t, ts, "/v1/sessions", SubmitRequest{Spec: snap.Spec, Snapshot: snap.Snapshot, Rounds: secondLeg}, &res)
	if res.ID == sub.ID {
		t.Fatal("restore reused the source session")
	}
	waitHTTP(t, ts, res.ID, firstLeg+secondLeg)
	waitHTTP(t, ts, ref.ID, firstLeg+secondLeg)

	var a, b JobInfo
	get(t, ts, "/v1/sessions/"+ref.ID, &a)
	get(t, ts, "/v1/sessions/"+res.ID, &b)
	if a.Stats != b.Stats {
		t.Fatalf("resumed continuation diverged:\n ref %+v\n got %+v", a.Stats, b.Stats)
	}

	// Manual stepping drives the session past its original target.
	var stepped JobInfo
	post(t, ts, "/v1/sessions/"+res.ID+"/step", StepRequest{Rounds: 8}, &stepped)
	waitHTTP(t, ts, res.ID, firstLeg+secondLeg+8)

	// Metrics reflect three engine runs (ref, sub, restore) and no dedupe.
	var mt Metrics
	get(t, ts, "/v1/metrics", &mt)
	if mt.SimRuns != 3 || mt.DedupeHits != 0 {
		t.Fatalf("metrics %+v, want 3 runs / 0 hits", mt)
	}
}

// waitHTTP polls the session until its round counter reaches want.
func waitHTTP(t *testing.T, ts *httptest.Server, id string, want uint64) {
	t.Helper()
	var info JobInfo
	if !eventually(func() bool {
		get(t, ts, "/v1/sessions/"+id, &info)
		if info.Status == StatusFailed {
			t.Fatalf("session %s failed: %s", id, info.Error)
		}
		return info.Stats.Round >= want
	}) {
		t.Fatalf("session %s stuck at %+v, want round %d", id, info.Stats, want)
	}
}

// TestHTTPStream reads the SSE feed of a running session and requires at
// least one stats event and the done event.
func TestHTTPStream(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1, StepQuantum: 16})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	var sub SubmitResponse
	post(t, ts, "/v1/sessions", SubmitRequest{Spec: quickSpec(10), Rounds: 96}, &sub)

	resp, err := http.Get(ts.URL + "/v1/sessions/" + sub.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	events := map[string]int{}
	sc := bufio.NewScanner(resp.Body)
	cur := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			events[cur]++
			if cur == "done" {
				goto done
			}
		}
	}
done:
	if events["stats"] == 0 {
		t.Errorf("no stats events before done (saw %v)", events)
	}
	if events["done"] != 1 {
		t.Errorf("done events %d, want 1 (saw %v)", events["done"], events)
	}
}

// TestHTTPStreamRevivedJob pins the stream-after-revival fix: a job whose
// first completion already closed Done() must still stream live stats (not
// an instant spurious "done") when revived by a manual step.
func TestHTTPStreamRevivedJob(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 1, StepQuantum: 16})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	var sub SubmitResponse
	post(t, ts, "/v1/sessions", SubmitRequest{Spec: quickSpec(11), Rounds: 32}, &sub)
	j, _ := m.Get(sub.ID)
	waitDone(t, j)

	// Revive paused so the stream deterministically connects mid-life.
	post(t, ts, "/v1/sessions/"+sub.ID+"/pause", struct{}{}, nil)
	post(t, ts, "/v1/sessions/"+sub.ID+"/step", StepRequest{Rounds: 64}, nil)

	resp, err := http.Get(ts.URL + "/v1/sessions/" + sub.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	go func() {
		r, err := http.Post(ts.URL+"/v1/sessions/"+sub.ID+"/resume", "application/json", strings.NewReader("{}"))
		if err == nil {
			r.Body.Close()
		}
	}()

	events := map[string]int{}
	var lastDone JobInfo
	sc := bufio.NewScanner(resp.Body)
	cur := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			events[cur]++
			if cur == "done" {
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &lastDone); err != nil {
					t.Fatal(err)
				}
				goto done
			}
		}
	}
done:
	if events["done"] != 1 {
		t.Fatalf("done events %d (saw %v)", events["done"], events)
	}
	// The spurious-done bug would report a running/queued status here with
	// the pre-revival round; the fix ends the stream only at the real end.
	if lastDone.Status != StatusDone || lastDone.Stats.Round != 96 {
		t.Errorf("done event carries %s at round %d, want done at 96", lastDone.Status, lastDone.Stats.Round)
	}
	if events["stats"] < 2 {
		t.Errorf("revived stream delivered %d stats events, want the live feed (saw %v)", events["stats"], events)
	}
}

// TestHTTPErrors pins the unified error surface: every non-2xx answer is
// the {"error":{"code","message"}} envelope with a stable machine-readable
// code, mapped from typed errors in exactly one place (statusOf).
func TestHTTPErrors(t *testing.T) {
	m := NewManager(Config{})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	var e ErrorBody
	if resp := get(t, ts, "/v1/sessions/nope", &e); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: status %d", resp.StatusCode)
	}
	if e.Error.Code != CodeUnknownSession || e.Error.Message == "" {
		t.Errorf("unknown session envelope %+v, want code %q", e.Error, CodeUnknownSession)
	}

	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	e = ErrorBody{}
	if derr := json.NewDecoder(resp.Body).Decode(&e); derr != nil {
		t.Fatalf("bad body answer was not the envelope: %v", derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || e.Error.Code != CodeBadRequest {
		t.Errorf("bad body: status %d code %q", resp.StatusCode, e.Error.Code)
	}

	// N below the model minimum fails at hash time.
	e = ErrorBody{}
	if resp := post(t, ts, "/v1/sessions", SubmitRequest{Spec: popstab.Spec{N: 64}}, &e); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("invalid spec: status %d", resp.StatusCode)
	}
	if e.Error.Code != CodeInvalidSpec {
		t.Errorf("invalid spec envelope code %q, want %q", e.Error.Code, CodeInvalidSpec)
	}

	// Zero-round step is a request error, not a conflict.
	var sub SubmitResponse
	if resp := post(t, ts, "/v1/sessions", SubmitRequest{Spec: quickSpec(40), Rounds: 8}, &sub); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	e = ErrorBody{}
	if resp := post(t, ts, "/v1/sessions/"+sub.ID+"/step", StepRequest{Rounds: 0}, &e); resp.StatusCode != http.StatusBadRequest || e.Error.Code != CodeBadRequest {
		t.Errorf("zero-round step: status %d code %q", resp.StatusCode, e.Error.Code)
	}

	// Unknown result hash.
	e = ErrorBody{}
	if resp := get(t, ts, "/v1/results/deadbeef", &e); resp.StatusCode != http.StatusNotFound || e.Error.Code != CodeUnknownResult {
		t.Errorf("unknown result: status %d code %q", resp.StatusCode, e.Error.Code)
	}
}

// TestHTTPExpiredSession pins 404-vs-410: an ID the janitor reaped answers
// 410 Gone with session_expired, distinguishable from a never-seen ID.
func TestHTTPExpiredSession(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2, StepQuantum: 16, SessionTTL: time.Nanosecond, GCInterval: time.Hour})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	var sub SubmitResponse
	if resp := post(t, ts, "/v1/sessions", SubmitRequest{Spec: quickSpec(41), Rounds: 16}, &sub); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	j, err := m.Lookup(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	time.Sleep(2 * time.Millisecond) // idle past the nanosecond TTL
	if reaped, _ := m.GC(); reaped != 1 {
		t.Fatalf("GC reaped %d sessions, want 1", reaped)
	}

	var e ErrorBody
	if resp := get(t, ts, "/v1/sessions/"+sub.ID, &e); resp.StatusCode != http.StatusGone {
		t.Errorf("reaped session: status %d, want 410", resp.StatusCode)
	}
	if e.Error.Code != CodeSessionExpired {
		t.Errorf("reaped session envelope code %q, want %q", e.Error.Code, CodeSessionExpired)
	}
	e = ErrorBody{}
	if resp := get(t, ts, "/v1/sessions/never-existed", &e); resp.StatusCode != http.StatusNotFound || e.Error.Code != CodeUnknownSession {
		t.Errorf("unknown session: status %d code %q", resp.StatusCode, e.Error.Code)
	}
}

// TestHTTPWait pins the long-poll: it returns immediately when the status
// already holds, parks until a transition otherwise, reports timeouts as
// reached=false, and rejects bad parameters.
func TestHTTPWait(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2, StepQuantum: 8})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	var sub SubmitResponse
	if resp := post(t, ts, "/v1/sessions", SubmitRequest{Spec: quickSpec(42), Rounds: 64}, &sub); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	// Park until done: the session has real rounds to run first.
	var wr WaitResponse
	if resp := get(t, ts, "/v1/sessions/"+sub.ID+"/wait?status=done&timeout=30s", &wr); resp.StatusCode != http.StatusOK {
		t.Fatalf("wait: status %d", resp.StatusCode)
	}
	if !wr.Reached || wr.Info.Status != StatusDone || wr.Info.Stats.Round != 64 {
		t.Fatalf("wait answered %+v, want reached done at round 64", wr)
	}

	// Already-done short-circuits.
	if resp := get(t, ts, "/v1/sessions/"+sub.ID+"/wait", &wr); resp.StatusCode != http.StatusOK || !wr.Reached {
		t.Fatalf("wait on done session: status %d reached %v", resp.StatusCode, wr.Reached)
	}

	// A status the session will never reach again times out with
	// reached=false and the current info — a 200, the client re-polls.
	if resp := get(t, ts, "/v1/sessions/"+sub.ID+"/wait?status=running&timeout=50ms", &wr); resp.StatusCode != http.StatusOK {
		t.Fatalf("wait timeout: status %d", resp.StatusCode)
	}
	if wr.Reached || wr.Info.Status != StatusDone {
		t.Fatalf("timed-out wait answered %+v, want reached=false done", wr)
	}

	// Parameter validation.
	var e ErrorBody
	if resp := get(t, ts, "/v1/sessions/"+sub.ID+"/wait?status=bogus", &e); resp.StatusCode != http.StatusBadRequest || e.Error.Code != CodeBadRequest {
		t.Errorf("bad status: status %d code %q", resp.StatusCode, e.Error.Code)
	}
	if resp := get(t, ts, "/v1/sessions/"+sub.ID+"/wait?timeout=banana", &e); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad timeout: status %d", resp.StatusCode)
	}
}

// TestHTTPResultByHash pins the content-addressed result store: a finished
// run answers under its spec hash with a restorable snapshot; a known but
// unfinished hash answers result_pending.
func TestHTTPResultByHash(t *testing.T) {
	m := NewManager(Config{MaxConcurrent: 2, StepQuantum: 16})
	defer m.Close()
	ts := httptest.NewServer(NewHandler(m))
	defer ts.Close()

	spec := quickSpec(43)
	hash, err := spec.Hash()
	if err != nil {
		t.Fatal(err)
	}
	var sub SubmitResponse
	if resp := post(t, ts, "/v1/sessions", SubmitRequest{Spec: spec, Rounds: 32}, &sub); resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	j, err := m.Lookup(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)

	var res ResultResponse
	if resp := get(t, ts, "/v1/results/"+hash, &res); resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}
	if res.Hash != hash || res.ID != sub.ID || len(res.Snapshot) == 0 || res.Info.Stats.Round != 32 {
		t.Fatalf("result %+v, want the finished run with its snapshot", res.Info)
	}
	// The returned snapshot restores to the identical state.
	var re SubmitResponse
	if resp := post(t, ts, "/v1/sessions", SubmitRequest{Spec: res.Spec, Snapshot: res.Snapshot, Rounds: 0}, &re); resp.StatusCode != http.StatusOK {
		t.Fatalf("restore of result snapshot: status %d", resp.StatusCode)
	}
	rj, err := m.Lookup(re.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, rj)
	if got := rj.Info().Stats; got.Size != res.Info.Stats.Size || got.Round != res.Info.Stats.Round {
		t.Fatalf("restored stats %+v != result stats %+v", got, res.Info.Stats)
	}
}

// TestSessionLimit pins the registry bound.
func TestSessionLimit(t *testing.T) {
	m := NewManager(Config{MaxSessions: 1})
	defer m.Close()
	if _, _, err := m.Submit(context.Background(), quickSpec(20), 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Submit(context.Background(), quickSpec(21), 1); err == nil {
		t.Fatal("second session admitted past MaxSessions=1")
	}
	// A deduped submission is not a new session and must still succeed.
	if _, deduped, err := m.Submit(context.Background(), quickSpec(20), 1); err != nil || !deduped {
		t.Fatalf("dedupe past the limit: deduped=%v err=%v", deduped, err)
	}
}
