package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"popstab"
	"popstab/internal/fault"
)

// sampleCheckpoint builds a checkpoint with every field populated.
func sampleCheckpoint(id string) Checkpoint {
	return Checkpoint{
		ID:       id,
		Spec:     popstab.Spec{N: 4096, Tinner: 24, Seed: 7, Topology: "torus", Workers: 2},
		Target:   300,
		Pending:  120,
		Paused:   true,
		Dedupe:   true,
		Snapshot: []byte("opaque session bytes"),
	}
}

// checkEqual compares two checkpoints field by field.
func checkEqual(t *testing.T, got, want Checkpoint) {
	t.Helper()
	if got.ID != want.ID || got.Target != want.Target || got.Pending != want.Pending ||
		got.Paused != want.Paused || got.Dedupe != want.Dedupe {
		t.Fatalf("checkpoint fields diverged:\n got %+v\nwant %+v", got, want)
	}
	if got.Spec != want.Spec {
		t.Fatalf("spec diverged:\n got %+v\nwant %+v", got.Spec, want.Spec)
	}
	if !bytes.Equal(got.Snapshot, want.Snapshot) {
		t.Fatalf("snapshot bytes diverged")
	}
}

func TestCheckpointCodecRoundTrip(t *testing.T) {
	want := sampleCheckpoint("s-000042")
	blob, err := encodeCheckpoint(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	checkEqual(t, got, want)

	// The wire framing's CRC must reject corruption anywhere in the file.
	for _, off := range []int{0, 8, len(blob) / 2, len(blob) - 1} {
		bad := append([]byte(nil), blob...)
		bad[off] ^= 0x40
		if _, err := decodeCheckpoint(bad); err == nil {
			t.Errorf("corruption at offset %d decoded cleanly", off)
		}
	}
}

// storeContract exercises the CheckpointStore contract shared by both
// implementations.
func storeContract(t *testing.T, s CheckpointStore) {
	t.Helper()
	if _, ok, err := s.Get("s-000001"); ok || err != nil {
		t.Fatalf("empty store Get: ok=%v err=%v", ok, err)
	}
	a, b := sampleCheckpoint("s-000001"), sampleCheckpoint("s-000002")
	b.Pending = 0
	b.Paused = false
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get("s-000001")
	if !ok || err != nil {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	checkEqual(t, got, a)

	// Put replaces.
	a2 := a
	a2.Pending = 12
	if err := s.Put(a2); err != nil {
		t.Fatal(err)
	}
	got, _, _ = s.Get("s-000001")
	checkEqual(t, got, a2)

	cps, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 2 || cps[0].ID != "s-000001" || cps[1].ID != "s-000002" {
		t.Fatalf("List returned %d entries (want 2, ordered)", len(cps))
	}

	if err := s.Delete("s-000001"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("s-000001"); err != nil { // idempotent
		t.Fatalf("double delete: %v", err)
	}
	if _, ok, _ := s.Get("s-000001"); ok {
		t.Fatal("deleted checkpoint still present")
	}
	if cps, _ = s.List(); len(cps) != 1 {
		t.Fatalf("List after delete: %d entries", len(cps))
	}
}

func TestMemStoreContract(t *testing.T) { storeContract(t, NewMemStore()) }

func TestFSStoreContract(t *testing.T) {
	s, err := NewFSStore(filepath.Join(t.TempDir(), "ckpts"))
	if err != nil {
		t.Fatal(err)
	}
	storeContract(t, s)
}

// TestFSStoreSkipsCorruptAndStray pins the recovery posture: stray temp
// files and corrupted checkpoints are skipped by List, not fatal.
func TestFSStoreSkipsCorruptAndStray(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	good := sampleCheckpoint("s-000003")
	if err := s.Put(good); err != nil {
		t.Fatal(err)
	}
	// A torn/corrupt checkpoint and a stray temp file from a crashed
	// writer.
	if err := os.WriteFile(filepath.Join(dir, "s-000004.ckpt"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tmp-123456"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	cps, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) != 1 || cps[0].ID != "s-000003" {
		t.Fatalf("List = %d entries, want only the intact one", len(cps))
	}
	if _, ok, err := s.Get("s-000004"); ok || err == nil {
		t.Fatal("corrupt Get reported ok")
	}
}

// TestFSStoreWriteFaultPreservesPrevious is the atomicity invariant under
// the checkpoint-write fault: a failure injected between temp write and
// rename (a crash mid-write) leaves the previous checkpoint bit-intact.
func TestFSStoreWriteFaultPreservesPrevious(t *testing.T) {
	s, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first := sampleCheckpoint("s-000005")
	if err := s.Put(first); err != nil {
		t.Fatal(err)
	}

	faults := fault.NewSet()
	faults.Arm(fault.CheckpointWrite, 1, nil)
	s.Faults = faults
	second := first
	second.Pending = 1
	if err := s.Put(second); err == nil {
		t.Fatal("armed checkpoint-write fault did not fail Put")
	}
	got, ok, err := s.Get("s-000005")
	if !ok || err != nil {
		t.Fatalf("previous checkpoint lost after failed write: ok=%v err=%v", ok, err)
	}
	checkEqual(t, got, first)

	// Fault exhausted: the retry lands and replaces.
	if err := s.Put(second); err != nil {
		t.Fatal(err)
	}
	got, _, _ = s.Get("s-000005")
	checkEqual(t, got, second)
}

func TestFSStoreRejectsBadIDs(t *testing.T) {
	s, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "../escape", "a/b", `a\b`, ".hidden"} {
		if err := s.Put(Checkpoint{ID: id, Spec: popstab.Spec{N: 4096, Seed: 1}}); err == nil {
			t.Errorf("Put accepted id %q", id)
		}
	}
}
