// Package serve is the simulation-as-a-service layer: a job manager that
// multiplexes many steppable popstab.Sessions over a bounded worker pool,
// dedupes identical submissions through a canonical-config-hash cache, and
// streams per-step stats to subscribers. cmd/popserve exposes it over HTTP
// (submit / step / pause / resume / snapshot / SSE stream); the package
// itself is transport-agnostic so tests and examples drive it in-process.
//
// # Execution model
//
// Every job owns one goroutine (its runner) and one popstab.Session. The
// runner advances the session in quanta of Config.StepQuantum rounds; to
// run a quantum it first acquires a slot from the manager's bounded pool,
// so at most Config.MaxConcurrent sessions consume CPU at once while any
// number are open, paused, or parked between quanta — the inversion that
// turns the fire-and-forget round loop into a service. Between quanta the
// runner re-reads its control state, so pause, added step budget, and
// shutdown all take effect with at most one quantum of latency, and a
// snapshot can be cut at a true between-rounds boundary.
//
// # Failure model
//
// The serving layer assumes sessions can fail and the process can die at
// any instant, and bounds the damage (DESIGN.md §9):
//
//   - Panic isolation: a panic anywhere in a runner — session build or a
//     step quantum — is recovered into a StatusFailed transition carrying
//     the stack, the dedupe entry is evicted, and the pool slot is returned
//     by defer, so one poisoned spec cannot leak capacity.
//   - Durable checkpoints: with a CheckpointStore configured, the runner
//     persists a checkpoint every CheckpointEvery rounds and at completion,
//     and Shutdown checkpoints every live session; Recover re-registers
//     checkpointed jobs on startup and resumes their outstanding rounds,
//     bit-identically to a run that was never interrupted.
//   - GC and eviction: terminal sessions idle past SessionTTL are reaped;
//     under registry pressure the least-recently-touched idle sessions are
//     hibernated — spilled to the store and transparently revived by the
//     next Get.
//   - Admission control: an optional token-bucket gate rejects submission
//     bursts with a Retry-After hint instead of letting the registry fill.
//   - Fault injection: production code consults Config.Faults at the named
//     points in internal/fault; chaos tests arm them to prove the above.
//
// # Dedupe
//
// Submissions are identified by (popstab.Spec.Hash, target rounds). The
// hash canonicalizes defaults and EXCLUDES Workers — simulation output is
// bit-identical across worker counts — so two users submitting the same
// experiment share one run and one result: the second submission attaches
// to the first job whatever state it is in. Metrics.SimRuns counts actual
// engine runs and Metrics.DedupeHits the submissions served without one;
// the load smoke (examples/serve) asserts on exactly these. Restored
// sessions (snapshot resumes) never join the cache: their state is not a
// pure function of the spec. Recovered and revived jobs rejoin it when
// they held their identity at checkpoint time.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"popstab"
	"popstab/internal/fault"
	"popstab/internal/obs"
)

// Config parameterizes a Manager.
type Config struct {
	// MaxConcurrent bounds how many sessions step simultaneously
	// (0 = runtime.NumCPU()).
	MaxConcurrent int
	// MaxSessions bounds the registry; submissions beyond it fail — or,
	// with a Store, hibernate an idle session to make room (0 = 4096).
	// Completed jobs count — they are the result cache.
	MaxSessions int
	// StepQuantum is the number of rounds a runner advances per pool slot
	// (0 = 64): the latency bound on pause/snapshot/shutdown.
	StepQuantum int
	// SessionWorkers is the engine worker count per session (0 = 1; the
	// pool provides cross-session parallelism, so intra-session sharding
	// is usually left off).
	SessionWorkers int

	// Store persists checkpoints for crash recovery and hibernation
	// (nil = neither).
	Store CheckpointStore
	// CheckpointEvery is the round cadence of durable checkpoints
	// (0 = 256; only meaningful with a Store).
	CheckpointEvery int
	// SessionTTL reaps terminal (done/failed) sessions idle this long
	// (0 = never). Reaped done jobs lose their checkpoint too: reaped
	// means gone.
	SessionTTL time.Duration
	// MaxResident is the janitor's residency watermark: GC hibernates
	// least-recently-touched idle sessions while more than this many are
	// resident (0 = MaxSessions, i.e. hibernation only under submission
	// pressure). Requires a Store.
	MaxResident int
	// GCInterval is the janitor cadence (0 = 30s; the janitor only runs
	// when SessionTTL or a Store is configured).
	GCInterval time.Duration

	// SubmitRate enables the token-bucket admission gate: sustained
	// non-deduped submissions per second (0 = unlimited). SubmitBurst is
	// the bucket size (0 = max(1, ceil(SubmitRate))).
	SubmitRate  float64
	SubmitBurst int

	// Faults is the failure-injection set production code consults
	// (nil = never fires).
	Faults *fault.Set

	// Registry receives the manager's metrics (counters, gauges, latency
	// and round-phase histograms); nil builds a private one. Share a
	// registry to expose several components on one /v1/metrics page.
	Registry *obs.Registry
	// Tracer records request/session spans (nil builds a bounded default
	// named "popserve"). The transport's trace middleware and the
	// /v1/trace/{id} endpoint read it.
	Tracer *obs.Tracer
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.NumCPU()
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.StepQuantum <= 0 {
		c.StepQuantum = 64
	}
	if c.SessionWorkers <= 0 {
		c.SessionWorkers = 1
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 256
	}
	if c.MaxResident <= 0 || c.MaxResident > c.MaxSessions {
		c.MaxResident = c.MaxSessions
	}
	if c.GCInterval <= 0 {
		c.GCInterval = 30 * time.Second
	}
	return c
}

// Status is a job's lifecycle state.
type Status string

// Job statuses. A done job revives to running if more rounds are requested
// (manual stepping past the original target).
const (
	// StatusQueued: submitted, session not yet built or waiting for its
	// first pool slot.
	StatusQueued Status = "queued"
	// StatusRunning: the runner holds (or is acquiring) a pool slot.
	StatusRunning Status = "running"
	// StatusPaused: parked by request; Resume or Step continues it.
	StatusPaused Status = "paused"
	// StatusDone: the requested rounds have run to completion.
	StatusDone Status = "done"
	// StatusFailed: the session could not be built or restored, or its
	// runner panicked (Error carries the recovered panic and stack).
	StatusFailed Status = "failed"
)

// Sentinel errors the transport maps to distinct status codes (the mapping
// itself lives in api.go's statusOf).
var (
	// ErrClosed: the manager is draining; no new work is admitted.
	ErrClosed = errors.New("serve: manager closed")
	// ErrHibernated: a stale job handle whose session was hibernated or
	// reaped; re-resolve through Manager.Get.
	ErrHibernated = errors.New("serve: session hibernated; re-fetch it")
	// ErrInvalidSpec: the submission's spec cannot describe a simulation.
	ErrInvalidSpec = errors.New("serve: invalid spec")
	// ErrSessionFailed: the session is terminal-failed.
	ErrSessionFailed = errors.New("serve: session failed")
	// ErrUnknownSession: the ID was never seen by this manager.
	ErrUnknownSession = errors.New("serve: unknown session")
	// ErrSessionExpired: the ID was valid but its session was reaped after
	// SessionTTL — durably gone, distinguishable from a typo.
	ErrSessionExpired = errors.New("serve: session expired (reaped after TTL)")
	// ErrNoResult: no job answers for the requested spec hash.
	ErrNoResult = errors.New("serve: no result for spec hash")
	// ErrResultPending: the spec hash is known but its run is not done.
	ErrResultPending = errors.New("serve: result not ready")
)

// ThrottledError reports admission-gate rejection with a backoff hint.
type ThrottledError struct {
	// RetryAfter estimates when a token will be available.
	RetryAfter time.Duration
}

// Error implements error.
func (e *ThrottledError) Error() string {
	return fmt.Sprintf("serve: submission rate limited, retry after %s", e.RetryAfter.Round(time.Millisecond))
}

// errFull reports a registry at capacity with nothing hibernatable.
var errFull = errors.New("serve: session limit reached")

// Metrics is a point-in-time snapshot of the manager's counters.
type Metrics struct {
	// Submissions counts every Submit and Restore call accepted.
	Submissions uint64 `json:"submissions"`
	// SimRuns counts jobs whose engine was actually built and run
	// (dedupe misses plus restores, recoveries, and revivals; failed
	// builds excluded): the number the result cache is measured against.
	SimRuns uint64 `json:"sim_runs"`
	// DedupeHits counts submissions answered by an existing job.
	DedupeHits uint64 `json:"dedupe_hits"`
	// Completed and Failed count terminal transitions; Panics the subset
	// of failures that were recovered runner panics.
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Panics    uint64 `json:"panics,omitempty"`
	// Throttled counts submissions rejected by the admission gate.
	Throttled uint64 `json:"throttled,omitempty"`
	// Checkpoint/recovery/eviction counters.
	Checkpoints      uint64 `json:"checkpoints,omitempty"`
	CheckpointErrors uint64 `json:"checkpoint_errors,omitempty"`
	Recovered        uint64 `json:"recovered,omitempty"`
	Hibernated       uint64 `json:"hibernated,omitempty"`
	Revived          uint64 `json:"revived,omitempty"`
	Reaped           uint64 `json:"reaped,omitempty"`
	// Sessions is the resident registry size; ActiveRunners the jobs
	// currently holding or awaiting a pool slot.
	Sessions      int `json:"sessions"`
	ActiveRunners int `json:"active_runners"`
}

// Readiness is the load-balancer view of the manager's capacity.
type Readiness struct {
	// Ready: accepting work (not draining, registry below cap, admission
	// gate open). Saturation of the slot pool alone does not flip Ready —
	// runs queue — but it is reported so balancers can weigh replicas.
	Ready bool `json:"ready"`
	// Draining: Shutdown/Close has begun.
	Draining bool `json:"draining"`
	// SlotsInUse / Slots describe step-pool saturation.
	SlotsInUse int `json:"slots_in_use"`
	Slots      int `json:"slots"`
	// Sessions / MaxSessions describe registry pressure.
	Sessions    int `json:"sessions"`
	MaxSessions int `json:"max_sessions"`
	// AdmissionOpen: the token bucket has a token (always true without a
	// gate).
	AdmissionOpen bool `json:"admission_open"`
}

// JobInfo is the JSON view of one job.
type JobInfo struct {
	ID     string       `json:"id"`
	Status Status       `json:"status"`
	Spec   popstab.Spec `json:"spec"`
	// Hash is the spec's content address (the /v1/results key); empty for
	// snapshot restores, whose state is not content-addressed.
	Hash         string               `json:"hash,omitempty"`
	TargetRounds uint64               `json:"target_rounds"`
	Restored     bool                 `json:"restored,omitempty"`
	Stats        popstab.SessionStats `json:"stats"`
	Error        string               `json:"error,omitempty"`
}

// Manager multiplexes sessions; create with NewManager. Safe for
// concurrent use.
type Manager struct {
	cfg    Config
	slots  chan struct{}
	store  CheckpointStore
	faults *fault.Set
	gate   *TokenBucket

	mu         sync.Mutex
	jobs       map[string]*Job
	byKey      map[string]*Job // dedupe cache: spec hash + target → job
	hibernated map[string]bool // ids spilled to the store, revivable by Get
	// reaped tombstones let Lookup answer 410 Gone (expired) instead of 404
	// (never existed) for IDs the janitor removed. Bounded: reapedOrder is a
	// FIFO ring of maxReapedTombstones entries.
	reaped      map[string]bool
	reapedOrder []string
	nextID      uint64
	closed      bool

	// shutdownCh is closed when draining begins: runners blocked on slot
	// acquisition and SSE streams select on it.
	shutdownCh chan struct{}
	// runners tracks live runner goroutines so Shutdown can wait for the
	// pool to quiesce before checkpointing.
	runners sync.WaitGroup
	// janitorStop ends the GC goroutine (nil when no janitor runs).
	janitorStop chan struct{}

	// obsPlane carries the registry-backed counters (named exactly as the
	// atomic fields they replaced), latency histograms, and tracer; active
	// stays a plain atomic because it is an up/down int the gauge function
	// reads directly.
	obsPlane
	active atomic.Int64
}

// NewManager builds a manager with cfg's pool bounds and failure model.
func NewManager(cfg Config) *Manager {
	raw := cfg
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer("popserve", 0, 0)
	}
	m := &Manager{
		cfg:        cfg,
		slots:      make(chan struct{}, cfg.MaxConcurrent),
		store:      cfg.Store,
		faults:     cfg.Faults,
		jobs:       make(map[string]*Job),
		byKey:      make(map[string]*Job),
		hibernated: make(map[string]bool),
		reaped:     make(map[string]bool),
		shutdownCh: make(chan struct{}),
		obsPlane:   newObsPlane(reg, tracer),
	}
	m.registerGauges()
	if cfg.SubmitRate > 0 {
		m.gate = NewTokenBucket(cfg.SubmitRate, cfg.SubmitBurst)
	}
	// The janitor only runs when it has work: TTL reaping or a residency
	// watermark below the registry cap.
	if cfg.SessionTTL > 0 || (m.store != nil && raw.MaxResident > 0) {
		m.janitorStop = make(chan struct{})
		go m.janitor()
	}
	return m
}

// Job is one managed session. Mutable fields behind mu; the runner
// goroutine and the transport handlers synchronize only through it.
type Job struct {
	m *Manager

	// Immutable after creation.
	id       string
	spec     popstab.Spec
	key      string // dedupe key at registration; "" when never cached
	restored bool   // built from a snapshot (restore, recovery, revival)
	// trace is the submission's trace ID (extracted from the request
	// context): the runner's build/run spans land under it, correlating
	// server-side work with the submitting request across the fleet. Empty
	// for recovered/revived jobs — their submitter is long gone.
	trace string

	// lastTouch (unix nanos) orders hibernation/reaping candidates without
	// taking j.mu.
	lastTouch atomic.Int64

	mu       sync.Mutex
	cond     *sync.Cond
	sess     *popstab.Session
	snapshot []byte // restore source; nil for fresh jobs, consumed by build
	status   Status
	err      error
	stats    popstab.SessionStats
	target   uint64 // total rounds requested so far
	pending  uint64 // rounds not yet run
	paused   bool
	// stepping: the runner is inside a step quantum with j.mu released;
	// snapshot/hibernation wait for it to clear (cond-signaled).
	stepping bool
	// snapshotters counts Snapshot calls waiting for the quantum to park.
	// The runner yields between quanta while it is nonzero — without the
	// yield a waiter woken by the end-of-quantum broadcast races the
	// runner's immediate re-lock and loses essentially every time,
	// livelocking the snapshot until the job finishes.
	snapshotters int
	// parted: hibernated or reaped — no longer resident; the runner exits
	// and stale handles error with ErrHibernated.
	parted bool
	// sinceCkpt counts rounds since the last durable checkpoint.
	sinceCkpt uint64
	// countedDone suppresses double-counting Completed across revivals.
	countedDone bool
	// phase mirrors the session's cumulative RoundStats as of the last
	// completed quantum: the SSE stream and RoundStats() read it without
	// touching the session (which only the runner may drive).
	phase   popstab.RoundStats
	subs    map[uint64]chan popstab.SessionStats
	nextSub uint64

	// done is closed on the FIRST arrival at StatusDone (or StatusFailed)
	// and stays closed: the completion signal batch clients wait on.
	done     chan struct{}
	doneOnce sync.Once
}

// touch records an access for LRU ordering.
func (j *Job) touch() { j.lastTouch.Store(time.Now().UnixNano()) }

// evict removes the job from the dedupe cache so future identical
// submissions start a fresh run (no-op for never-cached jobs). j.key is
// immutable and j.mu is NOT held here; the only nested lock order in the
// package remains j.mu → m.mu.
func (j *Job) evict() {
	if j.key == "" {
		return
	}
	j.m.mu.Lock()
	if j.m.byKey[j.key] == j {
		delete(j.m.byKey, j.key)
	}
	j.m.mu.Unlock()
}

// cachedLocked reports whether j currently answers for its dedupe key.
// Caller may hold j.mu (j.mu → m.mu is the sanctioned order).
func (m *Manager) cachedLocked(j *Job) bool {
	if j.key == "" {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byKey[j.key] == j
}

// jobKey is the dedupe identity of a fresh submission.
func jobKey(hash string, rounds uint64) string {
	return fmt.Sprintf("%s/%d", hash, rounds)
}

// Submit registers (or dedupes) a job that runs spec for rounds rounds.
// rounds = 0 opens an idle session for manual stepping. The returned bool
// reports a dedupe hit: the job was already running or complete and the
// caller attached to it. Non-deduped submissions pass the admission gate
// (*ThrottledError on rejection) and, at registry capacity with a Store,
// may hibernate an idle session to make room.
func (m *Manager) Submit(ctx context.Context, spec popstab.Spec, rounds uint64) (*Job, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	defer func(t time.Time) { m.submitSeconds.Observe(time.Since(t).Seconds()) }(time.Now())
	hash, err := spec.Hash()
	if err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	key := jobKey(hash, rounds)

	for attempt := 0; ; attempt++ {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return nil, false, ErrClosed
		}
		if j, ok := m.byKey[key]; ok {
			m.submissions.Add(1)
			m.dedupeHits.Add(1)
			m.mu.Unlock()
			j.touch()
			return j, true, nil
		}
		if len(m.jobs) >= m.cfg.MaxSessions {
			m.mu.Unlock()
			// Capacity pressure: spill the least-recently-touched idle
			// session to the store and retry once.
			if attempt == 0 && m.hibernateOne() {
				continue
			}
			return nil, false, fmt.Errorf("%w (%d)", errFull, m.cfg.MaxSessions)
		}
		if retry, ok := m.admitLocked(); !ok {
			m.mu.Unlock()
			m.throttled.Add(1)
			return nil, false, &ThrottledError{RetryAfter: retry}
		}
		j := m.newJobLocked(spec, rounds, nil, key, false, obs.TraceID(ctx))
		m.byKey[key] = j
		m.mu.Unlock()
		return j, false, nil
	}
}

// admitLocked consults the admission gate (caller holds m.mu).
func (m *Manager) admitLocked() (time.Duration, bool) {
	if m.gate == nil {
		return 0, true
	}
	return m.gate.Admit(time.Now())
}

// Restore registers a job that resumes the given session snapshot under
// spec and then runs rounds more rounds. Restored jobs bypass the dedupe
// cache (their state is not derivable from the spec alone) but not the
// admission gate. paused parks the job on arrival — the coordinator uses
// this to migrate a paused session without racing rounds on the new host.
func (m *Manager) Restore(ctx context.Context, spec popstab.Spec, snapshot []byte, rounds uint64, paused bool) (*Job, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	defer func(t time.Time) { m.submitSeconds.Observe(time.Since(t).Seconds()) }(time.Now())
	if len(snapshot) == 0 {
		return nil, fmt.Errorf("%w: empty snapshot", ErrInvalidSpec)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if len(m.jobs) >= m.cfg.MaxSessions {
		return nil, fmt.Errorf("%w (%d)", errFull, m.cfg.MaxSessions)
	}
	if retry, ok := m.admitLocked(); !ok {
		m.throttled.Add(1)
		return nil, &ThrottledError{RetryAfter: retry}
	}
	return m.newJobLocked(spec, rounds, snapshot, "", paused, obs.TraceID(ctx)), nil
}

// newJobLocked allocates, registers, and starts a job. Caller holds m.mu
// and has verified capacity.
func (m *Manager) newJobLocked(spec popstab.Spec, rounds uint64, snapshot []byte, key string, paused bool, trace string) *Job {
	// Sessions inherit the manager's worker setting unless the spec pins
	// its own; either way the trajectory is identical.
	if spec.Workers == 0 {
		spec.Workers = m.cfg.SessionWorkers
	}
	m.nextID++
	j := &Job{
		m:        m,
		id:       fmt.Sprintf("s-%06d", m.nextID),
		spec:     spec,
		key:      key,
		restored: snapshot != nil,
		trace:    trace,
		snapshot: snapshot,
		target:   rounds,
		status:   StatusQueued,
		pending:  rounds,
		paused:   paused,
		subs:     make(map[uint64]chan popstab.SessionStats),
		done:     make(chan struct{}),
	}
	j.cond = sync.NewCond(&j.mu)
	j.touch()
	m.jobs[j.id] = j
	m.submissions.Add(1)
	m.runners.Add(1)
	go j.run()
	return j
}

// Get looks a job up by ID, transparently reviving a hibernated one from
// the checkpoint store.
func (m *Manager) Get(id string) (*Job, bool) {
	j, err := m.Lookup(id)
	return j, err == nil
}

// Lookup resolves an ID like Get but classifies the miss: ErrSessionExpired
// for an ID the janitor reaped after its TTL (the transport answers 410
// Gone), ErrUnknownSession for an ID never seen here (404) — so a sweep
// client can tell an expired session from a typo.
func (m *Manager) Lookup(id string) (*Job, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	hib := !ok && m.hibernated[id]
	expired := !ok && !hib && m.reaped[id]
	m.mu.Unlock()
	if ok {
		j.touch()
		return j, nil
	}
	if hib && m.store != nil {
		if j, ok := m.revive(id); ok {
			return j, nil
		}
	}
	if expired {
		return nil, fmt.Errorf("%w: %s", ErrSessionExpired, id)
	}
	return nil, fmt.Errorf("%w: %s", ErrUnknownSession, id)
}

// maxReapedTombstones bounds the 410-Gone memory: the oldest tombstones
// degrade to 404 once the ring wraps.
const maxReapedTombstones = 4096

// recordReaped tombstones a reaped ID (caller does NOT hold m.mu).
func (m *Manager) recordReaped(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.reaped[id] {
		return
	}
	if len(m.reapedOrder) >= maxReapedTombstones {
		delete(m.reaped, m.reapedOrder[0])
		m.reapedOrder = m.reapedOrder[1:]
	}
	m.reaped[id] = true
	m.reapedOrder = append(m.reapedOrder, id)
}

// List returns every resident job's info, ordered by ID.
func (m *Manager) List() []JobInfo {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]JobInfo, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Info())
	}
	// Insertion sort by id; registries are small and ids are ordered.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].ID < out[k-1].ID; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Metrics snapshots the counters.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	sessions := len(m.jobs)
	m.mu.Unlock()
	return Metrics{
		Submissions:      m.submissions.Value(),
		SimRuns:          m.simRuns.Value(),
		DedupeHits:       m.dedupeHits.Value(),
		Completed:        m.completed.Value(),
		Failed:           m.failed.Value(),
		Panics:           m.panics.Value(),
		Throttled:        m.throttled.Value(),
		Checkpoints:      m.checkpoints.Value(),
		CheckpointErrors: m.ckptErrors.Value(),
		Recovered:        m.recovered.Value(),
		Hibernated:       m.hibernations.Value(),
		Revived:          m.revivals.Value(),
		Reaped:           m.reaps.Value(),
		Sessions:         sessions,
		ActiveRunners:    int(m.active.Load()),
	}
}

// ResultByHash resolves the content-addressed result store: among the jobs
// currently answering for dedupe keys with the given spec-hash prefix, the
// completed one with the most rounds wins. ErrResultPending when the hash is
// known but still running; ErrNoResult when nothing answers for it. This is
// the worker half of the fleet result store — the coordinator keeps the
// hash index, the worker keeps the bytes.
func (m *Manager) ResultByHash(hash string) (*Job, error) {
	prefix := hash + "/"
	m.mu.Lock()
	var (
		best       *Job
		bestRounds uint64
		pending    bool
	)
	for key, j := range m.byKey {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		rounds, err := strconv.ParseUint(key[len(prefix):], 10, 64)
		if err != nil {
			continue
		}
		j.mu.Lock()
		done := j.status == StatusDone
		j.mu.Unlock()
		if !done {
			pending = true
			continue
		}
		if best == nil || rounds > bestRounds {
			best, bestRounds = j, rounds
		}
	}
	m.mu.Unlock()
	switch {
	case best != nil:
		best.touch()
		return best, nil
	case pending:
		return nil, fmt.Errorf("%w: %s", ErrResultPending, hash)
	default:
		return nil, fmt.Errorf("%w: %s", ErrNoResult, hash)
	}
}

// Readiness reports capacity for load balancers (the /readyz payload).
func (m *Manager) Readiness() Readiness {
	m.mu.Lock()
	sessions := len(m.jobs)
	closed := m.closed
	m.mu.Unlock()
	open := m.gate == nil || m.gate.Open(time.Now())
	return Readiness{
		Ready:         !closed && sessions < m.cfg.MaxSessions && open,
		Draining:      closed,
		SlotsInUse:    len(m.slots),
		Slots:         m.cfg.MaxConcurrent,
		Sessions:      sessions,
		MaxSessions:   m.cfg.MaxSessions,
		AdmissionOpen: open,
	}
}

// ShuttingDown is closed when draining begins; long-lived handlers (SSE
// streams) select on it so http.Server.Shutdown can complete.
func (m *Manager) ShuttingDown() <-chan struct{} { return m.shutdownCh }

// Close drains with no deadline: stop admissions, wake and wait out every
// runner, checkpoint live sessions. Equivalent to Shutdown(Background).
func (m *Manager) Close() { _ = m.Shutdown(context.Background()) }

// Shutdown drains gracefully: stop admissions, wake every runner and wait
// for in-flight quanta to park (runners exit within one quantum), then
// write a final checkpoint for every live session so a restarted manager
// can Recover them. Returns ctx.Err if the pool does not quiesce in time
// (sessions then checkpoint at their last cadence point instead).
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	first := !m.closed
	m.closed = true
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	if first {
		close(m.shutdownCh)
		if m.janitorStop != nil {
			close(m.janitorStop)
		}
	}
	for _, j := range jobs {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	}
	quiesced := make(chan struct{})
	go func() {
		m.runners.Wait()
		close(quiesced)
	}()
	select {
	case <-quiesced:
	case <-ctx.Done():
		return ctx.Err()
	}
	if m.store != nil {
		for _, j := range jobs {
			j.checkpointNow()
		}
	}
	return nil
}

// isClosed reports manager shutdown.
func (m *Manager) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// acquireSlot blocks for a pool slot, aborting on drain. The active gauge
// covers the wait (ActiveRunners = holding or awaiting).
func (m *Manager) acquireSlot() bool {
	m.active.Add(1)
	select {
	case m.slots <- struct{}{}:
		return true
	case <-m.shutdownCh:
		m.active.Add(-1)
		return false
	}
}

// releaseSlot returns a slot acquired by acquireSlot.
func (m *Manager) releaseSlot() {
	<-m.slots
	m.active.Add(-1)
}

// run is the job's runner goroutine: build (or restore) the session, then
// alternate between waiting for work and stepping one quantum under a pool
// slot. Panics in build or step are isolated into StatusFailed; the pool
// slot is provably returned (release is deferred around the recovering
// step call).
func (j *Job) run() {
	defer j.m.runners.Done()
	endBuild := j.m.tracer.Start(j.trace, "build")
	sess, err := j.buildSession()
	if err != nil {
		endBuild("session", j.id, "error", err.Error())
	} else {
		endBuild("session", j.id)
	}
	j.mu.Lock()
	if err != nil {
		j.failLocked(err)
		j.mu.Unlock()
		// A failed build must not keep answering for its (hash, rounds)
		// identity: evict so a retry runs instead of deduping onto the
		// corpse, and drop any checkpoint so recovery does not resurrect
		// the poison.
		j.evict()
		j.dropCheckpoint()
		return
	}
	// Counted here, after the constructor succeeded: SimRuns is "engines
	// actually run", so failed builds and corrupt restores don't inflate
	// the metric the dedupe verdict is measured against.
	j.m.simRuns.Add(1)
	j.sess = sess
	j.stats = sess.Stats()
	j.phase = sess.RoundStats()
	j.snapshot = nil // the restore source is consumed; don't hold the bytes
	j.mu.Unlock()

	for {
		j.mu.Lock()
		for j.pending == 0 || j.paused {
			if j.m.isClosed() || j.parted {
				j.mu.Unlock()
				return
			}
			if j.pending == 0 {
				j.finishLocked()
			} else {
				j.status = StatusPaused
				// Long-pollers (Job.Wait) observe transitions via the cond;
				// without this broadcast a waiter for "paused" sleeps until
				// an unrelated wakeup.
				j.cond.Broadcast()
			}
			j.cond.Wait()
		}
		if j.m.isClosed() || j.parted {
			j.mu.Unlock()
			return
		}
		n := uint64(j.m.cfg.StepQuantum)
		if n > j.pending {
			n = j.pending
		}
		j.status = StatusRunning
		j.mu.Unlock()

		// Yield to queued snapshotters before entering the next quantum:
		// they hold priority, otherwise the runner's immediate re-lock
		// wins the wakeup race every time and a waiter starves for the
		// rest of the run.
		j.mu.Lock()
		for j.snapshotters > 0 && !j.parted && !j.m.isClosed() {
			j.cond.Wait()
		}
		if j.m.isClosed() || j.parted {
			j.mu.Unlock()
			return
		}
		j.mu.Unlock()

		// Acquire the pool slot outside the job lock so control calls
		// (pause, snapshot of the pre-quantum state) stay responsive
		// while the pool is saturated; abort cleanly on drain.
		if !j.m.acquireSlot() {
			return
		}
		j.mu.Lock()
		j.stepping = true
		j.mu.Unlock()

		endRun := j.m.tracer.Start(j.trace, "run")
		tq := time.Now()
		stats, err := j.step(sess, n) // recovers panics; releases nothing
		j.m.stepSeconds.Observe(time.Since(tq).Seconds())
		endRun("session", j.id, "rounds", strconv.FormatUint(n, 10))
		// RoundStats is read on the runner goroutine (only it may touch the
		// session) and mirrored under j.mu for SSE/API readers; the quantum
		// delta feeds the per-phase histograms.
		roundStats := sess.RoundStats()

		j.mu.Lock()
		j.stepping = false
		phaseDelta := roundStats.Sub(j.phase)
		j.phase = roundStats
		if err != nil {
			j.failLocked(err)
			j.cond.Broadcast()
			j.mu.Unlock()
			j.m.releaseSlot()
			j.evict()
			j.dropCheckpoint()
			return
		}
		j.pending -= n
		j.sinceCkpt += n
		j.stats = stats
		j.publishLocked(stats)
		finished := j.pending == 0 && !j.paused
		if finished {
			j.finishLocked()
		}
		needCkpt := j.m.store != nil &&
			(j.sinceCkpt >= uint64(j.m.cfg.CheckpointEvery) || finished)
		j.cond.Broadcast()
		j.mu.Unlock()
		j.m.releaseSlot()
		j.m.observePhases(phaseDelta)

		if needCkpt {
			j.checkpointNow()
		}
	}
}

// buildSession constructs or restores the session, converting panics in
// the engine constructors into errors.
func (j *Job) buildSession() (sess *popstab.Session, err error) {
	defer func() {
		if r := recover(); r != nil {
			j.m.panics.Add(1)
			err = fmt.Errorf("serve: session build panic: %v\n%s", r, debug.Stack())
		}
	}()
	if j.snapshot != nil {
		return popstab.RestoreSessionFromSpec(j.spec, j.snapshot)
	}
	return popstab.NewSessionFromSpec(j.spec)
}

// step advances one quantum with panic isolation: a panic (organic or
// injected via fault.RunnerPanic) is recovered into an error carrying the
// stack, so the caller always regains control — and with it the pool slot.
func (j *Job) step(sess *popstab.Session, n uint64) (stats popstab.SessionStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			j.m.panics.Add(1)
			err = fmt.Errorf("serve: runner panic: %v\n%s", r, debug.Stack())
		}
	}()
	// Latency injection (armed with a delay, no error) and failure
	// injection share the SlowStep/RunnerPanic consultation points.
	if ferr := j.m.faults.Fire(fault.SlowStep); ferr != nil {
		return stats, ferr
	}
	if ferr := j.m.faults.Fire(fault.RunnerPanic); ferr != nil {
		panic(ferr)
	}
	return sess.Step(int(n)), nil
}

// checkpointNow captures and durably writes the job's checkpoint. Called
// by the runner between quanta, by Shutdown after the pool quiesced, and
// by hibernation — never concurrently with a step (stepping is false under
// j.mu in all three). Write failures are counted, not fatal: the previous
// checkpoint remains intact (FSStore renames atomically), so recovery
// degrades to an older bit-identical resume point.
func (j *Job) checkpointNow() {
	if j.m.store == nil {
		return
	}
	if err := j.m.faults.Fire(fault.SnapshotEncode); err != nil {
		j.m.ckptErrors.Add(1)
		return
	}
	j.mu.Lock()
	if j.sess == nil || j.status == StatusFailed || j.parted {
		j.mu.Unlock()
		return
	}
	cp := Checkpoint{
		ID:      j.id,
		Spec:    j.spec,
		Target:  j.target,
		Pending: j.pending,
		Paused:  j.paused,
		Dedupe:  j.m.cachedLocked(j),
		Snapshot: j.m.observeSnapshot(func() []byte {
			return j.sess.Snapshot()
		}),
	}
	j.sinceCkpt = 0
	j.mu.Unlock()
	if err := j.m.store.Put(cp); err != nil {
		j.m.ckptErrors.Add(1)
		return
	}
	j.m.checkpoints.Add(1)
}

// dropCheckpoint removes the job's durable record (failed jobs are
// terminal; a retry is a fresh submission, not a resurrection).
func (j *Job) dropCheckpoint() {
	if j.m.store != nil {
		_ = j.m.store.Delete(j.id)
	}
}

// Recover re-registers every checkpointed job from the store and resumes
// its outstanding rounds: the startup half of crash safety. Jobs that held
// their dedupe identity at checkpoint time rejoin the cache. Returns the
// number of jobs recovered.
func (m *Manager) Recover() (int, error) {
	if m.store == nil {
		return 0, errors.New("serve: no checkpoint store configured")
	}
	cps, err := m.store.List()
	if err != nil {
		return 0, err
	}
	n := 0
	m.mu.Lock()
	for _, cp := range cps {
		if m.closed {
			break
		}
		if _, ok := m.jobs[cp.ID]; ok {
			continue
		}
		m.registerCheckpointLocked(cp)
		n++
	}
	m.mu.Unlock()
	m.recovered.Add(uint64(n))
	return n, nil
}

// revive rebuilds one hibernated job from the store on access.
func (m *Manager) revive(id string) (*Job, bool) {
	cp, ok, err := m.store.Get(id)
	if err != nil || !ok {
		return nil, false
	}
	m.mu.Lock()
	if j, ok := m.jobs[id]; ok { // racing revival won
		m.mu.Unlock()
		j.touch()
		return j, true
	}
	if m.closed {
		m.mu.Unlock()
		return nil, false
	}
	j := m.registerCheckpointLocked(cp)
	m.mu.Unlock()
	m.revivals.Add(1)
	return j, true
}

// registerCheckpointLocked builds a job from a checkpoint under its
// original ID and starts its runner. Caller holds m.mu. Workers is a
// serving-layer throughput knob excluded from the simulation's identity,
// so the recovering manager imposes its own setting — recovery routinely
// crosses worker counts at the kill boundary and the continuation is
// bit-identical regardless.
func (m *Manager) registerCheckpointLocked(cp Checkpoint) *Job {
	spec := cp.Spec
	spec.Workers = m.cfg.SessionWorkers
	j := &Job{
		m:        m,
		id:       cp.ID,
		spec:     spec,
		restored: true,
		snapshot: cp.Snapshot,
		target:   cp.Target,
		status:   StatusQueued,
		pending:  cp.Pending,
		paused:   cp.Paused,
		// Already-terminal checkpoints re-finish without re-counting.
		countedDone: cp.Pending == 0,
		subs:        make(map[uint64]chan popstab.SessionStats),
		done:        make(chan struct{}),
	}
	j.cond = sync.NewCond(&j.mu)
	j.touch()
	if cp.Dedupe {
		if hash, err := cp.Spec.Hash(); err == nil {
			key := jobKey(hash, cp.Target)
			if m.byKey[key] == nil {
				j.key = key
				m.byKey[key] = j
			}
		}
	}
	m.jobs[j.id] = j
	delete(m.hibernated, j.id)
	// Keep fresh IDs ahead of every recovered one.
	var seq uint64
	if _, err := fmt.Sscanf(cp.ID, "s-%d", &seq); err == nil && seq > m.nextID {
		m.nextID = seq
	}
	m.runners.Add(1)
	go j.run()
	return j
}

// finishLocked marks the job done (idempotent) and signals completion.
// Completion counts as a touch: the TTL clock starts when the run settles,
// not when it was submitted.
func (j *Job) finishLocked() {
	j.touch()
	if j.status != StatusDone {
		j.status = StatusDone
		if !j.countedDone {
			j.countedDone = true
			j.m.completed.Add(1)
		}
	}
	j.doneOnce.Do(func() { close(j.done) })
}

// failLocked marks the job failed and signals completion.
func (j *Job) failLocked(err error) {
	j.touch()
	j.status = StatusFailed
	j.err = err
	j.m.failed.Add(1)
	j.doneOnce.Do(func() { close(j.done) })
	j.cond.Broadcast()
}

// publishLocked fans stats out to subscribers, dropping events a slow
// subscriber has no buffer for (streams are a lossy progress feed; the
// authoritative state is Info).
func (j *Job) publishLocked(stats popstab.SessionStats) {
	for _, ch := range j.subs {
		select {
		case ch <- stats:
		default:
		}
	}
}

// ID returns the job's registry ID.
func (j *Job) ID() string { return j.id }

// Trace returns the trace ID the job was submitted under ("" when the
// submitter carried none, e.g. recovered jobs).
func (j *Job) Trace() string { return j.trace }

// RoundStats reports the session's cumulative per-phase cost counters as of
// the last completed quantum. Kept outside JobInfo/SessionStats on purpose:
// timings are host-local observability, while stats are deterministic
// simulation content compared bit-for-bit across hosts by the failover
// tests.
func (j *Job) RoundStats() popstab.RoundStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.phase
}

// Done returns a channel closed when the job first completes or fails.
func (j *Job) Done() <-chan struct{} { return j.done }

// Info snapshots the job's state.
func (j *Job) Info() JobInfo {
	j.touch()
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.infoLocked()
}

// infoLocked builds the JSON view; caller holds j.mu.
func (j *Job) infoLocked() JobInfo {
	info := JobInfo{
		ID:           j.id,
		Status:       j.status,
		Spec:         j.spec,
		TargetRounds: j.target,
		Restored:     j.restored,
		Stats:        j.stats,
	}
	if j.key != "" {
		info.Hash, _, _ = strings.Cut(j.key, "/")
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}

// Wait blocks — under ctx — until the job's status equals want or the job
// reaches a terminal state, and reports whether want was reached. A ctx
// expiry is a normal long-poll answer, not an error: the current info is
// returned with reached=false. This is the HTTP GET
// /v1/sessions/{id}/wait machinery, sharing the ctx-aware cond-broadcast
// pattern Snapshot uses (context.AfterFunc wakes the wait loop so it can
// observe the expiry).
func (j *Job) Wait(ctx context.Context, want Status) (JobInfo, bool, error) {
	j.touch()
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if j.parted {
			return JobInfo{}, false, ErrHibernated
		}
		reached := j.status == want
		terminal := j.status == StatusDone || j.status == StatusFailed
		if reached || terminal || ctx.Err() != nil || j.m.isClosed() {
			return j.infoLocked(), reached, nil
		}
		j.cond.Wait()
	}
}

// Step requests n more rounds (reviving a done job) and wakes the runner.
// Stepping mutates the job past the (hash, rounds) identity it was
// submitted under, so it is first evicted from the dedupe cache: future
// identical submissions must get a fresh run, not this job's moved-on
// state.
func (j *Job) Step(n uint64) error {
	if n == 0 {
		return errors.New("serve: step of 0 rounds")
	}
	j.touch()
	j.evict()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.parted {
		return ErrHibernated
	}
	if j.status == StatusFailed {
		return fmt.Errorf("%w: %v", ErrSessionFailed, j.err)
	}
	j.target += n
	j.pending += n
	if j.status == StatusDone {
		j.status = StatusQueued
	}
	j.cond.Broadcast()
	return nil
}

// Pause parks the job after at most one quantum.
func (j *Job) Pause() error {
	j.touch()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.parted {
		return ErrHibernated
	}
	if j.status == StatusFailed {
		return fmt.Errorf("%w: %v", ErrSessionFailed, j.err)
	}
	j.paused = true
	return nil
}

// Resume unparks a paused job.
func (j *Job) Resume() error {
	j.touch()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.parted {
		return ErrHibernated
	}
	if j.status == StatusFailed {
		return fmt.Errorf("%w: %v", ErrSessionFailed, j.err)
	}
	j.paused = false
	j.cond.Broadcast()
	return nil
}

// Snapshot serializes the session at a between-rounds boundary, waiting —
// under the caller's deadline — for any in-flight quantum to park, along
// with the spec needed to restore it.
func (j *Job) Snapshot(ctx context.Context) (popstab.Spec, []byte, error) {
	j.touch()
	// cond.Wait cannot select on ctx; a ctx-expiry callback broadcasts so
	// the wait loop re-checks ctx.Err.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()
	j.mu.Lock()
	defer j.mu.Unlock()
	// Register as a waiter: the runner yields between quanta while
	// snapshotters is nonzero (see Job.run), so this wait is bounded by
	// one quantum, not by the whole run. LIFO defers: the decrement runs
	// before the mutex is released.
	j.snapshotters++
	defer func() {
		j.snapshotters--
		j.cond.Broadcast()
	}()
	for j.stepping {
		if err := ctx.Err(); err != nil {
			return popstab.Spec{}, nil, err
		}
		j.cond.Wait()
	}
	if j.parted {
		return popstab.Spec{}, nil, ErrHibernated
	}
	if j.status == StatusFailed {
		return popstab.Spec{}, nil, fmt.Errorf("%w: %v", ErrSessionFailed, j.err)
	}
	if j.sess == nil {
		return popstab.Spec{}, nil, errors.New("serve: session still initializing")
	}
	return j.spec, j.m.observeSnapshot(func() []byte { return j.sess.Snapshot() }), nil
}

// Subscribe registers a stats feed with the given buffer (≥ 1) and returns
// it with an unsubscribe func. The channel receives one event per completed
// quantum, lossily; it is closed by unsubscribe, never by the publisher.
func (j *Job) Subscribe(buffer int) (<-chan popstab.SessionStats, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan popstab.SessionStats, buffer)
	j.mu.Lock()
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(ch)
		}
		j.mu.Unlock()
	}
}

// TokenBucket is a minimal token-bucket admission gate: rate tokens/second
// accruing up to burst. Exported so the coordinator (internal/cluster) can
// gate the fleet with the same mechanism that gates each worker.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// NewTokenBucket starts full; burst <= 0 defaults to ceil(rate) (min 1).
func NewTokenBucket(rate float64, burst int) *TokenBucket {
	if burst <= 0 {
		burst = int(math.Max(1, math.Ceil(rate)))
	}
	return &TokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: time.Now()}
}

// refillLocked advances the bucket to now.
func (b *TokenBucket) refillLocked(now time.Time) {
	if now.After(b.last) {
		b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
		b.last = now
	}
}

// Admit consumes one token, or reports how long until one accrues.
func (b *TokenBucket) Admit(now time.Time) (time.Duration, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if b.tokens >= 1 {
		b.tokens--
		return 0, true
	}
	return time.Duration((1 - b.tokens) / b.rate * float64(time.Second)), false
}

// Open reports token availability without consuming (the readiness probe).
func (b *TokenBucket) Open(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	return b.tokens >= 1
}
