// Package serve is the simulation-as-a-service layer: a job manager that
// multiplexes many steppable popstab.Sessions over a bounded worker pool,
// dedupes identical submissions through a canonical-config-hash cache, and
// streams per-step stats to subscribers. cmd/popserve exposes it over HTTP
// (submit / step / pause / resume / snapshot / SSE stream); the package
// itself is transport-agnostic so tests and examples drive it in-process.
//
// # Execution model
//
// Every job owns one goroutine (its runner) and one popstab.Session. The
// runner advances the session in quanta of Config.StepQuantum rounds; to
// run a quantum it first acquires a slot from the manager's bounded pool,
// so at most Config.MaxConcurrent sessions consume CPU at once while any
// number are open, paused, or parked between quanta — the inversion that
// turns the fire-and-forget round loop into a service. Between quanta the
// runner re-reads its control state, so pause, added step budget, and
// shutdown all take effect with at most one quantum of latency, and a
// snapshot can be cut at a true between-rounds boundary.
//
// # Dedupe
//
// Submissions are identified by (popstab.Spec.Hash, target rounds). The
// hash canonicalizes defaults and EXCLUDES Workers — simulation output is
// bit-identical across worker counts — so two users submitting the same
// experiment share one run and one result: the second submission attaches
// to the first job whatever state it is in. Metrics.SimRuns counts actual
// engine runs and Metrics.DedupeHits the submissions served without one;
// the load smoke (examples/serve) asserts on exactly these. Restored
// sessions (snapshot resumes) never join the cache: their state is not a
// pure function of the spec.
package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"popstab"
)

// Config parameterizes a Manager.
type Config struct {
	// MaxConcurrent bounds how many sessions step simultaneously
	// (0 = runtime.NumCPU()).
	MaxConcurrent int
	// MaxSessions bounds the registry; submissions beyond it fail
	// (0 = 4096). Completed jobs count — they are the result cache.
	MaxSessions int
	// StepQuantum is the number of rounds a runner advances per pool slot
	// (0 = 64): the latency bound on pause/snapshot/shutdown.
	StepQuantum int
	// SessionWorkers is the engine worker count per session (0 = 1; the
	// pool provides cross-session parallelism, so intra-session sharding
	// is usually left off).
	SessionWorkers int
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.NumCPU()
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4096
	}
	if c.StepQuantum <= 0 {
		c.StepQuantum = 64
	}
	if c.SessionWorkers <= 0 {
		c.SessionWorkers = 1
	}
	return c
}

// Status is a job's lifecycle state.
type Status string

// Job statuses. A done job revives to running if more rounds are requested
// (manual stepping past the original target).
const (
	// StatusQueued: submitted, session not yet built or waiting for its
	// first pool slot.
	StatusQueued Status = "queued"
	// StatusRunning: the runner holds (or is acquiring) a pool slot.
	StatusRunning Status = "running"
	// StatusPaused: parked by request; Resume or Step continues it.
	StatusPaused Status = "paused"
	// StatusDone: the requested rounds have run to completion.
	StatusDone Status = "done"
	// StatusFailed: the session could not be built or restored.
	StatusFailed Status = "failed"
)

// Metrics is a point-in-time snapshot of the manager's counters.
type Metrics struct {
	// Submissions counts every Submit and Restore call accepted.
	Submissions uint64 `json:"submissions"`
	// SimRuns counts jobs whose engine was actually built and run
	// (dedupe misses plus restores; failed builds excluded): the number
	// the result cache is measured against.
	SimRuns uint64 `json:"sim_runs"`
	// DedupeHits counts submissions answered by an existing job.
	DedupeHits uint64 `json:"dedupe_hits"`
	// Completed and Failed count terminal transitions.
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	// Sessions is the registry size; ActiveRunners the jobs currently
	// holding or awaiting a pool slot.
	Sessions      int `json:"sessions"`
	ActiveRunners int `json:"active_runners"`
}

// JobInfo is the JSON view of one job.
type JobInfo struct {
	ID           string               `json:"id"`
	Status       Status               `json:"status"`
	Spec         popstab.Spec         `json:"spec"`
	TargetRounds uint64               `json:"target_rounds"`
	Restored     bool                 `json:"restored,omitempty"`
	Stats        popstab.SessionStats `json:"stats"`
	Error        string               `json:"error,omitempty"`
}

// Manager multiplexes sessions; create with NewManager. Safe for
// concurrent use.
type Manager struct {
	cfg   Config
	slots chan struct{}

	mu     sync.Mutex
	jobs   map[string]*Job
	byKey  map[string]*Job // dedupe cache: spec hash + target → job
	nextID uint64
	closed bool

	submissions, simRuns, dedupeHits atomic.Uint64
	completed, failed                atomic.Uint64
	active                           atomic.Int64
}

// NewManager builds a manager with cfg's pool bounds.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	return &Manager{
		cfg:   cfg,
		slots: make(chan struct{}, cfg.MaxConcurrent),
		jobs:  make(map[string]*Job),
		byKey: make(map[string]*Job),
	}
}

// Job is one managed session. All fields behind mu; the runner goroutine
// and the transport handlers synchronize only through it.
type Job struct {
	m *Manager

	// Immutable after creation.
	id       string
	spec     popstab.Spec
	key      string // dedupe key; empty for restored jobs
	snapshot []byte // restore source; nil for fresh jobs
	target   uint64 // total rounds requested so far

	mu      sync.Mutex
	cond    *sync.Cond
	sess    *popstab.Session
	status  Status
	err     error
	stats   popstab.SessionStats
	pending uint64 // rounds not yet run
	paused  bool
	subs    map[uint64]chan popstab.SessionStats
	nextSub uint64

	// done is closed on the FIRST arrival at StatusDone (or StatusFailed)
	// and stays closed: the completion signal batch clients wait on.
	done     chan struct{}
	doneOnce sync.Once
}

// evict removes the job from the dedupe cache so future identical
// submissions start a fresh run (no-op for restored jobs, which were never
// cached). j.key is immutable and j.mu is NOT held here, so the only
// nested lock order in the package remains j.mu → m.mu (isClosed).
func (j *Job) evict() {
	if j.key == "" {
		return
	}
	j.m.mu.Lock()
	if j.m.byKey[j.key] == j {
		delete(j.m.byKey, j.key)
	}
	j.m.mu.Unlock()
}

// jobKey is the dedupe identity of a fresh submission.
func jobKey(hash string, rounds uint64) string {
	return fmt.Sprintf("%s/%d", hash, rounds)
}

// Submit registers (or dedupes) a job that runs spec for rounds rounds.
// rounds = 0 opens an idle session for manual stepping. The returned bool
// reports a dedupe hit: the job was already running or complete and the
// caller attached to it.
func (m *Manager) Submit(spec popstab.Spec, rounds uint64) (*Job, bool, error) {
	hash, err := spec.Hash()
	if err != nil {
		return nil, false, err
	}
	key := jobKey(hash, rounds)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, errors.New("serve: manager closed")
	}
	if j, ok := m.byKey[key]; ok {
		m.submissions.Add(1)
		m.dedupeHits.Add(1)
		return j, true, nil
	}
	j, err := m.newJobLocked(spec, rounds, nil, key)
	if err != nil {
		return nil, false, err
	}
	m.byKey[key] = j
	return j, false, nil
}

// Restore registers a job that resumes the given session snapshot under
// spec and then runs rounds more rounds. Restored jobs bypass the dedupe
// cache (their state is not derivable from the spec alone).
func (m *Manager) Restore(spec popstab.Spec, snapshot []byte, rounds uint64) (*Job, error) {
	if len(snapshot) == 0 {
		return nil, errors.New("serve: empty snapshot")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errors.New("serve: manager closed")
	}
	return m.newJobLocked(spec, rounds, snapshot, "")
}

// newJobLocked allocates, registers, and starts a job. Caller holds m.mu.
func (m *Manager) newJobLocked(spec popstab.Spec, rounds uint64, snapshot []byte, key string) (*Job, error) {
	if len(m.jobs) >= m.cfg.MaxSessions {
		return nil, fmt.Errorf("serve: session limit %d reached", m.cfg.MaxSessions)
	}
	// Sessions inherit the manager's worker setting unless the spec pins
	// its own; either way the trajectory is identical.
	if spec.Workers == 0 {
		spec.Workers = m.cfg.SessionWorkers
	}
	m.nextID++
	j := &Job{
		m:        m,
		id:       fmt.Sprintf("s-%06d", m.nextID),
		spec:     spec,
		key:      key,
		snapshot: snapshot,
		target:   rounds,
		status:   StatusQueued,
		pending:  rounds,
		subs:     make(map[uint64]chan popstab.SessionStats),
		done:     make(chan struct{}),
	}
	j.cond = sync.NewCond(&j.mu)
	m.jobs[j.id] = j
	m.submissions.Add(1)
	go j.run()
	return j, nil
}

// Get looks a job up by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// List returns every job's info, ordered by ID.
func (m *Manager) List() []JobInfo {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	out := make([]JobInfo, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Info())
	}
	// Insertion sort by id; registries are small and ids are ordered.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].ID < out[k-1].ID; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Metrics snapshots the counters.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	sessions := len(m.jobs)
	m.mu.Unlock()
	return Metrics{
		Submissions:   m.submissions.Load(),
		SimRuns:       m.simRuns.Load(),
		DedupeHits:    m.dedupeHits.Load(),
		Completed:     m.completed.Load(),
		Failed:        m.failed.Load(),
		Sessions:      sessions,
		ActiveRunners: int(m.active.Load()),
	}
}

// Close stops accepting submissions and wakes every runner to exit. Jobs
// park where they are; in-flight quanta finish.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	}
}

// run is the job's runner goroutine: build (or restore) the session, then
// alternate between waiting for work and stepping one quantum under a pool
// slot.
func (j *Job) run() {
	var (
		sess *popstab.Session
		err  error
	)
	if j.snapshot != nil {
		sess, err = popstab.RestoreSessionFromSpec(j.spec, j.snapshot)
	} else {
		sess, err = popstab.NewSessionFromSpec(j.spec)
	}
	j.mu.Lock()
	if err != nil {
		j.failLocked(err)
		j.mu.Unlock()
		// A failed build must not keep answering for its (hash, rounds)
		// identity: evict so a retry runs instead of deduping onto the
		// corpse.
		j.evict()
		return
	}
	// Counted here, after the constructor succeeded: SimRuns is "engines
	// actually run", so failed builds and corrupt restores don't inflate
	// the metric the dedupe verdict is measured against.
	j.m.simRuns.Add(1)
	j.sess = sess
	j.stats = sess.Stats()
	j.snapshot = nil // the restore source is consumed; don't hold the bytes
	j.mu.Unlock()

	for {
		j.mu.Lock()
		for j.pending == 0 || j.paused {
			if j.m.isClosed() {
				j.mu.Unlock()
				return
			}
			if j.pending == 0 {
				j.finishLocked()
			} else {
				j.status = StatusPaused
			}
			j.cond.Wait()
		}
		if j.m.isClosed() {
			j.mu.Unlock()
			return
		}
		n := uint64(j.m.cfg.StepQuantum)
		if n > j.pending {
			n = j.pending
		}
		j.status = StatusRunning
		j.mu.Unlock()

		// Acquire the pool slot outside the job lock so control calls
		// (pause, snapshot of the pre-quantum state) stay responsive
		// while the pool is saturated.
		j.m.active.Add(1)
		j.m.slots <- struct{}{}

		j.mu.Lock()
		stats := j.sess.Step(int(n))
		j.pending -= n
		j.stats = stats
		j.publishLocked(stats)
		if j.pending == 0 && !j.paused {
			j.finishLocked()
		}
		j.mu.Unlock()

		<-j.m.slots
		j.m.active.Add(-1)
	}
}

// isClosed reports manager shutdown.
func (m *Manager) isClosed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// finishLocked marks the job done (idempotent) and signals completion.
func (j *Job) finishLocked() {
	if j.status != StatusDone {
		j.status = StatusDone
		j.m.completed.Add(1)
	}
	j.doneOnce.Do(func() { close(j.done) })
}

// failLocked marks the job failed and signals completion.
func (j *Job) failLocked(err error) {
	j.status = StatusFailed
	j.err = err
	j.m.failed.Add(1)
	j.doneOnce.Do(func() { close(j.done) })
}

// publishLocked fans stats out to subscribers, dropping events a slow
// subscriber has no buffer for (streams are a lossy progress feed; the
// authoritative state is Info).
func (j *Job) publishLocked(stats popstab.SessionStats) {
	for _, ch := range j.subs {
		select {
		case ch <- stats:
		default:
		}
	}
}

// ID returns the job's registry ID.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job first completes or fails.
func (j *Job) Done() <-chan struct{} { return j.done }

// Info snapshots the job's state.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:           j.id,
		Status:       j.status,
		Spec:         j.spec,
		TargetRounds: j.target,
		Restored:     j.key == "",
		Stats:        j.stats,
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}

// Step requests n more rounds (reviving a done job) and wakes the runner.
// Stepping mutates the job past the (hash, rounds) identity it was
// submitted under, so it is first evicted from the dedupe cache: future
// identical submissions must get a fresh run, not this job's moved-on
// state.
func (j *Job) Step(n uint64) error {
	if n == 0 {
		return errors.New("serve: step of 0 rounds")
	}
	j.evict()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusFailed {
		return fmt.Errorf("serve: session failed: %w", j.err)
	}
	j.target += n
	j.pending += n
	if j.status == StatusDone {
		j.status = StatusQueued
	}
	j.cond.Broadcast()
	return nil
}

// Pause parks the job after at most one quantum.
func (j *Job) Pause() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusFailed {
		return fmt.Errorf("serve: session failed: %w", j.err)
	}
	j.paused = true
	return nil
}

// Resume unparks a paused job.
func (j *Job) Resume() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusFailed {
		return fmt.Errorf("serve: session failed: %w", j.err)
	}
	j.paused = false
	j.cond.Broadcast()
	return nil
}

// Snapshot serializes the session at a between-rounds boundary (it waits
// for any in-flight quantum) along with the spec needed to restore it.
func (j *Job) Snapshot() (popstab.Spec, []byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusFailed {
		return popstab.Spec{}, nil, fmt.Errorf("serve: session failed: %w", j.err)
	}
	if j.sess == nil {
		return popstab.Spec{}, nil, errors.New("serve: session still initializing")
	}
	return j.spec, j.sess.Snapshot(), nil
}

// Subscribe registers a stats feed with the given buffer (≥ 1) and returns
// it with an unsubscribe func. The channel receives one event per completed
// quantum, lossily; it is closed by unsubscribe, never by the publisher.
func (j *Job) Subscribe(buffer int) (<-chan popstab.SessionStats, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan popstab.SessionStats, buffer)
	j.mu.Lock()
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(ch)
		}
		j.mu.Unlock()
	}
}
