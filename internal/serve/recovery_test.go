package serve

import (
	"bytes"
	"context"
	"testing"
	"time"

	"popstab"
	"popstab/internal/fault"
)

// finalSnapshot fetches a done job's session snapshot — the bit-identity
// witness the golden tests compare.
func finalSnapshot(t *testing.T, j *Job) []byte {
	t.Helper()
	_, blob, err := j.Snapshot(context.Background())
	if err != nil {
		t.Fatalf("snapshot of %s: %v", j.ID(), err)
	}
	return blob
}

// referenceRun computes the uninterrupted run's final stats and snapshot.
func referenceRun(t *testing.T, spec popstab.Spec, rounds int) (popstab.SessionStats, []byte) {
	t.Helper()
	spec.Workers = 1
	sess, err := popstab.NewSessionFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	stats := sess.Step(rounds)
	return stats, sess.Snapshot()
}

// killManager abandons a manager the way SIGKILL would: admissions stop
// and runners exit at their next between-quantum check, but NO final
// checkpoint is written — the store holds whatever the round cadence last
// persisted. (An expired context makes Shutdown skip the final-checkpoint
// phase; an in-flight quantum finishing first is equivalent to the kill
// landing a few rounds later.)
func killManager(t *testing.T, m *Manager) {
	t.Helper()
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	_ = m.Shutdown(expired)
	// Wait for the pool to actually quiesce so the test's next manager
	// reads a settled store.
	if err := m.Shutdown(context.Background()); err != nil {
		t.Fatalf("drain after kill: %v", err)
	}
}

// waitCheckpointProgress polls the store until a checkpoint for the spec's
// job exists with Pending in (0, target) — a mid-run durable cut.
func waitCheckpointProgress(t *testing.T, store CheckpointStore, id string) {
	t.Helper()
	if !eventually(func() bool {
		cp, ok, err := store.Get(id)
		return err == nil && ok && cp.Pending > 0 && cp.Pending < cp.Target
	}) {
		t.Fatalf("no mid-run checkpoint for %s appeared", id)
	}
}

// TestCrashRecoveryGoldenBitIdentical is the acceptance-criteria golden
// test: a SIGKILL-equivalent stop mid-run, rehydration from the filesystem
// CheckpointStore under a DIFFERENT worker count, and the continued run's
// final stats AND final session snapshot are byte-identical to an
// uninterrupted run.
func TestCrashRecoveryGoldenBitIdentical(t *testing.T) {
	const rounds = 288
	spec := popstab.Spec{N: 4096, Tinner: 24, Seed: 41, Adversary: "delete-random", K: 1}
	refStats, refSnap := referenceRun(t, spec, rounds)

	for _, workers := range []struct{ before, after int }{{1, 2}, {2, 1}} {
		store, err := NewFSStore(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		// Tight cadence so a mid-run checkpoint lands quickly.
		a := NewManager(Config{
			MaxConcurrent: 2, StepQuantum: 16, SessionWorkers: workers.before,
			Store: store, CheckpointEvery: 32,
		})
		j, _, err := a.Submit(context.Background(), spec, rounds)
		if err != nil {
			t.Fatal(err)
		}
		waitCheckpointProgress(t, store, j.ID())
		killManager(t, a)

		// The replacement process: same store, different worker count.
		b := NewManager(Config{
			MaxConcurrent: 2, StepQuantum: 16, SessionWorkers: workers.after,
			Store: store, CheckpointEvery: 32,
		})
		n, err := b.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("recovered %d jobs, want 1", n)
		}
		r, ok := b.Get(j.ID())
		if !ok {
			t.Fatalf("recovered job %s not resolvable", j.ID())
		}
		waitDone(t, r)
		info := r.Info()
		if info.Status != StatusDone {
			t.Fatalf("recovered job finished %s: %s", info.Status, info.Error)
		}
		if info.Stats != refStats {
			t.Fatalf("workers %d->%d: recovered stats diverged:\n got %+v\nwant %+v",
				workers.before, workers.after, info.Stats, refStats)
		}
		if !bytes.Equal(finalSnapshot(t, r), refSnap) {
			t.Fatalf("workers %d->%d: recovered final snapshot differs from uninterrupted run",
				workers.before, workers.after)
		}
		b.Close()
	}
}

// TestRecoveryUnderCheckpointWriteFaults pins the degraded-write invariant:
// with checkpoint writes failing (crash mid-write after the first durable
// cut), recovery falls back to an OLDER checkpoint and the continuation is
// still bit-identical.
func TestRecoveryUnderCheckpointWriteFaults(t *testing.T) {
	const rounds = 288
	spec := popstab.Spec{N: 4096, Tinner: 24, Seed: 43}
	refStats, refSnap := referenceRun(t, spec, rounds)

	store, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Attached unarmed up front: the set itself is concurrency-safe, so
	// arming mid-run (below) needs no store mutation.
	faults := fault.NewSet()
	store.Faults = faults
	a := NewManager(Config{
		MaxConcurrent: 1, StepQuantum: 16, Store: store, CheckpointEvery: 32,
	})
	j, _, err := a.Submit(context.Background(), spec, rounds)
	if err != nil {
		t.Fatal(err)
	}
	waitCheckpointProgress(t, store, j.ID())
	cp, _, _ := store.Get(j.ID())

	// Every further durable write crashes mid-rename.
	faults.Arm(fault.CheckpointWrite, -1, nil)
	// Let the run progress past the surviving checkpoint, then kill.
	if !eventually(func() bool { return j.Info().Stats.Round > cp.Target-cp.Pending }) {
		t.Fatal("run made no progress past the surviving checkpoint")
	}
	killManager(t, a)
	if faults.Fired(fault.CheckpointWrite) == 0 {
		t.Fatal("checkpoint-write fault never fired; the scenario is vacuous")
	}
	faults.Disarm(fault.CheckpointWrite)

	surviving, ok, err := store.Get(j.ID())
	if !ok || err != nil {
		t.Fatalf("surviving checkpoint lost: ok=%v err=%v", ok, err)
	}
	if surviving.Pending != cp.Pending {
		t.Fatalf("surviving checkpoint advanced (pending %d -> %d) despite armed write fault",
			cp.Pending, surviving.Pending)
	}

	b := NewManager(Config{MaxConcurrent: 1, StepQuantum: 16, Store: store})
	if _, err := b.Recover(); err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	r, ok := b.Get(j.ID())
	if !ok {
		t.Fatal("recovered job not resolvable")
	}
	waitDone(t, r)
	if info := r.Info(); info.Stats != refStats {
		t.Fatalf("recovery from stale checkpoint diverged:\n got %+v\nwant %+v", info.Stats, refStats)
	}
	if !bytes.Equal(finalSnapshot(t, r), refSnap) {
		t.Fatal("recovery from stale checkpoint: final snapshot differs")
	}
}

// TestGracefulShutdownCheckpointsAndResumes is the SIGTERM path: Shutdown
// checkpoints live sessions (including a paused one, which must come back
// paused), and a new manager resumes them to the bit-identical end state.
func TestGracefulShutdownCheckpointsAndResumes(t *testing.T) {
	const rounds = 288
	spec := popstab.Spec{N: 4096, Tinner: 24, Seed: 47}
	refStats, _ := referenceRun(t, spec, rounds)

	store := NewMemStore()
	a := NewManager(Config{MaxConcurrent: 2, StepQuantum: 16, Store: store, CheckpointEvery: 1 << 20})
	j, _, err := a.Submit(context.Background(), spec, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if !eventually(func() bool { return j.Info().Stats.Round > 0 }) {
		t.Fatal("job made no progress")
	}
	if err := j.Pause(); err != nil {
		t.Fatal(err)
	}
	if !eventually(func() bool { return j.Info().Status == StatusPaused }) {
		t.Fatal("job did not park")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := a.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	cp, ok, err := store.Get(j.ID())
	if !ok || err != nil {
		t.Fatalf("shutdown wrote no checkpoint: ok=%v err=%v", ok, err)
	}
	if !cp.Paused || cp.Pending == 0 {
		t.Fatalf("checkpoint lost the parked state: %+v", cp)
	}

	b := NewManager(Config{MaxConcurrent: 2, StepQuantum: 16, Store: store})
	defer b.Close()
	if _, err := b.Recover(); err != nil {
		t.Fatal(err)
	}
	r, ok := b.Get(j.ID())
	if !ok {
		t.Fatal("recovered job not resolvable")
	}
	// Pausedness survived the restart.
	time.Sleep(50 * time.Millisecond)
	if info := r.Info(); info.Status == StatusDone {
		t.Fatalf("paused job ran to completion on its own: %+v", info)
	}
	if err := r.Resume(); err != nil {
		t.Fatal(err)
	}
	waitDone(t, r)
	if info := r.Info(); info.Stats != refStats {
		t.Fatalf("post-restart continuation diverged:\n got %+v\nwant %+v", info.Stats, refStats)
	}
}

// TestRecoveredJobRejoinsDedupe pins cache coherence across restarts: a
// job that answered for its (hash, rounds) identity rejoins the dedupe
// cache after recovery, so identical submissions attach instead of
// rerunning.
func TestRecoveredJobRejoinsDedupe(t *testing.T) {
	store := NewMemStore()
	a := NewManager(Config{MaxConcurrent: 2, StepQuantum: 16, Store: store})
	j, _, err := a.Submit(context.Background(), quickSpec(51), 64)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	a.Close() // graceful: final checkpoint includes the dedupe identity

	b := NewManager(Config{MaxConcurrent: 2, StepQuantum: 16, Store: store})
	defer b.Close()
	if _, err := b.Recover(); err != nil {
		t.Fatal(err)
	}
	r, deduped, err := b.Submit(context.Background(), quickSpec(51), 64)
	if err != nil {
		t.Fatal(err)
	}
	if !deduped || r.ID() != j.ID() {
		t.Fatalf("identical submission not deduped onto recovered job (got %s, deduped=%v)", r.ID(), deduped)
	}
}

// TestHibernateReviveTransparent pins capacity-pressure eviction: at the
// registry cap, submitting hibernates the least-recently-touched idle
// session, and the hibernated session revives transparently on Get with
// its state intact.
func TestHibernateReviveTransparent(t *testing.T) {
	m := NewManager(Config{
		MaxConcurrent: 2, StepQuantum: 16, MaxSessions: 2, Store: NewMemStore(),
	})
	defer m.Close()
	ctx := context.Background()

	a, _, err := m.Submit(ctx, quickSpec(60), 48)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, a)
	statsA := a.Info().Stats
	b, _, err := m.Submit(ctx, quickSpec(61), 48)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, b)
	b.Info() // touch: a is now the LRU idle session

	// The registry is full; this submission must hibernate a, not fail.
	c, _, err := m.Submit(ctx, quickSpec(62), 48)
	if err != nil {
		t.Fatalf("submission at capacity did not hibernate: %v", err)
	}
	waitDone(t, c)
	if mt := m.Metrics(); mt.Hibernated != 1 || mt.Sessions != 2 {
		t.Fatalf("metrics after pressure: %+v, want 1 hibernated / 2 resident", mt)
	}

	// Stale handles refuse control; the registry lookup revives.
	if err := a.Step(1); err != ErrHibernated {
		t.Fatalf("stale handle Step: %v, want ErrHibernated", err)
	}
	r, ok := m.Get(a.ID())
	if !ok {
		t.Fatalf("hibernated session %s not revivable", a.ID())
	}
	if !eventually(func() bool { return r.Info().Status == StatusDone }) {
		t.Fatalf("revived session did not settle: %+v", r.Info())
	}
	if got := r.Info().Stats; got != statsA {
		t.Fatalf("revived stats diverged:\n got %+v\nwant %+v", got, statsA)
	}
	if mt := m.Metrics(); mt.Revived != 1 {
		t.Fatalf("revived metric %d, want 1", mt.Revived)
	}
	// And the revived job answers for its dedupe identity again.
	d, deduped, err := m.Submit(ctx, quickSpec(60), 48)
	if err != nil {
		t.Fatal(err)
	}
	if !deduped || d.ID() != a.ID() {
		t.Fatalf("revived job lost its dedupe identity (got %s, deduped=%v)", d.ID(), deduped)
	}
}

// TestGCReapsExpiredTerminal pins TTL reaping: terminal sessions idle past
// SessionTTL are removed — registry, dedupe identity, and checkpoint.
func TestGCReapsExpiredTerminal(t *testing.T) {
	store := NewMemStore()
	m := NewManager(Config{
		MaxConcurrent: 2, StepQuantum: 16, Store: store,
		SessionTTL: 30 * time.Millisecond, GCInterval: time.Hour, // manual GC only
	})
	defer m.Close()
	j, _, err := m.Submit(context.Background(), quickSpec(70), 32)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	if reaped, _ := m.GC(); reaped != 0 {
		t.Fatal("GC reaped a fresh session")
	}
	time.Sleep(60 * time.Millisecond)
	reaped, _ := m.GC()
	if reaped != 1 {
		t.Fatalf("GC reaped %d, want 1", reaped)
	}
	if _, ok := m.Get(j.ID()); ok {
		t.Fatal("reaped session still resolvable")
	}
	if _, ok, _ := store.Get(j.ID()); ok {
		t.Fatal("reaped session's checkpoint survived")
	}
	// Reaped means gone: the identity reruns fresh.
	r, deduped, err := m.Submit(context.Background(), quickSpec(70), 32)
	if err != nil || deduped {
		t.Fatalf("post-reap submission: deduped=%v err=%v", deduped, err)
	}
	waitDone(t, r)
}

// TestGCHibernatesOverResidency pins the janitor watermark: GC spills LRU
// idle sessions while residency exceeds MaxResident.
func TestGCHibernatesOverResidency(t *testing.T) {
	m := NewManager(Config{
		MaxConcurrent: 2, StepQuantum: 16, MaxSessions: 8, MaxResident: 1,
		Store: NewMemStore(), GCInterval: time.Hour,
	})
	defer m.Close()
	ids := make([]string, 3)
	for i := range ids {
		j, _, err := m.Submit(context.Background(), quickSpec(uint64(80+i)), 32)
		if err != nil {
			t.Fatal(err)
		}
		waitDone(t, j)
		ids[i] = j.ID()
	}
	_, hibernated := m.GC()
	if hibernated != 2 {
		t.Fatalf("GC hibernated %d, want 2", hibernated)
	}
	if mt := m.Metrics(); mt.Sessions != 1 {
		t.Fatalf("%d resident after GC, want 1", mt.Sessions)
	}
	// Every session — resident or hibernated — still resolves.
	for _, id := range ids {
		if _, ok := m.Get(id); !ok {
			t.Errorf("session %s unresolvable after residency GC", id)
		}
	}
}
