package adversary

import (
	"fmt"
	"strings"

	"popstab/internal/wire"
)

// Fingerprinted is implemented by strategies whose Name() does not expose
// their full configuration (patch centers, attack windows): Fingerprint
// renders every behavior-determining parameter. The engine's snapshot
// identity uses FingerprintOf, so a snapshot cannot silently restore into
// a strategy aimed at a different point.
type Fingerprinted interface {
	Fingerprint() string
}

// FingerprintOf renders a strategy's full configuration identity, falling
// back to Name() for strategies whose name already carries everything.
func FingerprintOf(a Adversary) string {
	if f, ok := a.(Fingerprinted); ok {
		return f.Fingerprint()
	}
	return a.Name()
}

// Fingerprint implements Fingerprinted (Name omits the center).
func (d *PatchDeleter) Fingerprint() string {
	return fmt.Sprintf("%s@(%g,%g)", d.Name(), d.Center.X, d.Center.Y)
}

// Fingerprint implements Fingerprinted (Name omits the center).
func (in *ClusterInserter) Fingerprint() string {
	return fmt.Sprintf("%s@(%g,%g)", in.Name(), in.Center.X, in.Center.Y)
}

// Fingerprint implements Fingerprinted by delegation to both halves.
func (pc *PatchCombo) Fingerprint() string {
	return fmt.Sprintf("%s[%s,%s]", pc.Name(), FingerprintOf(pc.Deleter), FingerprintOf(pc.Inserter))
}

// Fingerprint implements Fingerprinted (Name omits region and target
// centers).
func (ra *RewireAdversary) Fingerprint() string {
	return fmt.Sprintf("%s@(%g,%g,r=%g)->(%g,%g,r=%g,d=%d)",
		ra.Name(), ra.Center.X, ra.Center.Y, ra.Radius,
		ra.TargetCenter.X, ra.TargetCenter.Y, ra.TargetRadius, ra.Directive)
}

// Fingerprint implements Fingerprinted (Name omits the injury window).
func (tr *Trauma) Fingerprint() string {
	return fmt.Sprintf("%s@[%d,+%d)", tr.Name(), tr.StartRound, tr.Rounds)
}

// Fingerprint implements Fingerprinted by delegation.
func (p *Paced) Fingerprint() string {
	return fmt.Sprintf("%s/every%d", FingerprintOf(p.Inner), p.Every)
}

// Fingerprint implements Fingerprinted by delegation to every part.
func (c *Composite) Fingerprint() string {
	parts := make([]string, len(c.Parts))
	for i, p := range c.Parts {
		parts[i] = FingerprintOf(p)
	}
	return fmt.Sprintf("composite[%s]", strings.Join(parts, "+"))
}

// Fingerprint implements Fingerprinted by delegation to both phases.
func (a *Alternator) Fingerprint() string {
	return fmt.Sprintf("alternate%d[%s,%s]", a.Period, FingerprintOf(a.A), FingerprintOf(a.B))
}

// Stateful is implemented by strategies that carry mutable per-run state
// beyond what the engine's round counter determines — PatchCombo's
// alternation parity is the canonical case. The engine snapshot captures it
// so a restored run continues the attack mid-stride; purely
// round-clocked strategies (Paced, Trauma, Alternator's phase) derive their
// behavior from View.GlobalRound and need nothing here.
//
// Wrapper strategies implement Stateful by delegating to their parts in a
// fixed structural order, so presence and layout are pure functions of the
// configuration — a snapshot and the configuration it restores into always
// agree on the encoding.
type Stateful interface {
	// EncodeState appends the strategy's mutable state to a snapshot.
	EncodeState(e *wire.Enc)
	// DecodeState reinstates state captured by EncodeState on a strategy
	// built from the same configuration.
	DecodeState(d *wire.Dec) error
}

// encodeStateOf appends adv's state if it is Stateful (wrappers use it for
// delegation; a stateless part contributes nothing, keeping the layout a
// pure function of the configuration tree).
func encodeStateOf(adv Adversary, e *wire.Enc) {
	if s, ok := adv.(Stateful); ok {
		s.EncodeState(e)
	}
}

// decodeStateOf mirrors encodeStateOf.
func decodeStateOf(adv Adversary, d *wire.Dec) error {
	if s, ok := adv.(Stateful); ok {
		return s.DecodeState(d)
	}
	return nil
}

// EncodeState implements Stateful: the alternation parity that decides
// which half of the combo acts first.
func (pc *PatchCombo) EncodeState(e *wire.Enc) { e.U64(pc.turn) }

// DecodeState implements Stateful.
func (pc *PatchCombo) DecodeState(d *wire.Dec) error {
	pc.turn = d.U64()
	return d.Err()
}

// EncodeState implements Stateful by delegation to the throttled strategy.
func (p *Paced) EncodeState(e *wire.Enc) { encodeStateOf(p.Inner, e) }

// DecodeState implements Stateful.
func (p *Paced) DecodeState(d *wire.Dec) error { return decodeStateOf(p.Inner, d) }

// EncodeState implements Stateful by delegation to every part, in order.
func (c *Composite) EncodeState(e *wire.Enc) {
	for _, p := range c.Parts {
		encodeStateOf(p, e)
	}
}

// DecodeState implements Stateful.
func (c *Composite) DecodeState(d *wire.Dec) error {
	for _, p := range c.Parts {
		if err := decodeStateOf(p, d); err != nil {
			return err
		}
	}
	return nil
}

// EncodeState implements Stateful by delegation to both phases.
func (a *Alternator) EncodeState(e *wire.Enc) {
	encodeStateOf(a.A, e)
	encodeStateOf(a.B, e)
}

// DecodeState implements Stateful.
func (a *Alternator) DecodeState(d *wire.Dec) error {
	if err := decodeStateOf(a.A, d); err != nil {
		return err
	}
	return decodeStateOf(a.B, d)
}

// Compile-time checks that the wrappers delegate.
var (
	_ Stateful = (*PatchCombo)(nil)
	_ Stateful = (*Paced)(nil)
	_ Stateful = (*Composite)(nil)
	_ Stateful = (*Alternator)(nil)
)
