// Package adversary defines the worst-case adversary of the population
// stability model (paper §2, "Adversary") and a library of attack
// strategies.
//
// The adversary is computationally unbounded, observes the memory contents
// of every agent, and may perform up to K alterations per round, where an
// alteration inserts an agent with arbitrary initial state or deletes an
// arbitrary agent. Inserted agents follow the protocol from their inserted
// state (the model explicitly excludes agents running malicious code). The
// adversary does not know the current round's matching in advance: the
// engine invokes it before sampling the matching.
//
// Strategies receive a read-only View of the population and a budget-
// enforcing Mutator. All state inspection the paper permits is available;
// strategies must not retain the View past the Act call.
package adversary

import (
	"fmt"
	"sort"

	"popstab/internal/agent"
	"popstab/internal/params"
	"popstab/internal/population"
	"popstab/internal/prng"
)

// View is the adversary's read access to the system: the full memory of
// every agent plus the global clock, per the model.
type View interface {
	// Len reports the current population size.
	Len() int
	// State returns a copy of agent i's full memory.
	State(i int) agent.State
	// Census returns an aggregate snapshot (computed on demand).
	Census() population.Census
	// GlobalRound reports the number of completed rounds since the system
	// started.
	GlobalRound() uint64
	// EpochRound reports GlobalRound modulo the epoch length T: the round
	// counter a correct agent holds right now.
	EpochRound() int
	// Params exposes the protocol parameters (public knowledge).
	Params() params.Params
	// Find appends to dst the indices of up to limit agents satisfying
	// pred, in container order, returning the extended slice. limit < 0
	// means unlimited.
	Find(dst []int, limit int, pred func(agent.State) bool) []int
}

// Mutator is the adversary's write access, with the per-round budget K
// enforced. Every successful Delete or Insert consumes one unit.
type Mutator interface {
	// Delete marks agent i for removal at the end of the adversary's turn.
	// It reports false (consuming nothing) if the budget is exhausted, the
	// index is out of range, or the agent was already marked.
	Delete(i int) bool
	// Insert adds an agent with the given initial state at the end of the
	// adversary's turn. The round counter is reduced modulo T, as the
	// physical register would store it. Reports false if the budget is
	// exhausted.
	Insert(s agent.State) bool
	// Remaining reports the unused budget for this round.
	Remaining() int
}

// Adversary is one attack strategy.
type Adversary interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Act performs this round's alterations. src is the adversary's private
	// randomness stream (a worst-case adversary may ignore it).
	Act(v View, m Mutator, src *prng.Source)
}

// None is the absent adversary.
type None struct{}

var _ Adversary = None{}

// Name reports "none".
func (None) Name() string { return "none" }

// Act does nothing.
func (None) Act(View, Mutator, *prng.Source) {}

// Budget tracks and enforces the per-round alteration budget K shared by
// insertions and deletions. The engine owns one Budget per adversary turn;
// it implements Mutator over staged operations so that index semantics are
// stable while the adversary is still reading the View.
type Budget struct {
	k         int
	used      int
	deletions map[int]struct{}
	inserts   []agent.State
	epochLen  int
	popLen    int
}

var _ Mutator = (*Budget)(nil)

// NewBudget prepares a budget of k alterations against a population of
// popLen agents with epoch length epochLen.
func NewBudget(k, popLen, epochLen int) *Budget {
	return &Budget{
		k:         k,
		deletions: make(map[int]struct{}, k),
		epochLen:  epochLen,
		popLen:    popLen,
	}
}

// Delete implements Mutator.
func (b *Budget) Delete(i int) bool {
	if b.used >= b.k || i < 0 || i >= b.popLen {
		return false
	}
	if _, dup := b.deletions[i]; dup {
		return false
	}
	b.deletions[i] = struct{}{}
	b.used++
	return true
}

// Insert implements Mutator.
func (b *Budget) Insert(s agent.State) bool {
	if b.used >= b.k {
		return false
	}
	if b.epochLen > 0 && int(s.Round) >= b.epochLen {
		s.Round %= uint32(b.epochLen)
	}
	b.inserts = append(b.inserts, s)
	b.used++
	return true
}

// Remaining implements Mutator.
func (b *Budget) Remaining() int { return b.k - b.used }

// Used reports the number of alterations consumed.
func (b *Budget) Used() int { return b.used }

// Deletions returns the staged deletion indices in strictly descending
// order, ready for population.DeleteDescending.
func (b *Budget) Deletions() []int {
	out := make([]int, 0, len(b.deletions))
	for i := range b.deletions {
		out = append(out, i)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Inserts returns the staged insertions.
func (b *Budget) Inserts() []agent.State { return b.inserts }

// String summarizes the staged operations.
func (b *Budget) String() string {
	return fmt.Sprintf("budget %d/%d (del=%d ins=%d)", b.used, b.k, len(b.deletions), len(b.inserts))
}
