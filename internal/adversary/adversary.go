// Package adversary defines the worst-case adversary of the population
// stability model (paper §2, "Adversary") and a library of attack
// strategies.
//
// The adversary is computationally unbounded, observes the memory contents
// of every agent, and may perform up to K alterations per round, where an
// alteration inserts an agent with arbitrary initial state or deletes an
// arbitrary agent. Inserted agents follow the protocol from their inserted
// state (the model explicitly excludes agents running malicious code). The
// adversary does not know the current round's matching in advance: the
// engine invokes it before sampling the matching.
//
// Strategies receive a read-only View of the population and a budget-
// enforcing Mutator. All state inspection the paper permits is available;
// strategies must not retain the View past the Act call.
package adversary

import (
	"fmt"
	"sort"

	"popstab/internal/agent"
	"popstab/internal/params"
	"popstab/internal/population"
	"popstab/internal/prng"
)

// View is the adversary's read access to the system: the full memory of
// every agent plus the global clock, per the model — and, on a spatial
// communication topology, the agents' positions and the topology's metric
// (the paper's adversary observes the entire system state; on the §1.2
// geometric models the geometry is part of that state, not an
// implementation detail). Position-blind View implementations embed
// Flatland for the spatial methods.
type View interface {
	// Len reports the current population size.
	Len() int
	// State returns a copy of agent i's full memory.
	State(i int) agent.State
	// Census returns an aggregate snapshot (computed on demand).
	Census() population.Census
	// GlobalRound reports the number of completed rounds since the system
	// started.
	GlobalRound() uint64
	// EpochRound reports GlobalRound modulo the epoch length T: the round
	// counter a correct agent holds right now.
	EpochRound() int
	// Params exposes the protocol parameters (public knowledge).
	Params() params.Params
	// Find appends to dst the indices of up to limit agents satisfying
	// pred, in container order, returning the extended slice. limit < 0
	// means unlimited.
	Find(dst []int, limit int, pred func(agent.State) bool) []int

	// HasSpace reports whether the communication model carries agent
	// positions. The remaining spatial methods degrade gracefully when it
	// is false.
	HasSpace() bool
	// Pos returns agent i's position (the zero Point without space).
	Pos(i int) population.Point
	// Dist2 is the squared distance between two positions under the
	// topology's metric (0 without space).
	Dist2(a, b population.Point) float64
	// FindNear appends to dst the indices of up to limit agents within
	// distance r of center, in container order, returning the extended
	// slice. limit < 0 means unlimited. Without space it returns dst
	// unchanged.
	FindNear(dst []int, limit int, center population.Point, r float64) []int
	// CountNear reports the number of agents within distance r of center
	// under the topology's metric — the density query adaptive patch
	// strategies re-center on (an O(n) scan, fine for the computationally
	// unbounded model adversary). Without space it reports −1, which is
	// distinguishable from an empty ball.
	CountNear(center population.Point, r float64) int
	// PatchPoint draws a position uniformly within distance r of center
	// under the topology's geometry, consuming src (center itself without
	// space).
	PatchPoint(center population.Point, r float64, src *prng.Source) population.Point
}

// Flatland provides the position-blind defaults of View's spatial methods;
// View implementations over non-spatial systems embed it.
type Flatland struct{}

// HasSpace reports false.
func (Flatland) HasSpace() bool { return false }

// Pos returns the zero Point.
func (Flatland) Pos(int) population.Point { return population.Point{} }

// Dist2 reports 0 (there is no metric).
func (Flatland) Dist2(a, b population.Point) float64 { return 0 }

// FindNear returns dst unchanged (no agent has a position).
func (Flatland) FindNear(dst []int, limit int, center population.Point, r float64) []int {
	return dst
}

// CountNear reports −1: there is no geometry to count in.
func (Flatland) CountNear(center population.Point, r float64) int { return -1 }

// PatchPoint returns center, consuming nothing.
func (Flatland) PatchPoint(center population.Point, r float64, src *prng.Source) population.Point {
	return center
}

// Mutator is the adversary's write access, with the per-round budget K
// enforced. Every successful Delete, Insert, InsertAt, or DeleteNear victim
// consumes one unit; the spatial operations degrade to their position-blind
// forms when the communication model carries no positions.
type Mutator interface {
	// Delete marks agent i for removal at the end of the adversary's turn.
	// It reports false (consuming nothing) if the budget is exhausted, the
	// index is out of range, or the agent was already marked.
	Delete(i int) bool
	// Insert adds an agent with the given initial state at the end of the
	// adversary's turn. The round counter is reduced modulo T, as the
	// physical register would store it. Reports false if the budget is
	// exhausted.
	Insert(s agent.State) bool
	// InsertAt is Insert with an adversary-chosen position: the agent
	// appears at pt instead of the topology's oblivious placement ("inserted
	// agents appear wherever the adversary chooses"). Without space the
	// point is ignored and InsertAt is exactly Insert.
	InsertAt(s agent.State, pt population.Point) bool
	// DeleteNear marks for deletion up to limit agents (limit < 0 means
	// budget-bounded only) within distance r of center, nearest first under
	// the topology's metric with ties broken by ascending index, and
	// reports how many it marked. Each victim consumes one budget unit.
	// Without space it marks nothing.
	DeleteNear(center population.Point, r float64, limit int) int
	// Remaining reports the unused budget for this round.
	Remaining() int
}

// Adversary is one attack strategy.
type Adversary interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Act performs this round's alterations. src is the adversary's private
	// randomness stream (a worst-case adversary may ignore it).
	Act(v View, m Mutator, src *prng.Source)
}

// None is the absent adversary.
type None struct{}

var _ Adversary = None{}

// Name reports "none".
func (None) Name() string { return "none" }

// Act does nothing.
func (None) Act(View, Mutator, *prng.Source) {}

// Insertion is one staged insertion: the inserted state and, when Placed,
// the adversary-chosen position.
type Insertion struct {
	// State is the inserted agent's full memory.
	State agent.State
	// At is the chosen position; meaningful only when Placed.
	At population.Point
	// Placed reports whether the insertion carries an explicit position
	// (InsertAt on a spatial topology) or uses the oblivious placement.
	Placed bool
}

// Budget tracks and enforces the per-round alteration budget K shared by
// insertions and deletions. The engine owns one Budget per adversary turn;
// it implements Mutator over staged operations so that index semantics are
// stable while the adversary is still reading the View. On a spatial
// topology the engine additionally binds the position side-array and metric
// (BindSpace) so the spatial Mutator operations resolve against the same
// state the View exposes.
type Budget struct {
	k         int
	used      int
	deletions map[int]struct{}
	inserts   []Insertion
	epochLen  int
	popLen    int

	// pos and dist2 are the bound space (nil without a spatial topology).
	// pos is read-only for the turn: structural mutations are staged, so
	// the slice stays valid until the engine applies them.
	pos   []population.Point
	dist2 func(a, b population.Point) float64
}

var _ Mutator = (*Budget)(nil)

// NewBudget prepares a budget of k alterations against a population of
// popLen agents with epoch length epochLen.
func NewBudget(k, popLen, epochLen int) *Budget {
	return &Budget{
		k:         k,
		deletions: make(map[int]struct{}, k),
		epochLen:  epochLen,
		popLen:    popLen,
	}
}

// BindSpace attaches the position side-array and metric of the round's
// spatial topology, enabling InsertAt and DeleteNear. The engine calls it
// once per turn, before the strategy acts; pos must stay unmutated for the
// turn (the Budget only stages operations, so it upholds this itself).
func (b *Budget) BindSpace(pos []population.Point, dist2 func(a, b population.Point) float64) {
	b.pos = pos
	b.dist2 = dist2
}

// Delete implements Mutator.
func (b *Budget) Delete(i int) bool {
	if b.used >= b.k || i < 0 || i >= b.popLen {
		return false
	}
	if _, dup := b.deletions[i]; dup {
		return false
	}
	b.deletions[i] = struct{}{}
	b.used++
	return true
}

// Insert implements Mutator.
func (b *Budget) Insert(s agent.State) bool {
	return b.insert(s, population.Point{}, false)
}

// InsertAt implements Mutator: the insertion carries the chosen position
// when a space is bound, and degrades to Insert otherwise.
func (b *Budget) InsertAt(s agent.State, pt population.Point) bool {
	return b.insert(s, pt, b.pos != nil)
}

// insert stages one insertion against the budget.
func (b *Budget) insert(s agent.State, pt population.Point, placed bool) bool {
	if b.used >= b.k {
		return false
	}
	if b.epochLen > 0 && int(s.Round) >= b.epochLen {
		s.Round %= uint32(b.epochLen)
	}
	b.inserts = append(b.inserts, Insertion{State: s, At: pt, Placed: placed})
	b.used++
	return true
}

// DeleteNear implements Mutator: victims are the unmarked agents within
// distance r of center, taken nearest first (ties by ascending index), each
// consuming one budget unit.
func (b *Budget) DeleteNear(center population.Point, r float64, limit int) int {
	if b.pos == nil || b.used >= b.k {
		return 0
	}
	quota := b.k - b.used
	if limit >= 0 && limit < quota {
		quota = limit
	}
	if quota <= 0 {
		return 0
	}
	// Collect candidates within the ball, then order by (distance, index).
	// The scan is O(n) over the side-array — the adversary's turn is serial
	// and the model's adversary is computationally unbounded, so clarity
	// wins over sublinear indexing here.
	type cand struct {
		i int
		d float64
	}
	r2 := r * r
	var cands []cand
	for i, pt := range b.pos {
		if _, dup := b.deletions[i]; dup {
			continue
		}
		if d := b.dist2(center, pt); d <= r2 {
			cands = append(cands, cand{i, d})
		}
	}
	sort.Slice(cands, func(x, y int) bool {
		if cands[x].d != cands[y].d {
			return cands[x].d < cands[y].d
		}
		return cands[x].i < cands[y].i
	})
	marked := 0
	for _, c := range cands {
		if marked >= quota {
			break
		}
		if b.Delete(c.i) {
			marked++
		}
	}
	return marked
}

// Remaining implements Mutator.
func (b *Budget) Remaining() int { return b.k - b.used }

// Used reports the number of alterations consumed.
func (b *Budget) Used() int { return b.used }

// Deletions returns the staged deletion indices in strictly descending
// order, ready for population.DeleteDescending.
func (b *Budget) Deletions() []int {
	out := make([]int, 0, len(b.deletions))
	for i := range b.deletions {
		out = append(out, i)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// Inserts returns the staged insertions in stage order; the engine applies
// them after the deletions, honoring each Insertion's position when Placed.
func (b *Budget) Inserts() []Insertion { return b.inserts }

// String summarizes the staged operations.
func (b *Budget) String() string {
	return fmt.Sprintf("budget %d/%d (del=%d ins=%d)", b.used, b.k, len(b.deletions), len(b.inserts))
}
