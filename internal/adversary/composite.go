package adversary

import (
	"strings"

	"popstab/internal/agent"
	"popstab/internal/match"
	"popstab/internal/population"
	"popstab/internal/prng"
)

// Composite runs several strategies in order against the shared budget; the
// first strategies get priority. This models an adversary that combines
// attacks (e.g. delete color-1 leaders AND insert color-0 leaders).
type Composite struct {
	// Label names the combination; empty derives one from the parts.
	Label string
	// Parts are invoked in order.
	Parts []Adversary
}

var _ Adversary = (*Composite)(nil)

// NewComposite combines strategies under a shared budget.
func NewComposite(label string, parts ...Adversary) *Composite {
	return &Composite{Label: label, Parts: parts}
}

// Name implements Adversary.
func (c *Composite) Name() string {
	if c.Label != "" {
		return c.Label
	}
	names := make([]string, len(c.Parts))
	for i, p := range c.Parts {
		names[i] = p.Name()
	}
	return strings.Join(names, "+")
}

// Act implements Adversary.
func (c *Composite) Act(v View, m Mutator, src *prng.Source) {
	for _, p := range c.Parts {
		if m.Remaining() == 0 {
			return
		}
		p.Act(v, m, src)
	}
}

// BindMatcher implements MatcherBinder by delegation to every part.
func (c *Composite) BindMatcher(m match.Matcher) {
	for _, p := range c.Parts {
		bindMatcher(p, m)
	}
}

// Alternator switches between two strategies every Period rounds, modeling
// an adversary that altenately inflates and deflates to resonate with the
// protocol's correction dynamics.
type Alternator struct {
	// Label names the strategy.
	Label string
	// Period is the number of rounds each phase lasts; 0 means one epoch.
	Period int
	// A and B are the two phases.
	A, B Adversary
}

var _ Adversary = (*Alternator)(nil)

// Name implements Adversary.
func (a *Alternator) Name() string {
	if a.Label != "" {
		return a.Label
	}
	return "alternate(" + a.A.Name() + "," + a.B.Name() + ")"
}

// BindMatcher implements MatcherBinder by delegation to both phases.
func (a *Alternator) BindMatcher(m match.Matcher) {
	bindMatcher(a.A, m)
	bindMatcher(a.B, m)
}

// Act implements Adversary.
func (a *Alternator) Act(v View, m Mutator, src *prng.Source) {
	period := a.Period
	if period <= 0 {
		period = v.Params().T
	}
	phase := (v.GlobalRound() / uint64(period)) % 2
	if phase == 0 {
		a.A.Act(v, m, src)
	} else {
		a.B.Act(v, m, src)
	}
}

// ColorSkewer is the strongest color-distribution attack within budget: it
// splits its budget between deleting cluster roots of one color and
// inserting fake roots of the other, maximally biasing the same-color
// meeting probability. Direction up (inflate) biases toward a monoculture
// (more same-color meetings → more splits); direction down inserts
// singleton clusters to dilute the color correlation (fewer same-color
// meetings relative to N-equilibrium → more deaths... relatively fewer
// splits).
type ColorSkewer struct {
	// Up selects the attack direction: true pushes the population above N,
	// false below.
	Up bool

	deleter  *Deleter
	inserter *Inserter
}

var _ Adversary = (*ColorSkewer)(nil)

// NewColorSkewer builds the attack for the given direction.
func NewColorSkewer(up bool) *ColorSkewer {
	cs := &ColorSkewer{Up: up}
	if up {
		cs.deleter = NewColorDeleter(1)
		cs.inserter = NewFakeLeaderInserter(0)
	} else {
		cs.inserter = NewSingletonInserter()
	}
	return cs
}

// Name implements Adversary.
func (cs *ColorSkewer) Name() string {
	if cs.Up {
		return "skew-up"
	}
	return "skew-down"
}

// Act implements Adversary.
func (cs *ColorSkewer) Act(v View, m Mutator, src *prng.Source) {
	if cs.Up {
		// Spend half the budget deleting color-1 roots early in the epoch,
		// the rest inserting color-0 roots.
		half := m.Remaining() / 2
		spent := 0
		cs.deleter.scratch = v.Find(cs.deleter.scratch[:0], -1, TargetColor(1))
		n := len(cs.deleter.scratch)
		for i := 0; i < n && spent < half; i++ {
			j := i + src.Intn(n-i)
			cs.deleter.scratch[i], cs.deleter.scratch[j] = cs.deleter.scratch[j], cs.deleter.scratch[i]
			if m.Delete(cs.deleter.scratch[i]) {
				spent++
			}
		}
		cs.inserter.Act(v, m, src)
		return
	}
	cs.inserter.Act(v, m, src)
}

// Trauma deletes at full budget for a fixed window of rounds and is
// otherwise dormant — the acute-injury scenario from the paper's biological
// motivation (an organ losing a fraction of its cells at once, up to the
// model's per-round rate bound).
type Trauma struct {
	// StartRound is the first round of the injury window.
	StartRound uint64
	// Rounds is the window length.
	Rounds uint64

	deleter *Deleter
}

var _ Adversary = (*Trauma)(nil)

// NewTrauma builds an injury of the given window.
func NewTrauma(startRound, rounds uint64) *Trauma {
	return &Trauma{StartRound: startRound, Rounds: rounds, deleter: NewRandomDeleter()}
}

// Name implements Adversary.
func (tr *Trauma) Name() string { return "trauma" }

// Act implements Adversary.
func (tr *Trauma) Act(v View, m Mutator, src *prng.Source) {
	r := v.GlobalRound()
	if r < tr.StartRound || r >= tr.StartRound+tr.Rounds {
		return
	}
	tr.deleter.Act(v, m, src)
}

// Greedy estimates the population's displacement from N each round and
// pushes in the same direction (away from the target), switching between
// the skew-up and skew-down machinery plus the eval-flood deletion
// amplifier. It is the strongest single heuristic adversary in the library
// and the default stress strategy in experiments.
type Greedy struct {
	up   *ColorSkewer
	down *ColorSkewer
	amp  *Inserter
}

var _ Adversary = (*Greedy)(nil)

// NewGreedy builds the adaptive strategy.
func NewGreedy() *Greedy {
	return &Greedy{
		up:   NewColorSkewer(true),
		down: NewColorSkewer(false),
		amp:  NewEvalFlooder(),
	}
}

// Name implements Adversary.
func (g *Greedy) Name() string { return "greedy" }

// Act implements Adversary.
func (g *Greedy) Act(v View, m Mutator, src *prng.Source) {
	n := v.Params().N
	cur := v.Len()
	switch {
	case cur >= n:
		// Push further up.
		g.up.Act(v, m, src)
	case cur <= n-n/64:
		// Clearly below: amplify deletions.
		half := m.Remaining() / 2
		for i := 0; i < half; i++ {
			g.amp.Act(v, &cappedMutator{m: m, cap: 1}, src)
		}
		g.down.Act(v, m, src)
	default:
		g.down.Act(v, m, src)
	}
}

// cappedMutator restricts a Mutator to a sub-budget.
type cappedMutator struct {
	m    Mutator
	cap  int
	used int
}

var _ Mutator = (*cappedMutator)(nil)

func (c *cappedMutator) Delete(i int) bool {
	if c.used >= c.cap {
		return false
	}
	if c.m.Delete(i) {
		c.used++
		return true
	}
	return false
}

func (c *cappedMutator) Insert(s agent.State) bool {
	if c.used >= c.cap {
		return false
	}
	if c.m.Insert(s) {
		c.used++
		return true
	}
	return false
}

func (c *cappedMutator) InsertAt(s agent.State, pt population.Point) bool {
	if c.used >= c.cap {
		return false
	}
	if c.m.InsertAt(s, pt) {
		c.used++
		return true
	}
	return false
}

func (c *cappedMutator) DeleteNear(center population.Point, r float64, limit int) int {
	quota := c.cap - c.used
	if quota <= 0 {
		return 0
	}
	if limit >= 0 && limit < quota {
		quota = limit
	}
	n := c.m.DeleteNear(center, r, quota)
	c.used += n
	return n
}

func (c *cappedMutator) Remaining() int {
	r := c.cap - c.used
	if mr := c.m.Remaining(); mr < r {
		r = mr
	}
	return r
}
