// Spatial (position-aware) attack strategies. On the §1.2 geometric
// communication models the adversary observes positions along with state
// (View's spatial methods) and may choose where its insertions appear
// (Mutator.InsertAt) — so the natural worst-case attacks concentrate the
// budget in one ball of the topology: a patch. Experiments A7/A8 showed
// patch shielding is the governing phenomenon of spatial containment (a
// contiguous hostile patch has boundary ≪ volume, strongest in 1-D);
// this family lets experiments drive it directly and map the patch-size
// threshold (experiment A9).

package adversary

import (
	"fmt"

	"popstab/internal/match"
	"popstab/internal/population"
	"popstab/internal/prng"
)

// MatcherBinder is implemented by strategies that act on the communication
// model itself rather than on agents (RewireAdversary). The engine invokes
// BindMatcher exactly once at construction, after the matcher is bound to
// the population; wrapper strategies (Paced, Composite, Alternator) delegate
// to their parts.
type MatcherBinder interface {
	BindMatcher(m match.Matcher)
}

// bindMatcher hands the matcher to adv if it (or, through the wrappers'
// delegation, anything it contains) implements MatcherBinder. The engine
// calls this once at construction.
func bindMatcher(adv Adversary, m match.Matcher) {
	if mb, ok := adv.(MatcherBinder); ok {
		mb.BindMatcher(m)
	}
}

// BindMatcherTo is bindMatcher for callers outside the package (the engine).
func BindMatcherTo(adv Adversary, m match.Matcher) { bindMatcher(adv, m) }

// PatchDeleter concentrates every deletion it can afford inside one ball of
// the topology: up to its per-round quota of the agents nearest Center
// within Radius die, nearest first. Sustained over rounds this digs and
// maintains a hole — the deletion form of the patch attack (locality means
// only boundary agents can refill it). Without a spatial topology it
// degrades to uniform random deletion, so the strategy is safe to select on
// any communication model.
type PatchDeleter struct {
	// Label names the strategy.
	Label string
	// Center is the ball's center.
	Center population.Point
	// Radius is the ball's radius (arc half-length in 1-D).
	Radius float64

	fallback *Deleter
}

var _ Adversary = (*PatchDeleter)(nil)

// NewPatchDeleter builds the patch deletion attack on the ball of radius r
// around center.
func NewPatchDeleter(center population.Point, r float64) *PatchDeleter {
	return &PatchDeleter{Center: center, Radius: r, fallback: NewRandomDeleter()}
}

// Name implements Adversary.
func (d *PatchDeleter) Name() string {
	if d.Label != "" {
		return d.Label
	}
	return fmt.Sprintf("delete-patch(r=%.3g)", d.Radius)
}

// Act implements Adversary.
func (d *PatchDeleter) Act(v View, m Mutator, src *prng.Source) {
	if !v.HasSpace() {
		if d.fallback == nil {
			d.fallback = NewRandomDeleter()
		}
		d.fallback.Act(v, m, src)
		return
	}
	m.DeleteNear(d.Center, d.Radius, -1)
}

// ClusterInserter seeds a patch: up to its per-round quota of generated
// agents appear at adversary-chosen points within Radius of Center — fake
// cluster roots grown into a monochrome patch, or (through the rogue
// extension's Placer seam, which reuses the same geometry) a clustered
// hostile cohort. Without a spatial topology the positions are ignored and
// the strategy is a plain Inserter.
type ClusterInserter struct {
	// Label names the strategy.
	Label string
	// Center is the patch center.
	Center population.Point
	// Radius is the patch radius (arc half-length in 1-D).
	Radius float64
	// Gen produces each inserted state; nil inserts fake recruiting leaders
	// of color 0 (the footnote-9 attack, now spatially concentrated).
	Gen StateGen
}

var _ Adversary = (*ClusterInserter)(nil)

// NewClusterInserter builds the patch-seeding insertion attack: states from
// gen (nil = fake color-0 leaders), placed within r of center.
func NewClusterInserter(center population.Point, r float64, gen StateGen) *ClusterInserter {
	return &ClusterInserter{Center: center, Radius: r, Gen: gen}
}

// Name implements Adversary.
func (in *ClusterInserter) Name() string {
	if in.Label != "" {
		return in.Label
	}
	return fmt.Sprintf("insert-cluster(r=%.3g)", in.Radius)
}

// Act implements Adversary.
func (in *ClusterInserter) Act(v View, m Mutator, src *prng.Source) {
	gen := in.Gen
	if gen == nil {
		gen = FakeLeaderGen(0)
	}
	for m.Remaining() > 0 {
		pt := v.PatchPoint(in.Center, in.Radius, src)
		if !m.InsertAt(gen(v, src), pt) {
			return
		}
	}
}

// PatchCombo is the combined patch attack: dig the hole and refill it with
// hostile insertions, both in the same ball. A plain Composite of the two
// halves starves the second — PatchDeleter's budget-bounded DeleteNear
// consumes everything whenever the ball is non-empty — so PatchCombo splits
// each turn explicitly: the favored half acts first under a cap of half the
// remaining budget (rounded up), the other half takes the rest, and the
// favor alternates on every activation so a paced K = 1 budget (one
// alteration per action) still serves both halves over time.
type PatchCombo struct {
	// Label names the strategy.
	Label string
	// Deleter and Inserter are the two halves, sharing the ball.
	Deleter  *PatchDeleter
	Inserter *ClusterInserter

	// turn counts activations; its parity picks the favored half.
	turn uint64
}

var _ Adversary = (*PatchCombo)(nil)

// NewPatchCombo builds the combined attack on the ball of radius r around
// center, with insertion states from gen (nil = fake color-0 leaders).
func NewPatchCombo(center population.Point, r float64, gen StateGen) *PatchCombo {
	return &PatchCombo{
		Deleter:  NewPatchDeleter(center, r),
		Inserter: NewClusterInserter(center, r, gen),
	}
}

// Name implements Adversary.
func (pc *PatchCombo) Name() string {
	if pc.Label != "" {
		return pc.Label
	}
	return fmt.Sprintf("patch-combo(r=%.3g)", pc.Deleter.Radius)
}

// Act implements Adversary.
func (pc *PatchCombo) Act(v View, m Mutator, src *prng.Source) {
	first, second := Adversary(pc.Deleter), Adversary(pc.Inserter)
	if pc.turn%2 == 1 {
		first, second = second, first
	}
	pc.turn++
	first.Act(v, &cappedMutator{m: m, cap: (m.Remaining() + 1) / 2}, src)
	second.Act(v, m, src)
	// Leftovers (e.g. an emptied ball left the deleter nothing to take) go
	// back to the favored half.
	if m.Remaining() > 0 {
		first.Act(v, m, src)
	}
}

// RewireAdversary owns the long-range link assignment of a SmallWorld
// topology: agents within Radius of Center are pinned to (Mode RewireDeny)
// or forced onto (RewireForce) long-range candidates, overriding the β coin.
// Radius < 0 applies the directive to every agent. Denying rewiring inside a
// hostile patch re-shields it — long-range contacts are the only mechanism
// that reaches a patch interior in 1-D (A8), and this strategy takes that
// mechanism away without spending any alteration budget: link assignment is
// part of the communication model, which the worst-case adversary of the
// §1.2 discussion controls, not an insertion or deletion.
//
// The force direction additionally supports a target ball (HasTarget):
// forced agents draw their long-range candidates from the agents inside
// [TargetCenter, TargetRadius] instead of uniformly — the adversary drags
// honest agents' links INTO a patch, feeding them to its residents (see
// match.RewireTargeter and NewRewireForcer).
//
// The strategy needs the matcher itself, so it implements MatcherBinder; on
// a non-SmallWorld matcher it binds to nothing and is inert. Its Act is a
// no-op (the directive is positional and needs no per-round recomputation),
// which also means it works at budget K = 0.
type RewireAdversary struct {
	// Label names the strategy.
	Label string
	// Center is the controlled region's center.
	Center population.Point
	// Radius is the controlled region's radius; negative = all agents.
	Radius float64
	// Directive is applied to agents inside the region (RewireDeny or
	// RewireForce); agents outside stay on the β coin.
	Directive match.RewireMode
	// TargetCenter and TargetRadius are the ball forced candidates are
	// drawn from; consulted only when HasTarget is set.
	TargetCenter population.Point
	// TargetRadius is the target ball's radius (arc half-length in 1-D).
	TargetRadius float64
	// HasTarget enables candidate targeting for the force direction.
	HasTarget bool

	sw *match.SmallWorld
}

var (
	_ Adversary              = (*RewireAdversary)(nil)
	_ MatcherBinder          = (*RewireAdversary)(nil)
	_ match.RewireController = (*RewireAdversary)(nil)
	_ match.RewireTargeter   = (*RewireAdversary)(nil)
)

// NewRewireDenier pins agents within r of center to their ring neighborhood
// (r < 0: the whole population — SmallWorld degenerates to Ring).
func NewRewireDenier(center population.Point, r float64) *RewireAdversary {
	return &RewireAdversary{Center: center, Radius: r, Directive: match.RewireDeny}
}

// NewRewireForcer rewires EVERY agent unconditionally and drags the
// long-range candidates into the ball of radius r around center: each round
// the whole population proposes to the patch residents, so a hostile patch
// (clustered rogues, a monochrome fake-leader colony) meets a steady stream
// of honest agents instead of only its 1-D boundary. Like the denier it
// spends no alteration budget and works at K = 0; it is inert off
// SmallWorld.
func NewRewireForcer(center population.Point, r float64) *RewireAdversary {
	return &RewireAdversary{
		Radius:       -1, // force the whole population's links
		Directive:    match.RewireForce,
		TargetCenter: center,
		TargetRadius: r,
		HasTarget:    true,
	}
}

// Name implements Adversary.
func (ra *RewireAdversary) Name() string {
	if ra.Label != "" {
		return ra.Label
	}
	verb := "force"
	if ra.Directive == match.RewireDeny {
		verb = "deny"
	}
	if ra.HasTarget {
		return fmt.Sprintf("rewire-%s-into(r=%.3g)", verb, ra.TargetRadius)
	}
	if ra.Radius < 0 {
		return fmt.Sprintf("rewire-%s-all", verb)
	}
	return fmt.Sprintf("rewire-%s(r=%.3g)", verb, ra.Radius)
}

// BindMatcher implements MatcherBinder: on a SmallWorld matcher the strategy
// installs itself as the RewireController; any other matcher leaves it
// inert.
func (ra *RewireAdversary) BindMatcher(m match.Matcher) {
	if sw, ok := m.(*match.SmallWorld); ok {
		ra.sw = sw
		sw.SetRewireController(ra)
	}
}

// Act implements Adversary: a no-op — the positional directive does all the
// work from the matching phase.
func (ra *RewireAdversary) Act(View, Mutator, *prng.Source) {}

// Mode implements match.RewireController. It is a pure function of the
// strategy's construction-time fields, satisfying the controller's
// concurrent-read contract.
func (ra *RewireAdversary) Mode(i int, pt population.Point) match.RewireMode {
	if ra.Radius < 0 || ra.sw.Dist2(pt, ra.Center) <= ra.Radius*ra.Radius {
		return ra.Directive
	}
	return match.RewireDefault
}

// RewireTarget implements match.RewireTargeter: forced candidates are drawn
// from the target ball when one is configured.
func (ra *RewireAdversary) RewireTarget() (population.Point, float64, bool) {
	return ra.TargetCenter, ra.TargetRadius, ra.HasTarget
}
