package adversary

import (
	"fmt"

	"popstab/internal/match"
	"popstab/internal/prng"
)

// Paced throttles an inner strategy to act only once every Every rounds.
//
// The paper's lemmas budget the adversary per epoch: Lemma 3's induction
// assumes K·T ≤ N^{1/4}/8, i.e. the per-round bound K = O(N^{1/4−ε}) is
// consumed by the ε absorbing the epoch length T = Θ̃(log³N). At laptop-scale
// N the un-paced product K·T would dwarf N^{1/4}, so experiments express
// budgets as alterations-per-epoch and use Paced to spread them: an inner
// strategy with per-round budget K acting every T/j rounds spends j·K per
// epoch.
type Paced struct {
	// Every is the action period in rounds (≥ 1).
	Every uint64
	// Inner is the throttled strategy.
	Inner Adversary
}

var _ Adversary = (*Paced)(nil)

// NewPaced wraps inner to act every `every` rounds.
func NewPaced(every uint64, inner Adversary) *Paced {
	if every == 0 {
		every = 1
	}
	return &Paced{Every: every, Inner: inner}
}

// Name implements Adversary.
func (p *Paced) Name() string {
	return fmt.Sprintf("%s/every%d", p.Inner.Name(), p.Every)
}

// Act implements Adversary.
func (p *Paced) Act(v View, m Mutator, src *prng.Source) {
	if v.GlobalRound()%p.Every != 0 {
		return
	}
	p.Inner.Act(v, m, src)
}

// BindMatcher implements MatcherBinder by delegation, so pacing a
// matcher-bound strategy (RewireAdversary) keeps its binding.
func (p *Paced) BindMatcher(m match.Matcher) { bindMatcher(p.Inner, m) }

// PerEpoch distributes a per-epoch alteration budget across an epoch: given
// the epoch length T and a desired budget of perEpoch alterations per epoch
// under a per-round cap of K, it returns the pacing period. The engine's
// per-round budget K and the returned period together deliver (approximately)
// the requested per-epoch rate.
func PerEpoch(epochLen, perEpoch, k int) uint64 {
	if perEpoch <= 0 || k <= 0 {
		return uint64(epochLen) + 1 // effectively never within one epoch
	}
	actions := (perEpoch + k - 1) / k // number of K-sized actions needed
	period := epochLen / actions
	if period < 1 {
		period = 1
	}
	return uint64(period)
}
