package adversary

import (
	"strings"
	"testing"

	"popstab/internal/agent"
	"popstab/internal/params"
	"popstab/internal/population"
	"popstab/internal/prng"
)

// fakeView implements View over a plain state slice for strategy tests;
// Flatland supplies the position-blind spatial methods.
type fakeView struct {
	Flatland
	states []agent.State
	round  uint64
	p      params.Params
}

var _ View = (*fakeView)(nil)

func (f *fakeView) Len() int                { return len(f.states) }
func (f *fakeView) State(i int) agent.State { return f.states[i] }
func (f *fakeView) Census() population.Census {
	return population.FromStates(f.states).TakeCensus(f.p.T-1, f.p.HalfLogN)
}
func (f *fakeView) GlobalRound() uint64   { return f.round }
func (f *fakeView) EpochRound() int       { return int(f.round % uint64(f.p.T)) }
func (f *fakeView) Params() params.Params { return f.p }
func (f *fakeView) Find(dst []int, limit int, pred func(agent.State) bool) []int {
	for i, s := range f.states {
		if limit >= 0 && len(dst) >= limit {
			break
		}
		if pred(s) {
			dst = append(dst, i)
		}
	}
	return dst
}

func testView(t *testing.T, n int) *fakeView {
	t.Helper()
	p, err := params.Derive(4096, params.WithTinner(24))
	if err != nil {
		t.Fatal(err)
	}
	v := &fakeView{p: p, states: make([]agent.State, n)}
	return v
}

func TestBudgetEnforcesK(t *testing.T) {
	b := NewBudget(3, 100, 144)
	if !b.Delete(5) || !b.Delete(10) || !b.Insert(agent.State{}) {
		t.Fatal("operations within budget rejected")
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining = %d", b.Remaining())
	}
	if b.Delete(20) {
		t.Error("Delete above budget accepted")
	}
	if b.Insert(agent.State{}) {
		t.Error("Insert above budget accepted")
	}
	if b.Used() != 3 {
		t.Errorf("Used = %d", b.Used())
	}
}

func TestBudgetRejectsDuplicateAndOutOfRange(t *testing.T) {
	b := NewBudget(5, 10, 144)
	if !b.Delete(3) {
		t.Fatal("first delete rejected")
	}
	if b.Delete(3) {
		t.Error("duplicate delete consumed budget")
	}
	if b.Delete(-1) || b.Delete(10) {
		t.Error("out-of-range delete accepted")
	}
	if b.Used() != 1 {
		t.Errorf("Used = %d after duplicates/range errors", b.Used())
	}
}

func TestBudgetSanitizesInsertedRound(t *testing.T) {
	b := NewBudget(1, 10, 144)
	b.Insert(agent.State{Round: 1000})
	ins := b.Inserts()
	if len(ins) != 1 || int(ins[0].State.Round) >= 144 {
		t.Errorf("inserted round not sanitized: %+v", ins)
	}
}

func TestBudgetDeletionsDescending(t *testing.T) {
	b := NewBudget(10, 100, 144)
	for _, i := range []int{7, 3, 99, 42} {
		b.Delete(i)
	}
	d := b.Deletions()
	for i := 1; i < len(d); i++ {
		if d[i] >= d[i-1] {
			t.Fatalf("Deletions not strictly descending: %v", d)
		}
	}
	if len(d) != 4 {
		t.Fatalf("Deletions = %v", d)
	}
}

func TestNoneDoesNothing(t *testing.T) {
	v := testView(t, 10)
	b := NewBudget(5, 10, v.p.T)
	None{}.Act(v, b, prng.New(1))
	if b.Used() != 0 {
		t.Error("None consumed budget")
	}
	if (None{}).Name() != "none" {
		t.Error("None name")
	}
}

func TestDeleterTargetsMatches(t *testing.T) {
	v := testView(t, 20)
	// Mark agents 4..7 active.
	for i := 4; i < 8; i++ {
		v.states[i].Active = true
	}
	d := NewLeaderKiller()
	b := NewBudget(10, 20, v.p.T)
	d.Act(v, b, prng.New(2))
	// Only the 4 active agents should be deleted despite budget 10.
	dels := b.Deletions()
	if len(dels) != 4 {
		t.Fatalf("deleted %d agents, want 4", len(dels))
	}
	for _, i := range dels {
		if !v.states[i].Active {
			t.Errorf("deleted inactive agent %d", i)
		}
	}
}

func TestDeleterRespectsBudget(t *testing.T) {
	v := testView(t, 100)
	d := NewRandomDeleter()
	b := NewBudget(7, 100, v.p.T)
	d.Act(v, b, prng.New(3))
	if got := len(b.Deletions()); got != 7 {
		t.Errorf("deleted %d, want exactly budget 7", got)
	}
}

func TestDeleterEmptyPopulation(t *testing.T) {
	v := testView(t, 0)
	NewRandomDeleter().Act(v, NewBudget(5, 0, v.p.T), prng.New(4))
}

func TestColorDeleter(t *testing.T) {
	v := testView(t, 10)
	v.states[1] = agent.State{Active: true, Color: 1}
	v.states[2] = agent.State{Active: true, Color: 0}
	v.states[3] = agent.State{Active: true, Color: 1}
	d := NewColorDeleter(1)
	b := NewBudget(10, 10, v.p.T)
	d.Act(v, b, prng.New(5))
	dels := b.Deletions()
	if len(dels) != 2 {
		t.Fatalf("deleted %v, want the two color-1 agents", dels)
	}
	for _, i := range dels {
		if v.states[i].Color != 1 {
			t.Errorf("deleted wrong color at %d", i)
		}
	}
}

func TestBenignInserterCorrectRound(t *testing.T) {
	v := testView(t, 10)
	v.round = 37
	in := NewBenignInserter()
	b := NewBudget(4, 10, v.p.T)
	in.Act(v, b, prng.New(6))
	ins := b.Inserts()
	if len(ins) != 4 {
		t.Fatalf("inserted %d, want 4", len(ins))
	}
	for _, ins := range ins {
		s := ins.State
		if s.Round != 37 || s.Active {
			t.Errorf("benign insert state %+v", s)
		}
	}
}

func TestWrongRoundInserterOffset(t *testing.T) {
	v := testView(t, 10)
	v.round = 10
	in := NewWrongRoundInserter(5)
	b := NewBudget(2, 10, v.p.T)
	in.Act(v, b, prng.New(7))
	for _, ins := range b.Inserts() {
		s := ins.State
		if s.Round != 15 {
			t.Errorf("inserted round %d, want 15", s.Round)
		}
	}
	// Negative offsets wrap.
	v.round = 2
	in2 := NewWrongRoundInserter(-5)
	b2 := NewBudget(1, 10, v.p.T)
	in2.Act(v, b2, prng.New(8))
	if got := int(b2.Inserts()[0].State.Round); got != v.p.T-3 {
		t.Errorf("wrapped round %d, want %d", got, v.p.T-3)
	}
}

func TestEvalFlooder(t *testing.T) {
	v := testView(t, 10)
	in := NewEvalFlooder()
	b := NewBudget(3, 10, v.p.T)
	in.Act(v, b, prng.New(9))
	for _, ins := range b.Inserts() {
		s := ins.State
		if int(s.Round) != v.p.T-1 || !s.Active {
			t.Errorf("eval-flood state %+v", s)
		}
	}
}

func TestFakeLeaderInserter(t *testing.T) {
	v := testView(t, 10)
	v.round = 1
	in := NewFakeLeaderInserter(0)
	b := NewBudget(2, 10, v.p.T)
	in.Act(v, b, prng.New(10))
	for _, ins := range b.Inserts() {
		s := ins.State
		if !s.Active || !s.Recruiting || s.Color != 0 || int(s.ToRecruit) != v.p.HalfLogN {
			t.Errorf("fake leader state %+v", s)
		}
	}
}

func TestSingletonInserter(t *testing.T) {
	v := testView(t, 10)
	in := NewSingletonInserter()
	b := NewBudget(8, 10, v.p.T)
	in.Act(v, b, prng.New(11))
	colors := [2]int{}
	for _, ins := range b.Inserts() {
		s := ins.State
		if !s.Active || s.Recruiting || s.ToRecruit != 0 {
			t.Errorf("singleton state %+v", s)
		}
		colors[s.Color]++
	}
	if colors[0] == 0 && colors[1] == 0 {
		t.Error("no singletons inserted")
	}
}

func TestCompositeSharesBudget(t *testing.T) {
	v := testView(t, 10)
	c := NewComposite("combo", NewBenignInserter(), NewBenignInserter())
	b := NewBudget(3, 10, v.p.T)
	c.Act(v, b, prng.New(12))
	if len(b.Inserts()) != 3 {
		t.Errorf("composite inserted %d, want exactly budget 3", len(b.Inserts()))
	}
	if c.Name() != "combo" {
		t.Errorf("Name = %q", c.Name())
	}
	unnamed := NewComposite("", NewBenignInserter(), NewRandomDeleter())
	if !strings.Contains(unnamed.Name(), "+") {
		t.Errorf("derived name = %q", unnamed.Name())
	}
}

func TestAlternatorSwitchesPhases(t *testing.T) {
	v := testView(t, 10)
	a := &Alternator{Period: 10, A: NewBenignInserter(), B: NewRandomDeleter()}
	src := prng.New(13)

	v.round = 5 // phase 0
	b := NewBudget(2, 10, v.p.T)
	a.Act(v, b, src)
	if len(b.Inserts()) != 2 || len(b.Deletions()) != 0 {
		t.Errorf("phase A: ins=%d del=%d", len(b.Inserts()), len(b.Deletions()))
	}

	v.round = 15 // phase 1
	b = NewBudget(2, 10, v.p.T)
	a.Act(v, b, src)
	if len(b.Deletions()) != 2 || len(b.Inserts()) != 0 {
		t.Errorf("phase B: ins=%d del=%d", len(b.Inserts()), len(b.Deletions()))
	}
}

func TestColorSkewerUp(t *testing.T) {
	v := testView(t, 20)
	for i := 0; i < 6; i++ {
		v.states[i] = agent.State{Active: true, Color: 1}
	}
	cs := NewColorSkewer(true)
	b := NewBudget(6, 20, v.p.T)
	cs.Act(v, b, prng.New(14))
	if len(b.Deletions()) == 0 {
		t.Error("skew-up deleted nothing")
	}
	for _, ins := range b.Inserts() {
		s := ins.State
		if s.Color != 0 || !s.Active {
			t.Errorf("skew-up inserted %+v, want color-0 leaders", s)
		}
	}
	if cs.Name() != "skew-up" {
		t.Error("name")
	}
}

func TestColorSkewerDown(t *testing.T) {
	v := testView(t, 20)
	cs := NewColorSkewer(false)
	b := NewBudget(4, 20, v.p.T)
	cs.Act(v, b, prng.New(15))
	if len(b.Inserts()) != 4 {
		t.Errorf("skew-down inserted %d", len(b.Inserts()))
	}
	if cs.Name() != "skew-down" {
		t.Error("name")
	}
}

func TestTraumaWindow(t *testing.T) {
	v := testView(t, 50)
	tr := NewTrauma(10, 5)
	src := prng.New(16)

	v.round = 9
	b := NewBudget(3, 50, v.p.T)
	tr.Act(v, b, src)
	if b.Used() != 0 {
		t.Error("trauma acted before window")
	}

	v.round = 12
	b = NewBudget(3, 50, v.p.T)
	tr.Act(v, b, src)
	if len(b.Deletions()) != 3 {
		t.Errorf("trauma deleted %d in window, want 3", len(b.Deletions()))
	}

	v.round = 15
	b = NewBudget(3, 50, v.p.T)
	tr.Act(v, b, src)
	if b.Used() != 0 {
		t.Error("trauma acted after window")
	}
}

func TestGreedyPushesAwayFromTarget(t *testing.T) {
	src := prng.New(17)
	g := NewGreedy()

	// Above target: should push up (inserts color-0 leaders / deletes color-1).
	v := testView(t, 10)
	big := &fakeView{p: v.p, states: make([]agent.State, v.p.N+100)}
	b := NewBudget(4, big.Len(), v.p.T)
	g.Act(big, b, src)
	if b.Used() == 0 {
		t.Error("greedy idle above target")
	}

	// Far below target: should push down / amplify deletions.
	small := &fakeView{p: v.p, states: make([]agent.State, v.p.N/2)}
	b2 := NewBudget(4, small.Len(), v.p.T)
	g.Act(small, b2, src)
	if b2.Used() == 0 {
		t.Error("greedy idle below target")
	}
	if g.Name() != "greedy" {
		t.Error("name")
	}
}

func TestPacedThrottles(t *testing.T) {
	v := testView(t, 10)
	p := NewPaced(10, NewBenignInserter())
	src := prng.New(18)

	v.round = 0
	b := NewBudget(2, 10, v.p.T)
	p.Act(v, b, src)
	if b.Used() != 2 {
		t.Error("paced idle on period round")
	}

	v.round = 3
	b = NewBudget(2, 10, v.p.T)
	p.Act(v, b, src)
	if b.Used() != 0 {
		t.Error("paced acted off period")
	}

	if !strings.Contains(p.Name(), "every10") {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestNewPacedZeroPeriod(t *testing.T) {
	p := NewPaced(0, None{})
	if p.Every != 1 {
		t.Errorf("Every = %d, want 1", p.Every)
	}
}

func TestPerEpoch(t *testing.T) {
	cases := []struct {
		epochLen, perEpoch, k int
		want                  uint64
	}{
		{144, 8, 1, 18},  // 8 single alterations spread over 144 rounds
		{144, 8, 8, 144}, // one burst of 8 per epoch
		{144, 0, 1, 145}, // zero budget: never within the epoch
		{144, 288, 1, 1}, // more than one per round: act every round
		{2048, 16, 2, 256},
	}
	for _, tc := range cases {
		if got := PerEpoch(tc.epochLen, tc.perEpoch, tc.k); got != tc.want {
			t.Errorf("PerEpoch(%d,%d,%d) = %d, want %d",
				tc.epochLen, tc.perEpoch, tc.k, got, tc.want)
		}
	}
}

func TestCappedMutator(t *testing.T) {
	b := NewBudget(10, 50, 144)
	c := &cappedMutator{m: b, cap: 2}
	if !c.Insert(agent.State{}) || !c.Delete(1) {
		t.Fatal("capped ops within cap rejected")
	}
	if c.Insert(agent.State{}) {
		t.Error("capped op above cap accepted")
	}
	if c.Remaining() != 0 {
		t.Errorf("Remaining = %d", c.Remaining())
	}
	if b.Used() != 2 {
		t.Errorf("outer budget used = %d", b.Used())
	}
}
