package adversary

import (
	"testing"

	"popstab/internal/agent"
	"popstab/internal/prng"
)

// countingAdversary records the rounds on which it was allowed to act and
// spends its full budget each time.
type countingAdversary struct {
	rounds []uint64
}

var _ Adversary = (*countingAdversary)(nil)

func (c *countingAdversary) Name() string { return "counter" }
func (c *countingAdversary) Act(v View, m Mutator, _ *prng.Source) {
	c.rounds = append(c.rounds, v.GlobalRound())
	for m.Remaining() > 0 {
		m.Insert(agent.State{})
	}
}

// TestPerEpochEpochRolloverBoundary pins the pacing behavior at the epoch
// boundary: how many K-sized actions land inside each epoch window when the
// pacing period does and does not divide the epoch length, and that the
// rollover neither skips nor double-schedules an action.
//
// Paced acts on rounds r with r % period == 0, so the schedule is global and
// epoch-oblivious; the boundary cases of interest are
//
//   - the budget is exhausted exactly on the last round of an epoch
//     (period | epochLen: the final action lands at round epochLen−period,
//     and the NEXT action is the first round of the next epoch), and
//   - the period does not divide the epoch length, so one epoch absorbs an
//     extra action and the phase drifts across epochs.
func TestPerEpochEpochRolloverBoundary(t *testing.T) {
	cases := []struct {
		name               string
		epochLen, perEpoch int
		k                  int
		wantPeriod         uint64
		// wantPerEpoch[i] is the number of action rounds in epoch window i.
		wantPerEpoch []int
		// wantBoundary asserts whether round epochLen (first of epoch 1) is
		// an action round.
		wantBoundary bool
	}{
		{
			// period 3 divides 12: 4 actions per epoch at rounds 0,3,6,9 —
			// the budget is spent by round 9 and the very first round of the
			// next epoch starts the next cycle. No epoch gets 5, none 3.
			name: "divides-evenly", epochLen: 12, perEpoch: 4, k: 1,
			wantPeriod: 3, wantPerEpoch: []int{4, 4, 4}, wantBoundary: true,
		},
		{
			// Exhaustion ON the last round: period 1 acts every round, so
			// round 11 (last of epoch 0) and round 12 (first of epoch 1) are
			// both action rounds — adjacent epochs share no action but no
			// round is skipped either.
			name: "every-round", epochLen: 12, perEpoch: 12, k: 1,
			wantPeriod: 1, wantPerEpoch: []int{12, 12, 12}, wantBoundary: true,
		},
		{
			// period 3 does not divide 10: epoch 0 catches rounds 0,3,6,9 —
			// the "extra" action lands on the epoch's last round — and epoch
			// 1 (rounds 10..19) catches 12,15,18: the phase drifts and the
			// boundary round 10 is NOT an action round.
			name: "drifting-phase", epochLen: 10, perEpoch: 3, k: 1,
			wantPeriod: 3, wantPerEpoch: []int{4, 3, 3}, wantBoundary: false,
		},
		{
			// K > 1: 5 alterations at K=2 need 3 actions, period 4; actions
			// at 0,4,8 spend 6 ≥ 5 per epoch and the boundary round 12 acts.
			name: "k-bundling", epochLen: 12, perEpoch: 5, k: 2,
			wantPeriod: 4, wantPerEpoch: []int{3, 3, 3}, wantBoundary: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			period := PerEpoch(tc.epochLen, tc.perEpoch, tc.k)
			if period != tc.wantPeriod {
				t.Fatalf("PerEpoch(%d,%d,%d) = %d, want %d",
					tc.epochLen, tc.perEpoch, tc.k, period, tc.wantPeriod)
			}
			inner := &countingAdversary{}
			paced := NewPaced(period, inner)
			v := testView(t, 10)
			epochs := len(tc.wantPerEpoch)
			for r := 0; r < epochs*tc.epochLen; r++ {
				v.round = uint64(r)
				paced.Act(v, NewBudget(tc.k, 10, tc.epochLen), prng.New(1))
			}
			perEpoch := make([]int, epochs)
			for _, r := range inner.rounds {
				if r%period != 0 {
					t.Fatalf("action on off-schedule round %d (period %d)", r, period)
				}
				perEpoch[int(r)/tc.epochLen]++
			}
			for i, want := range tc.wantPerEpoch {
				if perEpoch[i] != want {
					t.Errorf("epoch %d: %d actions, want %d (rounds %v)",
						i, perEpoch[i], want, inner.rounds)
				}
			}
			boundary := false
			for _, r := range inner.rounds {
				if r == uint64(tc.epochLen) {
					boundary = true
				}
			}
			if boundary != tc.wantBoundary {
				t.Errorf("first round of epoch 1 action = %v, want %v", boundary, tc.wantBoundary)
			}
		})
	}
}

// TestPerEpochNeverWithinEpoch pins the degenerate budgets: a non-positive
// per-epoch budget or cap paces the strategy beyond the epoch length, so it
// never fires inside one epoch.
func TestPerEpochNeverWithinEpoch(t *testing.T) {
	for _, k := range []int{0, 1} {
		period := PerEpoch(12, 0, k)
		if period <= 12 {
			t.Errorf("PerEpoch(12,0,%d) = %d, want > epoch length", k, period)
		}
	}
	if period := PerEpoch(12, 5, 0); period <= 12 {
		t.Errorf("PerEpoch(12,5,0) = %d, want > epoch length", period)
	}
}
