package adversary

import (
	"fmt"

	"popstab/internal/agent"
	"popstab/internal/prng"
)

// Target selects which agents a deletion strategy attacks, given full read
// access to their memory.
type Target func(agent.State) bool

// Named targets used by the strategy constructors.
var (
	// TargetAny matches every agent.
	TargetAny Target = func(agent.State) bool { return true }
	// TargetActive matches activated agents. Early in an epoch these are
	// the leaders and their first recruits — killing one prunes an entire
	// prospective cluster of up to √N agents, the strongest deletion
	// leverage the paper's accounting allows (Lemma 6).
	TargetActive Target = func(s agent.State) bool { return s.Active }
	// TargetRecruiting matches agents currently recruiting.
	TargetRecruiting Target = func(s agent.State) bool { return s.Recruiting }
)

// TargetColor matches active agents of the given color — the color-skew
// attack discussed in the paper's Lemma 8 proof (footnote 9).
func TargetColor(c uint8) Target {
	return func(s agent.State) bool { return s.Active && s.Color == c }
}

// Deleter deletes up to its per-round quota of agents matching a target,
// choosing uniformly among matches (a worst-case adversary knows them all;
// uniform choice within an equivalence class is without loss of generality
// since matched agents are interchangeable).
type Deleter struct {
	// Label names the strategy.
	Label string
	// Match selects victims; nil means TargetAny.
	Match Target
	// scratch avoids per-round allocation.
	scratch []int
}

var _ Adversary = (*Deleter)(nil)

// NewRandomDeleter deletes arbitrary agents.
func NewRandomDeleter() *Deleter {
	return &Deleter{Label: "delete-random", Match: TargetAny}
}

// NewLeaderKiller deletes active agents — the anti-leader attack the paper's
// Attempt 1 discussion motivates.
func NewLeaderKiller() *Deleter {
	return &Deleter{Label: "delete-active", Match: TargetActive}
}

// NewColorDeleter deletes active agents of one color to skew the color
// distribution.
func NewColorDeleter(color uint8) *Deleter {
	return &Deleter{Label: fmt.Sprintf("delete-color%d", color), Match: TargetColor(color)}
}

// Name implements Adversary.
func (d *Deleter) Name() string {
	if d.Label != "" {
		return d.Label
	}
	return "deleter"
}

// Act implements Adversary.
func (d *Deleter) Act(v View, m Mutator, src *prng.Source) {
	match := d.Match
	if match == nil {
		match = TargetAny
	}
	d.scratch = v.Find(d.scratch[:0], -1, match)
	n := len(d.scratch)
	if n == 0 {
		return
	}
	// Sample victims uniformly without replacement until budget exhausts.
	quota := m.Remaining()
	if quota > n {
		quota = n
	}
	for i := 0; i < quota; i++ {
		j := i + src.Intn(n-i)
		d.scratch[i], d.scratch[j] = d.scratch[j], d.scratch[i]
		m.Delete(d.scratch[i])
	}
}

// StateGen produces the initial state for an inserted agent, given the
// adversary's view.
type StateGen func(v View, src *prng.Source) agent.State

// Inserter inserts up to its per-round quota of agents with generated
// states.
type Inserter struct {
	// Label names the strategy.
	Label string
	// Gen produces each inserted state; nil inserts zero-state agents with
	// the correct round counter.
	Gen StateGen
}

var _ Adversary = (*Inserter)(nil)

// Name implements Adversary.
func (in *Inserter) Name() string {
	if in.Label != "" {
		return in.Label
	}
	return "inserter"
}

// Act implements Adversary.
func (in *Inserter) Act(v View, m Mutator, src *prng.Source) {
	gen := in.Gen
	if gen == nil {
		gen = func(v View, _ *prng.Source) agent.State {
			return agent.State{Round: uint32(v.EpochRound())}
		}
	}
	for m.Remaining() > 0 {
		if !m.Insert(gen(v, src)) {
			return
		}
	}
}

// NewBenignInserter inserts inactive agents with the correct round counter:
// pure population inflation.
func NewBenignInserter() *Inserter {
	return &Inserter{Label: "insert-benign"}
}

// NewWrongRoundInserter inserts agents whose round counter is offset from
// the correct one — the desynchronization attack that Lemma 3 and the
// round-consistency check address.
func NewWrongRoundInserter(offset int) *Inserter {
	return &Inserter{
		Label: fmt.Sprintf("insert-offset%+d", offset),
		Gen: func(v View, src *prng.Source) agent.State {
			t := v.Params().T
			r := (v.EpochRound() + offset) % t
			if r < 0 {
				r += t
			}
			return agent.State{Round: uint32(r)}
		},
	}
}

// NewEvalFlooder inserts agents that believe they are in the evaluation
// round. Each dies at its first contact with a correct agent — and takes
// that correct agent with it (Algorithm 7), so every unit of insertion
// budget converts into roughly one extra deletion: a deletion amplifier.
func NewEvalFlooder() *Inserter {
	return &Inserter{
		Label: "insert-eval",
		Gen: func(v View, src *prng.Source) agent.State {
			return agent.State{Round: uint32(v.Params().T - 1), Active: true, Color: src.Bit()}
		},
	}
}

// FakeLeaderGen generates a recruiting cluster root of the given color with
// the correct round counter — the insertion state of the footnote-9 attack,
// shared by NewFakeLeaderInserter and the spatial ClusterInserter.
func FakeLeaderGen(color uint8) StateGen {
	return func(v View, _ *prng.Source) agent.State {
		p := v.Params()
		return agent.State{
			Round:      uint32(v.EpochRound()),
			Active:     true,
			Color:      color,
			Recruiting: true,
			ToRecruit:  int8(p.HalfLogN),
		}
	}
}

// NewFakeLeaderInserter inserts recruiting cluster roots of a fixed color
// with the correct round counter. Each seeds a cluster of up to √N agents of
// that color, skewing the color distribution to raise the same-color meeting
// probability — the "insert additional leaders all with color 0" attack from
// the paper's footnote 9.
func NewFakeLeaderInserter(color uint8) *Inserter {
	return &Inserter{
		Label: fmt.Sprintf("insert-leader%d", color),
		Gen:   FakeLeaderGen(color),
	}
}

// NewSingletonInserter inserts active agents with uniformly random colors
// and no recruitment quota: a swarm of size-1 "clusters". These dilute the
// same-color excess (they are uncorrelated with everyone), pushing the
// variance signal toward "population too large" and the population down.
func NewSingletonInserter() *Inserter {
	return &Inserter{
		Label: "insert-singleton",
		Gen: func(v View, src *prng.Source) agent.State {
			return agent.State{
				Round:  uint32(v.EpochRound()),
				Active: true,
				Color:  src.Bit(),
			}
		},
	}
}
