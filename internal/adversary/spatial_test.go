package adversary

import (
	"math"
	"testing"

	"popstab/internal/agent"
	"popstab/internal/match"
	"popstab/internal/population"
	"popstab/internal/prng"
)

// spatialView is fakeView plus a 1-D ring space, for testing the
// position-aware seam without an engine.
type spatialView struct {
	*fakeView
	pos []population.Point
}

var _ View = (*spatialView)(nil)

func (f *spatialView) HasSpace() bool                      { return true }
func (f *spatialView) Pos(i int) population.Point          { return f.pos[i] }
func (f *spatialView) Dist2(a, b population.Point) float64 { return match.RingDist2(a, b) }
func (f *spatialView) FindNear(dst []int, limit int, center population.Point, r float64) []int {
	for i, pt := range f.pos {
		if limit >= 0 && len(dst) >= limit {
			break
		}
		if match.RingDist2(center, pt) <= r*r {
			dst = append(dst, i)
		}
	}
	return dst
}
func (f *spatialView) CountNear(center population.Point, r float64) int {
	n := 0
	for _, pt := range f.pos {
		if match.RingDist2(center, pt) <= r*r {
			n++
		}
	}
	return n
}
func (f *spatialView) PatchPoint(center population.Point, r float64, src *prng.Source) population.Point {
	x := center.X + (2*src.Float64()-1)*r
	x = math.Mod(x, 1)
	if x < 0 {
		x++
	}
	return population.Point{X: x}
}

// ringView builds n agents evenly spaced on the circle: agent i at i/n.
func ringView(t *testing.T, n int) *spatialView {
	t.Helper()
	v := &spatialView{fakeView: testView(t, n), pos: make([]population.Point, n)}
	for i := range v.pos {
		v.pos[i] = population.Point{X: float64(i) / float64(n)}
	}
	return v
}

// spatialBudget binds a Budget to the view's space.
func spatialBudget(k int, v *spatialView) *Budget {
	b := NewBudget(k, len(v.pos), v.p.T)
	b.BindSpace(v.pos, v.Dist2)
	return b
}

func TestBudgetDeleteNearNearestFirst(t *testing.T) {
	v := ringView(t, 100) // agents at 0.00, 0.01, ..., 0.99
	b := spatialBudget(3, v)
	// Ball of radius 0.025 around 0.50 holds agents 48..52; the 3 nearest
	// are 50, 49 (0.01, tie broken by index against 51), 51.
	got := b.DeleteNear(population.Point{X: 0.50}, 0.025, -1)
	if got != 3 {
		t.Fatalf("DeleteNear marked %d, want 3", got)
	}
	want := map[int]bool{49: true, 50: true, 51: true}
	for _, i := range b.Deletions() {
		if !want[i] {
			t.Errorf("DeleteNear marked %d, want the 3 nearest {49,50,51}", i)
		}
	}
}

func TestBudgetDeleteNearRespectsBudgetAndLimit(t *testing.T) {
	v := ringView(t, 100)
	b := spatialBudget(10, v)
	if got := b.DeleteNear(population.Point{X: 0.5}, 0.02, 2); got != 2 {
		t.Errorf("limit 2: marked %d", got)
	}
	// Whole-circle ball: only the remaining budget may be spent.
	if got := b.DeleteNear(population.Point{X: 0.5}, 1, -1); got != 8 {
		t.Errorf("budget-capped: marked %d, want 8", got)
	}
	if b.Remaining() != 0 {
		t.Errorf("Remaining = %d", b.Remaining())
	}
	// Exhausted budget: nothing more.
	if got := b.DeleteNear(population.Point{X: 0.5}, 1, -1); got != 0 {
		t.Errorf("exhausted: marked %d", got)
	}
}

func TestBudgetDeleteNearSkipsMarked(t *testing.T) {
	v := ringView(t, 100)
	b := spatialBudget(4, v)
	if !b.Delete(50) {
		t.Fatal("plain delete failed")
	}
	// 50 is already marked, so the ball's nearest unmarked agents win.
	if got := b.DeleteNear(population.Point{X: 0.50}, 0.025, -1); got != 3 {
		t.Fatalf("marked %d, want 3", got)
	}
	seen := map[int]int{}
	for _, i := range b.Deletions() {
		seen[i]++
	}
	if seen[50] != 1 || len(seen) != 4 {
		t.Errorf("deletions %v: want 50 once plus 3 distinct near neighbors", b.Deletions())
	}
}

func TestBudgetDeleteNearWithoutSpace(t *testing.T) {
	b := NewBudget(5, 100, 144)
	if got := b.DeleteNear(population.Point{X: 0.5}, 1, -1); got != 0 {
		t.Errorf("unbound DeleteNear marked %d", got)
	}
	if b.Used() != 0 {
		t.Error("unbound DeleteNear consumed budget")
	}
}

func TestBudgetInsertAt(t *testing.T) {
	v := ringView(t, 10)
	b := spatialBudget(2, v)
	pt := population.Point{X: 0.25}
	if !b.InsertAt(agent.State{Round: 1000}, pt) {
		t.Fatal("InsertAt rejected within budget")
	}
	ins := b.Inserts()
	if len(ins) != 1 || !ins[0].Placed || ins[0].At != pt {
		t.Fatalf("staged insertion %+v, want placed at %v", ins, pt)
	}
	if int(ins[0].State.Round) >= v.p.T {
		t.Error("InsertAt skipped round sanitization")
	}
	// Unbound budget: the position is dropped, the insertion stays.
	b2 := NewBudget(1, 10, v.p.T)
	if !b2.InsertAt(agent.State{}, pt) {
		t.Fatal("unbound InsertAt rejected")
	}
	if b2.Inserts()[0].Placed {
		t.Error("unbound InsertAt staged a position")
	}
}

func TestCappedMutatorSpatialOps(t *testing.T) {
	v := ringView(t, 100)
	b := spatialBudget(10, v)
	c := &cappedMutator{m: b, cap: 3}
	if got := c.DeleteNear(population.Point{X: 0.5}, 1, -1); got != 3 {
		t.Errorf("capped DeleteNear marked %d, want cap 3", got)
	}
	if c.InsertAt(agent.State{}, population.Point{X: 0.1}) {
		t.Error("capped InsertAt exceeded cap")
	}
	if b.Used() != 3 {
		t.Errorf("inner budget used %d", b.Used())
	}
}

func TestPatchDeleterConcentrates(t *testing.T) {
	v := ringView(t, 100)
	d := NewPatchDeleter(population.Point{X: 0.50}, 0.03)
	b := spatialBudget(4, v)
	d.Act(v, b, prng.New(1))
	dels := b.Deletions()
	if len(dels) != 4 {
		t.Fatalf("patch deleter used %d of budget 4", len(dels))
	}
	for _, i := range dels {
		if match.RingDist2(v.pos[i], population.Point{X: 0.50}) > 0.03*0.03 {
			t.Errorf("victim %d outside the patch", i)
		}
	}
}

func TestPatchDeleterFallsBackWithoutSpace(t *testing.T) {
	v := testView(t, 50)
	d := NewPatchDeleter(population.Point{}, 0.1)
	b := NewBudget(5, 50, v.p.T)
	d.Act(v, b, prng.New(2))
	if got := len(b.Deletions()); got != 5 {
		t.Errorf("fallback deleted %d, want full budget 5", got)
	}
}

func TestClusterInserterPlacesInPatch(t *testing.T) {
	v := ringView(t, 10)
	v.round = 7
	in := NewClusterInserter(population.Point{X: 0.2}, 0.05, nil)
	b := spatialBudget(6, v)
	in.Act(v, b, prng.New(3))
	ins := b.Inserts()
	if len(ins) != 6 {
		t.Fatalf("cluster inserter staged %d, want 6", len(ins))
	}
	for _, i := range ins {
		if !i.Placed {
			t.Fatal("cluster insertion not placed")
		}
		if match.RingDist2(i.At, population.Point{X: 0.2}) > 0.05*0.05 {
			t.Errorf("insertion at %v outside the patch", i.At)
		}
		if s := i.State; !s.Active || !s.Recruiting || s.Round != 7 {
			t.Errorf("default cluster state %+v, want a recruiting leader at the current round", s)
		}
	}
}

func TestRewireAdversaryMode(t *testing.T) {
	sw, err := match.NewSmallWorld(0.001, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ra := NewRewireDenier(population.Point{X: 0.5}, 0.1)
	ra.BindMatcher(sw)
	if got := ra.Mode(0, population.Point{X: 0.55}); got != match.RewireDeny {
		t.Errorf("inside patch: mode %v", got)
	}
	if got := ra.Mode(1, population.Point{X: 0.9}); got != match.RewireDefault {
		t.Errorf("outside patch: mode %v", got)
	}
	all := NewRewireDenier(population.Point{}, -1)
	all.BindMatcher(sw)
	if got := all.Mode(2, population.Point{X: 0.3}); got != match.RewireDeny {
		t.Errorf("deny-all: mode %v", got)
	}
	// Binding to a non-SmallWorld matcher leaves the strategy inert (no
	// panic, no controller installed).
	tor, err := match.NewTorus(0.01)
	if err != nil {
		t.Fatal(err)
	}
	NewRewireDenier(population.Point{}, 0.1).BindMatcher(tor)
}

func TestSpatialStrategyNames(t *testing.T) {
	for _, tc := range []struct {
		adv  Adversary
		want string
	}{
		{NewPatchDeleter(population.Point{}, 0.05), "delete-patch(r=0.05)"},
		{NewClusterInserter(population.Point{}, 0.05, nil), "insert-cluster(r=0.05)"},
		{NewRewireDenier(population.Point{}, 0.05), "rewire-deny(r=0.05)"},
		{NewRewireDenier(population.Point{}, -1), "rewire-deny-all"},
	} {
		if got := tc.adv.Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
}

// TestPatchComboSplitsBudget pins the starvation fix: with K > 1 both
// halves act every round (the favored half capped at half the budget,
// rounded up), and with K = 1 the favor alternates across activations so
// paced budgets serve deletion and insertion in turn.
func TestPatchComboSplitsBudget(t *testing.T) {
	center := population.Point{X: 0.5}
	combo := NewPatchCombo(center, 0.1, nil)
	v := ringView(t, 100)
	b := spatialBudget(4, v)
	combo.Act(v, b, prng.New(1))
	if del, ins := len(b.Deletions()), len(b.Inserts()); del != 2 || ins != 2 {
		t.Errorf("turn 0 at K=4: %d deletions, %d insertions; want 2+2", del, ins)
	}

	// K = 1: activations alternate deleter-first, inserter-first, ...
	combo = NewPatchCombo(center, 0.1, nil)
	var dels, inss []int
	for i := 0; i < 4; i++ {
		b := spatialBudget(1, v)
		combo.Act(v, b, prng.New(uint64(i)))
		dels = append(dels, len(b.Deletions()))
		inss = append(inss, len(b.Inserts()))
	}
	for i := 0; i < 4; i++ {
		wantDel, wantIns := 1, 0
		if i%2 == 1 {
			wantDel, wantIns = 0, 1
		}
		if dels[i] != wantDel || inss[i] != wantIns {
			t.Errorf("K=1 turn %d: del=%d ins=%d, want del=%d ins=%d", i, dels[i], inss[i], wantDel, wantIns)
		}
	}
	if combo.Name() != "patch-combo(r=0.1)" {
		t.Errorf("Name = %q", combo.Name())
	}
}

// TestPatchComboLeftoverReassigned pins the leftover rule: when the favored
// deleter finds an empty ball, the inserter takes the whole budget (and the
// final leftover pass has nothing to add).
func TestPatchComboLeftoverReassigned(t *testing.T) {
	v := ringView(t, 100)
	// A ball around 0.5 that the deleter empties in one pre-pass.
	combo := NewPatchCombo(population.Point{X: 0.505}, 0.011, nil)
	pre := spatialBudget(100, v)
	if n := pre.DeleteNear(population.Point{X: 0.505}, 0.011, -1); n == 0 {
		t.Fatal("setup: ball empty before pre-pass")
	}
	// Simulate the emptied ball by moving every agent out of it.
	for i := range v.pos {
		v.pos[i] = population.Point{X: 0.1}
	}
	b := spatialBudget(4, v)
	combo.Act(v, b, prng.New(2))
	if del, ins := len(b.Deletions()), len(b.Inserts()); del != 0 || ins != 4 {
		t.Errorf("empty ball: del=%d ins=%d, want 0 deletions and the full budget inserted", del, ins)
	}
}
