package baseline

import (
	"fmt"

	"popstab/internal/agent"
	"popstab/internal/params"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/wire"
)

// Attempt2 is the independent-coloring protocol (paper §1.3.1).
//
// Each agent flips a fair coin to pick a color, then compares the colors of
// the next two agents it encounters: if they were equal it splits with
// probability 1 − 2/N, otherwise it self-destructs, then re-flips and
// repeats. Two encounters with distinct agents yield independent colors
// (Pr[equal] = ½) while hitting the same agent twice forces equality
// (Pr ≈ 1/m), so the split/death balance carries a Θ(1/m) signal about the
// population size — far too weak: the paper shows the population behaves
// like a random walk even with no adversary, which experiment E10
// reproduces.
//
// The split probability 1 − 2/N makes the expected change zero at m = N
// exactly (Pr[equal | m] = ½ + 1/(2m), solve (1−c/N)·Pr[equal] = Pr[diff]
// at m = N for c).
//
// State mapping onto agent.State: Color is the agent's own advertised coin
// (re-flipped at the start of each comparison window); ToRecruit counts
// observations made (0 or 1); Recruiting stores the first observed partner
// color; Active marks an initialized window. Agents run their comparison
// windows asynchronously — there are no epochs (EpochLen = 1).
//
// Attempt2 (and Empty below) satisfy the sim.Stepper concurrency contract:
// configuration is immutable after construction and Step touches only the
// agent's own state and its private per-agent stream.
type Attempt2 struct {
	p      params.Params
	pSplit float64
}

// NewAttempt2 builds the baseline.
func NewAttempt2(p params.Params) (*Attempt2, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Attempt2{p: p, pSplit: 1 - 2/float64(p.N)}, nil
}

// MustNewAttempt2 panics on error (tests and examples).
func MustNewAttempt2(p params.Params) *Attempt2 {
	a, err := NewAttempt2(p)
	if err != nil {
		panic(err)
	}
	return a
}

// EpochLen reports 1: the protocol has no global phase structure.
func (a *Attempt2) EpochLen() int { return 1 }

// Compose sends the agent's current color.
func (a *Attempt2) Compose(s *agent.State) uint8 { return s.Color & 1 }

// Decode interprets the color bit.
func (a *Attempt2) Decode(b uint8) wire.Message {
	return wire.Message{Active: true, Color: b & 1}
}

// Step advances one agent: record the partner's color on each encounter and
// decide after the second, comparing the two partners' colors with each
// other.
func (a *Attempt2) Step(s *agent.State, nbr wire.Message, hasNbr bool, src *prng.Source) population.Action {
	if !s.Active {
		// Fresh window: flip own advertised coin. Active marks an
		// initialized window so adversarially inserted or newborn agents
		// start cleanly.
		s.Color = src.Bit()
		s.Active = true
		s.Recruiting = false
		s.ToRecruit = 0
	}
	if !hasNbr {
		return population.ActKeep
	}
	if s.ToRecruit == 0 {
		// First encounter: remember the partner's color.
		s.Recruiting = nbr.Color == 1
		s.ToRecruit = 1
		return population.ActKeep
	}
	// Second encounter: compare the two observed colors.
	first := uint8(0)
	if s.Recruiting {
		first = 1
	}
	equal := nbr.Color == first
	s.Active = false // next step opens a fresh window
	s.Recruiting = false
	s.ToRecruit = 0
	if !equal {
		return population.ActDie
	}
	if src.Prob(a.pSplit) {
		return population.ActSplit
	}
	return population.ActKeep
}

// String renders the configuration.
func (a *Attempt2) String() string {
	return fmt.Sprintf("attempt2(N=%d pSplit=%.6f)", a.p.N, a.pSplit)
}

// Empty is the do-nothing protocol: agents never split or die. It is the
// reference arm showing what population trajectories look like when only
// the adversary acts.
type Empty struct{}

// EpochLen reports 1.
func (Empty) EpochLen() int { return 1 }

// Compose sends a constant.
func (Empty) Compose(*agent.State) uint8 { return 0 }

// Decode ignores the wire byte.
func (Empty) Decode(uint8) wire.Message { return wire.Message{} }

// Step keeps every agent forever.
func (Empty) Step(*agent.State, wire.Message, bool, *prng.Source) population.Action {
	return population.ActKeep
}
