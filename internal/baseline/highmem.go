package baseline

import (
	"fmt"

	"popstab/internal/prng"
)

// HighMemory is the trivial unique-identifier protocol sketched in paper
// §1.2 ("Population stability in the high-memory setting"). Each agent draws
// a random identifier long enough to be unique with high probability, then
// for an interval broadcasts the set of identifiers it has received so far;
// at the end of the interval every agent knows (approximately) the set of
// all living agents, hence the population size, and corrects proportionally.
//
// The protocol violates the paper's memory model — each agent stores
// Θ(m·|id|) bits — and is therefore simulated by its own engine rather than
// through the Θ(log log N)-bit agent.State machinery. Its role is
// experiment E15: it solves the problem against a deletion-only adversary,
// and collapses against an adversary that inserts agents with fabricated
// identifier sets (arbitrary initial state!), illustrating why insertion
// makes counting-based approaches fail.
// HighMemory runs its own serial engine: the gossip phase is Θ(n·m) map
// merging with cross-agent writes, so it does not fit the sharded
// compose/step pipeline of internal/sim. Its decision phase does use the
// same counter-based per-agent streams as the parallel engine (keyed on
// round and agent slot), keeping decisions independent of iteration order.
type HighMemory struct {
	cfg    HighMemConfig
	agents []hmAgent
	src    *prng.Source
	decKey uint64
	advSrc *prng.Source
	round  uint64
	nextID uint64
}

// hmAgent is one high-memory agent: an identifier and the set of identifiers
// heard this interval.
type hmAgent struct {
	id    uint64
	known map[uint64]struct{}
}

// HighMemConfig parameterizes the high-memory baseline.
type HighMemConfig struct {
	// N is the population target. Any value ≥ 2 (the protocol has no
	// power-of-four constraint).
	N int
	// Gamma is the matched fraction per round, in (0, 1].
	Gamma float64
	// Alpha is the correction dead-band half-width: agents only act when
	// their estimate leaves [(1−α/2)N, (1+α/2)N].
	Alpha float64
	// GossipRounds is the broadcast interval length; 0 derives 2⌈log₂N⌉+4.
	GossipRounds int
	// Seed derives all randomness.
	Seed uint64
}

// NewHighMemory validates cfg and builds the simulator with N fresh agents.
func NewHighMemory(cfg HighMemConfig) (*HighMemory, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("baseline: high-memory N = %d too small", cfg.N)
	}
	if cfg.Gamma <= 0 || cfg.Gamma > 1 {
		return nil, fmt.Errorf("baseline: gamma %v outside (0, 1]", cfg.Gamma)
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("baseline: alpha %v outside (0, 1]", cfg.Alpha)
	}
	if cfg.GossipRounds == 0 {
		lg := 0
		for v := cfg.N; v > 1; v >>= 1 {
			lg++
		}
		cfg.GossipRounds = 2*lg + 4
	}
	root := prng.New(cfg.Seed)
	h := &HighMemory{cfg: cfg, src: root.Split(), advSrc: root.Split()}
	h.decKey = root.Split().Uint64()
	h.agents = make([]hmAgent, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		h.agents = append(h.agents, h.newAgent())
	}
	return h, nil
}

// newAgent draws a fresh unique identifier. 64 random bits stand in for the
// paper's N-bit identifiers; collisions are negligible at simulated scales
// and uniqueness is additionally enforced by a counter in the high bits.
func (h *HighMemory) newAgent() hmAgent {
	h.nextID++
	id := h.nextID<<32 | (h.src.Uint64() & 0xffffffff)
	return hmAgent{id: id, known: map[uint64]struct{}{id: {}}}
}

// Size reports the current population.
func (h *HighMemory) Size() int { return len(h.agents) }

// EpochLen reports the interval length in rounds (gossip + decision).
func (h *HighMemory) EpochLen() int { return h.cfg.GossipRounds + 1 }

// Adversary hooks for the two E15 arms.

// DeleteRandom removes up to k random agents (the deletion-only adversary).
func (h *HighMemory) DeleteRandom(k int) int {
	deleted := 0
	for i := 0; i < k && len(h.agents) > 0; i++ {
		j := h.advSrc.Intn(len(h.agents))
		last := len(h.agents) - 1
		h.agents[j] = h.agents[last]
		h.agents = h.agents[:last]
		deleted++
	}
	return deleted
}

// InsertFabricated inserts k agents whose known-sets are pre-loaded with
// fakeIDs invented identifiers. The inserted agents follow the protocol; the
// poison is purely their initial state, which the model lets the adversary
// choose arbitrarily.
func (h *HighMemory) InsertFabricated(k, fakeIDs int) {
	for i := 0; i < k; i++ {
		a := h.newAgent()
		for f := 0; f < fakeIDs; f++ {
			h.nextID++
			a.known[h.nextID<<32|(h.advSrc.Uint64()&0xffffffff)] = struct{}{}
		}
		h.agents = append(h.agents, a)
	}
}

// RunRound advances one round: pair a γ fraction uniformly, merge known
// sets, and on interval boundaries apply the proportional correction.
func (h *HighMemory) RunRound() {
	n := len(h.agents)
	if n >= 2 {
		perm := h.src.Perm(n)
		pairs := int(h.cfg.Gamma * float64(n) / 2)
		for i := 0; i < 2*pairs; i += 2 {
			a, b := &h.agents[perm[i]], &h.agents[perm[i+1]]
			merge(a.known, b.known)
			merge(b.known, a.known)
		}
	}
	h.round++
	if int(h.round)%h.EpochLen() == 0 {
		h.decide()
	}
}

// merge adds every element of src to dst.
func merge(dst, src map[uint64]struct{}) {
	for id := range src {
		dst[id] = struct{}{}
	}
}

// decide has every agent estimate the population as |known| and correct
// proportionally when the estimate leaves the dead band, then reset its
// known-set for the next interval.
func (h *HighMemory) decide() {
	n := float64(h.cfg.N)
	lo := n * (1 - h.cfg.Alpha/2)
	hi := n * (1 + h.cfg.Alpha/2)
	survivors := h.agents[:0]
	var births []hmAgent
	var coin prng.Source
	for i := range h.agents {
		a := &h.agents[i]
		// Per-agent counter stream: the correction coin depends only on
		// (round, slot), not on how many coins earlier agents drew.
		coin.SeedCounter(h.decKey, h.round, uint64(i))
		est := float64(len(a.known))
		switch {
		case est < lo:
			// Split with probability (N−est)/est so the expected post-step
			// total returns to N when every agent sees the same estimate.
			if coin.Prob((n - est) / est) {
				births = append(births, h.newAgent())
			}
			survivors = append(survivors, *a)
		case est > hi:
			// Die with probability (est−N)/est.
			if !coin.Prob((est - n) / est) {
				survivors = append(survivors, *a)
			}
		default:
			survivors = append(survivors, *a)
		}
	}
	h.agents = append(survivors, births...)
	for i := range h.agents {
		id := h.agents[i].id
		h.agents[i].known = map[uint64]struct{}{id: {}}
	}
}

// RunEpoch runs one full gossip interval plus its decision round.
func (h *HighMemory) RunEpoch() {
	for i := 0; i < h.EpochLen(); i++ {
		h.RunRound()
	}
}

// MemoryBitsPerAgent estimates the per-agent memory the protocol is using
// right now (identifier bits times known-set size), demonstrating the Θ(N)
// blow-up versus the main protocol's Θ(log log N) bits.
func (h *HighMemory) MemoryBitsPerAgent() float64 {
	if len(h.agents) == 0 {
		return 0
	}
	total := 0
	for i := range h.agents {
		total += len(h.agents[i].known)
	}
	return 64 * float64(total) / float64(len(h.agents))
}
