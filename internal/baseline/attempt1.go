// Package baseline implements the comparison protocols the paper analyzes:
//
//   - Attempt 1 (§1.3.1): non-interactive leader election — sound without an
//     adversary, destroyed by leader-targeted deletion or insertion;
//   - Attempt 2 (§1.3.1): independent coloring — no special states, but the
//     population random-walks away from N even with no adversary;
//   - Empty: the do-nothing protocol (drift reference);
//   - HighMemory (§1.2): the trivial unique-identifier protocol, which needs
//     Θ(N)-bit agents and survives only deletion-only adversaries.
//
// Attempt 1, Attempt 2 and Empty implement the same Stepper contract as the
// real protocol and run on the internal/sim engine; HighMemory violates the
// low-memory model and ships its own self-contained simulator.
package baseline

import (
	"fmt"
	"math"

	"popstab/internal/adversary"
	"popstab/internal/agent"
	"popstab/internal/params"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/wire"
)

// Attempt1 is the non-interactive leader election protocol (paper §1.3.1),
// including the signal amplification step the paper sketches ("After
// repeating to amplify the signal, with high probability the agents can
// detect if the population is too small or too large").
//
// An epoch consists of Repeats sub-epochs followed by one decision round.
// In each sub-epoch every agent flips a coin with Pr[1] = 1/N ("I am a
// leader") and then gossips the OR of everything heard for gossipRounds
// rounds; at the sub-epoch's end each agent increments a counter if it heard
// any leader. The per-sub-epoch signal Pr[heard] = 1 − (1−1/N)^m ≈ 1 − e^(−m/N)
// is monotone in the population m, so in the decision round each agent
// splits with probability pSplitMax·(Repeats−count)/Repeats and dies with
// probability pDieMax·count/Repeats, calibrated to zero expected change at
// m = N.
//
// State mapping onto agent.State: Color holds the agent's own coin for the
// current sub-epoch; Active holds the running OR ("heard a 1" this
// sub-epoch); ToRecruit counts sub-epochs in which a leader was heard.
// Round is the epoch position.
//
// Attempt1 satisfies the sim.Stepper concurrency contract: its fields are
// immutable after construction and Step touches only the agent's own state
// and its private per-agent stream, so the parallel engine may shard it
// freely.
type Attempt1 struct {
	p params.Params
	// repeats is the number of amplification sub-epochs per epoch.
	repeats int
	// gossipRounds is the OR-spreading window per sub-epoch, sized so one
	// leader reaches (nearly) everyone under the γ-matching scheduler:
	// growth phase log N / log(1+γ) plus straggler phase log N / γ.
	gossipRounds int
	// pSplitMax and pDieMax scale the decision probabilities.
	pSplitMax, pDieMax float64
	// qEquilibrium is Pr[heard per sub-epoch] at m = N, the calibration
	// point: 1 − 1/e.
	qEquilibrium float64
}

// NewAttempt1 builds the baseline for the given parameters.
func NewAttempt1(p params.Params) (*Attempt1, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	lnN := math.Log(float64(p.N))
	gossip := int(math.Ceil(lnN/math.Log1p(p.Gamma))) + int(math.Ceil(lnN/p.Gamma))
	q := 1 - math.Exp(-1)
	const pSplitMax = 0.3
	return &Attempt1{
		p:            p,
		repeats:      6,
		gossipRounds: gossip,
		pSplitMax:    pSplitMax,
		pDieMax:      pSplitMax * (1 - q) / q,
		qEquilibrium: q,
	}, nil
}

// MustNewAttempt1 panics on error (tests and examples).
func MustNewAttempt1(p params.Params) *Attempt1 {
	a, err := NewAttempt1(p)
	if err != nil {
		panic(err)
	}
	return a
}

// SubEpochLen reports the length of one sub-epoch (coin round + gossip).
func (a *Attempt1) SubEpochLen() int { return a.gossipRounds + 1 }

// Repeats reports the number of amplification sub-epochs.
func (a *Attempt1) Repeats() int { return a.repeats }

// EpochLen reports the epoch length: Repeats sub-epochs + 1 decision round.
func (a *Attempt1) EpochLen() int { return a.repeats*a.SubEpochLen() + 1 }

// Compose sends the single gossip bit (own coin OR anything heard).
func (a *Attempt1) Compose(s *agent.State) uint8 {
	if s.Active || s.Color == 1 {
		return 1
	}
	return 0
}

// Decode interprets the gossip bit.
func (a *Attempt1) Decode(b uint8) wire.Message {
	return wire.Message{Active: b != 0}
}

// Step advances one agent one round.
func (a *Attempt1) Step(s *agent.State, nbr wire.Message, hasNbr bool, src *prng.Source) population.Action {
	t := a.EpochLen()
	if int(s.Round) >= t {
		s.Round %= uint32(t)
	}
	round := int(s.Round)
	act := population.ActKeep
	sub := a.SubEpochLen()
	switch {
	case round == t-1:
		// Decision round: split when few sub-epochs heard a leader
		// (population probably small), die when most did.
		count := float64(s.ToRecruit)
		r := float64(a.repeats)
		// One uniform draw with disjoint split/die regions keeps the two
		// probabilities exact (pSplitMax + pDieMax < 1 guarantees
		// disjointness), so the expected change is
		// pSplitMax·(r−c)/r − pDieMax·c/r, zero exactly at c/r = q.
		u := src.Float64()
		if u < a.pSplitMax*(r-count)/r {
			act = population.ActSplit
		} else if u > 1-a.pDieMax*count/r {
			act = population.ActDie
		}
		s.Active = false
		s.Color = 0
		s.ToRecruit = 0
	case round%sub == 0:
		// Coin round: Pr[coin=1] = 1/N = 2^-logN. The previous sub-epoch
		// was closed in its final gossip round.
		s.Color = 0
		s.Active = false
		if src.BiasedCoin(a.p.LogN) {
			s.Color = 1
			s.Active = true
		}
	default:
		// Gossip round: fold in the neighbor's bit.
		if hasNbr && nbr.Active {
			s.Active = true
		}
		if round%sub == sub-1 && s.Active {
			// Final gossip round of the sub-epoch: record the outcome.
			s.ToRecruit++
		}
	}
	s.AdvanceRound(t)
	return act
}

// --- Attempt-1-specific adversaries (the attacks from §1.3.1) ---

// attempt1Suppressor inserts one agent per sub-epoch with the "heard a
// leader" bit set, forcing every agent to believe the population is large:
// the population then shrinks toward collapse. This is the paper's "insert
// an agent with coin value c = 1 in each phase".
type attempt1Suppressor struct {
	a *Attempt1
}

var _ adversary.Adversary = (*attempt1Suppressor)(nil)

// NewAttempt1Suppressor returns the insertion attack against Attempt 1.
func NewAttempt1Suppressor(a *Attempt1) adversary.Adversary {
	return &attempt1Suppressor{a: a}
}

func (s *attempt1Suppressor) Name() string { return "attempt1-suppressor" }

func (s *attempt1Suppressor) Act(v adversary.View, m adversary.Mutator, _ *prng.Source) {
	round := int(v.GlobalRound() % uint64(s.a.EpochLen()))
	if round >= s.a.EpochLen()-1 || round%s.a.SubEpochLen() != 1 {
		// Insert just after each coin round so the fake signal gossips for
		// the whole sub-epoch.
		return
	}
	m.Insert(agent.State{Round: uint32(round), Active: true, Color: 1})
}

// attempt1Igniter deletes every agent whose coin or heard bit is 1, early in
// the gossip phase while the carriers are still few: no agent ever hears a
// leader, every agent splits, and the population explodes. This is exactly
// the paper's "identify the agent or agents with coin value 1 and
// selectively remove these agents".
type attempt1Igniter struct {
	scratch []int
}

var _ adversary.Adversary = (*attempt1Igniter)(nil)

// NewAttempt1Igniter returns the deletion attack against Attempt 1.
func NewAttempt1Igniter(*Attempt1) adversary.Adversary {
	return &attempt1Igniter{}
}

func (g *attempt1Igniter) Name() string { return "attempt1-igniter" }

func (g *attempt1Igniter) Act(v adversary.View, m adversary.Mutator, _ *prng.Source) {
	// Strike every round: carriers double per round, so early, repeated
	// removal keeps the count at zero. (Agents with a nonzero sub-epoch
	// counter are not carriers — the bit they heard is already erased.)
	g.scratch = v.Find(g.scratch[:0], m.Remaining(), func(s agent.State) bool {
		return s.Active || s.Color == 1
	})
	for _, i := range g.scratch {
		m.Delete(i)
	}
}

// String renders the configuration.
func (a *Attempt1) String() string {
	return fmt.Sprintf("attempt1(N=%d epoch=%d repeats=%d gossip=%d pSplit=%.3f pDie=%.3f)",
		a.p.N, a.EpochLen(), a.repeats, a.gossipRounds, a.pSplitMax, a.pDieMax)
}
