package baseline

import (
	"math"
	"testing"

	"popstab/internal/adversary"
	"popstab/internal/agent"
	"popstab/internal/params"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/sim"
	"popstab/internal/wire"
)

func fastParams(t testing.TB) params.Params {
	t.Helper()
	p, err := params.Derive(4096, params.WithTinner(24))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// --- Attempt 1 ---

func TestAttempt1EpochStructure(t *testing.T) {
	a := MustNewAttempt1(fastParams(t))
	if a.EpochLen() != a.Repeats()*a.SubEpochLen()+1 {
		t.Errorf("EpochLen = %d, want repeats·subEpoch+1", a.EpochLen())
	}
	// The gossip window must exceed the OR-spread time log(N)/log(1+γ):
	// at N=4096, γ=0.25 that is ≈ 38 rounds.
	if a.SubEpochLen() < 39 {
		t.Errorf("SubEpochLen = %d: gossip window too short for full OR spread", a.SubEpochLen())
	}
	if _, err := NewAttempt1(params.Params{}); err == nil {
		t.Error("NewAttempt1 accepted zero params")
	}
}

func TestAttempt1CoinRound(t *testing.T) {
	p := fastParams(t)
	a := MustNewAttempt1(p)
	src := prng.New(1)
	leaders := 0
	const trials = 1 << 18
	for i := 0; i < trials; i++ {
		s := agent.State{Round: 0}
		a.Step(&s, wire.Message{}, false, src)
		if s.Color == 1 {
			leaders++
		}
	}
	want := float64(trials) / float64(p.N)
	sigma := math.Sqrt(want)
	if math.Abs(float64(leaders)-want) > 6*sigma+1 {
		t.Errorf("leader coin: %d of %d, want about %.0f", leaders, trials, want)
	}
}

func TestAttempt1GossipSpreads(t *testing.T) {
	a := MustNewAttempt1(fastParams(t))
	src := prng.New(2)
	s := agent.State{Round: 3}
	a.Step(&s, wire.Message{Active: true}, true, src)
	if !s.Active {
		t.Error("gossip bit not absorbed")
	}
	// Compose must now broadcast the bit.
	if a.Compose(&s) != 1 {
		t.Error("heard bit not broadcast")
	}
}

func TestAttempt1SubEpochCounting(t *testing.T) {
	a := MustNewAttempt1(fastParams(t))
	src := prng.New(2)
	// An agent that heard a leader must increment its counter in the final
	// gossip round of the sub-epoch.
	last := uint32(a.SubEpochLen() - 1)
	s := agent.State{Round: last, Active: true}
	a.Step(&s, wire.Message{}, false, src)
	if s.ToRecruit != 1 {
		t.Errorf("counter %d after heard sub-epoch, want 1", s.ToRecruit)
	}
	// A silent agent does not.
	s2 := agent.State{Round: last}
	a.Step(&s2, wire.Message{}, false, src)
	if s2.ToRecruit != 0 {
		t.Errorf("counter %d after silent sub-epoch, want 0", s2.ToRecruit)
	}
}

func TestAttempt1Decision(t *testing.T) {
	a := MustNewAttempt1(fastParams(t))
	src := prng.New(3)
	lastRound := uint32(a.EpochLen() - 1)

	// Count 0 (no sub-epoch heard a leader) → split w.p. pSplitMax = 0.3.
	splits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		s := agent.State{Round: lastRound}
		act := a.Step(&s, wire.Message{}, false, src)
		if act == population.ActSplit {
			splits++
		}
		if act == population.ActDie {
			t.Fatal("count 0 must never die")
		}
		if s.Round != 0 || s.Active || s.ToRecruit != 0 {
			t.Fatalf("state not reset: %+v", s)
		}
	}
	want := a.pSplitMax * trials
	sigma := math.Sqrt(trials * a.pSplitMax * (1 - a.pSplitMax))
	if math.Abs(float64(splits)-want) > 6*sigma {
		t.Errorf("splits %d, want about %.0f", splits, want)
	}

	// Full count → die w.p. pDieMax, never split.
	deaths := 0
	for i := 0; i < trials; i++ {
		s := agent.State{Round: lastRound, ToRecruit: int8(a.Repeats())}
		act := a.Step(&s, wire.Message{}, false, src)
		if act == population.ActSplit {
			t.Fatal("full count must never split")
		}
		if act == population.ActDie {
			deaths++
		}
	}
	want = a.pDieMax * trials
	sigma = math.Sqrt(trials * a.pDieMax * (1 - a.pDieMax))
	if math.Abs(float64(deaths)-want) > 6*sigma {
		t.Errorf("deaths %d, want about %.0f", deaths, want)
	}
}

// TestAttempt1StableWithoutAdversary: absent attacks, the amplified signal
// is strong (Θ(1) per epoch) and the population stays near N. Fail fast if
// it escapes a generous band, so a miscalibration cannot hang the suite.
func TestAttempt1StableWithoutAdversary(t *testing.T) {
	p := fastParams(t)
	a := MustNewAttempt1(p)
	e := sim.MustNew(sim.Config{Params: p, Protocol: a, Seed: 4})
	for epoch := 0; epoch < 30; epoch++ {
		for i := 0; i < a.EpochLen(); i++ {
			e.RunRound()
		}
		if size := e.Size(); size < p.N/2 || size > 2*p.N {
			t.Fatalf("attempt 1 drifted to %d at epoch %d without adversary", size, epoch)
		}
	}
}

// TestAttempt1SuppressorCollapses is E9 direction one: a single inserted
// "heard=1" agent per epoch forces global death pressure.
func TestAttempt1SuppressorCollapses(t *testing.T) {
	p := fastParams(t)
	a := MustNewAttempt1(p)
	e := sim.MustNew(sim.Config{Params: p, Protocol: a, Seed: 5, K: 1,
		Adversary: NewAttempt1Suppressor(a)})
	epochs := 0
	for e.Size() > p.N/2 && epochs < 40 {
		for i := 0; i < a.EpochLen(); i++ {
			e.RunRound()
		}
		epochs++
	}
	if e.Size() > p.N/2 {
		t.Errorf("suppressor failed: size %d after %d epochs", e.Size(), epochs)
	}
}

// TestAttempt1IgniterExplodes is E9 direction two: deleting the few
// coin=1 carriers every round makes every epoch silent, so everyone splits.
func TestAttempt1IgniterExplodes(t *testing.T) {
	p := fastParams(t)
	a := MustNewAttempt1(p)
	// Budget N^{1/4} per round is ample: carriers are ≈ m/N ≈ 1 expected.
	e := sim.MustNew(sim.Config{Params: p, Protocol: a, Seed: 6, K: p.MaxTolerableK(),
		Adversary: NewAttempt1Igniter(a)})
	epochs := 0
	for e.Size() < 2*p.N && epochs < 20 {
		for i := 0; i < a.EpochLen(); i++ {
			e.RunRound()
		}
		epochs++
	}
	if e.Size() < 2*p.N {
		t.Errorf("igniter failed: size %d after %d epochs", e.Size(), epochs)
	}
}

// --- Attempt 2 ---

func TestAttempt2Window(t *testing.T) {
	p := fastParams(t)
	a := MustNewAttempt2(p)
	src := prng.New(7)

	s := agent.State{}
	// First encounter: record, no decision.
	if act := a.Step(&s, wire.Message{Color: 1}, true, src); act != population.ActKeep {
		t.Fatalf("first encounter acted: %v", act)
	}
	if s.ToRecruit != 1 || !s.Recruiting {
		t.Fatalf("first observation not recorded: %+v", s)
	}
	// Second encounter with mismatching color: die.
	if act := a.Step(&s, wire.Message{Color: 0}, true, src); act != population.ActDie {
		t.Fatalf("mismatched observations: want die")
	}
}

func TestAttempt2EqualObservationsSplit(t *testing.T) {
	p := fastParams(t)
	a := MustNewAttempt2(p)
	src := prng.New(8)
	splits, deaths := 0, 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		s := agent.State{}
		a.Step(&s, wire.Message{Color: 1}, true, src)
		switch a.Step(&s, wire.Message{Color: 1}, true, src) {
		case population.ActSplit:
			splits++
		case population.ActDie:
			deaths++
		}
	}
	if deaths != 0 {
		t.Fatalf("%d deaths on equal observations", deaths)
	}
	want := (1 - 2/float64(p.N)) * trials
	if math.Abs(float64(splits)-want) > 6*math.Sqrt(float64(trials)*2/float64(p.N))+50 {
		t.Errorf("splits %d, want about %.0f", splits, want)
	}
}

func TestAttempt2UnmatchedRoundsDoNotCount(t *testing.T) {
	a := MustNewAttempt2(fastParams(t))
	src := prng.New(9)
	s := agent.State{}
	for i := 0; i < 10; i++ {
		if act := a.Step(&s, wire.Message{}, false, src); act != population.ActKeep {
			t.Fatalf("unmatched round acted: %v", act)
		}
	}
	if s.ToRecruit != 0 {
		t.Errorf("unmatched rounds advanced the window: %+v", s)
	}
}

// TestAttempt2RandomWalks is E10 at test scale: the population's drift from
// N over a fixed horizon is far larger for Attempt 2 than for a stable
// protocol. We assert the walk escapes a ±2% band that the main protocol
// comfortably holds over the same horizon (see sim tests).
func TestAttempt2RandomWalks(t *testing.T) {
	p := fastParams(t)
	a := MustNewAttempt2(p)
	maxDev := 0
	for seed := uint64(0); seed < 3; seed++ {
		e := sim.MustNew(sim.Config{Params: p, Protocol: a, Seed: 10 + seed})
		for r := 0; r < 20*p.T; r++ {
			e.RunRound()
			dev := e.Size() - p.N
			if dev < 0 {
				dev = -dev
			}
			if dev > maxDev {
				maxDev = dev
			}
		}
	}
	if maxDev < p.N/50 {
		t.Errorf("attempt 2 max deviation %d over 20 epochs; expected random-walk excursions > %d",
			maxDev, p.N/50)
	}
}

// --- Empty ---

func TestEmptyNeverActs(t *testing.T) {
	var e Empty
	src := prng.New(11)
	s := agent.State{Round: 3, Active: true}
	if act := e.Step(&s, wire.Message{}, true, src); act != population.ActKeep {
		t.Errorf("empty protocol acted: %v", act)
	}
	if e.EpochLen() != 1 {
		t.Error("EpochLen")
	}
	if e.Compose(&s) != 0 {
		t.Error("Compose")
	}
	if (e.Decode(3) != wire.Message{}) {
		t.Error("Decode")
	}
}

func TestEmptyPopulationOnlyChangesViaAdversary(t *testing.T) {
	p := fastParams(t)
	e := sim.MustNew(sim.Config{Params: p, Protocol: Empty{}, Seed: 12, K: 3,
		Adversary: adversary.NewRandomDeleter()})
	start := e.Size()
	rounds := 50
	for i := 0; i < rounds; i++ {
		e.RunRound()
	}
	if e.Size() != start-3*rounds {
		t.Errorf("size %d, want %d", e.Size(), start-3*rounds)
	}
}

// --- High memory ---

func TestHighMemoryValidation(t *testing.T) {
	if _, err := NewHighMemory(HighMemConfig{N: 1, Gamma: 0.5, Alpha: 0.5}); err == nil {
		t.Error("accepted N=1")
	}
	if _, err := NewHighMemory(HighMemConfig{N: 100, Gamma: 0, Alpha: 0.5}); err == nil {
		t.Error("accepted gamma=0")
	}
	if _, err := NewHighMemory(HighMemConfig{N: 100, Gamma: 0.5, Alpha: 2}); err == nil {
		t.Error("accepted alpha=2")
	}
}

func TestHighMemoryStableNoAdversary(t *testing.T) {
	h, err := NewHighMemory(HighMemConfig{N: 512, Gamma: 0.5, Alpha: 0.5, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 10; epoch++ {
		h.RunEpoch()
		if h.Size() < 256 || h.Size() > 1024 {
			t.Fatalf("epoch %d: size %d", epoch, h.Size())
		}
	}
}

// TestHighMemoryRecoversFromDeletion is the E15 positive arm: with full
// counting, recovery from deletions is fast and accurate.
func TestHighMemoryRecoversFromDeletion(t *testing.T) {
	h, err := NewHighMemory(HighMemConfig{N: 512, Gamma: 0.5, Alpha: 0.5, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	h.DeleteRandom(200) // acute 40% loss
	if h.Size() != 312 {
		t.Fatalf("deletion failed: %d", h.Size())
	}
	for epoch := 0; epoch < 6; epoch++ {
		h.RunEpoch()
	}
	if h.Size() < 400 || h.Size() > 650 {
		t.Errorf("no recovery: size %d after 6 epochs", h.Size())
	}
}

// TestHighMemoryPoisonedByInsertion is the E15 negative arm: a handful of
// agents inserted with fabricated identifier sets convince everyone the
// population is huge, triggering mass death.
func TestHighMemoryPoisonedByInsertion(t *testing.T) {
	h, err := NewHighMemory(HighMemConfig{N: 512, Gamma: 0.5, Alpha: 0.5, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 8; epoch++ {
		h.InsertFabricated(2, 1024) // 2 poisoned agents per epoch
		h.RunEpoch()
	}
	if h.Size() > 256 {
		t.Errorf("poisoning failed: size %d, want collapse below (1-α)N = 256", h.Size())
	}
}

func TestHighMemoryMemoryBlowUp(t *testing.T) {
	h, err := NewHighMemory(HighMemConfig{N: 256, Gamma: 1, Alpha: 0.5, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	// After a full gossip interval each agent knows nearly everyone:
	// memory per agent ≈ 64·N bits ≫ log log N.
	for i := 0; i < h.EpochLen()-1; i++ {
		h.RunRound()
	}
	if bits := h.MemoryBitsPerAgent(); bits < 64*200 {
		t.Errorf("memory per agent %.0f bits; expected Θ(N·64)", bits)
	}
}

func TestHighMemoryEpochLenDerived(t *testing.T) {
	h, err := NewHighMemory(HighMemConfig{N: 512, Gamma: 0.5, Alpha: 0.5, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if h.EpochLen() != 2*9+4+1 {
		t.Errorf("EpochLen = %d, want 23", h.EpochLen())
	}
}

// --- DriftingClock ---

func TestDriftingClockValidation(t *testing.T) {
	p := fastParams(t)
	inner := MustNewAttempt2(p)
	if _, err := NewDriftingClock(nil, 0.1); err == nil {
		t.Error("accepted nil inner")
	}
	if _, err := NewDriftingClock(inner, -0.1); err == nil {
		t.Error("accepted negative skip probability")
	}
	if _, err := NewDriftingClock(inner, 1); err == nil {
		t.Error("accepted certain stall")
	}
}

func TestDriftingClockZeroIsTransparent(t *testing.T) {
	p := fastParams(t)
	run := func(wrap bool) int {
		var proto sim.Stepper = MustNewAttempt2(p)
		if wrap {
			d, err := NewDriftingClock(proto, 0)
			if err != nil {
				t.Fatal(err)
			}
			proto = d
		}
		e := sim.MustNew(sim.Config{Params: p, Protocol: proto, Seed: 20})
		e.RunRounds(100)
		return e.Size()
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("delta=0 wrapper changed the trajectory: %d != %d", a, b)
	}
}

func TestDriftingClockStallsRoundCounter(t *testing.T) {
	p := fastParams(t)
	pr := MustNewAttempt2(p) // epoch-free; only stall behavior matters
	d, err := NewDriftingClock(pr, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	src := prng.New(21)
	// With 50% stalls over many single-agent steps, roughly half the steps
	// must leave the state untouched.
	stalled := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		s := agent.State{}
		d.Step(&s, wire.Message{}, false, src)
		if !s.Active {
			// Attempt2's first non-stalled step always initializes the
			// window (Active=true), so Active=false means the step stalled.
			stalled++
		}
	}
	if stalled < trials/3 || stalled > 2*trials/3 {
		t.Errorf("stalled %d of %d steps at delta=0.5", stalled, trials)
	}
	if d.EpochLen() != pr.EpochLen() {
		t.Error("EpochLen not delegated")
	}
	if d.Compose(&agent.State{}) != pr.Compose(&agent.State{}) {
		t.Error("Compose not delegated")
	}
}

func TestStringers(t *testing.T) {
	p := fastParams(t)
	if s := MustNewAttempt1(p).String(); s == "" {
		t.Error("attempt1 String")
	}
	if s := MustNewAttempt2(p).String(); s == "" {
		t.Error("attempt2 String")
	}
}
