package baseline

import (
	"fmt"

	"popstab/internal/agent"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/sim"
	"popstab/internal/wire"
)

// DriftingClock wraps a protocol so that each agent, independently each
// round, stalls with probability SkipProb: it neither acts nor advances its
// round counter, modeling a slow local clock. This probes the partial-
// synchrony question from the paper's §1.2 ("one could consider a setting
// where agents have clocks that have bounded drift relative to one
// another"): the round-consistency check culls agents whose clocks drift a
// full phase apart, so small drift costs a small, steady death rate while
// large drift destroys the epoch alignment. Experiment A6 quantifies the
// tolerance curve.
type DriftingClock struct {
	// Inner is the wrapped protocol.
	Inner sim.Stepper
	// SkipProb is each agent's per-round stall probability.
	SkipProb float64
}

var _ sim.Stepper = (*DriftingClock)(nil)

// NewDriftingClock validates the stall probability and wraps inner.
func NewDriftingClock(inner sim.Stepper, skipProb float64) (*DriftingClock, error) {
	if inner == nil {
		return nil, fmt.Errorf("baseline: nil inner protocol")
	}
	if skipProb < 0 || skipProb >= 1 {
		return nil, fmt.Errorf("baseline: skip probability %v outside [0, 1)", skipProb)
	}
	return &DriftingClock{Inner: inner, SkipProb: skipProb}, nil
}

// EpochLen reports the inner protocol's epoch length.
func (d *DriftingClock) EpochLen() int { return d.Inner.EpochLen() }

// Compose delegates to the inner protocol.
func (d *DriftingClock) Compose(s *agent.State) uint8 { return d.Inner.Compose(s) }

// Decode delegates to the inner protocol.
func (d *DriftingClock) Decode(b uint8) wire.Message { return d.Inner.Decode(b) }

// Step stalls the agent with probability SkipProb and otherwise delegates.
// A stalled agent is invisible to its neighbor only in the sense that it
// takes no action; the neighbor still consumed the stalled agent's (stale)
// message, exactly as a real slow processor would behave.
func (d *DriftingClock) Step(s *agent.State, nbr wire.Message, hasNbr bool, src *prng.Source) population.Action {
	if src.Prob(d.SkipProb) {
		return population.ActKeep
	}
	return d.Inner.Step(s, nbr, hasNbr, src)
}
