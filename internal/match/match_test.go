package match

import (
	"math"
	"testing"
	"testing/quick"

	"popstab/internal/prng"
)

func TestUniformValidation(t *testing.T) {
	if _, err := NewUniform(0); err == nil {
		t.Error("NewUniform(0) accepted")
	}
	if _, err := NewUniform(1.1); err == nil {
		t.Error("NewUniform(1.1) accepted")
	}
	if _, err := NewUniform(0.25); err != nil {
		t.Errorf("NewUniform(0.25) rejected: %v", err)
	}
}

func TestBernoulliValidation(t *testing.T) {
	if _, err := NewBernoulli(0); err == nil {
		t.Error("NewBernoulli(0) accepted")
	}
	if _, err := NewBernoulli(2); err == nil {
		t.Error("NewBernoulli(2) accepted")
	}
	if _, err := NewBernoulli(0.5); err != nil {
		t.Errorf("NewBernoulli(0.5) rejected: %v", err)
	}
}

func TestUniformPairingValid(t *testing.T) {
	src := prng.New(1)
	sched := Uniform{Gamma: 0.25}
	var p Pairing
	f := func(nRaw uint16) bool {
		n := int(nRaw%2000) + 2
		sched.Sample(n, src, &p)
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUniformCoverage(t *testing.T) {
	src := prng.New(2)
	for _, gamma := range []float64{0.1, 0.25, 0.5, 1.0} {
		sched := Uniform{Gamma: gamma}
		var p Pairing
		const n = 10000
		sched.Sample(n, src, &p)
		want := 2 * int(gamma*n/2)
		if got := p.Matched(); got != want {
			t.Errorf("gamma=%v: matched %d, want exactly %d", gamma, got, want)
		}
	}
}

func TestUniformIndependentAcrossRounds(t *testing.T) {
	// Two consecutive samples should pair agent 0 with different partners
	// almost always for large n.
	src := prng.New(3)
	sched := Uniform{Gamma: 1.0}
	var p Pairing
	const n = 1000
	same := 0
	trials := 200
	prev := int32(-2)
	for i := 0; i < trials; i++ {
		sched.Sample(n, src, &p)
		if p.Nbr[0] == prev {
			same++
		}
		prev = p.Nbr[0]
	}
	if same > 3 {
		t.Errorf("agent 0 kept the same neighbor %d/%d rounds", same, trials)
	}
}

func TestUniformMarginalUniformity(t *testing.T) {
	// Under a full matching over n=4 agents, agent 0's partner must be
	// uniform over {1,2,3}.
	src := prng.New(4)
	sched := Full{}
	var p Pairing
	counts := map[int32]int{}
	const trials = 30000
	for i := 0; i < trials; i++ {
		sched.Sample(4, src, &p)
		counts[p.Nbr[0]]++
	}
	want := float64(trials) / 3
	sigma := math.Sqrt(want)
	for partner, c := range counts {
		if partner == Unmatched {
			t.Fatalf("agent 0 unmatched under full matching of even n")
		}
		if math.Abs(float64(c)-want) > 6*sigma {
			t.Errorf("partner %d: %d draws, want about %.0f", partner, c, want)
		}
	}
}

func TestFullPairingOddN(t *testing.T) {
	src := prng.New(5)
	var p Pairing
	Full{}.Sample(7, src, &p)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Matched(); got != 6 {
		t.Errorf("matched %d of 7, want 6", got)
	}
}

func TestBernoulliPairingValid(t *testing.T) {
	src := prng.New(6)
	sched := Bernoulli{Participate: 0.5}
	var p Pairing
	for n := 2; n < 200; n += 17 {
		sched.Sample(n, src, &p)
		if err := p.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBernoulliCoverageConcentration(t *testing.T) {
	src := prng.New(7)
	sched := Bernoulli{Participate: 0.5}
	var p Pairing
	const n = 20000
	sched.Sample(n, src, &p)
	got := float64(p.Matched())
	want := 0.5 * n
	if math.Abs(got-want) > 6*math.Sqrt(n*0.25) {
		t.Errorf("matched %v, want about %v", got, want)
	}
}

func TestSequentialSingle(t *testing.T) {
	src := prng.New(8)
	var p Pairing
	Sequential{}.Sample(100, src, &p)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.Matched(); got != 2 {
		t.Errorf("matched %d agents, want 2", got)
	}
	// Degenerate population.
	Sequential{}.Sample(1, src, &p)
	if got := p.Matched(); got != 0 {
		t.Errorf("matched %d in population of 1, want 0", got)
	}
}

func TestPairingResetGrowsAndShrinks(t *testing.T) {
	var p Pairing
	p.Reset(100)
	if len(p.Nbr) != 100 {
		t.Fatalf("len = %d", len(p.Nbr))
	}
	p.Nbr[0] = 5
	p.Reset(10)
	if len(p.Nbr) != 10 {
		t.Fatalf("len after shrink = %d", len(p.Nbr))
	}
	if p.Nbr[0] != Unmatched {
		t.Fatal("Reset did not clear entries")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	var p Pairing
	p.Reset(4)
	p.Nbr[0] = 1 // asymmetric: Nbr[1] still Unmatched
	if p.Validate() == nil {
		t.Error("Validate accepted asymmetric pairing")
	}
	p.Reset(4)
	p.Nbr[2] = 2
	if p.Validate() == nil {
		t.Error("Validate accepted self-pairing")
	}
	p.Reset(4)
	p.Nbr[3] = 9
	if p.Validate() == nil {
		t.Error("Validate accepted out-of-range neighbor")
	}
}

func TestSampleNoAllocationsSteadyState(t *testing.T) {
	src := prng.New(9)
	sched := Uniform{Gamma: 0.25}
	var p Pairing
	sched.Sample(1000, src, &p) // warm up buffers
	allocs := testing.AllocsPerRun(20, func() {
		sched.Sample(1000, src, &p)
	})
	if allocs > 0 {
		t.Errorf("Sample allocates %v per run in steady state", allocs)
	}
}

func TestSchedulerNames(t *testing.T) {
	cases := []struct {
		s    Scheduler
		want string
	}{
		{Uniform{Gamma: 0.25}, "uniform(0.25)"},
		{Full{}, "full"},
		{Bernoulli{Participate: 0.5}, "bernoulli(0.50)"},
		{Sequential{}, "sequential"},
	}
	for _, tc := range cases {
		if got := tc.s.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

func TestMinFractions(t *testing.T) {
	if got := (Uniform{Gamma: 0.3}).MinFraction(); got != 0.3 {
		t.Errorf("Uniform.MinFraction = %v", got)
	}
	if got := (Full{}).MinFraction(); got != 1 {
		t.Errorf("Full.MinFraction = %v", got)
	}
	if got := (Bernoulli{Participate: 0.5}).MinFraction(); got != 0 {
		t.Errorf("Bernoulli.MinFraction = %v", got)
	}
}

func BenchmarkUniformSample(b *testing.B) {
	src := prng.New(1)
	sched := Uniform{Gamma: 0.25}
	var p Pairing
	const n = 65536
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Sample(n, src, &p)
	}
}
