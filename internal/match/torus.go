package match

import (
	"fmt"
	"math"

	"popstab/internal/population"
	"popstab/internal/prng"
)

// Torus is the geometric communication model the paper sketches as an open
// question (§1.2, "Alternate communication models"): agents live at points
// of the unit 2-torus and each round are matched with a nearby agent instead
// of a uniformly random one. Daughters of a split appear next to their
// parent (cell division); inserted agents appear at fresh uniform positions
// (the adversary's choice is modeled as oblivious placement).
//
// Torus owns the position side-array: Bind registers a population.Positions
// tracker, so splits, deaths, adversarial insertions/deletions, and forced
// resizes all keep positions aligned without the engine knowing about
// geometry. Matching pairs each agent with the nearest unmatched agent in
// its 3×3 grid neighborhood, visiting agents in random order: coverage is
// high (most agents have a close unmatched neighbor) but pairs are strongly
// local — the property under test in experiments A5, A7, and A8. The
// matching runs on the sharded spatial pipeline (spatial.go): bucketing and
// candidate search split across SetWorkers goroutines with output
// bit-identical to the serial algorithm for every worker count.
type Torus struct {
	// Sigma is the standard deviation of a daughter's offset from its
	// parent, in torus units (callers usually derive it from the mean
	// inter-agent spacing 1/√N).
	Sigma float64

	spatial[torusGeom]
}

var (
	_ Matcher      = (*Torus)(nil)
	_ Binder       = (*Torus)(nil)
	_ WorkerSetter = (*Torus)(nil)
	_ Space        = (*Torus)(nil)
)

// NewTorus validates sigma and returns an unbound Torus matcher.
func NewTorus(sigma float64) (*Torus, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("match: torus sigma %v not positive and finite", sigma)
	}
	return &Torus{Sigma: sigma}, nil
}

// Bind implements Binder: it attaches the position side-array (initial and
// inserted agents uniform on the torus, daughters Gaussian around their
// parent) and keeps src for placement randomness. Bind must be called
// exactly once, before the first SampleMatch.
func (t *Torus) Bind(pop *population.Population, src *prng.Source) {
	t.bind(pop, src,
		func() population.Point {
			return population.Point{X: src.Float64(), Y: src.Float64()}
		},
		t.daughter)
}

// MinFraction reports 0: nearest-neighbor matching gives no hard per-round
// coverage guarantee (though realized coverage is high).
func (t *Torus) MinFraction() float64 { return 0 }

// Name reports "torus(σ)".
func (t *Torus) Name() string { return fmt.Sprintf("torus(%.3g)", t.Sigma) }

// daughter places a daughter near its parent: a Gaussian offset of standard
// deviation Sigma, wrapped onto the torus.
func (t *Torus) daughter(parent population.Point) population.Point {
	dx, dy := gaussianOffset(t.src, t.Sigma)
	return population.Point{X: wrap(parent.X + dx), Y: wrap(parent.Y + dy)}
}

// wrap reduces a coordinate into [0, 1).
func wrap(v float64) float64 {
	v = math.Mod(v, 1)
	if v < 0 {
		v++
	}
	return v
}

// TorusDist2 is the squared toroidal distance between two points.
func TorusDist2(a, b population.Point) float64 {
	dx := math.Abs(a.X - b.X)
	if dx > 0.5 {
		dx = 1 - dx
	}
	dy := math.Abs(a.Y - b.Y)
	if dy > 0.5 {
		dy = 1 - dy
	}
	return dx*dx + dy*dy
}

// torusGeom is the 2-D wrapped geometry: a √n × √n bucket grid with 3×3
// neighborhoods (wrapping at the edges) under the toroidal metric.
type torusGeom struct{ side int }

var _ geometry[torusGeom] = torusGeom{}

func (torusGeom) prepare(n int) torusGeom {
	side := int(math.Sqrt(float64(n)))
	if side < 1 {
		side = 1
	}
	return torusGeom{side: side}
}

func (g torusGeom) numCells() int { return g.side * g.side }

func (g torusGeom) cell(pt population.Point) int32 {
	cx := int(pt.X * float64(g.side))
	cy := int(pt.Y * float64(g.side))
	if cx >= g.side {
		cx = g.side - 1
	}
	if cy >= g.side {
		cy = g.side - 1
	}
	return int32(cy*g.side + cx)
}

func (g torusGeom) neighborhood(c int32, buf []int32) []int32 {
	side := g.side
	cx, cy := int(c)%side, int(c)/side
	if cx > 0 && cx < side-1 && cy > 0 && cy < side-1 {
		// Interior fast path (the overwhelming majority of cells): no
		// wrapping, rows are three consecutive ids — same scan order as
		// the general loop below, without the modulo arithmetic.
		for gy := cy - 1; gy <= cy+1; gy++ {
			row := int32(gy*side + cx)
			buf = append(buf, row-1, row, row+1)
		}
		return buf
	}
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			gx := (cx + dx + side) % side
			gy := (cy + dy + side) % side
			buf = append(buf, int32(gy*side+gx))
		}
	}
	return buf
}

func (torusGeom) dist2(a, b population.Point) float64 { return TorusDist2(a, b) }

// patch draws uniformly in the disc of radius r around center (area-uniform:
// ρ = r√u) and wraps onto the torus.
func (torusGeom) patch(src *prng.Source, center population.Point, r float64) population.Point {
	if r <= 0 {
		return center
	}
	rho := r * math.Sqrt(src.Float64())
	theta := 2 * math.Pi * src.Float64()
	return population.Point{
		X: wrap(center.X + rho*math.Cos(theta)),
		Y: wrap(center.Y + rho*math.Sin(theta)),
	}
}
