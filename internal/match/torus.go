package match

import (
	"fmt"
	"math"

	"popstab/internal/population"
	"popstab/internal/prng"
)

// Torus is the geometric communication model the paper sketches as an open
// question (§1.2, "Alternate communication models"): agents live at points
// of the unit 2-torus and each round are matched with a nearby agent instead
// of a uniformly random one. Daughters of a split appear next to their
// parent (cell division); inserted agents appear at fresh uniform positions
// (the adversary's choice is modeled as oblivious placement).
//
// Torus owns the position side-array: Bind registers a population.Positions
// tracker, so splits, deaths, adversarial insertions/deletions, and forced
// resizes all keep positions aligned without the engine knowing about
// geometry. Matching pairs each agent with the nearest unmatched agent in
// its 3×3 grid neighborhood, visiting agents in random order: coverage is
// high (most agents have a close unmatched neighbor) but pairs are strongly
// local — the property under test in experiments A5 and A7.
type Torus struct {
	// Sigma is the standard deviation of a daughter's offset from its
	// parent, in torus units (callers usually derive it from the mean
	// inter-agent spacing 1/√N).
	Sigma float64

	pos *population.Positions
	src *prng.Source
	// probeSrc feeds SampleProbe so measurement probes never perturb the
	// placement stream (src) or the engine's matching stream.
	probeSrc *prng.Source

	// grid buckets agent indices by cell for neighbor search.
	grid [][]int32
}

var (
	_ Matcher = (*Torus)(nil)
	_ Binder  = (*Torus)(nil)
)

// NewTorus validates sigma and returns an unbound Torus matcher.
func NewTorus(sigma float64) (*Torus, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("match: torus sigma %v not positive and finite", sigma)
	}
	return &Torus{Sigma: sigma}, nil
}

// Bind implements Binder: it attaches the position side-array (initial and
// inserted agents uniform on the torus, daughters Gaussian around their
// parent) and keeps src for placement randomness. Bind must be called
// exactly once, before the first SampleMatch.
func (t *Torus) Bind(pop *population.Population, src *prng.Source) {
	if t.pos != nil {
		panic("match: Torus bound twice")
	}
	t.src = src
	t.probeSrc = src.Split()
	t.pos = &population.Positions{
		Place: func() population.Point {
			return population.Point{X: src.Float64(), Y: src.Float64()}
		},
		Spawn: t.daughter,
	}
	pop.Attach(t.pos)
}

// Positions exposes the bound position side-array (nil before Bind).
func (t *Torus) Positions() *population.Positions { return t.pos }

// MinFraction reports 0: nearest-neighbor matching gives no hard per-round
// coverage guarantee (though realized coverage is high).
func (t *Torus) MinFraction() float64 { return 0 }

// Name reports "torus(σ)".
func (t *Torus) Name() string { return fmt.Sprintf("torus(%.3g)", t.Sigma) }

// SampleMatch implements Matcher with nearest-available matching over the
// bound positions, drawing the visit order from src.
func (t *Torus) SampleMatch(pop *population.Population, src *prng.Source, p *Pairing) {
	if t.pos == nil {
		panic("match: Torus used before Bind")
	}
	t.sample(pop.Len(), src, p)
}

// SampleProbe draws one matching from a dedicated probe stream split off at
// Bind time. Measurement probes (e.g. color-agreement sampling between
// rounds) use it so they perturb neither the simulation's matching stream
// nor the placement stream: a probed and an unprobed run of the same
// configuration stay on identical trajectories.
func (t *Torus) SampleProbe(pop *population.Population, p *Pairing) {
	if t.pos == nil {
		panic("match: Torus used before Bind")
	}
	t.sample(pop.Len(), t.probeSrc, p)
}

// daughter places a daughter near its parent: a Gaussian offset of standard
// deviation Sigma via Box-Muller from two uniforms, wrapped onto the torus.
func (t *Torus) daughter(parent population.Point) population.Point {
	u1 := t.src.Float64()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	u2 := t.src.Float64()
	r := t.Sigma * math.Sqrt(-2*math.Log(u1))
	x := parent.X + r*math.Cos(2*math.Pi*u2)
	y := parent.Y + r*math.Sin(2*math.Pi*u2)
	return population.Point{X: wrap(x), Y: wrap(y)}
}

// wrap reduces a coordinate into [0, 1).
func wrap(v float64) float64 {
	v = math.Mod(v, 1)
	if v < 0 {
		v++
	}
	return v
}

// TorusDist2 is the squared toroidal distance between two points.
func TorusDist2(a, b population.Point) float64 {
	dx := math.Abs(a.X - b.X)
	if dx > 0.5 {
		dx = 1 - dx
	}
	dy := math.Abs(a.Y - b.Y)
	if dy > 0.5 {
		dy = 1 - dy
	}
	return dx*dx + dy*dy
}

// sample pairs each agent with the nearest unmatched agent within its 3×3
// grid neighborhood, visiting agents in random order from src.
func (t *Torus) sample(n int, src *prng.Source, p *Pairing) {
	p.Reset(n)
	if n < 2 {
		return
	}
	pos := t.pos.Slice()
	side := int(math.Sqrt(float64(n)))
	if side < 1 {
		side = 1
	}
	if cap(t.grid) < side*side {
		t.grid = make([][]int32, side*side)
	}
	t.grid = t.grid[:side*side]
	for i := range t.grid {
		t.grid[i] = t.grid[i][:0]
	}
	cellOf := func(pt population.Point) (int, int) {
		cx := int(pt.X * float64(side))
		cy := int(pt.Y * float64(side))
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		return cx, cy
	}
	for i := 0; i < n; i++ {
		cx, cy := cellOf(pos[i])
		idx := cy*side + cx
		t.grid[idx] = append(t.grid[idx], int32(i))
	}

	order := src.Perm(n)
	for _, i := range order {
		if p.Nbr[i] != Unmatched {
			continue
		}
		cx, cy := cellOf(pos[i])
		best := int32(-1)
		bestD := math.Inf(1)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				gx := (cx + dx + side) % side
				gy := (cy + dy + side) % side
				for _, j := range t.grid[gy*side+gx] {
					if int(j) == i || p.Nbr[j] != Unmatched {
						continue
					}
					if d := TorusDist2(pos[i], pos[j]); d < bestD {
						bestD = d
						best = j
					}
				}
			}
		}
		if best >= 0 {
			p.Nbr[i] = best
			p.Nbr[best] = int32(i)
		}
	}
}
