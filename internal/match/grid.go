package match

import (
	"fmt"
	"math"

	"popstab/internal/population"
	"popstab/internal/prng"
)

// Grid is the bounded planar spatial communication model: agents live in
// the unit square under the ordinary Euclidean metric — the non-wrapping
// analogue of Torus. Locality is the same O(1/√n) scale, but the square has
// a boundary: edge and corner agents see truncated neighborhoods (5 or 4
// cells instead of 9), so coverage and mixing are slightly worse near the
// rim — the boundary-effect axis of the topology gallery. Daughters appear
// next to their parent (Gaussian offset reflected back into the square);
// inserted agents appear at fresh uniform positions. Matching runs on the
// sharded spatial pipeline (spatial.go).
type Grid struct {
	// Sigma is the standard deviation of a daughter's offset from its
	// parent, in square units (callers usually derive it from the mean
	// inter-agent spacing 1/√N).
	Sigma float64

	spatial[gridGeom]
}

var (
	_ Matcher      = (*Grid)(nil)
	_ Binder       = (*Grid)(nil)
	_ WorkerSetter = (*Grid)(nil)
	_ Space        = (*Grid)(nil)
)

// NewGrid validates sigma and returns an unbound Grid matcher.
func NewGrid(sigma float64) (*Grid, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("match: grid sigma %v not positive and finite", sigma)
	}
	return &Grid{Sigma: sigma}, nil
}

// Bind implements Binder: initial and inserted agents uniform in the
// square, daughters Gaussian around their parent (reflected at the walls).
func (g *Grid) Bind(pop *population.Population, src *prng.Source) {
	g.bind(pop, src,
		func() population.Point {
			return population.Point{X: src.Float64(), Y: src.Float64()}
		},
		g.daughter)
}

// MinFraction reports 0: nearest-neighbor matching gives no hard per-round
// coverage guarantee.
func (g *Grid) MinFraction() float64 { return 0 }

// Name reports "grid(σ)".
func (g *Grid) Name() string { return fmt.Sprintf("grid(%.3g)", g.Sigma) }

// daughter places a daughter near its parent, reflecting the Gaussian
// offset at the square's walls (reflection, not clamping, so daughters do
// not pile up on the boundary).
func (g *Grid) daughter(parent population.Point) population.Point {
	dx, dy := gaussianOffset(g.src, g.Sigma)
	return population.Point{X: reflect01(parent.X + dx), Y: reflect01(parent.Y + dy)}
}

// reflect01 folds a coordinate back into [0, 1) by reflection at the walls.
func reflect01(v float64) float64 {
	v = math.Mod(math.Abs(v), 2)
	if v >= 1 {
		v = 2 - v
	}
	if v >= 1 { // v was exactly an even integer: 2-0 = 2 folds to 0
		v = 0
	}
	return v
}

// EuclidDist2 is the squared Euclidean distance between two points of the
// unit square (no wrapping).
func EuclidDist2(a, b population.Point) float64 {
	dx := a.X - b.X
	dy := a.Y - b.Y
	return dx*dx + dy*dy
}

// gridGeom is the bounded 2-D geometry: a √n × √n bucket grid whose
// neighborhoods truncate at the boundary instead of wrapping.
type gridGeom struct{ side int }

var _ geometry[gridGeom] = gridGeom{}

func (gridGeom) prepare(n int) gridGeom {
	side := int(math.Sqrt(float64(n)))
	if side < 1 {
		side = 1
	}
	return gridGeom{side: side}
}

func (g gridGeom) numCells() int { return g.side * g.side }

func (g gridGeom) cell(pt population.Point) int32 {
	cx := int(pt.X * float64(g.side))
	cy := int(pt.Y * float64(g.side))
	if cx >= g.side {
		cx = g.side - 1
	}
	if cy >= g.side {
		cy = g.side - 1
	}
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	return int32(cy*g.side + cx)
}

func (g gridGeom) neighborhood(c int32, buf []int32) []int32 {
	side := g.side
	cx, cy := int(c)%side, int(c)/side
	for dy := -1; dy <= 1; dy++ {
		gy := cy + dy
		if gy < 0 || gy >= side {
			continue
		}
		for dx := -1; dx <= 1; dx++ {
			gx := cx + dx
			if gx < 0 || gx >= side {
				continue
			}
			buf = append(buf, int32(gy*side+gx))
		}
	}
	return buf
}

func (gridGeom) dist2(a, b population.Point) float64 { return EuclidDist2(a, b) }

// patch draws uniformly in the disc of radius r around center and reflects
// at the square's walls (same folding rule as daughter placement).
func (gridGeom) patch(src *prng.Source, center population.Point, r float64) population.Point {
	if r <= 0 {
		return center
	}
	rho := r * math.Sqrt(src.Float64())
	theta := 2 * math.Pi * src.Float64()
	return population.Point{
		X: reflect01(center.X + rho*math.Cos(theta)),
		Y: reflect01(center.Y + rho*math.Sin(theta)),
	}
}
