package match

import (
	"popstab/internal/pool"
	"popstab/internal/population"
	"popstab/internal/prng"
	"popstab/internal/wire"
)

// Matcher is the population-state-aware generalization of Scheduler: it
// samples one round's communication pairing and may inspect the population
// (typically a side-array it registered at Bind time, such as spatial
// positions) rather than just its size. The unified round engine
// (internal/sim) speaks Matcher; plain Schedulers are adapted with
// FromScheduler.
type Matcher interface {
	// SampleMatch fills p with the round's pairing over the population.
	// It runs in the engine's serial matching phase.
	SampleMatch(pop *population.Population, src *prng.Source, p *Pairing)
	// MinFraction reports the guaranteed lower bound γ on the fraction of
	// agents matched each round (0 for matchers with no guarantee).
	MinFraction() float64
	// Name identifies the matcher in experiment output.
	Name() string
}

// Binder is implemented by Matchers that carry per-population state. The
// engine calls Bind exactly once at construction, after the population
// exists, handing the matcher a dedicated randomness stream (split from the
// engine root after the protocol, scheduler, and adversary streams, so
// binding never perturbs those). Bind typically attaches side-arrays via
// population.Attach.
type Binder interface {
	Bind(pop *population.Population, src *prng.Source)
}

// WorkerSetter is implemented by Matchers whose matching phase itself
// shards across a goroutine pool (the spatial pipeline of spatial.go). The
// engine calls SetWorkers once at construction with its resolved worker
// count; like the engine's own Workers knob it is purely a throughput
// setting — matcher output is bit-identical for every worker count.
type WorkerSetter interface {
	SetWorkers(n int)
}

// PoolSetter is implemented by Matchers that shard their matching phase on
// the engine's persistent worker pool instead of spawning goroutines per
// round. The engine calls SetPool once at construction; a matcher that
// never receives a pool (standalone use) falls back to its own sharding.
// Like SetWorkers, purely a throughput setting — output is identical with
// and without a pool.
type PoolSetter interface {
	SetPool(p *pool.Pool)
}

// Space is implemented by spatial Matchers and describes their geometry to
// position-aware consumers — the adversary seam above all. The engine
// type-asserts its matcher against Space at construction and, when present,
// threads positions and metric into the adversary's View/Mutator (DESIGN.md
// §7): the paper's adversary observes the full state of the system, and on a
// spatial topology the positions are part of that state, not an
// implementation detail.
type Space interface {
	// Positions exposes the bound position side-array (nil before Bind).
	Positions() *population.Positions
	// Dist2 is the squared distance between two positions under this
	// topology's metric (wrapped, Euclidean, or circular).
	Dist2(a, b population.Point) float64
	// PatchPoint draws a position uniformly at random within distance r of
	// center under this topology's geometry, consuming src. Callers own src:
	// the adversary passes its private stream, so patch sampling never
	// perturbs the matcher's placement stream.
	PatchPoint(center population.Point, r float64, src *prng.Source) population.Point
}

// Prebucketer is implemented by Matchers whose first pipeline phase — a
// pure function of the positions — can run ahead of the sample itself. The
// engine uses it to overlap the spatial bucketing phase with the serial
// adversary staging turn (DESIGN.md §12): staging only reads positions, so
// the two are independent, and a turn that does alter the population drops
// the prebucket. Purely a throughput seam — a matcher that is never
// prebucketed produces identical output.
type Prebucketer interface {
	// PreBucket runs the bucketing phase for a population of n agents. The
	// next sample over exactly n agents reuses it; PreBucket must
	// happen-before that sample, with no position mutation in between.
	PreBucket(n int)
	// DropPrebucket discards a pending PreBucket. Call after any mutation
	// that moves, adds, or removes agents.
	DropPrebucket()
}

// PipelineStats are cumulative counters of the spatial matching pipeline,
// incremented once per sample (match and probe samples both count). Times
// are summed wall-clock nanoseconds per phase; a PreBucket overlapped with
// other work still accrues its cost to BucketNS. Observability only —
// deltas between two reads divide into per-round figures (popbench's
// per-phase breakdown); nothing reads them back into the simulation.
type PipelineStats struct {
	// Samples counts pipeline runs.
	Samples uint64
	// BucketNS, ScatterNS, CandNS, and WalkNS are the summed wall-clock
	// costs of phases 1–4 (bucket, counting-sort scatter, candidate
	// selection, greedy walk).
	BucketNS, ScatterNS, CandNS, WalkNS uint64
	// SpecWalks and SerialWalks count how many greedy walks ran
	// speculatively vs through the pure serial path (single shard, or the
	// density gate tripped).
	SpecWalks, SerialWalks uint64
	// SpecVisits counts visits processed by speculative walks;
	// SpecConflicts counts the subset whose speculation was rejected and
	// repaired serially. Their ratio is the walk conflict rate.
	SpecVisits, SpecConflicts uint64
}

// ConflictRate reports SpecConflicts/SpecVisits — the fraction of
// speculatively walked visits that needed serial repair (0 when no
// speculative walk ran).
func (s PipelineStats) ConflictRate() float64 {
	if s.SpecVisits == 0 {
		return 0
	}
	return float64(s.SpecConflicts) / float64(s.SpecVisits)
}

// Sub returns the counter deltas since prev (an earlier read from the same
// matcher).
func (s PipelineStats) Sub(prev PipelineStats) PipelineStats {
	return PipelineStats{
		Samples:       s.Samples - prev.Samples,
		BucketNS:      s.BucketNS - prev.BucketNS,
		ScatterNS:     s.ScatterNS - prev.ScatterNS,
		CandNS:        s.CandNS - prev.CandNS,
		WalkNS:        s.WalkNS - prev.WalkNS,
		SpecWalks:     s.SpecWalks - prev.SpecWalks,
		SerialWalks:   s.SerialWalks - prev.SerialWalks,
		SpecVisits:    s.SpecVisits - prev.SpecVisits,
		SpecConflicts: s.SpecConflicts - prev.SpecConflicts,
	}
}

// PhaseReporter is implemented by Matchers that expose per-phase pipeline
// statistics (the spatial chassis). Read from serial phases only.
type PhaseReporter interface {
	PipelineStats() PipelineStats
}

// Stateful is implemented by Matchers that carry mutable per-run state —
// the spatial chassis's placement/probe streams, sample counters, and
// position side-array. The engine's snapshot (DESIGN.md §8) captures it so
// a restored run replays placement and rewiring randomness exactly;
// stateless matchers (the scheduler adapters) simply don't implement it.
// Both methods run from serial phases only.
type Stateful interface {
	// EncodeState appends the matcher's mutable state to a snapshot.
	EncodeState(e *wire.Enc)
	// DecodeState reinstates state captured by EncodeState on a matcher
	// built from the same configuration and already bound to its
	// population.
	DecodeState(d *wire.Dec) error
}

// FromScheduler adapts a size-only Scheduler into a Matcher. The adaptation
// is behavior-preserving: SampleMatch(pop, …) is exactly Sample(pop.Len(), …).
func FromScheduler(s Scheduler) Matcher { return schedulerMatcher{s} }

// schedulerMatcher wraps a Scheduler; MinFraction and Name promote.
type schedulerMatcher struct{ Scheduler }

func (m schedulerMatcher) SampleMatch(pop *population.Population, src *prng.Source, p *Pairing) {
	m.Sample(pop.Len(), src, p)
}
