package match

import (
	"math"
	"testing"

	"popstab/internal/population"
	"popstab/internal/prng"
)

func TestNewTorusValidation(t *testing.T) {
	for _, sigma := range []float64{0, -0.1, math.NaN(), math.Inf(1)} {
		if _, err := NewTorus(sigma); err == nil {
			t.Errorf("NewTorus accepted sigma %v", sigma)
		}
	}
	if _, err := NewTorus(0.01); err != nil {
		t.Fatal(err)
	}
}

func TestTorusDistance(t *testing.T) {
	cases := []struct {
		a, b population.Point
		want float64
	}{
		{population.Point{X: 0, Y: 0}, population.Point{X: 0, Y: 0}, 0},
		{population.Point{X: 0.1, Y: 0}, population.Point{X: 0.2, Y: 0}, 0.01},
		{population.Point{X: 0.05, Y: 0}, population.Point{X: 0.95, Y: 0}, 0.01}, // wraps around
		{population.Point{X: 0, Y: 0.05}, population.Point{X: 0, Y: 0.95}, 0.01},
		{population.Point{X: 0, Y: 0}, population.Point{X: 0.5, Y: 0.5}, 0.5},
	}
	for _, tc := range cases {
		if got := TorusDist2(tc.a, tc.b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("TorusDist2(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestWrap(t *testing.T) {
	cases := map[float64]float64{0.5: 0.5, 1.25: 0.25, -0.25: 0.75, 2.5: 0.5}
	for in, want := range cases {
		if got := wrap(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("wrap(%v) = %v, want %v", in, got, want)
		}
	}
}

// boundTorus builds a bound torus over a fresh population of n agents.
func boundTorus(t *testing.T, n int, seed uint64) (*Torus, *population.Population) {
	t.Helper()
	const sigma = 1.0 / 64 // spacing at n = 4096
	tor, err := NewTorus(sigma)
	if err != nil {
		t.Fatal(err)
	}
	pop := population.New(n)
	tor.Bind(pop, prng.New(seed))
	return tor, pop
}

func TestTorusBindInitializesPositions(t *testing.T) {
	tor, pop := boundTorus(t, 100, 1)
	if tor.Positions().Len() != pop.Len() {
		t.Fatalf("positions %d != population %d", tor.Positions().Len(), pop.Len())
	}
	for i := 0; i < tor.Positions().Len(); i++ {
		pt := tor.Positions().At(i)
		if pt.X < 0 || pt.X >= 1 || pt.Y < 0 || pt.Y >= 1 {
			t.Fatalf("position %d out of torus: %+v", i, pt)
		}
	}
}

func TestTorusMatchingIsValidAndLocal(t *testing.T) {
	const n = 4096
	tor, pop := boundTorus(t, n, 2)
	var p Pairing
	tor.SampleMatch(pop, prng.New(3), &p)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	matched := 0
	var sumD float64
	for i := 0; i < n; i++ {
		j := p.Nbr[i]
		if j == Unmatched {
			continue
		}
		matched++
		sumD += math.Sqrt(TorusDist2(tor.Positions().At(i), tor.Positions().At(int(j))))
	}
	if matched < n/2 {
		t.Errorf("only %d of %d agents matched", matched, n)
	}
	// Locality: mean pair distance must be on the order of the spacing
	// 1/√n, far below the uniform-matching expectation ≈ 0.38.
	meanD := sumD / float64(matched)
	spacing := 1 / math.Sqrt(float64(n))
	if meanD > 5*spacing {
		t.Errorf("mean pair distance %.4f not local (spacing %.4f)", meanD, spacing)
	}
}

func TestTorusDaughterPlacedNearParent(t *testing.T) {
	tor, _ := boundTorus(t, 16, 4)
	parent := population.Point{X: 0.5, Y: 0.5}
	for i := 0; i < 1000; i++ {
		d := math.Sqrt(TorusDist2(parent, tor.daughter(parent)))
		if d > 10*tor.Sigma {
			t.Fatalf("daughter placed %.4f away (sigma %.4f)", d, tor.Sigma)
		}
	}
}

// TestTorusTracksMutations drives inserts, deletes, and an Apply pass
// through the population and asserts the side-array stays aligned and
// matching still works.
func TestTorusTracksMutations(t *testing.T) {
	tor, pop := boundTorus(t, 64, 5)
	src := prng.New(6)
	for step := 0; step < 50; step++ {
		switch src.Intn(3) {
		case 0:
			pop.Insert(pop.State(src.Intn(pop.Len())))
		case 1:
			pop.DeleteSwap(src.Intn(pop.Len()))
		default:
			actions := make([]population.Action, pop.Len())
			for i := range actions {
				actions[i] = population.Action(src.Intn(3))
			}
			pop.Apply(actions)
		}
		if tor.Positions().Len() != pop.Len() {
			t.Fatalf("step %d: positions %d != population %d", step, tor.Positions().Len(), pop.Len())
		}
	}
	var p Pairing
	tor.SampleMatch(pop, src, &p)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTorusSampleProbeDoesNotTouchGivenStream(t *testing.T) {
	tor, pop := boundTorus(t, 128, 7)
	var p Pairing
	tor.SampleProbe(pop, &p)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromSchedulerPreservesBehavior(t *testing.T) {
	u, err := NewUniform(0.25)
	if err != nil {
		t.Fatal(err)
	}
	m := FromScheduler(u)
	if m.Name() != u.Name() || m.MinFraction() != u.MinFraction() {
		t.Error("adapter does not promote Name/MinFraction")
	}
	const n = 1000
	pop := population.New(n)
	var a, b Pairing
	u.Sample(n, prng.New(9), &a)
	m.SampleMatch(pop, prng.New(9), &b)
	for i := range a.Nbr {
		if a.Nbr[i] != b.Nbr[i] {
			t.Fatalf("adapter diverged at %d: %d != %d", i, a.Nbr[i], b.Nbr[i])
		}
	}
}
