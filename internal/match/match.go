// Package match implements the random-matching communication schedulers of
// the synchronous population model (paper §2, "Connectivity").
//
// In each round, pairs of agents that may communicate are selected by a
// uniformly random matching covering at least a γ fraction of the surviving
// agents; matchings in different rounds are independent, and the adversary
// does not learn the schedule in advance. The package also provides a full
// matching and a Bernoulli-participation variant used by the scheduler
// ablation (experiment A4), and a sequential scheduler approximating the
// classical asynchronous population-protocol model of [AAE07].
package match

import (
	"fmt"

	"popstab/internal/pool"
	"popstab/internal/prng"
)

// Unmatched marks an agent with no neighbor this round in a Pairing.
const Unmatched int32 = -1

// minPairingShard bounds how finely the pairing's O(n) fills shard on the
// worker pool: below ~8k entries per worker the wake-up exceeds the fill.
// Purely a scheduling heuristic — every sharded loop here writes each slot
// from exactly one shard, so output is worker-count-invariant.
const minPairingShard = 8192

// Pairing is the outcome of one round of scheduling: Nbr[i] is the index of
// agent i's neighbor, or Unmatched. A valid pairing is an involution:
// Nbr[Nbr[i]] == i for every matched i.
type Pairing struct {
	Nbr []int32

	// perm is scratch space reused across rounds to avoid per-round
	// allocation.
	perm []int32
	// pool, when set (SetPool), shards the O(n) fills — the Unmatched reset,
	// the identity permutation, and the pair linking. The randomness-
	// consuming partial shuffle itself is inherently sequential and always
	// runs serially, so output is identical with and without a pool.
	pool *pool.Pool
	// fillUnmatched, fillIdentity, and linkPairs are the pooled forms of the
	// three fill loops, bound once in SetPool so the per-round hot path
	// allocates no closures.
	fillUnmatched func(lo, hi int)
	fillIdentity  func(lo, hi int)
	linkPairs     func(lo, hi int)
}

// SetPool attaches a worker pool for the O(n) fill loops. The engine calls
// it once at construction; without a pool every loop runs serially.
func (p *Pairing) SetPool(pl *pool.Pool) {
	p.pool = pl
	p.fillUnmatched = func(lo, hi int) {
		nbr := p.Nbr
		for i := lo; i < hi; i++ {
			nbr[i] = Unmatched
		}
	}
	p.fillIdentity = func(lo, hi int) {
		perm := p.perm
		for i := lo; i < hi; i++ {
			perm[i] = int32(i)
		}
	}
	p.linkPairs = func(lo, hi int) {
		nbr, perm := p.Nbr, p.perm
		for k := lo; k < hi; k++ {
			a, b := perm[2*k], perm[2*k+1]
			nbr[a] = b
			nbr[b] = a
		}
	}
}

// Reset prepares the pairing for a population of n agents, growing buffers
// as needed and marking every agent unmatched.
func (p *Pairing) Reset(n int) {
	if cap(p.Nbr) < n {
		p.Nbr = make([]int32, n)
		p.perm = make([]int32, n)
	}
	p.Nbr = p.Nbr[:n]
	p.perm = p.perm[:n]
	if p.pool != nil {
		p.pool.Run(n, minPairingShard, p.fillUnmatched)
		return
	}
	for i := range p.Nbr {
		p.Nbr[i] = Unmatched
	}
}

// Matched reports the number of matched agents (twice the number of pairs).
func (p *Pairing) Matched() int {
	m := 0
	for _, v := range p.Nbr {
		if v != Unmatched {
			m++
		}
	}
	return m
}

// Validate checks the involution property. It is used by tests and by the
// engine's paranoid mode.
func (p *Pairing) Validate() error {
	for i, j := range p.Nbr {
		if j == Unmatched {
			continue
		}
		if j < 0 || int(j) >= len(p.Nbr) {
			return fmt.Errorf("match: neighbor %d of agent %d out of range", j, i)
		}
		if int(j) == i {
			return fmt.Errorf("match: agent %d matched to itself", i)
		}
		if p.Nbr[j] != int32(i) {
			return fmt.Errorf("match: asymmetric pair (%d -> %d -> %d)", i, j, p.Nbr[j])
		}
	}
	return nil
}

// Scheduler samples one round's communication pairing.
type Scheduler interface {
	// Sample fills p with a random pairing over n agents using src.
	Sample(n int, src *prng.Source, p *Pairing)
	// MinFraction reports the guaranteed lower bound γ on the fraction of
	// agents matched each round (0 for schedulers with no guarantee).
	MinFraction() float64
	// Name identifies the scheduler in experiment output.
	Name() string
}

// Uniform matches exactly ⌊γ·n/2⌋ uniformly random disjoint pairs each
// round: a uniformly random matching covering (as nearly as divisibility
// allows) a γ fraction of agents. This is the model's canonical scheduler.
type Uniform struct {
	// Gamma is the target matched fraction in (0, 1].
	Gamma float64
}

var _ Scheduler = Uniform{}

// NewUniform validates gamma and returns a Uniform scheduler.
func NewUniform(gamma float64) (Uniform, error) {
	if gamma <= 0 || gamma > 1 {
		return Uniform{}, fmt.Errorf("match: gamma %v outside (0, 1]", gamma)
	}
	return Uniform{Gamma: gamma}, nil
}

// MinFraction reports γ (up to rounding in small populations).
func (u Uniform) MinFraction() float64 { return u.Gamma }

// Name reports "uniform(γ)".
func (u Uniform) Name() string { return fmt.Sprintf("uniform(%.2f)", u.Gamma) }

// Sample draws the matching: it partially shuffles the identity permutation
// and pairs consecutive entries of the prefix, which yields a uniformly
// random matching of the requested size in O(γn) time.
func (u Uniform) Sample(n int, src *prng.Source, p *Pairing) {
	p.Reset(n)
	pairs := int(u.Gamma * float64(n) / 2)
	samplePrefixPairs(n, pairs, src, p)
}

// Full matches every agent (one unmatched leftover when n is odd). It is the
// γ = 1 limit and the fastest mixing scheduler.
type Full struct{}

var _ Scheduler = Full{}

// MinFraction reports 1.
func (Full) MinFraction() float64 { return 1 }

// Name reports "full".
func (Full) Name() string { return "full" }

// Sample pairs a uniformly random perfect matching.
func (Full) Sample(n int, src *prng.Source, p *Pairing) {
	p.Reset(n)
	samplePrefixPairs(n, n/2, src, p)
}

// Bernoulli has each agent independently opt in with probability Participate,
// then pairs the participants uniformly (dropping one leftover if odd). The
// matched fraction concentrates around Participate but carries binomial
// noise; it provides no hard per-round guarantee, modeling a slightly
// weaker scheduler for the A4 ablation.
type Bernoulli struct {
	// Participate is each agent's independent participation probability.
	Participate float64
}

var _ Scheduler = Bernoulli{}

// NewBernoulli validates p and returns a Bernoulli scheduler.
func NewBernoulli(p float64) (Bernoulli, error) {
	if p <= 0 || p > 1 {
		return Bernoulli{}, fmt.Errorf("match: participation %v outside (0, 1]", p)
	}
	return Bernoulli{Participate: p}, nil
}

// MinFraction reports 0: no hard guarantee.
func (Bernoulli) MinFraction() float64 { return 0 }

// Name reports "bernoulli(p)".
func (b Bernoulli) Name() string { return fmt.Sprintf("bernoulli(%.2f)", b.Participate) }

// Sample flips one coin per agent and pairs the participants uniformly.
func (b Bernoulli) Sample(n int, src *prng.Source, p *Pairing) {
	p.Reset(n)
	part := p.perm[:0]
	for i := 0; i < n; i++ {
		if src.Prob(b.Participate) {
			part = append(part, int32(i))
		}
	}
	src.Shuffle(len(part), func(i, j int) { part[i], part[j] = part[j], part[i] })
	for i := 0; i+1 < len(part); i += 2 {
		a, c := part[i], part[i+1]
		p.Nbr[a] = c
		p.Nbr[c] = a
	}
}

// Sequential approximates the asynchronous random scheduler of [AAE07]: per
// synchronous tick it schedules exactly one uniformly random interaction
// pair. Drift dynamics are PairsPerRound-times slower; it exists to show the
// protocol's synchrony requirement (the paper's protocol is *not* claimed to
// work here — see the A4 ablation).
type Sequential struct{}

var _ Scheduler = Sequential{}

// MinFraction reports 0.
func (Sequential) MinFraction() float64 { return 0 }

// Name reports "sequential".
func (Sequential) Name() string { return "sequential" }

// Sample matches a single uniformly random pair.
func (Sequential) Sample(n int, src *prng.Source, p *Pairing) {
	p.Reset(n)
	if n < 2 {
		return
	}
	samplePrefixPairs(n, 1, src, p)
}

// samplePrefixPairs shuffles a prefix of 2·pairs indices uniformly and links
// consecutive entries. The prefix of a truncated Fisher-Yates shuffle is a
// uniformly random ordered 2k-subset, so consecutive pairing yields a
// uniformly random matching of size k.
//
// The identity fill and the pair linking shard on the pool (the fill writes
// slot i from one shard only; the linking writes Nbr[a]/Nbr[b] of disjoint
// pairs); the partial shuffle is a sequential PRNG walk and must stay
// serial — parallelizing it would change which variates each swap consumes.
func samplePrefixPairs(n, pairs int, src *prng.Source, p *Pairing) {
	if pairs*2 > n {
		pairs = n / 2
	}
	if pairs <= 0 {
		return
	}
	perm := p.perm[:n]
	if p.pool != nil {
		p.pool.Run(n, minPairingShard, p.fillIdentity)
	} else {
		for i := range perm {
			perm[i] = int32(i)
		}
	}
	src.PartialShuffleInt32(perm, 2*pairs)
	if p.pool != nil {
		p.pool.Run(pairs, minPairingShard, p.linkPairs)
		return
	}
	for i := 0; i < 2*pairs; i += 2 {
		a, b := perm[i], perm[i+1]
		p.Nbr[a] = b
		p.Nbr[b] = a
	}
}
