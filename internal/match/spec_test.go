package match

import (
	"runtime"
	"testing"

	"popstab/internal/population"
	"popstab/internal/prng"
)

// setForceShards overrides the speculative walk's shard count (the test
// handle behind POPSTAB_FORCE_SPEC_SHARDS), returning the restore func.
func setForceShards(v int) (restore func()) {
	old := specForceShards
	specForceShards = v
	return func() { specForceShards = old }
}

// shapePositions rewrites a gallery matcher's positions into one of the
// density shapes the speculative walk must survive: "uniform" (as bound),
// "patchy" (many clumps of ~2 dozen agents sharing a cell — candidate lists
// overlap heavily, so speculation conflicts and the exact rescan fire while
// staying under the density gate), "clustered" (three huge piles — blows
// past the gate on every geometry), and "onepoint" (fully degenerate: every
// distance ties and all agents share one cell).
func shapePositions(t *testing.T, m Matcher, shape string, seed uint64) {
	t.Helper()
	pos := positionsOf(t, m).Slice()
	mut := prng.New(seed)
	switch shape {
	case "uniform":
	case "patchy":
		nclumps := len(pos)/24 + 1
		centers := make([]population.Point, nclumps)
		for i := range centers {
			centers[i] = population.Point{X: mut.Float64(), Y: mut.Float64()}
		}
		for i := range pos {
			c := centers[mut.Intn(nclumps)]
			pos[i] = population.Point{
				X: wrap(c.X + 1e-6*mut.Float64()),
				Y: wrap(c.Y + 1e-6*mut.Float64()),
			}
		}
	case "clustered":
		for i := range pos {
			pos[i] = population.Point{
				X: wrap(float64(mut.Intn(3))/3 + 0.001*mut.Float64()),
				Y: wrap(float64(mut.Intn(3))/3 + 0.001*mut.Float64()),
			}
		}
	case "onepoint":
		for i := range pos {
			pos[i] = population.Point{X: 0.25, Y: 0.25}
		}
	default:
		t.Fatalf("unknown shape %q", shape)
	}
}

// TestSpeculativeWalkBitIdentical is the tentpole invariance guarantee of
// the speculative greedy walk: across the whole topology gallery, density
// shapes from uniform to fully degenerate, worker counts {1, 2, 4, NumCPU},
// and a forced 16-shard speculation far beyond the natural fan-out, the
// pairing is bit-identical to the pure serial walk (workers = 1, no
// speculation). The serial baseline run also pins that one shard takes the
// serial path — no Workers=1 overhead — and the forced runs pin that the
// density gate routes degenerate shapes to the serial walk.
func TestSpeculativeWalkBitIdentical(t *testing.T) {
	shapes := []string{"uniform", "patchy", "clustered", "onepoint"}
	for _, name := range galleryNames {
		for _, shape := range shapes {
			n := 8192
			if shape == "clustered" || shape == "onepoint" {
				// The degenerate shapes are quadratic in cluster size.
				n = 1024
			}
			t.Run(name+"/"+shape, func(t *testing.T) {
				run := func(workers, force int) ([]int32, PipelineStats) {
					defer setForceShards(force)()
					m, pop := buildSpatial(t, name, n, 101)
					shapePositions(t, m, shape, uint64(n)*13)
					m.(WorkerSetter).SetWorkers(workers)
					var p Pairing
					m.SampleMatch(pop, prng.New(777), &p)
					if err := p.Validate(); err != nil {
						t.Fatalf("workers=%d force=%d: %v", workers, force, err)
					}
					out := make([]int32, n)
					copy(out, p.Nbr)
					return out, m.(PhaseReporter).PipelineStats()
				}
				compare := func(label string, got []int32, want []int32) {
					t.Helper()
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s: pairing diverged from serial walk at agent %d: got %d, want %d",
								label, i, got[i], want[i])
						}
					}
				}
				want, base := run(1, 0)
				if base.SerialWalks != 1 || base.SpecWalks != 0 {
					t.Fatalf("workers=1 did not take the serial walk: %+v", base)
				}
				for _, w := range []int{2, 4, runtime.NumCPU()} {
					got, _ := run(w, 0)
					compare("workers="+itoa(w), got, want)
				}
				got, st := run(1, 16)
				compare("forced 16 shards", got, want)
				if shape == "clustered" || shape == "onepoint" {
					if st.SerialWalks != 1 {
						t.Errorf("density gate did not fall back to the serial walk on %s: %+v", shape, st)
					}
				} else if st.SpecWalks != 1 {
					t.Errorf("forced shards did not speculate on %s: %+v", shape, st)
				}
			})
		}
	}
}

// itoa avoids importing strconv for test labels.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestSpeculativeEmptyBallAccept pins the specNone fast path: agents whose
// whole neighborhood is empty (candTotal = 0) are accepted as unpaired with
// no serial check, and the result still equals the serial walk. Nine
// hermits sit in cells whose 3×3 neighborhoods are otherwise empty while
// the rest of the population clusters far away.
func TestSpeculativeEmptyBallAccept(t *testing.T) {
	const n = 1024 // torus side 32
	defer setForceShards(8)()
	run := func(force bool) ([]int32, PipelineStats) {
		if !force {
			defer setForceShards(0)()
		}
		m, pop := buildSpatial(t, "torus", n, 33)
		pos := positionsOf(t, m).Slice()
		mut := prng.New(7)
		for i := range pos {
			pos[i] = population.Point{X: 0.5 * mut.Float64(), Y: 0.5 * mut.Float64()}
		}
		const side = 32.0
		for k := 0; k < 9; k++ {
			r, c := 20+4*(k/3), 20+4*(k%3)
			pos[k] = population.Point{X: (float64(c) + 0.5) / side, Y: (float64(r) + 0.5) / side}
		}
		var p Pairing
		m.SampleMatch(pop, prng.New(55), &p)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		out := make([]int32, n)
		copy(out, p.Nbr)
		return out, m.(PhaseReporter).PipelineStats()
	}
	want, _ := run(false)
	got, st := run(true)
	if st.SpecWalks != 1 {
		t.Fatalf("speculation did not run: %+v", st)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pairing diverged at agent %d: got %d, want %d", i, got[i], want[i])
		}
	}
	for k := 0; k < 9; k++ {
		if got[k] != Unmatched {
			t.Errorf("hermit %d matched with %d, want unmatched", k, got[k])
		}
	}
}

// TestSpeculativeWalkAcrossRounds drives a torus through repeated
// insert/delete/match rounds with forced speculation and asserts every
// round's pairing equals a serial twin's — the buffers and the density
// gate must stay correct as the population churns.
func TestSpeculativeWalkAcrossRounds(t *testing.T) {
	const n = 2048
	build := func() (Matcher, *population.Population) { return buildSpatial(t, "torus", n, 71) }
	ms, pops := build()
	defer setForceShards(8)()
	mp, popp := build()
	srcS, srcP := prng.New(5), prng.New(5)
	mut := prng.New(6)
	for round := 0; round < 12; round++ {
		for k := 0; k < 64; k++ {
			switch mut.Intn(2) {
			case 0:
				i := mut.Intn(pops.Len())
				pops.Insert(pops.State(i))
				popp.Insert(popp.State(i))
			case 1:
				i := mut.Intn(pops.Len())
				pops.DeleteSwap(i)
				popp.DeleteSwap(i)
			}
		}
		var ps, pp Pairing
		func() {
			defer setForceShards(0)()
			ms.SampleMatch(pops, srcS, &ps)
		}()
		mp.SampleMatch(popp, srcP, &pp)
		for i := range ps.Nbr {
			if ps.Nbr[i] != pp.Nbr[i] {
				t.Fatalf("round %d: diverged at agent %d: serial %d, speculative %d",
					round, i, ps.Nbr[i], pp.Nbr[i])
			}
		}
	}
}

// TestPreBucketReuseAndDrop pins the Prebucketer contract on the spatial
// chassis: a PreBucket for exactly the sampled n is consumed and yields the
// identical pairing; a PreBucket for a stale n is ignored; DropPrebucket
// discards a pending one so a subsequent sample rebuckets fresh positions.
func TestPreBucketReuseAndDrop(t *testing.T) {
	const n = 4096
	twin := func() (Matcher, *population.Population) { return buildSpatial(t, "torus", n, 55) }

	// Prebucket + sample vs plain sample.
	m1, pop1 := twin()
	m2, pop2 := twin()
	m1.(Prebucketer).PreBucket(pop1.Len())
	var got, want Pairing
	m1.SampleMatch(pop1, prng.New(9), &got)
	m2.SampleMatch(pop2, prng.New(9), &want)
	for i := range want.Nbr {
		if got.Nbr[i] != want.Nbr[i] {
			t.Fatalf("prebucketed sample diverged at agent %d", i)
		}
	}

	// A stale-n prebucket must be ignored, not half-used.
	m1.(Prebucketer).PreBucket(pop1.Len())
	pop1.Insert(pop1.State(0))
	pop2.Insert(pop2.State(0))
	m1.SampleMatch(pop1, prng.New(10), &got)
	m2.SampleMatch(pop2, prng.New(10), &want)
	for i := range want.Nbr {
		if got.Nbr[i] != want.Nbr[i] {
			t.Fatalf("stale-n prebucket corrupted the sample at agent %d", i)
		}
	}

	// DropPrebucket: positions move between PreBucket and the sample.
	scramble := func(m Matcher) {
		pos := positionsOf(t, m).Slice()
		mut := prng.New(123)
		for i := range pos {
			pos[i] = population.Point{X: mut.Float64(), Y: mut.Float64()}
		}
	}
	m1.(Prebucketer).PreBucket(pop1.Len())
	scramble(m1)
	m1.(Prebucketer).DropPrebucket()
	scramble(m2)
	m1.SampleMatch(pop1, prng.New(11), &got)
	m2.SampleMatch(pop2, prng.New(11), &want)
	for i := range want.Nbr {
		if got.Nbr[i] != want.Nbr[i] {
			t.Fatalf("dropped prebucket still influenced the sample at agent %d", i)
		}
	}
}

// TestPipelineStatsAccumulate pins the PhaseReporter counters: samples and
// per-phase times accumulate, the conflict rate stays in [0, 1], and Sub
// yields deltas.
func TestPipelineStatsAccumulate(t *testing.T) {
	const n = 4096
	m, pop := buildSpatial(t, "torus", n, 77)
	m.(WorkerSetter).SetWorkers(2)
	rep := m.(PhaseReporter)
	src := prng.New(3)
	var p Pairing
	m.SampleMatch(pop, src, &p)
	first := rep.PipelineStats()
	if first.Samples != 1 {
		t.Fatalf("Samples = %d after one sample", first.Samples)
	}
	if first.BucketNS == 0 || first.ScatterNS == 0 || first.CandNS == 0 || first.WalkNS == 0 {
		t.Errorf("phase times did not accumulate: %+v", first)
	}
	if first.SpecWalks+first.SerialWalks != 1 {
		t.Errorf("walk mode counters inconsistent: %+v", first)
	}
	for i := 0; i < 3; i++ {
		m.SampleMatch(pop, src, &p)
	}
	cur := rep.PipelineStats()
	if cur.Samples != 4 {
		t.Fatalf("Samples = %d after four samples", cur.Samples)
	}
	d := cur.Sub(first)
	if d.Samples != 3 || d.SpecWalks+d.SerialWalks != 3 {
		t.Errorf("Sub delta wrong: %+v", d)
	}
	if r := cur.ConflictRate(); r < 0 || r > 1 {
		t.Errorf("conflict rate %v outside [0, 1]", r)
	}
	if cur.SpecVisits > 0 && cur.SpecConflicts > cur.SpecVisits {
		t.Errorf("conflicts %d exceed visits %d", cur.SpecConflicts, cur.SpecVisits)
	}
}
