package match

import (
	"runtime"
	"testing"

	"popstab/internal/population"
	"popstab/internal/prng"
)

// forceAllTargeter forces every agent's rewiring and aims the candidates at
// one arc of the ring.
type forceAllTargeter struct {
	center population.Point
	r      float64
}

func (f forceAllTargeter) Mode(int, population.Point) RewireMode { return RewireForce }
func (f forceAllTargeter) RewireTarget() (population.Point, float64, bool) {
	return f.center, f.r, true
}

// TestRewireForceTargetsPatch pins the targeting semantics: with every
// agent forced into the target arc, each matched pair was formed by some
// agent taking a candidate from its list — and every candidate list holds
// only arc members — so every matched pair touches the arc.
func TestRewireForceTargetsPatch(t *testing.T) {
	const n = 4096
	tgt := forceAllTargeter{center: population.Point{X: 0.3}, r: 0.04}
	sw, err := NewSmallWorld(1.0/n, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	pop := population.New(n)
	sw.Bind(pop, prng.New(41))
	sw.SetRewireController(tgt)

	inPatch := func(i int32) bool {
		return RingDist2(sw.Positions().At(int(i)), tgt.center) <= tgt.r*tgt.r
	}
	var p Pairing
	src := prng.New(42)
	for round := 0; round < 3; round++ {
		sw.SampleMatch(pop, src, &p)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		matched, touching := 0, 0
		for i := int32(0); i < n; i++ {
			j := p.Nbr[i]
			if j == Unmatched || j < i {
				continue
			}
			matched++
			if inPatch(i) || inPatch(j) {
				touching++
			}
		}
		if matched == 0 {
			t.Fatalf("round %d: nothing matched", round)
		}
		if touching != matched {
			t.Errorf("round %d: %d of %d matched pairs avoid the target arc", round, matched-touching, matched)
		}
	}
}

// TestRewireForceEmptyPatchFallsBack pins the degraded mode: a target ball
// holding no agents leaves forced agents on uniform long-range draws, so
// the round still matches.
func TestRewireForceEmptyPatchFallsBack(t *testing.T) {
	const n = 1024
	sw, err := NewSmallWorld(1.0/n, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	pop := population.New(n)
	sw.Bind(pop, prng.New(51))
	// Squeeze everyone into [0, 0.5) so the arc around 0.75 is empty.
	for i := 0; i < n; i++ {
		pt := sw.Positions().At(i)
		sw.Positions().SetAt(i, population.Point{X: pt.X / 2})
	}
	sw.SetRewireController(forceAllTargeter{center: population.Point{X: 0.75}, r: 0.1})
	var p Pairing
	sw.SampleMatch(pop, prng.New(52), &p)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if m := p.Matched(); m < n/2 {
		t.Fatalf("empty target arc collapsed the matching: %d of %d matched", m, n)
	}
}

// TestRewireForceWorkerInvariant pins determinism: the forced-target
// pipeline produces bit-identical pairings for every worker count.
func TestRewireForceWorkerInvariant(t *testing.T) {
	const n = 4096
	run := func(workers int) []int32 {
		sw, err := NewSmallWorld(1.0/n, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		pop := population.New(n)
		sw.Bind(pop, prng.New(61))
		sw.SetRewireController(forceAllTargeter{center: population.Point{X: 0.7}, r: 0.03})
		sw.SetWorkers(workers)
		var p Pairing
		src := prng.New(62)
		out := make([]int32, 0, 3*n)
		for round := 0; round < 3; round++ {
			sw.SampleMatch(pop, src, &p)
			out = append(out, p.Nbr...)
		}
		return out
	}
	want := run(1)
	for _, w := range []int{2, runtime.NumCPU()} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d diverges at slot %d: %d != %d", w, i, got[i], want[i])
			}
		}
	}
}
