package match

import (
	"math"
	"runtime"
	"testing"

	"popstab/internal/population"
	"popstab/internal/prng"
)

// The three benchmarks below evidence the sharded pipeline's speedup
// criterion at N = 2²⁰: the historical serial algorithm (the golden
// reference), the pipeline pinned to one worker, and the pipeline at
// NumCPU. Output is bit-identical across all three (see
// TestTorusGoldenAgainstSerialReference); only wall time differs.

func benchTorusSample(b *testing.B, workers int) {
	b.Helper()
	const n = 1 << 20
	tor, err := NewTorus(1 / math.Sqrt(float64(n)))
	if err != nil {
		b.Fatal(err)
	}
	pop := population.New(n)
	tor.Bind(pop, prng.New(1))
	tor.SetWorkers(workers)
	src := prng.New(2)
	var p Pairing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tor.SampleMatch(pop, src, &p)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/sec, "agentsteps/s")
	}
}

func BenchmarkTorusMatchReferenceSerialN1048576(b *testing.B) {
	const n = 1 << 20
	tor, err := NewTorus(1 / math.Sqrt(float64(n)))
	if err != nil {
		b.Fatal(err)
	}
	pop := population.New(n)
	tor.Bind(pop, prng.New(1))
	pos := tor.Positions().Slice()
	src := prng.New(2)
	var p Pairing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		referenceNearestSample(pos, src, &p)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/sec, "agentsteps/s")
	}
}

func BenchmarkTorusMatchPipelineW1N1048576(b *testing.B) { benchTorusSample(b, 1) }
func BenchmarkTorusMatchPipelineN1048576(b *testing.B)   { benchTorusSample(b, runtime.NumCPU()) }
