package match

import (
	"fmt"
	"math"

	"popstab/internal/population"
	"popstab/internal/prng"
)

// SmallWorld is the Watts-Strogatz topology of the gallery: the Ring
// substrate with a rewiring parameter β. Each round, each agent's
// candidate set is independently rewired with probability β — instead of
// its nearest ring neighbors it proposes to uniformly random agents — so β
// interpolates between pure 1-D locality (β = 0, exactly Ring's geometry)
// and well-mixed-like long-range contact (β = 1). This is the per-round
// analogue of Watts-Strogatz edge rewiring, adapted to a population whose
// membership changes every round: rewiring a static lattice would not
// survive insertions and swap-deletes, so the coin is re-flipped each
// round from a per-agent counter-based stream.
//
// Determinism: rewiring coins come from prng counter streams keyed on
// (matcher key, sample counter, agent index) — pure functions of the seed,
// never of shard boundaries — so the sharded candidate phase stays
// bit-identical across worker counts, and probe samples (which use a
// distinct counter plane) cannot perturb the simulation trajectory.
//
// A rewired agent whose random candidates are all already matched when it
// is visited stays unmatched that round (it does not fall back to its ring
// neighborhood); with candK independent draws the miss probability is
// negligible until the round is nearly fully matched.
//
// The long-range link assignment is itself adversary-visible state: a
// RewireController installed with SetRewireController can force or deny
// individual agents' rewiring (adversarial rewiring — the adversary chooses
// which agents get long-range links). Directives are consulted before the β
// coin, per agent, from the sharded candidate phase.
type SmallWorld struct {
	// Sigma is the standard deviation of a daughter's offset from its
	// parent on the ring, in circle units.
	Sigma float64
	// Beta is the per-agent per-round rewiring probability in [0, 1].
	Beta float64

	spatial[ringGeom]

	// key identifies this matcher's rewiring counter streams, drawn from
	// the bind stream.
	key uint64
	// ctl is the adversary's rewiring override (nil = pure β coin).
	ctl RewireController
	// tgt is ctl's optional candidate-targeting facet, cached at install.
	tgt RewireTargeter
	// targets is the per-sample list of agents inside the targeter's ball,
	// rebuilt serially by the prematch hook (ascending index order) and
	// read concurrently — but never written — by the sharded candidate
	// phase.
	targets []int32
}

// RewireMode is a per-agent rewiring directive from a RewireController.
type RewireMode uint8

// Rewiring directives.
const (
	// RewireDefault leaves the agent on the β coin.
	RewireDefault RewireMode = iota
	// RewireForce rewires the agent unconditionally this round.
	RewireForce
	// RewireDeny pins the agent to its ring neighborhood this round.
	RewireDeny
)

// RewireController lets an adversary own the long-range link assignment of a
// SmallWorld round: Mode is consulted for every agent before the β coin,
// with the agent's current position (valid at matching time regardless of
// how insertions and swap-deletions reshuffled indices since the adversary's
// turn).
//
// Concurrency/determinism contract: Mode is called concurrently from the
// sharded candidate phase and must be a pure read — any state it consults
// must be written only in the serial phases of the round (the adversary's
// turn precedes the matching), and its answer must depend only on (i, pt)
// and that state, never on shard boundaries or call order.
type RewireController interface {
	Mode(i int, pt population.Point) RewireMode
}

// RewireTargeter is the optional second facet of a RewireController: a
// controller that also aims the links it forces. When the installed
// controller implements it and reports a ball, every agent it rewires
// (RewireForce, or a successful β coin under RewireDefault is NOT affected
// — only forced agents) draws its long-range candidates uniformly from the
// agents currently inside the ball instead of from the whole population:
// the adversary drags links INTO a patch, coupling the population to the
// patch residents. An empty ball falls back to uniform long-range draws.
//
// RewireTarget is consulted once per sample, serially, before the sharded
// phases; like Mode it must be a pure read of serially-written state.
type RewireTargeter interface {
	// RewireTarget reports the target ball; ok false disables targeting.
	RewireTarget() (center population.Point, r float64, ok bool)
}

// SetRewireController installs (or, with nil, removes) the adversary's
// rewiring override. Serial phases only.
func (m *SmallWorld) SetRewireController(c RewireController) {
	m.ctl = c
	m.tgt, _ = c.(RewireTargeter)
}

// buildTargets is the prematch hook: when a targeter reports a ball, it
// collects the agents inside it in ascending index order. Running serially
// before the sharded candidate phase makes the list identical for every
// worker count, so forced-candidate draws stay worker-invariant.
func (m *SmallWorld) buildTargets(n int) {
	m.targets = m.targets[:0]
	if m.tgt == nil {
		return
	}
	center, r, ok := m.tgt.RewireTarget()
	if !ok || r < 0 {
		return
	}
	r2 := r * r
	for i, pt := range m.pos.Slice() {
		if m.geo.dist2(center, pt) <= r2 {
			m.targets = append(m.targets, int32(i))
		}
	}
}

var (
	_ Matcher      = (*SmallWorld)(nil)
	_ Binder       = (*SmallWorld)(nil)
	_ WorkerSetter = (*SmallWorld)(nil)
	_ Space        = (*SmallWorld)(nil)
)

// NewSmallWorld validates sigma and beta and returns an unbound SmallWorld
// matcher.
func NewSmallWorld(sigma, beta float64) (*SmallWorld, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("match: smallworld sigma %v not positive and finite", sigma)
	}
	if beta < 0 || beta > 1 || math.IsNaN(beta) {
		return nil, fmt.Errorf("match: smallworld beta %v outside [0, 1]", beta)
	}
	return &SmallWorld{Sigma: sigma, Beta: beta}, nil
}

// Bind implements Binder: ring placement (uniform on the circle, daughters
// 1-D Gaussian around their parent) plus the rewiring key draw.
func (m *SmallWorld) Bind(pop *population.Population, src *prng.Source) {
	m.key = src.Uint64()
	m.bind(pop, src,
		func() population.Point {
			return population.Point{X: src.Float64()}
		},
		m.daughter)
	m.rewrite = m.rewireCandidates
	m.prematch = m.buildTargets
}

// MinFraction reports 0: no hard per-round coverage guarantee.
func (m *SmallWorld) MinFraction() float64 { return 0 }

// Name reports "smallworld(σ,β)".
func (m *SmallWorld) Name() string {
	return fmt.Sprintf("smallworld(%.3g,%.2f)", m.Sigma, m.Beta)
}

// daughter places a daughter near its parent on the circle.
func (m *SmallWorld) daughter(parent population.Point) population.Point {
	dx, _ := gaussianOffset(m.src, m.Sigma)
	return population.Point{X: wrap(parent.X + dx)}
}

// rewireCandidates is the spatial pipeline's rewrite hook: with probability
// Beta it replaces agent i's candidate list with len(dst) uniform draws
// from the other agents, reporting how many it wrote; otherwise it returns
// -1 and the geometric (ring) candidates stand. A RewireController's
// directive overrides the β coin (the coin is then not drawn; candidate
// draws still come from the same per-agent counter stream, so the outcome
// stays a pure function of (i, call) and the serially-written controller
// state). It runs concurrently from shards: all randomness comes from the
// (key, call, i) counter stream.
func (m *SmallWorld) rewireCandidates(i, n int, call uint64, dst []int32) int {
	src := prng.AtCounter(m.key, call, uint64(i))
	mode := RewireDefault
	if m.ctl != nil {
		mode = m.ctl.Mode(i, m.pos.At(i))
	}
	switch mode {
	case RewireDeny:
		return -1
	case RewireForce:
		// A forced agent with an installed target ball draws its
		// candidates from the agents inside it (built serially by the
		// prematch hook). The ball may contain the agent itself; a
		// self-draw deterministically takes the next list entry, and a
		// ball holding only this agent leaves it candidate-less
		// (unmatched this round).
		if tl := m.targets; len(tl) > 0 {
			for k := range dst {
				t := src.Intn(len(tl))
				if int(tl[t]) == i {
					if len(tl) == 1 {
						return 0
					}
					t = (t + 1) % len(tl)
				}
				dst[k] = tl[t]
			}
			return len(dst)
		}
	default:
		if !src.Prob(m.Beta) {
			return -1
		}
	}
	for k := range dst {
		j := src.Intn(n - 1)
		if j >= i {
			j++ // uniform over [0, n) \ {i}
		}
		dst[k] = int32(j)
	}
	return len(dst)
}
