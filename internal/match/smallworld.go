package match

import (
	"fmt"
	"math"

	"popstab/internal/population"
	"popstab/internal/prng"
)

// SmallWorld is the Watts-Strogatz topology of the gallery: the Ring
// substrate with a rewiring parameter β. Each round, each agent's
// candidate set is independently rewired with probability β — instead of
// its nearest ring neighbors it proposes to uniformly random agents — so β
// interpolates between pure 1-D locality (β = 0, exactly Ring's geometry)
// and well-mixed-like long-range contact (β = 1). This is the per-round
// analogue of Watts-Strogatz edge rewiring, adapted to a population whose
// membership changes every round: rewiring a static lattice would not
// survive insertions and swap-deletes, so the coin is re-flipped each
// round from a per-agent counter-based stream.
//
// Determinism: rewiring coins come from prng counter streams keyed on
// (matcher key, sample counter, agent index) — pure functions of the seed,
// never of shard boundaries — so the sharded candidate phase stays
// bit-identical across worker counts, and probe samples (which use a
// distinct counter plane) cannot perturb the simulation trajectory.
//
// A rewired agent whose random candidates are all already matched when it
// is visited stays unmatched that round (it does not fall back to its ring
// neighborhood); with candK independent draws the miss probability is
// negligible until the round is nearly fully matched.
type SmallWorld struct {
	// Sigma is the standard deviation of a daughter's offset from its
	// parent on the ring, in circle units.
	Sigma float64
	// Beta is the per-agent per-round rewiring probability in [0, 1].
	Beta float64

	spatial[ringGeom]

	// key identifies this matcher's rewiring counter streams, drawn from
	// the bind stream.
	key uint64
}

var (
	_ Matcher      = (*SmallWorld)(nil)
	_ Binder       = (*SmallWorld)(nil)
	_ WorkerSetter = (*SmallWorld)(nil)
)

// NewSmallWorld validates sigma and beta and returns an unbound SmallWorld
// matcher.
func NewSmallWorld(sigma, beta float64) (*SmallWorld, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("match: smallworld sigma %v not positive and finite", sigma)
	}
	if beta < 0 || beta > 1 || math.IsNaN(beta) {
		return nil, fmt.Errorf("match: smallworld beta %v outside [0, 1]", beta)
	}
	return &SmallWorld{Sigma: sigma, Beta: beta}, nil
}

// Bind implements Binder: ring placement (uniform on the circle, daughters
// 1-D Gaussian around their parent) plus the rewiring key draw.
func (m *SmallWorld) Bind(pop *population.Population, src *prng.Source) {
	m.key = src.Uint64()
	m.bind(pop, src,
		func() population.Point {
			return population.Point{X: src.Float64()}
		},
		m.daughter)
	m.rewrite = m.rewireCandidates
}

// MinFraction reports 0: no hard per-round coverage guarantee.
func (m *SmallWorld) MinFraction() float64 { return 0 }

// Name reports "smallworld(σ,β)".
func (m *SmallWorld) Name() string {
	return fmt.Sprintf("smallworld(%.3g,%.2f)", m.Sigma, m.Beta)
}

// daughter places a daughter near its parent on the circle.
func (m *SmallWorld) daughter(parent population.Point) population.Point {
	dx, _ := gaussianOffset(m.src, m.Sigma)
	return population.Point{X: wrap(parent.X + dx)}
}

// rewireCandidates is the spatial pipeline's rewrite hook: with probability
// Beta it replaces agent i's candidate list with len(dst) uniform draws
// from the other agents, reporting how many it wrote; otherwise it returns
// -1 and the geometric (ring) candidates stand. It runs concurrently from
// shards: all randomness comes from the (key, call, i) counter stream.
func (m *SmallWorld) rewireCandidates(i, n int, call uint64, dst []int32) int {
	src := prng.AtCounter(m.key, call, uint64(i))
	if !src.Prob(m.Beta) {
		return -1
	}
	for k := range dst {
		j := src.Intn(n - 1)
		if j >= i {
			j++ // uniform over [0, n) \ {i}
		}
		dst[k] = int32(j)
	}
	return len(dst)
}
