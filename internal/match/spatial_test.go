package match

import (
	"math"
	"runtime"
	"testing"

	"popstab/internal/population"
	"popstab/internal/prng"
)

// referenceNearestSample is the historical serial torus matching algorithm
// (pre-sharding torus.go), kept verbatim as the golden reference: visit
// agents in random order, pair each with its nearest unmatched agent in the
// 3×3 grid neighborhood, ties broken by scan order via the strict `<`
// minimum. The sharded pipeline must reproduce its output bit for bit.
func referenceNearestSample(pos []population.Point, src *prng.Source, p *Pairing) {
	n := len(pos)
	p.Reset(n)
	if n < 2 {
		return
	}
	side := int(math.Sqrt(float64(n)))
	if side < 1 {
		side = 1
	}
	grid := make([][]int32, side*side)
	cellOf := func(pt population.Point) (int, int) {
		cx := int(pt.X * float64(side))
		cy := int(pt.Y * float64(side))
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		return cx, cy
	}
	for i := 0; i < n; i++ {
		cx, cy := cellOf(pos[i])
		grid[cy*side+cx] = append(grid[cy*side+cx], int32(i))
	}
	order := src.Perm(n)
	for _, i := range order {
		if p.Nbr[i] != Unmatched {
			continue
		}
		cx, cy := cellOf(pos[i])
		best := int32(-1)
		bestD := math.Inf(1)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				gx := (cx + dx + side) % side
				gy := (cy + dy + side) % side
				for _, j := range grid[gy*side+gx] {
					if int(j) == i || p.Nbr[j] != Unmatched {
						continue
					}
					if d := TorusDist2(pos[i], pos[j]); d < bestD {
						bestD = d
						best = j
					}
				}
			}
		}
		if best >= 0 {
			p.Nbr[i] = best
			p.Nbr[best] = int32(i)
		}
	}
}

// TestTorusGoldenAgainstSerialReference is the tentpole equivalence
// guarantee: across population sizes (including degenerate grids with side
// < 3, where neighborhoods scan cells repeatedly), worker counts, and
// position distributions (uniform, tightly clustered, and fully degenerate
// all-one-point, which exercise the tie-breaking rule and the fallback
// rescan), the sharded pipeline's pairing is bit-identical to the
// historical serial algorithm.
func TestTorusGoldenAgainstSerialReference(t *testing.T) {
	sizes := []int{2, 3, 5, 17, 64, 100, 1000, 4096, 10000}
	workerCounts := []int{1, 2, 3, runtime.NumCPU()}
	for _, n := range sizes {
		shapes := []string{"uniform"}
		if n <= 4096 {
			// The degenerate shapes are quadratic in cluster size; keep
			// them to the smaller populations.
			shapes = append(shapes, "clustered")
			if n <= 1000 {
				shapes = append(shapes, "onepoint")
			}
		}
		for _, shape := range shapes {
			tor, pop := boundTorus(t, n, uint64(n))
			pos := tor.Positions().Slice()
			mut := prng.New(uint64(n) * 31)
			switch shape {
			case "clustered":
				// Pile agents into a few tight clusters so cells overflow
				// candK and the exact fallback rescan runs.
				for i := range pos {
					pos[i] = population.Point{
						X: wrap(float64(mut.Intn(3))/3 + 0.001*mut.Float64()),
						Y: wrap(float64(mut.Intn(3))/3 + 0.001*mut.Float64()),
					}
				}
			case "onepoint":
				// Every distance ties: the outcome is decided purely by
				// the scan-order tie-breaking rule.
				for i := range pos {
					pos[i] = population.Point{X: 0.25, Y: 0.25}
				}
			}
			var want Pairing
			referenceNearestSample(pos, prng.New(uint64(n)+7), &want)
			for _, w := range workerCounts {
				tor.SetWorkers(w)
				var got Pairing
				tor.SampleMatch(pop, prng.New(uint64(n)+7), &got)
				if err := got.Validate(); err != nil {
					t.Fatalf("n=%d %s workers=%d: %v", n, shape, w, err)
				}
				for i := range want.Nbr {
					if got.Nbr[i] != want.Nbr[i] {
						t.Fatalf("n=%d %s workers=%d: pairing diverged from serial reference at agent %d: got %d, want %d",
							n, shape, w, i, got.Nbr[i], want.Nbr[i])
					}
				}
			}
		}
	}
}

// galleryNames lists the spatial matchers of the topology gallery.
var galleryNames = []string{"torus", "ring", "grid", "smallworld"}

// buildSpatial constructs and binds one gallery matcher over a fresh
// population of n agents, returning both.
func buildSpatial(t *testing.T, name string, n int, seed uint64) (Matcher, *population.Population) {
	t.Helper()
	sigma2 := 1 / math.Sqrt(float64(n))
	sigma1 := 1 / float64(n)
	var m Matcher
	var err error
	switch name {
	case "torus":
		m, err = NewTorus(sigma2)
	case "ring":
		m, err = NewRing(sigma1)
	case "grid":
		m, err = NewGrid(sigma2)
	case "smallworld":
		m, err = NewSmallWorld(sigma1, 0.2)
	default:
		t.Fatalf("unknown gallery matcher %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	pop := population.New(n)
	m.(Binder).Bind(pop, prng.New(seed))
	return m, pop
}

// positionsOf exposes a gallery matcher's bound side-array.
func positionsOf(t *testing.T, m Matcher) *population.Positions {
	t.Helper()
	switch v := m.(type) {
	case *Torus:
		return v.Positions()
	case *Ring:
		return v.Positions()
	case *Grid:
		return v.Positions()
	case *SmallWorld:
		return v.Positions()
	}
	t.Fatalf("not a spatial matcher: %T", m)
	return nil
}

// TestSpatialWorkersBitIdentical pins the worker-count invariance of every
// gallery matcher: for Workers ∈ {1, 2, NumCPU} a fresh identically-seeded
// run produces the identical pairing.
func TestSpatialWorkersBitIdentical(t *testing.T) {
	const n = 8192
	for _, name := range galleryNames {
		t.Run(name, func(t *testing.T) {
			run := func(workers int) []int32 {
				m, pop := buildSpatial(t, name, n, 11)
				m.(WorkerSetter).SetWorkers(workers)
				var p Pairing
				m.SampleMatch(pop, prng.New(99), &p)
				out := make([]int32, n)
				copy(out, p.Nbr)
				return out
			}
			want := run(1)
			for _, w := range []int{2, runtime.NumCPU()} {
				got := run(w)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d diverged at agent %d: %d != %d", w, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestSpatialConformance is the shared Matcher conformance suite of the
// topology gallery: every spatial matcher must produce valid pairings
// (involution, no self-match), honor its MinFraction guarantee, and replay
// deterministically under an identical seed.
func TestSpatialConformance(t *testing.T) {
	const n = 4096
	for _, name := range galleryNames {
		t.Run(name, func(t *testing.T) {
			m, pop := buildSpatial(t, name, n, 5)
			var p Pairing
			m.SampleMatch(pop, prng.New(17), &p)
			if err := p.Validate(); err != nil {
				t.Fatalf("invalid pairing: %v", err)
			}
			if frac := float64(p.Matched()) / float64(n); frac < m.MinFraction() {
				t.Errorf("matched fraction %.3f below MinFraction %.3f", frac, m.MinFraction())
			}
			if p.Matched() < n/2 {
				t.Errorf("only %d of %d agents matched", p.Matched(), n)
			}

			// Deterministic replay: identical seeds, identical pairing.
			m2, pop2 := buildSpatial(t, name, n, 5)
			var p2 Pairing
			m2.SampleMatch(pop2, prng.New(17), &p2)
			for i := range p.Nbr {
				if p.Nbr[i] != p2.Nbr[i] {
					t.Fatalf("replay diverged at agent %d: %d != %d", i, p.Nbr[i], p2.Nbr[i])
				}
			}

			// Name is non-empty and stable (experiment output key).
			if m.Name() == "" || m.Name() != m2.Name() {
				t.Error("unstable matcher name")
			}
		})
	}
}

// TestSpatialTracksMutations drives inserts, deletes, and Apply passes
// through a population bound to each gallery matcher and asserts the
// position side-array stays aligned, positions stay in the unit domain,
// and matching still works afterwards.
func TestSpatialTracksMutations(t *testing.T) {
	for _, name := range galleryNames {
		t.Run(name, func(t *testing.T) {
			m, pop := buildSpatial(t, name, 64, 7)
			src := prng.New(8)
			for step := 0; step < 60; step++ {
				switch src.Intn(3) {
				case 0:
					pop.Insert(pop.State(src.Intn(pop.Len())))
				case 1:
					pop.DeleteSwap(src.Intn(pop.Len()))
				default:
					actions := make([]population.Action, pop.Len())
					for i := range actions {
						actions[i] = population.Action(src.Intn(3))
					}
					pop.Apply(actions)
				}
				ps := positionsOf(t, m)
				if ps.Len() != pop.Len() {
					t.Fatalf("step %d: positions %d != population %d", step, ps.Len(), pop.Len())
				}
				for i := 0; i < ps.Len(); i++ {
					pt := ps.At(i)
					if pt.X < 0 || pt.X >= 1 || pt.Y < 0 || pt.Y >= 1 {
						t.Fatalf("step %d: position %d escaped the unit domain: %+v", step, i, pt)
					}
				}
			}
			var p Pairing
			m.SampleMatch(pop, src, &p)
			if err := p.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRingLocality pins Ring's defining property: matched pairs are close
// on the circle (order 1/n), far below the ~0.25 mean distance of uniform
// matching.
func TestRingLocality(t *testing.T) {
	const n = 4096
	m, pop := buildSpatial(t, "ring", n, 3)
	r := m.(*Ring)
	var p Pairing
	r.SampleMatch(pop, prng.New(4), &p)
	var sumD float64
	matched := 0
	for i := 0; i < n; i++ {
		j := p.Nbr[i]
		if j == Unmatched {
			continue
		}
		matched++
		sumD += math.Sqrt(RingDist2(r.Positions().At(i), r.Positions().At(int(j))))
	}
	if matched < n/2 {
		t.Fatalf("only %d of %d matched", matched, n)
	}
	if meanD := sumD / float64(matched); meanD > 10.0/float64(n) {
		t.Errorf("mean ring pair distance %.5f not local (spacing %.5f)", meanD, 1.0/float64(n))
	}
}

// TestRingWrapHalfWidth pins the 1-D metric at exactly half the circle
// width, the wraparound watershed: both directions around the circle
// measure the same 0.5, and anything shorter wraps to the near side.
func TestRingWrapHalfWidth(t *testing.T) {
	a := population.Point{X: 0.1}
	b := population.Point{X: 0.6}
	if d := RingDist2(a, b); math.Abs(d-0.25) > 1e-15 {
		t.Errorf("RingDist2 at half width = %v, want 0.25", d)
	}
	if d := RingDist2(b, a); math.Abs(d-0.25) > 1e-15 {
		t.Errorf("RingDist2 asymmetric at half width: %v", d)
	}
	c := population.Point{X: 0.65}
	if d := RingDist2(a, c); math.Abs(d-0.45*0.45) > 1e-15 {
		t.Errorf("RingDist2 past half width = %v, want wrap to 0.45²", d)
	}
}

// TestGridBoundary pins Grid's non-wrapping metric: two agents hugging
// opposite walls are far apart (no wraparound shortcut), and daughters
// reflect back into the square.
func TestGridBoundary(t *testing.T) {
	a := population.Point{X: 0.01, Y: 0.5}
	b := population.Point{X: 0.99, Y: 0.5}
	if d := EuclidDist2(a, b); math.Abs(d-0.98*0.98) > 1e-12 {
		t.Errorf("EuclidDist2 wrapped: %v", d)
	}
	if TorusDist2(a, b) >= 0.01 {
		t.Errorf("sanity: torus metric should wrap here")
	}
	for _, tc := range []struct{ in, want float64 }{
		{0.5, 0.5}, {-0.25, 0.25}, {1.25, 0.75}, {0, 0}, {2.5, 0.5}, {-1.5, 0.5},
	} {
		if got := reflect01(tc.in); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("reflect01(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
	g, err := NewGrid(0.3)
	if err != nil {
		t.Fatal(err)
	}
	g.Bind(population.New(16), prng.New(5))
	for i := 0; i < 1000; i++ {
		d := g.daughter(population.Point{X: 0.02, Y: 0.98})
		if d.X < 0 || d.X >= 1 || d.Y < 0 || d.Y >= 1 {
			t.Fatalf("daughter escaped the square: %+v", d)
		}
	}
}

// TestSmallWorldBetaEndpoints pins the rewiring semantics: at β = 0 every
// pair is ring-local; at β = 1 pair distances are long-range (approaching
// the ~0.25 uniform expectation on the circle); at β in between, between.
func TestSmallWorldBetaEndpoints(t *testing.T) {
	const n = 4096
	meanPairDist := func(beta float64) float64 {
		sw, err := NewSmallWorld(1.0/n, beta)
		if err != nil {
			t.Fatal(err)
		}
		pop := population.New(n)
		sw.Bind(pop, prng.New(21))
		var p Pairing
		sw.SampleMatch(pop, prng.New(22), &p)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		var sum float64
		matched := 0
		for i := 0; i < n; i++ {
			j := p.Nbr[i]
			if j == Unmatched {
				continue
			}
			matched++
			sum += math.Sqrt(RingDist2(sw.Positions().At(i), sw.Positions().At(int(j))))
		}
		if matched < n/2 {
			t.Fatalf("beta=%v: only %d of %d matched", beta, matched, n)
		}
		return sum / float64(matched)
	}
	local := meanPairDist(0)
	mixed := meanPairDist(1)
	if local > 10.0/n {
		t.Errorf("beta=0 mean pair distance %.5f not local", local)
	}
	if mixed < 0.1 {
		t.Errorf("beta=1 mean pair distance %.5f not long-range", mixed)
	}
	if mid := meanPairDist(0.5); mid < local || mid > mixed {
		t.Errorf("beta=0.5 mean pair distance %.5f outside [%v, %v]", mid, local, mixed)
	}
}

// TestSmallWorldProbeDoesNotPerturb pins the probe counter plane: an
// interleaved probe sample leaves subsequent match samples identical to an
// unprobed run.
func TestSmallWorldProbeDoesNotPerturb(t *testing.T) {
	const n = 2048
	run := func(probe bool) []int32 {
		sw, err := NewSmallWorld(1.0/n, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		pop := population.New(n)
		sw.Bind(pop, prng.New(31))
		src := prng.New(32)
		var p Pairing
		sw.SampleMatch(pop, src, &p)
		if probe {
			var pp Pairing
			sw.SampleProbe(pop, &pp)
		}
		sw.SampleMatch(pop, src, &p)
		out := make([]int32, n)
		copy(out, p.Nbr)
		return out
	}
	want := run(false)
	got := run(true)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("probe perturbed the match stream at agent %d: %d != %d", i, got[i], want[i])
		}
	}
}

// TestSpatialUnboundPanics pins the Bind contract for the whole gallery.
func TestSpatialUnboundPanics(t *testing.T) {
	tor, _ := NewTorus(0.01)
	ring, _ := NewRing(0.01)
	grid, _ := NewGrid(0.01)
	sw, _ := NewSmallWorld(0.01, 0.1)
	for _, m := range []Matcher{tor, ring, grid, sw} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%T: SampleMatch before Bind did not panic", m)
				}
			}()
			var p Pairing
			m.SampleMatch(population.New(4), prng.New(1), &p)
		}()
	}
}

// TestNewSpatialValidation covers constructor validation across the
// gallery.
func TestNewSpatialValidation(t *testing.T) {
	bad := []float64{0, -0.1, math.NaN(), math.Inf(1)}
	for _, sigma := range bad {
		if _, err := NewRing(sigma); err == nil {
			t.Errorf("NewRing accepted sigma %v", sigma)
		}
		if _, err := NewGrid(sigma); err == nil {
			t.Errorf("NewGrid accepted sigma %v", sigma)
		}
		if _, err := NewSmallWorld(sigma, 0.1); err == nil {
			t.Errorf("NewSmallWorld accepted sigma %v", sigma)
		}
	}
	for _, beta := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := NewSmallWorld(0.01, beta); err == nil {
			t.Errorf("NewSmallWorld accepted beta %v", beta)
		}
	}
	for _, mk := range []func() (Matcher, error){
		func() (Matcher, error) { return NewRing(0.01) },
		func() (Matcher, error) { return NewGrid(0.01) },
		func() (Matcher, error) { return NewSmallWorld(0.01, 1) },
	} {
		if m, err := mk(); err != nil || m == nil {
			t.Errorf("constructor rejected valid parameters: %v", err)
		}
	}
}

// TestPermInt32IntoMatchesPerm pins the drop-in contract of the
// allocation-free permutation used by the greedy walk.
func TestPermInt32IntoMatchesPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 1000} {
		a := prng.New(uint64(n) + 5)
		b := prng.New(uint64(n) + 5)
		want := a.Perm(n)
		got := make([]int32, n)
		b.PermInt32Into(got)
		for i := range want {
			if int32(want[i]) != got[i] {
				t.Fatalf("n=%d: PermInt32Into diverged from Perm at %d", n, i)
			}
		}
		// The sources must stay in lockstep afterwards.
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: source state diverged", n)
		}
	}
}
