package match

import (
	"fmt"
	"math"

	"popstab/internal/population"
	"popstab/internal/prng"
)

// Ring is the 1-D spatial communication model: agents live on the unit
// circle (only Point.X is meaningful; Y is fixed to 0) and each round are
// matched with a nearby agent under the wrapped 1-D metric. It is the
// strongest-locality topology in the gallery — each agent's neighborhood is
// an O(1/n) arc — and the substrate SmallWorld rewires. Daughters appear
// next to their parent (1-D Gaussian offset of standard deviation Sigma);
// inserted agents appear at fresh uniform positions. Matching runs on the
// sharded spatial pipeline (spatial.go) with n buckets of expected
// occupancy 1 and 3-bucket neighborhoods.
type Ring struct {
	// Sigma is the standard deviation of a daughter's offset from its
	// parent, in circle units (callers usually derive it from the mean
	// inter-agent spacing 1/N).
	Sigma float64

	spatial[ringGeom]
}

var (
	_ Matcher      = (*Ring)(nil)
	_ Binder       = (*Ring)(nil)
	_ WorkerSetter = (*Ring)(nil)
	_ Space        = (*Ring)(nil)
)

// NewRing validates sigma and returns an unbound Ring matcher.
func NewRing(sigma float64) (*Ring, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return nil, fmt.Errorf("match: ring sigma %v not positive and finite", sigma)
	}
	return &Ring{Sigma: sigma}, nil
}

// Bind implements Binder: initial and inserted agents uniform on the
// circle, daughters Gaussian around their parent.
func (r *Ring) Bind(pop *population.Population, src *prng.Source) {
	r.bind(pop, src,
		func() population.Point {
			return population.Point{X: src.Float64()}
		},
		r.daughter)
}

// MinFraction reports 0: nearest-neighbor matching gives no hard per-round
// coverage guarantee.
func (r *Ring) MinFraction() float64 { return 0 }

// Name reports "ring(σ)".
func (r *Ring) Name() string { return fmt.Sprintf("ring(%.3g)", r.Sigma) }

// daughter places a daughter near its parent on the circle. The 2-D
// Gaussian kernel's first coordinate is a 1-D Gaussian of the same σ.
func (r *Ring) daughter(parent population.Point) population.Point {
	dx, _ := gaussianOffset(r.src, r.Sigma)
	return population.Point{X: wrap(parent.X + dx)}
}

// RingDist2 is the squared wrapped distance between two points of the unit
// circle (X coordinates only).
func RingDist2(a, b population.Point) float64 {
	dx := math.Abs(a.X - b.X)
	if dx > 0.5 {
		dx = 1 - dx
	}
	return dx * dx
}

// ringGeom is the 1-D wrapped geometry: n buckets over [0, 1) with
// 3-bucket neighborhoods (wrapping at the ends) under the circle metric.
type ringGeom struct{ cells int }

var _ geometry[ringGeom] = ringGeom{}

func (ringGeom) prepare(n int) ringGeom {
	if n < 1 {
		n = 1
	}
	return ringGeom{cells: n}
}

func (g ringGeom) numCells() int { return g.cells }

func (g ringGeom) cell(pt population.Point) int32 {
	c := int(pt.X * float64(g.cells))
	if c >= g.cells {
		c = g.cells - 1
	}
	return int32(c)
}

func (g ringGeom) neighborhood(c int32, buf []int32) []int32 {
	for dx := -1; dx <= 1; dx++ {
		buf = append(buf, int32((int(c)+dx+g.cells)%g.cells))
	}
	return buf
}

func (ringGeom) dist2(a, b population.Point) float64 { return RingDist2(a, b) }

// patch draws uniformly on the arc of half-length r around center (the 1-D
// ball: arc length 2r, capped at the full circle) and wraps.
func (ringGeom) patch(src *prng.Source, center population.Point, r float64) population.Point {
	if r <= 0 {
		return center
	}
	if r > 0.5 {
		r = 0.5
	}
	return population.Point{X: wrap(center.X + (2*src.Float64()-1)*r)}
}
